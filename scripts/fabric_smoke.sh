#!/usr/bin/env bash
# fabric_smoke.sh — loopback cluster smoke test for the sweep fabric.
#
# Builds cactid-serve, starts two worker nodes and a coordinator on
# 127.0.0.1 (plus a plain single-node reference server), runs a real
# 32-point sweep through the coordinator, and asserts:
#
#   1. the distributed sweep body is byte-identical to the single-node
#      sweep of the same grid;
#   2. /v1/fabric reports both workers healthy and zero duplicate
#      deliveries;
#   3. the coordinator's /metrics carries the fabric block.
#
# Artifacts (sweep bodies, /v1/fabric, /metrics) land in
# $FABRIC_SMOKE_DIR (default: a fresh mktemp -d) for CI upload.
# Used by `make fabric-smoke` and the ci.yml cluster job.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${FABRIC_SMOKE_DIR:-$(mktemp -d)}"
mkdir -p "$OUT"
BIN="$OUT/cactid-serve"
go build -o "$BIN" ./cmd/cactid-serve

pids=()
cleanup() {
    kill "${pids[@]}" 2>/dev/null || true
    wait 2>/dev/null || true
}
trap cleanup EXIT

"$BIN" -addr 127.0.0.1:18081 &
pids+=($!)
"$BIN" -addr 127.0.0.1:18082 &
pids+=($!)
"$BIN" -addr 127.0.0.1:18083 & # plain single-node reference
pids+=($!)
"$BIN" -addr 127.0.0.1:18080 -coordinator \
    -worker-nodes http://127.0.0.1:18081,http://127.0.0.1:18082 &
pids+=($!)

wait_up() {
    for _ in $(seq 1 50); do
        curl -sf "http://$1/healthz" >/dev/null 2>&1 && return 0
        sleep 0.2
    done
    echo "fabric-smoke: $1 never became healthy" >&2
    return 1
}
for port in 18080 18081 18082 18083; do wait_up "127.0.0.1:$port"; done

GRID='{"base":{"ram":"sram","node_nm":32,"block_bytes":64},
  "capacities":["32KB","64KB","128KB","256KB"],
  "associativities":[1,2,4,8],
  "modes":["normal","seq"]}'

curl -sf http://127.0.0.1:18080/v1/sweep -d "$GRID" >"$OUT/sweep-cluster.json"
curl -sf http://127.0.0.1:18083/v1/sweep -d "$GRID" >"$OUT/sweep-single.json"
if ! cmp -s "$OUT/sweep-cluster.json" "$OUT/sweep-single.json"; then
    echo "fabric-smoke: distributed sweep differs from single-node" >&2
    exit 1
fi

curl -sf http://127.0.0.1:18080/v1/fabric >"$OUT/fabric.json"
curl -sf http://127.0.0.1:18080/metrics >"$OUT/metrics.json"
grep -Eq '"healthy_workers": ?2' "$OUT/fabric.json" || {
    echo "fabric-smoke: expected 2 healthy workers; see $OUT/fabric.json" >&2
    exit 1
}
grep -Eq '"duplicate_results": ?0' "$OUT/fabric.json" || {
    echo "fabric-smoke: duplicate deliveries recorded; see $OUT/fabric.json" >&2
    exit 1
}
grep -q '"fabric"' "$OUT/metrics.json" || {
    echo "fabric-smoke: coordinator /metrics lacks the fabric block" >&2
    exit 1
}

echo "fabric-smoke: OK — 32-point sweep byte-identical across 2 workers (artifacts in $OUT)"
