package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cactid/internal/array"
	"cactid/internal/core"
)

// FuzzSolveBody throws arbitrary bytes at the full /v1/solve handler
// stack — admission gate, strict decode, spec compilation, engine,
// response encoding — with a fake solver so no model work runs. The
// contract under hostile input: never panic, never 5xx; every body is
// answered 200, 400 or 422.
func FuzzSolveBody(f *testing.F) {
	f.Add([]byte(`{"ram":"sram","capacity":"64KB","associativity":4,"block_bytes":64,"node_nm":32}`))
	f.Add([]byte(`{"ram":"lp-dram","capacity":"48MB","mode":"seq","page_bits":8192}`))
	f.Add([]byte(`{"capacity":"1e308MB"}`))
	f.Add([]byte(`{"weights":{"dynamic_energy":1,"leakage_power":0}}`))
	f.Add([]byte(`{"ram":`))
	f.Add([]byte(``))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"tech":"stt-ram","capacity":"4MB","associativity":8}`))
	f.Add([]byte(`{"tech":"flashy","capacity":"1MB"}`))
	f.Add([]byte(`{"tech":"it","capacity":"1MB"}`))
	f.Add([]byte("{\"ram\":\"sram\",\"capacity\":\"\x00KB\"}"))

	fake := func(_ context.Context, spec core.Spec) (*core.Solution, error) {
		return &core.Solution{Spec: spec, Data: &array.Bank{}}, nil
	}
	s := mustServer(f, config{solver: fake})
	f.Fuzz(func(t *testing.T, data []byte) {
		req := httptest.NewRequest("POST", "/v1/solve", strings.NewReader(string(data)))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusUnprocessableEntity:
		default:
			t.Fatalf("/v1/solve answered %d for body %q", rec.Code, data)
		}
		if rec.Code != http.StatusOK && !strings.Contains(rec.Body.String(), "error") {
			t.Fatalf("error response without an error body: %q", rec.Body.String())
		}
	})
}
