// Command cactid-serve exposes the CACTI-D exploration engine
// (internal/explore) as a stdlib-only HTTP/JSON service, so sweeps
// and solves can be batched from any client without a Go toolchain:
//
//	cactid-serve -addr :8080 -timeout 60s -max-inflight 32
//
//	curl -s localhost:8080/v1/solve -d '{"ram":"sram","capacity":"4MB","associativity":8}'
//	curl -s localhost:8080/v1/sweep -d '{"base":{"ram":"lp-dram","mode":"seq"},
//	      "capacities":["16MB","32MB","64MB"],"associativities":[4,8]}'
//	curl -s 'localhost:8080/v1/pareto?format=csv' -d @sweep.json
//	curl -s localhost:8080/metrics
//
// Endpoints:
//
//	POST /v1/solve                    one spec -> the optimized solution (same JSON as `cactid -json`)
//	POST /v1/sweep                    a parameter grid -> one result per point, deterministic order
//	POST /v1/pareto                   a parameter grid -> only the Pareto-optimal points
//	POST /v1/solve-batch              a spec list -> one result per spec under a single admission
//	POST /v1/sweep-jobs               submit a grid as a background job -> 202 + job id
//	GET  /v1/sweep-jobs/{id}          poll a job (state, progress, results when done)
//	GET  /v1/sweep-jobs/{id}/stream   stream per-point results as NDJSON (SSE via Accept)
//	GET  /v1/stats                    engine counters (the coordinator aggregates these cluster-wide)
//	GET  /v1/fabric                   coordinator only: worker health, dispatch/steal counters, merged cluster stats
//	POST /v1/fabric/register          coordinator only: a worker node joins the fabric ({"url":"..."})
//	GET  /healthz                     liveness probe
//	GET  /metrics                     request counts, cache/store hit ratios, latency histogram
//
// With -coordinator, multi-point requests (/v1/sweep, /v1/pareto,
// /v1/solve-batch, sweep jobs) shard across the -worker-nodes by spec
// fingerprint over each worker's /v1/solve-batch API: every spec has
// one owning worker (repeat sweeps stay warm), idle workers steal
// queued chunks from stragglers, failed dispatches reroute with a
// bounded budget, and this node's own engine is the fallback of last
// resort — the merged output is byte-identical to a single-node
// sweep. Single solves route to their fingerprint owner too.
//
// With -store DIR, solved results and sweep-job checkpoints persist
// in a crash-safe disk store keyed by (model version, spec
// fingerprint): a restarted server answers previously-solved specs
// without re-running the solver, and interrupted sweep jobs resume
// from their last checkpoint.
//
// Repeated and overlapping requests hit the fingerprint-keyed result
// cache instead of re-running the solver; concurrent identical
// requests are deduplicated in flight, and the cache is bounded by
// -cache-entries with LRU eviction. Requests beyond -max-inflight
// join a bounded queue (-queue-depth, -queue-wait); when the queue is
// full or the wait budget expires they are shed with 429 Too Many
// Requests and a Retry-After hint. SIGINT/SIGTERM flips the server
// into a draining state (healthz and /v1 answer 503) and drains
// in-flight requests before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.DurationVar(&cfg.timeout, "timeout", 60*time.Second, "per-request time budget")
	flag.IntVar(&cfg.maxInFlight, "max-inflight", 32, "max concurrently served /v1 requests")
	flag.IntVar(&cfg.queueDepth, "queue-depth", 0, "requests queued beyond -max-inflight before 429 (-1 disables the queue, 0 = 2x max-inflight)")
	flag.DurationVar(&cfg.queueWait, "queue-wait", 5*time.Second, "longest a queued request waits for a slot before 429")
	flag.IntVar(&cfg.maxPoints, "max-points", 4096, "largest accepted sweep grid")
	flag.IntVar(&cfg.cacheBound, "cache-entries", 0, "result-cache entry bound with LRU eviction (-1 = unbounded, 0 = default 16384)")
	flag.IntVar(&cfg.workers, "workers", 0, "solver pool size (0 = GOMAXPROCS)")
	flag.BoolVar(&cfg.noBound, "no-bound", false, "disable branch-and-bound solver pruning (A/B escape hatch; identical results, slower solves)")
	flag.BoolVar(&cfg.pprof, "pprof", false, "expose net/http/pprof handlers under /debug/pprof/ (loopback clients only)")
	flag.StringVar(&cfg.storeDir, "store", "", "durable result-store directory: solved specs persist across restarts and interrupted sweep jobs resume (empty = in-memory only)")
	flag.IntVar(&cfg.checkpointEvery, "checkpoint-every", 0, "sweep-job checkpoint granularity in grid points (0 = default 32)")
	flag.BoolVar(&cfg.coordinator, "coordinator", false, "run as a sweep-fabric coordinator: shard sweeps across -worker-nodes by spec fingerprint, with work stealing and failure reroute")
	flag.StringVar(&cfg.workerNodes, "worker-nodes", "", "comma-separated worker base URLs for -coordinator (e.g. http://10.0.0.7:8080,10.0.0.8:8080); workers may also join via POST /v1/fabric/register")
	flag.IntVar(&cfg.fabricChunk, "fabric-chunk", 0, "specs per fabric dispatch chunk (0 = default 16)")
	flag.DurationVar(&cfg.heartbeatEvery, "heartbeat-every", 5*time.Second, "worker health-probe period in coordinator mode (0 disables background probing)")
	flag.Parse()

	s, err := newServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("cactid-serve listening on %s", cfg.addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("shutting down, draining in-flight requests")
	s.drain() // queued waiters and new arrivals get 503 + Retry-After
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	// Stop job workers at their next checkpoint and flush/close the
	// store: interrupted jobs resume from that checkpoint on restart.
	s.close()
}
