package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cactid/internal/array"
	"cactid/internal/core"
)

// warmStoreDir returns the store directory for the warm-restart
// tests: a per-test tempdir normally, or $CACTID_WARMRESTART_DIR when
// CI sets it so a failure leaves the store behind as an artifact.
func warmStoreDir(t *testing.T) string {
	if dir := os.Getenv("CACTID_WARMRESTART_DIR"); dir != "" {
		sub := fmt.Sprintf("%s/%s", dir, strings.ReplaceAll(t.Name(), "/", "_"))
		// Start from an empty store even if a previous run left one
		// behind — stale warm state would fake out the solver-count
		// assertions. A failing run's store survives: removal happens
		// at the start of the next run, not at the end of this one.
		if err := os.RemoveAll(sub); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		return sub
	}
	return t.TempDir()
}

// persistableSolver is a counting fake whose solutions carry the full
// surface the durable tier persists.
func persistableSolver() (*atomic.Int64, func(context.Context, core.Spec) (*core.Solution, error)) {
	var n atomic.Int64
	return &n, func(_ context.Context, spec core.Spec) (*core.Solution, error) {
		n.Add(1)
		return &core.Solution{
			Spec:       spec,
			Data:       &array.Bank{Org: array.Org{Rows: 64, Cols: 128, Mux: 4, Mats: 2, Subbanks: 1, MatsPerSubbank: 2}, PipelineStages: 2},
			AccessTime: float64(spec.CapacityBytes),
		}, nil
	}
}

const warmSweep = `{"base":{"ram":"sram","block_bytes":64,"cache":false},"capacities":["32KB","64KB","128KB"],"banks":[1,2]}`

// TestWarmRestartSweepByteIdenticalZeroSolves is the warm-restart
// contract end to end over HTTP: a second server process on the same
// store directory answers a previously-run sweep byte-identically and
// never invokes the solver.
func TestWarmRestartSweepByteIdenticalZeroSolves(t *testing.T) {
	dir := warmStoreDir(t)

	n1, solver1 := persistableSolver()
	tsA := newTestServer(t, config{solver: solver1, storeDir: dir})
	post(t, tsA.URL+"/v1/sweep", warmSweep) // cold: populates the store
	respA, warmBody := post(t, tsA.URL+"/v1/sweep", warmSweep)
	if respA.StatusCode != http.StatusOK {
		t.Fatalf("warm sweep: %d", respA.StatusCode)
	}
	coldSolves := n1.Load()
	if coldSolves == 0 {
		t.Fatal("test setup: cold sweep never hit the solver")
	}
	tsA.Close() // the stop: mustServer's cleanup closes the store later via LIFO

	// "Second process": a fresh server (cold tier 0, new solver
	// counter) over the same directory. Its sweep must be served
	// entirely from disk — byte-identical to the first process's warm
	// response, zero solver invocations.
	n2, solver2 := persistableSolver()
	sB := mustServer(t, config{solver: solver2, storeDir: dir})
	tsB := httptest.NewServer(sB)
	defer tsB.Close()
	respB, restartBody := post(t, tsB.URL+"/v1/sweep", warmSweep)
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("restart sweep: %d", respB.StatusCode)
	}
	if !bytes.Equal(warmBody, restartBody) {
		t.Fatalf("restart sweep not byte-identical:\n%s\nvs\n%s", warmBody, restartBody)
	}
	if n2.Load() != 0 {
		t.Fatalf("restarted server invoked the solver %d times, want 0", n2.Load())
	}

	// /v1/solve on a restarted server reports the hit explicitly.
	resp, _ := post(t, tsB.URL+"/v1/solve", `{"ram":"sram","capacity":"32KB","cache":false,"banks":1}`)
	if resp.Header.Get("X-Cactid-Cached") != "true" {
		t.Fatalf("X-Cactid-Cached = %q, want true", resp.Header.Get("X-Cactid-Cached"))
	}
	if n2.Load() != 0 {
		t.Fatal("solve after restart ran the solver")
	}

	var m struct {
		Store map[string]int64 `json:"store"`
	}
	_, body := get(t, tsB.URL+"/metrics")
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.Store["tier1_hits"] == 0 || m.Store["corrupt_reads"] != 0 {
		t.Fatalf("restart store metrics: %+v", m.Store)
	}
}

// TestWarmRestartRealSolver repeats the warm-restart byte-identity
// check with the real optimizer, proving the store's solution codec
// loses nothing the exporters render.
func TestWarmRestartRealSolver(t *testing.T) {
	if testing.Short() {
		t.Skip("real solver")
	}
	dir := warmStoreDir(t)
	sweep := `{"base":{"ram":"sram","max_pipeline_stages":6},"capacities":["32KB","64KB"],"associativities":[1,4]}`

	tsA := newTestServer(t, config{storeDir: dir})
	post(t, tsA.URL+"/v1/sweep", sweep)
	_, warmBody := post(t, tsA.URL+"/v1/sweep", sweep)
	_, warmCSV := post(t, tsA.URL+"/v1/sweep?format=csv", sweep)
	tsA.Close()

	tsB := newTestServer(t, config{storeDir: dir})
	_, restartBody := post(t, tsB.URL+"/v1/sweep", sweep)
	_, restartCSV := post(t, tsB.URL+"/v1/sweep?format=csv", sweep)
	if !bytes.Equal(warmBody, restartBody) {
		t.Fatalf("real-solver restart sweep not byte-identical:\n%s\nvs\n%s", warmBody, restartBody)
	}
	if !bytes.Equal(warmCSV, restartCSV) {
		t.Fatal("real-solver restart CSV not byte-identical")
	}
}

// pollJob polls the job endpoint until cond holds or the deadline
// passes, returning the last decoded body.
func pollJob(t *testing.T, url string, cond func(map[string]any) bool) map[string]any {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, body := get(t, url)
		var m map[string]any
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatalf("job poll: %v in %s", err, body)
		}
		if cond(m) {
			return m
		}
		if time.Now().After(deadline) {
			t.Fatalf("job poll timed out; last state:\n%s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func jobCompleted(m map[string]any) float64 { f, _ := m["completed"].(float64); return f }

// TestSweepJobKillResume submits a job, kills the server after the
// 4th of 8 points checkpointed, and asserts the restarted server
// finishes the job with exactly 4 solver calls: the completed prefix
// replays from the durable tier instead of restarting from point 0.
func TestSweepJobKillResume(t *testing.T) {
	dir := warmStoreDir(t)
	const jobGrid = `{"base":{"ram":"sram","block_bytes":64,"cache":false},"capacities":["32KB","64KB","128KB","256KB"],"banks":[1,2]}`

	// First process: solves 1-4 pass, 5+ park until cancellation (the
	// kill arrives while point 5 is "in the solver").
	var n1 atomic.Int64
	solver1 := func(ctx context.Context, spec core.Spec) (*core.Solution, error) {
		if n1.Add(1) > 4 {
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return &core.Solution{Spec: spec,
			Data: &array.Bank{Org: array.Org{Rows: 64, Cols: 128, Mux: 4, Mats: 1, Subbanks: 1, MatsPerSubbank: 1}, PipelineStages: 1},
		}, nil
	}
	sA, err := newServer(config{solver: solver1, storeDir: dir, checkpointEvery: 2, workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(sA)
	resp, body := post(t, tsA.URL+"/v1/sweep-jobs", jobGrid)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var sub map[string]any
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	id, _ := sub["id"].(string)
	if id == "" || sub["points"].(float64) != 8 {
		t.Fatalf("submit response: %s", body)
	}
	jobURL := tsA.URL + "/v1/sweep-jobs/" + id
	pollJob(t, jobURL, func(m map[string]any) bool { return jobCompleted(m) >= 4 })

	// Kill: drain the workers (the parked solve is cancelled, its
	// chunk discarded) and close the store — progress = checkpoint.
	tsA.Close()
	sA.close()

	// Second process on the same directory resumes the job on start.
	n2, solver2 := persistableSolver()
	sB := mustServer(t, config{solver: solver2, storeDir: dir, checkpointEvery: 2, workers: 1})
	tsB := httptest.NewServer(sB)
	defer tsB.Close()
	final := pollJob(t, tsB.URL+"/v1/sweep-jobs/"+id, func(m map[string]any) bool {
		return m["state"] == jobDone
	})
	if got := n2.Load(); got != 4 {
		t.Fatalf("resume ran the solver %d times, want 4 (points 1-4 must come from the store)", got)
	}
	if rf, _ := final["resumed_from"].(float64); rf != 4 {
		t.Fatalf("resumed_from = %v, want 4", final["resumed_from"])
	}
	results, _ := final["results"].([]any)
	if len(results) != 8 {
		t.Fatalf("resumed job returned %d results, want 8", len(results))
	}
	for i, r := range results {
		rm := r.(map[string]any)
		if idx, _ := rm["index"].(float64); int(idx) != i {
			t.Fatalf("result %d has index %v: grid order lost across resume", i, rm["index"])
		}
		if rm["error"] != nil {
			t.Fatalf("result %d carries an error after resume: %v", i, rm["error"])
		}
	}

	var m struct {
		SweepJobs jobStats `json:"sweep_jobs"`
	}
	_, metricsBody := get(t, tsB.URL+"/metrics")
	if err := json.Unmarshal(metricsBody, &m); err != nil {
		t.Fatal(err)
	}
	if m.SweepJobs.Resumed != 1 || m.SweepJobs.Completed != 1 {
		t.Fatalf("sweep_jobs metrics = %+v, want resumed=1 completed=1", m.SweepJobs)
	}
}

// TestSweepJobStream covers both stream encodings: NDJSON replays
// every per-point result then ends after the terminal line; the SSE
// variant is negotiated via Accept.
func TestSweepJobStream(t *testing.T) {
	_, solver := persistableSolver()
	ts := newTestServer(t, config{solver: solver, storeDir: t.TempDir(), checkpointEvery: 2})
	resp, body := post(t, ts.URL+"/v1/sweep-jobs",
		`{"base":{"ram":"sram","block_bytes":64,"cache":false},"capacities":["32KB","64KB","128KB"]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var sub map[string]any
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	streamURL := ts.URL + "/v1/sweep-jobs/" + sub["id"].(string) + "/stream"

	sresp, err := http.Get(streamURL)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type = %q", ct)
	}
	var points, terminal int
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if _, isResult := line["fingerprint"]; isResult {
			points++
		} else if line["state"] == jobDone {
			terminal++
		}
	}
	if points != 3 || terminal != 1 {
		t.Fatalf("stream carried %d points, %d terminal lines; want 3, 1", points, terminal)
	}

	// SSE negotiation: same data framed as events.
	req, _ := http.NewRequest("GET", streamURL, nil)
	req.Header.Set("Accept", "text/event-stream")
	eresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	if ct := eresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type = %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(eresp.Body)
	sse := buf.String()
	if strings.Count(sse, "event: result\n") != 3 || strings.Count(sse, "event: done\n") != 1 {
		t.Fatalf("SSE stream malformed:\n%s", sse)
	}

	// Unknown job ids are a clean 404 on both endpoints.
	if r404, _ := get(t, ts.URL+"/v1/sweep-jobs/deadbeef00000000"); r404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", r404.StatusCode)
	}
}

// TestSolveBatch exercises /v1/solve-batch: one admission, per-spec
// results in input order, and spec errors surfaced per point.
func TestSolveBatch(t *testing.T) {
	n, solver := persistableSolver()
	// One worker makes the duplicate-spec dedup order deterministic:
	// the third spec always finds the first one's cache entry.
	ts := newTestServer(t, config{solver: solver, workers: 1})
	resp, body := post(t, ts.URL+"/v1/solve-batch",
		`{"specs":[{"ram":"sram","capacity":"32KB","cache":false},
		           {"ram":"sram","capacity":"64KB","cache":false},
		           {"ram":"sram","capacity":"32KB","cache":false}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, body)
	}
	var env struct {
		Points  int              `json:"points"`
		Results []map[string]any `json:"results"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Points != 3 || len(env.Results) != 3 {
		t.Fatalf("batch envelope: %s", body)
	}
	if n.Load() != 2 {
		t.Fatalf("batch ran %d solves, want 2 (duplicate spec deduplicated)", n.Load())
	}
	if cached, _ := env.Results[2]["cached"].(bool); !cached {
		t.Fatal("duplicate spec in batch not served from cache")
	}

	// A malformed spec fails the whole batch up front with 400.
	resp, _ = post(t, ts.URL+"/v1/solve-batch", `{"specs":[{"ram":"warp-core"}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: %d, want 400", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/v1/solve-batch", `{"specs":[]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: %d, want 400", resp.StatusCode)
	}
}
