package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cactid/internal/array"
	"cactid/internal/core"
	"cactid/internal/explore"
)

// mustServer builds a server, failing the test on store errors, and
// releases its background resources (job workers, store) on cleanup.
func mustServer(t testing.TB, cfg config) *server {
	t.Helper()
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.close)
	return s
}

func newTestServer(t *testing.T, cfg config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(mustServer(t, cfg))
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestSolveMatchesCLIJSON(t *testing.T) {
	ts := newTestServer(t, config{})
	req := `{"ram":"sram","capacity":"64KB","associativity":4,"block_bytes":64,"node_nm":32}`
	resp, body := post(t, ts.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}

	// The reference: what `cactid -json` prints for the same spec.
	spec, err := explore.SpecRequest{RAM: "sram", Capacity: "64KB", Associativity: 4,
		BlockBytes: 64, NodeNM: 32}.Spec()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.Optimize(spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.MarshalIndent(explore.SolutionJSON(sol), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if !bytes.Equal(body, want) {
		t.Fatalf("solve body differs from cactid -json:\ngot:\n%s\nwant:\n%s", body, want)
	}
	if resp.Header.Get("X-Cactid-Cached") != "false" {
		t.Error("first solve should not be cached")
	}

	// Second identical request is served from the cache, same bytes.
	resp2, body2 := post(t, ts.URL+"/v1/solve", req)
	if resp2.Header.Get("X-Cactid-Cached") != "true" {
		t.Error("second solve should be cached")
	}
	if !bytes.Equal(body2, want) {
		t.Error("cached solve body differs")
	}
}

func TestSweepEndpoint(t *testing.T) {
	ts := newTestServer(t, config{})
	req := `{"base":{"ram":"sram","node_nm":32,"block_bytes":64,"associativity":2},
	         "capacities":["32KB","64KB","128KB"]}`
	resp, body := post(t, ts.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var env struct {
		Points  int              `json:"points"`
		Skipped int              `json:"skipped"`
		Results []map[string]any `json:"results"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Points != 3 || env.Skipped != 0 || len(env.Results) != 3 {
		t.Fatalf("envelope %d/%d/%d, want 3/0/3", env.Points, env.Skipped, len(env.Results))
	}
	// Each point carries the same fields as /v1/solve.
	for _, r := range env.Results {
		for _, key := range []string{"access_time_s", "read_energy_j", "leakage_w",
			"area_m2", "fingerprint", "index", "cached"} {
			if _, ok := r[key]; !ok {
				t.Fatalf("result missing %q: %v", key, r)
			}
		}
	}
	if env.Results[0]["capacity_bytes"].(float64) != 32<<10 {
		t.Error("sweep order not deterministic: first point should be 32KB")
	}

	// CSV rendering of the same sweep.
	respCSV, csvBody := post(t, ts.URL+"/v1/sweep?format=csv", req)
	if respCSV.StatusCode != http.StatusOK || !strings.HasPrefix(string(csvBody), "index,fingerprint,ram,") {
		t.Fatalf("csv sweep failed: %d %s", respCSV.StatusCode, csvBody[:min(80, len(csvBody))])
	}
	if got := strings.Count(strings.TrimSpace(string(csvBody)), "\n"); got != 3 {
		t.Fatalf("csv has %d data rows, want 3", got)
	}
}

func TestParetoEndpoint(t *testing.T) {
	ts := newTestServer(t, config{})
	req := `{"base":{"ram":"sram","node_nm":32,"block_bytes":64},
	         "capacities":["32KB","64KB"],"associativities":[1,4],"modes":["normal","seq"]}`
	resp, body := post(t, ts.URL+"/v1/pareto", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var env struct {
		Points  int              `json:"points"`
		Results []map[string]any `json:"results"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Points != 8 {
		t.Fatalf("swept %d points, want 8", env.Points)
	}
	if len(env.Results) == 0 || len(env.Results) >= env.Points {
		t.Fatalf("frontier size %d of %d", len(env.Results), env.Points)
	}
}

func TestRequestValidation(t *testing.T) {
	ts := newTestServer(t, config{maxPoints: 4})
	cases := []struct {
		name, path, body string
		want             int
	}{
		{"malformed-json", "/v1/solve", `{"ram":`, http.StatusBadRequest},
		{"unknown-field", "/v1/solve", `{"rum":"sram"}`, http.StatusBadRequest},
		{"bad-ram", "/v1/solve", `{"ram":"flash","capacity":"1MB"}`, http.StatusBadRequest},
		{"bad-size", "/v1/solve", `{"ram":"sram","capacity":"-1MB"}`, http.StatusBadRequest},
		{"zero-capacity", "/v1/solve", `{"ram":"sram"}`, http.StatusBadRequest},
		{"no-solution", "/v1/solve", `{"ram":"comm-dram","capacity":"1MB","page_bits":7,"cache":false}`,
			http.StatusUnprocessableEntity},
		{"grid-too-big", "/v1/sweep", `{"base":{"ram":"sram"},"capacities":["1MB","2MB","4MB"],
			"associativities":[1,2]}`, http.StatusBadRequest},
		{"unknown-tech", "/v1/solve", `{"tech":"flashy","capacity":"1MB"}`, http.StatusBadRequest},
		{"ambiguous-tech", "/v1/solve", `{"tech":"it","capacity":"1MB"}`, http.StatusBadRequest},
		{"unknown-tech-sweep", "/v1/sweep", `{"base":{"capacity":"64KB"},"techs":["flashy"]}`,
			http.StatusBadRequest},
		{"ambiguous-tech-sweep", "/v1/sweep", `{"base":{"capacity":"64KB"},"techs":["itrs-"]}`,
			http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, ts.URL+tc.path, tc.body)
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.want, body)
			}
			var e map[string]string
			if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
				t.Fatalf("error body not JSON: %s", body)
			}
		})
	}
	// Wrong method on a POST route.
	resp, _ := get(t, ts.URL+"/v1/solve")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/solve = %d, want 405", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t, config{})
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}
}

func TestMetricsReportCacheAndLatency(t *testing.T) {
	ts := newTestServer(t, config{})
	req := `{"ram":"sram","capacity":"32KB","associativity":2}`
	post(t, ts.URL+"/v1/solve", req)
	post(t, ts.URL+"/v1/solve", req) // cache hit
	_, body := get(t, ts.URL+"/metrics")

	var m struct {
		Requests map[string]int64 `json:"requests"`
		Cache    struct {
			Solves   int64   `json:"solves"`
			Hits     int64   `json:"cache_hits"`
			HitRatio float64 `json:"hit_ratio"`
		} `json:"cache"`
		Latency struct {
			Count   int64            `json:"count"`
			Sum     float64          `json:"sum"`
			Buckets []map[string]any `json:"buckets"`
		} `json:"request_latency_seconds"`
		InFlight int64 `json:"in_flight"`
		Solver   struct {
			Considered int64   `json:"orgs_considered"`
			Pruned     int64   `json:"orgs_pruned"`
			Built      int64   `json:"orgs_built"`
			PruneRatio float64 `json:"prune_ratio"`
		} `json:"solver"`
		Runtime struct {
			Goroutines int   `json:"goroutines"`
			HeapAlloc  int64 `json:"heap_alloc"`
			NumGC      int64 `json:"num_gc"`
		} `json:"runtime"`
	}
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, body)
	}
	if m.Requests["solve"] != 2 || m.Requests["metrics"] != 1 {
		t.Fatalf("request counts %v", m.Requests)
	}
	if m.Cache.Solves != 1 || m.Cache.Hits != 1 || m.Cache.HitRatio != 0.5 {
		t.Fatalf("cache counters %+v", m.Cache)
	}
	if m.Latency.Count != 2 || m.Latency.Sum <= 0 {
		t.Fatalf("latency histogram %+v", m.Latency)
	}
	last := m.Latency.Buckets[len(m.Latency.Buckets)-1]
	if last["le"] != "+Inf" || int64(last["count"].(float64)) != 2 {
		t.Fatalf("+Inf bucket %v", last)
	}
	if m.InFlight != 0 {
		t.Fatalf("in_flight %d after quiesce", m.InFlight)
	}
	// Considered covers pruned + built + the rare circuit-build error.
	if m.Solver.Considered <= 0 || m.Solver.Built <= 0 ||
		m.Solver.Considered < m.Solver.Pruned+m.Solver.Built {
		t.Fatalf("solver counters %+v", m.Solver)
	}
	if m.Solver.PruneRatio <= 0 || m.Solver.PruneRatio >= 1 {
		t.Fatalf("prune ratio %g outside (0,1)", m.Solver.PruneRatio)
	}
	if m.Runtime.Goroutines <= 0 || m.Runtime.HeapAlloc <= 0 {
		t.Fatalf("runtime stats %+v", m.Runtime)
	}
}

func TestPprofFlagGatesDebugHandlers(t *testing.T) {
	off := newTestServer(t, config{})
	if resp, _ := get(t, off.URL+"/debug/pprof/"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof index served without -pprof: %d", resp.StatusCode)
	}
	on := newTestServer(t, config{pprof: true})
	resp, body := get(t, on.URL+"/debug/pprof/")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("goroutine")) {
		t.Fatalf("pprof index with -pprof: %d %.80q", resp.StatusCode, body)
	}
	if resp, _ := get(t, on.URL+"/debug/pprof/cmdline"); resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline: %d", resp.StatusCode)
	}
}

func TestPprofRejectsNonLoopbackPeers(t *testing.T) {
	s := mustServer(t, config{pprof: true})
	for _, remote := range []string{"203.0.113.9:4242", "[2001:db8::1]:4242", "10.0.0.7:80"} {
		req := httptest.NewRequest("GET", "/debug/pprof/", nil)
		req.RemoteAddr = remote
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusForbidden {
			t.Errorf("pprof from %s: got %d, want 403", remote, rec.Code)
		}
	}
	for _, remote := range []string{"127.0.0.1:4242", "[::1]:4242"} {
		req := httptest.NewRequest("GET", "/debug/pprof/", nil)
		req.RemoteAddr = remote
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Errorf("pprof from %s: got %d, want 200", remote, rec.Code)
		}
	}
}

func TestConcurrencyBoundRejectsExcess(t *testing.T) {
	slow := func(_ context.Context, spec core.Spec) (*core.Solution, error) {
		time.Sleep(150 * time.Millisecond)
		return &core.Solution{Spec: spec, Data: &array.Bank{}}, nil
	}
	// queueDepth -1: no wait queue, excess requests shed immediately
	// with 429 — the pre-queue behavior, minus the old 503 status.
	ts := newTestServer(t, config{maxInFlight: 1, queueDepth: -1, solver: slow})

	const n = 4
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct capacities: no in-flight dedup between them.
			body := fmt.Sprintf(`{"ram":"sram","capacity":"%dKB","cache":false}`, 32<<i)
			resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			codes[i] = resp.StatusCode
			if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
		}(i)
	}
	wg.Wait()
	ok, busy := 0, 0
	for _, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			busy++
		}
	}
	if ok == 0 || busy == 0 || ok+busy != n {
		t.Fatalf("codes %v: want a mix of 200s and 429s", codes)
	}

	_, body := get(t, ts.URL+"/metrics")
	var m struct {
		Admission struct {
			Queued        int64 `json:"queued"`
			QueueMax      int64 `json:"queue_max"`
			RejectedQueue int64 `json:"rejected_queue_full"`
			RejectedWait  int64 `json:"rejected_wait"`
		} `json:"admission"`
	}
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("metrics: %v\n%s", err, body)
	}
	if got := m.Admission.RejectedQueue + m.Admission.RejectedWait; got != int64(busy) {
		t.Fatalf("admission rejects = %d, want %d (%+v)", got, busy, m.Admission)
	}
	if m.Admission.Queued != 0 || m.Admission.QueueMax != 0 {
		t.Fatalf("no-queue config recorded queue activity: %+v", m.Admission)
	}
}

func TestPerRequestTimeout(t *testing.T) {
	stuck := func(_ context.Context, spec core.Spec) (*core.Solution, error) {
		time.Sleep(300 * time.Millisecond)
		return &core.Solution{Spec: spec, Data: &array.Bank{}}, nil
	}
	ts := newTestServer(t, config{timeout: 30 * time.Millisecond, solver: stuck})
	// A sweep checks its context after solving; the deadline surfaces
	// as 504.
	resp, body := post(t, ts.URL+"/v1/sweep",
		`{"base":{"ram":"sram"},"capacities":["32KB","64KB"]}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, body)
	}
}
