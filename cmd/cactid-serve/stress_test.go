package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"cactid/internal/array"
	"cactid/internal/chaos"
	"cactid/internal/core"
	"cactid/internal/explore"
	"cactid/internal/fabric"
	"cactid/internal/tech"
)

// waitGoroutinesSettle polls until the goroutine count returns to
// (near) its baseline: shed requests and queue waiters must not leave
// goroutines behind once the server and client quiesce.
func waitGoroutinesSettle(t *testing.T, base int) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= base+3 { // slack for runtime helpers
			return
		}
		select {
		case <-deadline:
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func slowSolver(d time.Duration) func(context.Context, core.Spec) (*core.Solution, error) {
	return func(ctx context.Context, spec core.Spec) (*core.Solution, error) {
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return &core.Solution{Spec: spec, Data: &array.Bank{}}, nil
	}
}

// TestServeOverloadShedding drives concurrency far beyond the
// admission bound and checks the overload contract: every request is
// answered 200 or 429 (nothing hangs, nothing 5xx), every shed
// response carries Retry-After, the queue high-water mark never
// exceeds the configured depth, and no goroutines leak.
func TestServeOverloadShedding(t *testing.T) {
	base := runtime.NumGoroutine()
	cfg := config{
		maxInFlight: 2,
		queueDepth:  2,
		queueWait:   50 * time.Millisecond,
		solver:      slowSolver(100 * time.Millisecond),
	}
	s := mustServer(t, cfg)
	ts := httptest.NewServer(s)
	client := ts.Client()

	const n = 32 // ≫ maxInFlight + queueDepth
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct capacities so in-flight dedup never collapses load.
			body := fmt.Sprintf(`{"ram":"sram","capacity":"%dKB","cache":false}`, 32+i)
			resp, err := client.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			codes[i] = resp.StatusCode
			if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
		}(i)
	}
	wg.Wait()

	ok, shed := 0, 0
	for i, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Errorf("request %d: status %d, want 200 or 429", i, c)
		}
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("want a mix of served and shed requests, got %d/%d", ok, shed)
	}

	_, body := get(t, ts.URL+"/metrics")
	var m struct {
		Admission struct {
			Queued        int64 `json:"queued"`
			QueueMax      int64 `json:"queue_max"`
			RejectedQueue int64 `json:"rejected_queue_full"`
			RejectedWait  int64 `json:"rejected_wait"`
			RejectedDrain int64 `json:"rejected_draining"`
		} `json:"admission"`
		Limits struct {
			QueueDepth int64 `json:"queue_depth"`
		} `json:"limits"`
	}
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("metrics: %v\n%s", err, body)
	}
	if m.Admission.QueueMax > m.Limits.QueueDepth {
		t.Fatalf("queue_max %d exceeds queue_depth %d", m.Admission.QueueMax, m.Limits.QueueDepth)
	}
	if m.Admission.Queued != 0 {
		t.Fatalf("queued gauge %d after quiesce", m.Admission.Queued)
	}
	if got := m.Admission.RejectedQueue + m.Admission.RejectedWait; got != int64(shed) {
		t.Fatalf("shed accounting: metrics %d, responses %d", got, shed)
	}
	if m.Admission.RejectedDrain != 0 {
		t.Fatal("drain rejections without a drain")
	}

	client.CloseIdleConnections()
	ts.Close()
	waitGoroutinesSettle(t, base)
}

// TestQueueWaitBudget: a queued request that cannot get a slot within
// queueWait is shed with 429 and counted under rejected_wait.
func TestQueueWaitBudget(t *testing.T) {
	cfg := config{
		maxInFlight: 1,
		queueDepth:  4,
		queueWait:   30 * time.Millisecond,
		solver:      slowSolver(300 * time.Millisecond),
	}
	ts := newTestServer(t, cfg)

	release := make(chan struct{})
	go func() {
		defer close(release)
		post(t, ts.URL+"/v1/solve", `{"ram":"sram","capacity":"32KB","cache":false}`)
	}()
	time.Sleep(20 * time.Millisecond) // let the slot fill

	resp, _ := post(t, ts.URL+"/v1/solve", `{"ram":"sram","capacity":"64KB","cache":false}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queued request past wait budget: %d, want 429", resp.StatusCode)
	}
	<-release

	_, body := get(t, ts.URL+"/metrics")
	var m struct {
		Admission struct {
			RejectedWait int64 `json:"rejected_wait"`
			QueueMax     int64 `json:"queue_max"`
		} `json:"admission"`
	}
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.Admission.RejectedWait != 1 || m.Admission.QueueMax != 1 {
		t.Fatalf("admission %+v, want rejected_wait=1 queue_max=1", m.Admission)
	}
}

// TestDrainShedsQueuedAndNewRequests: drain() answers queued waiters
// and new arrivals with 503 while in-flight work completes, and
// healthz flips unready.
func TestDrainShedsQueuedAndNewRequests(t *testing.T) {
	cfg := config{
		maxInFlight: 1,
		queueDepth:  4,
		queueWait:   5 * time.Second,
		solver:      slowSolver(200 * time.Millisecond),
	}
	s := mustServer(t, cfg)
	ts := httptest.NewServer(s)
	defer ts.Close()

	inflight := make(chan int, 1)
	go func() {
		resp, _ := http.Post(ts.URL+"/v1/solve", "application/json",
			strings.NewReader(`{"ram":"sram","capacity":"32KB","cache":false}`))
		resp.Body.Close()
		inflight <- resp.StatusCode
	}()
	queued := make(chan int, 1)
	go func() {
		time.Sleep(30 * time.Millisecond) // after the slot fills
		resp, _ := http.Post(ts.URL+"/v1/solve", "application/json",
			strings.NewReader(`{"ram":"sram","capacity":"64KB","cache":false}`))
		resp.Body.Close()
		queued <- resp.StatusCode
	}()
	time.Sleep(80 * time.Millisecond) // both requests in place
	s.drain()
	s.drain() // idempotent

	if code := <-queued; code != http.StatusServiceUnavailable {
		t.Fatalf("queued waiter after drain: %d, want 503", code)
	}
	if code := <-inflight; code != http.StatusOK {
		t.Fatalf("in-flight request during drain: %d, want 200", code)
	}
	resp, _ := post(t, ts.URL+"/v1/solve", `{"ram":"sram","capacity":"96KB","cache":false}`)
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("new request on draining server: %d (Retry-After %q), want 503",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if resp, _ := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", resp.StatusCode)
	}
}

// TestDeadlineHeaderShortensTimeout: X-Cactid-Timeout propagates as
// the request deadline when shorter than the server ceiling, and
// cannot extend past it.
func TestDeadlineHeaderShortensTimeout(t *testing.T) {
	ts := newTestServer(t, config{timeout: 5 * time.Second, solver: slowSolver(250 * time.Millisecond)})

	req, _ := http.NewRequest("POST", ts.URL+"/v1/sweep",
		strings.NewReader(`{"base":{"ram":"sram"},"capacities":["32KB","64KB"]}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Cactid-Timeout", "40ms")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("short client deadline: %d, want 504", resp.StatusCode)
	}

	// A header longer than the server ceiling must not extend it.
	s := mustServer(t, config{timeout: time.Millisecond, solver: slowSolver(250 * time.Millisecond)})
	rec := httptest.NewRecorder()
	hreq := httptest.NewRequest("POST", "/v1/sweep",
		strings.NewReader(`{"base":{"ram":"sram"},"capacities":["32KB"]}`))
	hreq.Header.Set("X-Cactid-Timeout", "1h")
	s.ServeHTTP(rec, hreq)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("client cannot extend the ceiling: %d, want 504", rec.Code)
	}
}

// TestChaosServerNoUnexpected5xx arms every injection point at a
// fixed seed and hammers the API: every catalogued point must fire,
// and the server must never answer 5xx — injected faults surface as
// 429, 499 or per-point errors inside 200 envelopes, never as server
// errors. The store.* points prove the durable tier's failure
// semantics: recovery faults are absorbed at Open, read faults
// degrade to misses, write faults drop durability — and no fault mix
// ever yields a corrupt read.
func TestChaosServerNoUnexpected5xx(t *testing.T) {
	base := runtime.NumGoroutine()
	inj := chaos.New(7,
		chaos.Rule{Point: chaos.ServeAdmit, Fault: chaos.Cancel, Rate: 0.25},
		chaos.Rule{Point: chaos.ServeHandler, Fault: chaos.Latency, Rate: 0.5, Latency: time.Millisecond},
		chaos.Rule{Point: chaos.ExploreWorker, Fault: chaos.Panic, Rate: 0.3},
		chaos.Rule{Point: chaos.ExploreSolve, Fault: chaos.Cancel, Rate: 0.3},
		chaos.Rule{Point: chaos.CacheLookup, Fault: chaos.Miss, Rate: 1},
		// Only Cancel at store.recover: Open absorbs injected faults
		// by contract, and a Panic there would (correctly) escape —
		// there is no request to confine it to.
		chaos.Rule{Point: chaos.StoreRecover, Fault: chaos.Cancel, Rate: 1},
		chaos.Rule{Point: chaos.StoreGet, Fault: chaos.Cancel, Rate: 0.3},
		chaos.Rule{Point: chaos.StorePut, Fault: chaos.Cancel, Rate: 0.3},
		chaos.Rule{Point: chaos.FabricDispatch, Fault: chaos.Cancel, Rate: 0.3},
		chaos.Rule{Point: chaos.FabricSteal, Fault: chaos.Cancel, Rate: 0.75},
	)
	fast := func(_ context.Context, spec core.Spec) (*core.Solution, error) {
		return &core.Solution{Spec: spec, Data: &array.Bank{}}, nil
	}
	s := mustServer(t, config{maxInFlight: 4, queueDepth: 4, queueWait: time.Second,
		solver: fast, chaos: inj, storeDir: t.TempDir()})
	ts := httptest.NewServer(s)
	client := ts.Client()

	check := func(resp *http.Response, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode >= 500 {
			t.Fatalf("chaos produced %d, no 5xx allowed outside drain", resp.StatusCode)
		}
	}
	solve := `{"ram":"sram","capacity":"32KB","cache":false}`
	sweep := `{"base":{"ram":"sram","block_bytes":64,"cache":false},"capacities":["32KB","64KB","128KB","256KB"],"associativities":[1,2]}`
	for i := 0; i < 24; i++ {
		// The repeated solve exercises the cache-lookup point (forced
		// misses); sweeps exercise the worker and solve points.
		check(client.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(solve)))
		if i%3 == 0 {
			check(client.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(sweep)))
		}
	}

	// The fabric points arm through a coordinator sharding a sweep
	// across two in-process workers under the same schedule. One
	// worker is deliberately slow, so the fast one runs dry and tries
	// to steal from its queue; injected dispatch cancels exercise the
	// reroute path. Every point must still come back solved.
	slow := func(ctx context.Context, spec core.Spec) (*core.Solution, error) {
		time.Sleep(2 * time.Millisecond)
		return fast(ctx, spec)
	}
	co := fabric.New(fabric.Config{
		Workers: []fabric.Worker{
			&fabric.EngineWorker{WorkerName: "stress-slow",
				Engine: explore.New(explore.Options{Workers: 1, Solver: slow})},
			&fabric.EngineWorker{WorkerName: "stress-fast",
				Engine: explore.New(explore.Options{Workers: 1, Solver: fast})},
		},
		ChunkSize: 1, Chaos: inj,
		Local: explore.New(explore.Options{Workers: 1, Solver: fast}).Sweep,
	})
	fabricSpecs := make([]core.Spec, 24)
	for i := range fabricSpecs {
		fabricSpecs[i] = core.Spec{RAM: tech.SRAM, CapacityBytes: int64(i+1) << 10, BlockBytes: 64}
	}
	for i, r := range co.Sweep(context.Background(), fabricSpecs, nil) {
		if r.Err != nil {
			t.Errorf("fabric point %d failed under chaos: %v", i, r.Err)
		}
	}
	co.Close()

	snap := inj.Snapshot()
	for _, p := range chaos.Points() {
		ps := snap[p]
		if ps.Armed == 0 {
			t.Errorf("point %s never armed", p)
		}
		if ps.Fired() == 0 {
			t.Errorf("point %s armed %d times but never fired", p, ps.Armed)
		}
	}

	// The armed server's /metrics carries the per-point chaos block,
	// and the store block must report zero corrupt reads: faults may
	// cost hits and durability, never integrity.
	_, body := get(t, ts.URL+"/metrics")
	var m struct {
		Chaos map[string]map[string]int64 `json:"chaos"`
		Store map[string]int64            `json:"store"`
	}
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Chaos) != len(chaos.Points()) {
		t.Fatalf("metrics chaos block has %d points, want %d:\n%s", len(m.Chaos), len(chaos.Points()), body)
	}
	if m.Store == nil {
		t.Fatalf("metrics store block missing:\n%s", body)
	}
	if m.Store["corrupt_reads"] != 0 {
		t.Fatalf("chaos run produced %d corrupt reads, want 0", m.Store["corrupt_reads"])
	}
	if m.Store["recover_faults"] != 1 {
		t.Fatalf("recover_faults = %d, want 1 (absorbed at Open)", m.Store["recover_faults"])
	}

	client.CloseIdleConnections()
	ts.Close()
	waitGoroutinesSettle(t, base)
}
