package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cactid/internal/chaos"
	"cactid/internal/core"
	"cactid/internal/explore"
	"cactid/internal/fabric"
	"cactid/internal/store"
)

// config collects the serving knobs.
type config struct {
	addr        string
	timeout     time.Duration // per-request budget (ceiling; X-Cactid-Timeout may shorten it)
	maxInFlight int           // bound on concurrently served /v1 requests
	queueDepth  int           // waiters admitted beyond maxInFlight (-1 = no queue, 0 = 2*maxInFlight)
	queueWait   time.Duration // longest a queued request waits for a slot before 429
	maxPoints   int           // largest accepted sweep grid
	cacheBound  int           // result-cache entry bound (-1 = unbounded, 0 = default)
	workers     int           // solver pool size (0 = GOMAXPROCS)
	noBound     bool          // disable branch-and-bound pruning (A/B escape hatch)
	pprof       bool          // expose net/http/pprof under /debug/pprof/
	storeDir    string        // durable result-store directory ("" = in-memory only)

	// checkpointEvery sets the sweep-job chunk size between durable
	// checkpoints (0 = 32); tests shrink it to exercise resume.
	checkpointEvery int

	// Coordinator mode (internal/fabric): sweeps shard across the
	// worker nodes by spec fingerprint, with work stealing and
	// failure reroute; this node's own engine is the fallback.
	coordinator    bool
	workerNodes    string        // comma-separated worker base URLs; more join via /v1/fabric/register
	fabricChunk    int           // specs per dispatch chunk (0 = fabric default 16)
	heartbeatEvery time.Duration // worker health-probe period (0 = no background probing)

	// solver overrides core.OptimizeContext; tests inject slow or
	// counting solvers through it.
	solver func(context.Context, core.Spec) (*core.Solution, error)
	// chaos arms the serve.admit/serve.handler injection points and
	// is shared with the engine and cache; nil disables injection.
	chaos *chaos.Injector
}

// latencyBuckets are the upper bounds (seconds) of the solve-latency
// histogram; requests slower than the last bound land in +Inf.
const nLatencyBuckets = 13

var latencyBuckets = [nLatencyBuckets]float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// metrics are the expvar-style counters surfaced on /metrics. All
// fields are updated atomically; the handler publishes a consistent-
// enough snapshot without locks.
type metrics struct {
	requests  [nEndpoints]atomic.Int64
	errors    atomic.Int64 // 4xx/5xx responses
	inFlight  atomic.Int64
	histogram [nLatencyBuckets + 1]atomic.Int64
	latSumNS  atomic.Int64
	latCount  atomic.Int64

	// Admission control: the bounded queue behind the in-flight
	// semaphore and each way a request can be shed.
	queued        atomic.Int64 // requests currently waiting for a slot
	queueMax      atomic.Int64 // high-water mark of queued (never exceeds queueDepth)
	rejectedQueue atomic.Int64 // 429: queue already full
	rejectedWait  atomic.Int64 // 429: slot wait exceeded queueWait
	rejectedDrain atomic.Int64 // 503: server draining for shutdown
	panics        atomic.Int64 // handler panics recovered into error responses
}

// high-water update for the queued gauge.
func maxGauge(g *atomic.Int64, v int64) {
	for {
		cur := g.Load()
		if v <= cur || g.CompareAndSwap(cur, v) {
			return
		}
	}
}

type endpoint int

const (
	epSolve endpoint = iota
	epSweep
	epPareto
	epSolveBatch
	epJobSubmit
	epJobGet
	epJobStream
	epStats
	epFabric
	epFabricRegister
	epHealthz
	epMetrics
	nEndpoints
)

func (e endpoint) String() string {
	return [nEndpoints]string{"solve", "sweep", "pareto", "solve_batch",
		"job_submit", "job_get", "job_stream", "stats", "fabric",
		"fabric_register", "healthz", "metrics"}[e]
}

func (m *metrics) observe(d time.Duration) {
	sec := d.Seconds()
	i := 0
	for ; i < len(latencyBuckets); i++ {
		if sec <= latencyBuckets[i] {
			break
		}
	}
	m.histogram[i].Add(1)
	m.latSumNS.Add(int64(d))
	m.latCount.Add(1)
}

// defaultCacheBound is the result-cache entry bound when the flag is
// left at its zero value. One cached solve is a few KB; 16Ki entries
// keep a hot sweep working set while bounding a long-lived server.
const defaultCacheBound = 16384

// server is the cactid-serve HTTP API: the exploration engine behind
// per-request deadlines and a two-stage admission gate (in-flight
// semaphore + bounded wait queue), with a drain state for shutdown.
type server struct {
	eng     *explore.Engine
	cfg     config
	sem     chan struct{}
	mux     *http.ServeMux
	metrics metrics

	// sweep is the node's solve path for multi-point requests: the
	// local engine in worker mode, the fabric coordinator's sharded
	// sweep in coordinator mode. fab is nil outside coordinator mode.
	sweep func(context.Context, []core.Spec) []explore.Result
	fab   *fabric.Coordinator

	// Durability: st is the disk-backed result store (nil without
	// -store) serving as the engine's tier 1 and as the sweep-job
	// checkpoint log; jobs owns the background sweep jobs.
	st   *store.Store
	jobs *jobManager

	// Shutdown drain: drain() flips draining and closes drainCh so
	// queued waiters abandon their slot wait immediately.
	draining  atomic.Bool
	drainCh   chan struct{}
	drainOnce sync.Once
}

func newServer(cfg config) (*server, error) {
	if cfg.timeout <= 0 {
		cfg.timeout = 60 * time.Second
	}
	if cfg.maxInFlight <= 0 {
		cfg.maxInFlight = 32
	}
	switch {
	case cfg.queueDepth < 0:
		cfg.queueDepth = 0 // no queue: shed as soon as the semaphore is full
	case cfg.queueDepth == 0:
		cfg.queueDepth = 2 * cfg.maxInFlight
	}
	if cfg.queueWait <= 0 {
		cfg.queueWait = 5 * time.Second
	}
	if cfg.queueWait > cfg.timeout {
		cfg.queueWait = cfg.timeout
	}
	if cfg.maxPoints <= 0 {
		cfg.maxPoints = 4096
	}
	switch {
	case cfg.cacheBound < 0:
		cfg.cacheBound = 0 // explore.CacheConfig: 0 = unbounded
	case cfg.cacheBound == 0:
		cfg.cacheBound = defaultCacheBound
	}
	var st *store.Store
	var tier1 store.Tiered
	if cfg.storeDir != "" {
		var err error
		st, err = store.Open(store.Config{Dir: cfg.storeDir, Chaos: cfg.chaos})
		if err != nil {
			return nil, fmt.Errorf("open result store: %w", err)
		}
		tier1 = store.NewSolutions(st)
	}
	s := &server{
		eng: explore.New(explore.Options{Workers: cfg.workers, NoBound: cfg.noBound,
			Solver: cfg.solver, CacheEntries: cfg.cacheBound, Chaos: cfg.chaos, Tier1: tier1}),
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.maxInFlight),
		mux:     http.NewServeMux(),
		drainCh: make(chan struct{}),
		st:      st,
	}
	s.sweep = s.eng.Sweep
	if cfg.coordinator {
		s.fab = newFabric(cfg, s.eng)
		s.sweep = func(ctx context.Context, specs []core.Spec) []explore.Result {
			return s.fab.Sweep(ctx, specs, nil)
		}
		s.mux.HandleFunc("GET /v1/fabric", s.handleFabric)
		s.mux.HandleFunc("POST /v1/fabric/register", s.handleFabricRegister)
	}
	s.jobs = newJobManager(s.sweep, st, cfg.checkpointEvery, cfg.maxPoints)
	s.mux.HandleFunc("POST /v1/solve", s.gated(epSolve, s.handleSolve))
	// Like the job views, /v1/stats is a read-only counter snapshot
	// (the coordinator polls it on every worker for cluster-wide
	// aggregation) and bypasses the admission gate.
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/sweep", s.gated(epSweep, s.handleSweep))
	s.mux.HandleFunc("POST /v1/pareto", s.gated(epPareto, s.handlePareto))
	s.mux.HandleFunc("POST /v1/solve-batch", s.gated(epSolveBatch, s.handleSolveBatch))
	s.mux.HandleFunc("POST /v1/sweep-jobs", s.gated(epJobSubmit, s.handleJobSubmit))
	// Polling and streaming are read-only views of background work:
	// they hold no solver resources, so they bypass the admission
	// gate — a streamer parked for minutes must not pin a /v1 slot.
	s.mux.HandleFunc("GET /v1/sweep-jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v1/sweep-jobs/{id}/stream", s.handleJobStream)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.pprof {
		// Ungated by the semaphore: profiling must stay reachable while
		// /v1 is saturated. Loopback-only: the profile endpoints leak
		// symbol tables, heap contents and command lines, so they are
		// never served to non-local peers even when enabled.
		s.mux.HandleFunc("/debug/pprof/", loopbackOnly(pprof.Index))
		s.mux.HandleFunc("/debug/pprof/cmdline", loopbackOnly(pprof.Cmdline))
		s.mux.HandleFunc("/debug/pprof/profile", loopbackOnly(pprof.Profile))
		s.mux.HandleFunc("/debug/pprof/symbol", loopbackOnly(pprof.Symbol))
		s.mux.HandleFunc("/debug/pprof/trace", loopbackOnly(pprof.Trace))
	}
	// Interrupted sweep jobs found in the store pick up where their
	// last checkpoint left off.
	s.jobs.resumeAll()
	return s, nil
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// close releases the server's background resources: job workers stop
// at their next chunk boundary (leaving resumable checkpoints) and
// the durable store is flushed and closed. Call after drain().
func (s *server) close() {
	s.jobs.drain()
	if s.fab != nil {
		s.fab.Close()
	}
	if s.st != nil {
		s.st.Close()
	}
}

// loopbackOnly rejects requests whose peer address is not a loopback
// interface. RemoteAddr is the transport-level peer as filled in by
// net/http (not a spoofable header), so this confines the handler to
// clients on the same host.
func loopbackOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		host, _, err := net.SplitHostPort(r.RemoteAddr)
		if err != nil {
			host = r.RemoteAddr
		}
		if ip := net.ParseIP(host); ip == nil || !ip.IsLoopback() {
			http.Error(w, `{"error":"pprof is loopback-only"}`, http.StatusForbidden)
			return
		}
		h(w, r)
	}
}

// drain moves the server into its shutdown state: every /v1 request
// — queued or newly arriving — is answered 503 with a Retry-After, so
// load balancers move on while in-flight work finishes. Idempotent.
func (s *server) drain() {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		close(s.drainCh)
	})
}

// retryAfterSeconds is the backoff hint sent with every shed
// response: long enough for the queue to turn over once.
func (s *server) retryAfterSeconds() string {
	sec := int(s.cfg.queueWait / time.Second)
	if sec < 1 {
		sec = 1
	}
	return fmt.Sprintf("%d", sec)
}

func (s *server) shed(w http.ResponseWriter, status int, msg string) {
	s.metrics.errors.Add(1)
	w.Header().Set("Retry-After", s.retryAfterSeconds())
	http.Error(w, fmt.Sprintf(`{"error":%q}`, msg), status)
}

// admit runs the admission state machine: take a slot immediately,
// else join the bounded queue and wait. It reports whether the
// request was admitted; if not, it has already written the response.
func (s *server) admit(w http.ResponseWriter, r *http.Request) bool {
	select {
	case s.sem <- struct{}{}:
		return true
	default:
	}
	// Semaphore full: join the queue if there is room.
	q := s.metrics.queued.Add(1)
	if q > int64(s.cfg.queueDepth) {
		s.metrics.queued.Add(-1)
		s.metrics.rejectedQueue.Add(1)
		s.shed(w, http.StatusTooManyRequests, "request queue full")
		return false
	}
	maxGauge(&s.metrics.queueMax, q)
	wait := time.NewTimer(s.cfg.queueWait)
	defer wait.Stop()
	select {
	case s.sem <- struct{}{}:
		s.metrics.queued.Add(-1)
		return true
	case <-wait.C:
		s.metrics.queued.Add(-1)
		s.metrics.rejectedWait.Add(1)
		s.shed(w, http.StatusTooManyRequests, "no capacity within the queue wait budget")
		return false
	case <-s.drainCh:
		s.metrics.queued.Add(-1)
		s.metrics.rejectedDrain.Add(1)
		s.shed(w, http.StatusServiceUnavailable, "server is draining")
		return false
	case <-r.Context().Done():
		s.metrics.queued.Add(-1)
		s.metrics.errors.Add(1)
		s.writeError(w, r.Context().Err()) // 499: the client hung up while queued
		return false
	}
}

// deadline returns the request's time budget: the server ceiling,
// shortened by a client-supplied X-Cactid-Timeout (a Go duration).
// Clients can never extend past the configured timeout.
func (s *server) deadline(r *http.Request) time.Duration {
	budget := s.cfg.timeout
	if hdr := r.Header.Get("X-Cactid-Timeout"); hdr != "" {
		if d, err := time.ParseDuration(hdr); err == nil && d > 0 && d < budget {
			budget = d
		}
	}
	return budget
}

// gated wraps a /v1 handler with the request counters, the admission
// gate (in-flight bound + bounded wait queue, 429/503 shedding), the
// per-request deadline, panic confinement and latency recording.
func (s *server) gated(ep endpoint, h func(http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.requests[ep].Add(1)
		defer func() {
			if v := recover(); v != nil {
				// A handler bug must not kill the connection serving
				// goroutine silently: count it and answer (best
				// effort — headers may already be out).
				s.metrics.panics.Add(1)
				s.metrics.errors.Add(1)
				s.writeError(w, fmt.Errorf("handler panic: %v", v))
			}
		}()
		if s.draining.Load() {
			s.metrics.rejectedDrain.Add(1)
			s.shed(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
		if err := s.cfg.chaos.Inject(r.Context(), chaos.ServeAdmit); err != nil {
			// An injected admission fault sheds the request exactly
			// like a full queue.
			s.metrics.rejectedQueue.Add(1)
			s.shed(w, http.StatusTooManyRequests, "admission rejected (chaos)")
			return
		}
		if !s.admit(w, r) {
			return
		}
		defer func() { <-s.sem }()
		s.metrics.inFlight.Add(1)
		defer s.metrics.inFlight.Add(-1)

		ctx, cancel := context.WithTimeout(r.Context(), s.deadline(r))
		defer cancel()
		start := time.Now()
		err := s.cfg.chaos.Inject(ctx, chaos.ServeHandler)
		if err == nil {
			err = h(w, r.WithContext(ctx))
		}
		s.metrics.observe(time.Since(start))
		if err != nil {
			s.metrics.errors.Add(1)
			s.writeError(w, err)
		}
	}
}

// httpError carries a status code chosen by the handler.
type httpError struct {
	status int
	err    error
}

func (e httpError) Error() string { return e.err.Error() }

func badRequest(err error) error { return httpError{http.StatusBadRequest, err} }

func (s *server) writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var he httpError
	switch {
	case errors.As(err, &he):
		status = he.status
	case errors.Is(err, core.ErrNoSolution):
		status = http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = 499 // client closed request
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func decode[T any](r *http.Request) (T, error) {
	var v T
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&v); err != nil {
		return v, badRequest(fmt.Errorf("bad request body: %w", err))
	}
	return v, nil
}

// handleSolve optimizes one spec. The response body is byte-identical
// to `cactid -json` for the same spec.
func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) error {
	req, err := decode[explore.SpecRequest](r)
	if err != nil {
		return err
	}
	spec, err := req.Spec()
	if err != nil {
		return badRequest(err)
	}
	if s.fab != nil {
		// Coordinator mode: hand the point to its fingerprint owner;
		// fall through to the local engine when no owner is reachable.
		if handled, err := s.proxySolveToOwner(w, r, spec); handled {
			return err
		}
	}
	sol, cached, err := s.eng.Solve(r.Context(), spec)
	if err != nil {
		if errors.Is(err, core.ErrNoSolution) || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return err
		}
		return badRequest(err) // invalid spec
	}
	return writeSolution(w, sol, cached)
}

// writeSolution renders a solved spec exactly like `cactid -json`,
// with the cache-hit marker header.
func writeSolution(w http.ResponseWriter, sol *core.Solution, cached bool) error {
	out, err := json.MarshalIndent(explore.SolutionJSON(sol), "", "  ")
	if err != nil {
		return err
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cactid-Cached", fmt.Sprintf("%t", cached))
	w.Write(append(out, '\n'))
	return nil
}

// sweepGrid decodes and bounds a sweep request, returning the results
// plus skipped-point count.
func (s *server) sweepGrid(r *http.Request) ([]explore.Result, int, error) {
	req, err := decode[explore.SweepRequest](r)
	if err != nil {
		return nil, 0, err
	}
	grid, err := req.Grid()
	if err != nil {
		return nil, 0, badRequest(err)
	}
	if n := grid.Points(); n > s.cfg.maxPoints {
		return nil, 0, badRequest(fmt.Errorf("grid has %d points, limit %d", n, s.cfg.maxPoints))
	}
	specs, skipped := grid.Expand()
	results := s.sweep(r.Context(), specs)
	if err := r.Context().Err(); err != nil {
		return nil, 0, err
	}
	return results, skipped, nil
}

func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) error {
	results, skipped, err := s.sweepGrid(r)
	if err != nil {
		return err
	}
	return writeResults(w, r, results, skipped, len(results))
}

func (s *server) handlePareto(w http.ResponseWriter, r *http.Request) error {
	results, skipped, err := s.sweepGrid(r)
	if err != nil {
		return err
	}
	swept := len(results)
	return writeResults(w, r, explore.Frontier(results), skipped, swept)
}

// batchRequest is the /v1/solve-batch body: an explicit spec list,
// for clients whose points don't form a grid. One admission pays for
// the whole batch.
type batchRequest struct {
	Specs []explore.SpecRequest `json:"specs"`
}

func (s *server) handleSolveBatch(w http.ResponseWriter, r *http.Request) error {
	if r.URL.Query().Get("wire") == "fabric" {
		return s.handleSolveBatchFabric(w, r)
	}
	req, err := decode[batchRequest](r)
	if err != nil {
		return err
	}
	if len(req.Specs) == 0 {
		return badRequest(errors.New("specs is empty"))
	}
	if len(req.Specs) > s.cfg.maxPoints {
		return badRequest(fmt.Errorf("batch has %d specs, limit %d", len(req.Specs), s.cfg.maxPoints))
	}
	specs := make([]core.Spec, len(req.Specs))
	for i, sr := range req.Specs {
		if specs[i], err = sr.Spec(); err != nil {
			return badRequest(fmt.Errorf("specs[%d]: %w", i, err))
		}
	}
	results := s.sweep(r.Context(), specs)
	if err := r.Context().Err(); err != nil {
		return err
	}
	return writeResults(w, r, results, 0, len(results))
}

// jobJSON renders a job's poll/submit view; results are attached only
// on terminal success.
func jobJSON(j *job, withResults bool) map[string]any {
	rec, completed := j.snapshot()
	m := map[string]any{
		"id":        rec.ID,
		"state":     rec.State,
		"points":    rec.Points,
		"skipped":   rec.Skipped,
		"completed": completed,
	}
	if rec.ResumedFrom > 0 {
		m["resumed_from"] = rec.ResumedFrom
	}
	if rec.Error != "" {
		m["error"] = rec.Error
	}
	if withResults && rec.State == jobDone {
		arr := make([]map[string]any, completed)
		for i := 0; i < completed; i++ {
			arr[i] = explore.ResultJSON(j.resultAt(i))
		}
		m["results"] = arr
	}
	return m
}

func writeJSON(w http.ResponseWriter, status int, body any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(body)
}

// handleJobSubmit validates the grid and registers a background sweep
// job; the sweep itself runs outside this request's deadline and
// admission slot. 202 + the job id, for polling or streaming.
func (s *server) handleJobSubmit(w http.ResponseWriter, r *http.Request) error {
	req, err := decode[explore.SweepRequest](r)
	if err != nil {
		return err
	}
	grid, err := req.Grid()
	if err != nil {
		return badRequest(err)
	}
	if n := grid.Points(); n > s.cfg.maxPoints {
		return badRequest(fmt.Errorf("grid has %d points, limit %d", n, s.cfg.maxPoints))
	}
	specs, skipped := grid.Expand()
	j := s.jobs.submit(req, len(specs), skipped)
	return writeJSON(w, http.StatusAccepted, jobJSON(j, false))
}

func (s *server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests[epJobGet].Add(1)
	j := s.jobs.get(r.PathValue("id"))
	if j == nil {
		s.metrics.errors.Add(1)
		s.writeError(w, httpError{http.StatusNotFound, errors.New("no such sweep job")})
		return
	}
	writeJSON(w, http.StatusOK, jobJSON(j, r.URL.Query().Get("results") != "false"))
}

// handleJobStream streams the job's results as they complete: NDJSON
// by default (one ResultJSON per line), or Server-Sent Events when
// the client asks via Accept: text/event-stream. The stream always
// replays the completed prefix first, so reconnecting is lossless,
// and ends with a terminal state line/event.
func (s *server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests[epJobStream].Add(1)
	j := s.jobs.get(r.PathValue("id"))
	if j == nil {
		s.metrics.errors.Add(1)
		s.writeError(w, httpError{http.StatusNotFound, errors.New("no such sweep job")})
		return
	}
	flusher, _ := w.(http.Flusher)
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)

	emit := func(event string, v any) bool {
		buf, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if sse {
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, buf)
		} else {
			fmt.Fprintf(w, "%s\n", buf)
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	sent := 0
	for {
		n, terminal, updated := j.wait()
		for ; sent < n; sent++ {
			if !emit("result", explore.ResultJSON(j.resultAt(sent))) {
				return
			}
		}
		if terminal {
			emit("done", jobJSON(j, false))
			return
		}
		select {
		case <-updated:
		case <-r.Context().Done():
			return
		case <-s.drainCh:
			// Workers stop at the next chunk boundary on drain; end
			// the stream so clients reconnect to the restarted server.
			emit("done", jobJSON(j, false))
			return
		}
	}
}

// writeResults renders a result set as CSV (?format=csv) or as a JSON
// envelope whose entries carry the same fields as /v1/solve.
func writeResults(w http.ResponseWriter, r *http.Request, results []explore.Result, skipped, swept int) error {
	if r.URL.Query().Get("format") == "csv" {
		w.Header().Set("Content-Type", "text/csv")
		return explore.WriteCSV(w, results)
	}
	arr := make([]map[string]any, len(results))
	for i, res := range results {
		arr[i] = explore.ResultJSON(res)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{
		"points":  swept,
		"skipped": skipped,
		"results": arr,
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests[epHealthz].Add(1)
	if s.draining.Load() {
		// Fail the readiness probe first so the balancer stops
		// routing here before the listener closes.
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests[epMetrics].Add(1)
	st := s.eng.Stats()
	reqs := map[string]int64{}
	for ep := endpoint(0); ep < nEndpoints; ep++ {
		reqs[ep.String()] = s.metrics.requests[ep].Load()
	}
	buckets := make([]map[string]any, 0, len(latencyBuckets)+1)
	cum := int64(0)
	for i, ub := range latencyBuckets {
		cum += s.metrics.histogram[i].Load()
		buckets = append(buckets, map[string]any{"le": ub, "count": cum})
	}
	cum += s.metrics.histogram[len(latencyBuckets)].Load()
	buckets = append(buckets, map[string]any{"le": "+Inf", "count": cum})

	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)

	body := map[string]any{
		"requests":        reqs,
		"responses_error": s.metrics.errors.Load(),
		"in_flight":       s.metrics.inFlight.Load(),
		"limits": map[string]any{
			"max_inflight":            s.cfg.maxInFlight,
			"queue_depth":             s.cfg.queueDepth,
			"queue_wait_seconds":      s.cfg.queueWait.Seconds(),
			"request_timeout_seconds": s.cfg.timeout.Seconds(),
			"max_points":              s.cfg.maxPoints,
			"cache_max_entries":       st.CacheMaxEntries,
		},
		"admission": map[string]any{
			"queued":              s.metrics.queued.Load(),
			"queue_max":           s.metrics.queueMax.Load(),
			"rejected_queue_full": s.metrics.rejectedQueue.Load(),
			"rejected_wait":       s.metrics.rejectedWait.Load(),
			"rejected_draining":   s.metrics.rejectedDrain.Load(),
			"draining":            s.draining.Load(),
		},
		"cache": map[string]any{
			"solves":        st.Solves,
			"cache_hits":    st.CacheHits,
			"cache_entries": st.CacheEntries,
			"hit_ratio":     st.HitRatio(),
			"evictions":     st.CacheEvictions,
			"forced_misses": st.CacheForcedMisses,
		},
		"sweep_jobs": s.jobs.stats(),
		"solver": map[string]any{
			"orgs_considered":   st.OrgsConsidered,
			"orgs_pruned":       st.OrgsPruned,
			"orgs_pruned_bound": st.OrgsPrunedBound,
			"orgs_built":        st.OrgsBuilt,
			"prune_ratio":       st.PruneRatio(),
			"panics":            st.Panics + s.metrics.panics.Load(),
		},
		"runtime": map[string]any{
			"goroutines":      runtime.NumGoroutine(),
			"gomaxprocs":      runtime.GOMAXPROCS(0),
			"heap_alloc":      mem.HeapAlloc,
			"heap_objects":    mem.HeapObjects,
			"total_alloc":     mem.TotalAlloc,
			"num_gc":          mem.NumGC,
			"gc_pause_total":  float64(mem.PauseTotalNs) / 1e9,
			"gc_cpu_fraction": mem.GCCPUFraction,
		},
		"request_latency_seconds": map[string]any{
			"count":   s.metrics.latCount.Load(),
			"sum":     float64(s.metrics.latSumNS.Load()) / 1e9,
			"buckets": buckets,
		},
	}
	if s.st != nil {
		// Tiered view: tier-0 numbers live in "cache" above; this
		// block adds the engine's durable-tier counters plus the disk
		// store's own size and recovery stats.
		ss := s.st.Stats()
		body["store"] = map[string]any{
			"tier0_hits":        st.CacheHits,
			"tier1_hits":        st.Tier1Hits,
			"tier1_misses":      st.Tier1Misses,
			"writes":            ss.Puts,
			"keys":              ss.Keys,
			"segments":          ss.Segments,
			"bytes_on_disk":     ss.BytesOnDisk,
			"recovered_records": ss.RecoveredRecords,
			"skipped_records":   ss.SkippedRecords,
			"truncated_bytes":   ss.TruncatedBytes,
			"corrupt_reads":     ss.CorruptReads,
			"index_flushes":     ss.IndexFlushes,
			"get_faults":        ss.GetFaults,
			"put_faults":        ss.PutFaults,
			"recover_faults":    ss.RecoverFaults,
		}
	}
	if s.fab != nil {
		// Coordinator view: per-worker health and dispatch/steal/
		// reroute counters for the sweep fabric.
		body["fabric"] = s.fab.Status()
	}
	if s.cfg.chaos.Enabled() {
		// Per-point fault counters, only when injection is armed: the
		// disabled server's metrics body is unchanged from before.
		ch := map[string]any{}
		for p, ps := range s.cfg.chaos.Snapshot() {
			ch[string(p)] = map[string]int64{
				"armed": ps.Armed, "cancels": ps.Cancels, "latencies": ps.Latencies,
				"panics": ps.Panics, "misses": ps.Misses,
			}
		}
		body["chaos"] = ch
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
}
