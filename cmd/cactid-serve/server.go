package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync/atomic"
	"time"

	"cactid/internal/core"
	"cactid/internal/explore"
)

// config collects the serving knobs.
type config struct {
	addr        string
	timeout     time.Duration // per-request budget
	maxInFlight int           // bound on concurrently served /v1 requests
	maxPoints   int           // largest accepted sweep grid
	workers     int           // solver pool size (0 = GOMAXPROCS)
	pprof       bool          // expose net/http/pprof under /debug/pprof/

	// solver overrides core.OptimizeContext; tests inject slow or
	// counting solvers through it.
	solver func(context.Context, core.Spec) (*core.Solution, error)
}

// latencyBuckets are the upper bounds (seconds) of the solve-latency
// histogram; requests slower than the last bound land in +Inf.
const nLatencyBuckets = 13

var latencyBuckets = [nLatencyBuckets]float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// metrics are the expvar-style counters surfaced on /metrics. All
// fields are updated atomically; the handler publishes a consistent-
// enough snapshot without locks.
type metrics struct {
	requests  [nEndpoints]atomic.Int64
	errors    atomic.Int64 // 4xx/5xx responses
	rejected  atomic.Int64 // 503s from the concurrency bound
	inFlight  atomic.Int64
	histogram [nLatencyBuckets + 1]atomic.Int64
	latSumNS  atomic.Int64
	latCount  atomic.Int64
}

type endpoint int

const (
	epSolve endpoint = iota
	epSweep
	epPareto
	epHealthz
	epMetrics
	nEndpoints
)

func (e endpoint) String() string {
	return [nEndpoints]string{"solve", "sweep", "pareto", "healthz", "metrics"}[e]
}

func (m *metrics) observe(d time.Duration) {
	sec := d.Seconds()
	i := 0
	for ; i < len(latencyBuckets); i++ {
		if sec <= latencyBuckets[i] {
			break
		}
	}
	m.histogram[i].Add(1)
	m.latSumNS.Add(int64(d))
	m.latCount.Add(1)
}

// server is the cactid-serve HTTP API: the exploration engine behind
// per-request timeouts and a bounded-concurrency gate.
type server struct {
	eng     *explore.Engine
	cfg     config
	sem     chan struct{}
	mux     *http.ServeMux
	metrics metrics
}

func newServer(cfg config) *server {
	if cfg.timeout <= 0 {
		cfg.timeout = 60 * time.Second
	}
	if cfg.maxInFlight <= 0 {
		cfg.maxInFlight = 32
	}
	if cfg.maxPoints <= 0 {
		cfg.maxPoints = 4096
	}
	s := &server{
		eng: explore.New(explore.Options{Workers: cfg.workers, Solver: cfg.solver}),
		cfg: cfg,
		sem: make(chan struct{}, cfg.maxInFlight),
		mux: http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/solve", s.gated(epSolve, s.handleSolve))
	s.mux.HandleFunc("POST /v1/sweep", s.gated(epSweep, s.handleSweep))
	s.mux.HandleFunc("POST /v1/pareto", s.gated(epPareto, s.handlePareto))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.pprof {
		// Ungated by the semaphore: profiling must stay reachable while
		// /v1 is saturated. Loopback-only: the profile endpoints leak
		// symbol tables, heap contents and command lines, so they are
		// never served to non-local peers even when enabled.
		s.mux.HandleFunc("/debug/pprof/", loopbackOnly(pprof.Index))
		s.mux.HandleFunc("/debug/pprof/cmdline", loopbackOnly(pprof.Cmdline))
		s.mux.HandleFunc("/debug/pprof/profile", loopbackOnly(pprof.Profile))
		s.mux.HandleFunc("/debug/pprof/symbol", loopbackOnly(pprof.Symbol))
		s.mux.HandleFunc("/debug/pprof/trace", loopbackOnly(pprof.Trace))
	}
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// loopbackOnly rejects requests whose peer address is not a loopback
// interface. RemoteAddr is the transport-level peer as filled in by
// net/http (not a spoofable header), so this confines the handler to
// clients on the same host.
func loopbackOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		host, _, err := net.SplitHostPort(r.RemoteAddr)
		if err != nil {
			host = r.RemoteAddr
		}
		if ip := net.ParseIP(host); ip == nil || !ip.IsLoopback() {
			http.Error(w, `{"error":"pprof is loopback-only"}`, http.StatusForbidden)
			return
		}
		h(w, r)
	}
}

// gated wraps a /v1 handler with the request counters, the
// concurrency bound, the per-request timeout and latency recording.
func (s *server) gated(ep endpoint, h func(http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.requests[ep].Add(1)
		select {
		case s.sem <- struct{}{}:
		default:
			s.metrics.rejected.Add(1)
			s.metrics.errors.Add(1)
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"server at capacity"}`, http.StatusServiceUnavailable)
			return
		}
		defer func() { <-s.sem }()
		s.metrics.inFlight.Add(1)
		defer s.metrics.inFlight.Add(-1)

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.timeout)
		defer cancel()
		start := time.Now()
		err := h(w, r.WithContext(ctx))
		s.metrics.observe(time.Since(start))
		if err != nil {
			s.metrics.errors.Add(1)
			s.writeError(w, err)
		}
	}
}

// httpError carries a status code chosen by the handler.
type httpError struct {
	status int
	err    error
}

func (e httpError) Error() string { return e.err.Error() }

func badRequest(err error) error { return httpError{http.StatusBadRequest, err} }

func (s *server) writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var he httpError
	switch {
	case errors.As(err, &he):
		status = he.status
	case errors.Is(err, core.ErrNoSolution):
		status = http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = 499 // client closed request
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func decode[T any](r *http.Request) (T, error) {
	var v T
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&v); err != nil {
		return v, badRequest(fmt.Errorf("bad request body: %w", err))
	}
	return v, nil
}

// handleSolve optimizes one spec. The response body is byte-identical
// to `cactid -json` for the same spec.
func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) error {
	req, err := decode[explore.SpecRequest](r)
	if err != nil {
		return err
	}
	spec, err := req.Spec()
	if err != nil {
		return badRequest(err)
	}
	sol, cached, err := s.eng.Solve(r.Context(), spec)
	if err != nil {
		if errors.Is(err, core.ErrNoSolution) || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return err
		}
		return badRequest(err) // invalid spec
	}
	out, err := json.MarshalIndent(explore.SolutionJSON(sol), "", "  ")
	if err != nil {
		return err
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cactid-Cached", fmt.Sprintf("%t", cached))
	w.Write(append(out, '\n'))
	return nil
}

// sweepGrid decodes and bounds a sweep request, returning the results
// plus skipped-point count.
func (s *server) sweepGrid(r *http.Request) ([]explore.Result, int, error) {
	req, err := decode[explore.SweepRequest](r)
	if err != nil {
		return nil, 0, err
	}
	grid, err := req.Grid()
	if err != nil {
		return nil, 0, badRequest(err)
	}
	if n := grid.Points(); n > s.cfg.maxPoints {
		return nil, 0, badRequest(fmt.Errorf("grid has %d points, limit %d", n, s.cfg.maxPoints))
	}
	results, skipped := s.eng.SweepGrid(r.Context(), grid)
	if err := r.Context().Err(); err != nil {
		return nil, 0, err
	}
	return results, skipped, nil
}

func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) error {
	results, skipped, err := s.sweepGrid(r)
	if err != nil {
		return err
	}
	return writeResults(w, r, results, skipped, len(results))
}

func (s *server) handlePareto(w http.ResponseWriter, r *http.Request) error {
	results, skipped, err := s.sweepGrid(r)
	if err != nil {
		return err
	}
	swept := len(results)
	return writeResults(w, r, explore.Frontier(results), skipped, swept)
}

// writeResults renders a result set as CSV (?format=csv) or as a JSON
// envelope whose entries carry the same fields as /v1/solve.
func writeResults(w http.ResponseWriter, r *http.Request, results []explore.Result, skipped, swept int) error {
	if r.URL.Query().Get("format") == "csv" {
		w.Header().Set("Content-Type", "text/csv")
		return explore.WriteCSV(w, results)
	}
	arr := make([]map[string]any, len(results))
	for i, res := range results {
		arr[i] = explore.ResultJSON(res)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{
		"points":  swept,
		"skipped": skipped,
		"results": arr,
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests[epHealthz].Add(1)
	w.Write([]byte("ok\n"))
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests[epMetrics].Add(1)
	st := s.eng.Stats()
	reqs := map[string]int64{}
	for ep := endpoint(0); ep < nEndpoints; ep++ {
		reqs[ep.String()] = s.metrics.requests[ep].Load()
	}
	buckets := make([]map[string]any, 0, len(latencyBuckets)+1)
	cum := int64(0)
	for i, ub := range latencyBuckets {
		cum += s.metrics.histogram[i].Load()
		buckets = append(buckets, map[string]any{"le": ub, "count": cum})
	}
	cum += s.metrics.histogram[len(latencyBuckets)].Load()
	buckets = append(buckets, map[string]any{"le": "+Inf", "count": cum})

	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)

	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]any{
		"requests":        reqs,
		"responses_error": s.metrics.errors.Load(),
		"rejected_busy":   s.metrics.rejected.Load(),
		"in_flight":       s.metrics.inFlight.Load(),
		"cache": map[string]any{
			"solves":        st.Solves,
			"cache_hits":    st.CacheHits,
			"cache_entries": st.CacheEntries,
			"hit_ratio":     st.HitRatio(),
		},
		"solver": map[string]any{
			"orgs_considered": st.OrgsConsidered,
			"orgs_pruned":     st.OrgsPruned,
			"orgs_built":      st.OrgsBuilt,
			"prune_ratio":     st.PruneRatio(),
		},
		"runtime": map[string]any{
			"goroutines":      runtime.NumGoroutine(),
			"gomaxprocs":      runtime.GOMAXPROCS(0),
			"heap_alloc":      mem.HeapAlloc,
			"heap_objects":    mem.HeapObjects,
			"total_alloc":     mem.TotalAlloc,
			"num_gc":          mem.NumGC,
			"gc_pause_total":  float64(mem.PauseTotalNs) / 1e9,
			"gc_cpu_fraction": mem.GCCPUFraction,
		},
		"request_latency_seconds": map[string]any{
			"count":   s.metrics.latCount.Load(),
			"sum":     float64(s.metrics.latSumNS.Load()) / 1e9,
			"buckets": buckets,
		},
	})
}
