package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// crossTechPareto sweeps one cache geometry across three technology
// providers — the request shape the technology axis exists for.
const crossTechPareto = `{"base":{"ram":"sram","node_nm":32,"block_bytes":64,"max_pipeline_stages":6},
	"techs":["itrs-sram","stt-ram","gain-cell"],
	"capacities":["64KB","128KB"],
	"associativities":[4]}`

// TestCrossTechParetoDistributedByteIdentical: /v1/pareto over a
// cross-technology grid must answer byte-identically whether the six
// points solve on one node or shard across a two-worker fabric, and
// the frontier must retain more than one technology.
func TestCrossTechParetoDistributedByteIdentical(t *testing.T) {
	co, workers, _ := clusterServers(t, 2, nil)
	coURL := newHTTPServer(t, co).URL
	single := newTestServer(t, config{})

	for _, format := range []string{"", "?format=csv"} {
		resp, want := post(t, single.URL+"/v1/pareto"+format, crossTechPareto)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("single-node status %d: %s", resp.StatusCode, want)
		}
		resp, got := post(t, coURL+"/v1/pareto"+format, crossTechPareto)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("coordinator status %d: %s", resp.StatusCode, got)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("distributed /v1/pareto%s differs from single-node:\n%s\nvs\n%s", format, want, got)
		}
	}

	// All solving happened on the workers; the coordinator only merged.
	if co.eng.Stats().Solves != 0 {
		t.Fatalf("coordinator solved %d points locally", co.eng.Stats().Solves)
	}
	var clusterSolves int64
	for _, ws := range workers {
		clusterSolves += ws.eng.Stats().Solves
	}
	if clusterSolves != 6 {
		t.Fatalf("cluster solved %d points for 6 specs", clusterSolves)
	}

	// The JSON frontier spans technologies.
	_, body := post(t, single.URL+"/v1/pareto", crossTechPareto)
	var env struct {
		Results []struct {
			Technology string `json:"technology"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, r := range env.Results {
		seen[r.Technology] = true
	}
	if len(seen) < 2 {
		t.Fatalf("frontier collapsed to one technology: %v", seen)
	}
}

// TestWarmRestartMixedTechnologyStore: a store populated by a
// cross-technology sweep must serve a restarted server — hard stop,
// no drain — byte-identically with zero re-solves, proving the
// technology axis is part of the durable record identity.
func TestWarmRestartMixedTechnologyStore(t *testing.T) {
	if testing.Short() {
		t.Skip("real solver")
	}
	dir := warmStoreDir(t)
	sweep := `{"base":{"ram":"sram","node_nm":32,"block_bytes":64,"max_pipeline_stages":6},
		"techs":["itrs-sram","stt-ram","gain-cell"],
		"capacities":["64KB"],"associativities":[1,4]}`

	sA, err := newServer(config{storeDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(sA)
	post(t, tsA.URL+"/v1/sweep", sweep) // cold: populates the store
	_, warmBody := post(t, tsA.URL+"/v1/sweep", sweep)
	// The kill: the HTTP listener and the store drop with no graceful
	// job drain — everything the next process sees is what already
	// reached disk.
	tsA.Close()
	sA.close()

	sB := mustServer(t, config{storeDir: dir})
	tsB := httptest.NewServer(sB)
	defer tsB.Close()
	resp, restartBody := post(t, tsB.URL+"/v1/sweep", sweep)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restart sweep: %d", resp.StatusCode)
	}
	if !bytes.Equal(warmBody, restartBody) {
		t.Fatalf("mixed-tech restart sweep not byte-identical:\n%s\nvs\n%s", warmBody, restartBody)
	}
	if solves := sB.eng.Stats().Solves; solves != 0 {
		t.Fatalf("restarted server re-solved %d points, want 0", solves)
	}

	// Every technology's record really is keyed apart: each single
	// solve is a durable hit, including the NVM one with its write
	// metrics intact.
	resp, body := post(t, tsB.URL+"/v1/solve",
		`{"tech":"stt-ram","capacity":"64KB","associativity":4,"block_bytes":64,"node_nm":32,"max_pipeline_stages":6}`)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cactid-Cached") != "true" {
		t.Fatalf("stt-ram solve after restart: status %d cached=%q", resp.StatusCode, resp.Header.Get("X-Cactid-Cached"))
	}
	if !strings.Contains(string(body), "write_endurance_cycles") {
		t.Fatalf("rehydrated stt-ram solution lost its endurance: %s", body)
	}
	if solves := sB.eng.Stats().Solves; solves != 0 {
		t.Fatalf("solve after restart ran the solver %d times", solves)
	}
}
