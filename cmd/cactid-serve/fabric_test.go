package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// sweepBody is a 24-point grid request reused across the cluster
// tests; small enough for fast real solves, large enough to shard.
const sweepBody = `{"base":{"ram":"sram","node_nm":32,"block_bytes":64},
	"capacities":["32KB","64KB","128KB"],
	"associativities":[1,2,4,8],
	"modes":["normal","seq"]}`

// clusterServers starts n worker nodes plus a coordinator wired to
// them over loopback HTTP, returning (coordinator, workers).
func clusterServers(t *testing.T, n int, mutate func(*config)) (*server, []*server, string) {
	t.Helper()
	workers := make([]*server, n)
	urls := ""
	for i := range workers {
		workers[i] = mustServer(t, config{})
		ts := newHTTPServer(t, workers[i])
		if urls != "" {
			urls += ","
		}
		urls += ts.URL
	}
	cfg := config{coordinator: true, workerNodes: urls, fabricChunk: 2}
	if mutate != nil {
		mutate(&cfg)
	}
	co := mustServer(t, cfg)
	return co, workers, urls
}

func newHTTPServer(t *testing.T, s *server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

// TestCoordinatorSweepByteIdenticalOverHTTP drives the full wire
// path: a coordinator sharding a real sweep across two worker nodes
// over HTTP must answer /v1/sweep (JSON and CSV) byte-identically to
// a plain single-node server.
func TestCoordinatorSweepByteIdenticalOverHTTP(t *testing.T) {
	// A fresh cluster per format: byte-identity is a cold-sweep
	// guarantee. On a warm repeat a chunk stolen during the first
	// sweep leaves its cache entry on the non-owner, so the owner
	// re-solves it and the cached flags legitimately diverge.
	for _, format := range []string{"", "?format=csv"} {
		co, workers, _ := clusterServers(t, 2, nil)
		coURL := newHTTPServer(t, co).URL
		single := newTestServer(t, config{})

		resp, want := post(t, single.URL+"/v1/sweep"+format, sweepBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("single-node status %d: %s", resp.StatusCode, want)
		}
		resp, got := post(t, coURL+"/v1/sweep"+format, sweepBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("coordinator status %d: %s", resp.StatusCode, got)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("distributed /v1/sweep%s differs from single-node", format)
		}

		// The work actually ran on the workers, exactly once per
		// point, and nothing ran on the coordinator's own engine.
		var clusterSolves int64
		for _, ws := range workers {
			clusterSolves += ws.eng.Stats().Solves
		}
		if clusterSolves != 24 {
			t.Fatalf("cluster solved %d points for 24 specs (exactly-once violated)", clusterSolves)
		}
		if co.eng.Stats().Solves != 0 {
			t.Fatalf("coordinator engine solved %d points; all work should be remote", co.eng.Stats().Solves)
		}
	}
}

// TestCoordinatorSolveRoutesToOwner: single solves go to the spec's
// fingerprint owner, so repeat traffic hits that worker's cache.
func TestCoordinatorSolveRoutesToOwner(t *testing.T) {
	co, workers, _ := clusterServers(t, 2, nil)
	coURL := newHTTPServer(t, co).URL

	req := `{"ram":"sram","capacity":"64KB","associativity":4,"block_bytes":64,"node_nm":32}`
	resp, body := post(t, coURL+"/v1/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Cactid-Cached") != "false" {
		t.Fatal("first solve reported cached")
	}
	resp, _ = post(t, coURL+"/v1/solve", req)
	if resp.Header.Get("X-Cactid-Cached") != "true" {
		t.Fatal("repeat solve missed the owner's cache")
	}
	solves := workers[0].eng.Stats().Solves + workers[1].eng.Stats().Solves
	if solves != 1 || co.eng.Stats().Solves != 0 {
		t.Fatalf("owner routing off: worker solves=%d coordinator solves=%d", solves, co.eng.Stats().Solves)
	}
}

// TestCoordinatorSurvivesDeadWorkerNode: one configured worker URL
// points at a dead port; the sweep reroutes to the live worker and
// stays byte-identical, and /v1/fabric records the failure.
func TestCoordinatorSurvivesDeadWorkerNode(t *testing.T) {
	live := mustServer(t, config{})
	liveURL := newHTTPServer(t, live).URL
	// A listener that is closed immediately: connection refused.
	deadTS := httptest.NewServer(http.NotFoundHandler())
	deadURL := deadTS.URL
	deadTS.Close()

	co := mustServer(t, config{coordinator: true,
		workerNodes: liveURL + "," + deadURL, fabricChunk: 2})
	coURL := newHTTPServer(t, co).URL
	single := newTestServer(t, config{})

	_, want := post(t, single.URL+"/v1/sweep", sweepBody)
	resp, got := post(t, coURL+"/v1/sweep", sweepBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("sweep with a dead worker differs from single-node")
	}

	resp, body := get(t, coURL+"/v1/fabric")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/fabric status %d: %s", resp.StatusCode, body)
	}
	var view struct {
		Fabric struct {
			HealthyWorkers   int   `json:"healthy_workers"`
			DispatchFailures int64 `json:"dispatch_failures"`
			DuplicateResults int64 `json:"duplicate_results"`
		} `json:"fabric"`
		ClusterStats struct {
			Solves int64 `json:"solves"`
		} `json:"cluster_stats"`
	}
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatalf("bad /v1/fabric body: %v\n%s", err, body)
	}
	if view.Fabric.HealthyWorkers != 1 {
		t.Fatalf("healthy_workers = %d, want 1", view.Fabric.HealthyWorkers)
	}
	if view.Fabric.DispatchFailures == 0 {
		t.Fatal("dead worker produced no dispatch failures")
	}
	if view.Fabric.DuplicateResults != 0 {
		t.Fatalf("%d duplicate deliveries", view.Fabric.DuplicateResults)
	}
	if view.ClusterStats.Solves != 24 {
		t.Fatalf("cluster stats report %d solves for 24 specs", view.ClusterStats.Solves)
	}
}

// TestFabricRegisterJoinsWorker: a coordinator started with no
// workers serves sweeps locally until a worker registers, after
// which the work moves to the worker.
func TestFabricRegisterJoinsWorker(t *testing.T) {
	co := mustServer(t, config{coordinator: true, fabricChunk: 2})
	coURL := newHTTPServer(t, co).URL
	worker := mustServer(t, config{})
	workerURL := newHTTPServer(t, worker).URL

	// No workers yet: the local fallback serves the sweep.
	resp, body := post(t, coURL+"/v1/sweep", sweepBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if co.eng.Stats().Solves != 24 {
		t.Fatalf("local fallback solved %d/24 points", co.eng.Stats().Solves)
	}

	resp, body = post(t, coURL+"/v1/fabric/register", fmt.Sprintf(`{"url":%q}`, workerURL))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register status %d: %s", resp.StatusCode, body)
	}
	var reg struct {
		Registered bool `json:"registered"`
		Workers    int  `json:"workers"`
	}
	if err := json.Unmarshal(body, &reg); err != nil || !reg.Registered || reg.Workers != 1 {
		t.Fatalf("register reply %s (err %v)", body, err)
	}

	// A fresh grid (different block size -> new fingerprints) now
	// runs on the worker.
	fresh := `{"base":{"ram":"sram","node_nm":32,"block_bytes":32},
		"capacities":["32KB","64KB"],"associativities":[1,2]}`
	if resp, body := post(t, coURL+"/v1/sweep", fresh); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := worker.eng.Stats().Solves; got != 4 {
		t.Fatalf("registered worker solved %d/4 points", got)
	}

	// /v1/solve-batch?wire=fabric on a non-coordinator worker is the
	// dispatch surface; /v1/fabric must stay coordinator-only.
	if resp, _ := get(t, workerURL+"/v1/fabric"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/v1/fabric on a worker answered %d, want 404", resp.StatusCode)
	}
}

// TestMetricsFabricBlock: coordinator /metrics carries the fabric
// block; worker /metrics does not.
func TestMetricsFabricBlock(t *testing.T) {
	co, _, _ := clusterServers(t, 1, nil)
	coURL := newHTTPServer(t, co).URL
	post(t, coURL+"/v1/sweep", sweepBody)
	_, body := get(t, coURL+"/metrics")
	var m map[string]json.RawMessage
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["fabric"]; !ok {
		t.Fatal("coordinator /metrics lacks the fabric block")
	}

	worker := newTestServer(t, config{})
	_, body = get(t, worker.URL+"/metrics")
	m = nil
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["fabric"]; ok {
		t.Fatal("worker /metrics unexpectedly carries a fabric block")
	}
}

// TestStatsEndpoint: every node serves its engine counters on
// /v1/stats for cluster aggregation.
func TestStatsEndpoint(t *testing.T) {
	ts := newTestServer(t, config{})
	post(t, ts.URL+"/v1/solve", `{"ram":"sram","capacity":"64KB","associativity":4,"block_bytes":64,"node_nm":32}`)
	_, body := get(t, ts.URL+"/v1/stats")
	var st struct {
		Solves int64 `json:"solves"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Solves != 1 {
		t.Fatalf("/v1/stats solves = %d, want 1", st.Solves)
	}
}
