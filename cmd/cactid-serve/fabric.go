package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"cactid/internal/core"
	"cactid/internal/explore"
	"cactid/internal/fabric"
)

// newFabric builds the sweep coordinator from the -worker-nodes list.
// The local engine is the fallback of last resort, so a coordinator
// with no reachable workers degrades to a plain single-node server.
func newFabric(cfg config, eng *explore.Engine) *fabric.Coordinator {
	var workers []fabric.Worker
	for _, u := range strings.Split(cfg.workerNodes, ",") {
		if u = strings.TrimSpace(u); u != "" {
			workers = append(workers, fabric.NewHTTPWorker(u))
		}
	}
	return fabric.New(fabric.Config{
		Workers:   workers,
		ChunkSize: cfg.fabricChunk,
		Heartbeat: cfg.heartbeatEvery,
		Chaos:     cfg.chaos,
		Local:     eng.Sweep,
	})
}

// handleSolveBatchFabric is the ?wire=fabric dispatch path: native
// core.Spec values in, transportable wire results out. Always served
// by the local engine — never re-distributed — so a mis-wired
// coordinator-to-coordinator loop cannot amplify. Context cutoffs are
// reported per point (error kind "canceled"/"deadline") rather than
// failing the batch: the coordinator re-dispatches exactly the points
// that were cut off.
func (s *server) handleSolveBatchFabric(w http.ResponseWriter, r *http.Request) error {
	req, err := decode[fabric.BatchRequest](r)
	if err != nil {
		return err
	}
	if len(req.Specs) == 0 {
		return badRequest(errors.New("specs is empty"))
	}
	if len(req.Specs) > s.cfg.maxPoints {
		return badRequest(fmt.Errorf("batch has %d specs, limit %d", len(req.Specs), s.cfg.maxPoints))
	}
	results := s.eng.Sweep(r.Context(), req.Specs)
	out := fabric.BatchResponse{Results: make([]fabric.WireResult, len(results))}
	for i, res := range results {
		out.Results[i] = fabric.ToWire(res)
	}
	return writeJSON(w, http.StatusOK, out)
}

// handleStats serves the engine's counters for cluster aggregation
// (explore.Stats marshals directly; coordinators merge worker
// snapshots via Stats.Merge).
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests[epStats].Add(1)
	writeJSON(w, http.StatusOK, s.eng.Stats())
}

// handleFabric is the coordinator's cluster view: per-worker health
// and dispatch counters, plus the merged cluster-wide engine stats
// (workers' counters plus this node's own engine).
func (s *server) handleFabric(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests[epFabric].Add(1)
	writeJSON(w, http.StatusOK, map[string]any{
		"fabric":        s.fab.Status(),
		"cluster_stats": s.fab.ClusterStats(r.Context()).Merge(s.eng.Stats()),
	})
}

// registerRequest is the /v1/fabric/register body.
type registerRequest struct {
	URL string `json:"url"`
}

// handleFabricRegister lets a worker node join (or rejoin) the
// fabric; subsequent sweeps include it on the ring. Re-registering a
// known worker marks it healthy again.
func (s *server) handleFabricRegister(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests[epFabricRegister].Add(1)
	if s.draining.Load() {
		s.metrics.rejectedDrain.Add(1)
		s.shed(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	req, err := decode[registerRequest](r)
	if err != nil {
		s.metrics.errors.Add(1)
		s.writeError(w, err)
		return
	}
	if strings.TrimSpace(req.URL) == "" {
		s.metrics.errors.Add(1)
		s.writeError(w, badRequest(errors.New("url is empty")))
		return
	}
	worker := fabric.NewHTTPWorker(req.URL)
	fresh := s.fab.Register(worker)
	writeJSON(w, http.StatusOK, map[string]any{
		"registered": fresh,
		"worker":     worker.Name(),
		"workers":    len(s.fab.Status().Workers),
	})
}

// proxySolveToOwner routes a single solve to the worker owning the
// spec's fingerprint — the same placement sweeps use, so interactive
// solves and sweeps share one cache/store owner per spec and repeat
// traffic stays warm. Reports handled=false (and no response written)
// when the point should be solved locally instead: no healthy remote
// owner, an unfingerprint-able spec, or a transport failure.
func (s *server) proxySolveToOwner(w http.ResponseWriter, r *http.Request, spec core.Spec) (handled bool, err error) {
	fp, err := spec.Fingerprint()
	if err != nil {
		return false, nil // invalid spec: the local path reports it
	}
	hw, ok := s.fab.Owner(fp).(*fabric.HTTPWorker)
	if !ok {
		return false, nil
	}
	wres, err := hw.SolveBatch(r.Context(), []core.Spec{spec})
	if err != nil || len(wres) != 1 {
		return false, nil // owner unreachable: local fallback
	}
	res := fabric.FromWire(wres[0])
	if res.Err != nil {
		// Same classification as the local path: model and context
		// errors pass through (wire errors keep errors.Is identity),
		// anything else is a bad spec.
		if errors.Is(res.Err, core.ErrNoSolution) ||
			errors.Is(res.Err, context.DeadlineExceeded) ||
			errors.Is(res.Err, context.Canceled) {
			return true, res.Err
		}
		return true, badRequest(res.Err)
	}
	return true, writeSolution(w, res.Solution, res.Cached)
}
