package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"sync"
	"sync/atomic"

	"cactid/internal/core"
	"cactid/internal/explore"
	"cactid/internal/store"
)

// jobKeyPrefix namespaces sweep-job checkpoint records in the durable
// store, away from the "s:<version>:" solution records.
const jobKeyPrefix = "j:"

// jobRecord is the durable face of a sweep job: everything a
// restarted server needs to resume it. The grid request (not the
// expanded spec list) is persisted — expansion is deterministic, so
// replaying it reproduces the identical point order.
type jobRecord struct {
	ID           string               `json:"id"`
	Request      explore.SweepRequest `json:"request"`
	ModelVersion int                  `json:"model_version"`
	Points       int                  `json:"points"`  // grid points after expansion
	Skipped      int                  `json:"skipped"` // infeasible points the planner dropped
	Cursor       int                  `json:"cursor"`  // completed-result prefix length at last checkpoint
	State        string               `json:"state"`   // "running" | "done" | "failed"
	Error        string               `json:"error,omitempty"`
	ResumedFrom  int                  `json:"resumed_from,omitempty"` // checkpoint cursor this run resumed at
}

const (
	jobRunning = "running"
	jobDone    = "done"
	jobFailed  = "failed"
)

// job is one in-memory sweep job. results grows monotonically as
// chunks complete; updated is a broadcast channel, closed and
// replaced on every append, so any number of streamers can wait for
// "more results or done" without polling.
type job struct {
	mu      sync.Mutex
	rec     jobRecord        // guarded by mu
	results []explore.Result // guarded by mu; completed prefix, in grid order
	updated chan struct{}    // guarded by mu (the field; receivers hold a copy)
}

func (j *job) snapshot() (jobRecord, int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rec, len(j.results)
}

// wait returns the current result count, terminal state, and a
// channel that closes on the next change.
func (j *job) wait() (n int, terminal bool, ch chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.results), j.rec.State != jobRunning, j.updated
}

// resultAt copies one completed result.
func (j *job) resultAt(i int) explore.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.results[i]
}

// jobManager owns the sweep jobs: submission, background execution
// with durable checkpoints, and resume of interrupted jobs on server
// start. Job workers run outside the admission gate — a long sweep
// must not starve interactive /v1 traffic of its slots; the engine's
// shared worker pool is the actual CPU bound.
type jobManager struct {
	// sweep is the solve path for job chunks: the local engine's Sweep
	// in worker mode, the fabric coordinator's distributed sweep in
	// coordinator mode. Both share the contract that results come back
	// in input order with chunk-relative indices, canceled tails marked
	// with the context error.
	sweep           func(context.Context, []core.Spec) []explore.Result
	st              *store.Store // nil: jobs run without durability
	checkpointEvery int
	maxPoints       int

	ctx    context.Context // canceled on server drain
	cancel context.CancelFunc

	mu   sync.Mutex
	jobs map[string]*job // guarded by mu

	submitted atomic.Int64
	completed atomic.Int64
	resumed   atomic.Int64
	wg        sync.WaitGroup
}

func newJobManager(sweep func(context.Context, []core.Spec) []explore.Result, st *store.Store, checkpointEvery, maxPoints int) *jobManager {
	if checkpointEvery <= 0 {
		checkpointEvery = 32
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &jobManager{
		sweep: sweep, st: st,
		checkpointEvery: checkpointEvery,
		maxPoints:       maxPoints,
		ctx:             ctx, cancel: cancel,
		jobs: make(map[string]*job),
	}
}

// drain stops the background workers at the next chunk boundary and
// waits for them; checkpoints already written keep their progress.
func (m *jobManager) drain() {
	m.cancel()
	m.wg.Wait()
}

func newJobID() string {
	var b [8]byte
	rand.Read(b[:]) // crypto/rand.Read never fails on supported platforms
	return hex.EncodeToString(b[:])
}

// submit registers a new job and starts its worker. The request must
// already be validated (grid compiles, point count within bounds).
func (m *jobManager) submit(req explore.SweepRequest, points, skipped int) *job {
	id := newJobID()
	j := &job{
		rec: jobRecord{
			ID: id, Request: req, ModelVersion: core.ModelVersion,
			Points: points, Skipped: skipped, State: jobRunning,
		},
		updated: make(chan struct{}),
	}
	m.mu.Lock()
	m.jobs[id] = j
	m.mu.Unlock()
	m.submitted.Add(1)
	m.checkpoint(j)
	m.start(j)
	return j
}

func (m *jobManager) start(j *job) {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		m.run(j)
	}()
}

// get returns a job by id, faulting it in from the durable store if
// this process has never seen it (a poll or stream hitting a
// restarted server before resume finished, or for a finished job
// whose results replay for free out of tier 1).
func (m *jobManager) get(id string) *job {
	m.mu.Lock()
	j := m.jobs[id]
	m.mu.Unlock()
	if j != nil {
		return j
	}
	rec, ok := m.loadRecord(id)
	if !ok {
		return nil
	}
	return m.revive(rec)
}

// revive re-registers a persisted job and restarts its sweep from
// point 0 — completed points replay out of the durable solution tier
// with zero solver work, so this resumes "from the checkpoint" in
// cost terms while rebuilding the full in-memory result prefix that
// polls and streams serve. Idempotent per id within one process.
func (m *jobManager) revive(rec jobRecord) *job {
	m.mu.Lock()
	if existing := m.jobs[rec.ID]; existing != nil {
		m.mu.Unlock()
		return existing
	}
	wasDone := rec.State == jobDone
	if rec.Cursor > 0 || wasDone {
		rec.ResumedFrom = rec.Cursor
	}
	rec.Cursor = 0
	rec.State = jobRunning
	rec.Error = ""
	j := &job{rec: rec, updated: make(chan struct{})}
	m.jobs[rec.ID] = j
	m.mu.Unlock()
	if !wasDone {
		m.resumed.Add(1)
	}
	m.start(j)
	return j
}

// resumeAll revives every interrupted job found in the store; called
// once at server start. Finished jobs are left on disk and revived
// lazily when a client asks for them.
func (m *jobManager) resumeAll() {
	if m.st == nil {
		return
	}
	for _, key := range m.st.Keys(jobKeyPrefix) {
		rec, ok := m.loadRecord(key[len(jobKeyPrefix):])
		if ok && rec.State == jobRunning {
			m.revive(rec)
		}
	}
}

func (m *jobManager) loadRecord(id string) (jobRecord, bool) {
	if m.st == nil {
		return jobRecord{}, false
	}
	val, ok, err := m.st.Get(m.ctx, jobKeyPrefix+id)
	if err != nil || !ok {
		return jobRecord{}, false
	}
	var rec jobRecord
	if json.Unmarshal(val, &rec) != nil || rec.ID != id {
		return jobRecord{}, false
	}
	return rec, true
}

// checkpoint persists the job's record; a write fault costs resume
// granularity, not correctness.
func (m *jobManager) checkpoint(j *job) {
	if m.st == nil {
		return
	}
	rec, _ := j.snapshot()
	val, err := json.Marshal(rec)
	if err != nil {
		return
	}
	_ = m.st.Put(m.ctx, jobKeyPrefix+rec.ID, val)
}

// run executes the job's sweep in checkpointed chunks. A drain
// cancellation stops at the chunk boundary with the job still
// "running" on disk, which is exactly what resumeAll looks for.
func (m *jobManager) run(j *job) {
	rec, _ := j.snapshot()
	grid, err := rec.Request.Grid()
	if err != nil {
		m.fail(j, err)
		return
	}
	specs, _ := grid.Expand()
	for cur := 0; cur < len(specs); {
		if m.ctx.Err() != nil {
			return // interrupted: checkpoint already reflects the done prefix
		}
		end := cur + m.checkpointEvery
		if end > len(specs) {
			end = len(specs)
		}
		chunk := m.sweep(m.ctx, specs[cur:end])
		// Keep only the prefix untouched by cancellation: a canceled
		// point says nothing about its spec and must not be recorded
		// (resume would otherwise serve it as a real failure).
		good := 0
		for _, r := range chunk {
			if r.Err != nil && (errors.Is(r.Err, context.Canceled) || errors.Is(r.Err, context.DeadlineExceeded)) {
				break
			}
			good++
		}
		j.mu.Lock()
		for i := 0; i < good; i++ {
			r := chunk[i]
			r.Index = cur + i // chunk-relative -> grid-relative
			j.results = append(j.results, r)
		}
		j.rec.Cursor = len(j.results)
		close(j.updated) // broadcast "more results"
		j.updated = make(chan struct{})
		j.mu.Unlock()
		m.checkpoint(j)
		if good < len(chunk) {
			return // canceled mid-chunk; still "running" for resume
		}
		cur = end
	}
	j.mu.Lock()
	j.rec.State = jobDone
	close(j.updated) // broadcast terminal state
	j.updated = make(chan struct{})
	j.mu.Unlock()
	m.completed.Add(1)
	m.checkpoint(j)
}

func (m *jobManager) fail(j *job, err error) {
	j.mu.Lock()
	j.rec.State = jobFailed
	j.rec.Error = err.Error()
	close(j.updated) // broadcast terminal state
	j.updated = make(chan struct{})
	j.mu.Unlock()
	m.checkpoint(j)
}

// jobStats is the /metrics sweep_jobs block.
type jobStats struct {
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Resumed   int64 `json:"resumed"`
	Active    int   `json:"active"`
}

func (m *jobManager) stats() jobStats {
	m.mu.Lock()
	active := 0
	for _, j := range m.jobs {
		if rec, _ := j.snapshot(); rec.State == jobRunning {
			active++
		}
	}
	m.mu.Unlock()
	return jobStats{
		Submitted: m.submitted.Load(),
		Completed: m.completed.Load(),
		Resumed:   m.resumed.Load(),
		Active:    active,
	}
}
