// Command validate regenerates the paper's model-validation results:
// Figure 1 (65nm Intel Xeon 16MB L3 bubble chart), the 90nm Sun SPARC
// 4MB L2 check, and Table 2 (78nm Micron 1Gb DDR3-1066 x8 DRAM).
//
// Usage:
//
//	validate            # run everything
//	validate -xeon      # Figure 1 only
//	validate -sparc     # SPARC L2 only
//	validate -micron    # Table 2 only
package main

import (
	"flag"
	"fmt"
	"os"

	"cactid/internal/validate"
)

func main() {
	var (
		xeon   = flag.Bool("xeon", false, "run only the Xeon L3 validation (Figure 1)")
		sparc  = flag.Bool("sparc", false, "run only the SPARC L2 validation")
		micron = flag.Bool("micron", false, "run only the Micron DDR3 validation (Table 2)")
		edram  = flag.Bool("edram", false, "run only the eDRAM macro (LP-DRAM) validation")
	)
	flag.Parse()
	all := !*xeon && !*sparc && !*micron && !*edram

	if all || *xeon {
		r, err := validate.Xeon()
		if err != nil {
			fatal(err)
		}
		fmt.Print(validate.FormatBubbles(r))
		fmt.Println()
	}
	if all || *sparc {
		r, err := validate.SPARC()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("90nm SPARC 4MB L2: target acc %.2fns / %.1fmm2 / %.1fW; model acc %.2fns / %.1fmm2 / %.2fW; avg |error| %.1f%%\n\n",
			r.Target.AccessTime*1e9, r.Target.Area*1e6, r.Target.Power,
			r.Best.AccessTime*1e9, r.Best.Area*1e6, r.Best.Power, r.AvgError*100)
	}
	if all || *edram {
		r, err := validate.EDRAMMacro()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("90nm LP-DRAM 2MB macro: acc %.2fns (target 1.7), row cycle %.2fns (target ~8), interleaved %.2fns (500MHz-capable: %v); avg |error| %.1f%%\n\n",
			r.AccessTime*1e9, r.RandomCycle*1e9, r.InterleaveCycle*1e9, r.InterleaveCycle <= 2e-9, r.AvgError*100)
	}
	if all || *micron {
		rows, chip, err := validate.Micron()
		if err != nil {
			fatal(err)
		}
		fmt.Print(validate.FormatTable2(rows))
		fmt.Printf("(modeled device: %v)\n", chip)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "validate:", err)
	os.Exit(1)
}
