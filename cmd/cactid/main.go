// Command cactid is the CLI front-end of the CACTI-D model: it takes
// a cache or memory specification and prints the optimized solution
// (or, with -explore, the whole design space). It can also print the
// technology characteristics table (-table1) and model a main-memory
// DRAM chip (-chip).
//
// Examples:
//
//	cactid -size 4MB -assoc 8 -node 32 -ram sram
//	cactid -size 96MB -assoc 12 -banks 8 -ram comm-dram -mode sequential -page 8192
//	cactid -chip -size 1Gb -node 78 -pins 8 -burst 8 -page 8192 -rate 1066
//	cactid -table1 -node 32
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"cactid/internal/core"
	"cactid/internal/dram"
	"cactid/internal/explore"
	"cactid/internal/tech"
)

// parseSize, parseRAM and parseMode delegate to the shared parsers in
// internal/explore so the CLI and the cactid-serve HTTP API accept
// exactly the same vocabulary (and reject the same garbage: zero,
// negative and overflowing sizes included).
func parseSize(s string) (int64, error) { return explore.ParseSize(s) }

func parseRAM(s string) (tech.RAMType, error) { return explore.ParseRAM(s) }

func parseMode(s string) (core.AccessMode, error) { return explore.ParseMode(s) }

func main() {
	var (
		size      = flag.String("size", "1MB", "capacity (e.g. 32KB, 4MB; for -chip: 1Gb as 128MB)")
		block     = flag.Int("block", 64, "block size in bytes")
		assoc     = flag.Int("assoc", 1, "associativity (1 = direct-mapped / plain memory)")
		banks     = flag.Int("banks", 1, "number of banks")
		node      = flag.Int("node", 32, "technology node in nm (32-90)")
		ram       = flag.String("ram", "sram", "memory technology: sram, lp-dram, comm-dram")
		techName  = flag.String("tech", "", "technology provider (itrs, itrs-sram, stt-ram, pcm, gain-cell, ...; empty = itrs)")
		isCache   = flag.Bool("cache", true, "model a cache (tags + way select)")
		mode      = flag.String("mode", "normal", "access mode: normal, sequential, or fast")
		page      = flag.Int("page", 0, "DRAM page size in bits (0 = unconstrained)")
		pipe      = flag.Int("pipeline", 8, "max pipeline stages")
		maxArea   = flag.Float64("maxarea", 0.4, "max area constraint (fraction over best)")
		maxAcc    = flag.Float64("maxacctime", 0.1, "max access time constraint")
		slack     = flag.Float64("repeaterslack", 0, "max repeater delay slack")
		sleep     = flag.Bool("sleep", false, "model sleep transistors")
		doExplore = flag.Bool("explore", false, "print the full solution space")
		report    = flag.Bool("report", false, "print the detailed CACTI-style breakdown")
		asJSON    = flag.Bool("json", false, "print the solution as JSON")
		table1    = flag.Bool("table1", false, "print the Table 1 technology characteristics")
		chip      = flag.Bool("chip", false, "model a main-memory DRAM chip")
		pins      = flag.Int("pins", 8, "chip: data pins (x4/x8/x16)")
		burst     = flag.Int("burst", 8, "chip: burst length")
		rate      = flag.Float64("rate", 1066, "chip: data rate in MT/s")
		idd       = flag.Bool("idd", false, "chip: also print the datasheet-style IDD report")
		noBound   = flag.Bool("no-bound", false, "disable branch-and-bound solver pruning (A/B escape hatch; identical results, slower)")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProfiles = startProfiles(*cpuprof, *memprof)
	defer stopProfiles()

	if *table1 {
		fmt.Print(tech.FormatTable1(tech.Node(*node)))
		return
	}

	capBytes, err := parseSize(*size)
	if err != nil {
		fatal(err)
	}

	if *chip {
		pageBits := *page
		if pageBits == 0 {
			pageBits = 8192
		}
		c, err := dram.NewChip(dram.ChipConfig{
			Tech:         tech.New(tech.Node(*node)),
			CapacityBits: capBytes * 8, Banks: *banks, DataPins: *pins,
			BurstLength: *burst, PageBits: pageBits, DataRateMTps: *rate,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println(c)
		fmt.Printf("  area %.1f mm2, efficiency %.1f%%\n", c.Area*1e6, c.AreaEff*100)
		fmt.Printf("  tRCD %.2fns  CL %.2fns  tRP %.2fns  tRAS %.2fns  tRC %.2fns  tRRD %.2fns\n",
			c.Timing.TRCD*1e9, c.Timing.CAS*1e9, c.Timing.TRP*1e9,
			c.Timing.TRAS*1e9, c.Timing.TRC*1e9, c.Timing.TRRD*1e9)
		fmt.Printf("  ACT %.3gnJ  RD %.3gnJ  WR %.3gnJ  refresh %.3gmW  standby %.3gmW\n",
			c.EActivate*1e9, c.ERead*1e9, c.EWrite*1e9, c.RefreshPower*1e3, c.StandbyPower*1e3)
		if *idd {
			fmt.Print(c.IDDReport())
		}
		return
	}

	ramType, err := parseRAM(*ram)
	if err != nil {
		fatal(err)
	}
	am, err := parseMode(*mode)
	if err != nil {
		fatal(err)
	}
	spec := core.Spec{
		Node: tech.Node(*node), RAM: ramType, Technology: *techName,
		CapacityBytes: capBytes, BlockBytes: *block,
		Associativity: *assoc, Banks: *banks,
		IsCache: *isCache && *assoc > 0, Mode: am,
		PageBits: *page, MaxPipelineStages: *pipe,
		MaxAreaConstraint: *maxArea, MaxAcctimeConstraint: *maxAcc,
		MaxRepeaterSlack: *slack, SleepTransistors: *sleep,
	}
	if *doExplore {
		sols, err := core.Explore(spec)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%d feasible organizations:\n", len(sols))
		for _, s := range core.Filter(spec, sols) {
			fmt.Println(" ", s)
		}
		return
	}
	sol, err := core.OptimizeContext(context.Background(), spec, &core.Options{NoBound: *noBound})
	if err != nil {
		fatal(err)
	}
	if *report {
		fmt.Print(core.Report(sol))
		return
	}
	if *asJSON {
		out, err := json.MarshalIndent(explore.SolutionJSON(sol), "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
		return
	}
	fmt.Println(sol)
	fmt.Printf("  access %.3fns  random cycle %.3fns  interleave cycle %.3fns (%d pipeline stages)\n",
		sol.AccessTime*1e9, sol.RandomCycle*1e9, sol.InterleaveCycle*1e9, sol.Data.PipelineStages)
	fmt.Printf("  area %.3f mm2 (%.3f per bank), efficiency %.1f%%\n",
		sol.Area*1e6, sol.BankArea*1e6, sol.AreaEff*100)
	fmt.Printf("  read %.3gnJ  write %.3gnJ  leakage %.3gW  refresh %.3gW\n",
		sol.EReadPerAccess*1e9, sol.EWritePerAccess*1e9, sol.LeakagePower, sol.RefreshPower)
	if sol.WriteTime > 0 || sol.WriteEndurance > 0 {
		fmt.Printf("  write completes %.3fns  endurance %.3g cycles\n",
			sol.WriteTime*1e9, sol.WriteEndurance)
	}
	if sol.Tag != nil {
		fmt.Printf("  tag array: %v\n", sol.Tag.Org)
	}
}

// stopProfiles flushes any active profiles; fatal must call it because
// os.Exit skips main's deferred call.
var stopProfiles = func() {}

// startProfiles starts a CPU profile and arranges a heap profile
// snapshot, returning an idempotent flush-and-close function.
func startProfiles(cpuPath, memPath string) func() {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fatal(err)
		}
		cpuFile = f
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cactid:", err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "cactid:", err)
			}
		}
	}
}

func fatal(err error) {
	stopProfiles()
	fmt.Fprintln(os.Stderr, "cactid:", err)
	os.Exit(1)
}
