package main

import (
	"testing"

	"cactid/internal/tech"
)

func TestParseSize(t *testing.T) {
	cases := map[string]int64{
		"64":    64,
		"512B":  512,
		"32KB":  32 << 10,
		"4MB":   4 << 20,
		"2GB":   2 << 30,
		"1.5MB": 3 << 19,
		"8kb":   8 << 10,
	}
	for in, want := range cases {
		got, err := parseSize(in)
		if err != nil {
			t.Errorf("parseSize(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("parseSize(%q) = %d, want %d", in, got, want)
		}
	}
	for _, bad := range []string{"", "abc", "12XB", "MB"} {
		if _, err := parseSize(bad); err == nil {
			t.Errorf("parseSize(%q) should fail", bad)
		}
	}
}

func TestParseRAM(t *testing.T) {
	cases := map[string]tech.RAMType{
		"sram": tech.SRAM, "SRAM": tech.SRAM,
		"lp-dram": tech.LPDRAM, "lpdram": tech.LPDRAM, "lp": tech.LPDRAM,
		"comm-dram": tech.COMMDRAM, "comm": tech.COMMDRAM, "cm": tech.COMMDRAM,
	}
	for in, want := range cases {
		got, err := parseRAM(in)
		if err != nil || got != want {
			t.Errorf("parseRAM(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseRAM("flash"); err == nil {
		t.Error("unknown RAM type should fail")
	}
}
