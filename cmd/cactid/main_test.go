package main

import (
	"testing"

	"cactid/internal/core"
	"cactid/internal/tech"
)

func TestParseSize(t *testing.T) {
	cases := map[string]int64{
		"64":    64,
		"512B":  512,
		"32KB":  32 << 10,
		"4MB":   4 << 20,
		"2GB":   2 << 30,
		"1.5MB": 3 << 19,
		"8kb":   8 << 10,
		"1G":    1 << 30 / 8, // gigabit, for -chip capacities
		"2Gbit": 2 << 30 / 8,
	}
	for in, want := range cases {
		got, err := parseSize(in)
		if err != nil {
			t.Errorf("parseSize(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("parseSize(%q) = %d, want %d", in, got, want)
		}
	}
}

func TestParseSizeErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"letters", "abc"},
		{"bad-suffix", "12XB"},
		{"suffix-only", "MB"},
		{"double-suffix", "4MBKB"},
		{"zero", "0"},
		{"zero-with-suffix", "0MB"},
		{"negative", "-1"},
		{"negative-with-suffix", "-4KB"},
		{"overflow-float", "1e30GB"},
		{"overflow-mult", "99999999999GB"},
		{"overflow-int64", "9223372036854775807KB"},
		{"nan", "NaNMB"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got, err := parseSize(tc.in); err == nil {
				t.Errorf("parseSize(%q) = %d, want error", tc.in, got)
			}
		})
	}
}

func TestParseRAM(t *testing.T) {
	cases := map[string]tech.RAMType{
		"sram": tech.SRAM, "SRAM": tech.SRAM,
		"lp-dram": tech.LPDRAM, "lpdram": tech.LPDRAM, "lp": tech.LPDRAM,
		"comm-dram": tech.COMMDRAM, "comm": tech.COMMDRAM, "cm": tech.COMMDRAM,
	}
	for in, want := range cases {
		got, err := parseRAM(in)
		if err != nil || got != want {
			t.Errorf("parseRAM(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
}

func TestParseRAMErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"unknown", "flash"},
		{"ambiguous", "dram"},
		{"typo", "sramm"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := parseRAM(tc.in); err == nil {
				t.Errorf("parseRAM(%q) should fail", tc.in)
			}
		})
	}
}

func TestParseMode(t *testing.T) {
	cases := map[string]core.AccessMode{
		"normal": core.Normal, "seq": core.Sequential,
		"sequential": core.Sequential, "fast": core.Fast,
	}
	for in, want := range cases {
		if got, err := parseMode(in); err != nil || got != want {
			t.Errorf("parseMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseMode("warp"); err == nil {
		t.Error("unknown mode should fail")
	}
}
