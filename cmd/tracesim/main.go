// Command tracesim drives the architectural simulator with
// user-provided memory traces (one CSV per thread, see
// workload.LoadTrace for the format) or a named synthetic NPB profile,
// over a hierarchy projected by CACTI-D, and prints performance and
// power results. This is the "bring your own workload" entry point to
// the simulation substrate.
//
// Usage:
//
//	tracesim -bench ft.B -config lp_dram_ed
//	tracesim -trace t0.csv -trace t1.csv ... -config cm_dram_c
package main

import (
	"flag"
	"fmt"
	"os"

	"cactid/internal/sim"
	"cactid/internal/sim/stats"
	"cactid/internal/sim/workload"
	"cactid/internal/study"
)

type traceList []string

func (t *traceList) String() string     { return fmt.Sprint(*t) }
func (t *traceList) Set(s string) error { *t = append(*t, s); return nil }

func main() {
	var traces traceList
	flag.Var(&traces, "trace", "CSV trace file (repeat once per thread; threads loop their traces)")
	var (
		bench  = flag.String("bench", "ft.B", "synthetic benchmark when no traces are given")
		config = flag.String("config", "cm_dram_c", "system configuration (nol3, sram, lp_dram_ed, lp_dram_c, cm_dram_ed, cm_dram_c)")
		scale  = flag.Int64("scale", 4, "capacity/working-set scaling divisor")
		instr  = flag.Float64("instr", 8e6, "total instruction budget")
		seed   = flag.Uint64("seed", 42, "workload seed (synthetic mode)")
	)
	flag.Parse()

	s, err := study.New(*scale, int64(*instr))
	if err != nil {
		fatal(err)
	}

	var r *study.RunResult
	if len(traces) > 0 {
		r, err = runTraces(s, traces, *config)
	} else {
		r, err = s.Run(*bench, *config, *seed)
	}
	if err != nil {
		fatal(err)
	}

	res := r.Sim
	fmt.Printf("configuration %s:\n", *config)
	fmt.Printf("  instructions    %d\n", res.Instrs)
	fmt.Printf("  cycles          %d\n", res.Cycles)
	fmt.Printf("  IPC             %.3f\n", res.IPC)
	fmt.Printf("  avg read lat    %.1f cycles\n", res.AvgReadLatency)
	fmt.Printf("  miss rates      L1 %.3f  L2 %.3f  L3 %.3f\n", res.L1MissRate, res.L2MissRate, res.L3MissRate)
	bd := res.Breakdown
	tot := float64(bd.Total())
	fmt.Printf("  cycle breakdown instr %.2f, L2 %.2f, L3 %.2f, mem %.2f, barrier %.2f, lock %.2f\n",
		float64(bd.Busy)/tot, float64(bd.L2)/tot, float64(bd.L3)/tot,
		float64(bd.Mem)/tot, float64(bd.Barrier)/tot, float64(bd.Lock)/tot)
	p := r.Power
	fmt.Printf("  power           hierarchy %.2fW, system %.2fW\n", p.MemoryHierarchy(), p.System())
	fmt.Printf("  energy-delay    %.4g J*s\n", r.EDP)
}

// runTraces loads the trace files and runs them on the configured
// system, replicating the last trace if fewer than 32 are given.
func runTraces(s *study.Study, files []string, config string) (*study.RunResult, error) {
	prof, err := workload.ByName("ft.B") // placeholder profile (unused fields)
	if err != nil {
		return nil, err
	}
	cfg := s.SimConfig(config, prof, 0)
	n := cfg.Cores * cfg.ThreadsPerCore
	sources := make([]workload.Source, n)
	for i := 0; i < n; i++ {
		path := files[min(i, len(files)-1)]
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		refs, err := workload.LoadTrace(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		sources[i] = workload.NewTraceSource(refs)
	}
	cfg.Sources = sources
	res := sim.Run(cfg)
	// Power and EDP use the same accounting as the study.
	r := &study.RunResult{Benchmark: "trace", Config: config, Sim: res}
	r.Power = stats.Compute(res, s.Energies(config))
	r.EDP = stats.EDP(&r.Power, res.Cycles, study.ClockHz)
	return r, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracesim:", err)
	os.Exit(1)
}
