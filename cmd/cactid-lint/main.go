// Command cactid-lint runs the repository's custom static-analysis
// suite (internal/analysis). The per-function analyzers — floatdet,
// ctxflow, lockguard, unitname — mechanically enforce the invariants
// the model's trustworthiness rests on: deterministic float paths,
// propagated cancellation, annotated lock discipline, and consistent
// unit naming. The interprocedural suite — detpure, wirecompat,
// atomicmix, httpclose, chaoscover — guards the distributed surface:
// a call-graph-bounded determinism cone under the solver entry
// points, golden-pinned wire/store type shapes, all-or-nothing
// sync/atomic field discipline, closed HTTP response bodies and
// cancel funcs, and test coverage for every chaos injection point.
//
// Usage:
//
//	cactid-lint [-run name[,name...]] [-json] [-list] [packages ...]
//	cactid-lint -fix-digests [packages ...]
//
// Packages default to ./... relative to the current directory. The
// exit status is 0 when clean, 1 when any diagnostic is reported, and
// 2 on a loading or internal error. Deliberate exceptions are
// suppressed in source with:
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or the line directly above it; the reason is
// mandatory and an unused suppression is itself a finding.
//
// -fix-digests regenerates the wirecompat golden digest file
// (internal/analysis/wiredigest.json) from the current tree. The
// regeneration is refused while internal/core/version.go has
// uncommitted changes: a ModelVersion bump and a digest refresh must
// land as separate, deliberate steps, so neither can smuggle the
// other in.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"cactid/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("cactid-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runNames := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	asJSON := fs.Bool("json", false, "emit diagnostics as JSON")
	list := fs.Bool("list", false, "list analyzers and exit")
	fixDigests := fs.Bool("fix-digests", false, "regenerate the wirecompat golden digest file and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *runNames != "" {
		analyzers = selectAnalyzers(analyzers, *runNames)
		if len(analyzers) == 0 {
			fmt.Fprintf(stderr, "cactid-lint: no analyzers match -run=%s\n", *runNames)
			return 2
		}
	}

	patterns := fs.Args()
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "cactid-lint: %v\n", err)
		return 2
	}
	prog, err := analysis.LoadProgram(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "cactid-lint: %v\n", err)
		return 2
	}

	if *fixDigests {
		return runFixDigests(prog, stdout, stderr)
	}

	diags, err := analysis.RunProgram(prog, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "cactid-lint: %v\n", err)
		return 2
	}

	if *asJSON {
		type jsonDiag struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, len(diags))
		for i, d := range diags {
			out[i] = jsonDiag{
				File: d.Position.Filename, Line: d.Position.Line, Column: d.Position.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "cactid-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// runFixDigests regenerates the golden digest file — unless the
// working tree also touches internal/core/version.go, in which case
// the refusal keeps ModelVersion bumps and digest refreshes as
// separate, reviewable steps.
func runFixDigests(prog *analysis.Program, stdout, stderr *os.File) int {
	if dirty, err := versionFileDirty(prog.Dir); err != nil {
		fmt.Fprintf(stderr, "cactid-lint: -fix-digests: cannot check working tree (%v); refusing to regenerate blind\n", err)
		return 2
	} else if dirty {
		fmt.Fprintf(stderr, "cactid-lint: -fix-digests refused: internal/core/version.go has uncommitted changes.\n"+
			"Commit the ModelVersion bump first, then regenerate the digests in their own commit —\n"+
			"the two must stay separately reviewable.\n")
		return 2
	}
	path, err := analysis.WriteWireDigests(prog)
	if err != nil {
		fmt.Fprintf(stderr, "cactid-lint: -fix-digests: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "cactid-lint: wrote %s\n", path)
	return 0
}

// versionFileDirty reports whether internal/core/version.go has
// uncommitted (staged or unstaged) changes. Outside a git checkout
// there is nothing to police; the regeneration proceeds.
func versionFileDirty(moduleDir string) (bool, error) {
	cmd := exec.Command("git", "status", "--porcelain", "--", "internal/core/version.go")
	cmd.Dir = moduleDir
	out, err := cmd.Output()
	if err != nil {
		if _, ok := err.(*exec.ExitError); ok {
			return false, nil // not a git checkout: nothing to police
		}
		return false, err
	}
	return len(strings.TrimSpace(string(out))) > 0, nil
}

func selectAnalyzers(all []*analysis.Analyzer, names string) []*analysis.Analyzer {
	want := map[string]bool{}
	for _, n := range strings.Split(names, ",") {
		want[strings.TrimSpace(n)] = true
	}
	var out []*analysis.Analyzer
	for _, a := range all {
		if want[a.Name] {
			out = append(out, a)
		}
	}
	return out
}
