// Command cactid-lint runs the repository's custom static-analysis
// suite (internal/analysis): floatdet, ctxflow, lockguard and
// unitname. These analyzers mechanically enforce the invariants the
// model's trustworthiness rests on — deterministic float paths,
// propagated cancellation, annotated lock discipline, and consistent
// unit naming.
//
// Usage:
//
//	cactid-lint [-run name[,name...]] [-json] [-list] [packages ...]
//
// Packages default to ./... relative to the current directory. The
// exit status is 0 when clean, 1 when any diagnostic is reported, and
// 2 on a loading or internal error. Deliberate exceptions are
// suppressed in source with:
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or the line directly above it; the reason is
// mandatory and an unused suppression is itself a finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"cactid/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("cactid-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runNames := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	asJSON := fs.Bool("json", false, "emit diagnostics as JSON")
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *runNames != "" {
		analyzers = selectAnalyzers(analyzers, *runNames)
		if len(analyzers) == 0 {
			fmt.Fprintf(stderr, "cactid-lint: no analyzers match -run=%s\n", *runNames)
			return 2
		}
	}

	patterns := fs.Args()
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "cactid-lint: %v\n", err)
		return 2
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "cactid-lint: %v\n", err)
		return 2
	}

	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		ds, err := analysis.RunPackage(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(stderr, "cactid-lint: %v\n", err)
			return 2
		}
		diags = append(diags, ds...)
	}

	if *asJSON {
		type jsonDiag struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, len(diags))
		for i, d := range diags {
			out[i] = jsonDiag{
				File: d.Position.Filename, Line: d.Position.Line, Column: d.Position.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "cactid-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

func selectAnalyzers(all []*analysis.Analyzer, names string) []*analysis.Analyzer {
	want := map[string]bool{}
	for _, n := range strings.Split(names, ",") {
		want[strings.TrimSpace(n)] = true
	}
	var out []*analysis.Analyzer
	for _, a := range all {
		if want[a.Name] {
			out = append(out, a)
		}
	}
	return out
}
