// Command llcstudy regenerates the paper's stacked last-level-cache
// study: Table 3 (CACTI-D projections of all hierarchy levels at
// 32nm), Figures 4(a)/(b) (IPC, average read latency and execution
// cycle breakdown of the NPB workloads), Figures 5(a)/(b) (memory
// hierarchy and system power breakdowns plus normalized energy-delay
// product), and the Section 4.3 thermal check.
//
// Usage:
//
//	llcstudy -table3              # projections only (fast)
//	llcstudy                      # full study (simulation; minutes)
//	llcstudy -scale 8 -instr 8e6  # faster, coarser simulation
package main

import (
	"flag"
	"fmt"
	"os"

	"cactid/internal/study"
)

func main() {
	var (
		table3Only = flag.Bool("table3", false, "print Table 3 and exit (no simulation)")
		thermal    = flag.Bool("thermal", false, "print the thermal check and exit")
		scale      = flag.Int64("scale", 4, "capacity/working-set scaling divisor for simulation")
		instr      = flag.Float64("instr", 16e6, "total instruction budget per run")
		seed       = flag.Uint64("seed", 42, "workload seed")
		csvDir     = flag.String("csv", "", "also export table/figure data as CSV into this directory")
		chart      = flag.Bool("chart", false, "also render ASCII bar charts of Figures 4(a) and 5(b)")
		powerdown  = flag.Bool("powerdown", false, "also run the Section 6 DRAM power-down experiment")
		seeds      = flag.Int("seeds", 1, "average the figures over this many workload seeds")
	)
	flag.Parse()

	s, err := study.New(*scale, int64(*instr))
	if err != nil {
		fatal(err)
	}

	fmt.Print(study.FormatTable3(s.Table3()))
	fmt.Println()
	if *table3Only {
		return
	}

	d, err := s.ThermalDelta()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Thermal: max stacked-die temperature delta across L3 technologies = %.2fK (paper: <1.5K)\n\n", d)
	if *thermal {
		return
	}

	fmt.Printf("Running %d benchmarks x %d configurations (scale 1/%d, %.0fM instructions each, %d seed(s))...\n\n",
		8, len(study.ConfigNames), *scale, *instr/1e6, *seeds)
	runs, err := s.RunAll(*seed)
	if err != nil {
		fatal(err)
	}
	f := study.MakeFigures(runs)
	if *seeds > 1 {
		var list []uint64
		for i := 0; i < *seeds; i++ {
			list = append(list, *seed+uint64(i))
		}
		if f, err = s.AverageFigures(list, nil); err != nil {
			fatal(err)
		}
	}
	fmt.Print(f.FormatFig4())
	fmt.Println()
	fmt.Print(f.FormatFig5(runs))

	if *chart {
		fmt.Println()
		fmt.Print(f.ChartFig4())
		fmt.Println()
		fmt.Print(f.ChartFig5())
	}

	if *csvDir != "" {
		if err := study.ExportCSV(*csvDir, s.Table3(), f, runs); err != nil {
			fatal(err)
		}
		fmt.Printf("\nCSV data written to %s (table3, fig4, fig5, headlines)\n", *csvDir)
	}

	if *powerdown {
		without, with, err := s.PowerDownExperiment("ua.C", "cm_dram_c", *seed)
		if err != nil {
			fatal(err)
		}
		saving := 1 - with.Power.MemStandby/without.Power.MemStandby
		slowdown := float64(with.Sim.Cycles)/float64(without.Sim.Cycles) - 1
		fmt.Printf("\nPower-down experiment (ua.C on cm_dram_c): standby %.2fW -> %.2fW (%.0f%% saved), slowdown %+.2f%%\n",
			without.Power.MemStandby, with.Power.MemStandby, saving*100, slowdown*100)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "llcstudy:", err)
	os.Exit(1)
}
