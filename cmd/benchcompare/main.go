// Command benchcompare compares `go test -bench` output against a
// recorded baseline file and prints per-spec deltas:
//
//	go test -run '^$' -bench BenchmarkSolve -benchmem -count=3 . |
//	    go run ./cmd/benchcompare -file BENCH_solve.json
//	go test -run '^$' -bench BenchmarkSweepFabric -count=3 ./internal/fabric/ |
//	    go run ./cmd/benchcompare -file BENCH_sweep.json
//
// The benchmark name to extract is read from the baseline file's
// "benchmark" field, so one binary gates every recorded trajectory
// (-benchmark overrides it when a file mixes several).
//
// For each spec the median ns/op (and B/op, allocs/op when present)
// over the repeated runs is compared against the latest round's
// "after" results in the baseline file. Output is a human-readable
// table on stdout; -json additionally emits a machine-readable
// comparison (for CI artifacts). With -max-regress R the exit status
// is 1 when any spec's median ns/op regressed by more than the factor
// R (e.g. 1.25 = 25% slower); 0 disables the gate, which is the
// default because shared CI runners make wall-clock noisy.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchResult is one spec's recorded numbers, matching the schema of
// BENCH_solve.json result maps.
type benchResult struct {
	NsOp     float64 `json:"ns_op"`
	BytesOp  float64 `json:"bytes_op,omitempty"`
	AllocsOp float64 `json:"allocs_op,omitempty"`
}

// baselineFile mirrors the parts of BENCH_solve.json benchcompare
// needs: the rounds trajectory, latest round last; its "after" block
// is the comparison baseline.
type baselineFile struct {
	Benchmark string `json:"benchmark"`
	Rounds    []struct {
		Name  string                 `json:"name"`
		After map[string]benchResult `json:"after"`
	} `json:"rounds"`
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkSolve/sram-cache-45-8   4122   302237 ns/op   239792 B/op   707 allocs/op
//
// The name is captured whole; any trailing -GOMAXPROCS suffix is
// resolved at baseline lookup, since spec names end in digit groups
// themselves (-45, -32).
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// parseBench collects the per-spec samples from bench output. Names
// are keyed two ways — with and without the trailing -GOMAXPROCS
// suffix — because spec names themselves end in digit groups (-45);
// the baseline lookup resolves the ambiguity.
func parseBench(r io.Reader, benchmark string) (map[string][]benchResult, error) {
	out := make(map[string][]benchResult)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		prefix := benchmark + "/"
		if len(name) <= len(prefix) || name[:len(prefix)] != prefix {
			continue
		}
		var res benchResult
		res.NsOp, _ = strconv.ParseFloat(m[2], 64)
		if m[3] != "" {
			res.BytesOp, _ = strconv.ParseFloat(m[3], 64)
		}
		if m[4] != "" {
			res.AllocsOp, _ = strconv.ParseFloat(m[4], 64)
		}
		out[name[len(prefix):]] = append(out[name[len(prefix):]], res)
	}
	return out, sc.Err()
}

// comparison is one spec's baseline-vs-current delta.
type comparison struct {
	Spec     string  `json:"spec"`
	Baseline float64 `json:"baseline_ns_op"`
	Current  float64 `json:"current_ns_op"`
	Ratio    float64 `json:"ratio"` // current / baseline; < 1 is faster
	Samples  int     `json:"samples"`
}

func main() {
	filePath := flag.String("file", "", "baseline file to gate, e.g. BENCH_solve.json or BENCH_sweep.json (rounds schema; latest round's \"after\" is compared)")
	baselinePath := flag.String("baseline", "BENCH_solve.json", "legacy alias of -file")
	benchmark := flag.String("benchmark", "", "benchmark name to extract (default: the baseline file's \"benchmark\" field)")
	asJSON := flag.Bool("json", false, "also print the comparison as JSON")
	maxRegress := flag.Float64("max-regress", 0, "exit 1 when any spec regresses beyond this ratio (0 = report only)")
	flag.Parse()

	if *filePath != "" {
		*baselinePath = *filePath
	}
	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(2)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: parse %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}
	if len(base.Rounds) == 0 {
		fmt.Fprintf(os.Stderr, "benchcompare: %s has no rounds\n", *baselinePath)
		os.Exit(2)
	}
	baseline := base.Rounds[len(base.Rounds)-1].After
	if *benchmark == "" {
		*benchmark = base.Benchmark
	}
	if *benchmark == "" {
		fmt.Fprintf(os.Stderr, "benchcompare: %s has no \"benchmark\" field; pass -benchmark\n", *baselinePath)
		os.Exit(2)
	}

	samples, err := parseBench(os.Stdin, *benchmark)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(2)
	}
	if len(samples) == 0 {
		fmt.Fprintf(os.Stderr, "benchcompare: no %s results on stdin\n", *benchmark)
		os.Exit(2)
	}

	var comps []comparison
	regressed := false
	for spec, runs := range samples {
		ns := make([]float64, len(runs))
		for i, r := range runs {
			ns[i] = r.NsOp
		}
		c := comparison{Spec: spec, Current: median(ns), Samples: len(runs)}
		ref, ok := baseline[spec]
		if !ok {
			// Retry without the -GOMAXPROCS suffix the parser could
			// not strip unambiguously.
			if i := len(spec) - 1; i > 0 {
				for i > 0 && spec[i] >= '0' && spec[i] <= '9' {
					i--
				}
				if i > 0 && spec[i] == '-' {
					ref, ok = baseline[spec[:i]]
					c.Spec = spec[:i]
				}
			}
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "benchcompare: %s not in baseline, skipped\n", spec)
			continue
		}
		c.Baseline = ref.NsOp
		c.Ratio = c.Current / c.Baseline
		if *maxRegress > 0 && c.Ratio > *maxRegress {
			regressed = true
		}
		comps = append(comps, c)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i].Spec < comps[j].Spec })

	fmt.Printf("%-22s %14s %14s %8s  %s\n", "spec", "baseline ns/op", "current ns/op", "ratio", "delta")
	for _, c := range comps {
		fmt.Printf("%-22s %14.0f %14.0f %8.3f  %+.1f%%\n",
			c.Spec, c.Baseline, c.Current, c.Ratio, (c.Ratio-1)*100)
	}
	if *asJSON {
		out, _ := json.MarshalIndent(comps, "", "  ")
		fmt.Println(string(out))
	}
	if regressed {
		fmt.Fprintf(os.Stderr, "benchcompare: regression beyond %.2fx detected\n", *maxRegress)
		os.Exit(1)
	}
}
