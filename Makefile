# Tier-1 verify is `go build ./... && go test ./...` (ROADMAP.md);
# `make verify` runs that plus vet, the repository's own static-
# analysis suite (cmd/cactid-lint) and the race detector over every
# package.

# Tool versions are pinned here so CI and local runs agree. The repo
# has no module dependencies, so there is no tools.go; external tools
# are fetched by version at the point of use (network required — CI
# only, see .github/workflows/ci.yml).
GOVULNCHECK_VERSION := v1.1.4

.PHONY: verify build test vet lint lint-new lint-digests race stress fuzz vulncheck bench bench-sweep bench-compare bench-fabric fabric-test fabric-smoke test-tech

verify: vet lint build test race

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

# lint runs the in-repo analyzer suite: the per-function checks
# (floatdet, ctxflow, lockguard, unitname) plus the interprocedural
# distributed-surface suite (detpure, wirecompat, atomicmix,
# httpclose, chaoscover) — see internal/analysis and DESIGN.md §1.3.
# It needs no network: the suite is built from this module's own
# source.
lint:
	go run ./cmd/cactid-lint ./...

# lint-new runs only the interprocedural suite — the fast loop while
# iterating on the distributed surface.
lint-new:
	go run ./cmd/cactid-lint -run detpure,wirecompat,atomicmix,httpclose,chaoscover ./...

# lint-digests proves the wirecompat golden digest file is fresh:
# regenerate it in place and fail if the checked-in copy differs.
# (Regeneration refuses while internal/core/version.go is dirty; see
# cmd/cactid-lint.)
lint-digests:
	go run ./cmd/cactid-lint -fix-digests ./...
	git diff --exit-code -- internal/analysis/wiredigest.json

race:
	go test -race ./...

# test-tech runs the technology-provider surface (DESIGN.md §1.9):
# provider resolution and overlay tables, per-kind mat models and
# bound-ladder admissibility, the pinned STT-RAM/gain-cell solves, the
# ITRS byte-identity goldens, and the cross-technology fabric/server
# integration tests. TECH narrows the per-provider legs of the CI
# matrix to one provider's subtests (e.g. TECH=stt-ram).
TECH ?=
test-tech:
	go test -run 'Provider|Tech|Kind|GainCell|NVM|Overlay|Resolve|BoundTiers|BoundedEnumerate' \
		./internal/tech/ ./internal/mat/ ./internal/array/ ./internal/explore/ \
		./internal/fabric/ ./cmd/cactid-serve/
ifneq ($(TECH),)
	go run ./cmd/cactid -tech $(TECH) -size 4MB -assoc 8 -node 32 >/dev/null
endif

# stress runs the chaos/overload suite under the race detector: the
# fault-injection tests in internal/chaos and internal/explore plus
# the cactid-serve admission-control and load-shedding tests.
stress:
	go test -race ./internal/chaos/
	go test -race -run 'Chaos|Stranded|Overload|Drain|QueueWait|Deadline|Evict|MissStorm|InFlight' \
		./internal/explore/ ./cmd/cactid-serve/

# fuzz gives each native fuzz target a short randomized smoke run on
# top of its checked-in corpus (`make test` replays the corpus only).
# Go allows one -fuzz pattern per invocation, hence one line each.
FUZZTIME ?= 20s
fuzz:
	go test -run '^$$' -fuzz FuzzParseSpec -fuzztime $(FUZZTIME) ./internal/explore/
	go test -run '^$$' -fuzz FuzzParseGrid -fuzztime $(FUZZTIME) ./internal/explore/
	go test -run '^$$' -fuzz FuzzSolveBody -fuzztime $(FUZZTIME) ./cmd/cactid-serve/
	go test -run '^$$' -fuzz FuzzStoreRecover -fuzztime $(FUZZTIME) ./internal/store/
	go test -run '^$$' -fuzz FuzzLoadTrace -fuzztime $(FUZZTIME) ./internal/sim/workload/

# vulncheck scans the module against the Go vulnerability database.
# Requires network; run from CI or a connected workstation.
vulncheck:
	go run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

# bench runs the single-solve hot-path benchmark (BENCH_solve.json
# tracks its before/after numbers; compare runs with
# golang.org/x/perf/cmd/benchstat if available).
bench:
	go test -run '^$$' -bench BenchmarkSolve -benchmem -count=5 .

bench-sweep:
	go test -run '^$$' -bench BenchmarkExploreSweep -benchmem .

# bench-compare runs BenchmarkSolve pinned to one core and prints
# per-spec deltas (median ns/op) against the latest recorded round in
# BENCH_solve.json via cmd/benchcompare. Informational by default;
# pass BENCH_MAX_REGRESS=1.25 to fail on a >25% regression.
BENCH_COUNT ?= 3
BENCH_MAX_REGRESS ?= 0
bench-compare:
	GOMAXPROCS=1 go test -run '^$$' -bench BenchmarkSolve -benchmem -count=$(BENCH_COUNT) . \
		| go run ./cmd/benchcompare -file BENCH_solve.json -json -max-regress $(BENCH_MAX_REGRESS)

# bench-fabric runs the distributed-sweep throughput benchmark
# (points/s at 1/2/4 in-process workers, see BENCH_sweep.json) and
# compares ns/op against the latest recorded round.
bench-fabric:
	GOMAXPROCS=1 go test -run '^$$' -bench BenchmarkSweepFabric -count=$(BENCH_COUNT) ./internal/fabric/ \
		| go run ./cmd/benchcompare -file BENCH_sweep.json -json -max-regress $(BENCH_MAX_REGRESS)

# fabric-test runs the sweep-fabric suite under the race detector:
# the coordinator/ring/steal/reroute unit and chaos tests in
# internal/fabric, the streaming-merge tests in internal/explore, and
# the cactid-serve cluster integration tests (HTTP byte-identity,
# owner routing, dead-worker reroute, registration).
fabric-test:
	go test -race ./internal/fabric/
	go test -race -run 'Fabric|Coordinator|Cluster|StatsEndpoint|StatsMerge|FrontierMerger|SweepStream' \
		./internal/explore/ ./cmd/cactid-serve/

# fabric-smoke builds the real binary and drives a loopback cluster
# (coordinator + 2 workers + a single-node reference): the distributed
# sweep must be byte-identical to the single-node one. Artifacts land
# in $$FABRIC_SMOKE_DIR for CI upload.
fabric-smoke:
	scripts/fabric_smoke.sh
