# Tier-1 verify is `go build ./... && go test ./...` (ROADMAP.md);
# `make verify` runs that plus vet and the race detector over the
# concurrent packages (the exploration engine and the solver it leans
# on).

.PHONY: verify build test vet race bench-sweep

verify: vet build test race

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

race:
	go test -race ./internal/explore ./internal/core ./cmd/cactid-serve

bench-sweep:
	go test -run '^$$' -bench BenchmarkExploreSweep -benchmem .
