# Tier-1 verify is `go build ./... && go test ./...` (ROADMAP.md);
# `make verify` runs that plus vet and the race detector over the
# concurrent packages (the exploration engine, the parallel
# organization enumeration, the memoized tech tables, and the server).

.PHONY: verify build test vet race bench bench-sweep

verify: vet build test race

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

race:
	go test -race ./internal/explore ./internal/core ./internal/array ./internal/tech ./cmd/cactid-serve

# bench runs the single-solve hot-path benchmark (BENCH_solve.json
# tracks its before/after numbers; compare runs with
# golang.org/x/perf/cmd/benchstat if available).
bench:
	go test -run '^$$' -bench BenchmarkSolve -benchmem -count=5 .

bench-sweep:
	go test -run '^$$' -bench BenchmarkExploreSweep -benchmem .
