package crossbar

import (
	"testing"

	"cactid/internal/tech"
)

func mk(t *testing.T, in, out, width int) *Crossbar {
	t.Helper()
	xb, err := New(Config{
		Tech: tech.New(tech.Node32), Device: tech.HP,
		Inputs: in, Outputs: out, Width: width,
	})
	if err != nil {
		t.Fatal(err)
	}
	return xb
}

func TestBasic(t *testing.T) {
	xb := mk(t, 8, 8, 144)
	if xb.Delay <= 0 || xb.EnergyPerTx <= 0 || xb.Leakage <= 0 || xb.Area <= 0 {
		t.Fatalf("non-positive outputs: %+v", xb)
	}
	// An 8x8 144-bit crossbar at 32nm should traverse in well under
	// a nanosecond and cost picojoules per flit.
	if xb.Delay > 2e-9 {
		t.Errorf("delay %.3g s implausibly slow", xb.Delay)
	}
	if xb.EnergyPerTx > 1e-9 {
		t.Errorf("energy %.3g J implausibly high", xb.EnergyPerTx)
	}
}

func TestScalesWithPorts(t *testing.T) {
	small := mk(t, 4, 4, 128)
	big := mk(t, 16, 16, 128)
	if big.Area <= small.Area || big.EnergyPerTx <= small.EnergyPerTx || big.Leakage <= small.Leakage {
		t.Error("port scaling violated")
	}
}

func TestScalesWithWidth(t *testing.T) {
	narrow := mk(t, 8, 8, 64)
	wide := mk(t, 8, 8, 512)
	if wide.EnergyPerTx <= narrow.EnergyPerTx {
		t.Error("width scaling violated for energy")
	}
	if wide.Area <= narrow.Area {
		t.Error("width scaling violated for area")
	}
}

func TestExplicitSpanDominates(t *testing.T) {
	base := mk(t, 8, 8, 144)
	far, err := New(Config{
		Tech: tech.New(tech.Node32), Device: tech.HP,
		Inputs: 8, Outputs: 8, Width: 144,
		SpanX: 4e-3, SpanY: 4e-3, // 4mm x 4mm span
	})
	if err != nil {
		t.Fatal(err)
	}
	if far.Delay <= base.Delay || far.EnergyPerTx <= base.EnergyPerTx {
		t.Error("longer span should cost more delay and energy")
	}
	if far.Area != 16e-6 {
		t.Errorf("area %g, want 16mm^2", far.Area)
	}
}

func TestInvalidConfigs(t *testing.T) {
	cases := []Config{
		{},
		{Tech: tech.New(tech.Node32), Inputs: 0, Outputs: 8, Width: 64},
		{Tech: tech.New(tech.Node32), Inputs: 8, Outputs: 0, Width: 64},
		{Tech: tech.New(tech.Node32), Inputs: 8, Outputs: 8, Width: 0},
	}
	for i, c := range cases {
		if _, err := New(c); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestPropertyMonotoneInEverything(t *testing.T) {
	// Delay/energy/area must be monotone non-decreasing in ports,
	// width, and span.
	tt := tech.New(tech.Node32)
	mkc := func(ports, width int, span float64) *Crossbar {
		xb, err := New(Config{Tech: tt, Device: tech.HP, Inputs: ports, Outputs: ports,
			Width: width, SpanX: span, SpanY: span})
		if err != nil {
			t.Fatal(err)
		}
		return xb
	}
	base := mkc(4, 128, 2e-3)
	for _, variant := range []*Crossbar{
		mkc(8, 128, 2e-3),
		mkc(4, 256, 2e-3),
		mkc(4, 128, 4e-3),
	} {
		if variant.EnergyPerTx < base.EnergyPerTx {
			t.Errorf("energy decreased: %+v", variant.Config)
		}
		if variant.Area < base.Area {
			t.Errorf("area decreased: %+v", variant.Config)
		}
	}
}

func TestNodeScaling(t *testing.T) {
	// The same crossbar at 90nm costs more energy than at 32nm.
	mk90, err := New(Config{Tech: tech.New(tech.Node90), Device: tech.HP, Inputs: 8, Outputs: 8, Width: 144})
	if err != nil {
		t.Fatal(err)
	}
	mk32, err := New(Config{Tech: tech.New(tech.Node32), Device: tech.HP, Inputs: 8, Outputs: 8, Width: 144})
	if err != nil {
		t.Fatal(err)
	}
	if mk32.EnergyPerTx >= mk90.EnergyPerTx {
		t.Errorf("32nm crossbar energy %g not below 90nm %g", mk32.EnergyPerTx, mk90.EnergyPerTx)
	}
}
