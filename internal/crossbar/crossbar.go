// Package crossbar models the delay and energy of an NxM crossbar
// interconnect in the style of Orion (Wang et al., MICRO 2002), which
// the paper incorporates for the L2-L3 connection of its LLC study
// (Section 4.1). The model is a matrix crossbar: input and output
// buses span the crossbar area, with a connector (pass transistor +
// driver) at each crosspoint.
package crossbar

import (
	"fmt"

	"cactid/internal/circuit"
	"cactid/internal/tech"
)

// Config describes one crossbar.
type Config struct {
	Tech    *tech.Technology
	Device  tech.DeviceType // driver/connector device family
	Inputs  int             // number of input ports
	Outputs int             // number of output ports
	Width   int             // bits per port (flit width)

	// SpanX, SpanY are the physical dimensions the crossbar wiring
	// must cover (m). The LLC study measures these from the Niagara2
	// die photo scaled to 32 nm; if zero they default to the minimum
	// wiring footprint implied by ports and wire pitch.
	SpanX, SpanY float64
}

// Crossbar is the evaluated model.
type Crossbar struct {
	Config

	Delay       float64 // one traversal (s)
	EnergyPerTx float64 // energy to move one Width-bit flit (J)
	Leakage     float64 // W
	Area        float64 // m^2
}

// New evaluates the crossbar model.
func New(cfg Config) (*Crossbar, error) {
	if cfg.Tech == nil || cfg.Inputs < 1 || cfg.Outputs < 1 || cfg.Width < 1 {
		return nil, fmt.Errorf("crossbar: invalid config %+v", cfg)
	}
	t := cfg.Tech
	dev := t.Device(cfg.Device)
	w := t.Wire(tech.WireGlobal)

	// Wiring footprint: input buses run horizontally (Inputs*Width
	// wires), output buses vertically (Outputs*Width wires).
	minX := float64(cfg.Outputs*cfg.Width) * w.Pitch
	minY := float64(cfg.Inputs*cfg.Width) * w.Pitch
	spanX, spanY := cfg.SpanX, cfg.SpanY
	if spanX < minX {
		spanX = minX
	}
	if spanY < minY {
		spanY = minY
	}

	// A transfer drives one input bus across spanX, switches a
	// crosspoint, then drives one output bus across spanY. Each bus
	// is a repeated wire loaded additionally by the crosspoint
	// junction capacitance at every port it passes.
	inWire := circuit.NewRepeatedWire(dev, w, spanX, 0)
	outWire := circuit.NewRepeatedWire(dev, w, spanY, 0)
	// Crosspoint loading: one pass-gate junction per output column
	// on the input bus and per input row on the output bus.
	xpW := 16 * dev.Lphy
	cXp := dev.CJuncPerWidth * xpW
	loadIn := float64(cfg.Outputs) * cXp
	loadOut := float64(cfg.Inputs) * cXp
	vdd := dev.Vdd
	extraE := 0.5 * (loadIn + loadOut) * vdd * vdd
	extraD := 0.2 * (inWire.Res.Delay + outWire.Res.Delay) // distributed loading penalty

	xb := &Crossbar{Config: cfg}
	xb.Config.SpanX, xb.Config.SpanY = spanX, spanY
	xb.Delay = inWire.Res.Delay + outWire.Res.Delay + extraD
	xb.EnergyPerTx = float64(cfg.Width) * (inWire.Res.Energy + outWire.Res.Energy + extraE)
	drv := circuit.TristateDriver(dev, loadIn+20e-15)
	xb.EnergyPerTx += float64(cfg.Width) * drv.Energy
	xb.Delay += drv.Delay
	xb.Leakage = float64(cfg.Width) * (float64(cfg.Inputs)*(inWire.Res.Leakage+drv.Leakage) +
		float64(cfg.Outputs)*outWire.Res.Leakage)
	xb.Area = spanX * spanY
	return xb, nil
}
