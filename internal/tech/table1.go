package tech

import (
	"fmt"
	"strings"
)

// Table1Row is one row of the paper's Table 1 ("Key characteristics of
// SRAM, LP-DRAM, and COMM-DRAM technologies") rendered from the model.
type Table1Row struct {
	Characteristic string
	SRAM           string
	LPDRAM         string
	COMMDRAM       string
}

// Table1 renders the paper's Table 1 for the given node (the paper
// quotes projections for 32 nm).
func Table1(n Node) []Table1Row {
	t := New(n)
	s, l, c := t.Cell(SRAM), t.Cell(LPDRAM), t.Cell(COMMDRAM)
	fmtF2 := func(a float64) string { return fmt.Sprintf("%.0fF^2", a) }
	fmtV := func(v float64) string { return fmt.Sprintf("%.1f", v) }
	fmtfF := func(cs float64) string {
		if cs == 0 {
			return "N/A"
		}
		return fmt.Sprintf("%.0f", cs*1e15)
	}
	fmtMs := func(r float64) string {
		if r > 1e6 {
			return "N/A"
		}
		return fmt.Sprintf("%.2g", r*1e3)
	}
	vppOrNA := func(v float64) string {
		if v == 0 {
			return "N/A"
		}
		return fmtV(v)
	}
	return []Table1Row{
		{"Cell area", fmtF2(s.AreaF2), fmtF2(l.AreaF2), fmtF2(c.AreaF2)},
		{"Memory cell device type", s.AccessDevice.String(), l.AccessDevice.String(), c.AccessDevice.String()},
		{"Peripheral/Global circuitry device type", s.PeripheralDevice.String(), l.PeripheralDevice.String(), c.PeripheralDevice.String()},
		{"Bitline interconnect", s.BitlineMaterial.String(), l.BitlineMaterial.String(), c.BitlineMaterial.String()},
		{"Back-end-of-line interconnect", "copper", "copper", "copper"},
		{"Memory cell VDD (V)", fmtV(s.Vdd), fmtV(l.Vdd), fmtV(c.Vdd)},
		{"DRAM storage capacitance (fF)", "N/A", fmtfF(l.Cs), fmtfF(c.Cs)},
		{"Boosted wordline voltage VPP (V)", "N/A", vppOrNA(l.Vpp), vppOrNA(c.Vpp)},
		{"Refresh period (ms)", "N/A", fmtMs(l.RetentionT), fmtMs(c.RetentionT)},
	}
}

// FormatTable1 renders Table 1 as aligned text.
func FormatTable1(n Node) string {
	rows := Table1(n)
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Key characteristics of SRAM, LP-DRAM, and COMM-DRAM technologies (%s)\n", n)
	fmt.Fprintf(&b, "%-42s %-22s %-22s %-22s\n", "Characteristic", "SRAM", "LP-DRAM", "COMM-DRAM")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-42s %-22s %-22s %-22s\n", r.Characteristic, r.SRAM, r.LPDRAM, r.COMMDRAM)
	}
	return b.String()
}
