package tech

import "math"

// Non-volatile memory cell tables for the stt-ram and pcm providers.
//
// Values follow the NVM device characteristics surveyed for hybrid
// DRAM-NVM main memories by Salkhordeh et al., "An Analytical Model
// for Performance and Lifetime Estimation of Hybrid DRAM-NVM Main
// Memories" (arXiv:1903.10067): STT-RAM with ~10 ns programming
// pulses, sub-pJ/bit write energy and ~4e12 write endurance; PCM
// with ~150 ns SET pulses, tens of pJ/bit and ~1e8 endurance. Cell
// footprints and read currents use the standard literature ranges
// (1T-1MTJ 40-54 F^2, PCM 16 F^2), scaled mildly across the ITRS
// nodes; see DESIGN.md §1.9 for the per-parameter provenance table.
//
// Both kinds read by passing a small current through the storage
// element (non-destructive), so RetentionT is +Inf and the mat model
// takes the current-mode bitline branch. Writes pay the cell
// switching pulse and energy on top of the bitline swing, and the
// endurance is surfaced as a solution field.

// nvmCell fills the fields shared by both NVM families.
func nvmCell(ram RAMType, areaW, areaH, vdd, accW, senseV, iRead, tWrite, eWrite, endurance float64, f float64) CellParams {
	return CellParams{
		RAM:              ram,
		Kind:             KindNVM,
		AreaF2:           areaW * areaH,
		WidthF:           areaW,
		HeightF:          areaH,
		Vdd:              vdd,
		RetentionT:       math.Inf(1), // non-volatile
		AccessDevice:     HP,
		PeripheralDevice: HPLongChannel,
		BitlineMaterial:  Copper,
		AccessWidth:      accW * f,
		SenseVmin:        senseV,
		ReadCurrent:      iRead,
		WritePulse:       tWrite,
		EWriteCell:       eWrite,
		Endurance:        endurance,
	}
}

// sttramCells: 1T-1MTJ STT-RAM. The MTJ diameter scales slower than
// the logic pitch, so the cell loses F^2 density headroom at the
// larger nodes; write pulse and energy improve with the smaller free
// layer at tighter nodes while endurance stays at the 4e12 figure
// the survey uses.
var sttramCells = map[Node]CellParams{
	Node90: nvmCell(STTRAM, 9.0, 6.0, 1.2, 2.0, 0.10, 20e-6, 12e-9, 1.2e-12, 4e12, Node90.FeatureSize()),
	Node65: nvmCell(STTRAM, 8.7, 5.5, 1.1, 2.0, 0.10, 22e-6, 11e-9, 0.9e-12, 4e12, Node65.FeatureSize()),
	Node45: nvmCell(STTRAM, 8.2, 5.25, 1.0, 2.0, 0.10, 25e-6, 10e-9, 0.7e-12, 4e12, Node45.FeatureSize()),
	Node32: nvmCell(STTRAM, 8.0, 5.0, 1.0, 2.0, 0.10, 28e-6, 10e-9, 0.5e-12, 4e12, Node32.FeatureSize()),
}

// pcmCells: phase-change memory. Denser than STT-RAM (4x4 F cell),
// long SET pulses, tens of pJ per programmed bit, 1e8 endurance —
// the survey's PCM corner. Read current is kept small to bound read
// disturb.
var pcmCells = map[Node]CellParams{
	Node90: nvmCell(PCM, 4.0, 4.0, 1.8, 1.5, 0.12, 8e-6, 150e-9, 19e-12, 1e8, Node90.FeatureSize()),
	Node65: nvmCell(PCM, 4.0, 4.0, 1.6, 1.5, 0.12, 9e-6, 150e-9, 16e-12, 1e8, Node65.FeatureSize()),
	Node45: nvmCell(PCM, 4.0, 4.0, 1.5, 1.5, 0.12, 10e-6, 150e-9, 14e-12, 1e8, Node45.FeatureSize()),
	Node32: nvmCell(PCM, 4.0, 4.0, 1.4, 1.5, 0.12, 11e-6, 150e-9, 12e-12, 1e8, Node32.FeatureSize()),
}
