package tech

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNodesAvailable(t *testing.T) {
	for _, n := range []Node{Node90, Node65, Node45, Node32} {
		tt := New(n)
		if tt.Node != n {
			t.Errorf("New(%v).Node = %v", n, tt.Node)
		}
		if tt.F != float64(n)*1e-9 {
			t.Errorf("New(%v).F = %g", n, tt.F)
		}
	}
}

func TestNewCopiesBaseTables(t *testing.T) {
	a := New(Node32)
	a.Devices[HP].Vdd = 99
	b := New(Node32)
	if b.Devices[HP].Vdd == 99 {
		t.Fatal("New returned a shared Technology; mutations leak between callers")
	}
}

func TestInterpolatedMemoNeverAliases(t *testing.T) {
	// Interpolated nodes are memoized; callers must still get
	// independent copies and the same values as a fresh build.
	fresh := interpolate(Node(78))
	a := New(Node(78))
	if *a != *fresh {
		t.Fatal("memoized 78nm Technology differs from a fresh interpolation")
	}
	a.Devices[HP].Vdd = 99
	a.Wires[0].Pitch = -1
	b := New(Node(78))
	if b.Devices[HP].Vdd == 99 || b.Wires[0].Pitch == -1 {
		t.Fatal("New aliases the interpolation memo; mutations leak between callers")
	}
	if *b != *fresh {
		t.Fatal("memo entry was corrupted by a caller mutation")
	}
}

func TestInterpolatedMemoConcurrent(t *testing.T) {
	// Hammer several interpolated nodes from many goroutines; the
	// race detector (make verify) checks the memo's locking.
	done := make(chan *Technology, 64)
	for i := 0; i < 64; i++ {
		n := Node(70 + i%8)
		go func() { done <- New(n) }()
	}
	for i := 0; i < 64; i++ {
		if tt := <-done; tt == nil || tt.F <= 0 {
			t.Fatal("concurrent New returned a bad Technology")
		}
	}
}

func TestNewPanicsOutsideRange(t *testing.T) {
	for _, n := range []Node{16, 22, 130, 0} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", n)
				}
			}()
			New(n)
		}()
	}
}

func TestHPDeviceTrends(t *testing.T) {
	// ITRS HP: on-current rises, Vdd falls, gate length shrinks, and
	// subthreshold leakage grows as we scale from 90 nm to 32 nm.
	prev := New(Node90).Device(HP)
	for _, n := range []Node{Node65, Node45, Node32} {
		d := New(n).Device(HP)
		if d.IonN <= prev.IonN {
			t.Errorf("%v: HP IonN %g not > %g", n, d.IonN, prev.IonN)
		}
		if d.Vdd >= prev.Vdd {
			t.Errorf("%v: HP Vdd %g not < %g", n, d.Vdd, prev.Vdd)
		}
		if d.Lphy >= prev.Lphy {
			t.Errorf("%v: HP Lphy %g not < %g", n, d.Lphy, prev.Lphy)
		}
		if d.IoffN <= prev.IoffN {
			t.Errorf("%v: HP IoffN %g not > %g", n, d.IoffN, prev.IoffN)
		}
		prev = d
	}
}

func TestLSTPLeakagePinned(t *testing.T) {
	// The paper: LSTP holds an almost constant ~10 pA/um leakage.
	for _, n := range []Node{Node90, Node65, Node45, Node32} {
		d := New(n).Device(LSTP)
		if got := d.IoffN; math.Abs(got-1e-5) > 1e-7 {
			t.Errorf("%v: LSTP IoffN = %g A/m, want ~1e-5 (10 pA/um)", n, got)
		}
	}
}

func TestDeviceOrdering(t *testing.T) {
	// At every node: HP fastest (lowest R), LSTP slowest of the ITRS
	// trio; HP leakiest, LSTP tightest; long-channel HP in between.
	for _, n := range []Node{Node90, Node65, Node45, Node32} {
		tt := New(n)
		hp, lstp, lop, lc := tt.Device(HP), tt.Device(LSTP), tt.Device(LOP), tt.Device(HPLongChannel)
		if !(hp.RnOnPerWidth < lop.RnOnPerWidth && lop.RnOnPerWidth < lstp.RnOnPerWidth) {
			t.Errorf("%v: R ordering violated: HP %g, LOP %g, LSTP %g", n, hp.RnOnPerWidth, lop.RnOnPerWidth, lstp.RnOnPerWidth)
		}
		if !(hp.IoffN > lop.IoffN && lop.IoffN > lstp.IoffN) {
			t.Errorf("%v: Ioff ordering violated", n)
		}
		if !(lc.IoffN < hp.IoffN && lc.RnOnPerWidth > hp.RnOnPerWidth) {
			t.Errorf("%v: long-channel HP should be less leaky and slower than HP", n)
		}
		if !lc.LongChannel || hp.LongChannel {
			t.Errorf("%v: LongChannel flags wrong", n)
		}
	}
}

func TestFO4Improves(t *testing.T) {
	prev := math.Inf(1)
	for _, n := range []Node{Node90, Node65, Node45, Node32} {
		fo4 := New(n).Device(HP).FO4()
		if fo4 <= 0 || fo4 >= prev {
			t.Errorf("%v: FO4 %g not improving from %g", n, fo4, prev)
		}
		prev = fo4
	}
	// Sanity band: 32 nm HP FO4 in low single-digit ps, 90 nm around 10 ps.
	if f := New(Node90).Device(HP).FO4(); f < 2e-12 || f > 30e-12 {
		t.Errorf("90nm FO4 %g outside sane band", f)
	}
}

func TestWireTrends(t *testing.T) {
	for _, n := range []Node{Node90, Node65, Node45, Node32} {
		tt := New(n)
		l, s, g := tt.Wire(WireLocal), tt.Wire(WireSemiGlobal), tt.Wire(WireGlobal)
		if !(l.RPerLen > s.RPerLen && s.RPerLen > g.RPerLen) {
			t.Errorf("%v: wire R ordering local>semi>global violated", n)
		}
		if !(l.Pitch < s.Pitch && s.Pitch < g.Pitch) {
			t.Errorf("%v: wire pitch ordering violated", n)
		}
		for _, c := range []WireClass{WireLocal, WireSemiGlobal, WireGlobal} {
			cu := tt.WireOf(c, Copper)
			w := tt.WireOf(c, Tungsten)
			if w.RPerLen <= cu.RPerLen*2 {
				t.Errorf("%v %v: tungsten R %g not substantially above copper %g", n, c, w.RPerLen, cu.RPerLen)
			}
			if w.CPerLen != cu.CPerLen {
				t.Errorf("%v %v: tungsten C should match copper", n, c)
			}
		}
	}
}

func TestWireResistanceGrowsWithScaling(t *testing.T) {
	prev := 0.0
	for _, n := range []Node{Node90, Node65, Node45, Node32} {
		r := New(n).Wire(WireSemiGlobal).RPerLen
		if r <= prev {
			t.Errorf("%v: semi-global R/len %g not > previous %g", n, r, prev)
		}
		prev = r
	}
}

func TestCellTable1At32(t *testing.T) {
	tt := New(Node32)
	s, l, c := tt.Cell(SRAM), tt.Cell(LPDRAM), tt.Cell(COMMDRAM)
	if s.AreaF2 != 146 {
		t.Errorf("SRAM area %g F^2, want 146", s.AreaF2)
	}
	if l.AreaF2 != 30 {
		t.Errorf("LP-DRAM area %g F^2, want 30", l.AreaF2)
	}
	if c.AreaF2 != 6 {
		t.Errorf("COMM-DRAM area %g F^2, want 6", c.AreaF2)
	}
	if s.Vdd != 0.9 || l.Vdd != 1.0 || c.Vdd != 1.0 {
		t.Errorf("cell VDDs = %g/%g/%g, want 0.9/1.0/1.0", s.Vdd, l.Vdd, c.Vdd)
	}
	if l.Cs != 20e-15 || c.Cs != 30e-15 {
		t.Errorf("storage caps = %g/%g, want 20f/30f", l.Cs, c.Cs)
	}
	if l.Vpp != 1.5 || c.Vpp != 2.6 {
		t.Errorf("VPP = %g/%g, want 1.5/2.6", l.Vpp, c.Vpp)
	}
	if l.RetentionT != 0.12e-3 || c.RetentionT != 64e-3 {
		t.Errorf("retention = %g/%g, want 0.12ms/64ms", l.RetentionT, c.RetentionT)
	}
	if c.BitlineMaterial != Tungsten || s.BitlineMaterial != Copper {
		t.Error("bitline materials wrong")
	}
	if c.PeripheralDevice != LSTP {
		t.Error("COMM-DRAM periphery should be LSTP")
	}
	if !math.IsInf(s.RetentionT, 1) {
		t.Error("SRAM retention should be +Inf")
	}
}

func TestCellGeometryConsistent(t *testing.T) {
	// WidthF*HeightF must equal AreaF2 (within rounding) at all nodes.
	for _, n := range []Node{Node90, Node65, Node45, Node32} {
		tt := New(n)
		for _, r := range []RAMType{SRAM, LPDRAM, COMMDRAM} {
			c := tt.Cell(r)
			if got := c.WidthF * c.HeightF; math.Abs(got-c.AreaF2)/c.AreaF2 > 0.05 {
				t.Errorf("%v %v: WidthF*HeightF=%g vs AreaF2=%g", n, r, got, c.AreaF2)
			}
			f := tt.F
			if c.CellArea(f) <= 0 || c.CellWidth(f) <= 0 || c.CellHeight(f) <= 0 {
				t.Errorf("%v %v: non-positive physical dims", n, r)
			}
		}
	}
}

func TestRetentionSupportedByLeakage(t *testing.T) {
	// The access transistor leakage must be low enough to retain
	// SenseVmin-worth of charge over the refresh period (with margin):
	// this is the physical link between thick oxides and 64 ms refresh.
	for _, n := range []Node{Node90, Node65, Node45, Node32} {
		tt := New(n)
		for _, r := range []RAMType{LPDRAM, COMMDRAM} {
			c := tt.Cell(r)
			d := tt.Device(c.AccessDevice)
			leak := d.IoffN * c.AccessWidth // A
			// Charge available before the read signal degrades below
			// the sense minimum: Cs * (Vdd/2 - margin): use Vdd/4.
			q := c.Cs * c.Vdd / 4
			if leak*c.RetentionT > q {
				t.Errorf("%v %v: leakage %g A drains %g C over retention, > budget %g C",
					n, r, leak, leak*c.RetentionT, q)
			}
		}
	}
}

func TestInterpolation78nm(t *testing.T) {
	t78 := New(78)
	t90, t65 := New(Node90), New(Node65)
	d78, d90, d65 := t78.Device(HP), t90.Device(HP), t65.Device(HP)
	if !(d65.Vdd <= d78.Vdd && d78.Vdd <= d90.Vdd) {
		t.Errorf("78nm HP Vdd %g not between 65nm %g and 90nm %g", d78.Vdd, d65.Vdd, d90.Vdd)
	}
	if !(d90.IonN <= d78.IonN && d78.IonN <= d65.IonN) {
		t.Errorf("78nm HP Ion %g not between nodes", d78.IonN)
	}
	c78 := t78.Cell(COMMDRAM)
	if !(t65.Cell(COMMDRAM).Vdd <= c78.Vdd && c78.Vdd <= t90.Cell(COMMDRAM).Vdd) {
		t.Errorf("78nm COMM-DRAM Vdd %g not between nodes", c78.Vdd)
	}
	if math.Abs(c78.RetentionT-64e-3) > 1e-9 {
		t.Errorf("78nm COMM-DRAM retention %g, want 64ms", c78.RetentionT)
	}
	if !math.IsInf(t78.Cell(SRAM).RetentionT, 1) {
		t.Error("interpolated SRAM retention should stay +Inf")
	}
	if t78.SenseAmpDelay <= t65.SenseAmpDelay || t78.SenseAmpDelay >= t90.SenseAmpDelay {
		t.Errorf("78nm SA delay %g not between nodes", t78.SenseAmpDelay)
	}
}

func TestInterpolationMonotone(t *testing.T) {
	// Property: for any node in (32,90), every positive interpolated
	// HP parameter lies between the bracketing base values.
	f := func(raw uint8) bool {
		n := Node(33 + int(raw)%57) // 33..89
		tt := New(n)
		// find brackets
		var lo, hi Node
		switch {
		case n > 65:
			lo, hi = Node90, Node65
		case n > 45:
			lo, hi = Node65, Node45
		default:
			lo, hi = Node45, Node32
		}
		a, b := New(lo).Device(HP), New(hi).Device(HP)
		d := tt.Device(HP)
		between := func(x, p, q float64) bool {
			if p > q {
				p, q = q, p
			}
			return x >= p*0.999 && x <= q*1.001
		}
		return between(d.Vdd, a.Vdd, b.Vdd) &&
			between(d.IonN, a.IonN, b.IonN) &&
			between(d.IoffN, a.IoffN, b.IoffN) &&
			between(d.RnOnPerWidth, a.RnOnPerWidth, b.RnOnPerWidth)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTable1Render(t *testing.T) {
	s := FormatTable1(Node32)
	for _, want := range []string{"146F^2", "30F^2", "6F^2", "tungsten", "ITRS-LSTP", "64", "0.12", "2.6", "1.5"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, s)
		}
	}
	rows := Table1(Node32)
	if len(rows) != 9 {
		t.Errorf("Table 1 has %d rows, want 9", len(rows))
	}
	if rows[0].SRAM != "146F^2" {
		t.Errorf("row 0 SRAM = %q", rows[0].SRAM)
	}
}

func TestStringers(t *testing.T) {
	cases := map[string]string{
		HP.String():             "ITRS-HP",
		LSTP.String():           "ITRS-LSTP",
		LOP.String():            "ITRS-LOP",
		HPLongChannel.String():  "ITRS-HP-long-channel",
		LPDRAMAccess.String():   "LP-DRAM-access",
		COMMDRAMAccess.String(): "COMM-DRAM-access",
		SRAM.String():           "SRAM",
		LPDRAM.String():         "LP-DRAM",
		COMMDRAM.String():       "COMM-DRAM",
		WireLocal.String():      "local",
		WireSemiGlobal.String(): "semi-global",
		WireGlobal.String():     "global",
		Copper.String():         "copper",
		Tungsten.String():       "tungsten",
		Node32.String():         "32nm",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if !SRAM.IsDRAM() == false || !LPDRAM.IsDRAM() || !COMMDRAM.IsDRAM() {
		t.Error("IsDRAM wrong")
	}
}

func TestLeakageTempScale(t *testing.T) {
	if got := LeakageTempScale(358); math.Abs(got-1) > 1e-12 {
		t.Errorf("scale at reference = %g, want 1", got)
	}
	if got := LeakageTempScale(370); math.Abs(got-2) > 1e-9 {
		t.Errorf("scale at +12K = %g, want 2", got)
	}
	if got := LeakageTempScale(346); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("scale at -12K = %g, want 0.5", got)
	}
	// Monotone increasing.
	prev := 0.0
	for temp := 300.0; temp <= 400; temp += 10 {
		s := LeakageTempScale(temp)
		if s <= prev {
			t.Fatalf("not monotone at %gK", temp)
		}
		prev = s
	}
}
