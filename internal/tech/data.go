package tech

import "math"

// The tables below hold per-node technology data. Values follow the
// structure and trends of the ITRS 2006 update (devices), Ron Ho's
// wire projections (interconnect), and the published cell data the
// paper cites ([38] for LP-DRAM, [3,23,24] for COMM-DRAM, [8] for the
// long-channel SRAM assumption), anchored so that the model reproduces
// the paper's Table 1 at 32 nm and its validation targets (Figure 1,
// Table 2) within the errors the paper reports.
//
// Unit conventions in the literals:
//   currents   1 uA/um == 1 A/m        (numerically identical)
//   leakage    1 nA/um == 1e-3 A/m
//   capacitance 1 fF/um == 1e-9 F/m
//   R*width    1 kohm*um == 1e-3 ohm*m

// rEff converts (Vdd, Ion/width) into an effective switching
// resistance times width, including the empirical 2.4x factor that
// accounts for rise time and velocity saturation (the same role as
// the Horowitz-fit constants in the original tool).
func rEff(vdd, ion float64) float64 { return 2.4 * vdd / ion }

func dev(t DeviceType, vdd, vth, lphyNM, cg, cfr, cj, ionN, ioffN, ig float64, long bool) DeviceParams {
	ionP := ionN / 2
	return DeviceParams{
		Type:            t,
		Vdd:             vdd,
		Vth:             vth,
		Lphy:            lphyNM * 1e-9,
		Lelc:            lphyNM * 0.8 * 1e-9,
		CgIdealPerWidth: cg,
		CFringePerWidth: cfr,
		CJuncPerWidth:   cj,
		IonN:            ionN,
		IonP:            ionP,
		IoffN:           ioffN,
		IoffP:           ioffN / 2,
		IgOn:            ig,
		RnOnPerWidth:    rEff(vdd, ionN),
		RpOnPerWidth:    2 * rEff(vdd, ionN),
		LongChannel:     long,
	}
}

// wire builds WireParams for a pitch (in units of F), an effective
// resistivity (ohm*m) and a capacitance per length.
func wire(c WireClass, m WireMaterial, node Node, pitchF, rho, ar, cPerLen float64) WireParams {
	f := node.FeatureSize()
	pitch := pitchF * f
	width := pitch / 2
	thick := ar * width
	return WireParams{
		Class:     c,
		Material:  m,
		Pitch:     pitch,
		RPerLen:   rho / (width * thick),
		CPerLen:   cPerLen,
		AspectRat: ar,
	}
}

// Effective resistivities (including barrier/liner and surface
// scattering, which worsen as dimensions shrink).
var rhoCu = map[Node]float64{Node90: 3.0e-8, Node65: 3.3e-8, Node45: 3.7e-8, Node32: 4.2e-8}

const tungstenFactor = 3.0 // rho_W / rho_Cu (with liners)

func wires(node Node) (cu, w [numWireClasses]WireParams) {
	rho := rhoCu[node]
	cu[WireLocal] = wire(WireLocal, Copper, node, 2.5, rho, 1.8, 1.8e-10)
	cu[WireSemiGlobal] = wire(WireSemiGlobal, Copper, node, 4, rho, 2.0, 2.0e-10)
	cu[WireGlobal] = wire(WireGlobal, Copper, node, 8, rho, 2.2, 2.1e-10)
	for i := range cu {
		w[i] = cu[i]
		w[i].Material = Tungsten
		w[i].RPerLen *= tungstenFactor
	}
	return cu, w
}

func cells(node Node) [numRAMTypes]CellParams {
	f := node.FeatureSize()
	idx := map[Node]int{Node90: 0, Node65: 1, Node45: 2, Node32: 3}[node]
	pick := func(v [4]float64) float64 { return v[idx] }

	sram := CellParams{
		RAM:              SRAM,
		Kind:             KindStatic,
		AreaF2:           146,
		WidthF:           14.6,
		HeightF:          10,
		Vdd:              pick([4]float64{1.2, 1.1, 1.0, 0.9}),
		RetentionT:       math.Inf(1),
		AccessDevice:     HPLongChannel,
		PeripheralDevice: HPLongChannel,
		BitlineMaterial:  Copper,
		AccessWidth:      1.4 * f,
		SenseVmin:        0.10,
	}
	lp := CellParams{
		RAM:              LPDRAM,
		Kind:             Kind1T1C,
		AreaF2:           pick([4]float64{20, 24, 27, 30}),
		WidthF:           pick([4]float64{5.0, 5.4, 5.7, 6.0}),
		HeightF:          pick([4]float64{4.0, 4.45, 4.75, 5.0}),
		Vdd:              pick([4]float64{1.2, 1.1, 1.0, 1.0}),
		Vpp:              pick([4]float64{1.8, 1.7, 1.6, 1.5}),
		Cs:               20e-15,
		RetentionT:       pick([4]float64{0.18e-3, 0.16e-3, 0.14e-3, 0.12e-3}),
		AccessDevice:     LPDRAMAccess,
		PeripheralDevice: HPLongChannel,
		BitlineMaterial:  Copper,
		AccessWidth:      1.8 * f,
		SenseVmin:        0.08,
	}
	comm := CellParams{
		RAM:              COMMDRAM,
		Kind:             Kind1T1C,
		AreaF2:           6,
		WidthF:           3,
		HeightF:          2,
		Vdd:              pick([4]float64{1.8, 1.5, 1.2, 1.0}),
		Vpp:              pick([4]float64{3.4, 3.0, 2.8, 2.6}),
		Cs:               30e-15,
		RetentionT:       64e-3,
		AccessDevice:     COMMDRAMAccess,
		PeripheralDevice: LSTP,
		BitlineMaterial:  Tungsten,
		AccessWidth:      1.0 * f,
		SenseVmin:        0.07,
	}
	var out [numRAMTypes]CellParams
	out[SRAM], out[LPDRAM], out[COMMDRAM] = sram, lp, comm
	return out
}

func buildTech(n Node, devs [numDeviceTypes]DeviceParams, saDelay, saEnergy float64) *Technology {
	cu, w := wires(n)
	return &Technology{
		Node:           n,
		F:              n.FeatureSize(),
		Devices:        devs,
		Wires:          cu,
		TungstenWires:  w,
		Cells:          cells(n),
		SenseAmpDelay:  saDelay,
		SenseAmpEnergy: saEnergy,
	}
}

var baseTechnologies = map[Node]*Technology{
	Node90: buildTech(Node90, [numDeviceTypes]DeviceParams{
		HP:             dev(HP, 1.2, 0.24, 37, 6.4e-10, 2.4e-10, 8.0e-10, 1080, 0.35, 0.008, false),
		LSTP:           dev(LSTP, 1.2, 0.50, 75, 8.8e-10, 2.6e-10, 9.0e-10, 450, 1.0e-5, 1e-6, false),
		LOP:            dev(LOP, 0.9, 0.28, 53, 7.2e-10, 2.5e-10, 8.5e-10, 600, 1.0e-2, 1e-4, false),
		HPLongChannel:  dev(HPLongChannel, 1.2, 0.30, 52, 7.7e-10, 2.5e-10, 8.5e-10, 860, 0.08, 0.004, true),
		LPDRAMAccess:   dev(LPDRAMAccess, 1.2, 0.35, 90, 9.0e-10, 2.6e-10, 4.0e-10, 600, 2.0e-4, 1e-7, false),
		COMMDRAMAccess: dev(COMMDRAMAccess, 1.8, 0.90, 110, 1.0e-9, 2.8e-10, 3.0e-10, 260, 1.5e-6, 1e-9, false),
	}, 150e-12, 8e-15),
	Node65: buildTech(Node65, [numDeviceTypes]DeviceParams{
		HP:             dev(HP, 1.1, 0.22, 25, 5.8e-10, 2.4e-10, 7.2e-10, 1200, 0.40, 0.012, false),
		LSTP:           dev(LSTP, 1.2, 0.50, 45, 8.0e-10, 2.5e-10, 8.0e-10, 480, 1.0e-5, 1e-6, false),
		LOP:            dev(LOP, 0.8, 0.27, 32, 6.6e-10, 2.4e-10, 7.6e-10, 650, 1.0e-2, 2e-4, false),
		HPLongChannel:  dev(HPLongChannel, 1.1, 0.28, 35, 7.0e-10, 2.4e-10, 7.6e-10, 960, 0.10, 0.006, true),
		LPDRAMAccess:   dev(LPDRAMAccess, 1.1, 0.35, 65, 8.4e-10, 2.5e-10, 3.6e-10, 640, 2.0e-4, 1e-7, false),
		COMMDRAMAccess: dev(COMMDRAMAccess, 1.5, 0.85, 80, 9.4e-10, 2.6e-10, 2.7e-10, 250, 1.5e-6, 1e-9, false),
	}, 120e-12, 6e-15),
	Node45: buildTech(Node45, [numDeviceTypes]DeviceParams{
		HP:             dev(HP, 1.0, 0.18, 18, 5.2e-10, 2.4e-10, 6.4e-10, 1400, 0.45, 0.020, false),
		LSTP:           dev(LSTP, 1.1, 0.50, 28, 7.2e-10, 2.5e-10, 7.2e-10, 510, 1.0e-5, 1e-6, false),
		LOP:            dev(LOP, 0.7, 0.25, 22, 6.0e-10, 2.4e-10, 6.8e-10, 700, 1.0e-2, 4e-4, false),
		HPLongChannel:  dev(HPLongChannel, 1.0, 0.24, 25, 6.2e-10, 2.4e-10, 6.8e-10, 1120, 0.12, 0.010, true),
		LPDRAMAccess:   dev(LPDRAMAccess, 1.0, 0.35, 45, 7.8e-10, 2.4e-10, 3.2e-10, 670, 2.0e-4, 1e-7, false),
		COMMDRAMAccess: dev(COMMDRAMAccess, 1.2, 0.80, 55, 8.8e-10, 2.5e-10, 2.4e-10, 240, 1.5e-6, 1e-9, false),
	}, 100e-12, 4.5e-15),
	Node32: buildTech(Node32, [numDeviceTypes]DeviceParams{
		HP:             dev(HP, 0.9, 0.16, 13, 4.7e-10, 2.4e-10, 5.6e-10, 1600, 0.50, 0.032, false),
		LSTP:           dev(LSTP, 1.1, 0.50, 20, 6.5e-10, 2.5e-10, 6.5e-10, 540, 1.0e-5, 1e-6, false),
		LOP:            dev(LOP, 0.6, 0.24, 16, 5.4e-10, 2.4e-10, 6.0e-10, 750, 1.0e-2, 8e-4, false),
		HPLongChannel:  dev(HPLongChannel, 0.9, 0.22, 18, 5.6e-10, 2.4e-10, 6.0e-10, 1280, 0.15, 0.016, true),
		LPDRAMAccess:   dev(LPDRAMAccess, 1.0, 0.35, 32, 7.2e-10, 2.4e-10, 2.8e-10, 700, 2.0e-4, 1e-7, false),
		COMMDRAMAccess: dev(COMMDRAMAccess, 1.0, 0.75, 40, 8.2e-10, 2.4e-10, 2.1e-10, 230, 1.5e-6, 1e-9, false),
	}, 80e-12, 3.5e-15),
}
