package tech

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestResolveSpellings(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"", "itrs"},
		{"itrs", "itrs"},
		{"default", "itrs"},
		{"ITRS", "itrs"},
		{"  itrs  ", "itrs"},
		{"itrs-sram", "itrs-sram"},
		{"lp-dram", "itrs-lpdram"},
		{"comm-dram", "itrs-commdram"},
		{"stt-ram", "stt-ram"},
		{"sttram", "stt-ram"},
		{"STT", "stt-ram"},
		{"mram", "stt-ram"},
		{"pcm", "pcm"},
		{"phase-change", "pcm"},
		{"pha", "pcm"}, // unique prefix of an alias
		{"gain-cell", "gain-cell"},
		{"gaincell", "gain-cell"},
		{"gc-edram", "gain-cell"},
		{"ga", "gain-cell"}, // unique prefix
	}
	for _, c := range cases {
		p, err := Resolve(c.in)
		if err != nil {
			t.Errorf("Resolve(%q): %v", c.in, err)
			continue
		}
		if p.Name() != c.want {
			t.Errorf("Resolve(%q) = %q, want %q", c.in, p.Name(), c.want)
		}
	}
}

func TestResolveErrors(t *testing.T) {
	if _, err := Resolve("flashy"); !errors.Is(err, ErrUnknownTech) {
		t.Errorf("unknown name: err = %v", err)
	} else if !strings.Contains(err.Error(), "itrs, itrs-sram") {
		t.Errorf("unknown-name error does not list providers: %v", err)
	}
	// "it" prefixes every ITRS family member; "itrs-" all but the default.
	for _, in := range []string{"it", "itrs-"} {
		if _, err := Resolve(in); !errors.Is(err, ErrAmbiguousTech) {
			t.Errorf("Resolve(%q): err = %v, want ErrAmbiguousTech", in, err)
		} else if !strings.Contains(err.Error(), "itrs-sram") {
			t.Errorf("ambiguous error does not list candidates: %v", err)
		}
	}
}

// Registration order is fixed: the registry is an ordered slice, never
// a map, because provider resolution sits inside the solver's
// byte-identity cone and error messages must be deterministic.
func TestProvidersOrderPinned(t *testing.T) {
	want := []string{"itrs", "itrs-sram", "itrs-lpdram", "itrs-commdram",
		"stt-ram", "pcm", "gain-cell"}
	if got := Providers(); !reflect.DeepEqual(got, want) {
		t.Errorf("Providers() = %v, want %v", got, want)
	}
}

func TestDataRAMPinning(t *testing.T) {
	def, _ := Resolve("")
	if r, err := def.DataRAM(LPDRAM); err != nil || r != LPDRAM {
		t.Errorf("default DataRAM(LPDRAM) = %v, %v", r, err)
	}
	if _, err := def.DataRAM(STTRAM); err == nil {
		t.Error("default provider accepted STTRAM on the ram axis")
	}
	// Pinned providers override the ram axis so a sweep can hold the
	// geometry grid fixed while only the technology varies.
	for name, want := range map[string]RAMType{
		"itrs-sram": SRAM, "itrs-lpdram": LPDRAM, "itrs-commdram": COMMDRAM,
		"stt-ram": STTRAM, "pcm": PCM, "gain-cell": GAINCELL,
	} {
		p, _ := Resolve(name)
		if r, err := p.DataRAM(SRAM); err != nil || r != want {
			t.Errorf("%s.DataRAM(SRAM) = %v, %v; want %v", name, r, err, want)
		}
	}
}

// Overlay providers must keep the ITRS peripheral process and cells
// (tag arrays depend on them) while swapping only their own data-cell
// slot.
func TestOverlayKeepsITRSProcess(t *testing.T) {
	base := New(Node32)
	for _, name := range []string{"stt-ram", "pcm", "gain-cell"} {
		p, _ := Resolve(name)
		ram, _ := p.DataRAM(SRAM)
		tt, err := p.Technology(Node32)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(tt.Devices, base.Devices) {
			t.Errorf("%s: device tables diverged from ITRS", name)
		}
		if !reflect.DeepEqual(tt.Cells[SRAM], base.Cells[SRAM]) {
			t.Errorf("%s: SRAM tag cell diverged from ITRS", name)
		}
		if tt.Cells[ram].Kind == KindStatic || tt.Cells[ram].Vdd <= 0 {
			t.Errorf("%s: data cell slot not populated: %+v", name, tt.Cells[ram])
		}
	}
}

// At a non-base node the overlay cell is log-interpolated between its
// bracketing base nodes, the same scheme as the ITRS tables: every
// parameter must land strictly inside (or on) the bracketing values.
func TestOverlayInterpolation(t *testing.T) {
	p, _ := Resolve("stt-ram")
	ram, _ := p.DataRAM(SRAM)
	lo, err1 := p.Technology(Node45)
	hi, err2 := p.Technology(Node65)
	mid, err3 := p.Technology(Node(50))
	if err1 != nil || err2 != nil || err3 != nil {
		t.Fatal(err1, err2, err3)
	}
	between := func(name string, v, a, b float64) {
		loV, hiV := a, b
		if loV > hiV {
			loV, hiV = hiV, loV
		}
		if v < loV || v > hiV {
			t.Errorf("%s = %g outside bracket [%g, %g]", name, v, loV, hiV)
		}
	}
	c, cLo, cHi := mid.Cells[ram], lo.Cells[ram], hi.Cells[ram]
	between("Vdd", c.Vdd, cLo.Vdd, cHi.Vdd)
	between("ReadCurrent", c.ReadCurrent, cLo.ReadCurrent, cHi.ReadCurrent)
	between("WritePulse", c.WritePulse, cLo.WritePulse, cHi.WritePulse)
	between("EWriteCell", c.EWriteCell, cLo.EWriteCell, cHi.EWriteCell)
	if c.Kind != KindNVM {
		t.Errorf("interpolated cell lost its kind: %v", c.Kind)
	}
	// Endurance is flat across the STT-RAM table, so interpolation must
	// reproduce it (up to log-mix rounding).
	if d := c.Endurance/cLo.Endurance - 1; d > 1e-12 || d < -1e-12 {
		t.Errorf("endurance drifted under interpolation: %g vs %g", c.Endurance, cLo.Endurance)
	}
}

func TestTechnologyOfBadNode(t *testing.T) {
	for _, name := range []string{"itrs", "stt-ram"} {
		if _, err := TechnologyOf(name, Node(22)); err == nil {
			t.Errorf("%s at 22nm: expected node-range error", name)
		}
	}
}

func TestCellKindPredicates(t *testing.T) {
	if !Kind1T1C.DestructiveRead() || KindStatic.DestructiveRead() ||
		KindGainCell.DestructiveRead() || KindNVM.DestructiveRead() {
		t.Error("DestructiveRead: only 1T1C reads destructively")
	}
	if !Kind1T1C.NeedsRefresh() || !KindGainCell.NeedsRefresh() ||
		KindStatic.NeedsRefresh() || KindNVM.NeedsRefresh() {
		t.Error("NeedsRefresh: exactly the capacitor-storage kinds refresh")
	}
}
