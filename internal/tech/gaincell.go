package tech

// Gain-cell table for the gain-cell provider: a logic-compatible 2T
// cell in which a low-leakage write transistor charges a storage node
// that gates a separate read transistor. Reads are non-destructive
// current-mode (the read device discharges the read bitline), writes
// drive the write bitline full swing under a boosted write wordline,
// and the leaking storage node makes refresh retention-driven like
// the paper's LP-DRAM path — but a refresh must re-read AND write
// back each row, since the read does not restore.
//
// The configuration follows the 2T gain-cell organization of Waqar et
// al., "Monolithic 3D stacked gain-cell memory as last-level cache"
// (arXiv:2503.06304): ~3x the density of 6T SRAM, LP-DRAM-class
// low-leakage write access device, and retention set by storage-node
// leakage — hundreds of microseconds on a silicon logic process,
// shrinking with the node as leakage grows. Per-parameter provenance
// is tabulated in DESIGN.md §1.9.
var gainCellCells = map[Node]CellParams{
	Node90: gainCell(10.0, 6.0, 1.1, 1.6, 500e-6, 35e-6, 0.08, Node90.FeatureSize()),
	Node65: gainCell(9.5, 5.8, 1.0, 1.5, 300e-6, 38e-6, 0.08, Node65.FeatureSize()),
	Node45: gainCell(9.0, 5.55, 0.95, 1.4, 180e-6, 40e-6, 0.08, Node45.FeatureSize()),
	Node32: gainCell(8.8, 5.25, 0.9, 1.3, 100e-6, 42e-6, 0.08, Node32.FeatureSize()),
}

func gainCell(wF, hF, vdd, vpp, retention, iRead, senseV, f float64) CellParams {
	return CellParams{
		RAM:              GAINCELL,
		Kind:             KindGainCell,
		AreaF2:           wF * hF,
		WidthF:           wF,
		HeightF:          hF,
		Vdd:              vdd,
		Vpp:              vpp, // boosted write wordline recovers the Vth drop
		Cs:               1e-15,
		RetentionT:       retention,
		AccessDevice:     LPDRAMAccess, // low-leakage logic-compatible write device
		PeripheralDevice: HPLongChannel,
		BitlineMaterial:  Copper,
		AccessWidth:      1.2 * f,
		SenseVmin:        senseV,
		ReadCurrent:      iRead,
	}
}
