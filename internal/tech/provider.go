package tech

import (
	"errors"
	"fmt"
	"strings"
)

// Provider supplies one memory technology family to the solver: the
// device/wire/cell tables at a node plus the identity of the data
// cell the family stores bits in. The built-in ITRS providers expose
// the original SRAM/LP-DRAM/COMM-DRAM models; emerging-technology
// providers (stt-ram, pcm, gain-cell) overlay their own cell tables
// on the ITRS logic process, so peripheral circuitry, wires and tag
// arrays keep the paper's models while the storage cell changes.
//
// The solver resolves a provider from core.Spec's technology field
// (the `tech=` sweep axis). Providers are registered at package init
// in a fixed order; lookup and error messages are deterministic, as
// everything here is reachable from the solver's byte-identity cone.
type Provider interface {
	// Name is the canonical registry name — the value the technology
	// axis canonicalises to.
	Name() string

	// Aliases are additional accepted spellings.
	Aliases() []string

	// DataRAM maps the requested (geometry-axis) RAM type to the cell
	// type this provider's data arrays use. The ITRS family echoes the
	// request; single-technology providers pin their own cell type,
	// overriding the ram axis so cross-technology sweeps can hold one
	// grid while the technology varies.
	DataRAM(requested RAMType) (RAMType, error)

	// Supports reports whether Technology populates the cell table
	// slot for r (tag arrays may use any supported type).
	Supports(r RAMType) bool

	// Technology returns the full table bundle at node n.
	Technology(n Node) (*Technology, error)
}

// Sentinel errors for technology-axis resolution; HTTP handlers map
// both to 400s.
var (
	ErrUnknownTech   = errors.New("tech: unknown technology")
	ErrAmbiguousTech = errors.New("tech: ambiguous technology")
)

// DefaultTech is the canonical name of the default provider: the
// built-in ITRS family, driven by the spec's RAM type exactly as
// before providers existed.
const DefaultTech = "itrs"

// registry holds the providers in registration order. It is built
// once at init and never mutated afterwards, so lookups are
// lock-free and deterministic (no map iteration anywhere near the
// solver's byte-identity cone).
var registry []Provider

func register(p Provider) {
	for _, q := range registry {
		names := append([]string{q.Name()}, q.Aliases()...)
		for _, n := range names {
			if n == p.Name() {
				panic(fmt.Sprintf("tech: duplicate provider name %q", n))
			}
			for _, a := range p.Aliases() {
				if n == a {
					panic(fmt.Sprintf("tech: duplicate provider alias %q", a))
				}
			}
		}
	}
	registry = append(registry, p)
}

// Providers returns the canonical provider names in registration
// order — the valid values of the technology axis.
func Providers() []string {
	names := make([]string, len(registry))
	for i, p := range registry {
		names[i] = p.Name()
	}
	return names
}

// Resolve maps a technology-axis value to its provider. The empty
// string resolves to the default ITRS provider; otherwise the name is
// matched case-insensitively against canonical names and aliases,
// then — uniquely — as a prefix, so `tech=stt` works while `tech=it`
// is rejected as ambiguous. Unknown and ambiguous names return errors
// wrapping ErrUnknownTech / ErrAmbiguousTech with the candidate list.
func Resolve(name string) (Provider, error) {
	s := strings.ToLower(strings.TrimSpace(name))
	if s == "" {
		s = DefaultTech
	}
	for _, p := range registry {
		if p.Name() == s {
			return p, nil
		}
		for _, a := range p.Aliases() {
			if a == s {
				return p, nil
			}
		}
	}
	var matches []Provider
	for _, p := range registry {
		hit := strings.HasPrefix(p.Name(), s)
		for _, a := range p.Aliases() {
			hit = hit || strings.HasPrefix(a, s)
		}
		if hit {
			matches = append(matches, p)
		}
	}
	switch len(matches) {
	case 1:
		return matches[0], nil
	case 0:
		return nil, fmt.Errorf("%w %q (known: %s)",
			ErrUnknownTech, name, strings.Join(Providers(), ", "))
	default:
		names := make([]string, len(matches))
		for i, p := range matches {
			names[i] = p.Name()
		}
		return nil, fmt.Errorf("%w %q (matches %s)",
			ErrAmbiguousTech, name, strings.Join(names, ", "))
	}
}

// TechnologyOf resolves a provider name and builds its Technology at
// node n — the single entry point the solver uses.
func TechnologyOf(name string, n Node) (*Technology, error) {
	p, err := Resolve(name)
	if err != nil {
		return nil, err
	}
	return p.Technology(n)
}

// nodeRangeErr is the error form of New's panic, for providers that
// must report bad nodes instead of panicking.
func nodeRangeErr(n Node) error {
	return fmt.Errorf("tech: node %d outside supported range [32,90] nm", int(n))
}

// itrsProvider is the built-in family. pin < 0 echoes the requested
// RAM type (the default provider); otherwise the data array is pinned
// to one ITRS cell so the family is sweepable alongside the emerging
// technologies on a single axis.
type itrsProvider struct {
	name    string
	aliases []string
	pin     RAMType
	pinned  bool
}

func (p *itrsProvider) Name() string      { return p.name }
func (p *itrsProvider) Aliases() []string { return p.aliases }

func (p *itrsProvider) DataRAM(req RAMType) (RAMType, error) {
	if p.pinned {
		return p.pin, nil
	}
	if !p.Supports(req) {
		return 0, fmt.Errorf("tech: technology %q has no %v cell model", p.name, req)
	}
	return req, nil
}

func (p *itrsProvider) Supports(r RAMType) bool {
	return r == SRAM || r == LPDRAM || r == COMMDRAM
}

func (p *itrsProvider) Technology(n Node) (*Technology, error) {
	if n < Node32 || n > Node90 {
		return nil, nodeRangeErr(n)
	}
	return New(n), nil
}

// overlayProvider models an emerging technology as a cell table
// overlaid on the ITRS logic process at the same node: devices,
// wires, sense amps and the ITRS cells (for tag arrays) are shared,
// while the pinned data-cell slot comes from the provider's own
// per-node table, log-interpolated between base nodes exactly like
// the ITRS tables themselves.
type overlayProvider struct {
	name    string
	aliases []string
	ram     RAMType
	cells   map[Node]CellParams
}

func (p *overlayProvider) Name() string                    { return p.name }
func (p *overlayProvider) Aliases() []string               { return p.aliases }
func (p *overlayProvider) DataRAM(RAMType) (RAMType, error) { return p.ram, nil }

func (p *overlayProvider) Supports(r RAMType) bool {
	return r == p.ram || r == SRAM || r == LPDRAM || r == COMMDRAM
}

func (p *overlayProvider) Technology(n Node) (*Technology, error) {
	if n < Node32 || n > Node90 {
		return nil, nodeRangeErr(n)
	}
	t := New(n)
	if c, ok := p.cells[n]; ok {
		t.Cells[p.ram] = c
	} else {
		lo, hi, w := bracket(n)
		t.Cells[p.ram] = mixCell(p.cells[lo], p.cells[hi], w)
	}
	return t, nil
}

func init() {
	pinned := func(name string, ram RAMType, aliases ...string) *itrsProvider {
		return &itrsProvider{name: name, aliases: aliases, pin: ram, pinned: true}
	}
	register(&itrsProvider{name: DefaultTech, aliases: []string{"default"}})
	register(pinned("itrs-sram", SRAM))
	register(pinned("itrs-lpdram", LPDRAM, "lp-dram"))
	register(pinned("itrs-commdram", COMMDRAM, "comm-dram"))
	register(&overlayProvider{
		name: "stt-ram", aliases: []string{"sttram", "stt", "mram"},
		ram: STTRAM, cells: sttramCells,
	})
	register(&overlayProvider{
		name: "pcm", aliases: []string{"phase-change"},
		ram: PCM, cells: pcmCells,
	})
	register(&overlayProvider{
		name: "gain-cell", aliases: []string{"gaincell", "gc-edram"},
		ram: GAINCELL, cells: gainCellCells,
	})
}
