// Package tech provides the technology models that underlie CACTI-D:
// ITRS-style device projections (High Performance, Low Standby Power,
// Low Operating Power and long-channel device types), wire RC
// projections following Ron Ho's data, and memory-cell characteristics
// for SRAM, logic-process DRAM (LP-DRAM) and commodity DRAM
// (COMM-DRAM).
//
// All quantities use SI units: meters, seconds, volts, amps, farads,
// ohms, joules, watts. Feature size F is expressed in meters.
//
// The data tables cover the four ITRS nodes used by the paper
// (90, 65, 45 and 32 nm, spanning ITRS years 2004-2013). Arbitrary
// intermediate nodes (for example the 78 nm node of the Micron DDR3
// validation in Table 2) are produced by log-linear interpolation of
// the bracketing nodes.
package tech

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Node identifies a process technology node by its feature size in
// nanometers (90, 65, 45, 32; intermediate values are interpolated).
type Node int

// The ITRS nodes with first-class data tables.
const (
	Node90 Node = 90
	Node65 Node = 65
	Node45 Node = 45
	Node32 Node = 32
)

// FeatureSize returns the feature size F in meters.
func (n Node) FeatureSize() float64 { return float64(n) * 1e-9 }

func (n Node) String() string { return fmt.Sprintf("%dnm", int(n)) }

// DeviceType enumerates the transistor families modeled by CACTI-D.
type DeviceType int

const (
	// HP is the ITRS High Performance device: short gate, thin oxide,
	// low Vth, low VDD, very leaky. CV/I improves ~17%/year.
	HP DeviceType = iota
	// LSTP is the ITRS Low Standby Power device: long gate, thick
	// oxide, high Vth; subthreshold leakage pinned near 10 pA/um.
	// Gate lengths lag HP by four years.
	LSTP
	// LOP is the ITRS Low Operating Power device: lowest VDD;
	// gate lengths lag HP by two years.
	LOP
	// HPLongChannel is a long-channel variant of HP trading speed for
	// roughly an order of magnitude less leakage (used for SRAM cells
	// and the peripheral circuitry of SRAM and LP-DRAM, as in the
	// 65 nm Intel Xeon L3).
	HPLongChannel
	// LPDRAMAccess is the intermediate-oxide access transistor of a
	// logic-process embedded DRAM cell.
	LPDRAMAccess
	// COMMDRAMAccess is the thick (conventional) oxide access
	// transistor of a commodity DRAM cell.
	COMMDRAMAccess
	numDeviceTypes
)

func (d DeviceType) String() string {
	switch d {
	case HP:
		return "ITRS-HP"
	case LSTP:
		return "ITRS-LSTP"
	case LOP:
		return "ITRS-LOP"
	case HPLongChannel:
		return "ITRS-HP-long-channel"
	case LPDRAMAccess:
		return "LP-DRAM-access"
	case COMMDRAMAccess:
		return "COMM-DRAM-access"
	}
	return fmt.Sprintf("DeviceType(%d)", int(d))
}

// DeviceParams holds the per-unit-width electrical parameters of a
// transistor family at one technology node. Width-dependent values are
// normalized per meter of gate width so that a device of width W has,
// for example, gate capacitance CgPerWidth*W.
type DeviceParams struct {
	Type DeviceType

	Vdd  float64 // supply voltage (V)
	Vth  float64 // threshold voltage (V)
	Lphy float64 // physical gate length (m)
	Lelc float64 // electrical gate length (m)

	// Capacitances per meter of device width.
	CgIdealPerWidth float64 // intrinsic gate capacitance (F/m)
	CFringePerWidth float64 // fringe + overlap capacitance (F/m)
	CJuncPerWidth   float64 // source/drain junction capacitance (F/m)

	// Drive and leakage currents per meter of device width.
	IonN  float64 // NMOS on-current (A/m)
	IonP  float64 // PMOS on-current (A/m)
	IoffN float64 // NMOS subthreshold leakage at Vgs=0 (A/m)
	IoffP float64 // PMOS subthreshold leakage (A/m)
	IgOn  float64 // gate leakage (A/m)

	// Effective switching resistances times width (ohm*m): the
	// on-resistance of a device of width W is R*PerWidth / W.
	RnOnPerWidth float64
	RpOnPerWidth float64

	// LongChannel reports whether this entry is a long-channel
	// variant (affects only bookkeeping/printing).
	LongChannel bool
}

// FO4 returns the fanout-of-4 inverter delay implied by the device
// parameters; a convenient sanity metric and the unit in which
// pipeline-depth limits are expressed.
func (d *DeviceParams) FO4() float64 {
	cg := d.CgIdealPerWidth + d.CFringePerWidth
	// Inverter with PMOS 2x NMOS: input cap 3*cg*W, drive R = Rn/W.
	// FO4 ~ R * (Cself + 4*Cin) with Cself ~ 3*cjunc*W.
	return 0.69 * d.RnOnPerWidth * (3*d.CJuncPerWidth + 4*3*cg) / 3
}

// WireClass enumerates interconnect layers with distinct geometries.
type WireClass int

const (
	// WireLocal is minimum-pitch metal used inside subarrays
	// (for example bitlines and local wordline straps).
	WireLocal WireClass = iota
	// WireSemiGlobal is intermediate-level metal used for routing
	// within a mat and across subbanks (2x minimum pitch).
	WireSemiGlobal
	// WireGlobal is top-level metal used by the H-tree distribution
	// networks (4x minimum pitch).
	WireGlobal
	numWireClasses
)

func (w WireClass) String() string {
	switch w {
	case WireLocal:
		return "local"
	case WireSemiGlobal:
		return "semi-global"
	case WireGlobal:
		return "global"
	}
	return fmt.Sprintf("WireClass(%d)", int(w))
}

// WireMaterial selects the conductor. Commodity DRAM processes use
// tungsten bitlines (cheap, refractory, but ~3x the resistivity of
// copper); everything else is copper.
type WireMaterial int

const (
	Copper WireMaterial = iota
	Tungsten
)

func (m WireMaterial) String() string {
	if m == Tungsten {
		return "tungsten"
	}
	return "copper"
}

// WireParams holds the RC properties of one wire class at one node.
type WireParams struct {
	Class     WireClass
	Material  WireMaterial
	Pitch     float64 // wire pitch (m)
	RPerLen   float64 // resistance per length (ohm/m)
	CPerLen   float64 // capacitance per length (F/m)
	AspectRat float64 // thickness/width
}

// RC returns the distributed RC product per length squared (s/m^2),
// the figure of merit for unrepeated wire delay (0.38*R*C*L^2).
func (w *WireParams) RC() float64 { return w.RPerLen * w.CPerLen }

// RAMType enumerates the three memory technologies CACTI-D models.
type RAMType int

const (
	SRAM RAMType = iota
	LPDRAM
	COMMDRAM
	// STTRAM is a spin-transfer-torque magnetic RAM cell (1T-1MTJ):
	// non-volatile, non-destructive current-mode read, slow and
	// energy-hungry writes, finite write endurance. Modeled by the
	// stt-ram provider.
	STTRAM
	// PCM is a phase-change memory cell: non-volatile with the same
	// asymmetric-write shape as STT-RAM but denser, slower to write
	// and with far lower endurance. Modeled by the pcm provider.
	PCM
	// GAINCELL is a logic-compatible 2T gain cell: a write transistor
	// charges a storage node that gates a separate read transistor, so
	// reads are non-destructive current-mode, but the node leaks and
	// the array needs retention-driven refresh like the paper's
	// LP-DRAM path. Modeled by the gain-cell provider.
	GAINCELL
	numRAMTypes
)

// NumRAMTypes is the number of RAMType values (for bounds checks in
// packages that receive a RAMType over the wire).
const NumRAMTypes = int(numRAMTypes)

func (r RAMType) String() string {
	switch r {
	case SRAM:
		return "SRAM"
	case LPDRAM:
		return "LP-DRAM"
	case COMMDRAM:
		return "COMM-DRAM"
	case STTRAM:
		return "STT-RAM"
	case PCM:
		return "PCM"
	case GAINCELL:
		return "GAIN-CELL"
	}
	return fmt.Sprintf("RAMType(%d)", int(r))
}

// IsDRAM reports whether the cell is a 1T1C DRAM cell (destructive
// readout, refresh, boosted wordline).
func (r RAMType) IsDRAM() bool { return r == LPDRAM || r == COMMDRAM }

// CellKind classifies the circuit behavior of a storage cell — the
// property the mat model branches on. The ITRS RAM types map onto
// KindStatic (SRAM) and Kind1T1C (LP-DRAM, COMM-DRAM); the emerging
// technology providers add the other two kinds behind the same
// interface.
type CellKind int

const (
	// KindStatic is a differential static cell (6T SRAM): voltage-mode
	// read through a two-device stack, no refresh, no wordline boost.
	KindStatic CellKind = iota
	// Kind1T1C is a destructive-read DRAM cell: charge-redistribution
	// read with a signal-margin limit, boosted wordline, full restore
	// after every read and retention-driven refresh.
	Kind1T1C
	// KindGainCell is a 2T/3T gain cell: the storage node gates a
	// separate read device, so reads are non-destructive current-mode,
	// but the node leaks and needs retention-driven refresh
	// (re-read + write back).
	KindGainCell
	// KindNVM is a resistive non-volatile cell (STT-RAM, PCM):
	// non-destructive current-mode read, no refresh, and asymmetric
	// writes — an extra per-cell switching pulse and energy, with
	// finite write endurance.
	KindNVM
)

func (k CellKind) String() string {
	switch k {
	case KindStatic:
		return "static"
	case Kind1T1C:
		return "1T1C"
	case KindGainCell:
		return "gain-cell"
	case KindNVM:
		return "nvm"
	}
	return fmt.Sprintf("CellKind(%d)", int(k))
}

// DestructiveRead reports whether a read wipes the cell and must be
// followed by a restore (only the 1T1C DRAM cell).
func (k CellKind) DestructiveRead() bool { return k == Kind1T1C }

// NeedsRefresh reports whether the cell loses state over time and the
// array must schedule retention-driven refresh.
func (k CellKind) NeedsRefresh() bool { return k == Kind1T1C || k == KindGainCell }

// CellParams describes the storage cell of one RAM type at one node.
// This is the data behind Table 1 of the paper.
type CellParams struct {
	RAM RAMType

	// Kind selects the mat model's circuit branches (read mechanism,
	// restore, refresh, write asymmetry). The zero value is
	// KindStatic.
	Kind CellKind

	AreaF2     float64 // cell area in F^2 (146 SRAM, 30 LP-DRAM, 6 COMM-DRAM)
	WidthF     float64 // cell width along the wordline, in F
	HeightF    float64 // cell height along the bitline, in F
	Vdd        float64 // cell supply / storage voltage (V)
	Vpp        float64 // boosted wordline voltage (V); 0 for SRAM
	Cs         float64 // storage capacitance (F); 0 for SRAM
	RetentionT float64 // refresh period (s); +Inf for SRAM

	AccessDevice     DeviceType // cell access transistor family
	PeripheralDevice DeviceType // peripheral/global circuitry family
	BitlineMaterial  WireMaterial

	// AccessWidth is the cell access transistor width (m) and
	// AccessIoff its leakage, both resolved against the node's
	// device table by Technology.
	AccessWidth float64

	// SenseVmin is the minimum bitline differential required by the
	// sense amplifier (V).
	SenseVmin float64

	// ReadCurrent is the absolute cell read current (A) for
	// current-mode readout cells (KindGainCell: the read transistor's
	// drive; KindNVM: the current through the storage element). Zero
	// for voltage-mode cells.
	ReadCurrent float64

	// WritePulse is the extra per-cell switching time a write needs
	// beyond the bitline swing (s) — the STT/PCM programming pulse.
	// Zero for cells with symmetric writes.
	WritePulse float64

	// EWriteCell is the per-cell switching energy of a write (J),
	// added on top of the bitline charging energy. Zero for charge-
	// based cells.
	EWriteCell float64

	// Endurance is the cell's write endurance in cycles; zero means
	// effectively unlimited.
	Endurance float64
}

// CellArea returns the cell area in m^2 for feature size f (meters).
func (c *CellParams) CellArea(f float64) float64 { return c.AreaF2 * f * f }

// CellWidth returns the physical cell width (m) at feature size f.
func (c *CellParams) CellWidth(f float64) float64 { return c.WidthF * f }

// CellHeight returns the physical cell height (m) at feature size f.
func (c *CellParams) CellHeight(f float64) float64 { return c.HeightF * f }

// Technology bundles every table CACTI-D needs at one node: the device
// families, the wire classes, and the three cell types. Construct one
// with New.
type Technology struct {
	Node    Node
	F       float64 // feature size (m)
	Devices [numDeviceTypes]DeviceParams
	Wires   [numWireClasses]WireParams
	// TungstenWires mirrors Wires with tungsten conductors
	// (used for COMM-DRAM bitlines).
	TungstenWires [numWireClasses]WireParams
	// Cells is indexed by RAMType. The ITRS slots (SRAM, LP-DRAM,
	// COMM-DRAM) are always populated; emerging-technology slots are
	// filled by their providers (an unpopulated slot has AreaF2 0).
	Cells [numRAMTypes]CellParams

	// SenseAmpDelay and SenseAmpEnergy are fixed per-sense-amp
	// figures at this node (latch-type amplifier).
	SenseAmpDelay  float64 // s
	SenseAmpEnergy float64 // J per activation
}

// Device returns the parameters of the requested device family.
func (t *Technology) Device(d DeviceType) *DeviceParams { return &t.Devices[d] }

// Wire returns copper wire parameters for the requested class.
func (t *Technology) Wire(c WireClass) *WireParams { return &t.Wires[c] }

// WireOf returns wire parameters for the requested class and material.
func (t *Technology) WireOf(c WireClass, m WireMaterial) *WireParams {
	if m == Tungsten {
		return &t.TungstenWires[c]
	}
	return &t.Wires[c]
}

// Cell returns the cell parameters for the requested RAM type.
func (t *Technology) Cell(r RAMType) *CellParams { return &t.Cells[r] }

// New returns the Technology for the requested node. Nodes between
// 32 and 90 nm that are not ITRS nodes are log-linearly interpolated
// from the bracketing tables (the paper does this implicitly for its
// 78 nm Micron validation). New panics for nodes outside [32, 90].
func New(n Node) *Technology {
	if n < Node32 || n > Node90 {
		panic(fmt.Sprintf("tech: node %d outside supported range [32,90] nm", int(n)))
	}
	if t, ok := baseTechnologies[n]; ok {
		c := *t
		return &c
	}
	c := *interpolated(n)
	return &c
}

// interpolated memoizes interpolate: building a Technology for a
// non-ITRS node walks every device, wire and cell table through
// log-space mixing, which dominates repeated solves at such nodes.
// Technology holds only scalar arrays, so the value copy New hands
// out is a full deep copy and callers can never alias the memo.
var interpMemo struct {
	sync.RWMutex
	m map[Node]*Technology // guarded by RWMutex
}

func interpolated(n Node) *Technology {
	interpMemo.RLock()
	t, ok := interpMemo.m[n]
	interpMemo.RUnlock()
	if ok {
		return t
	}
	t = interpolate(n)
	interpMemo.Lock()
	if prev, ok := interpMemo.m[n]; ok {
		t = prev // a racing builder won; keep one canonical entry
	} else {
		if interpMemo.m == nil {
			interpMemo.m = make(map[Node]*Technology)
		}
		interpMemo.m[n] = t
	}
	interpMemo.Unlock()
	return t
}

// nodesSorted returns the base nodes in descending feature size.
func nodesSorted() []Node {
	ns := make([]Node, 0, len(baseTechnologies))
	for n := range baseTechnologies {
		ns = append(ns, n)
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] > ns[j] })
	return ns
}

// bracket returns the base nodes surrounding n (lo has the larger
// feature size) and the interpolation weight in log-feature-size
// space — the shared seed of every table interpolation, including the
// provider cell tables.
func bracket(n Node) (lo, hi Node, w float64) {
	ns := nodesSorted()
	for i := 0; i+1 < len(ns); i++ {
		if ns[i] >= n && n >= ns[i+1] {
			lo, hi = ns[i], ns[i+1]
			break
		}
	}
	w = (math.Log(float64(lo)) - math.Log(float64(n))) /
		(math.Log(float64(lo)) - math.Log(float64(hi)))
	return lo, hi, w
}

// mixAt log-linearly interpolates a positive quantity with weight w,
// falling back to linear mixing when either endpoint is nonpositive.
func mixAt(w, x, y float64) float64 {
	if x <= 0 || y <= 0 {
		return x + w*(y-x)
	}
	return math.Exp(math.Log(x) + w*(math.Log(y)-math.Log(x)))
}

// mixCell interpolates every field of a cell table entry; the
// discrete fields (kind, device families, material) come from the
// larger-feature-size endpoint.
func mixCell(ca, cb CellParams, w float64) CellParams {
	mix := func(x, y float64) float64 { return mixAt(w, x, y) }
	return CellParams{
		RAM:              ca.RAM,
		Kind:             ca.Kind,
		AreaF2:           mix(ca.AreaF2, cb.AreaF2),
		WidthF:           mix(ca.WidthF, cb.WidthF),
		HeightF:          mix(ca.HeightF, cb.HeightF),
		Vdd:              mix(ca.Vdd, cb.Vdd),
		Vpp:              mix(ca.Vpp, cb.Vpp),
		Cs:               mix(ca.Cs, cb.Cs),
		RetentionT:       mixRetention(ca.RetentionT, cb.RetentionT, w),
		AccessDevice:     ca.AccessDevice,
		PeripheralDevice: ca.PeripheralDevice,
		BitlineMaterial:  ca.BitlineMaterial,
		AccessWidth:      mix(ca.AccessWidth, cb.AccessWidth),
		SenseVmin:        mix(ca.SenseVmin, cb.SenseVmin),
		ReadCurrent:      mix(ca.ReadCurrent, cb.ReadCurrent),
		WritePulse:       mix(ca.WritePulse, cb.WritePulse),
		EWriteCell:       mix(ca.EWriteCell, cb.EWriteCell),
		Endurance:        mix(ca.Endurance, cb.Endurance),
	}
}

// interpolate builds a Technology for a non-ITRS node by log-linear
// interpolation between the bracketing base nodes.
func interpolate(n Node) *Technology {
	lo, hi, w := bracket(n)
	a, b := baseTechnologies[lo], baseTechnologies[hi]
	mix := func(x, y float64) float64 { return mixAt(w, x, y) }
	t := &Technology{Node: n, F: n.FeatureSize()}
	for i := range t.Devices {
		da, db := a.Devices[i], b.Devices[i]
		t.Devices[i] = DeviceParams{
			Type:            da.Type,
			Vdd:             mix(da.Vdd, db.Vdd),
			Vth:             mix(da.Vth, db.Vth),
			Lphy:            mix(da.Lphy, db.Lphy),
			Lelc:            mix(da.Lelc, db.Lelc),
			CgIdealPerWidth: mix(da.CgIdealPerWidth, db.CgIdealPerWidth),
			CFringePerWidth: mix(da.CFringePerWidth, db.CFringePerWidth),
			CJuncPerWidth:   mix(da.CJuncPerWidth, db.CJuncPerWidth),
			IonN:            mix(da.IonN, db.IonN),
			IonP:            mix(da.IonP, db.IonP),
			IoffN:           mix(da.IoffN, db.IoffN),
			IoffP:           mix(da.IoffP, db.IoffP),
			IgOn:            mix(da.IgOn, db.IgOn),
			RnOnPerWidth:    mix(da.RnOnPerWidth, db.RnOnPerWidth),
			RpOnPerWidth:    mix(da.RpOnPerWidth, db.RpOnPerWidth),
			LongChannel:     da.LongChannel,
		}
	}
	for i := range t.Wires {
		wa, wb := a.Wires[i], b.Wires[i]
		t.Wires[i] = WireParams{
			Class:     wa.Class,
			Material:  wa.Material,
			Pitch:     mix(wa.Pitch, wb.Pitch),
			RPerLen:   mix(wa.RPerLen, wb.RPerLen),
			CPerLen:   mix(wa.CPerLen, wb.CPerLen),
			AspectRat: mix(wa.AspectRat, wb.AspectRat),
		}
		ta, tb := a.TungstenWires[i], b.TungstenWires[i]
		t.TungstenWires[i] = WireParams{
			Class:     ta.Class,
			Material:  ta.Material,
			Pitch:     mix(ta.Pitch, tb.Pitch),
			RPerLen:   mix(ta.RPerLen, tb.RPerLen),
			CPerLen:   mix(ta.CPerLen, tb.CPerLen),
			AspectRat: mix(ta.AspectRat, tb.AspectRat),
		}
	}
	for i := range t.Cells {
		ca, cb := a.Cells[i], b.Cells[i]
		if ca.AreaF2 == 0 && cb.AreaF2 == 0 {
			continue // unpopulated provider slot
		}
		t.Cells[i] = mixCell(ca, cb, w)
	}
	t.SenseAmpDelay = mix(a.SenseAmpDelay, b.SenseAmpDelay)
	t.SenseAmpEnergy = mix(a.SenseAmpEnergy, b.SenseAmpEnergy)
	return t
}

func mixRetention(x, y, w float64) float64 {
	if math.IsInf(x, 1) || math.IsInf(y, 1) {
		return math.Inf(1)
	}
	return math.Exp(math.Log(x) + w*(math.Log(y)-math.Log(x)))
}

// LeakageTempScale returns the multiplicative factor on subthreshold
// leakage at junction temperature tempK relative to the tables'
// reference temperature (358 K, the 85C worst-case corner the ITRS
// quotes leakage at). Subthreshold current grows exponentially with
// temperature; the fitted doubling interval is ~12 K, a standard
// rule of thumb for nanometer nodes.
func LeakageTempScale(tempK float64) float64 {
	const (
		refK      = 358.0
		doublingK = 12.0
	)
	return math.Pow(2, (tempK-refK)/doublingK)
}
