package core_test

import (
	"fmt"
	"log"

	"cactid/internal/core"
	"cactid/internal/tech"
)

// ExampleOptimize models the paper's 96MB COMM-DRAM L3 (config ED):
// 8 banks, 12-way, sequential access, 8Kb pages, at the 32nm node.
func ExampleOptimize() {
	sol, err := core.Optimize(core.Spec{
		Node:              tech.Node32,
		RAM:               tech.COMMDRAM,
		CapacityBytes:     96 << 20,
		BlockBytes:        64,
		Associativity:     12,
		Banks:             8,
		IsCache:           true,
		Mode:              core.Sequential,
		PageBits:          8192,
		MaxPipelineStages: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("capacity: %dMB in %d banks\n", sol.Spec.CapacityBytes>>20, sol.Spec.Banks)
	fmt.Printf("refresh needed: %v\n", sol.RefreshPower > 0)
	fmt.Printf("leakage below 0.1W: %v\n", sol.LeakagePower < 0.1)
	// Output:
	// capacity: 96MB in 8 banks
	// refresh needed: true
	// leakage below 0.1W: true
}

// ExampleExplore walks the raw design space and applies the staged
// Section 2.4 optimization manually.
func ExampleExplore() {
	spec := core.Spec{
		Node: tech.Node32, RAM: tech.SRAM,
		CapacityBytes: 1 << 20, BlockBytes: 64, Associativity: 8, IsCache: true,
	}
	sols, err := core.Explore(spec)
	if err != nil {
		log.Fatal(err)
	}
	filtered := core.Filter(spec, sols)
	fmt.Printf("raw solutions exceed filtered: %v\n", len(sols) > len(filtered))
	fmt.Printf("filtered set non-empty: %v\n", len(filtered) > 0)
	// Output:
	// raw solutions exceed filtered: true
	// filtered set non-empty: true
}
