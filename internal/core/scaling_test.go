package core

import (
	"testing"
	"testing/quick"

	"cactid/internal/tech"
)

// Cross-node integration tests: the solver's outputs must follow the
// technology-scaling trends the ITRS tables encode.

func optimizeAt(t *testing.T, node tech.Node, ram tech.RAMType, mode AccessMode, capBytes int64) *Solution {
	t.Helper()
	s, err := Optimize(Spec{
		Node: node, RAM: ram, CapacityBytes: capBytes, BlockBytes: 64,
		Associativity: 8, Banks: 1, IsCache: true, Mode: mode, MaxPipelineStages: 6,
	})
	if err != nil {
		t.Fatalf("%v %v: %v", node, ram, err)
	}
	return s
}

func TestAreaScalesWithFeatureSize(t *testing.T) {
	// Area should shrink roughly with F^2 from node to node
	// (within a generous band: periphery scales more slowly).
	nodes := []tech.Node{tech.Node90, tech.Node65, tech.Node45, tech.Node32}
	for _, ram := range []tech.RAMType{tech.SRAM, tech.LPDRAM, tech.COMMDRAM} {
		mode := Normal
		if ram.IsDRAM() {
			mode = Sequential
		}
		prev := optimizeAt(t, nodes[0], ram, mode, 4<<20)
		for _, n := range nodes[1:] {
			cur := optimizeAt(t, n, ram, mode, 4<<20)
			fPrev := float64(prevNode(n)) * 1e-9
			fCur := float64(n) * 1e-9
			ideal := (fCur * fCur) / (fPrev * fPrev)
			ratio := cur.Area / prev.Area
			if ratio > 1 {
				t.Errorf("%v %v: area grew with scaling (%.2fx)", n, ram, ratio)
			}
			if ratio < ideal*0.4 {
				t.Errorf("%v %v: area shrank implausibly fast: %.2f vs ideal %.2f", n, ram, ratio, ideal)
			}
			prev = cur
		}
	}
}

func prevNode(n tech.Node) tech.Node {
	switch n {
	case tech.Node65:
		return tech.Node90
	case tech.Node45:
		return tech.Node65
	case tech.Node32:
		return tech.Node45
	}
	return n
}

func TestEnergyImprovesWithScaling(t *testing.T) {
	// Dynamic read energy falls with VDD^2 and capacitance scaling.
	for _, ram := range []tech.RAMType{tech.SRAM, tech.COMMDRAM} {
		mode := Normal
		if ram.IsDRAM() {
			mode = Sequential
		}
		e90 := optimizeAt(t, tech.Node90, ram, mode, 4<<20).EReadPerAccess
		e32 := optimizeAt(t, tech.Node32, ram, mode, 4<<20).EReadPerAccess
		if e32 >= e90 {
			t.Errorf("%v: 32nm read energy %.3g not below 90nm %.3g", ram, e32, e90)
		}
	}
}

func TestSRAMAccessImprovesWithScaling(t *testing.T) {
	a90 := optimizeAt(t, tech.Node90, tech.SRAM, Normal, 4<<20).AccessTime
	a32 := optimizeAt(t, tech.Node32, tech.SRAM, Normal, 4<<20).AccessTime
	if a32 >= a90 {
		t.Errorf("SRAM access time did not improve: 90nm %.3g vs 32nm %.3g", a90, a32)
	}
}

func TestCOMMDRAMCycleStagnatesWithScaling(t *testing.T) {
	// Commodity DRAM row cycles barely improve across generations
	// (flat access-transistor current, conservative margins) — the
	// reason tRC has hovered around 50ns for a decade.
	c90 := optimizeAt(t, tech.Node90, tech.COMMDRAM, Sequential, 16<<20).RandomCycle
	c32 := optimizeAt(t, tech.Node32, tech.COMMDRAM, Sequential, 16<<20).RandomCycle
	ratio := c32 / c90
	if ratio < 0.4 || ratio > 1.6 {
		t.Errorf("COMM-DRAM cycle changed %.2fx across 90->32nm; expected near-flat", ratio)
	}
}

func TestInterpolatedNodesBracketed(t *testing.T) {
	// Property: for interpolated nodes, the optimized access time of
	// a fixed SRAM spec lies between the bracketing base nodes'
	// values (with slack for discrete organization choices).
	a65 := optimizeAt(t, tech.Node65, tech.SRAM, Normal, 1<<20).AccessTime
	a90 := optimizeAt(t, tech.Node90, tech.SRAM, Normal, 1<<20).AccessTime
	f := func(raw uint8) bool {
		n := tech.Node(66 + int(raw)%24) // 66..89
		a := optimizeAt(t, n, tech.SRAM, Normal, 1<<20).AccessTime
		lo, hi := a65*0.85, a90*1.15
		return a >= lo && a <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}

func TestLeakageGrowsWithSRAMCapacitySuperlinearSanity(t *testing.T) {
	// Leakage should scale close to linearly with capacity.
	s1 := optimizeAt(t, tech.Node32, tech.SRAM, Normal, 2<<20)
	s4 := optimizeAt(t, tech.Node32, tech.SRAM, Normal, 8<<20)
	ratio := s4.LeakagePower / s1.LeakagePower
	if ratio < 3 || ratio > 6 {
		t.Errorf("4x capacity changed leakage %.2fx, want ~4x", ratio)
	}
}
