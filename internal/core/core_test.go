package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"cactid/internal/array"
	"cactid/internal/tech"
)

func sramCache(capBytes int64, assoc, banks int) Spec {
	return Spec{
		Node: tech.Node32, RAM: tech.SRAM,
		CapacityBytes: capBytes, BlockBytes: 64, Associativity: assoc, Banks: banks,
		IsCache: true, Mode: Normal, MaxPipelineStages: 6,
	}
}

func TestOptimizeBasicCaches(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec Spec
	}{
		{"L1-32KB", sramCache(32<<10, 8, 1)},
		{"L2-1MB", sramCache(1<<20, 8, 1)},
		{"plain-64KB", Spec{Node: tech.Node32, RAM: tech.SRAM, CapacityBytes: 64 << 10, BlockBytes: 32}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Optimize(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			if s.AccessTime <= 0 || s.Area <= 0 || s.EReadPerAccess <= 0 || s.LeakagePower <= 0 {
				t.Fatalf("invalid solution %+v", s)
			}
			if s.AreaEff <= 0 || s.AreaEff >= 1 {
				t.Fatalf("area efficiency %g", s.AreaEff)
			}
			if tc.spec.IsCache && s.Tag == nil {
				t.Fatal("cache solution must carry a tag array")
			}
			if !tc.spec.IsCache && s.Tag != nil {
				t.Fatal("plain memory must not carry a tag array")
			}
		})
	}
}

func TestCapacityMonotonicity(t *testing.T) {
	small, err1 := Optimize(sramCache(256<<10, 8, 1))
	big, err2 := Optimize(sramCache(4<<20, 8, 1))
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if big.AccessTime <= small.AccessTime {
		t.Error("16x capacity should be slower")
	}
	if big.Area <= small.Area || big.LeakagePower <= small.LeakagePower {
		t.Error("16x capacity should be larger and leakier")
	}
}

func TestSequentialSavesEnergyCostsLatency(t *testing.T) {
	base := sramCache(4<<20, 8, 1)
	seq := base
	seq.Mode = Sequential
	n, err1 := Optimize(base)
	s, err2 := Optimize(seq)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if s.EReadPerAccess >= n.EReadPerAccess {
		t.Errorf("sequential read energy %g not below normal %g", s.EReadPerAccess, n.EReadPerAccess)
	}
	if s.AccessTime <= n.AccessTime {
		t.Errorf("sequential access %g should exceed normal %g (tag first)", s.AccessTime, n.AccessTime)
	}
}

func TestTechnologyOrderingAtEqualCapacity(t *testing.T) {
	// 64MB L3 bank in the three technologies: COMM-DRAM densest,
	// SRAM fastest and leakiest — Table 1/Table 3's central tradeoff.
	mk := func(r tech.RAMType, mode AccessMode) *Solution {
		s, err := Optimize(Spec{
			Node: tech.Node32, RAM: r, CapacityBytes: 64 << 20, BlockBytes: 64,
			Associativity: 8, Banks: 8, IsCache: true, Mode: mode, MaxPipelineStages: 6,
		})
		if err != nil {
			t.Fatal(r, err)
		}
		return s
	}
	sr := mk(tech.SRAM, Normal)
	lp := mk(tech.LPDRAM, Sequential)
	cm := mk(tech.COMMDRAM, Sequential)
	if !(cm.Area < lp.Area && lp.Area < sr.Area) {
		t.Errorf("density ordering violated: SRAM %.1f, LP %.1f, CM %.1f mm2",
			sr.Area*1e6, lp.Area*1e6, cm.Area*1e6)
	}
	if !(sr.AccessTime < lp.AccessTime && lp.AccessTime < cm.AccessTime) {
		t.Errorf("speed ordering violated: SRAM %.2f, LP %.2f, CM %.2f ns",
			sr.AccessTime*1e9, lp.AccessTime*1e9, cm.AccessTime*1e9)
	}
	if !(sr.LeakagePower > lp.LeakagePower && lp.LeakagePower > cm.LeakagePower) {
		t.Errorf("leakage ordering violated: SRAM %.2g, LP %.2g, CM %.2g W",
			sr.LeakagePower, lp.LeakagePower, cm.LeakagePower)
	}
	if cm.RefreshPower <= 0 || lp.RefreshPower <= 0 || sr.RefreshPower != 0 {
		t.Error("refresh power signs wrong")
	}
	if lp.RefreshPower <= cm.RefreshPower {
		t.Error("LP-DRAM (0.12ms retention) must out-refresh COMM-DRAM (64ms)")
	}
}

func TestFilterStages(t *testing.T) {
	spec := sramCache(4<<20, 8, 1)
	sols, err := Explore(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) < 20 {
		t.Fatalf("only %d raw solutions", len(sols))
	}
	filtered := Filter(spec, sols)
	if len(filtered) == 0 || len(filtered) >= len(sols) {
		t.Fatalf("filter kept %d of %d", len(filtered), len(sols))
	}
	// Area constraint: every survivor within (1+0.4)x of best area.
	minArea := math.Inf(1)
	for _, s := range sols {
		minArea = math.Min(minArea, s.Area)
	}
	for _, s := range filtered {
		if s.Area > minArea*1.4001 {
			t.Errorf("survivor violates max area constraint: %g > %g", s.Area, minArea*1.4)
		}
	}
}

func TestTightAreaConstraintForcesDenserSolutions(t *testing.T) {
	loose := sramCache(8<<20, 8, 1)
	loose.MaxAreaConstraint = 0.8
	tight := sramCache(8<<20, 8, 1)
	tight.MaxAreaConstraint = 0.02
	l, err1 := Optimize(loose)
	ti, err2 := Optimize(tight)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if ti.Area > l.Area {
		t.Errorf("tight area constraint produced larger solution: %g > %g", ti.Area, l.Area)
	}
	if ti.AreaEff < l.AreaEff {
		t.Errorf("tight area constraint should raise efficiency: %g < %g", ti.AreaEff, l.AreaEff)
	}
}

func TestWeightsSteerObjective(t *testing.T) {
	base := Spec{
		Node: tech.Node32, RAM: tech.LPDRAM, CapacityBytes: 16 << 20, BlockBytes: 64,
		Associativity: 8, Banks: 1, IsCache: true, Mode: Sequential,
		MaxPipelineStages: 6, MaxAreaConstraint: 0.8, MaxAcctimeConstraint: 0.8,
	}
	eSpec := base
	eSpec.Weights = &Weights{DynamicEnergy: 100, LeakagePower: 0.01, RandomCycle: 0.01, InterleaveCycle: 0.01}
	cSpec := base
	cSpec.Weights = &Weights{DynamicEnergy: 0.01, LeakagePower: 0.01, RandomCycle: 100, InterleaveCycle: 0.01}
	e, err1 := Optimize(eSpec)
	c, err2 := Optimize(cSpec)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if e.EReadPerAccess > c.EReadPerAccess {
		t.Errorf("energy-weighted solution reads at %g > cycle-weighted %g", e.EReadPerAccess, c.EReadPerAccess)
	}
	if c.RandomCycle > e.RandomCycle {
		t.Errorf("cycle-weighted solution cycles at %g > energy-weighted %g", c.RandomCycle, e.RandomCycle)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{},
		{RAM: tech.SRAM, CapacityBytes: -1, BlockBytes: 64},
		{RAM: tech.SRAM, CapacityBytes: 1 << 20, BlockBytes: 0},
		{RAM: tech.SRAM, CapacityBytes: 1000, BlockBytes: 64, Banks: 3},
	}
	for i, s := range bad {
		if _, err := Optimize(s); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestErrNoSolution(t *testing.T) {
	// A DRAM spec whose page constraint cannot be met.
	_, err := Optimize(Spec{
		Node: tech.Node32, RAM: tech.COMMDRAM, CapacityBytes: 1 << 20,
		BlockBytes: 64, PageBits: 7, // not expressible as subbank width
	})
	if !errors.Is(err, ErrNoSolution) {
		t.Fatalf("err = %v, want ErrNoSolution", err)
	}
}

func TestTagBits(t *testing.T) {
	s := sramCache(1<<20, 8, 1)
	if err := s.normalize(); err != nil {
		t.Fatal(err)
	}
	// 1MB, 64B lines, 8-way: 2048 sets -> 11 index + 6 offset bits;
	// 40-bit PA -> 23 tag + 3 state = 26.
	if got := s.TagBits(); got != 26 {
		t.Errorf("TagBits = %d, want 26", got)
	}
}

func TestDRAMCacheTagsInDRAM(t *testing.T) {
	s := Spec{Node: tech.Node32, RAM: tech.COMMDRAM, CapacityBytes: 96 << 20,
		BlockBytes: 64, Associativity: 12, Banks: 8, IsCache: true, Mode: Sequential}
	if err := s.normalize(); err != nil {
		t.Fatal(err)
	}
	if got := s.tagRAM(); got != tech.COMMDRAM {
		t.Errorf("DRAM cache tags default to %v, want COMM-DRAM", got)
	}
	sr := tech.SRAM
	s.TagRAM = &sr
	if got := s.tagRAM(); got != tech.SRAM {
		t.Error("explicit TagRAM override ignored")
	}
	s2 := sramCache(1<<20, 8, 1)
	if err := s2.normalize(); err != nil {
		t.Fatal(err)
	}
	if got := s2.tagRAM(); got != tech.SRAM {
		t.Errorf("SRAM cache tags = %v, want SRAM", got)
	}
}

func TestBanksScaleTotalsNotLatency(t *testing.T) {
	one, err1 := Optimize(sramCache(4<<20, 8, 1))
	eight, err2 := Optimize(sramCache(32<<20, 8, 8)) // same 4MB per bank
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	// Per-bank access time should be in the same ballpark.
	if r := eight.AccessTime / one.AccessTime; r > 1.5 || r < 0.67 {
		t.Errorf("per-bank access time changed %gx with bank count", r)
	}
	// Totals scale with banks.
	if r := eight.Area / one.Area; r < 6 || r > 10 {
		t.Errorf("8-bank area ratio %g, want ~8", r)
	}
	if r := eight.LeakagePower / one.LeakagePower; r < 6 || r > 10 {
		t.Errorf("8-bank leakage ratio %g, want ~8", r)
	}
}

func TestSolutionString(t *testing.T) {
	s, err := Optimize(sramCache(1<<20, 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.String()) < 40 {
		t.Errorf("String too short: %q", s.String())
	}
}

func TestExploreSortedByAccessTime(t *testing.T) {
	sols, err := Explore(sramCache(1<<20, 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sols); i++ {
		if sols[i].AccessTime < sols[i-1].AccessTime {
			t.Fatal("Explore result not sorted by access time")
		}
	}
}

func TestAccessModeString(t *testing.T) {
	if Normal.String() != "normal" || Sequential.String() != "sequential" {
		t.Error("AccessMode strings wrong")
	}
}

func TestReport(t *testing.T) {
	sol, err := Optimize(Spec{
		Node: tech.Node32, RAM: tech.LPDRAM, CapacityBytes: 8 << 20,
		BlockBytes: 64, Associativity: 8, Banks: 2, IsCache: true,
		Mode: Sequential, PageBits: 8192, MaxPipelineStages: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := Report(sol)
	for _, want := range []string{
		"CACTI-D solution report", "wordline", "bitline", "sense amplifier",
		"restore/writeback", "interleave cycle", "refresh", "Tag array",
		"access time", "leakage",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// SRAM plain memory: no restore, no refresh, no tag.
	plain, err := Optimize(Spec{Node: tech.Node32, RAM: tech.SRAM, CapacityBytes: 1 << 20, BlockBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	prep := Report(plain)
	if strings.Contains(prep, "restore") || strings.Contains(prep, "refresh") || strings.Contains(prep, "Tag array") {
		t.Error("plain SRAM report has DRAM/tag sections")
	}
}

func TestFastModeTradesEnergyForLatency(t *testing.T) {
	base := sramCache(4<<20, 8, 1)
	fast := base
	fast.Mode = Fast
	n, err1 := Optimize(base)
	f, err2 := Optimize(fast)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if f.AccessTime > n.AccessTime {
		t.Errorf("fast mode access %g should not exceed normal %g", f.AccessTime, n.AccessTime)
	}
	if f.EReadPerAccess <= n.EReadPerAccess {
		t.Errorf("fast mode energy %g should exceed normal %g (all ways on the H-tree)",
			f.EReadPerAccess, n.EReadPerAccess)
	}
	if Fast.String() != "fast" {
		t.Error("Fast mode string wrong")
	}
}

func TestModeEnergyOrdering(t *testing.T) {
	// Sequential < Normal < Fast in read energy; Fast <= Normal <=
	// Sequential in access time: the classic CACTI mode triangle.
	spec := sramCache(2<<20, 8, 1)
	energies := map[AccessMode]float64{}
	times := map[AccessMode]float64{}
	for _, m := range []AccessMode{Sequential, Normal, Fast} {
		s := spec
		s.Mode = m
		sol, err := Optimize(s)
		if err != nil {
			t.Fatal(m, err)
		}
		energies[m] = sol.EReadPerAccess
		times[m] = sol.AccessTime
	}
	if !(energies[Sequential] < energies[Normal] && energies[Normal] < energies[Fast]) {
		t.Errorf("energy ordering violated: seq %g, normal %g, fast %g",
			energies[Sequential], energies[Normal], energies[Fast])
	}
	if !(times[Fast] <= times[Normal] && times[Normal] <= times[Sequential]) {
		t.Errorf("latency ordering violated: fast %g, normal %g, seq %g",
			times[Fast], times[Normal], times[Sequential])
	}
}

func TestBankRouting(t *testing.T) {
	base := sramCache(32<<20, 8, 8)
	routed := base
	routed.IncludeBankRouting = true
	b, err1 := Optimize(base)
	r, err2 := Optimize(routed)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r.AccessTime <= b.AccessTime {
		t.Errorf("bank routing should add latency: %g vs %g", r.AccessTime, b.AccessTime)
	}
	if r.EReadPerAccess <= b.EReadPerAccess {
		t.Error("bank routing should add energy")
	}
	if r.LeakagePower <= b.LeakagePower {
		t.Error("bank routing repeaters should leak")
	}
	// Single bank: flag is a no-op.
	one := sramCache(4<<20, 8, 1)
	oneRouted := one
	oneRouted.IncludeBankRouting = true
	a, err1 := Optimize(one)
	c, err2 := Optimize(oneRouted)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if a.AccessTime != c.AccessTime {
		t.Error("bank routing must be a no-op for one bank")
	}
}

func TestMultiportedSRAM(t *testing.T) {
	base := Spec{Node: tech.Node32, RAM: tech.SRAM, CapacityBytes: 256 << 10, BlockBytes: 8}
	dual := base
	dual.Ports = 2
	b, err1 := Optimize(base)
	d, err2 := Optimize(dual)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if d.Area <= b.Area {
		t.Errorf("dual-port area %g not above single-port %g", d.Area, b.Area)
	}
	if d.LeakagePower <= b.LeakagePower {
		t.Error("extra port transistors should leak")
	}
	// Multiported DRAM is rejected.
	badPorts := Spec{Node: tech.Node32, RAM: tech.LPDRAM, CapacityBytes: 1 << 20, BlockBytes: 64, Ports: 2}
	if _, err := Optimize(badPorts); err == nil {
		t.Error("multiported DRAM should be rejected")
	}
}

func TestECCOverhead(t *testing.T) {
	base := sramCache(4<<20, 8, 1)
	ecc := base
	ecc.ECC = true
	b, err1 := Optimize(base)
	e, err2 := Optimize(ecc)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	// SECDED adds 12.5% bits: area and read energy grow, bounded by
	// ~25% (organization choices add slack).
	if e.Area <= b.Area || e.Area > b.Area*1.3 {
		t.Errorf("ECC area ratio %.3f out of (1, 1.3]", e.Area/b.Area)
	}
	if e.EReadPerAccess <= b.EReadPerAccess {
		t.Error("ECC should add read energy")
	}
}

func TestExploreParallelByteIdentical(t *testing.T) {
	// The acceptance bar for the parallel hot path: the JSON encoding
	// of the full Explore solution slice is byte-identical between a
	// single-worker and a multi-worker enumeration, for both an SRAM
	// cache and a DRAM cache.
	specs := map[string]Spec{
		"sram-cache": sramCache(1<<20, 8, 1),
		"dram-cache": {
			Node: tech.Node45, RAM: tech.COMMDRAM,
			CapacityBytes: 16 << 20, BlockBytes: 64, Associativity: 8, Banks: 1,
			IsCache: true, Mode: Sequential, PageBits: 8192, MaxPipelineStages: 6,
		},
	}
	// stripTech clones the slice with the (input-only, run-invariant)
	// Technology tables nil'd out: they hold an infinite SRAM
	// retention time, which encoding/json rejects.
	stripTech := func(sols []*Solution) []*Solution {
		strip := func(b *array.Bank) *array.Bank {
			if b == nil {
				return nil
			}
			nb := *b
			nb.Spec.Tech = nil
			if nb.Mat != nil {
				m := *nb.Mat
				m.Tech = nil
				nb.Mat = &m
			}
			return &nb
		}
		out := make([]*Solution, len(sols))
		for i, s := range sols {
			c := *s
			c.Data, c.Tag = strip(c.Data), strip(c.Tag)
			out[i] = &c
		}
		return out
	}
	for name, spec := range specs {
		var stSerial SolveStats
		serial, err := ExploreContext(context.Background(), spec, &Options{Workers: 1, Stats: &stSerial})
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		serialJSON, err := json.Marshal(stripTech(serial))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{4, 16} {
			var st SolveStats
			par, err := ExploreContext(context.Background(), spec, &Options{Workers: workers, Stats: &st})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if !reflect.DeepEqual(par, serial) {
				t.Fatalf("%s: workers=%d solutions differ structurally from serial", name, workers)
			}
			parJSON, err := json.Marshal(stripTech(par))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(serialJSON, parJSON) {
				t.Fatalf("%s: workers=%d Explore JSON differs from serial (%d vs %d solutions)",
					name, workers, len(par), len(serial))
			}
			if st != stSerial {
				t.Fatalf("%s workers=%d stats %+v != serial %+v", name, workers, st, stSerial)
			}
		}
	}
}

func TestOptimizeContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := OptimizeContext(ctx, sramCache(1<<20, 8, 1), nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSolveStatsAccounting(t *testing.T) {
	var st SolveStats
	if _, err := OptimizeContext(context.Background(), sramCache(1<<20, 8, 1), &Options{Stats: &st}); err != nil {
		t.Fatal(err)
	}
	// A cache solve enumerates both the data and the tag array.
	if st.Data.Considered == 0 || st.Tag.Considered == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
	total := st.Total()
	if total.Considered != st.Data.Considered+st.Tag.Considered {
		t.Fatalf("Total does not sum arrays: %+v", total)
	}
	if total.Considered != total.PrunedTotal()+total.Built+total.BuildErrors {
		t.Fatalf("accounting invariant broken: %+v", total)
	}
}
