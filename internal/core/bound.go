// Branch-and-bound explore: derive the staged filter's own pruning
// thresholds exactly, then enumerate with bound pruning so that most
// grid points are discarded before circuit modeling.
//
// The staged filter (Filter, Section 2.4) keeps exactly the solutions
// within MaxAreaConstraint of the minimum area and, among those,
// within MaxAcctimeConstraint of the minimum access time; stage 3
// only sorts. Both stage minima are recovered exactly — bitwise, not
// approximately — before the enumeration runs:
//
//   - array.Prescanned.MinArea walks shards in ascending lower-bound
//     order, evaluating the exact bank metrics (array's pointExact,
//     finishInto's own floats) lazily, and returns the exact minimum
//     bank area of the feasible set.
//
//   - array.Prescanned.MinAccessWithin does the same for access time,
//     restricted to the points whose assembled solution area lies in
//     the stage-1 window — membership is decided with assemble's own
//     arithmetic, so it matches Filter's stage-1 cut bitwise.
//
// The bank-unit minima translate to solution units through assemble's
// monotone (order- and equality-preserving) compositions, so the
// derived thresholds equal the minima Filter recomputes. A point is
// then pruned only when its metrics provably sit outside both stages'
// reach:
//
//   - Area rule: area lower bound above minSolArea*(1+c1), translated
//     to bank units — the point fails stage 1 and, being strictly
//     above the minimum, cannot move the recomputed stage-1 minimum.
//
//   - Access rule: access lower bound above minSolAcc*(1+c2) — the
//     point fails stage 2 — unless its area bound is at or below the
//     exact minimum area (the guard), which keeps the stage-1 argmin
//     (and its ties) alive so the recomputed minima stay exact.
//
// Every surviving stage-2 member passes both rules, so Filter over
// the pruned set returns value-identical solutions in the identical
// order (its sort is a total order). Weighted-objective pruning is
// deliberately absent: stage 3 never discards, so any objective-based
// prune would change the returned list. The full derivation,
// including why the translated thresholds are nudged up by 1e-9 to
// absorb float rounding (the exact guard and the exact tag threshold
// need no nudge: both sides of those comparisons are the same
// floats), is DESIGN.md §1.2e.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"cactid/internal/array"
	"cactid/internal/tech"
)

// safeUp nudges a translated threshold up by a hair (1e-9 relative —
// ~10^7 ulps, far beyond any rounding drift in the translation
// arithmetic, far below the constraint windows themselves) so that
// float rounding can never turn "provably outside the filter window"
// into "pruned a survivor". Overshooting only weakens pruning.
func safeUp(x float64) float64 { return x + math.Abs(x)*1e-9 }

// boundable reports whether the bounded explore path's byte-identity
// proof applies to spec: the staged constraints must be positive
// (normalize guarantees that unless the caller forced them negative)
// and the solution area must be affine in the data-bank area — bank
// routing adds a sqrt(area) wire term that breaks the threshold
// translation, so multi-bank routed specs take the unbounded path.
func (s *Spec) boundable() bool {
	return s.MaxAreaConstraint > 0 && s.MaxAcctimeConstraint > 0 &&
		!(s.IncludeBankRouting && s.Banks > 1)
}

// exploreBounded runs the branch-and-bound explore. ok reports
// whether the bounded path applied; on !ok the caller falls back to
// ExploreContext (empty feasible set or an unsupported spec shape —
// both rare, neither an error).
func exploreBounded(ctx context.Context, spec Spec, opts *Options) (sols []*Solution, ok bool, err error) {
	if err := spec.normalize(); err != nil {
		return nil, false, err
	}
	if !spec.boundable() {
		return nil, false, nil
	}
	t, err := tech.TechnologyOf(spec.Technology, spec.Node)
	if err != nil {
		return nil, false, err
	}

	var tag *array.Bank
	if spec.IsCache {
		tag, err = optimizeTagBounded(ctx, spec, t, opts)
		if err != nil {
			return nil, false, fmt.Errorf("core: tag array: %w", err)
		}
	}
	tagArea, tagAcc := 0.0, 0.0
	if tag != nil {
		tagArea, tagAcc = tag.Area, tag.AccessTime
	}

	dataSpec := dataArraySpec(spec, t)
	pre, err := array.Prescan(dataSpec)
	if err != nil || len(pre.Points) == 0 {
		return nil, false, nil
	}
	nb := float64(spec.Banks)
	c1, c2 := spec.MaxAreaConstraint, spec.MaxAcctimeConstraint

	// Stage-1 threshold and guard: the walk recovers the exact minimum
	// bank area, which composes (assemble's float ops) to the exact
	// minimum solution area Filter will compute. The guard is the
	// minimum itself — enumeration compares the identical floats, so
	// the argmin and its exact ties survive with no nudge.
	aMin, okArea := pre.MinArea()
	if !okArea {
		return nil, false, nil
	}
	minSolArea := nb * (aMin + tagArea)
	window := minSolArea * (1 + c1) // Filter's stage-1 cut, bitwise
	lim := array.Limits{
		MaxAreaLB: safeUp(window/nb - tagArea),
		MaxAccLB:  math.Inf(1),
		AreaGuard: aMin,
	}

	// Stage-2 threshold: the exact minimum access time among stage-1
	// members, composed to solution units per the access mode, then
	// translated back to a data-bank cut. The compositions are
	// monotone, so the bank-unit argmin is the solution-unit argmin.
	if accMin, okAcc := pre.MinAccessWithin(nb, tagArea, window); okAcc {
		wayMux := 0.0
		if spec.IsCache && spec.Mode == Normal && spec.Associativity > 1 {
			wayMux = 30e-12 // late way-select mux after tag compare
		}
		var minSolAcc float64
		switch {
		case !spec.IsCache:
			minSolAcc = accMin
		case spec.Mode == Sequential:
			minSolAcc = tagAcc + accMin
		case spec.Mode == Fast:
			minSolAcc = math.Max(tagAcc, accMin)
		default: // Normal
			minSolAcc = math.Max(tagAcc+wayMux, accMin) + wayMux
		}
		t2 := minSolAcc * (1 + c2)
		switch {
		case !spec.IsCache:
			lim.MaxAccLB = safeUp(t2)
		case spec.Mode == Sequential:
			lim.MaxAccLB = safeUp(t2 - tagAcc)
		case spec.Mode == Fast:
			lim.MaxAccLB = safeUp(t2)
		default: // Normal
			lim.MaxAccLB = safeUp(t2 - wayMux)
		}
	}

	banks, counters, err := pre.Enumerate(ctx, opts.workers(), lim)
	if opts != nil && opts.Stats != nil {
		opts.Stats.Data = counters
	}
	if err != nil {
		return nil, false, err
	}
	if len(banks) == 0 {
		// The exact area argmin provably survives its own thresholds,
		// so this cannot happen; stay safe and fall back.
		return nil, false, nil
	}
	backing := make([]Solution, len(banks))
	sols = make([]*Solution, len(banks))
	for i, b := range banks {
		assemble(spec, b, tag, &backing[i])
		sols[i] = &backing[i]
	}
	// No access-time pre-sort here: Filter's final comparison is a
	// total order, so its output sequence is independent of input
	// order (ExploreContext keeps its sorted contract for API users).
	return sols, true, nil
}

// probeTries bounds how many candidate organizations the tag probe
// may build before the solver falls back to the unbounded path.
const probeTries = 8

// buildProbe picks and builds probe organizations from a prescan, in
// a deterministic order (sorted by the given key, grid order breaking
// ties), returning the first that builds plus its bank.
func buildProbe(pre *array.Prescanned, key func(array.PrescanPoint) float64) (*array.Bank, bool) {
	pts := pre.Points
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return key(pts[idx[a]]) < key(pts[idx[b]]) })
	tries := probeTries
	if tries > len(idx) {
		tries = len(idx)
	}
	for _, i := range idx[:tries] {
		if b, err := pre.Build(pts[i].Org); err == nil {
			return b, true
		}
	}
	return nil, false
}

// optimizeTagBounded is optimizeTag with access-time bound pruning:
// the tag array is chosen purely by minimum access time (organization
// order breaking ties), so any point whose exact access time exceeds
// a built probe's can never win — one cheap probe build, not an exact
// walk, keeps the tag path nearly free (the enumeration's exact point
// tier discards everything slower than the probe before it is built).
// Falls back to the full optimizeTag when no probe builds.
func optimizeTagBounded(ctx context.Context, spec Spec, t *tech.Technology, opts *Options) (*array.Bank, error) {
	tagSpec := tagArraySpec(spec, t)
	pre, err := array.Prescan(tagSpec)
	if err != nil || len(pre.Points) == 0 {
		return optimizeTag(ctx, spec, t, opts)
	}
	probe, built := buildProbe(pre, func(p array.PrescanPoint) float64 { return p.AccLB })
	if !built {
		return optimizeTag(ctx, spec, t, opts)
	}
	lim := array.Limits{
		MaxAreaLB: math.Inf(1),
		MaxAccLB:  probe.AccessTime, // exact, untranslated: no nudge needed
		AreaGuard: math.Inf(-1),     // no stage-1 minimum to protect
	}
	banks, counters, err := pre.Enumerate(ctx, opts.workers(), lim)
	if opts != nil && opts.Stats != nil {
		opts.Stats.Tag = counters
	}
	if err != nil {
		return nil, err
	}
	if len(banks) == 0 {
		return nil, ErrNoSolution
	}
	sort.Slice(banks, func(i, j int) bool {
		if banks[i].AccessTime != banks[j].AccessTime {
			return banks[i].AccessTime < banks[j].AccessTime
		}
		return orgLess(banks[i].Org, banks[j].Org)
	})
	return banks[0], nil
}
