package core

import (
	"testing"
	"testing/quick"

	"cactid/internal/tech"
)

func TestFingerprintStableAcrossDefaults(t *testing.T) {
	// Each pair must fingerprint identically: the second spec spells
	// out a field the first leaves at its defaulted zero value. This
	// is the latent-inequality fix: Spec{} == comparison would call
	// these different.
	w := DefaultWeights
	sr := tech.SRAM
	cm := tech.COMMDRAM
	pairs := []struct {
		name string
		a, b Spec
	}{
		{"banks", sramCache(1<<20, 8, 0), sramCache(1<<20, 8, 1)},
		{"weights",
			sramCache(1<<20, 8, 1),
			func() Spec { s := sramCache(1<<20, 8, 1); s.Weights = &w; return s }()},
		{"constraints",
			sramCache(1<<20, 8, 1),
			func() Spec {
				s := sramCache(1<<20, 8, 1)
				s.MaxAreaConstraint, s.MaxAcctimeConstraint = 0.4, 0.1
				return s
			}()},
		{"node",
			Spec{RAM: tech.SRAM, CapacityBytes: 1 << 20, BlockBytes: 64},
			Spec{Node: tech.Node32, RAM: tech.SRAM, CapacityBytes: 1 << 20, BlockBytes: 64}},
		{"ports",
			Spec{Node: tech.Node32, RAM: tech.SRAM, CapacityBytes: 1 << 20, BlockBytes: 64},
			Spec{Node: tech.Node32, RAM: tech.SRAM, CapacityBytes: 1 << 20, BlockBytes: 64, Ports: 1}},
		{"pa-bits",
			sramCache(1<<20, 8, 1),
			func() Spec { s := sramCache(1<<20, 8, 1); s.PhysicalAddressBits = 40; return s }()},
		{"assoc",
			Spec{Node: tech.Node32, RAM: tech.SRAM, CapacityBytes: 1 << 20, BlockBytes: 64},
			Spec{Node: tech.Node32, RAM: tech.SRAM, CapacityBytes: 1 << 20, BlockBytes: 64, Associativity: 1}},
		{"tag-ram-sram-cache",
			sramCache(1<<20, 8, 1),
			func() Spec { s := sramCache(1<<20, 8, 1); s.TagRAM = &sr; return s }()},
		{"tag-ram-dram-cache",
			Spec{Node: tech.Node32, RAM: tech.COMMDRAM, CapacityBytes: 96 << 20, BlockBytes: 64,
				Associativity: 12, Banks: 8, IsCache: true, Mode: Sequential},
			Spec{Node: tech.Node32, RAM: tech.COMMDRAM, CapacityBytes: 96 << 20, BlockBytes: 64,
				Associativity: 12, Banks: 8, IsCache: true, Mode: Sequential, TagRAM: &cm}},
		{"tag-ram-plain-memory",
			Spec{Node: tech.Node32, RAM: tech.SRAM, CapacityBytes: 1 << 20, BlockBytes: 64},
			func() Spec {
				s := Spec{Node: tech.Node32, RAM: tech.SRAM, CapacityBytes: 1 << 20, BlockBytes: 64}
				s.TagRAM = &cm // no tag array exists: must not matter
				return s
			}()},
	}
	for _, p := range pairs {
		fa, err1 := p.a.Fingerprint()
		fb, err2 := p.b.Fingerprint()
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v / %v", p.name, err1, err2)
		}
		if fa != fb {
			t.Errorf("%s: fingerprints differ: %s vs %s", p.name, fa, fb)
		}
	}
}

func TestFingerprintDistinguishesSolverInputs(t *testing.T) {
	base := sramCache(1<<20, 8, 1)
	mutants := map[string]func(*Spec){
		"capacity": func(s *Spec) { s.CapacityBytes *= 2 },
		"block":    func(s *Spec) { s.BlockBytes = 32 },
		"assoc":    func(s *Spec) { s.Associativity = 4 },
		"banks":    func(s *Spec) { s.Banks = 2 },
		"node":     func(s *Spec) { s.Node = tech.Node45 },
		"ram":      func(s *Spec) { s.RAM = tech.LPDRAM },
		"mode":     func(s *Spec) { s.Mode = Sequential },
		"cache":    func(s *Spec) { s.IsCache = false },
		"page":     func(s *Spec) { s.PageBits = 8192 },
		"pipe":     func(s *Spec) { s.MaxPipelineStages = 4 },
		"area":     func(s *Spec) { s.MaxAreaConstraint = 0.5 },
		"acctime":  func(s *Spec) { s.MaxAcctimeConstraint = 0.2 },
		"slack":    func(s *Spec) { s.MaxRepeaterSlack = 0.3 },
		"weights":  func(s *Spec) { s.Weights = &Weights{2, 1, 1, 1} },
		"sleep":    func(s *Spec) { s.SleepTransistors = true },
		"ports":    func(s *Spec) { s.Ports = 2 },
		"ecc":      func(s *Spec) { s.ECC = true },
		"routing":  func(s *Spec) { s.IncludeBankRouting = true },
		"pa":       func(s *Spec) { s.PhysicalAddressBits = 48 },
		"tagram":   func(s *Spec) { r := tech.LPDRAM; s.TagRAM = &r },
	}
	fp0, err := base.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	for name, mut := range mutants {
		s := base
		mut(&s)
		fp, err := s.Fingerprint()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fp == fp0 {
			t.Errorf("%s: mutated spec fingerprints like the base", name)
		}
	}
}

func TestFingerprintDoesNotMutateSpec(t *testing.T) {
	s := Spec{RAM: tech.SRAM, CapacityBytes: 1 << 20, BlockBytes: 64}
	if _, err := s.Fingerprint(); err != nil {
		t.Fatal(err)
	}
	if s.Banks != 0 || s.Weights != nil || s.Node != 0 || s.TagRAM != nil {
		t.Errorf("Fingerprint mutated its receiver: %+v", s)
	}
}

func TestFingerprintRejectsInvalidSpecs(t *testing.T) {
	for i, bad := range []Spec{
		{},
		{RAM: tech.SRAM, CapacityBytes: -4, BlockBytes: 64},
		{RAM: tech.SRAM, CapacityBytes: 1000, BlockBytes: 64, Banks: 3},
	} {
		if _, err := bad.Fingerprint(); err == nil {
			t.Errorf("case %d: invalid spec fingerprinted without error", i)
		}
	}
}

func TestFingerprintPropertyIdempotent(t *testing.T) {
	// Canonicalisation is a fixed point: fingerprinting a canonical
	// spec reproduces the original fingerprint for arbitrary valid
	// shapes drawn from a small generator.
	f := func(capKB uint8, assocExp uint8, dram bool, seq bool) bool {
		capBytes := (int64(capKB%64) + 1) * 64 << 10
		assoc := 1 << (assocExp % 4)
		ram := tech.SRAM
		mode := Normal
		if dram {
			ram = tech.COMMDRAM
		}
		if seq {
			mode = Sequential
		}
		s := Spec{RAM: ram, CapacityBytes: capBytes, BlockBytes: 64,
			Associativity: assoc, IsCache: true, Mode: mode}
		fp1, err := s.Fingerprint()
		if err != nil {
			return false
		}
		c, err := s.Canonical()
		if err != nil {
			return false
		}
		fp2, err := c.Fingerprint()
		return err == nil && fp1 == fp2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestExploreDeterministicOrder(t *testing.T) {
	// Two independent Explore calls must return the identical
	// sequence of organizations — the guarantee parallel sweep
	// callers (internal/explore) rely on. Assert the documented total
	// order directly: access time ascending, exact ties broken by
	// orgLess.
	spec := sramCache(2<<20, 8, 1)
	a, err := Explore(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Explore(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Data.Org != b[i].Data.Org {
			t.Fatalf("position %d differs across runs: %v vs %v", i, a[i].Data.Org, b[i].Data.Org)
		}
		if i > 0 {
			if a[i].AccessTime < a[i-1].AccessTime {
				t.Fatalf("position %d not sorted by access time", i)
			}
			if a[i].AccessTime == a[i-1].AccessTime && !orgLess(a[i-1].Data.Org, a[i].Data.Org) {
				t.Fatalf("position %d: tie not broken by org order: %v !< %v",
					i, a[i-1].Data.Org, a[i].Data.Org)
			}
		}
	}
	// The filtered (optimized) ordering is deterministic too.
	fa := Filter(spec, a)
	fb := Filter(spec, b)
	if len(fa) != len(fb) || len(fa) == 0 {
		t.Fatalf("filter lengths differ: %d vs %d", len(fa), len(fb))
	}
	for i := range fa {
		if fa[i].Data.Org != fb[i].Data.Org {
			t.Fatalf("filtered position %d differs: %v vs %v", i, fa[i].Data.Org, fb[i].Data.Org)
		}
	}
}
