package core

// ModelVersion tags every durably persisted solver result
// (internal/store keys results by (ModelVersion, spec fingerprint)).
// It is bumped — by hand, in the same commit — whenever any change
// can move a published number by even one ulp: technology tables,
// circuit models, enumeration order, objective weights, float
// formatting. Stale store records written under an older version
// become unreachable rather than silently wrong.
//
// The bump discipline is policed mechanically: the 7-digit
// pinned-output tripwires (explore.TestSolvePinnedOutput,
// validate.Micron pins, study Table-3 pins) fail on any numeric
// drift, and explore.TestModelVersionTripwire ties a hash of those
// pinned outputs to this constant — so a numeric change cannot land
// without touching both the pins and ModelVersion.
const ModelVersion = 1
