package core

// ModelVersion tags every durably persisted solver result
// (internal/store keys results by (ModelVersion, spec fingerprint)).
// It is bumped — by hand, in the same commit — whenever any change
// can move a published number by even one ulp: technology tables,
// circuit models, enumeration order, objective weights, float
// formatting. Stale store records written under an older version
// become unreachable rather than silently wrong.
//
// The bump discipline is policed mechanically: the 7-digit
// pinned-output tripwires (explore.TestSolvePinnedOutput,
// validate.Micron pins, study Table-3 pins) fail on any numeric
// drift, and explore.TestModelVersionTripwire ties a hash of those
// pinned outputs to this constant — so a numeric change cannot land
// without touching both the pins and ModelVersion.
// Version history:
//   2 — pluggable technology providers: Spec gained the Technology
//       axis, Solution gained WriteTime/WriteEndurance, and the
//       persisted/wire record shapes grew accordingly. ITRS numbers
//       are byte-identical to version 1 (the pinned-output digest did
//       not move), but records written by mixed-technology fleets are
//       not interpretable by version-1 readers.
//   1 — initial persisted-format version.
const ModelVersion = 2
