package core

import (
	"fmt"
	"strings"
)

// Report renders the classic CACTI-style detailed breakdown of a
// solution: the timing components along the access path, the energy
// components of a read, the geometry of data and tag arrays, and the
// standby power split. This is the diagnostic output users of the
// original tool rely on to understand *why* a solution looks the way
// it does.
func Report(s *Solution) string {
	var b strings.Builder
	spec := s.Spec
	fmt.Fprintf(&b, "CACTI-D solution report\n")
	fmt.Fprintf(&b, "=======================\n")
	fmt.Fprintf(&b, "Input: %v %s, %dB lines, %d-way, %d bank(s), %s access, %s node\n",
		spec.RAM, byteSize(spec.CapacityBytes), spec.BlockBytes, spec.Associativity,
		spec.Banks, spec.Mode, spec.Node)
	if spec.PageBits > 0 {
		fmt.Fprintf(&b, "       page size constraint: %d bits\n", spec.PageBits)
	}
	fmt.Fprintln(&b)

	fmt.Fprintf(&b, "Data array organization: %v\n", s.Data.Org)
	m := s.Data.Mat
	fmt.Fprintf(&b, "  subarray: %d rows x %d cols, column mux %d, %d pipeline stages\n",
		m.Rows, m.Cols, m.DegBLMux, s.Data.PipelineStages)
	if s.Tag != nil {
		fmt.Fprintf(&b, "Tag array organization:  %v (%d-bit tags)\n", s.Tag.Org, spec.TagBits())
	}
	fmt.Fprintln(&b)

	fmt.Fprintf(&b, "Access path timing (data array):\n")
	fmt.Fprintf(&b, "  H-tree in            %8.1f ps\n", s.Data.HtreeInDelay*1e12)
	fmt.Fprintf(&b, "  row decoder          %8.1f ps\n", m.TDecoder*1e12)
	fmt.Fprintf(&b, "  wordline             %8.1f ps\n", m.TWordline*1e12)
	fmt.Fprintf(&b, "  bitline              %8.1f ps\n", m.TBitline*1e12)
	fmt.Fprintf(&b, "  sense amplifier      %8.1f ps\n", m.TSense*1e12)
	if m.TColumnMux > 0 {
		fmt.Fprintf(&b, "  column mux           %8.1f ps\n", m.TColumnMux*1e12)
	}
	fmt.Fprintf(&b, "  H-tree out           %8.1f ps\n", s.Data.HtreeOutDelay*1e12)
	if m.TRestore > 0 {
		fmt.Fprintf(&b, "  restore/writeback    %8.1f ps   (destructive readout)\n", m.TRestore*1e12)
	}
	fmt.Fprintf(&b, "  precharge            %8.1f ps\n", m.TPrecharge*1e12)
	fmt.Fprintln(&b)

	fmt.Fprintf(&b, "Result timing:\n")
	fmt.Fprintf(&b, "  access time          %8.3f ns\n", s.AccessTime*1e9)
	fmt.Fprintf(&b, "  random cycle time    %8.3f ns\n", s.RandomCycle*1e9)
	fmt.Fprintf(&b, "  interleave cycle     %8.3f ns   (multisubbank)\n", s.InterleaveCycle*1e9)
	fmt.Fprintln(&b)

	fmt.Fprintf(&b, "Read energy (per %dB access):\n", spec.BlockBytes)
	fmt.Fprintf(&b, "  activate             %8.3f nJ\n", s.Data.EActivate*1e9)
	fmt.Fprintf(&b, "  column read + return %8.3f nJ\n", s.Data.ERead*1e9)
	fmt.Fprintf(&b, "  precharge            %8.3f nJ\n", s.Data.EPrecharge*1e9)
	if s.Tag != nil {
		fmt.Fprintf(&b, "  tag array            %8.3f nJ\n", s.Tag.EReadTotal()*1e9)
	}
	fmt.Fprintf(&b, "  total read           %8.3f nJ   (write %.3f nJ)\n",
		s.EReadPerAccess*1e9, s.EWritePerAccess*1e9)
	fmt.Fprintln(&b)

	fmt.Fprintf(&b, "Geometry:\n")
	fmt.Fprintf(&b, "  bank                 %8.3f mm2 (%.1f%% cells)\n", s.BankArea*1e6, s.AreaEff*100)
	fmt.Fprintf(&b, "  total (%d banks)     %8.3f mm2\n", spec.Banks, s.Area*1e6)
	fmt.Fprintln(&b)

	fmt.Fprintf(&b, "Standby power:\n")
	fmt.Fprintf(&b, "  leakage              %8.4f W\n", s.LeakagePower)
	if s.RefreshPower > 0 {
		fmt.Fprintf(&b, "  refresh              %8.4f W   (retention %.3g ms)\n",
			s.RefreshPower, retentionMS(s))
	}
	return b.String()
}

func retentionMS(s *Solution) float64 {
	cell := s.Data.Spec.Tech.Cell(s.Spec.RAM)
	return cell.RetentionT * 1e3
}
