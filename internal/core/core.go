// Package core is CACTI-D's solver: it takes a cache or memory
// specification, enumerates the internal organizations of the data
// (and, for caches, tag) arrays, applies the paper's staged
// optimization (max area constraint, then max access-time constraint,
// then a normalized weighted objective over dynamic energy, leakage
// power, random cycle time and multisubbank interleave cycle time —
// Section 2.4), and returns the chosen solution with the complete
// area/timing/energy/power breakdown.
//
// This is the package downstream users import; the physical
// substrates live in internal/tech, internal/circuit, internal/mat,
// internal/array and internal/dram.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"cactid/internal/array"
	"cactid/internal/circuit"
	"cactid/internal/tech"
)

// AccessMode selects how tags and data are coordinated in a cache
// access (Section 3.4).
type AccessMode int

const (
	// Normal reads tags and all data ways concurrently and
	// late-selects the hit way.
	Normal AccessMode = iota
	// Sequential reads the tag array first and then only the hit
	// way of the data array, saving energy at the cost of latency
	// (used for the DRAM LLCs in the paper's study).
	Sequential
	// Fast reads tags and all data ways concurrently and routes
	// every way to the bank edge so data is available the moment the
	// tag comparison resolves: the fastest and most energy-hungry
	// mode of the original tool.
	Fast
)

func (m AccessMode) String() string {
	switch m {
	case Sequential:
		return "sequential"
	case Fast:
		return "fast"
	}
	return "normal"
}

// Weights are the relative weights of the normalized optimization
// objective (Section 2.4).
type Weights struct {
	DynamicEnergy   float64
	LeakagePower    float64
	RandomCycle     float64
	InterleaveCycle float64
}

// DefaultWeights weighs all four metrics equally.
var DefaultWeights = Weights{1, 1, 1, 1}

// Spec is the user-facing input specification.
type Spec struct {
	Node tech.Node
	RAM  tech.RAMType

	// Technology names the technology provider supplying the cell and
	// device tables (see tech.Providers). Empty or "itrs" selects the
	// built-in ITRS family, driven by RAM exactly as before providers
	// existed. Single-technology providers (itrs-sram, stt-ram, pcm,
	// gain-cell, ...) pin the data-array cell themselves, overriding
	// the RAM axis, so cross-technology sweeps can hold one grid
	// constant while this field varies. Aliases and unique prefixes
	// are accepted; normalize canonicalises.
	Technology string

	CapacityBytes int64 // total capacity across banks
	BlockBytes    int   // cache line / access granularity
	Associativity int   // 1 for direct-mapped or plain memory
	Banks         int   // independently addressable banks (>=1)

	// IsCache adds a tag array and way-select to the model.
	IsCache bool
	Mode    AccessMode

	// TagRAM overrides the tag array technology; nil RAMType zero
	// value means "same as data" for DRAM caches and SRAM otherwise.
	TagRAM *tech.RAMType

	// PageBits constrains the DRAM page size (sense amps per
	// subbank); 0 leaves it free.
	PageBits int

	// MaxPipelineStages caps access-path pipelining (study: 6).
	MaxPipelineStages int

	// Optimization controls (Section 2.4). Zero values take the
	// defaults: MaxAreaConstraint 0.4, MaxAcctimeConstraint 0.1,
	// MaxRepeaterSlack 0, DefaultWeights.
	MaxAreaConstraint    float64
	MaxAcctimeConstraint float64
	MaxRepeaterSlack     float64
	Weights              *Weights

	// SleepTransistors halves leakage of non-activated mats.
	SleepTransistors bool

	// Ports is the number of independent read/write ports (SRAM
	// only; register-file-style structures). Zero means 1.
	Ports int

	// ECC stores SECDED check bits alongside the data (8 bits per
	// 64-bit word): capacity and data movement grow by 9/8.
	ECC bool

	// IncludeBankRouting adds the inter-bank distribution network to
	// the model: address and data routed from the structure's edge
	// to the farthest bank over repeated global wires. Leave false
	// when an external interconnect (like the LLC study's crossbar)
	// reaches the banks directly.
	IncludeBankRouting bool

	// PhysicalAddressBits sizes the tags (default 40).
	PhysicalAddressBits int
}

// Solution is one evaluated cache/memory design point. Timing and
// access energies are per bank access; area, leakage and refresh
// cover the whole structure (all banks).
type Solution struct {
	Spec Spec
	Data *array.Bank
	Tag  *array.Bank // nil for plain memories

	// Per-bank timing (s).
	AccessTime      float64
	RandomCycle     float64
	InterleaveCycle float64

	// Whole-structure geometry.
	Area     float64 // m^2, all banks
	BankArea float64 // m^2, one bank
	AreaEff  float64

	// Per-access energy (J) for a full block read/write, including
	// tag access and, for DRAM, activate + precharge.
	EReadPerAccess  float64
	EWritePerAccess float64

	// Whole-structure standby power (W).
	LeakagePower float64
	RefreshPower float64

	// Write-path characteristics of technologies with asymmetric
	// writes. WriteTime is the per-access write completion time: the
	// access path plus the cell programming pulse. WriteEndurance is
	// the storage cell's write endurance in cycles. Both are zero for
	// technologies without a programming pulse or wear-out limit
	// (every ITRS cell), keeping them out of serialized output.
	WriteTime      float64
	WriteEndurance float64
}

// Objective computes the normalized weighted objective given the
// normalization minima; lower is better.
func (s *Solution) objective(w Weights, minE, minL, minC, minI float64) float64 {
	obj := 0.0
	if minE > 0 {
		obj += w.DynamicEnergy * s.EReadPerAccess / minE
	}
	if minL > 0 {
		obj += w.LeakagePower * s.LeakagePower / minL
	}
	if minC > 0 {
		obj += w.RandomCycle * s.RandomCycle / minC
	}
	if minI > 0 {
		obj += w.InterleaveCycle * s.InterleaveCycle / minI
	}
	return obj
}

// ErrNoSolution is returned when the spec admits no feasible design.
var ErrNoSolution = errors.New("core: no feasible solution for spec")

func (s *Spec) normalize() error {
	if s.CapacityBytes <= 0 {
		return fmt.Errorf("core: capacity %d must be positive", s.CapacityBytes)
	}
	if s.BlockBytes <= 0 {
		return errors.New("core: block size must be positive")
	}
	if s.Banks <= 0 {
		s.Banks = 1
	}
	if s.Associativity <= 0 {
		s.Associativity = 1
	}
	if s.CapacityBytes%int64(s.Banks) != 0 {
		return fmt.Errorf("core: capacity %d not divisible by %d banks", s.CapacityBytes, s.Banks)
	}
	if s.MaxAreaConstraint == 0 {
		s.MaxAreaConstraint = 0.4
	}
	if s.MaxAcctimeConstraint == 0 {
		s.MaxAcctimeConstraint = 0.1
	}
	if s.Weights == nil {
		s.Weights = &DefaultWeights
	}
	if s.PhysicalAddressBits == 0 {
		s.PhysicalAddressBits = 40
	}
	if s.Node == 0 {
		s.Node = tech.Node32
	}
	// Resolve the technology provider: canonicalise the name (the
	// default family canonicalises to the empty string, which keeps
	// pre-provider fingerprints stable) and reject combinations the
	// provider cannot model.
	p, err := tech.Resolve(s.Technology)
	if err != nil {
		return err
	}
	if p.Name() == tech.DefaultTech {
		s.Technology = ""
	} else {
		s.Technology = p.Name()
	}
	if _, err := p.DataRAM(s.RAM); err != nil {
		return err
	}
	if s.IsCache && !p.Supports(s.tagRAM()) {
		return fmt.Errorf("core: technology %q has no %v cell model for tags", p.Name(), s.tagRAM())
	}
	return nil
}

// dataRAM resolves the data-array cell type through the technology
// provider: the ITRS family echoes RAM; pinned and overlay providers
// substitute their own cell. normalize has already validated the
// combination, so errors here cannot occur and fall back to RAM.
func (s *Spec) dataRAM() tech.RAMType {
	p, err := tech.Resolve(s.Technology)
	if err != nil {
		return s.RAM
	}
	r, err := p.DataRAM(s.RAM)
	if err != nil {
		return s.RAM
	}
	return r
}

// tagRAM resolves the tag array technology.
func (s *Spec) tagRAM() tech.RAMType {
	if s.TagRAM != nil {
		return *s.TagRAM
	}
	if s.RAM.IsDRAM() {
		// DRAM LLC tags live in the same stacked DRAM (an SRAM tag
		// store for a 192MB cache would dominate leakage).
		return s.RAM
	}
	return tech.SRAM
}

// TagBits returns the per-line tag width implied by the spec: address
// bits minus index and offset, plus state (valid, dirty, coherence).
func (s *Spec) TagBits() int {
	setsTotal := s.CapacityBytes / int64(s.BlockBytes) / int64(s.Associativity)
	idx := int(math.Ceil(math.Log2(float64(setsTotal))))
	off := int(math.Ceil(math.Log2(float64(s.BlockBytes))))
	tag := s.PhysicalAddressBits - idx - off + 3
	if tag < 8 {
		tag = 8
	}
	return tag
}

// orgLess is a total order over internal organizations, used to break
// ties deterministically wherever solutions are sorted on a float
// metric: rows, then columns, then column-mux degree, then subbank
// count, then mats per subbank (the codebase's equivalent of classic
// CACTI's Ndwl/Ndbl/Nspd triple).
func orgLess(a, b array.Org) bool {
	if a.Rows != b.Rows {
		return a.Rows < b.Rows
	}
	if a.Cols != b.Cols {
		return a.Cols < b.Cols
	}
	if a.Mux != b.Mux {
		return a.Mux < b.Mux
	}
	if a.Subbanks != b.Subbanks {
		return a.Subbanks < b.Subbanks
	}
	return a.MatsPerSubbank < b.MatsPerSubbank
}

// Options tunes a solver call without affecting its result: the
// enumeration worker-pool size and an optional sink for the coverage
// counters. The zero value (and a nil *Options) is the default:
// GOMAXPROCS workers, no counter reporting.
type Options struct {
	// Workers bounds the organization-enumeration pool; 0 means
	// GOMAXPROCS, 1 forces the serial path. Any value produces
	// byte-identical solutions.
	Workers int

	// Stats, when non-nil, receives the enumeration coverage counters
	// of the solve (data and tag arrays separately).
	Stats *SolveStats

	// NoBound disables the branch-and-bound enumeration pruning in
	// Optimize (the A/B escape hatch): every feasible organization is
	// circuit-modeled, as in ExploreContext. The chosen solution is
	// byte-identical either way; only the Stats prune buckets and the
	// runtime differ.
	NoBound bool
}

// SolveStats audits one Explore/Optimize call: how many organizations
// each enumeration considered, pruned before circuit modeling, and
// fully built.
type SolveStats struct {
	Data array.Counters `json:"data"`
	Tag  array.Counters `json:"tag"`
}

// Total returns the combined data+tag counters.
func (s SolveStats) Total() array.Counters {
	t := s.Data
	t.Add(s.Tag)
	return t
}

func (o *Options) workers() int {
	if o == nil {
		return 0
	}
	return o.Workers
}

func (o *Options) noBound() bool { return o != nil && o.NoBound }

// Explore enumerates every feasible solution for spec, without
// applying the optimization constraints. The returned slice is sorted
// by access time, with exact ties broken by the data organization
// (orgLess), so the order is a deterministic function of the spec —
// parallel and repeated callers see identical slices. This is the raw
// design space behind Figure 1's bubble chart.
func Explore(spec Spec) ([]*Solution, error) {
	return ExploreContext(context.Background(), spec, nil)
}

// ExploreContext is Explore with cancellation and solver options
// (opts may be nil). The worker count never changes the result.
func ExploreContext(ctx context.Context, spec Spec, opts *Options) ([]*Solution, error) {
	if err := spec.normalize(); err != nil {
		return nil, err
	}
	t, err := tech.TechnologyOf(spec.Technology, spec.Node)
	if err != nil {
		return nil, err
	}

	// Tag array: optimized once, shared by all data organizations.
	var tag *array.Bank
	if spec.IsCache {
		var err error
		tag, err = optimizeTag(ctx, spec, t, opts)
		if err != nil {
			return nil, fmt.Errorf("core: tag array: %w", err)
		}
	}

	banks, counters, err := array.EnumerateContext(ctx, dataArraySpec(spec, t), opts.workers())
	if opts != nil && opts.Stats != nil {
		opts.Stats.Data = counters
	}
	if err != nil {
		return nil, err
	}
	if len(banks) == 0 {
		return nil, ErrNoSolution
	}
	// One backing array for all solutions: the enumeration produces a
	// few hundred of them per solve, and a single allocation beats a
	// per-solution heap object.
	backing := make([]Solution, len(banks))
	sols := make([]*Solution, len(banks))
	for i, b := range banks {
		assemble(spec, b, tag, &backing[i])
		sols[i] = &backing[i]
	}
	sort.Slice(sols, func(i, j int) bool {
		if sols[i].AccessTime != sols[j].AccessTime {
			return sols[i].AccessTime < sols[j].AccessTime
		}
		return orgLess(sols[i].Data.Org, sols[j].Data.Org)
	})
	return sols, nil
}

// Optimize runs the full CACTI-D optimization flow (Section 2.4) and
// returns the chosen solution.
func Optimize(spec Spec) (*Solution, error) {
	return OptimizeContext(context.Background(), spec, nil)
}

// OptimizeContext is Optimize with cancellation and solver options
// (opts may be nil). The worker count never changes the result, and
// neither does the branch-and-bound pruning (see Options.NoBound):
// the bounded path provably discards only organizations the staged
// filter could never keep (DESIGN.md §1.2e), falling back to the full
// enumeration whenever its preconditions do not hold.
func OptimizeContext(ctx context.Context, spec Spec, opts *Options) (*Solution, error) {
	var sols []*Solution
	var err error
	if !opts.noBound() {
		var ok bool
		sols, ok, err = exploreBounded(ctx, spec, opts)
		if err != nil {
			return nil, err
		}
		if !ok {
			sols = nil
		}
	}
	if sols == nil {
		sols, err = ExploreContext(ctx, spec, opts)
		if err != nil {
			return nil, err
		}
	}
	filtered := Filter(spec, sols)
	if len(filtered) == 0 {
		return nil, ErrNoSolution
	}
	return filtered[0], nil
}

// Filter applies the staged constraints and objective of Section 2.4
// to a solution set and returns the survivors sorted best-first.
func Filter(spec Spec, sols []*Solution) []*Solution {
	if err := spec.normalize(); err != nil || len(sols) == 0 {
		return nil
	}
	// Stage 1: max area constraint relative to the best-area solution.
	minArea := math.Inf(1)
	for _, s := range sols {
		minArea = math.Min(minArea, s.Area)
	}
	pass1 := make([]*Solution, 0, len(sols))
	for _, s := range sols {
		if s.Area <= minArea*(1+spec.MaxAreaConstraint) {
			pass1 = append(pass1, s)
		}
	}
	// Stage 2: max access-time constraint within the reduced set.
	minAcc := math.Inf(1)
	for _, s := range pass1 {
		minAcc = math.Min(minAcc, s.AccessTime)
	}
	var pass2 []*Solution
	for _, s := range pass1 {
		if s.AccessTime <= minAcc*(1+spec.MaxAcctimeConstraint) {
			pass2 = append(pass2, s)
		}
	}
	// Stage 3: normalized weighted objective.
	minE, minL, minC, minI := math.Inf(1), math.Inf(1), math.Inf(1), math.Inf(1)
	for _, s := range pass2 {
		minE = math.Min(minE, s.EReadPerAccess)
		minL = math.Min(minL, s.LeakagePower)
		minC = math.Min(minC, s.RandomCycle)
		minI = math.Min(minI, s.InterleaveCycle)
	}
	w := *spec.Weights
	// Objectives kept in a slice parallel to pass2 (sorted together):
	// cheaper than a map and the same total order.
	objs := make([]float64, len(pass2))
	for i, s := range pass2 {
		objs[i] = s.objective(w, minE, minL, minC, minI)
	}
	sort.Sort(&byObjective{sols: pass2, objs: objs})
	return pass2
}

// byObjective sorts solutions and their precomputed objectives in
// lockstep: objective, then access time, then organization order.
type byObjective struct {
	sols []*Solution
	objs []float64
}

func (b *byObjective) Len() int { return len(b.sols) }
func (b *byObjective) Swap(i, j int) {
	b.sols[i], b.sols[j] = b.sols[j], b.sols[i]
	b.objs[i], b.objs[j] = b.objs[j], b.objs[i]
}
func (b *byObjective) Less(i, j int) bool {
	if b.objs[i] != b.objs[j] {
		return b.objs[i] < b.objs[j]
	}
	if b.sols[i].AccessTime != b.sols[j].AccessTime {
		return b.sols[i].AccessTime < b.sols[j].AccessTime
	}
	return orgLess(b.sols[i].Data.Org, b.sols[j].Data.Org)
}

// dataArraySpec derives the data-array enumeration spec from a
// normalized solver spec (the single source for both the plain and
// the branch-and-bound explore paths).
func dataArraySpec(spec Spec, t *tech.Technology) array.Spec {
	assocReadout := 1
	if spec.IsCache && (spec.Mode == Normal || spec.Mode == Fast) {
		assocReadout = spec.Associativity
	}
	dataCapacity := spec.CapacityBytes / int64(spec.Banks)
	outputBits := spec.BlockBytes * 8
	if spec.ECC {
		// SECDED: 8 check bits per 64 data bits.
		dataCapacity = dataCapacity * 9 / 8
		outputBits = outputBits * 9 / 8
	}
	return array.Spec{
		Tech:              t,
		RAM:               spec.dataRAM(),
		CapacityBytes:     dataCapacity,
		OutputBits:        outputBits,
		AssocReadout:      assocReadout,
		RouteAllWays:      spec.Mode == Fast,
		PageBits:          spec.PageBits,
		MaxPipelineStages: spec.MaxPipelineStages,
		RepeaterSlack:     spec.MaxRepeaterSlack,
		SleepTransistors:  spec.SleepTransistors,
		Ports:             spec.Ports,
	}
}

// tagArraySpec derives the tag-array enumeration spec from a
// normalized cache spec.
func tagArraySpec(spec Spec, t *tech.Technology) array.Spec {
	tagBits := spec.TagBits()
	setsPerBank := spec.CapacityBytes / int64(spec.Banks) / int64(spec.BlockBytes) / int64(spec.Associativity)
	capBytes := setsPerBank * int64(spec.Associativity) * int64(tagBits) / 8
	if capBytes < 512 {
		capBytes = 512
	}
	return array.Spec{
		Tech:              t,
		RAM:               spec.tagRAM(),
		CapacityBytes:     capBytes,
		OutputBits:        tagBits * spec.Associativity, // all ways compared
		AssocReadout:      1,
		MaxPipelineStages: spec.MaxPipelineStages,
		RepeaterSlack:     spec.MaxRepeaterSlack,
		SleepTransistors:  spec.SleepTransistors,
	}
}

// optimizeTag builds and optimizes the tag array for a cache spec.
func optimizeTag(ctx context.Context, spec Spec, t *tech.Technology, opts *Options) (*array.Bank, error) {
	banks, counters, err := array.EnumerateContext(ctx, tagArraySpec(spec, t), opts.workers())
	if opts != nil && opts.Stats != nil {
		opts.Stats.Tag = counters
	}
	if err != nil {
		return nil, err
	}
	if len(banks) == 0 {
		return nil, ErrNoSolution
	}
	// Tags want latency: best access time within 10% of best area...
	// use the same staged filter with cycle-heavy weights.
	sort.Slice(banks, func(i, j int) bool {
		if banks[i].AccessTime != banks[j].AccessTime {
			return banks[i].AccessTime < banks[j].AccessTime
		}
		return orgLess(banks[i].Org, banks[j].Org)
	})
	return banks[0], nil
}

// assemble combines a data organization with the tag array into the
// caller-provided Solution according to the access mode.
func assemble(spec Spec, data *array.Bank, tag *array.Bank, s *Solution) {
	*s = Solution{Spec: spec, Data: data, Tag: tag}
	nb := float64(spec.Banks)

	wayMux := 0.0
	if spec.IsCache && spec.Mode == Normal && spec.Associativity > 1 {
		wayMux = 30e-12 // late way-select mux after tag compare
	}
	switch {
	case !spec.IsCache:
		s.AccessTime = data.AccessTime
	case spec.Mode == Sequential:
		s.AccessTime = tag.AccessTime + data.AccessTime
	case spec.Mode == Fast:
		// All ways arrive at the edge with the tags: no way-select
		// stall on the critical path.
		s.AccessTime = math.Max(tag.AccessTime, data.AccessTime)
	default:
		s.AccessTime = math.Max(tag.AccessTime+wayMux, data.AccessTime) + wayMux
	}
	s.RandomCycle = data.RandomCycle
	s.InterleaveCycle = data.InterleaveCycle
	if spec.IsCache {
		s.RandomCycle = math.Max(s.RandomCycle, tag.RandomCycle)
		s.InterleaveCycle = math.Max(s.InterleaveCycle, tag.InterleaveCycle)
	}

	s.BankArea = data.Area
	if tag != nil {
		s.BankArea += tag.Area
	}
	s.Area = nb * s.BankArea
	cellArea := float64(data.Org.Mats) * data.Mat.CellArea
	if tag != nil {
		cellArea += float64(tag.Org.Mats) * tag.Mat.CellArea
	}
	s.AreaEff = cellArea / s.BankArea

	s.EReadPerAccess = data.EReadTotal()
	s.EWritePerAccess = data.EActivate + data.EWrite + data.EPrecharge
	if tag != nil {
		s.EReadPerAccess += tag.EReadTotal()
		s.EWritePerAccess += tag.EReadTotal()
	}

	s.LeakagePower = nb * data.Leakage
	s.RefreshPower = nb * data.RefreshPower
	if tag != nil {
		s.LeakagePower += nb * tag.Leakage
		s.RefreshPower += nb * tag.RefreshPower
	}

	if spec.IncludeBankRouting && spec.Banks > 1 {
		addBankRouting(spec, s, data)
	}

	// Asymmetric-write technologies: writes complete only after the
	// cell programming pulse, and the cell wears out.
	dcell := data.Spec.Tech.Cell(data.Spec.RAM)
	if p := dcell.WritePulse; p > 0 {
		s.WriteTime = s.AccessTime + p
	}
	if e := dcell.Endurance; e > 0 {
		s.WriteEndurance = e
	}
}

// addBankRouting extends a multi-bank solution with the inter-bank
// distribution network: banks arranged in a near-square grid, address
// and data routed to the farthest bank and back over repeated global
// wires.
func addBankRouting(spec Spec, s *Solution, data *array.Bank) {
	t := data.Spec.Tech
	per := t.Device(t.Cell(spec.RAM).PeripheralDevice)
	wire := t.Wire(tech.WireGlobal)

	gx := 1
	for gx*gx < spec.Banks {
		gx *= 2
	}
	gy := (spec.Banks + gx - 1) / gx
	side := math.Sqrt(s.BankArea)
	routeLen := (float64(gx) + float64(gy)) / 2 * side

	rw := circuit.NewRepeatedWire(per, wire, routeLen, spec.MaxRepeaterSlack)
	addrBits := int(math.Ceil(math.Log2(float64(spec.CapacityBytes*8)))) + 8
	dataBits := spec.BlockBytes * 8

	s.AccessTime += 2 * rw.Res.Delay // address in, data out
	s.RandomCycle = math.Max(s.RandomCycle, rw.Res.Delay/math.Max(1, float64(rw.NumRep)))
	eWire := float64(addrBits+dataBits) * rw.Res.Energy
	s.EReadPerAccess += eWire
	s.EWritePerAccess += eWire
	s.LeakagePower += float64(addrBits+dataBits) * rw.Res.Leakage
	s.Area += float64(addrBits+dataBits) * wire.Pitch * routeLen
}

// String summarizes a solution in engineering units.
func (s *Solution) String() string {
	return fmt.Sprintf("%v %s %dB blk assoc %d x%d banks: acc=%.2fns cyc=%.2fns int=%.2fns area=%.2fmm2 eff=%.0f%% Erd=%.3gnJ leak=%.3gW refr=%.3gW org=%v",
		s.Spec.RAM, byteSize(s.Spec.CapacityBytes), s.Spec.BlockBytes, s.Spec.Associativity, s.Spec.Banks,
		s.AccessTime*1e9, s.RandomCycle*1e9, s.InterleaveCycle*1e9,
		s.Area*1e6, s.AreaEff*100, s.EReadPerAccess*1e9, s.LeakagePower, s.RefreshPower, s.Data.Org)
}

func byteSize(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%gGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%gMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%gKB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
