package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Canonical returns a copy of the spec with every defaulted field
// resolved to its effective value: banks/associativity/ports floored
// at 1, optimization constraints and weights filled in, the tag RAM
// technology resolved (nil TagRAM means "same as data" for DRAM
// caches, SRAM otherwise) and cleared for plain memories. Two specs
// that drive the solver identically canonicalise to the same value,
// which is what Fingerprint hashes. It returns an error for specs the
// solver would reject.
func (s Spec) Canonical() (Spec, error) {
	c := s
	if err := c.normalize(); err != nil {
		return Spec{}, err
	}
	if c.Ports <= 0 {
		c.Ports = 1
	}
	// Detach pointer fields so the canonical spec shares no storage
	// with the input.
	w := *c.Weights
	c.Weights = &w
	if c.IsCache {
		r := c.tagRAM()
		c.TagRAM = &r
	} else {
		// Plain memories have no tag array: the field cannot affect
		// the solution.
		c.TagRAM = nil
	}
	return c, nil
}

// Fingerprint returns a canonical, normalisation-stable hash of the
// spec: two specs that differ only in defaulted fields (zero banks vs
// 1 bank, nil weights vs DefaultWeights, nil TagRAM vs its resolved
// technology, ...) fingerprint identically, and any field change that
// can alter the solver's answer changes the fingerprint. The result
// is a fixed-length hex string suitable as a cache or dedup key.
func (s Spec) Fingerprint() (string, error) {
	c, err := s.Canonical()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "node=%d|ram=%d|cap=%d|blk=%d|assoc=%d|banks=%d|",
		int(c.Node), int(c.RAM), c.CapacityBytes, c.BlockBytes, c.Associativity, c.Banks)
	fmt.Fprintf(h, "cache=%t|mode=%d|", c.IsCache, int(c.Mode))
	tag := -1
	if c.TagRAM != nil {
		tag = int(*c.TagRAM)
	}
	fmt.Fprintf(h, "tag=%d|page=%d|pipe=%d|", tag, c.PageBits, c.MaxPipelineStages)
	fmt.Fprintf(h, "area=%.17g|acc=%.17g|slack=%.17g|", c.MaxAreaConstraint, c.MaxAcctimeConstraint, c.MaxRepeaterSlack)
	fmt.Fprintf(h, "w=%.17g,%.17g,%.17g,%.17g|", c.Weights.DynamicEnergy, c.Weights.LeakagePower,
		c.Weights.RandomCycle, c.Weights.InterleaveCycle)
	fmt.Fprintf(h, "sleep=%t|ports=%d|ecc=%t|route=%t|pa=%d",
		c.SleepTransistors, c.Ports, c.ECC, c.IncludeBankRouting, c.PhysicalAddressBits)
	// The technology axis folds in only when it deviates from the
	// default ITRS family (normalize canonicalises the default to ""),
	// so every pre-provider fingerprint — including those pinned in
	// golden files and persisted store keys — is unchanged.
	if c.Technology != "" {
		fmt.Fprintf(h, "|tech=%s", c.Technology)
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16]), nil
}
