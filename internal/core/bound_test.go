package core

import (
	"context"
	"reflect"
	"testing"

	"cactid/internal/tech"
)

// equivalenceSpecs covers every access-mode composition the bounded
// explore translates thresholds through: plain RAM, normal cache, fast
// cache, sequential DRAM cache and plain DRAM.
func equivalenceSpecs() map[string]Spec {
	fast := sramCache(1<<20, 8, 1)
	fast.Mode = Fast
	return map[string]Spec{
		"sram-cache": sramCache(1<<20, 8, 1),
		"sram-fast":  fast,
		"sram-plain": {Node: tech.Node32, RAM: tech.SRAM, CapacityBytes: 256 << 10, BlockBytes: 64},
		"dram-cache-seq": {
			Node: tech.Node45, RAM: tech.COMMDRAM,
			CapacityBytes: 16 << 20, BlockBytes: 64, Associativity: 8, Banks: 1,
			IsCache: true, Mode: Sequential, PageBits: 8192, MaxPipelineStages: 6,
		},
		"dram-plain": {
			Node: tech.Node45, RAM: tech.COMMDRAM,
			CapacityBytes: 16 << 20, BlockBytes: 8, PageBits: 8192,
		},
	}
}

// The branch-and-bound path is an optimization, not a semantic change:
// the full filtered solution list — values and order — must be
// byte-identical with pruning on and off. This is the acceptance bar
// for the bounded explore (DESIGN.md §1.2e).
func TestBoundedFilterOutputIdentical(t *testing.T) {
	ctx := context.Background()
	for name, spec := range equivalenceSpecs() {
		var stB SolveStats
		sols, ok, err := exploreBounded(ctx, spec, &Options{Stats: &stB})
		if err != nil {
			t.Fatalf("%s: bounded explore: %v", name, err)
		}
		if !ok {
			t.Fatalf("%s: bounded path did not apply", name)
		}
		all, err := ExploreContext(ctx, spec, nil)
		if err != nil {
			t.Fatalf("%s: unbounded explore: %v", name, err)
		}
		fb, fu := Filter(spec, sols), Filter(spec, all)
		if len(fb) != len(fu) {
			t.Fatalf("%s: filtered %d bounded vs %d unbounded solutions", name, len(fb), len(fu))
		}
		for i := range fb {
			if !reflect.DeepEqual(fb[i], fu[i]) {
				t.Fatalf("%s: filtered solution %d differs between bounded and unbounded", name, i)
			}
		}
		if stB.Data.PrunedBoundShard+stB.Data.PrunedBoundPoint == 0 {
			t.Errorf("%s: bound pruning never engaged: %+v", name, stB.Data)
		}
	}
}

// Optimize with the NoBound escape hatch must return the identical
// chosen solution, and its stats must show the bound buckets empty.
func TestOptimizeNoBoundIdentical(t *testing.T) {
	ctx := context.Background()
	for name, spec := range equivalenceSpecs() {
		var stB, stU SolveStats
		bounded, err := OptimizeContext(ctx, spec, &Options{Stats: &stB})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		unbounded, err := OptimizeContext(ctx, spec, &Options{NoBound: true, Stats: &stU})
		if err != nil {
			t.Fatalf("%s: no-bound: %v", name, err)
		}
		if !reflect.DeepEqual(bounded, unbounded) {
			t.Fatalf("%s: NoBound changed the chosen solution", name)
		}
		if n := stU.Total(); n.PrunedBoundShard+n.PrunedBoundPoint != 0 {
			t.Errorf("%s: NoBound run still bound-pruned: %+v", name, n)
		}
		if total := stB.Total(); total.Considered != total.PrunedTotal()+total.Built+total.BuildErrors {
			t.Errorf("%s: bounded accounting invariant broken: %+v", name, total)
		}
	}
}
