package array

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"cactid/internal/tech"
)

func specSRAM(capBytes int64, outBits, assoc int) Spec {
	return Spec{
		Tech: tech.New(tech.Node32), RAM: tech.SRAM,
		CapacityBytes: capBytes, OutputBits: outBits, AssocReadout: assoc,
	}
}

func TestEnumerateFindsSolutions(t *testing.T) {
	banks := Enumerate(specSRAM(1<<20, 512, 1)) // 1MB, 64B line
	if len(banks) < 10 {
		t.Fatalf("only %d organizations found for 1MB SRAM", len(banks))
	}
	for _, b := range banks {
		if b.AccessTime <= 0 || b.Area <= 0 || b.EReadTotal() <= 0 || b.Leakage <= 0 {
			t.Fatalf("invalid bank %v: %+v", b.Org, b)
		}
		if b.AreaEff <= 0 || b.AreaEff >= 1 {
			t.Fatalf("area efficiency %g out of (0,1) for %v", b.AreaEff, b.Org)
		}
		stored := int64(4*b.Org.Rows*b.Org.Cols) * int64(b.Org.Mats)
		if stored < b.Spec.CapacityBytes*8 {
			t.Fatalf("org %v stores %d bits < capacity", b.Org, stored)
		}
	}
}

func TestBuildRejectsBadSpecs(t *testing.T) {
	if _, err := Build(Spec{}, Org{}); err == nil {
		t.Error("empty spec should fail")
	}
	s := specSRAM(1<<20, 512, 1)
	if _, err := Build(s, Org{Rows: 256, Cols: 256, Mux: 1, Mats: 0, MatsPerSubbank: 0}); err == nil {
		t.Error("zero mats should fail")
	}
	// Subbank narrower than the output requirement.
	if _, err := Build(s, Org{Rows: 256, Cols: 64, Mux: 64, Mats: 16, MatsPerSubbank: 1, Subbanks: 16}); err == nil {
		t.Error("insufficient output width should fail")
	}
}

func TestTradeoffSmallVsLargeSubarrays(t *testing.T) {
	// Small subarrays: faster random cycle; large subarrays: better
	// area efficiency. Verify the enumeration exposes this tradeoff.
	banks := Enumerate(specSRAM(4<<20, 512, 1))
	var bestCycle, bestEff *Bank
	for _, b := range banks {
		if bestCycle == nil || b.RandomCycle < bestCycle.RandomCycle {
			bestCycle = b
		}
		if bestEff == nil || b.AreaEff > bestEff.AreaEff {
			bestEff = b
		}
	}
	if bestCycle.Org.Rows >= bestEff.Org.Rows {
		t.Errorf("fastest-cycle org %v should use fewer rows than densest %v", bestCycle.Org, bestEff.Org)
	}
	if bestEff.AreaEff < 0.4 {
		t.Errorf("densest organization only %.2f efficient", bestEff.AreaEff)
	}
}

func TestInterleaveCycleBelowRandomCycleDRAM(t *testing.T) {
	// For DRAM, multisubbank interleaving must beat the random cycle
	// (that is its whole point, Section 2.3.4).
	s := Spec{Tech: tech.New(tech.Node32), RAM: tech.LPDRAM,
		CapacityBytes: 8 << 20, OutputBits: 512, AssocReadout: 1, MaxPipelineStages: 6}
	banks := Enumerate(s)
	if len(banks) == 0 {
		t.Fatal("no organizations")
	}
	ok := false
	for _, b := range banks {
		if b.InterleaveCycle < b.RandomCycle {
			ok = true
			break
		}
	}
	if !ok {
		t.Error("no organization interleaves faster than its random cycle")
	}
}

func TestPipelineStageLimit(t *testing.T) {
	s := specSRAM(32<<20, 512, 1)
	s.MaxPipelineStages = 3
	banks := Enumerate(s)
	for _, b := range banks {
		if b.PipelineStages > 3 {
			t.Fatalf("org %v uses %d stages > limit 3", b.Org, b.PipelineStages)
		}
	}
}

func TestPageConstraint(t *testing.T) {
	// An 8Kb page must pin the sensed width: MatsPerSubbank*4*Cols == 8192.
	s := Spec{Tech: tech.New(tech.Node32), RAM: tech.COMMDRAM,
		CapacityBytes: 64 << 20, OutputBits: 64, AssocReadout: 1, PageBits: 8192}
	banks := Enumerate(s)
	if len(banks) == 0 {
		t.Fatal("no organizations satisfy the page constraint")
	}
	for _, b := range banks {
		if got := b.Org.MatsPerSubbank * 4 * b.Org.Cols; got != 8192 {
			t.Fatalf("org %v senses %d bits, want 8192", b.Org, got)
		}
	}
}

func TestSleepTransistorsCutLeakage(t *testing.T) {
	s := specSRAM(16<<20, 512, 1)
	on := s
	on.SleepTransistors = true
	b1, err1 := Build(s, OrgFor(s, 512, 512, 1))
	b2, err2 := Build(on, OrgFor(on, 512, 512, 1))
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if b2.Leakage >= b1.Leakage*0.75 {
		t.Errorf("sleep transistors saved too little: %g vs %g", b2.Leakage, b1.Leakage)
	}
	if b2.Leakage <= b1.Leakage*0.3 {
		t.Errorf("sleep transistors saved implausibly much: %g vs %g", b2.Leakage, b1.Leakage)
	}
}

func TestRepeaterSlackSavesEnergy(t *testing.T) {
	s := specSRAM(16<<20, 512, 1)
	relaxed := s
	relaxed.RepeaterSlack = 0.5
	o := OrgFor(s, 512, 512, 1)
	b1, err1 := Build(s, o)
	b2, err2 := Build(relaxed, o)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if b2.AccessTime <= b1.AccessTime {
		t.Error("slack should slow the access down")
	}
	if b2.EReadTotal() >= b1.EReadTotal() {
		t.Error("slack should cut read energy")
	}
}

func TestCapacityScaling(t *testing.T) {
	// A bigger bank with the same organization style is bigger,
	// slower and leakier.
	small, err1 := Build(specSRAM(1<<20, 512, 1), OrgFor(specSRAM(1<<20, 512, 1), 256, 256, 1))
	big, err2 := Build(specSRAM(16<<20, 512, 1), OrgFor(specSRAM(16<<20, 512, 1), 256, 256, 1))
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if big.Area <= small.Area || big.AccessTime <= small.AccessTime || big.Leakage <= small.Leakage {
		t.Error("capacity scaling violated")
	}
}

func TestAssociativityWidensReadout(t *testing.T) {
	// Normal-mode readout of 8 ways must move more energy than a
	// sequential (1-way) readout of the same array.
	sSeq := specSRAM(1<<20, 512, 1)
	sNorm := specSRAM(1<<20, 512, 8)
	bSeq, err1 := Build(sSeq, OrgFor(sSeq, 256, 512, 1))
	bNorm, err2 := Build(sNorm, OrgFor(sNorm, 256, 512, 1))
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if bNorm.ERead <= bSeq.ERead {
		t.Errorf("8-way readout energy %g not above 1-way %g", bNorm.ERead, bSeq.ERead)
	}
}

func TestDRAMBankHasRefresh(t *testing.T) {
	s := Spec{Tech: tech.New(tech.Node32), RAM: tech.LPDRAM,
		CapacityBytes: 8 << 20, OutputBits: 512, AssocReadout: 1}
	b, err := Build(s, OrgFor(s, 512, 512, 1))
	if err != nil {
		t.Fatal(err)
	}
	if b.RefreshPower <= 0 {
		t.Error("LP-DRAM bank must burn refresh power")
	}
	sr := specSRAM(8<<20, 512, 1)
	bs, err := Build(sr, OrgFor(sr, 512, 512, 1))
	if err != nil {
		t.Fatal(err)
	}
	if bs.RefreshPower != 0 {
		t.Error("SRAM bank must not burn refresh power")
	}
}

func TestOrgString(t *testing.T) {
	o := Org{Rows: 256, Cols: 512, Mux: 4, Mats: 16, MatsPerSubbank: 4, Subbanks: 4}
	if o.String() == "" {
		t.Error("empty Org.String()")
	}
}

func TestPropertyEnumeratedBanksConsistent(t *testing.T) {
	banks := Enumerate(specSRAM(2<<20, 512, 1))
	if len(banks) == 0 {
		t.Fatal("no banks")
	}
	f := func(i uint16) bool {
		b := banks[int(i)%len(banks)]
		fin := func(v float64) bool { return v > 0 && !math.IsNaN(v) && !math.IsInf(v, 0) }
		return fin(b.AccessTime) && fin(b.RandomCycle) && fin(b.InterleaveCycle) &&
			fin(b.Area) && fin(b.EReadTotal()) && fin(b.Leakage) &&
			b.InterleaveCycle <= b.AccessTime+1e-15 &&
			b.Org.Mats == b.Org.Subbanks*b.Org.MatsPerSubbank
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestOrgForConsistencyProperty(t *testing.T) {
	// Property: every Org that Build accepts satisfies the invariants
	// the model relies on (mat count divisibility, output width,
	// page width).
	s := Spec{Tech: tech.New(tech.Node32), RAM: tech.COMMDRAM,
		CapacityBytes: 32 << 20, OutputBits: 512, AssocReadout: 1, PageBits: 8192}
	f := func(r, c, m uint8) bool {
		rows := 64 << (r % 6)
		cols := 64 << (c % 5)
		mux := 1 << (m % 6)
		o := OrgFor(s, rows, cols, mux)
		b, err := Build(s, o)
		if err != nil {
			return true // rejection is fine
		}
		if b.Org.Mats != b.Org.Subbanks*b.Org.MatsPerSubbank {
			return false
		}
		if b.Org.MatsPerSubbank*4*b.Org.Cols != s.PageBits {
			return false
		}
		return int64(b.Org.Mats)*int64(4*rows*cols) >= s.CapacityBytes*8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestEnumerateAllRAMTypes(t *testing.T) {
	for _, ram := range []tech.RAMType{tech.SRAM, tech.LPDRAM, tech.COMMDRAM} {
		s := Spec{Tech: tech.New(tech.Node32), RAM: ram,
			CapacityBytes: 4 << 20, OutputBits: 512, AssocReadout: 1}
		banks := Enumerate(s)
		if len(banks) == 0 {
			t.Errorf("%v: no organizations", ram)
		}
		for _, b := range banks {
			if ram.IsDRAM() && b.Mat.TRestore <= 0 {
				t.Errorf("%v: DRAM bank without restore phase", ram)
				break
			}
			if !ram.IsDRAM() && b.RefreshPower != 0 {
				t.Errorf("%v: SRAM bank with refresh power", ram)
				break
			}
		}
	}
}

func TestHtreeDelayGrowsWithCapacity(t *testing.T) {
	// Bigger banks have longer H-trees.
	mk := func(capMB int64) *Bank {
		s := specSRAM(capMB<<20, 512, 1)
		b, err := Build(s, OrgFor(s, 256, 256, 1))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	small, big := mk(1), mk(16)
	if big.HtreeInDelay <= small.HtreeInDelay {
		t.Errorf("16x capacity should lengthen the H-tree: %g vs %g",
			big.HtreeInDelay, small.HtreeInDelay)
	}
}

func TestAreaBreakdownConsistent(t *testing.T) {
	s := specSRAM(8<<20, 512, 1)
	b, err := Build(s, OrgFor(s, 256, 256, 1))
	if err != nil {
		t.Fatal(err)
	}
	if b.MatsArea <= 0 || b.WireArea <= 0 {
		t.Fatal("area breakdown must be positive")
	}
	if got := b.MatsArea + b.WireArea; math.Abs(got-b.Area)/b.Area > 1e-9 {
		t.Errorf("breakdown %g != total %g", got, b.Area)
	}
	if b.WireArea >= b.MatsArea {
		t.Error("wiring should not dominate the mats for a dense SRAM bank")
	}
}

func TestEnumerateContextWorkerEquivalence(t *testing.T) {
	// Parallel enumeration must reproduce the serial scan exactly:
	// same banks, same order, same counters, regardless of pool size.
	specs := map[string]Spec{
		"sram":  specSRAM(4<<20, 512, 8),
		"ddram": {Tech: tech.New(tech.Node45), RAM: tech.COMMDRAM, CapacityBytes: 16 << 20, OutputBits: 512, PageBits: 8192},
	}
	for name, spec := range specs {
		serial, cSerial, err := EnumerateContext(context.Background(), spec, 1)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		for _, workers := range []int{2, 4, 8, 16} {
			par, cPar, err := EnumerateContext(context.Background(), spec, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if cPar != cSerial {
				t.Fatalf("%s workers=%d counters %+v != serial %+v", name, workers, cPar, cSerial)
			}
			if len(par) != len(serial) {
				t.Fatalf("%s workers=%d found %d banks, serial %d", name, workers, len(par), len(serial))
			}
			for i := range par {
				if !reflect.DeepEqual(par[i], serial[i]) {
					t.Fatalf("%s workers=%d bank %d (%v) differs from serial (%v)",
						name, workers, i, par[i].Org, serial[i].Org)
				}
			}
		}
	}
}

func TestEnumerateCountersInvariant(t *testing.T) {
	spec := specSRAM(1<<20, 512, 4)
	banks, c, err := EnumerateContext(context.Background(), spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Considered != c.PrunedTotal()+c.Built+c.BuildErrors {
		t.Fatalf("counter accounting broken: %+v (pruned total %d)", c, c.PrunedTotal())
	}
	if int64(len(banks)) != c.Built {
		t.Fatalf("built %d banks but counter says %d", len(banks), c.Built)
	}
	if c.PrunedTotal() == 0 {
		t.Fatal("precheck pruned nothing; pruning is not engaged")
	}
	if c.Considered != int64(len(enumRows)*len(enumCols)*len(enumMux)) {
		t.Fatalf("considered %d, want full grid %d", c.Considered, len(enumRows)*len(enumCols)*len(enumMux))
	}
}

func TestEnumerateContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := EnumerateContext(ctx, specSRAM(1<<20, 512, 1), 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
