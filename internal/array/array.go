// Package array models one bank of a CACTI-D memory: a grid of mats
// connected by repeated H-tree address and data networks, organized
// into subbanks (rows of mats that activate together). It enumerates
// the internal partitioning choices (subarray rows/columns, column
// mux degree) that CACTI-D's optimizer searches over, and evaluates
// area, timing (access, random cycle, multisubbank interleave cycle),
// energy, leakage and refresh for each organization.
//
// Enumeration is the solver's hot path: EnumerateContext shards the
// (rows, cols) grid across a bounded worker pool, prunes infeasible
// organizations with cheap integer/signal-margin prechecks before any
// circuit modeling, and reuses the mux-independent mat model
// (mat.Shared) across the column-mux inner loop. The merged output is
// byte-identical to a serial scan of the same grid.
package array

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"cactid/internal/circuit"
	"cactid/internal/mat"
	"cactid/internal/tech"
)

// Spec is the input specification of a single bank.
type Spec struct {
	Tech *tech.Technology
	RAM  tech.RAMType

	// CapacityBytes is the data capacity of the bank.
	CapacityBytes int64

	// OutputBits is the number of bits the bank must deliver per
	// access (for a cache data array, blocksize*8; for a tag array,
	// the tag width; for a main-memory DRAM, the internal prefetch
	// width).
	OutputBits int

	// AssocReadout is the number of associative ways read in
	// parallel (normal access mode reads all ways and late-selects;
	// sequential access and plain memories use 1).
	AssocReadout int

	// RouteAllWays routes every way over the data H-tree instead of
	// way-selecting at the subbank edge (the "fast" access mode:
	// data for all ways reaches the bank edge with the tags, at the
	// cost of AssocReadout times the H-tree switching energy).
	RouteAllWays bool

	// PageBits, when positive, constrains the number of sense
	// amplifiers activated per access (the DRAM page size,
	// Section 2.1): subbank width is chosen so that exactly PageBits
	// columns are sensed.
	PageBits int

	// MaxPipelineStages bounds the access-path pipelining used to
	// improve the multisubbank interleave cycle time (the LLC study
	// uses 6). Zero means 8.
	MaxPipelineStages int

	// RepeaterSlack is the paper's "max repeater delay constraint":
	// 0 gives delay-optimal repeaters; larger values trade delay for
	// energy.
	RepeaterSlack float64

	// SleepTransistors halves the leakage of all mats not activated
	// during an access (modeled for the Xeon L3 validation).
	SleepTransistors bool

	// Ports is the number of independent read/write ports (SRAM
	// only); zero means 1.
	Ports int
}

// Org is one internal organization choice.
type Org struct {
	Rows int // wordlines per subarray
	Cols int // columns per subarray
	Mux  int // column mux degree

	MatsPerSubbank int // mats activated together
	Subbanks       int // independently addressable subbanks sharing the H-tree
	Mats           int // total mats = MatsPerSubbank * Subbanks
}

func (o Org) String() string {
	return fmt.Sprintf("%dx%d mux%d (%d mats = %d subbanks x %d)",
		o.Rows, o.Cols, o.Mux, o.Mats, o.Subbanks, o.MatsPerSubbank)
}

// Bank is an evaluated organization.
type Bank struct {
	Spec Spec
	Org  Org
	Mat  *mat.Mat

	// Geometry.
	Width, Height float64
	Area          float64
	AreaEff       float64
	MatsArea      float64 // area occupied by mats (cells + local periphery)
	WireArea      float64 // H-tree wiring and repeaters

	// Timing (s).
	AccessTime      float64 // address in + mat + data out
	RandomCycle     float64 // back-to-back accesses to one subbank
	InterleaveCycle float64 // accesses interleaved across subbanks
	HtreeInDelay    float64
	HtreeOutDelay   float64
	PipelineStages  int

	// Per-access energy (J).
	EActivate  float64 // row activation share (page open for DRAM)
	ERead      float64 // column read incl. data return
	EWrite     float64
	EPrecharge float64

	// Standby power (W).
	Leakage      float64
	RefreshPower float64
}

// EReadTotal returns the total energy of a random read access
// (activate + read + precharge), the quantity CACTI-D's optimizer
// weights as "dynamic energy".
func (b *Bank) EReadTotal() float64 { return b.EActivate + b.ERead + b.EPrecharge }

// ErrNoOrganization is returned when no valid internal organization
// exists for a spec.
var ErrNoOrganization = errors.New("array: no valid organization for spec")

func pow2sUpTo(lo, hi int) []int {
	var out []int
	for v := lo; v <= hi; v *= 2 {
		out = append(out, v)
	}
	return out
}

// The Section 2.4 enumeration grid: subarray rows and columns from 32
// to 8192, column mux degrees from 1 to 1024. Precomputed once — the
// enumeration loop allocates nothing for the grid itself.
var (
	enumRows = pow2sUpTo(32, 8192)
	enumCols = pow2sUpTo(32, 8192)
	enumMux  = pow2sUpTo(1, 1024)
)

// Counters audits one enumeration: every (rows, cols, mux) triple of
// the grid lands in exactly one bucket, so
// Considered == PrunedTotal() + Built + BuildErrors.
type Counters struct {
	Considered int64 `json:"considered"` // grid triples examined

	// Prune buckets, in precheck order.
	PrunedMux    int64 `json:"pruned_mux"`           // mux degree exceeds columns
	PrunedGeom   int64 `json:"pruned_geometry"`      // no valid subbank shape / divisibility
	PrunedPage   int64 `json:"pruned_page"`          // DRAM page-size constraint
	PrunedOutput int64 `json:"pruned_output_width"`  // subbank narrower than required output
	PrunedWaste  int64 `json:"pruned_overprovision"` // >2x capacity overprovision
	PrunedMargin int64 `json:"pruned_signal_margin"` // DRAM bitline signal below sense minimum

	// Branch-and-bound buckets (EnumerateBounded only; zero on the
	// plain path). Shard-level prunes discard the whole mux loop of a
	// (rows, cols) pair from its mux-independent area lower bound;
	// point-level prunes discard a single mux choice from its refined
	// area or access-time bound.
	PrunedBoundShard int64 `json:"pruned_bound_shard"`
	PrunedBoundPoint int64 `json:"pruned_bound_point"`

	Built       int64 `json:"built"`        // fully circuit-modeled organizations
	BuildErrors int64 `json:"build_errors"` // rejections the precheck did not anticipate
}

// PrunedTotal returns the number of organizations rejected before the
// expensive circuit/mat modeling.
func (c Counters) PrunedTotal() int64 {
	return c.PrunedMux + c.PrunedGeom + c.PrunedPage + c.PrunedOutput + c.PrunedWaste + c.PrunedMargin +
		c.PrunedBoundShard + c.PrunedBoundPoint
}

// Add accumulates another enumeration's counters: core combines the
// data- and tag-array scans with it, and EnumerateContext merges the
// per-shard counters through the same single code path.
func (c *Counters) Add(o Counters) {
	c.Considered += o.Considered
	c.PrunedMux += o.PrunedMux
	c.PrunedGeom += o.PrunedGeom
	c.PrunedPage += o.PrunedPage
	c.PrunedOutput += o.PrunedOutput
	c.PrunedWaste += o.PrunedWaste
	c.PrunedMargin += o.PrunedMargin
	c.PrunedBoundShard += o.PrunedBoundShard
	c.PrunedBoundPoint += o.PrunedBoundPoint
	c.Built += o.Built
	c.BuildErrors += o.BuildErrors
}

// Enumerate evaluates every valid organization for spec, returning
// them in deterministic grid order (rows-major, then cols, then mux).
// Invalid combinations (signal margin, divisibility) are skipped
// silently. It is EnumerateContext with the default worker pool.
func Enumerate(spec Spec) []*Bank {
	banks, _, _ := EnumerateContext(context.Background(), spec, 0)
	return banks
}

// EnumerateContext evaluates every valid organization for spec on a
// bounded worker pool (workers <= 0 means GOMAXPROCS), returning them
// in the same deterministic grid order as a serial scan, plus the
// prune/build counters. A cancelled context aborts the scan and
// returns ctx.Err() with nil banks.
func EnumerateContext(ctx context.Context, spec Spec, workers int) ([]*Bank, Counters, error) {
	bc, err := newBuildCtx(spec)
	if err != nil {
		return nil, Counters{}, err
	}
	return enumerateWith(ctx, bc, workers, NoLimits())
}

// enumerateWith is the shared engine behind EnumerateContext
// (NoLimits) and Prescanned.Enumerate (caller-derived pruning
// thresholds).
func enumerateWith(ctx context.Context, bc *buildCtx, workers int, lim Limits) ([]*Bank, Counters, error) {
	type shard struct{ rows, cols int }
	shards := make([]shard, 0, len(enumRows)*len(enumCols))
	for _, rows := range enumRows {
		for _, cols := range enumCols {
			shards = append(shards, shard{rows, cols})
		}
	}
	results := make([]shardResult, len(shards))

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(shards) {
		workers = len(shards)
	}
	if workers == 1 {
		for i, sh := range shards {
			if ctx.Err() != nil {
				break
			}
			results[i] = enumerateShard(bc, sh.rows, sh.cols, lim)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(shards) || ctx.Err() != nil {
						return
					}
					results[i] = enumerateShard(bc, shards[i].rows, shards[i].cols, lim)
				}
			}()
		}
		wg.Wait()
	}

	var c Counters
	total := 0
	for i := range results {
		total += len(results[i].banks)
		c.Add(results[i].counters)
	}
	if err := ctx.Err(); err != nil {
		return nil, c, err
	}
	// Merge in shard order: shards enumerate (rows, cols) in the same
	// order as the serial triple loop, and each shard's banks are in
	// ascending mux order, so the concatenation reproduces the serial
	// output exactly.
	out := make([]*Bank, 0, total)
	for i := range results {
		out = append(out, results[i].banks...)
	}
	return out, c, nil
}

type shardResult struct {
	banks    []*Bank
	counters Counters
}

// enumerateShard scans the column-mux inner loop for one (rows, cols)
// pair in two passes. Pass 1 classifies every mux point with integer
// arithmetic only (no circuit modeling) and collects the survivors;
// pass 2 builds the mux-independent mat model once and evaluates the
// survivors into slab-allocated []mat.Mat / []Bank blocks sized
// exactly from the post-precheck survivor count, so the shard does one
// allocation per slab instead of one per point. The emitted banks stay
// in ascending mux order, preserving the serial-scan byte identity.
func enumerateShard(bc *buildCtx, rows, cols int, lim Limits) shardResult {
	var r shardResult

	// Pass 1: integer prechecks over the mux loop — or the prescan's
	// stored classification when one exists (the survivor list is
	// copied to scratch space because the point-level bound filter
	// below compacts it in place).
	var survBuf [16]Org
	surv := survBuf[:0]
	if bc.scan != nil {
		sc := &bc.scan[(bits.TrailingZeros(uint(rows))-5)*len(enumCols)+bits.TrailingZeros(uint(cols))-5]
		r.counters = sc.counters
		surv = append(surv, sc.surv...)
	} else {
		for _, mux := range enumMux {
			r.counters.Considered++
			if mux > cols {
				r.counters.PrunedMux++
				continue
			}
			o := OrgFor(bc.spec, rows, cols, mux)
			if reason := bc.precheck(o); reason != prOK {
				r.counters.bump(reason)
				continue
			}
			surv = append(surv, o)
		}
	}
	if len(surv) == 0 {
		return r
	}

	// DRAM signal-margin fast path: the closed-form check mirrors
	// NewShared's ErrSignalMargin test bit for bit, so the shard can be
	// charged to the same counter bucket without paying for the model.
	if !bc.marginOK(rows) {
		r.counters.PrunedMargin += int64(len(surv))
		return r
	}

	// Shard-level bounds, two tiers: when the cheap geometric lower
	// bounds — or, failing those, the tightened closed-form bounds —
	// already violate the limits, every precheck survivor is provably
	// outside the staged filter's reach; discard the whole shard
	// before mat.NewShared runs.
	if lim.active() {
		pruned := false
		if areaLB, accLB := bc.shardBounds(rows, cols); lim.prune(areaLB, accLB) {
			pruned = true
		} else if areaLB, accLB := bc.shardBoundsTight(rows, cols); lim.prune(areaLB, accLB) {
			pruned = true
		}
		if pruned {
			r.counters.PrunedBoundShard += int64(len(surv))
			return r
		}

		// Lite point tier: per-point bounds from the memoized shard
		// lower bound alone — the point's own floorplan fold gives an
		// H-tree length floor without any circuit modeling. When it
		// clears the whole shard, mat.NewShared is never paid for.
		lb := bc.shardLBFor(rows, cols)
		kept := surv[:0]
		for _, o := range surv {
			if areaLB, accLB := bc.pointBoundsLite(lb, o); lim.prune(areaLB, accLB) {
				r.counters.PrunedBoundPoint++
				continue
			}
			kept = append(kept, o)
		}
		surv = kept
		if len(surv) == 0 {
			return r
		}
	}

	// Pass 2: batch-build the survivors against one shared mat model.
	sh, shErr := bc.sharedFor(rows, cols)
	if shErr != nil {
		// The serial scan charges the shared-model failure to every
		// surviving mux point in turn; keep that accounting.
		if errors.Is(shErr, mat.ErrSignalMargin) {
			r.counters.PrunedMargin += int64(len(surv))
		} else {
			r.counters.BuildErrors += int64(len(surv))
		}
		return r
	}

	// Point-level bounds: with the memoized mux parts in hand the
	// mat's access time and footprint are known exactly; discard
	// points before sizing the output slabs so the slabs hold only
	// what will actually be built.
	if lim.active() {
		kept := surv[:0]
		for _, o := range surv {
			parts := bc.muxPartsFor(sh, cols, o.Mux)
			if areaLB, accLB := bc.pointBounds(sh, parts, o); lim.prune(areaLB, accLB) {
				r.counters.PrunedBoundPoint++
				continue
			}
			// Final tier: the exact bank metrics (finishInto's own
			// floats, H-tree solved for real). Anything the AM-GM tier
			// above lets through but the limits exclude is caught here,
			// so only true filter candidates reach BuildInto.
			if area, acc := bc.pointExact(sh, parts, o); lim.prune(area, acc) {
				r.counters.PrunedBoundPoint++
				continue
			}
			kept = append(kept, o)
		}
		surv = kept
		if len(surv) == 0 {
			return r
		}
	}

	mats := make([]mat.Mat, len(surv))
	banks := make([]Bank, len(surv))
	r.banks = make([]*Bank, 0, len(surv))
	n := 0
	for _, o := range surv {
		parts := bc.muxPartsFor(sh, cols, o.Mux)
		if err := sh.BuildInto(o.Mux, parts, &mats[n]); err != nil {
			r.counters.BuildErrors++
			continue
		}
		r.counters.Built++
		bc.finishInto(o, &mats[n], &banks[n])
		r.banks = append(r.banks, &banks[n])
		n++
	}
	return r
}

// OrgFor derives the full organization implied by a (rows, cols, mux)
// choice under spec's output and page constraints. The returned Org
// may be invalid; Build validates.
func OrgFor(spec Spec, rows, cols, mux int) Org {
	o := Org{Rows: rows, Cols: cols, Mux: mux}
	bitsPerMat := 4 * rows * cols
	capacityBits := spec.CapacityBytes * 8
	o.Mats = int((capacityBits + int64(bitsPerMat) - 1) / int64(bitsPerMat))

	internalOut := spec.OutputBits * max(1, spec.AssocReadout)
	if spec.PageBits > 0 {
		// DRAM page constraint: sensed columns per subbank ==
		// PageBits (all columns of the activated mats are sensed).
		o.MatsPerSubbank = spec.PageBits / (4 * cols)
	} else {
		bitsPerMatOut := 4 * cols / mux
		o.MatsPerSubbank = (internalOut + bitsPerMatOut - 1) / bitsPerMatOut
	}
	if o.MatsPerSubbank < 1 {
		o.MatsPerSubbank = 0 // invalid; Build rejects
		return o
	}
	o.Subbanks = o.Mats / o.MatsPerSubbank
	return o
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// pruneReason classifies why an organization is rejected before
// circuit modeling.
type pruneReason int

const (
	prOK pruneReason = iota
	prGeom
	prPage
	prOutput
	prWaste
)

func (c *Counters) bump(r pruneReason) {
	switch r {
	case prGeom:
		c.PrunedGeom++
	case prPage:
		c.PrunedPage++
	case prOutput:
		c.PrunedOutput++
	case prWaste:
		c.PrunedWaste++
	}
}

// buildCtx caches every organization-independent quantity of Build:
// resolved technology pointers, address/data widths, and the bank-edge
// output driver. Apart from the muxParts memo — a monotonic cache of
// pure values — it is immutable after newBuildCtx and shared across
// enumeration workers.
type buildCtx struct {
	spec Spec
	cell *tech.CellParams
	per  *tech.DeviceParams
	wire *tech.WireParams

	internalOut int
	addrBits    int
	dataBits    int
	outDrv      circuit.Result

	// bnd holds the spec-level constants of the branch-and-bound
	// lower bounds (see bound.go).
	bnd bounder

	// marginFail memoizes mat.SignalMarginOK per enumRows slot so the
	// enumeration can charge DRAM margin failures without running
	// NewShared; nil for cell types the check never fails for.
	marginFail []bool

	// muxParts memoizes mat.Shared.MuxParts across (rows, cols)
	// shards: the sense-amp strip and column-select decoder depend
	// only on (tech, RAM, ports, cols, mux) — not rows — so one entry
	// per (cols, mux) grid slot serves all nine rows-shards of that
	// column width. Slots are published with atomic pointers; racing
	// workers compute identical values (MuxParts is a pure function of
	// the spec and the slot key), so last-write-wins is benign.
	muxParts []atomic.Pointer[mat.MuxParts]

	// shardLB memoizes the tightened closed-form shard bounds
	// (mat.NewShardLB) per (rows, cols) slot; the prescan warms it for
	// the enumeration. Same benign-race publication as muxParts.
	shardLB []atomic.Pointer[mat.ShardLB]

	// shared memoizes the mux-independent mat model (or its error) per
	// (rows, cols) slot, so probe builds and the enumeration evaluate
	// each shard's NewShared once. Same benign-race publication.
	shared []atomic.Pointer[sharedEntry]

	// exactPt memoizes pointExact per (rows, cols, mux) slot: the
	// solver's exact-minimum walks and the enumeration's final pruning
	// tier visit overlapping points, and the H-tree repeated-wire
	// solution inside is the only per-point cost worth skipping. Same
	// benign-race publication.
	exactPt []atomic.Pointer[pointMetrics]

	// scan, when non-nil, holds the full precheck classification of
	// the grid (one entry per (rows, cols) slot, filled serially by
	// Prescan); the enumeration reads it instead of rescanning the mux
	// loop. Read-only once published.
	scan []shardScan
}

// shardScan is one (rows, cols) slot of a prescan: the precheck
// counter buckets of its mux loop and the surviving organizations in
// ascending mux order.
type shardScan struct {
	counters Counters
	surv     []Org
}

type sharedEntry struct {
	sh  *mat.Shared
	err error
}

// sharedFor returns the memoized mux-independent mat model for a
// (rows, cols) grid slot, computing and publishing it on first use.
func (bc *buildCtx) sharedFor(rows, cols int) (*mat.Shared, error) {
	ri := bits.TrailingZeros(uint(rows)) - 5
	ci := bits.TrailingZeros(uint(cols)) - 5
	slot := &bc.shared[ri*len(enumCols)+ci]
	if e := slot.Load(); e != nil {
		return e.sh, e.err
	}
	sh, err := mat.NewShared(mat.Config{
		Tech: bc.spec.Tech, RAM: bc.spec.RAM,
		Rows: rows, Cols: cols, Ports: bc.spec.Ports,
	})
	slot.Store(&sharedEntry{sh: sh, err: err})
	return sh, err
}

// muxPartsFor returns the memoized mux-dependent circuit results for a
// (cols, mux) grid slot, computing and publishing them on first use.
func (bc *buildCtx) muxPartsFor(sh *mat.Shared, cols, mux int) *mat.MuxParts {
	// enumCols starts at 32 = 2^5 and enumMux at 1 = 2^0; both are
	// powers of two, so the slot index is positional in the grid.
	ci := bits.TrailingZeros(uint(cols)) - 5
	mi := bits.TrailingZeros(uint(mux))
	slot := &bc.muxParts[ci*len(enumMux)+mi]
	if p := slot.Load(); p != nil {
		return p
	}
	p := sh.MuxParts(mux)
	slot.Store(&p)
	return &p
}

func newBuildCtx(spec Spec) (*buildCtx, error) {
	if spec.CapacityBytes <= 0 || spec.OutputBits <= 0 {
		return nil, fmt.Errorf("array: bad spec: capacity %d, output %d", spec.CapacityBytes, spec.OutputBits)
	}
	t := spec.Tech
	cell := t.Cell(spec.RAM)
	per := t.Device(cell.PeripheralDevice)
	bc := &buildCtx{
		spec: spec,
		cell: cell,
		per:  per,
		wire: t.Wire(tech.WireGlobal),
	}
	bc.internalOut = spec.OutputBits * max(1, spec.AssocReadout)
	bc.addrBits = int(math.Ceil(math.Log2(float64(spec.CapacityBytes*8)))) + 8 // address + control
	// Way select happens at the subbank edge, so only OutputBits
	// travel the data H-tree even when all ways are read out —
	// unless RouteAllWays (fast mode) ships every way to the edge.
	bc.dataBits = spec.OutputBits
	if spec.RouteAllWays {
		bc.dataBits = bc.internalOut
	}
	// Output drivers at the bank edge.
	bc.outDrv = circuit.TristateDriver(per, 60e-15)
	bc.muxParts = make([]atomic.Pointer[mat.MuxParts], len(enumCols)*len(enumMux))
	bc.shardLB = make([]atomic.Pointer[mat.ShardLB], len(enumRows)*len(enumCols))
	bc.shared = make([]atomic.Pointer[sharedEntry], len(enumRows)*len(enumCols))
	bc.exactPt = make([]atomic.Pointer[pointMetrics], len(enumRows)*len(enumCols)*len(enumMux))
	bc.bnd = newBounder(bc)
	if cell.Kind == tech.Kind1T1C && spec.Ports <= 1 {
		bc.marginFail = make([]bool, len(enumRows))
		for i, rows := range enumRows {
			bc.marginFail[i] = !mat.SignalMarginOK(t, spec.RAM, spec.Ports, rows)
		}
	}
	return bc, nil
}

// marginOK reports (from the memo) whether a row count passes the DRAM
// signal-margin test; rows outside the enumeration grid fall through
// to NewShared's own check.
func (bc *buildCtx) marginOK(rows int) bool {
	if bc.marginFail == nil {
		return true
	}
	i := bits.TrailingZeros(uint(rows)) - 5
	if i < 0 || i >= len(bc.marginFail) {
		return true
	}
	return !bc.marginFail[i]
}

// precheck runs the cheap integer feasibility tests of Build, in the
// same order, without allocating error values.
func (bc *buildCtx) precheck(o Org) pruneReason {
	if o.MatsPerSubbank < 1 || o.Mats < 1 {
		return prGeom
	}
	if o.MatsPerSubbank > o.Mats || o.Mats%o.MatsPerSubbank != 0 {
		return prGeom
	}
	if bc.spec.PageBits > 0 && o.MatsPerSubbank*4*o.Cols != bc.spec.PageBits {
		return prPage
	}
	if got := o.MatsPerSubbank * 4 * o.Cols / o.Mux; got < bc.internalOut {
		return prOutput
	}
	// Reject gross overprovision (>2x the needed mats) so rounding
	// from non-power-of-two capacities stays tight.
	bitsPerMat := int64(4 * o.Rows * o.Cols)
	if int64(o.Mats)*bitsPerMat > 2*bc.spec.CapacityBytes*8 {
		return prWaste
	}
	return prOK
}

// checkErr formats the descriptive rejection error Build reports for
// a prune reason.
func (bc *buildCtx) checkErr(o Org, r pruneReason) error {
	switch r {
	case prGeom:
		if o.MatsPerSubbank < 1 || o.Mats < 1 {
			return fmt.Errorf("array: org needs at least one mat: %v", o)
		}
		return fmt.Errorf("array: %d mats not divisible into subbanks of %d", o.Mats, o.MatsPerSubbank)
	case prPage:
		return fmt.Errorf("array: subbank senses %d bits, page requires %d", o.MatsPerSubbank*4*o.Cols, bc.spec.PageBits)
	case prOutput:
		return fmt.Errorf("array: subbank delivers %d bits < required %d", o.MatsPerSubbank*4*o.Cols/o.Mux, bc.internalOut)
	case prWaste:
		return fmt.Errorf("array: organization wastes more than half the mats")
	}
	return nil
}

// Build evaluates one organization. It returns an error when the
// organization is infeasible (mat-level signal margin, divisibility,
// or output-width violations).
func Build(spec Spec, o Org) (*Bank, error) {
	bc, err := newBuildCtx(spec)
	if err != nil {
		return nil, err
	}
	if reason := bc.precheck(o); reason != prOK {
		return nil, bc.checkErr(o, reason)
	}
	m, err := mat.New(mat.Config{Tech: spec.Tech, RAM: spec.RAM, Rows: o.Rows, Cols: o.Cols, DegBLMux: o.Mux, Ports: spec.Ports})
	if err != nil {
		return nil, err
	}
	return bc.finish(o, m), nil
}

// finish assembles the bank model around an evaluated mat: floorplan,
// H-tree networks, timing, energy, leakage, refresh and area.
func (bc *buildCtx) finish(o Org, m *mat.Mat) *Bank {
	b := new(Bank)
	bc.finishInto(o, m, b)
	return b
}

// finishInto is finish writing into a caller-owned Bank (the batch
// path evaluates a whole shard into one slab instead of allocating per
// point). The arithmetic is identical to the historical finish.
func (bc *buildCtx) finishInto(o Org, m *mat.Mat, b *Bank) {
	spec := bc.spec
	cell := bc.cell

	*b = Bank{Spec: spec, Org: o, Mat: m}

	// ---- Floorplan ----
	// Fold the mat grid to near-square. Subbank rows are horizontal;
	// multiple subbanks may share a grid row if a subbank is narrow.
	gridX := o.MatsPerSubbank
	gridY := o.Subbanks
	for gridX >= 2*gridY && gridX%2 == 0 {
		gridX /= 2
		gridY *= 2
	}
	for gridY >= 2*gridX && gridY%2 == 0 {
		gridY /= 2
		gridX *= 2
	}
	matsW := float64(gridX) * m.Width
	matsH := float64(gridY) * m.Height

	// ---- H-tree networks ----
	// Address in to the farthest subbank and data back out; worst
	// case length is half the perimeter. Address and data trees have
	// identical geometry, so one repeated-wire solution serves both.
	htreeLen := (matsW + matsH) / 2
	htreeWire := circuit.NewRepeatedWire(bc.per, bc.wire, htreeLen, spec.RepeaterSlack)
	b.HtreeInDelay = htreeWire.Res.Delay
	b.HtreeOutDelay = htreeWire.Res.Delay

	addrBits, dataBits := bc.addrBits, bc.dataBits
	outDrv := bc.outDrv

	// ---- Timing ----
	// Input/output latches synchronize the bank to its clock.
	const latchDelay = 30e-12
	b.AccessTime = latchDelay + b.HtreeInDelay + m.AccessTime() + b.HtreeOutDelay + outDrv.Delay + latchDelay
	b.RandomCycle = m.RandomCycleTime()

	// Multisubbank interleaving (Section 2.3.4): the shared H-tree
	// accepts a new access per pipeline beat; sensing is the atomic
	// stage that cannot be split.
	maxStages := spec.MaxPipelineStages
	if maxStages <= 0 {
		maxStages = 8
	}
	atomic := m.TBitline + m.TSense
	segment := math.Max(atomic, b.HtreeInDelay/math.Max(1, float64(htreeWire.NumRep)))
	nStages := int(math.Ceil(b.AccessTime / math.Max(segment, 1e-12)))
	if nStages > maxStages {
		nStages = maxStages
	}
	if nStages < 1 {
		nStages = 1
	}
	b.PipelineStages = nStages
	b.InterleaveCycle = math.Max(b.AccessTime/float64(nStages), atomic)

	// ---- Energy ----
	nAct := float64(o.MatsPerSubbank)
	eAddr := float64(addrBits) * htreeWire.Res.Energy
	eData := float64(dataBits)*htreeWire.Res.Energy + float64(spec.OutputBits)*outDrv.Energy
	b.EActivate = eAddr + nAct*m.EActivate
	b.ERead = nAct*m.ERead + eData
	// A write moves OutputBits through the column path and drives
	// exactly those bitlines; reads of the other ways still occur in
	// normal mode (read-modify-select), hence nAct*ERead.
	b.EWrite = eAddr + float64(dataBits)*htreeWire.Res.Energy +
		nAct*m.ERead + float64(spec.OutputBits)*m.EWritePerBit
	b.EPrecharge = nAct * m.EPrecharge

	// ---- Leakage & refresh ----
	matLeak := float64(o.Mats) * m.Leakage
	if spec.SleepTransistors {
		active := nAct * m.Leakage
		idle := float64(o.Mats-o.MatsPerSubbank) * m.Leakage / 2
		matLeak = active + idle
	}
	wireLeak := (float64(addrBits)*htreeWire.Res.Leakage + float64(dataBits)*htreeWire.Res.Leakage) +
		float64(spec.OutputBits)*outDrv.Leakage
	b.Leakage = matLeak + wireLeak
	// Refresh: every page (row across the subbank) is activated and
	// precharged once per retention period, paying the address
	// distribution overhead per operation. The per-mat page energy is
	// kind-aware (the gain cell adds an explicit writeback, since its
	// read does not restore the row).
	if cell.Kind.NeedsRefresh() {
		ret := cell.RetentionT
		opsPerPeriod := float64(o.Subbanks) * float64(o.Rows)
		ePerOp := eAddr + nAct*m.RefreshRowEnergy()/1 // per page activation
		b.RefreshPower = opsPerPeriod * ePerOp / ret
	}

	// ---- Area ----
	matsArea := float64(o.Mats) * m.Area
	wireArea := float64(addrBits+dataBits) * bc.wire.Pitch * htreeLen
	repArea := float64(addrBits)*htreeWire.Res.Area + float64(dataBits)*htreeWire.Res.Area
	b.MatsArea = matsArea
	b.WireArea = wireArea + repArea
	b.Area = matsArea + wireArea + repArea
	scale := b.Area / (matsW * matsH)
	b.Width = matsW * math.Sqrt(scale)
	b.Height = matsH * math.Sqrt(scale)
	b.AreaEff = float64(o.Mats) * m.CellArea / b.Area
}
