package array

import (
	"context"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"cactid/internal/tech"
)

func boundSpecs() map[string]Spec {
	// The provider-backed specs prove the bound ladder stays admissible
	// for the current-mode (NVM) and gain-cell bitline models, not just
	// the two ITRS kinds the ladder was derived against.
	techOf := func(name string, n tech.Node) *tech.Technology {
		t, err := tech.TechnologyOf(name, n)
		if err != nil {
			panic(err)
		}
		return t
	}
	return map[string]Spec{
		"sram": specSRAM(1<<20, 512, 1),
		"comm-dram": {Tech: tech.New(tech.Node45), RAM: tech.COMMDRAM,
			CapacityBytes: 4 << 20, OutputBits: 512, AssocReadout: 1},
		"stt-ram": {Tech: techOf("stt-ram", tech.Node32), RAM: tech.STTRAM,
			CapacityBytes: 2 << 20, OutputBits: 512, AssocReadout: 1},
		"pcm": {Tech: techOf("pcm", tech.Node45), RAM: tech.PCM,
			CapacityBytes: 2 << 20, OutputBits: 512, AssocReadout: 1},
		"gain-cell": {Tech: techOf("gain-cell", tech.Node32), RAM: tech.GAINCELL,
			CapacityBytes: 2 << 20, OutputBits: 512, AssocReadout: 1},
	}
}

// Every bounding tier must be admissible — at or below the fully
// modeled bank metrics — or the bounded enumeration could discard a
// filter survivor. The final tier must not merely bound but reproduce
// the built metrics bitwise: that equality is what lets the solver
// derive its thresholds from walk minima (DESIGN.md §1.2e).
func TestBoundTiersAdmissible(t *testing.T) {
	for name, spec := range boundSpecs() {
		pre, err := Prescan(spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		banks, _, err := pre.Enumerate(context.Background(), 1, NoLimits())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(banks) == 0 {
			t.Fatalf("%s: no banks", name)
		}
		bc := pre.bc
		for _, b := range banks {
			o := b.Org
			sh, err := bc.sharedFor(o.Rows, o.Cols)
			if err != nil {
				t.Fatalf("%s %v: %v", name, o, err)
			}
			parts := bc.muxPartsFor(sh, o.Cols, o.Mux)
			tiers := []struct {
				tier      string
				area, acc float64
			}{}
			add := func(tier string, area, acc float64) {
				tiers = append(tiers, struct {
					tier      string
					area, acc float64
				}{tier, area, acc})
			}
			aC, accC := bc.shardBounds(o.Rows, o.Cols)
			add("shard-cheap", aC, accC)
			aT, accT := bc.shardBoundsTight(o.Rows, o.Cols)
			add("shard-tight", aT, accT)
			aL, accL := bc.pointBoundsLite(bc.shardLBFor(o.Rows, o.Cols), o)
			add("point-lite", aL, accL)
			aP, accP := bc.pointBounds(sh, parts, o)
			add("point-amgm", aP, accP)
			for _, tr := range tiers {
				if tr.area > b.Area || tr.acc > b.AccessTime {
					t.Errorf("%s %v: %s bound (%g, %g) exceeds built (%g, %g)",
						name, o, tr.tier, tr.area, tr.acc, b.Area, b.AccessTime)
				}
			}
			// The walks order shards by the cheap bound and skip on the
			// tight bound; that is only sound when cheap <= tight.
			if aC > aT || accC > accT {
				t.Errorf("%s %v: cheap shard bound (%g, %g) above tight (%g, %g)",
					name, o, aC, accC, aT, accT)
			}
			if aE, accE := bc.pointExact(sh, parts, o); aE != b.Area || accE != b.AccessTime {
				t.Errorf("%s %v: pointExact (%g, %g) not bitwise equal to built (%g, %g)",
					name, o, aE, accE, b.Area, b.AccessTime)
			}
		}
	}
}

// The exact-minimum walks must return the same floats a full
// enumeration minimizes to — the solver turns them directly into
// pruning thresholds.
func TestWalkMinimaMatchEnumeration(t *testing.T) {
	f := func(capU, outU uint8) bool {
		spec := specSRAM(int64(1)<<(17+capU%6), 128<<(outU%3), 1)
		pre, err := Prescan(spec)
		if err != nil || len(pre.Points) == 0 {
			return true // infeasible specs have nothing to compare
		}
		banks, _, err := pre.Enumerate(context.Background(), 0, NoLimits())
		if err != nil {
			return false
		}
		aMin, okA := pre.MinArea()
		accMin, okAcc := pre.MinAccessWithin(1, 0, math.Inf(1))
		if len(banks) == 0 {
			return !okA && !okAcc
		}
		wantArea, wantAcc := math.Inf(1), math.Inf(1)
		for _, b := range banks {
			wantArea = math.Min(wantArea, b.Area)
			wantAcc = math.Min(wantAcc, b.AccessTime)
		}
		return okA && okAcc && aMin == wantArea && accMin == wantAcc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// A bounded enumeration must keep every bank whose exact metrics pass
// the limits (admissibility guarantees the converse direction), keep
// them byte-identical, and keep the counter accounting invariant with
// the bound buckets engaged.
func TestBoundedEnumerateEquivalence(t *testing.T) {
	for name, spec := range boundSpecs() {
		pre, err := Prescan(spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ctx := context.Background()
		all, _, err := pre.Enumerate(ctx, 0, NoLimits())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		minArea, minAcc := math.Inf(1), math.Inf(1)
		for _, b := range all {
			minArea = math.Min(minArea, b.Area)
			minAcc = math.Min(minAcc, b.AccessTime)
		}
		lim := Limits{MaxAreaLB: minArea * 1.4, MaxAccLB: minAcc * 1.1, AreaGuard: minArea}
		bounded, c, err := pre.Enumerate(ctx, 0, lim)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.Considered != c.PrunedTotal()+c.Built+c.BuildErrors {
			t.Fatalf("%s: counter accounting broken: %+v (pruned total %d)", name, c, c.PrunedTotal())
		}
		if c.PrunedBoundShard+c.PrunedBoundPoint == 0 {
			t.Fatalf("%s: bound pruning not engaged: %+v", name, c)
		}
		if int64(len(bounded)) != c.Built {
			t.Fatalf("%s: built %d banks but counter says %d", name, len(bounded), c.Built)
		}
		byOrg := make(map[Org]*Bank, len(bounded))
		for _, b := range bounded {
			byOrg[b.Org] = b
		}
		for _, b := range all {
			keep := b.Area <= lim.MaxAreaLB && (b.AccessTime <= lim.MaxAccLB || b.Area <= lim.AreaGuard)
			got, ok := byOrg[b.Org]
			if keep && !ok {
				t.Errorf("%s: bank %v passes the limits but was pruned", name, b.Org)
				continue
			}
			if ok && !reflect.DeepEqual(got, b) {
				t.Errorf("%s: bank %v differs between bounded and unbounded runs", name, b.Org)
			}
		}
		for o := range byOrg {
			found := false
			for _, b := range all {
				if b.Org == o {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: bounded run built %v, absent from the unbounded run", name, o)
			}
		}
	}
}
