// Branch-and-bound enumeration: admissible lower bounds on a bank's
// area and access time let whole (rows, cols) shards — and individual
// mux points — be discarded before the expensive mat modeling.
//
// The bounds come at two fidelities. Before mat.NewShared runs, a
// shard-level bound uses only closed-form geometry (mat.GeomLB,
// mat.AccessLB) plus the provable per-meter H-tree delay floor
// (circuit.RepeatedWireDelayLB). Once a shard survives and its Shared
// exists, a point-level bound reuses the exact mux-dependent circuit
// results (the memoized mat.MuxParts) to reproduce the mat's access
// time and footprint exactly, leaving only the H-tree terms bounded.
//
// Both bounds are admissible — bound(point) <= fully-modeled metric —
// because every dropped term is nonnegative and the H-tree length
// satisfies (matsW+matsH)/2 >= sqrt(matsW*matsH) = sqrt(Mats*matArea)
// (AM-GM; the floorplan fold preserves the grid-cell product). The
// derivation and the byte-identity argument for the thresholds the
// solver feeds in live in DESIGN.md §1.2e; admissibility is pinned by
// property tests here and in internal/core.
package array

import (
	"context"
	"math"
	"math/bits"
	"sort"

	"cactid/internal/circuit"
	"cactid/internal/mat"
)

// Limits are the pruning thresholds of one bounded enumeration, in
// data-bank units (area m^2, access time s). The zero-value semantics
// are intentionally unforgiving — use NoLimits for "no pruning".
type Limits struct {
	// MaxAreaLB discards a point when its area lower bound exceeds it.
	MaxAreaLB float64
	// MaxAccLB discards a point when its access-time lower bound
	// exceeds it — but only if the point's area lower bound exceeds
	// AreaGuard, so the bank-area argmin (which anchors the staged
	// filter's stage-1 minimum) provably survives.
	MaxAccLB  float64
	AreaGuard float64
}

// NoLimits disables all bound pruning (EnumerateContext semantics).
func NoLimits() Limits {
	inf := math.Inf(1)
	return Limits{MaxAreaLB: inf, MaxAccLB: inf, AreaGuard: inf}
}

func (l Limits) active() bool {
	return !math.IsInf(l.MaxAreaLB, 1) || !math.IsInf(l.MaxAccLB, 1)
}

// prune reports whether a point with the given lower bounds can be
// discarded without changing the staged filter's output.
func (l Limits) prune(areaLB, accLB float64) bool {
	return areaLB > l.MaxAreaLB || (accLB > l.MaxAccLB && areaLB > l.AreaGuard)
}

// bounder holds the spec-level constants of the lower bounds, computed
// once per enumeration in newBuildCtx.
type bounder struct {
	cellW, cellH float64 // per-cell dimensions (ports-adjusted)
	// Provable H-tree delay floor: delay(L) >= max(htreeFixed +
	// htreeLin*L, htreePerLen*L). The affine branch dominates short
	// wires (repeater self-delay), the rate branch long ones (AM-GM).
	htreeFixed  float64
	htreeLin    float64
	htreePerLen float64
	wirePerLen  float64 // H-tree wire area per meter (addr+data tracks)
	fixedAcc    float64 // latches + output driver (exact, org-independent)
}

func newBounder(bc *buildCtx) bounder {
	cw, ch := mat.CellDims(bc.spec.Tech, bc.spec.RAM, bc.spec.Ports)
	fixed, lin, rate := circuit.RepeatedWireDelayLBParts(bc.per, bc.wire, bc.spec.RepeaterSlack)
	return bounder{
		cellW:       cw,
		cellH:       ch,
		htreeFixed:  fixed,
		htreeLin:    lin,
		htreePerLen: rate,
		wirePerLen:  float64(bc.addrBits+bc.dataBits) * bc.wire.Pitch,
		fixedAcc:    2*30e-12 + bc.outDrv.Delay,
	}
}

// htreeDelayLB returns the provable floor on one H-tree traversal of
// the given length; monotone in the length, so it may be applied to
// any lower bound of the real length.
func (bd *bounder) htreeDelayLB(length float64) float64 {
	return math.Max(bd.htreeFixed+bd.htreeLin*length, bd.htreePerLen*length)
}

// matsFor returns the (mux-independent) mat count of a (rows, cols)
// shard.
func matsFor(spec Spec, rows, cols int) int {
	bitsPerMat := int64(4 * rows * cols)
	return int((spec.CapacityBytes*8 + bitsPerMat - 1) / bitsPerMat)
}

// bankBounds assembles bank-level lower bounds from a mat-area lower
// bound and a mat-access lower bound: Mats mats plus the H-tree wire
// area, and the fixed path plus two H-tree traversals of at least the
// AM-GM length floor.
func (bd *bounder) bankBounds(mats int, matAreaLB, matAccLB float64) (areaLB, accLB float64) {
	matsArea := float64(mats) * matAreaLB
	htreeLen := math.Sqrt(matsArea)
	areaLB = matsArea + bd.wirePerLen*htreeLen
	accLB = bd.fixedAcc + 2*bd.htreeDelayLB(htreeLen) + matAccLB
	return areaLB, accLB
}

// shardBounds computes the cheap pre-NewShared lower bounds of a
// (rows, cols) shard: pure cell geometry for area, and wordline RC +
// bitline development + sense for access time. It is the first
// bounding tier — nearly free, loose.
func (bc *buildCtx) shardBounds(rows, cols int) (areaLB, accLB float64) {
	bd := &bc.bnd
	matW := 2 * float64(cols) * bd.cellW
	matH := 2 * float64(rows) * bd.cellH
	matAccLB := mat.AccessLB(bc.spec.Tech, bc.spec.RAM, bc.spec.Ports, rows, cols)
	return bd.bankBounds(matsFor(bc.spec, rows, cols), matW*matH, matAccLB)
}

// shardBoundsTight computes the tightened shard-level lower bounds
// (mat.NewShardLB): exact wordline chain, decoder-wire Elmore term,
// wordline-driver strip width and minimum sense-strip height. It
// costs roughly a quarter of NewShared, so the result is memoized per
// (rows, cols) slot — the prescan warms the memo and the enumeration
// reuses it — and the enumeration consults it only after the cheap
// tier fails to discard a shard.
func (bc *buildCtx) shardBoundsTight(rows, cols int) (areaLB, accLB float64) {
	lb := bc.shardLBFor(rows, cols)
	return bc.bnd.bankBounds(matsFor(bc.spec, rows, cols), lb.MatW*lb.MatH, lb.Access)
}

// shardLBFor returns the memoized tightened shard lower bound of a
// (rows, cols) pair, computing it on first use.
func (bc *buildCtx) shardLBFor(rows, cols int) *mat.ShardLB {
	ri := bits.TrailingZeros(uint(rows)) - 5
	ci := bits.TrailingZeros(uint(cols)) - 5
	slot := &bc.shardLB[ri*len(enumCols)+ci]
	lb := slot.Load()
	if lb == nil {
		v := mat.NewShardLB(bc.spec.Tech, bc.spec.RAM, bc.spec.Ports, rows, cols)
		slot.Store(&v)
		lb = &v
	}
	return lb
}

// pointBoundsLite computes per-point lower bounds before mat.NewShared
// exists, from the memoized shard lower bound alone: the point's own
// floorplan fold (identical to finishInto's) applied to the bounded mat
// dimensions yields an H-tree length floor that keeps the perimeter
// term — much tighter than the shard tiers' AM-GM-only floor whenever
// the fold is lopsided. Admissible by monotonicity: the real mat is at
// least lb.MatW by lb.MatH, rounding-to-nearest is monotone, and
// htreeDelayLB is a floor of the real repeated-wire delay.
func (bc *buildCtx) pointBoundsLite(lb *mat.ShardLB, o Org) (areaLB, accLB float64) {
	gridX := o.MatsPerSubbank
	gridY := o.Subbanks
	for gridX >= 2*gridY && gridX%2 == 0 {
		gridX /= 2
		gridY *= 2
	}
	for gridY >= 2*gridX && gridY%2 == 0 {
		gridY /= 2
		gridX *= 2
	}
	matsArea := float64(o.Mats) * (lb.MatW * lb.MatH)
	lenLB := (float64(gridX)*lb.MatW + float64(gridY)*lb.MatH) / 2
	if s := math.Sqrt(matsArea); s > lenLB {
		lenLB = s
	}
	bd := &bc.bnd
	areaLB = matsArea + bd.wirePerLen*lenLB
	accLB = bd.fixedAcc + 2*bd.htreeDelayLB(lenLB) + lb.Access
	return areaLB, accLB
}

// pointBounds computes the post-NewShared lower bounds of one mux
// point: the mat's access time and footprint are exact (via the
// memoized MuxParts); only the H-tree terms remain bounded.
func (bc *buildCtx) pointBounds(sh *mat.Shared, parts *mat.MuxParts, o Org) (areaLB, accLB float64) {
	return bc.bnd.bankBounds(o.Mats, sh.MatAreaOf(parts), sh.MatAccessOf(parts, o.Mux))
}

// pointExact computes the exact bank area and access time of one mux
// point — the same floats, from the same operations, as finishInto —
// without assembling the Bank: exact mat dims fold into the exact
// floorplan grid, and the H-tree repeated wire is solved for real
// instead of bounded. It is the final (still admissible: the "bound"
// equals the value) pruning tier; only points that pass it pay for
// BuildInto and finishInto. The AM-GM tier in pointBounds never
// exceeds it, so running it second filters the same final set while
// skipping the repeated-wire solution for far-out points.
func (bc *buildCtx) pointExact(sh *mat.Shared, parts *mat.MuxParts, o Org) (area, acc float64) {
	ri := bits.TrailingZeros(uint(o.Rows)) - 5
	ci := bits.TrailingZeros(uint(o.Cols)) - 5
	mi := bits.TrailingZeros(uint(o.Mux))
	slot := &bc.exactPt[(ri*len(enumCols)+ci)*len(enumMux)+mi]
	if pm := slot.Load(); pm != nil {
		return pm.area, pm.acc
	}
	mw, mh := sh.MatDimsOf(parts)

	// Floorplan fold — identical to finishInto.
	gridX := o.MatsPerSubbank
	gridY := o.Subbanks
	for gridX >= 2*gridY && gridX%2 == 0 {
		gridX /= 2
		gridY *= 2
	}
	for gridY >= 2*gridX && gridY%2 == 0 {
		gridY /= 2
		gridX *= 2
	}
	matsW := float64(gridX) * mw
	matsH := float64(gridY) * mh

	htreeLen := (matsW + matsH) / 2
	htreeWire := circuit.NewRepeatedWire(bc.per, bc.wire, htreeLen, bc.spec.RepeaterSlack)
	d := htreeWire.Res.Delay

	const latchDelay = 30e-12
	acc = latchDelay + d + sh.MatAccessOf(parts, o.Mux) + d + bc.outDrv.Delay + latchDelay

	matsArea := float64(o.Mats) * sh.MatAreaOf(parts)
	wireArea := float64(bc.addrBits+bc.dataBits) * bc.wire.Pitch * htreeLen
	repArea := float64(bc.addrBits)*htreeWire.Res.Area + float64(bc.dataBits)*htreeWire.Res.Area
	area = matsArea + wireArea + repArea
	slot.Store(&pointMetrics{area: area, acc: acc})
	return area, acc
}

// pointMetrics is one memoized pointExact result.
type pointMetrics struct{ area, acc float64 }

// PrescanPoint summarizes one feasible (rows, cols) shard of the
// enumeration grid: its first precheck-passing mux point and the
// shard-level lower bounds shared by every mux point in it.
type PrescanPoint struct {
	Org    Org
	AreaLB float64 // data-bank area lower bound (m^2)
	AccLB  float64 // data-bank access-time lower bound (s)
}

// Prescanned is the result of Prescan: the feasibility/bounds summary
// of one spec's enumeration grid plus the (reusable) build context
// behind it, so probe builds and the bounded enumeration share the
// memoized shard bounds, mux parts and mat models instead of
// recomputing them per call.
type Prescanned struct {
	bc *buildCtx
	// Points holds one entry per (rows, cols) pair with at least one
	// feasible mux point, in grid order.
	Points []PrescanPoint
}

// Prescan classifies the enumeration grid with integer prechecks and
// cheap closed-form bounds only — no circuit modeling — returning one
// entry per (rows, cols) pair that has at least one feasible mux
// point, in grid order. The solver uses it to pick deterministic
// probe points and to floor the feasible set's minimum area when
// deriving pruning thresholds (see core's bounded explore). The full
// precheck classification is retained on the build context, so a
// following Enumerate reuses it instead of rescanning the grid.
func Prescan(spec Spec) (*Prescanned, error) {
	bc, err := newBuildCtx(spec)
	if err != nil {
		return nil, err
	}
	bc.scan = make([]shardScan, len(enumRows)*len(enumCols))
	slab := make([]Org, len(enumRows)*len(enumCols)*len(enumMux))
	n := 0
	var out []PrescanPoint
	for ri, rows := range enumRows {
		// Shards that cannot develop the DRAM sense signal have no
		// feasible point at all; excluding them keeps the prescan's
		// area floor tight (the floor feeds the solver's probe
		// provability check). Their precheck classification is still
		// recorded for the enumeration's counter accounting.
		marginOK := bc.marginOK(rows)
		for ci, cols := range enumCols {
			sc := &bc.scan[ri*len(enumCols)+ci]
			start := n
			for _, mux := range enumMux {
				sc.counters.Considered++
				if mux > cols {
					sc.counters.PrunedMux++
					continue
				}
				o := OrgFor(spec, rows, cols, mux)
				if reason := bc.precheck(o); reason != prOK {
					sc.counters.bump(reason)
					continue
				}
				slab[n] = o
				n++
			}
			sc.surv = slab[start:n:n]
			if n == start || !marginOK {
				continue
			}
			areaLB, accLB := bc.shardBounds(rows, cols)
			out = append(out, PrescanPoint{Org: sc.surv[0], AreaLB: areaLB, AccLB: accLB})
		}
	}
	return &Prescanned{bc: bc, Points: out}, nil
}

// ShardBounds returns the tightened (memoized) shard-level lower
// bounds for an organization's (rows, cols) pair, in data-bank units.
// They dominate the cheap PrescanPoint bounds on every pair — the
// exact-minimum walks below lean on that ordering to evaluate the
// expensive tiers lazily.
func (p *Prescanned) ShardBounds(o Org) (areaLB, accLB float64) {
	return p.bc.shardBoundsTight(o.Rows, o.Cols)
}

// shardSurv returns the precheck survivors of a (rows, cols) pair
// recorded by Prescan.
func (bc *buildCtx) shardSurv(rows, cols int) []Org {
	ri := bits.TrailingZeros(uint(rows)) - 5
	ci := bits.TrailingZeros(uint(cols)) - 5
	return bc.scan[ri*len(enumCols)+ci].surv
}

// MinArea returns the exact minimum bank area over every feasible
// point of the grid — the same float a full enumeration's smallest
// bank would report. The walk visits shards in ascending cheap
// area-bound order, skips those whose tightened bound cannot beat the
// best exact area seen, and stops as soon as the cheap bound alone
// proves no remaining shard can improve it; every model it does build
// (mat.Shared, MuxParts) lands in the prescan's memos, where the
// following Enumerate reuses it. ok is false when no point builds.
func (p *Prescanned) MinArea() (best float64, ok bool) {
	bc := p.bc
	pts := p.Points
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return pts[idx[a]].AreaLB < pts[idx[b]].AreaLB })
	best = math.Inf(1)
	for _, i := range idx {
		if pts[i].AreaLB >= best {
			break
		}
		rows, cols := pts[i].Org.Rows, pts[i].Org.Cols
		if aT, _ := bc.shardBoundsTight(rows, cols); aT >= best {
			continue
		}
		lb := bc.shardLBFor(rows, cols)
		var sh *mat.Shared
		for _, o := range bc.shardSurv(rows, cols) {
			if aL, _ := bc.pointBoundsLite(lb, o); aL >= best {
				continue
			}
			if sh == nil {
				var err error
				if sh, err = bc.sharedFor(rows, cols); err != nil {
					break // contributes no solutions; nothing to minimize
				}
			}
			parts := bc.muxPartsFor(sh, cols, o.Mux)
			if a, _ := bc.pointExact(sh, parts, o); a < best {
				best = a
				ok = true
			}
		}
	}
	return best, ok
}

// MinAccessWithin returns the exact minimum bank access time over the
// feasible points whose assembled solution area — nb*(area+tagArea),
// the same floats the solver's assemble computes — is at most
// areaWindow (pass +Inf for an unconstrained minimum). The walk visits
// shards in ascending cheap access-bound order with the same lazy
// tiering as MinArea; window exclusion uses the area bounds (area >=
// bound, and the assembly arithmetic is monotone, so a shard whose
// bounded solution area exceeds the window holds no members). ok is
// false when no point is in the window.
func (p *Prescanned) MinAccessWithin(nb, tagArea, areaWindow float64) (best float64, ok bool) {
	bc := p.bc
	pts := p.Points
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return pts[idx[a]].AccLB < pts[idx[b]].AccLB })
	best = math.Inf(1)
	for _, i := range idx {
		if pts[i].AccLB >= best {
			break
		}
		rows, cols := pts[i].Org.Rows, pts[i].Org.Cols
		if nb*(pts[i].AreaLB+tagArea) > areaWindow {
			continue
		}
		aT, accT := bc.shardBoundsTight(rows, cols)
		if accT >= best || nb*(aT+tagArea) > areaWindow {
			continue
		}
		lb := bc.shardLBFor(rows, cols)
		var sh *mat.Shared
		for _, o := range bc.shardSurv(rows, cols) {
			aL, accL := bc.pointBoundsLite(lb, o)
			if accL >= best || nb*(aL+tagArea) > areaWindow {
				continue
			}
			if sh == nil {
				var err error
				if sh, err = bc.sharedFor(rows, cols); err != nil {
					break
				}
			}
			parts := bc.muxPartsFor(sh, cols, o.Mux)
			a, acc := bc.pointExact(sh, parts, o)
			if nb*(a+tagArea) <= areaWindow && acc < best {
				best = acc
				ok = true
			}
		}
	}
	return best, ok
}

// Build evaluates one organization against the prescan's shared build
// context — same result as the package-level Build, but reusing the
// memoized mat models and mux parts (probe builds hit the same grid
// slots the enumeration will).
func (p *Prescanned) Build(o Org) (*Bank, error) {
	bc := p.bc
	if reason := bc.precheck(o); reason != prOK {
		return nil, bc.checkErr(o, reason)
	}
	sh, err := bc.sharedFor(o.Rows, o.Cols)
	if err != nil {
		return nil, err
	}
	m := new(mat.Mat)
	if err := sh.BuildInto(o.Mux, bc.muxPartsFor(sh, o.Cols, o.Mux), m); err != nil {
		return nil, err
	}
	return bc.finish(o, m), nil
}

// Enumerate is EnumerateContext with branch-and-bound pruning against
// lim: grid points whose lower bounds violate the limits are discarded
// before mat modeling and land in the PrunedBoundShard /
// PrunedBoundPoint counter buckets. With NoLimits() it matches
// EnumerateContext output exactly. The output and counters are a
// deterministic function of (spec, lim) — the worker count never
// changes them — and for limits derived by the solver's probe scheme
// the surviving banks are exactly those the staged filter could ever
// keep (DESIGN.md §1.2e).
func (p *Prescanned) Enumerate(ctx context.Context, workers int, lim Limits) ([]*Bank, Counters, error) {
	return enumerateWith(ctx, p.bc, workers, lim)
}
