package explore

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"cactid/internal/core"
	"cactid/internal/tech"
)

func fakeResult(idx int, fp string, acc, energy, leak, area float64) Result {
	return Result{
		Index:       idx,
		Fingerprint: fp,
		Spec:        core.Spec{RAM: tech.SRAM, Node: tech.Node32},
		Solution: &core.Solution{
			AccessTime: acc, EReadPerAccess: energy, LeakagePower: leak, Area: area,
		},
	}
}

func TestFrontierDropsDominatedPoints(t *testing.T) {
	results := []Result{
		fakeResult(0, "a", 1, 1, 1, 1),             // frontier
		fakeResult(1, "b", 2, 2, 2, 2),             // dominated by a
		fakeResult(2, "c", 0.5, 3, 3, 3),           // frontier: fastest
		fakeResult(3, "d", 3, 0.5, 3, 3),           // frontier: lowest energy
		fakeResult(4, "e", 1, 1, 1, 1.0001),        // dominated by a (tie on 3 axes)
		{Index: 5, Err: errors.New("no solution")}, // dropped
	}
	f := Frontier(results)
	if len(f) != 3 {
		t.Fatalf("frontier has %d points, want 3", len(f))
	}
	for i, want := range []int{0, 2, 3} {
		if f[i].Index != want {
			t.Errorf("frontier[%d].Index = %d, want %d", i, f[i].Index, want)
		}
	}
}

func TestFrontierKeepsIncomparableTies(t *testing.T) {
	// Two identical points are mutually non-dominating: both stay
	// (deduped only when they are the same design, i.e. fingerprint).
	results := []Result{
		fakeResult(0, "x", 1, 1, 1, 1),
		fakeResult(1, "y", 1, 1, 1, 1),
		fakeResult(2, "x", 1, 1, 1, 1), // same design as 0: deduped
	}
	f := Frontier(results)
	if len(f) != 2 || f[0].Index != 0 || f[1].Index != 1 {
		t.Fatalf("frontier = %+v, want points 0 and 1", f)
	}
}

func TestEngineParetoRealSolver(t *testing.T) {
	if testing.Short() {
		t.Skip("real-solver sweep")
	}
	e := New(Options{Workers: 4})
	specs, _ := testGrid().Expand()
	front := e.Pareto(context.Background(), specs)
	if len(front) == 0 || len(front) >= len(specs) {
		t.Fatalf("frontier size %d of %d", len(front), len(specs))
	}
	// No frontier point may dominate another.
	for _, a := range front {
		for _, b := range front {
			if a.Index != b.Index && dominates(a.Solution, b.Solution) {
				t.Fatalf("frontier point %d dominates %d", a.Index, b.Index)
			}
		}
	}
}

func TestWriteCSVShape(t *testing.T) {
	results := []Result{
		fakeResult(0, "aa", 1e-9, 2e-10, 0.5, 1e-6),
		{Index: 1, Spec: core.Spec{RAM: tech.LPDRAM}, Err: core.ErrNoSolution},
	}
	// fakeResult solutions carry no Data bank, which WriteCSV needs;
	// export this one as a metric-less row instead.
	results[0].Solution = nil
	var buf bytes.Buffer
	if err := WriteCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d CSV lines, want 3", len(lines))
	}
	if !strings.HasPrefix(lines[0], "index,fingerprint,ram,") {
		t.Fatalf("header wrong: %s", lines[0])
	}
	if !strings.Contains(lines[2], "no feasible solution") {
		t.Fatalf("error row missing message: %s", lines[2])
	}
}

func TestWriteCSVRealSolution(t *testing.T) {
	e := New(Options{})
	spec := core.Spec{Node: tech.Node32, RAM: tech.SRAM, CapacityBytes: 64 << 10, BlockBytes: 64}
	res := e.Sweep(context.Background(), []core.Spec{spec})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "65536") || !strings.Contains(out, "SRAM") {
		t.Fatalf("CSV missing spec identity:\n%s", out)
	}
	var jbuf bytes.Buffer
	if err := WriteJSON(&jbuf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jbuf.String(), "\"access_time_s\"") {
		t.Fatal("JSON missing metrics")
	}
}
