package explore

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"cactid/internal/core"
)

// TestStatsMergeSumsEveryField pins Merge to the full field set by
// reflection: a Stats field added without a matching Merge line would
// silently drop its counts in cluster aggregation.
func TestStatsMergeSumsEveryField(t *testing.T) {
	var a, b Stats
	av, bv := reflect.ValueOf(&a).Elem(), reflect.ValueOf(&b).Elem()
	for i := 0; i < av.NumField(); i++ {
		av.Field(i).SetInt(int64(i + 1))
		bv.Field(i).SetInt(int64(2 * (i + 1)))
	}
	mv := reflect.ValueOf(a.Merge(b))
	for i := 0; i < mv.NumField(); i++ {
		if got, want := mv.Field(i).Int(), int64(3*(i+1)); got != want {
			t.Errorf("Merge dropped field %s: got %d, want %d",
				mv.Type().Field(i).Name, got, want)
		}
	}
}

// TestStatsMergeShardedConservation runs one sweep sharded across two
// engines and checks the merged counters conserve work: every point
// solved exactly once cluster-wide, none double-counted and none lost.
func TestStatsMergeShardedConservation(t *testing.T) {
	specs, _ := testGrid().Expand()
	_, s1 := countingSolver(0)
	_, s2 := countingSolver(0)
	e1 := New(Options{Workers: 2, Solver: s1})
	e2 := New(Options{Workers: 2, Solver: s2})

	cut := len(specs) / 3
	e1.Sweep(context.Background(), specs[:cut])
	e2.Sweep(context.Background(), specs[cut:])

	merged := e1.Stats().Merge(e2.Stats())
	if merged.Solves != int64(len(specs)) {
		t.Fatalf("merged Solves = %d, want %d", merged.Solves, len(specs))
	}
	if merged.CacheEntries != len(specs) {
		t.Fatalf("merged CacheEntries = %d, want %d", merged.CacheEntries, len(specs))
	}
	if merged.CacheHits != 0 {
		t.Fatalf("cold sharded sweep reported %d cache hits", merged.CacheHits)
	}

	// A single engine over the same specs does exactly the same total
	// work — sharding must not change the cluster-wide solve count.
	_, s3 := countingSolver(0)
	e3 := New(Options{Workers: 2, Solver: s3})
	e3.Sweep(context.Background(), specs)
	if solo := e3.Stats(); solo.Solves != merged.Solves || solo.CacheEntries != merged.CacheEntries {
		t.Fatalf("sharded merge %+v != single-engine %+v", merged, solo)
	}
}

// syntheticResults builds a result set with heavy objective ties,
// duplicate fingerprints, and errored points — the hard cases for
// frontier maintenance.
func syntheticResults(rng *rand.Rand, n int) []Result {
	results := make([]Result, n)
	for i := range results {
		if rng.Intn(10) == 0 {
			results[i] = Result{Index: i, Err: fmt.Errorf("synthetic failure %d", i)}
			continue
		}
		if i > 0 && rng.Intn(5) == 0 {
			// Duplicate design point: same fingerprint, same solution.
			j := rng.Intn(i)
			if results[j].Err == nil && results[j].Solution != nil {
				results[i] = Result{Index: i, Fingerprint: results[j].Fingerprint,
					Cached: true, Solution: results[j].Solution}
				continue
			}
		}
		obj := func() float64 { return float64(1 + rng.Intn(6)) }
		results[i] = Result{Index: i, Fingerprint: fmt.Sprintf("fp-%d", i),
			Solution: &core.Solution{AccessTime: obj(), EReadPerAccess: obj(),
				LeakagePower: obj(), Area: obj()}}
	}
	return results
}

// TestFrontierMergerMatchesBatch feeds the streaming merger the same
// results as the batch Frontier, in many arrival orders, and demands
// the identical frontier every time — the property the fabric's
// streaming Pareto merge rests on.
func TestFrontierMergerMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 20; round++ {
		results := syntheticResults(rng, 150)
		want := Frontier(results)

		order := rng.Perm(len(results))
		m := NewFrontierMerger()
		for _, i := range order {
			m.Add(results[i])
		}
		got := m.Frontier()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: streaming frontier (%d pts) != batch frontier (%d pts)",
				round, len(got), len(want))
		}
	}
}

// TestSweepStreamDeliversEveryPointOnce checks the streaming sweep's
// contract: one callback per point, serialized, with the same results
// as the batch sweep, and a running FrontierMerger that lands on the
// batch frontier.
func TestSweepStreamDeliversEveryPointOnce(t *testing.T) {
	specs, _ := testGrid().Expand()
	_, solver := countingSolver(0)
	e := New(Options{Workers: 4, Solver: solver})

	seen := make(map[int]int)
	m := NewFrontierMerger()
	var inCallback sync.Mutex // trips -race if emit calls ever overlap
	e.SweepStream(context.Background(), specs, func(r Result) {
		if !inCallback.TryLock() {
			t.Error("SweepStream emitted concurrently")
			return
		}
		defer inCallback.Unlock()
		seen[r.Index]++
		m.Add(r)
	})
	if len(seen) != len(specs) {
		t.Fatalf("stream delivered %d distinct points, want %d", len(seen), len(specs))
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("point %d delivered %d times", i, n)
		}
	}

	_, solver2 := countingSolver(0)
	batch := New(Options{Workers: 4, Solver: solver2}).Sweep(context.Background(), specs)
	if want := Frontier(batch); !reflect.DeepEqual(frontierFingerprints(m.Frontier()), frontierFingerprints(want)) {
		t.Fatalf("streamed frontier %v != batch frontier %v",
			frontierFingerprints(m.Frontier()), frontierFingerprints(want))
	}
}
