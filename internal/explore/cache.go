package explore

import (
	"sync"

	"cactid/internal/core"
)

// numShards spreads fingerprint keys over independently locked maps
// so a parallel sweep doesn't serialize on one mutex.
const numShards = 32

// entry is one cached (or in-flight) solve. ready is closed when sol
// and err are final; until then, other callers of the same
// fingerprint block on it instead of duplicating the solver call
// (singleflight-style dedup).
type entry struct {
	ready chan struct{}
	sol   *core.Solution
	err   error
}

type cacheShard struct {
	mu sync.Mutex
	m  map[string]*entry // guarded by mu
}

// Cache is a sharded solution cache keyed by core.Spec fingerprints.
// A Cache may be shared by several Engines (and is safe for
// concurrent use); the zero value is not usable, call NewCache.
type Cache struct {
	shards [numShards]cacheShard
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	c := &Cache{}
	for i := range c.shards {
		//lint:ignore lockguard c is not published yet; the constructor runs single-threaded
		c.shards[i].m = make(map[string]*entry)
	}
	return c
}

// fnv-1a over the fingerprint selects the shard.
func (c *Cache) shard(key string) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return &c.shards[h%numShards]
}

// lookup returns the entry for key, creating it if absent. created
// reports whether this caller owns the solve: it must fill the entry
// and close ready exactly once.
func (c *Cache) lookup(key string) (e *entry, created bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.m[key]; ok {
		return e, false
	}
	e = &entry{ready: make(chan struct{})}
	sh.m[key] = e
	return e, true
}

// forget removes key, releasing waiters-to-come to recompute. Used
// when the owning solve is abandoned before producing a result.
func (c *Cache) forget(key string) {
	sh := c.shard(key)
	sh.mu.Lock()
	delete(sh.m, key)
	sh.mu.Unlock()
}

// Len returns the number of cached (including in-flight) entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].m)
		c.shards[i].mu.Unlock()
	}
	return n
}
