package explore

import (
	"container/list"
	"math"
	"sync"
	"sync/atomic"

	"cactid/internal/chaos"
	"cactid/internal/core"
)

// numShards spreads fingerprint keys over independently locked maps
// so a parallel sweep doesn't serialize on one mutex.
const numShards = 32

// entry is one cached (or in-flight) solve. ready is closed when sol
// and err are final; until then, other callers of the same
// fingerprint block on it instead of duplicating the solver call
// (singleflight-style dedup).
type entry struct {
	ready chan struct{}
	sol   *core.Solution
	err   error

	key   string
	elem  *list.Element // position in the owning shard's LRU list; access under that shard's mu
	touch uint64        // recency stamp from Cache.clock; access under that shard's mu
}

// done reports whether the entry's solve has completed. An entry
// becomes done exactly once (close(ready)), so a true answer is
// stable.
func (e *entry) done() bool {
	select {
	case <-e.ready:
		return true
	default:
		return false
	}
}

type cacheShard struct {
	mu  sync.Mutex
	m   map[string]*entry // guarded by mu
	lru *list.List        // guarded by mu; front = most recently used
}

// Cache is a sharded solution cache keyed by core.Spec fingerprints,
// with an optional entry bound enforced by least-recently-used
// eviction. A Cache may be shared by several Engines (and is safe for
// concurrent use); the zero value is not usable, call NewCache or
// NewCacheWith.
type Cache struct {
	maxEntries int             // 0 = unbounded
	chaos      *chaos.Injector // nil = no fault injection

	clock        atomic.Uint64 // recency stamps, monotone across shards
	count        atomic.Int64  // live entries across all shards
	evictions    atomic.Int64  // entries removed by the LRU bound
	forcedMisses atomic.Int64  // chaos-injected miss storms

	shards [numShards]cacheShard
}

// CacheConfig bounds and instruments a Cache.
type CacheConfig struct {
	// MaxEntries caps the number of cached results; 0 means
	// unbounded. The bound is enforced by evicting the globally
	// least-recently-used completed entry. In-flight entries are
	// never evicted (eviction must not break in-flight dedup), so
	// the live count can transiently exceed the bound by the number
	// of concurrent distinct solves.
	MaxEntries int
	// Chaos arms the explore.cache.lookup injection point: a Miss
	// fault drops a completed entry on lookup, forcing a recompute.
	Chaos *chaos.Injector
}

// NewCache returns an empty, unbounded cache.
func NewCache() *Cache { return NewCacheWith(CacheConfig{}) }

// NewCacheWith returns an empty cache with the given bound and
// instrumentation.
func NewCacheWith(cfg CacheConfig) *Cache {
	if cfg.MaxEntries < 0 {
		cfg.MaxEntries = 0
	}
	c := &Cache{maxEntries: cfg.MaxEntries, chaos: cfg.Chaos}
	for i := range c.shards {
		//lint:ignore lockguard c is not published yet; the constructor runs single-threaded
		c.shards[i].m = make(map[string]*entry)
		//lint:ignore lockguard c is not published yet; the constructor runs single-threaded
		c.shards[i].lru = list.New()
	}
	return c
}

// fnv-1a over the fingerprint selects the shard.
func (c *Cache) shard(key string) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return &c.shards[h%numShards]
}

// lookup returns the entry for key, creating it if absent. created
// reports whether this caller owns the solve: it must fill the entry
// and close ready exactly once.
func (c *Cache) lookup(key string) (e *entry, created bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	if e, ok := sh.m[key]; ok {
		// A chaos miss storm drops completed entries so the caller
		// recomputes; in-flight entries are left alone (two owners
		// for one key would break the dedup invariant).
		if e.done() && c.chaos.ForceMiss(chaos.CacheLookup) {
			delete(sh.m, key)
			sh.lru.Remove(e.elem)
			c.count.Add(-1)
			c.forcedMisses.Add(1)
		} else {
			e.touch = c.clock.Add(1)
			sh.lru.MoveToFront(e.elem)
			sh.mu.Unlock()
			return e, false
		}
	}
	e = &entry{ready: make(chan struct{}), key: key, touch: c.clock.Add(1)}
	e.elem = sh.lru.PushFront(e)
	sh.m[key] = e
	sh.mu.Unlock()
	if c.count.Add(1) > int64(c.maxEntries) && c.maxEntries > 0 {
		c.evictToBound()
	}
	return e, true
}

// forget removes key, releasing waiters-to-come to recompute. Used
// when the owning solve is abandoned before producing a result.
func (c *Cache) forget(key string) {
	sh := c.shard(key)
	sh.mu.Lock()
	if e, ok := sh.m[key]; ok {
		delete(sh.m, key)
		sh.lru.Remove(e.elem)
		c.count.Add(-1)
	}
	sh.mu.Unlock()
}

// evictToBound removes least-recently-used completed entries until
// the cache is back within its bound (or nothing evictable remains).
func (c *Cache) evictToBound() {
	for c.count.Load() > int64(c.maxEntries) {
		if !c.evictOne() {
			return
		}
	}
}

// evictOne drops the globally least-recently-touched completed entry.
// It scans each shard's LRU tail (oldest completed entry per shard),
// picks the overall oldest, and removes it. The scan-then-remove is
// two steps, so a concurrent touch can promote the victim in between;
// the re-check under the shard lock keeps the removal safe, and the
// bound converges once activity quiesces.
func (c *Cache) evictOne() bool {
	var victimShard *cacheShard
	var victimKey string
	victimTouch := uint64(math.MaxUint64)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for el := sh.lru.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*entry)
			if !e.done() {
				continue // in-flight entries are not evictable
			}
			if e.touch < victimTouch {
				victimTouch, victimShard, victimKey = e.touch, sh, e.key
			}
			break // the shard's oldest completed entry was found
		}
		sh.mu.Unlock()
	}
	if victimShard == nil {
		return false // everything live is in flight
	}
	evicted := false
	victimShard.mu.Lock()
	if e, ok := victimShard.m[victimKey]; ok && e.done() {
		delete(victimShard.m, victimKey)
		victimShard.lru.Remove(e.elem)
		c.count.Add(-1)
		c.evictions.Add(1)
		evicted = true
	}
	victimShard.mu.Unlock()
	return evicted
}

// Len returns the number of cached (including in-flight) entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].m)
		c.shards[i].mu.Unlock()
	}
	return n
}

// CacheStats is a snapshot of the cache's bound and churn counters.
type CacheStats struct {
	Entries      int   `json:"entries"`
	MaxEntries   int   `json:"max_entries"` // 0 = unbounded
	Evictions    int64 `json:"evictions"`
	ForcedMisses int64 `json:"forced_misses"`
}

// Stats returns the current counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Entries:      c.Len(),
		MaxEntries:   c.maxEntries,
		Evictions:    c.evictions.Load(),
		ForcedMisses: c.forcedMisses.Load(),
	}
}
