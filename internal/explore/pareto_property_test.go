package explore

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"cactid/internal/core"
)

// candidateSet is a quick-generated sweep outcome: up to maxCand
// pseudo-solutions over the four objectives, with occasional errored
// and duplicate-fingerprint points mixed in, as a real sweep produces.
type candidateSet struct {
	Results []Result
}

const maxCand = 48

// Generate implements quick.Generator. Objective values are drawn
// from a small discrete range so that dominance, ties, and duplicates
// all actually occur in generated sets.
func (candidateSet) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(maxCand)
	set := candidateSet{Results: make([]Result, n)}
	obj := func() float64 { return float64(1+r.Intn(6)) / 2 }
	for i := range set.Results {
		if r.Intn(8) == 0 { // an errored point, as invalid specs yield
			set.Results[i] = Result{Index: i, Err: core.ErrNoSolution}
			continue
		}
		fp := fmt.Sprintf("fp%02d", r.Intn(n)) // collisions are duplicates
		set.Results[i] = Result{
			Index:       i,
			Fingerprint: fp,
			Solution: &core.Solution{
				AccessTime:     obj(),
				EReadPerAccess: obj(),
				LeakagePower:   obj(),
				Area:           obj(),
			},
		}
	}
	return reflect.ValueOf(set)
}

// firstByFingerprint reproduces Frontier's dedup rule: only the first
// occurrence of each fingerprint competes.
func firstByFingerprint(results []Result) []Result {
	seen := map[string]bool{}
	var out []Result
	for _, r := range results {
		if r.Err != nil || r.Solution == nil || seen[r.Fingerprint] {
			continue
		}
		seen[r.Fingerprint] = true
		out = append(out, r)
	}
	return out
}

// TestFrontierNoInternalDominance: property — no frontier point
// dominates another frontier point.
func TestFrontierNoInternalDominance(t *testing.T) {
	prop := func(set candidateSet) bool {
		f := Frontier(set.Results)
		for i, a := range f {
			for j, b := range f {
				if i != j && dominates(a.Solution, b.Solution) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// TestFrontierExcludesExactlyTheDominated: property — a deduped
// successful candidate is off the frontier iff some other candidate
// dominates it.
func TestFrontierExcludesExactlyTheDominated(t *testing.T) {
	prop := func(set candidateSet) bool {
		f := Frontier(set.Results)
		onFrontier := map[int]bool{}
		for _, r := range f {
			onFrontier[r.Index] = true
		}
		cands := firstByFingerprint(set.Results)
		for _, r := range cands {
			dominated := false
			for _, other := range cands {
				if other.Index != r.Index && dominates(other.Solution, r.Solution) {
					dominated = true
					break
				}
			}
			if dominated == onFrontier[r.Index] {
				return false // dominated on the frontier, or undominated left off
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// TestFrontierOrderIndependent: property — frontier membership (as a
// fingerprint set) does not depend on the order candidates arrive in.
// (The emitted order does track input order, by design.)
func TestFrontierOrderIndependent(t *testing.T) {
	prop := func(set candidateSet, seed int64) bool {
		// Duplicate fingerprints break permutation invariance by
		// construction (first occurrence wins), so compete every
		// candidate under a unique key for this property.
		unique := firstByFingerprint(set.Results)
		base := frontierFingerprints(Frontier(unique))

		perm := make([]Result, len(unique))
		copy(perm, unique)
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		got := frontierFingerprints(Frontier(perm))

		if len(base) != len(got) {
			return false
		}
		for fp := range base {
			if !got[fp] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func frontierFingerprints(f []Result) map[string]bool {
	out := make(map[string]bool, len(f))
	for _, r := range f {
		out[r.Fingerprint] = true
	}
	return out
}

// TestFrontierErroredPointsNeverSurface: property — errored or
// solution-less points never appear on a frontier.
func TestFrontierErroredPointsNeverSurface(t *testing.T) {
	prop := func(set candidateSet) bool {
		for _, r := range Frontier(set.Results) {
			if r.Err != nil || r.Solution == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// quickCfg fixes the generator seed so failures reproduce, and runs
// enough cases to exercise ties, duplicates and errors together.
func quickCfg() *quick.Config {
	return &quick.Config{
		MaxCount: 400,
		Rand:     rand.New(rand.NewSource(1)),
	}
}
