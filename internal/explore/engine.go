package explore

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"cactid/internal/chaos"
	"cactid/internal/core"
	"cactid/internal/store"
)

// ErrSolverPanic marks a panic recovered from a solver invocation or
// a sweep worker: the fault is confined to the offending point
// instead of killing the process, and the panic value is carried in
// the wrapped error text.
var ErrSolverPanic = errors.New("solver panicked")

// Options configures an Engine. The zero value is usable: GOMAXPROCS
// workers, a fresh cache, core.OptimizeContext as the solver.
type Options struct {
	// Workers bounds sweep concurrency; 0 means GOMAXPROCS.
	Workers int
	// SolverWorkers bounds the per-solve organization-enumeration
	// pool (core.Options.Workers); 0 means GOMAXPROCS. The Go
	// scheduler time-slices sweep-level and solve-level parallelism
	// onto the same GOMAXPROCS threads, so the default is safe for
	// both single solves and wide sweeps.
	SolverWorkers int
	// NoBound disables the solver's branch-and-bound enumeration
	// pruning (core.Options.NoBound) — the A/B escape hatch. Solutions
	// are byte-identical either way; only the prune counters and the
	// per-solve runtime differ.
	NoBound bool
	// Cache lets several engines share one result cache; nil makes a
	// private one.
	Cache *Cache
	// CacheEntries bounds the private cache built when Cache is nil
	// (see CacheConfig.MaxEntries); 0 means unbounded. Ignored when
	// Cache is supplied.
	CacheEntries int
	// Solver replaces the default core.OptimizeContext solver (tests
	// inject counting or slow solvers). The context is the
	// requester's: solvers should abandon work when it is cancelled.
	Solver func(context.Context, core.Spec) (*core.Solution, error)
	// Tier1 plugs a durable result store under the in-memory cache:
	// the sharded LRU is tier 0, Tier1 is consulted on a tier-0 miss
	// before the solver runs, and pure outcomes are written back. A
	// tier-1 read fault is absorbed as a miss; nil disables the tier.
	// Singleflight still applies: concurrent fingerprint-equal
	// requests perform one tier-1 lookup, not one each.
	Tier1 store.Tiered
	// Chaos arms the engine's fault-injection points
	// (explore.worker, explore.solve, and — for a private cache —
	// explore.cache.lookup). Nil disables injection entirely.
	Chaos *chaos.Injector
}

// Engine runs solver jobs through a bounded worker pool with a
// fingerprint-keyed result cache and in-flight deduplication. All
// methods are safe for concurrent use.
type Engine struct {
	cache   *Cache
	workers int
	solver  func(context.Context, core.Spec) (*core.Solution, error)
	chaos   *chaos.Injector // nil = fault injection disabled
	tier1   store.Tiered    // nil = durable tier disabled

	solves atomic.Int64 // solver invocations (misses in every tier)
	hits   atomic.Int64 // results served from tier 0 or an in-flight solve

	tier1Hits   atomic.Int64 // results served from the durable tier
	tier1Misses atomic.Int64 // tier-1 lookups that fell through to the solver

	panics atomic.Int64 // panics recovered from solver calls and sweep workers

	// Enumeration coverage, accumulated from core.SolveStats by the
	// default solver (zero when a custom Solver is injected).
	orgsConsidered  atomic.Int64
	orgsPruned      atomic.Int64
	orgsBuilt       atomic.Int64
	orgsPrunedBound atomic.Int64 // subset of orgsPruned cut by bound pruning
}

// New returns an Engine with the given options.
func New(opts Options) *Engine {
	e := &Engine{cache: opts.Cache, workers: opts.Workers, solver: opts.Solver,
		chaos: opts.Chaos, tier1: opts.Tier1}
	if e.cache == nil {
		e.cache = NewCacheWith(CacheConfig{MaxEntries: opts.CacheEntries, Chaos: opts.Chaos})
	}
	if e.workers <= 0 {
		e.workers = runtime.GOMAXPROCS(0)
	}
	if e.solver == nil {
		solverWorkers := opts.SolverWorkers
		noBound := opts.NoBound
		e.solver = func(ctx context.Context, spec core.Spec) (*core.Solution, error) {
			var st core.SolveStats
			sol, err := core.OptimizeContext(ctx, spec,
				&core.Options{Workers: solverWorkers, Stats: &st, NoBound: noBound})
			total := st.Total()
			e.orgsConsidered.Add(total.Considered)
			e.orgsPruned.Add(total.PrunedTotal())
			e.orgsBuilt.Add(total.Built)
			e.orgsPrunedBound.Add(total.PrunedBoundShard + total.PrunedBoundPoint)
			return sol, err
		}
	}
	return e
}

// Result is one evaluated sweep point. Err is non-nil when the spec
// was invalid, admitted no solution, or the sweep was cancelled
// before reaching it.
type Result struct {
	Index       int
	Spec        core.Spec
	Fingerprint string
	Solution    *core.Solution
	Cached      bool
	Err         error
}

// Solve optimizes one spec through the cache: repeated and concurrent
// calls for fingerprint-equal specs run the solver once. cached
// reports whether the result existed (or was already being computed)
// before this call.
func (e *Engine) Solve(ctx context.Context, spec core.Spec) (sol *core.Solution, cached bool, err error) {
	fp, err := spec.Fingerprint()
	if err != nil {
		return nil, false, err
	}
	return e.solve(ctx, spec, fp)
}

func (e *Engine) solve(ctx context.Context, spec core.Spec, fp string) (*core.Solution, bool, error) {
	ent, created := e.cache.lookup(fp)
	if !created {
		select {
		case <-ent.ready:
			e.hits.Add(1)
			return ent.sol, true, ent.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	if err := ctx.Err(); err != nil {
		// Cancelled before solving: drop the entry so later callers
		// recompute, and fail any waiter already parked on it.
		e.cache.forget(fp)
		ent.err = err
		close(ent.ready)
		return nil, false, err
	}
	if e.tier1 != nil {
		// This is the singleflight owner path, so concurrent
		// fingerprint-equal requests cost one durable lookup total. A
		// hit fills tier 0 (the entry is already installed) and
		// reports cached=true, same as a tier-0 hit.
		if hit, ok := e.tier1.Lookup(ctx, fp); ok {
			e.tier1Hits.Add(1)
			ent.sol, ent.err = hit.Solution, hit.Err
			close(ent.ready)
			return ent.sol, true, ent.err
		}
		e.tier1Misses.Add(1)
	}
	e.solves.Add(1)
	ent.sol, ent.err = e.runSolver(ctx, spec)
	if ent.err != nil && (errors.Is(ent.err, context.Canceled) || errors.Is(ent.err, context.DeadlineExceeded)) {
		// The solver was cut short by this requester's context: the
		// failure says nothing about the spec, so don't poison the
		// cache with it.
		e.cache.forget(fp)
	} else if e.tier1 != nil {
		// Persist the pure outcome (Save drops impure ones itself);
		// a write fault costs durability, never correctness.
		e.tier1.Save(ctx, fp, ent.sol, ent.err)
	}
	close(ent.ready)
	return ent.sol, false, ent.err
}

// runSolver invokes the solver with the explore.solve injection point
// armed and with panic confinement: a panicking solver (a model bug,
// or an injected fault) is converted into an ErrSolverPanic error for
// this one solve instead of unwinding the worker goroutine — which
// would strand every caller parked on the cache entry.
func (e *Engine) runSolver(ctx context.Context, spec core.Spec) (sol *core.Solution, err error) {
	defer func() {
		if v := recover(); v != nil {
			e.panics.Add(1)
			sol, err = nil, fmt.Errorf("%w: %v", ErrSolverPanic, v)
		}
	}()
	if err := e.chaos.Inject(ctx, chaos.ExploreSolve); err != nil {
		return nil, err
	}
	return e.solver(ctx, spec)
}

// sweepOne evaluates one sweep point, confining panics that escape
// the per-solve recovery (the explore.worker injection point, or
// fingerprinting) to this point's Result.
func (e *Engine) sweepOne(ctx context.Context, spec core.Spec, i int) (r Result) {
	r = Result{Index: i, Spec: spec}
	defer func() {
		if v := recover(); v != nil {
			e.panics.Add(1)
			r.Solution, r.Cached = nil, false
			r.Err = fmt.Errorf("%w: %v", ErrSolverPanic, v)
		}
	}()
	if err := e.chaos.Inject(ctx, chaos.ExploreWorker); err != nil {
		r.Err = err
		return r
	}
	if fp, err := spec.Fingerprint(); err != nil {
		r.Err = err
	} else {
		r.Fingerprint = fp
		r.Solution, r.Cached, r.Err = e.solve(ctx, spec, fp)
	}
	return r
}

// Sweep evaluates every spec on the worker pool and returns one
// Result per input, in input order — so the output is a deterministic
// function of the job list regardless of worker count or completion
// order. Specs the grid planner produced in error (or that admit no
// solution) surface as per-point Errs; a cancelled context marks the
// unfinished tail with ctx.Err().
func (e *Engine) Sweep(ctx context.Context, specs []core.Spec) []Result {
	results := make([]Result, len(specs))
	e.sweepInto(ctx, specs, func(i int, r Result) { results[i] = r })
	return results
}

// SweepStream evaluates every spec on the worker pool, handing each
// Result to emit as soon as its point completes — in completion
// order, not input order, so a consumer (an incremental Pareto
// merger, a chunked network reply) sees partial results while the
// sweep is still running. Calls to emit are serialized: emit needs no
// internal locking, but a slow emit backpressures the pool. Every
// input spec is emitted exactly once; points a cancelled context cut
// off are emitted with ctx.Err() before SweepStream returns.
func (e *Engine) SweepStream(ctx context.Context, specs []core.Spec, emit func(Result)) {
	var mu sync.Mutex
	e.sweepInto(ctx, specs, func(_ int, r Result) {
		mu.Lock()
		defer mu.Unlock()
		emit(r)
	})
}

// sweepInto is the shared sweep pump: a bounded worker pool pulling
// point indices from a channel, delivering each finished Result
// through deliver(i, r). deliver may run concurrently from several
// workers (Sweep writes disjoint slice slots; SweepStream wraps it in
// a mutex).
func (e *Engine) sweepInto(ctx context.Context, specs []core.Spec, deliver func(int, Result)) {
	workers := e.workers
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				deliver(i, e.sweepOne(ctx, specs[i], i))
			}
		}()
	}
	sent := 0
dispatch:
	for ; sent < len(specs); sent++ {
		select {
		case jobs <- sent:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	for i := sent; i < len(specs); i++ {
		deliver(i, Result{Index: i, Spec: specs[i], Err: ctx.Err()})
	}
}

// SweepGrid expands the grid and sweeps it.
func (e *Engine) SweepGrid(ctx context.Context, g Grid) (results []Result, skipped int) {
	specs, skipped := g.Expand()
	return e.Sweep(ctx, specs), skipped
}

// Pareto sweeps the specs and returns only the Pareto-optimal points
// over {access time, read energy, leakage power, area}, in sweep
// order.
func (e *Engine) Pareto(ctx context.Context, specs []core.Spec) []Result {
	return Frontier(e.Sweep(ctx, specs))
}

// Stats is a snapshot of the engine's cache and enumeration counters.
type Stats struct {
	Solves       int64 `json:"solves"`
	CacheHits    int64 `json:"cache_hits"` // tier-0 (in-memory) hits
	CacheEntries int   `json:"cache_entries"`

	// Durable-tier counters, zero when no Tier1 store is plugged in.
	Tier1Hits   int64 `json:"tier1_hits"`
	Tier1Misses int64 `json:"tier1_misses"`

	// Robustness counters: the cache's entry bound and churn, and
	// panics recovered from solver calls or sweep workers.
	CacheMaxEntries   int   `json:"cache_max_entries"` // 0 = unbounded
	CacheEvictions    int64 `json:"cache_evictions"`
	CacheForcedMisses int64 `json:"cache_forced_misses"`
	Panics            int64 `json:"panics"`

	// Organization-enumeration coverage across all solves (data +
	// tag arrays): triples considered, rejected by the cheap
	// feasibility precheck, and fully circuit-modeled.
	OrgsConsidered int64 `json:"orgs_considered"`
	OrgsPruned     int64 `json:"orgs_pruned"`
	OrgsBuilt      int64 `json:"orgs_built"`
	// OrgsPrunedBound is the subset of OrgsPruned discarded by the
	// branch-and-bound tiers (zero when NoBound is set or the bounded
	// path never applied).
	OrgsPrunedBound int64 `json:"orgs_pruned_bound"`
}

// Merge returns the field-wise sum of s and other: the cluster view
// of several engines' counters (a sweep-fabric coordinator aggregates
// its workers' stats this way). Every counter adds, so merging
// conserves them: merged.Solves is exactly the number of solver
// invocations anywhere in the cluster. The entry gauges add too —
// CacheEntries is the cluster-wide resident result count and
// CacheMaxEntries the cluster-wide capacity (0 stays "unbounded" only
// when every engine is unbounded).
func (s Stats) Merge(other Stats) Stats {
	return Stats{
		Solves:            s.Solves + other.Solves,
		CacheHits:         s.CacheHits + other.CacheHits,
		CacheEntries:      s.CacheEntries + other.CacheEntries,
		Tier1Hits:         s.Tier1Hits + other.Tier1Hits,
		Tier1Misses:       s.Tier1Misses + other.Tier1Misses,
		CacheMaxEntries:   s.CacheMaxEntries + other.CacheMaxEntries,
		CacheEvictions:    s.CacheEvictions + other.CacheEvictions,
		CacheForcedMisses: s.CacheForcedMisses + other.CacheForcedMisses,
		Panics:            s.Panics + other.Panics,
		OrgsConsidered:    s.OrgsConsidered + other.OrgsConsidered,
		OrgsPruned:        s.OrgsPruned + other.OrgsPruned,
		OrgsBuilt:         s.OrgsBuilt + other.OrgsBuilt,
		OrgsPrunedBound:   s.OrgsPrunedBound + other.OrgsPrunedBound,
	}
}

// HitRatio returns the fraction of requests served without running
// the solver (tier-0 and tier-1 hits combined), 0 when idle.
func (s Stats) HitRatio() float64 {
	hits := s.CacheHits + s.Tier1Hits
	total := hits + s.Solves
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// PruneRatio returns the fraction of considered organizations
// rejected before circuit modeling, 0 when idle.
func (s Stats) PruneRatio() float64 {
	if s.OrgsConsidered == 0 {
		return 0
	}
	return float64(s.OrgsPruned) / float64(s.OrgsConsidered)
}

// Stats returns the current counters.
func (e *Engine) Stats() Stats {
	cs := e.cache.Stats()
	return Stats{
		Solves:            e.solves.Load(),
		CacheHits:         e.hits.Load(),
		CacheEntries:      cs.Entries,
		Tier1Hits:         e.tier1Hits.Load(),
		Tier1Misses:       e.tier1Misses.Load(),
		CacheMaxEntries:   cs.MaxEntries,
		CacheEvictions:    cs.Evictions,
		CacheForcedMisses: cs.ForcedMisses,
		Panics:            e.panics.Load(),
		OrgsConsidered:    e.orgsConsidered.Load(),
		OrgsPruned:        e.orgsPruned.Load(),
		OrgsBuilt:         e.orgsBuilt.Load(),
		OrgsPrunedBound:   e.orgsPrunedBound.Load(),
	}
}
