package explore

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzParseSpec exercises the /v1/solve request decoder end to end:
// strict JSON decode into SpecRequest, compilation to a core.Spec,
// and fingerprinting. Any input must either be rejected with an error
// or produce a spec whose derived values are well-formed — and the
// pipeline must never panic.
func FuzzParseSpec(f *testing.F) {
	f.Add([]byte(`{"ram":"sram","capacity":"64KB","associativity":4,"block_bytes":64,"node_nm":32}`))
	f.Add([]byte(`{"ram":"lp-dram","capacity":"48MB","mode":"seq","page_bits":8192}`))
	f.Add([]byte(`{"ram":"comm-dram","capacity":"1Gbit","cache":false}`))
	f.Add([]byte(`{"capacity":"-1MB"}`))
	f.Add([]byte(`{"capacity":"1e308MB"}`))
	f.Add([]byte(`{"capacity":"NaNKB"}`))
	f.Add([]byte(`{"weights":{"dynamic_energy":1}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"ram":`))
	f.Add([]byte(`{"tech":"stt-ram","capacity":"4MB","associativity":8}`))
	f.Add([]byte(`{"tech":"gain-cell","capacity":"1MB"}`))
	f.Add([]byte(`{"tech":"flashy"}`))
	f.Add([]byte(`{"tech":"itrs-"}`))
	f.Add([]byte(`{"tech":"","ram":"comm-dram"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var req SpecRequest
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return
		}
		spec, err := req.Spec()
		if err != nil {
			return
		}
		if spec.BlockBytes <= 0 {
			t.Fatalf("accepted spec has block bytes %d", spec.BlockBytes)
		}
		if req.Capacity != "" && spec.CapacityBytes <= 0 {
			t.Fatalf("parsed capacity %q to %d bytes", req.Capacity, spec.CapacityBytes)
		}
		// Fingerprinting must not panic; when it succeeds it must be
		// non-empty and stable.
		fp, err := spec.Fingerprint()
		if err != nil {
			return
		}
		if fp == "" {
			t.Fatal("empty fingerprint for accepted spec")
		}
		if fp2, err2 := spec.Fingerprint(); err2 != nil || fp2 != fp {
			t.Fatalf("fingerprint unstable: %q vs %q (%v)", fp, fp2, err2)
		}
	})
}

// FuzzParseGrid exercises the sweep request decoder: strict decode
// into SweepRequest, grid compilation, point counting and (for small
// grids) expansion. Points must never go negative, and Expand must
// account for every point as either produced or skipped.
func FuzzParseGrid(f *testing.F) {
	f.Add([]byte(`{"base":{"ram":"sram","node_nm":32},"capacities":["32KB","64KB"],"associativities":[1,4]}`))
	f.Add([]byte(`{"base":{"ram":"lp-dram","mode":"seq"},"banks":[1,3,8],"block_bytes":[32,64]}`))
	f.Add([]byte(`{"base":{},"rams":["sram","lp-dram","comm-dram"],"modes":["normal","fast"]}`))
	f.Add([]byte(`{"base":{"capacity":"0B"}}`))
	f.Add([]byte(`{"nodes":[90,65,45,32]}`))
	f.Add([]byte(`{"base":{"node_nm":32},"techs":["itrs-sram","stt-ram","gain-cell"],"capacities":["64KB"]}`))
	f.Add([]byte(`{"techs":["pcm","mram"]}`))
	f.Add([]byte(`{"techs":["it"]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var req SweepRequest
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return
		}
		g, err := req.Grid()
		if err != nil {
			return
		}
		n := g.Points()
		if n <= 0 {
			t.Fatalf("Points() = %d for an accepted grid", n)
		}
		if n > 1<<12 {
			return // expansion of huge grids is the server's maxPoints job
		}
		specs, skipped := g.Expand()
		if len(specs)+skipped != n {
			t.Fatalf("Expand accounted %d+%d points of %d", len(specs), skipped, n)
		}
		specs2, skipped2 := g.Expand()
		if len(specs2) != len(specs) || skipped2 != skipped {
			t.Fatal("Expand not deterministic")
		}
	})
}
