package explore

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"cactid/internal/chaos"
	"cactid/internal/core"
	"cactid/internal/tech"
)

// fill inserts n distinct completed entries (keys key0..key{n-1}).
func fill(c *Cache, n int) {
	for i := 0; i < n; i++ {
		e, created := c.lookup(fmt.Sprintf("key%d", i))
		if created {
			close(e.ready)
		}
	}
}

func TestCacheUnboundedByDefault(t *testing.T) {
	c := NewCache()
	fill(c, 500)
	if got := c.Len(); got != 500 {
		t.Fatalf("unbounded cache evicted: Len = %d", got)
	}
	st := c.Stats()
	if st.MaxEntries != 0 || st.Evictions != 0 {
		t.Fatalf("unbounded stats %+v", st)
	}
}

func TestCacheBoundEvictsLRU(t *testing.T) {
	const bound = 16
	c := NewCacheWith(CacheConfig{MaxEntries: bound})
	fill(c, 4*bound)
	if got := c.Len(); got > bound {
		t.Fatalf("Len = %d exceeds bound %d", got, bound)
	}
	st := c.Stats()
	if st.Evictions != 3*bound {
		t.Fatalf("evictions = %d, want %d", st.Evictions, 3*bound)
	}
	// The newest keys survive; the oldest were evicted.
	if _, created := c.lookup("key0"); !created {
		t.Error("oldest key survived LRU eviction")
	}
	if _, created := c.lookup(fmt.Sprintf("key%d", 4*bound-1)); created {
		t.Error("newest key was evicted")
	}
}

func TestCacheTouchOnHitProtectsFromEviction(t *testing.T) {
	const bound = 8
	c := NewCacheWith(CacheConfig{MaxEntries: bound})
	fill(c, bound) // keys 0..7, key0 the least recently used
	// Touch key0: key1 becomes the eviction candidate.
	if _, created := c.lookup("key0"); created {
		t.Fatal("key0 missing before overflow")
	}
	e, _ := c.lookup("fresh") // overflow by one
	close(e.ready)
	if _, created := c.lookup("key0"); created {
		t.Error("recently touched key0 was evicted")
	}
	if _, created := c.lookup("key1"); !created {
		t.Error("key1 should have been the LRU victim")
	}
}

func TestCacheNeverEvictsInFlightEntries(t *testing.T) {
	const bound = 4
	c := NewCacheWith(CacheConfig{MaxEntries: bound})
	// Fill the cache with in-flight (never-completed) entries past
	// the bound: none may be evicted.
	var owners []*entry
	for i := 0; i < 2*bound; i++ {
		e, created := c.lookup(fmt.Sprintf("inflight%d", i))
		if !created {
			t.Fatalf("entry %d pre-existing", i)
		}
		owners = append(owners, e)
	}
	if got := c.Len(); got != 2*bound {
		t.Fatalf("in-flight entries evicted: Len = %d, want %d", got, 2*bound)
	}
	if ev := c.Stats().Evictions; ev != 0 {
		t.Fatalf("evicted %d in-flight entries", ev)
	}
	// Complete them; the next insert pulls the cache back in bound.
	for _, e := range owners {
		close(e.ready)
	}
	e, _ := c.lookup("trigger")
	close(e.ready)
	if got := c.Len(); got > bound {
		t.Fatalf("Len = %d after completion + insert, want <= %d", got, bound)
	}
}

func TestCacheForgetReleasesCapacity(t *testing.T) {
	c := NewCacheWith(CacheConfig{MaxEntries: 4})
	fill(c, 4)
	c.forget("key0")
	if got := c.Len(); got != 3 {
		t.Fatalf("Len after forget = %d, want 3", got)
	}
	fill(c, 5) // re-inserts key0..key3 (key0 recreated), adds key4
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

func TestCacheBoundUnderConcurrency(t *testing.T) {
	const bound = 32
	c := NewCacheWith(CacheConfig{MaxEntries: bound})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				e, created := c.lookup(fmt.Sprintf("w%d-k%d", w, i))
				if created {
					close(e.ready)
				}
			}
		}(w)
	}
	wg.Wait()
	// Quiesced: everything is completed, so the bound must hold
	// after one more insert triggers a final eviction pass.
	e, created := c.lookup("final")
	if created {
		close(e.ready)
	}
	if got := c.Len(); got > bound {
		t.Fatalf("Len = %d after quiesce, bound %d", got, bound)
	}
	if ev := c.Stats().Evictions; ev < 8*200-bound {
		t.Fatalf("evictions = %d, want >= %d", ev, 8*200-bound)
	}
}

func TestChaosMissStormForcesRecompute(t *testing.T) {
	inj := chaos.New(42, chaos.Rule{Point: chaos.CacheLookup, Fault: chaos.Miss, Rate: 1})
	n, solver := countingSolver(0)
	e := New(Options{Solver: solver, Chaos: inj})
	spec := core.Spec{RAM: tech.SRAM, CapacityBytes: 1 << 20, BlockBytes: 64}

	const rounds = 5
	for i := 0; i < rounds; i++ {
		if _, _, err := e.Solve(context.Background(), spec); err != nil {
			t.Fatal(err)
		}
	}
	// Every repeat lookup was forced to miss: one solve per call.
	if got := n.Load(); got != rounds {
		t.Fatalf("solver ran %d times under a miss storm, want %d", got, rounds)
	}
	st := e.Stats()
	if st.CacheForcedMisses != rounds-1 {
		t.Fatalf("forced misses = %d, want %d", st.CacheForcedMisses, rounds-1)
	}
	snap := inj.Snapshot()[chaos.CacheLookup]
	if snap.Misses != rounds-1 {
		t.Fatalf("injector counted %d misses, want %d", snap.Misses, rounds-1)
	}
}

func TestChaosMissStormSparesInFlightEntries(t *testing.T) {
	inj := chaos.New(1, chaos.Rule{Point: chaos.CacheLookup, Fault: chaos.Miss, Rate: 1})
	c := NewCacheWith(CacheConfig{Chaos: inj})
	if _, created := c.lookup("k"); !created {
		t.Fatal("first lookup should create")
	}
	// The entry is still in flight: a forced miss must not steal
	// ownership.
	if _, created := c.lookup("k"); created {
		t.Fatal("miss storm created a second owner for an in-flight entry")
	}
	if c.Stats().ForcedMisses != 0 {
		t.Fatal("in-flight entry counted as a forced miss")
	}
}
