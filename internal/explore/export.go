package explore

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"

	"cactid/internal/core"
)

// SolutionJSON flattens a solution into the fields scripts consume.
// cmd/cactid -json and cactid-serve both emit exactly this shape, so
// the HTTP API and the CLI are byte-compatible for the same spec.
func SolutionJSON(s *core.Solution) map[string]any {
	m := map[string]any{
		"ram":                s.Spec.RAM.String(),
		"node_nm":            int(s.Spec.Node),
		"capacity_bytes":     s.Spec.CapacityBytes,
		"block_bytes":        s.Spec.BlockBytes,
		"associativity":      s.Spec.Associativity,
		"banks":              s.Spec.Banks,
		"access_mode":        s.Spec.Mode.String(),
		"access_time_s":      s.AccessTime,
		"random_cycle_s":     s.RandomCycle,
		"interleave_cycle_s": s.InterleaveCycle,
		"area_m2":            s.Area,
		"bank_area_m2":       s.BankArea,
		"area_efficiency":    s.AreaEff,
		"read_energy_j":      s.EReadPerAccess,
		"write_energy_j":     s.EWritePerAccess,
		"leakage_w":          s.LeakagePower,
		"refresh_w":          s.RefreshPower,
		"data_organization":  s.Data.Org.String(),
		"pipeline_stages":    s.Data.PipelineStages,
	}
	if s.Tag != nil {
		m["tag_organization"] = s.Tag.Org.String()
	}
	// Technology-axis fields appear only when they carry information:
	// the default ITRS family (Technology == "" after normalize) and
	// its symmetric-write cells emit exactly the pre-provider shape,
	// keeping golden outputs and downstream parsers stable.
	if s.Spec.Technology != "" {
		m["technology"] = s.Spec.Technology
	}
	if s.WriteTime > 0 {
		m["write_time_s"] = s.WriteTime
	}
	if s.WriteEndurance > 0 {
		m["write_endurance_cycles"] = s.WriteEndurance
	}
	return m
}

// ResultJSON is SolutionJSON plus the sweep bookkeeping fields; for
// errored points it carries the spec identity and the error instead
// of metrics.
func ResultJSON(r Result) map[string]any {
	var m map[string]any
	if r.Err != nil || r.Solution == nil {
		m = map[string]any{
			"ram":            r.Spec.RAM.String(),
			"node_nm":        int(r.Spec.Node),
			"capacity_bytes": r.Spec.CapacityBytes,
			"block_bytes":    r.Spec.BlockBytes,
			"associativity":  r.Spec.Associativity,
			"banks":          r.Spec.Banks,
			"access_mode":    r.Spec.Mode.String(),
		}
		if r.Spec.Technology != "" {
			m["technology"] = r.Spec.Technology
		}
		if r.Err != nil {
			m["error"] = r.Err.Error()
		}
	} else {
		m = SolutionJSON(r.Solution)
	}
	m["index"] = r.Index
	m["cached"] = r.Cached
	if r.Fingerprint != "" {
		m["fingerprint"] = r.Fingerprint
	}
	return m
}

// WriteJSON writes the sweep results as an indented JSON array in
// sweep order.
func WriteJSON(w io.Writer, results []Result) error {
	arr := make([]map[string]any, len(results))
	for i, r := range results {
		arr[i] = ResultJSON(r)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(arr)
}

// csvHeader is the fixed column set of WriteCSV.
var csvHeader = []string{
	"index", "fingerprint", "ram", "node_nm", "capacity_bytes",
	"block_bytes", "associativity", "banks", "access_mode",
	"access_time_s", "random_cycle_s", "interleave_cycle_s",
	"area_m2", "area_efficiency", "read_energy_j", "write_energy_j",
	"leakage_w", "refresh_w", "data_organization", "pipeline_stages",
	"cached", "error",
}

func fg(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteCSV writes one row per sweep point, in sweep order, mirroring
// internal/study's CSV exports. Errored points keep their spec
// columns and fill the error column.
func WriteCSV(w io.Writer, results []Result) error {
	cw := csv.NewWriter(w)
	records := make([][]string, 0, len(results)+1)
	records = append(records, csvHeader)
	for _, r := range results {
		rec := []string{
			strconv.Itoa(r.Index), r.Fingerprint,
			r.Spec.RAM.String(), strconv.Itoa(int(r.Spec.Node)),
			strconv.FormatInt(r.Spec.CapacityBytes, 10),
			strconv.Itoa(r.Spec.BlockBytes), strconv.Itoa(r.Spec.Associativity),
			strconv.Itoa(r.Spec.Banks), r.Spec.Mode.String(),
		}
		if r.Solution != nil {
			s := r.Solution
			rec = append(rec,
				fg(s.AccessTime), fg(s.RandomCycle), fg(s.InterleaveCycle),
				fg(s.Area), fg(s.AreaEff), fg(s.EReadPerAccess), fg(s.EWritePerAccess),
				fg(s.LeakagePower), fg(s.RefreshPower),
				s.Data.Org.String(), strconv.Itoa(s.Data.PipelineStages))
		} else {
			rec = append(rec, "", "", "", "", "", "", "", "", "", "", "")
		}
		rec = append(rec, strconv.FormatBool(r.Cached))
		if r.Err != nil {
			rec = append(rec, r.Err.Error())
		} else {
			rec = append(rec, "")
		}
		records = append(records, rec)
	}
	if err := cw.WriteAll(records); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}
