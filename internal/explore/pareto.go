package explore

import (
	"sort"

	"cactid/internal/core"
)

// dominates reports whether a is at least as good as b on all four
// optimization objectives — access time, per-read dynamic energy,
// leakage power, area — and strictly better on at least one.
func dominates(a, b *core.Solution) bool {
	if a.AccessTime > b.AccessTime || a.EReadPerAccess > b.EReadPerAccess ||
		a.LeakagePower > b.LeakagePower || a.Area > b.Area {
		return false
	}
	return a.AccessTime < b.AccessTime || a.EReadPerAccess < b.EReadPerAccess ||
		a.LeakagePower < b.LeakagePower || a.Area < b.Area
}

// Frontier extracts the Pareto-optimal subset of a sweep: results no
// other successful result dominates. Errored points are dropped;
// input (sweep) order is preserved, so the frontier is deterministic.
// Duplicate design points (same fingerprint) keep only their first
// occurrence.
func Frontier(results []Result) []Result {
	ok := make([]Result, 0, len(results))
	seen := make(map[string]bool, len(results))
	for _, r := range results {
		if r.Err != nil || r.Solution == nil || seen[r.Fingerprint] {
			continue
		}
		seen[r.Fingerprint] = true
		ok = append(ok, r)
	}
	frontier := make([]Result, 0, len(ok))
	for i, r := range ok {
		dominated := false
		for j, other := range ok {
			if i != j && dominates(other.Solution, r.Solution) {
				dominated = true
				break
			}
		}
		if !dominated {
			frontier = append(frontier, r)
		}
	}
	return frontier
}

// FrontierMerger accumulates sweep results incrementally, in any
// arrival order, and maintains the running Pareto frontier: the
// streaming form of Frontier for consumers that see points as they
// complete (Engine.SweepStream, or a sweep-fabric coordinator merging
// partial results from many workers). Frontier membership is
// order-independent (property-tested for the batch form), so feeding
// the merger results from interleaved workers is safe: Frontier()
// returns exactly Frontier(all results, in index order). Not safe for
// concurrent use; serialize Add calls (SweepStream already does).
type FrontierMerger struct {
	byFP map[string]int // fingerprint -> slot in live (first-index occurrence wins)
	live []Result       // current non-dominated set, unordered
}

// NewFrontierMerger returns an empty merger.
func NewFrontierMerger() *FrontierMerger {
	return &FrontierMerger{byFP: make(map[string]int)}
}

// Add feeds one result into the running frontier. Errored points are
// ignored, exactly as Frontier drops them; a duplicate fingerprint
// keeps only the occurrence with the smallest sweep index (duplicates
// share a solution, so dominance is unaffected either way).
func (m *FrontierMerger) Add(r Result) {
	if r.Err != nil || r.Solution == nil {
		return
	}
	if i, ok := m.byFP[r.Fingerprint]; ok {
		if i >= 0 && r.Index < m.live[i].Index {
			m.live[i] = r
		}
		return
	}
	for _, s := range m.live {
		if dominates(s.Solution, r.Solution) {
			// Remember the fingerprint so a re-arrival (or a higher-
			// index duplicate) is still recognized as seen.
			m.byFP[r.Fingerprint] = -1
			return
		}
	}
	// r survives: evict everything it dominates. Removal is safe —
	// dominance is transitive, so nothing kept only because a removed
	// point shielded it.
	kept := m.live[:0]
	for _, s := range m.live {
		if dominates(r.Solution, s.Solution) {
			m.byFP[s.Fingerprint] = -1
			continue
		}
		kept = append(kept, s)
	}
	m.live = append(kept, r)
	for i := range m.live {
		m.byFP[m.live[i].Fingerprint] = i
	}
}

// Frontier returns the current Pareto-optimal set in sweep (index)
// order — the same order Frontier produces for the full result list.
func (m *FrontierMerger) Frontier() []Result {
	out := make([]Result, len(m.live))
	copy(out, m.live)
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}
