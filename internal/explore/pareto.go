package explore

import "cactid/internal/core"

// dominates reports whether a is at least as good as b on all four
// optimization objectives — access time, per-read dynamic energy,
// leakage power, area — and strictly better on at least one.
func dominates(a, b *core.Solution) bool {
	if a.AccessTime > b.AccessTime || a.EReadPerAccess > b.EReadPerAccess ||
		a.LeakagePower > b.LeakagePower || a.Area > b.Area {
		return false
	}
	return a.AccessTime < b.AccessTime || a.EReadPerAccess < b.EReadPerAccess ||
		a.LeakagePower < b.LeakagePower || a.Area < b.Area
}

// Frontier extracts the Pareto-optimal subset of a sweep: results no
// other successful result dominates. Errored points are dropped;
// input (sweep) order is preserved, so the frontier is deterministic.
// Duplicate design points (same fingerprint) keep only their first
// occurrence.
func Frontier(results []Result) []Result {
	ok := make([]Result, 0, len(results))
	seen := make(map[string]bool, len(results))
	for _, r := range results {
		if r.Err != nil || r.Solution == nil || seen[r.Fingerprint] {
			continue
		}
		seen[r.Fingerprint] = true
		ok = append(ok, r)
	}
	frontier := make([]Result, 0, len(ok))
	for i, r := range ok {
		dominated := false
		for j, other := range ok {
			if i != j && dominates(other.Solution, r.Solution) {
				dominated = true
				break
			}
		}
		if !dominated {
			frontier = append(frontier, r)
		}
	}
	return frontier
}
