package explore

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"cactid/internal/array"
	"cactid/internal/chaos"
	"cactid/internal/core"
	"cactid/internal/store"
	"cactid/internal/tech"
)

// tierSolver is a counting fake whose solutions carry the full
// persistable surface (Data org + pipeline stages), unlike
// countingSolver's skeleton results which the durable tier rejects.
func tierSolver() (*atomic.Int64, func(context.Context, core.Spec) (*core.Solution, error)) {
	var n atomic.Int64
	return &n, func(_ context.Context, spec core.Spec) (*core.Solution, error) {
		n.Add(1)
		return &core.Solution{
			Spec:       spec,
			Data:       &array.Bank{Org: array.Org{Rows: 128, Cols: 256, Mux: 2, Mats: 4, Subbanks: 2, MatsPerSubbank: 2}, PipelineStages: 3},
			AccessTime: float64(spec.CapacityBytes),
		}, nil
	}
}

func openTier(t *testing.T, dir string) *store.Solutions {
	t.Helper()
	s, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return store.NewSolutions(s)
}

func TestTier1ServesRestartWithZeroSolves(t *testing.T) {
	dir := t.TempDir()
	spec := core.Spec{Node: tech.Node32, RAM: tech.SRAM, CapacityBytes: 64 << 10,
		BlockBytes: 64, Associativity: 4, IsCache: true}

	n1, solver1 := tierSolver()
	e1 := New(Options{Solver: solver1, Tier1: openTier(t, dir)})
	sol1, cached, err := e1.Solve(context.Background(), spec)
	if err != nil || cached {
		t.Fatalf("first solve: cached=%v err=%v", cached, err)
	}
	if n1.Load() != 1 {
		t.Fatalf("solver calls = %d, want 1", n1.Load())
	}
	st := e1.Stats()
	if st.Tier1Hits != 0 || st.Tier1Misses != 1 {
		t.Fatalf("first engine tier1 hits/misses = %d/%d, want 0/1", st.Tier1Hits, st.Tier1Misses)
	}

	// A second engine with a cold tier 0 on the same store models a
	// process restart: the result must come from tier 1, with zero
	// solver invocations, marked cached.
	n2, solver2 := tierSolver()
	e2 := New(Options{Solver: solver2, Tier1: openTier(t, dir)})
	sol2, cached, err := e2.Solve(context.Background(), spec)
	if err != nil || !cached {
		t.Fatalf("restart solve: cached=%v err=%v", cached, err)
	}
	if n2.Load() != 0 {
		t.Fatalf("solver ran %d times after restart, want 0", n2.Load())
	}
	st = e2.Stats()
	if st.Tier1Hits != 1 || st.Solves != 0 {
		t.Fatalf("restart stats = %+v", st)
	}
	if sol2.AccessTime != sol1.AccessTime || sol2.Data.Org != sol1.Data.Org ||
		sol2.Data.PipelineStages != sol1.Data.PipelineStages {
		t.Fatalf("rehydrated solution drifted: %+v vs %+v", sol2, sol1)
	}

	// Within e2 the tier-1 hit filled tier 0: a repeat costs nothing.
	if _, cached, _ := e2.Solve(context.Background(), spec); !cached {
		t.Fatal("tier-1 hit did not fill tier 0")
	}
	if hits := e2.Stats().Tier1Hits; hits != 1 {
		t.Fatalf("tier-1 consulted again on a tier-0 hit: %d", hits)
	}
}

func TestTier1PersistsNoSolutionVerdict(t *testing.T) {
	dir := t.TempDir()
	var n atomic.Int64
	solver := func(context.Context, core.Spec) (*core.Solution, error) {
		n.Add(1)
		return nil, fmt.Errorf("spec rejected: %w", core.ErrNoSolution)
	}
	spec := core.Spec{Node: tech.Node32, RAM: tech.SRAM, CapacityBytes: 64 << 10, BlockBytes: 64}

	e1 := New(Options{Solver: solver, Tier1: openTier(t, dir)})
	_, _, err1 := e1.Solve(context.Background(), spec)
	if !errors.Is(err1, core.ErrNoSolution) {
		t.Fatalf("err = %v", err1)
	}

	e2 := New(Options{Solver: solver, Tier1: openTier(t, dir)})
	_, cached, err2 := e2.Solve(context.Background(), spec)
	if !cached || n.Load() != 1 {
		t.Fatalf("verdict not served from tier 1: cached=%v solves=%d", cached, n.Load())
	}
	if !errors.Is(err2, core.ErrNoSolution) || err2.Error() != err1.Error() {
		t.Fatalf("rehydrated error drifted: %q vs %q", err2, err1)
	}
}

func TestTier1DoesNotPersistCancellation(t *testing.T) {
	dir := t.TempDir()
	solver := func(ctx context.Context, _ core.Spec) (*core.Solution, error) {
		return nil, context.Canceled
	}
	spec := core.Spec{Node: tech.Node32, RAM: tech.SRAM, CapacityBytes: 64 << 10, BlockBytes: 64}
	tier := openTier(t, dir)
	e := New(Options{Solver: solver, Tier1: tier})
	if _, _, err := e.Solve(context.Background(), spec); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if tier.Store().Len() != 0 {
		t.Fatal("cancellation persisted to the durable tier")
	}
}

func TestTier1ReadFaultAbsorbedAsMiss(t *testing.T) {
	dir := t.TempDir()
	spec := core.Spec{Node: tech.Node32, RAM: tech.SRAM, CapacityBytes: 64 << 10,
		BlockBytes: 64, Associativity: 4, IsCache: true}

	n1, solver1 := tierSolver()
	e1 := New(Options{Solver: solver1, Tier1: openTier(t, dir)})
	if _, _, err := e1.Solve(context.Background(), spec); err != nil || n1.Load() != 1 {
		t.Fatalf("seed solve: err=%v n=%d", err, n1.Load())
	}

	// Every tier-1 read faults: the engine must fall through to the
	// solver and still answer correctly, with no surfaced error.
	inj := chaos.New(99, chaos.Rule{Point: chaos.StoreGet, Fault: chaos.Cancel, Rate: 1})
	s, err := store.Open(store.Config{Dir: dir, Chaos: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	n2, solver2 := tierSolver()
	e2 := New(Options{Solver: solver2, Tier1: store.NewSolutions(s)})
	sol, cached, err := e2.Solve(context.Background(), spec)
	if err != nil || sol == nil {
		t.Fatalf("solve under read faults: err=%v", err)
	}
	if cached || n2.Load() != 1 {
		t.Fatalf("expected solver fallback: cached=%v n=%d", cached, n2.Load())
	}
}

func TestTier1SweepByteIdenticalAcrossRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("real solver")
	}
	dir := t.TempDir()
	g := Grid{
		Base: core.Spec{Node: tech.Node32, RAM: tech.SRAM, IsCache: true,
			MaxPipelineStages: 6},
		Capacities: []int64{32 << 10, 64 << 10},
		Assocs:     []int{1, 4},
		Blocks:     []int{64},
	}
	ctx := context.Background()

	e1 := New(Options{Tier1: openTier(t, dir)})
	e1.SweepGrid(ctx, g) // cold pass populates the store
	warm1, _ := e1.SweepGrid(ctx, g)
	var a bytes.Buffer
	if err := WriteJSON(&a, warm1); err != nil {
		t.Fatal(err)
	}

	// Fresh engine + reopened store = restarted process. Its sweep
	// must be byte-identical to the first process's warm sweep (both
	// report cached=true everywhere) with zero solver invocations.
	e2 := New(Options{Tier1: openTier(t, dir)})
	warm2, _ := e2.SweepGrid(ctx, g)
	var b bytes.Buffer
	if err := WriteJSON(&b, warm2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("restart sweep not byte-identical:\n%s\nvs\n%s", a.Bytes(), b.Bytes())
	}
	if st := e2.Stats(); st.Solves != 0 || st.Tier1Hits != int64(len(warm2)) {
		t.Fatalf("restart stats = %+v, want all tier-1 hits", st)
	}

	var csvA, csvB bytes.Buffer
	if err := WriteCSV(&csvA, warm1); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&csvB, warm2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csvA.Bytes(), csvB.Bytes()) {
		t.Fatal("restart CSV export not byte-identical")
	}
}

// pinnedOutputDigest is the SHA-256 over the reference solves' metric
// surface, formatted to 7 significant digits — the same surface
// TestSolvePinnedOutput pins field by field.
func pinnedOutputDigest(t *testing.T) string {
	t.Helper()
	e := New(Options{})
	specs := []core.Spec{
		{Node: tech.Node32, RAM: tech.SRAM, CapacityBytes: 64 << 10,
			BlockBytes: 64, Associativity: 4, Banks: 1, IsCache: true, MaxPipelineStages: 6},
		{Node: tech.Node32, RAM: tech.LPDRAM, CapacityBytes: 16 << 20,
			BlockBytes: 64, Associativity: 8, Banks: 8, IsCache: true,
			Mode: core.Sequential, PageBits: 8192, MaxPipelineStages: 6},
	}
	h := sha256.New()
	for _, spec := range specs {
		sol, _, err := e.Solve(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(h, "%.6e|%.6e|%.6e|%.6e|%.6e|%.6e|%.6e|%.6e|%d\n",
			sol.AccessTime, sol.RandomCycle, sol.InterleaveCycle,
			sol.Area, sol.AreaEff, sol.EReadPerAccess, sol.EWritePerAccess,
			sol.LeakagePower, sol.Data.PipelineStages)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestModelVersionTripwire ties core.ModelVersion to a digest of the
// pinned reference outputs: a numeric change breaks the digest, and
// fixing this test forces the pinned pair below — version and digest
// — to move together in the same commit. Persisted store records are
// keyed by ModelVersion, so this is what keeps stale durable results
// unreachable after a model change.
func TestModelVersionTripwire(t *testing.T) {
	if testing.Short() {
		t.Skip("real solver")
	}
	// Version 2 bumped for the technology-provider wire-schema change
	// (Spec.Technology, Solution.WriteTime/WriteEndurance); the digest
	// is unchanged because the ITRS numbers did not move — the provider
	// refactor is byte-identical (TestProviderITRSByteIdentical).
	const (
		pinnedVersion = 2
		pinnedDigest  = "77373d039c5170a40f9bc1f94afcf0612c9ddd34091d9e59ff1c81ea940d0cec"
	)
	if core.ModelVersion != pinnedVersion {
		t.Fatalf("core.ModelVersion = %d but the tripwire pins %d: update pinnedVersion AND pinnedDigest together",
			core.ModelVersion, pinnedVersion)
	}
	if got := pinnedOutputDigest(t); got != pinnedDigest {
		t.Fatalf("pinned-output digest drifted:\n got %s\nwant %s\nNumbers moved: bump core.ModelVersion and re-pin both constants in this commit.",
			got, pinnedDigest)
	}
}
