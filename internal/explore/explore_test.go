package explore

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cactid/internal/core"
	"cactid/internal/tech"
)

// testGrid is a 64-point SRAM grid of small, fast-to-solve caches:
// 4 capacities x 4 associativities x 2 block sizes x 2 modes.
func testGrid() Grid {
	return Grid{
		Base: core.Spec{Node: tech.Node32, RAM: tech.SRAM, IsCache: true,
			MaxPipelineStages: 6},
		Capacities: []int64{32 << 10, 64 << 10, 128 << 10, 256 << 10},
		Assocs:     []int{1, 2, 4, 8},
		Blocks:     []int{32, 64},
		Modes:      []core.AccessMode{core.Normal, core.Sequential},
	}
}

func TestGridExpandDeterministicOrder(t *testing.T) {
	g := testGrid()
	if got := g.Points(); got != 64 {
		t.Fatalf("Points = %d, want 64", got)
	}
	a, skipA := g.Expand()
	b, skipB := g.Expand()
	if skipA != 0 || skipB != 0 {
		t.Fatalf("unexpected skips: %d, %d", skipA, skipB)
	}
	if len(a) != 64 || len(b) != 64 {
		t.Fatalf("expanded %d/%d specs, want 64", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("expansion not deterministic at %d", i)
		}
	}
	// Axis-major order: the last axis (mode) toggles fastest.
	if a[0].Mode != core.Normal || a[1].Mode != core.Sequential {
		t.Error("mode axis should toggle fastest")
	}
	if a[0].CapacityBytes != 32<<10 || a[63].CapacityBytes != 256<<10 {
		t.Error("capacity axis should be outermost of the varied axes")
	}
}

func TestGridExpandSkipsInfeasiblePoints(t *testing.T) {
	g := Grid{
		Base:       core.Spec{Node: tech.Node32, RAM: tech.SRAM, BlockBytes: 64, IsCache: true},
		Capacities: []int64{1000, 64 << 10}, // 1000 not divisible by 3 banks
		Banks:      []int{1, 3},
		Assocs:     []int{1},
	}
	specs, skipped := g.Expand()
	// 1000B: %1 ok but <64*1... 1000/1 >= 64 so feasible; %3 != 0 skip.
	// 64KB: ok with 1 bank; 64K%3 != 0 skip.
	if len(specs) != 2 || skipped != 2 {
		t.Fatalf("got %d specs, %d skipped; want 2, 2", len(specs), skipped)
	}
	// A point with fewer than one set per bank is dropped too.
	g2 := Grid{Base: core.Spec{RAM: tech.SRAM, BlockBytes: 64, Associativity: 16, CapacityBytes: 512}}
	if specs, skipped := g2.Expand(); len(specs) != 0 || skipped != 1 {
		t.Fatalf("sub-set point kept: %d specs, %d skipped", len(specs), skipped)
	}
}

// countingSolver wraps a fake solver and counts invocations.
func countingSolver(delay time.Duration) (*atomic.Int64, func(context.Context, core.Spec) (*core.Solution, error)) {
	var n atomic.Int64
	return &n, func(_ context.Context, spec core.Spec) (*core.Solution, error) {
		n.Add(1)
		if delay > 0 {
			time.Sleep(delay)
		}
		return &core.Solution{Spec: spec, AccessTime: float64(spec.CapacityBytes)}, nil
	}
}

func TestSolveCachesFingerprintEqualSpecs(t *testing.T) {
	n, solver := countingSolver(0)
	e := New(Options{Solver: solver})
	ctx := context.Background()

	a := core.Spec{RAM: tech.SRAM, CapacityBytes: 1 << 20, BlockBytes: 64, IsCache: true, Associativity: 8}
	b := a
	b.Banks = 1 // defaulted field spelled out: same fingerprint
	b.Weights = &core.Weights{DynamicEnergy: 1, LeakagePower: 1, RandomCycle: 1, InterleaveCycle: 1}

	if _, cached, err := e.Solve(ctx, a); err != nil || cached {
		t.Fatalf("first solve: cached=%v err=%v", cached, err)
	}
	if _, cached, err := e.Solve(ctx, b); err != nil || !cached {
		t.Fatalf("fingerprint-equal solve not cached: cached=%v err=%v", cached, err)
	}
	if got := n.Load(); got != 1 {
		t.Fatalf("solver ran %d times, want 1", got)
	}
	st := e.Stats()
	if st.Solves != 1 || st.CacheHits != 1 || st.CacheEntries != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.HitRatio() != 0.5 {
		t.Fatalf("hit ratio %g, want 0.5", st.HitRatio())
	}
}

func TestWarmSweepDoesZeroSolverCalls(t *testing.T) {
	n, solver := countingSolver(0)
	e := New(Options{Workers: 4, Solver: solver})
	specs, _ := testGrid().Expand()

	cold := e.Sweep(context.Background(), specs)
	coldSolves := n.Load()
	if coldSolves != int64(len(specs)) {
		t.Fatalf("cold sweep ran solver %d times for %d points", coldSolves, len(specs))
	}
	warm := e.Sweep(context.Background(), specs)
	if got := n.Load(); got != coldSolves {
		t.Fatalf("warm sweep ran the solver %d more times", got-coldSolves)
	}
	for i, r := range warm {
		if !r.Cached || r.Err != nil {
			t.Fatalf("warm point %d: cached=%v err=%v", i, r.Cached, r.Err)
		}
		if r.Solution != cold[i].Solution {
			t.Fatalf("warm point %d returned a different solution", i)
		}
	}
}

func TestParallelSweepMatchesSerialByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("real-solver sweep")
	}
	specs, skipped := testGrid().Expand()
	if len(specs) < 64 || skipped != 0 {
		t.Fatalf("grid expanded to %d specs (%d skipped), want >= 64", len(specs), skipped)
	}
	serial := New(Options{Workers: 1}).Sweep(context.Background(), specs)
	parallel := New(Options{Workers: 8}).Sweep(context.Background(), specs)

	var bufS, bufP bytes.Buffer
	if err := WriteCSV(&bufS, serial); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&bufP, parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufS.Bytes(), bufP.Bytes()) {
		t.Fatal("parallel sweep CSV differs from serial")
	}
	var jS, jP bytes.Buffer
	if err := WriteJSON(&jS, serial); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&jP, parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jS.Bytes(), jP.Bytes()) {
		t.Fatal("parallel sweep JSON differs from serial")
	}
}

func TestSweepRecordsPerPointErrors(t *testing.T) {
	e := New(Options{Workers: 2})
	specs := []core.Spec{
		{RAM: tech.SRAM, CapacityBytes: 64 << 10, BlockBytes: 64, Node: tech.Node32},
		{RAM: tech.COMMDRAM, CapacityBytes: 1 << 20, BlockBytes: 64, PageBits: 7, Node: tech.Node32}, // no solution
		{RAM: tech.SRAM, CapacityBytes: -1, BlockBytes: 64},                                          // invalid spec
	}
	res := e.Sweep(context.Background(), specs)
	if res[0].Err != nil || res[0].Solution == nil {
		t.Fatalf("point 0 should solve: %v", res[0].Err)
	}
	if !errors.Is(res[1].Err, core.ErrNoSolution) {
		t.Fatalf("point 1 err = %v, want ErrNoSolution", res[1].Err)
	}
	if res[2].Err == nil || res[2].Fingerprint != "" {
		t.Fatal("invalid spec must error without a fingerprint")
	}
	// Failures are cached (negative caching): re-sweeping stays warm.
	before := e.Stats().Solves
	res2 := e.Sweep(context.Background(), specs)
	if e.Stats().Solves != before {
		t.Fatal("re-sweep recomputed points")
	}
	if !errors.Is(res2[1].Err, core.ErrNoSolution) || !res2[1].Cached {
		t.Fatal("cached failure lost its error")
	}
}

func TestSweepCancellation(t *testing.T) {
	n, solver := countingSolver(5 * time.Millisecond)
	e := New(Options{Workers: 1, Solver: solver})
	specs, _ := testGrid().Expand()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := e.Sweep(ctx, specs)
	if got := n.Load(); got > 2 {
		t.Fatalf("cancelled sweep still ran %d solves", got)
	}
	tail := 0
	for _, r := range res {
		if errors.Is(r.Err, context.Canceled) {
			tail++
		}
	}
	if tail < len(specs)-2 {
		t.Fatalf("only %d/%d points marked cancelled", tail, len(specs))
	}
}

func TestInFlightDedup(t *testing.T) {
	n, solver := countingSolver(20 * time.Millisecond)
	e := New(Options{Solver: solver})
	spec := core.Spec{RAM: tech.SRAM, CapacityBytes: 1 << 20, BlockBytes: 64}

	const callers = 16
	var wg sync.WaitGroup
	var hits atomic.Int64
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, cached, err := e.Solve(context.Background(), spec)
			if err != nil {
				t.Error(err)
			}
			if cached {
				hits.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := n.Load(); got != 1 {
		t.Fatalf("solver ran %d times under concurrency, want 1", got)
	}
	if hits.Load() != callers-1 {
		t.Fatalf("%d callers reported cached, want %d", hits.Load(), callers-1)
	}
}

func TestSharedCacheAcrossEngines(t *testing.T) {
	cache := NewCache()
	n1, s1 := countingSolver(0)
	n2, s2 := countingSolver(0)
	e1 := New(Options{Cache: cache, Solver: s1})
	e2 := New(Options{Cache: cache, Solver: s2})
	spec := core.Spec{RAM: tech.SRAM, CapacityBytes: 1 << 20, BlockBytes: 64}
	if _, _, err := e1.Solve(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if _, cached, err := e2.Solve(context.Background(), spec); err != nil || !cached {
		t.Fatalf("shared cache missed: cached=%v err=%v", cached, err)
	}
	if n1.Load() != 1 || n2.Load() != 0 {
		t.Fatalf("solver calls %d/%d, want 1/0", n1.Load(), n2.Load())
	}
}

func TestEngineDefaultSolver(t *testing.T) {
	e := New(Options{})
	sol, cached, err := e.Solve(context.Background(),
		core.Spec{Node: tech.Node32, RAM: tech.SRAM, CapacityBytes: 64 << 10, BlockBytes: 64})
	if err != nil || cached || sol == nil {
		t.Fatalf("default solver failed: %v", err)
	}
	if sol.AccessTime <= 0 || sol.Area <= 0 {
		t.Fatalf("implausible solution %+v", sol)
	}
}
