package explore

import (
	"bytes"
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"cactid/internal/chaos"
	"cactid/internal/core"
	"cactid/internal/tech"
)

func TestChaosPanicConvertedToSolveError(t *testing.T) {
	inj := chaos.New(5, chaos.Rule{Point: chaos.ExploreSolve, Fault: chaos.Panic, Rate: 1})
	n, solver := countingSolver(0)
	e := New(Options{Solver: solver, Chaos: inj})
	spec := core.Spec{RAM: tech.SRAM, CapacityBytes: 1 << 20, BlockBytes: 64}

	_, _, err := e.Solve(context.Background(), spec)
	if !errors.Is(err, ErrSolverPanic) {
		t.Fatalf("err = %v, want ErrSolverPanic", err)
	}
	if n.Load() != 0 {
		t.Error("solver ran despite the pre-solve panic")
	}
	if got := e.Stats().Panics; got != 1 {
		t.Fatalf("panics counter = %d, want 1", got)
	}
	// The panic error is cached like any other failure: the entry is
	// complete, so waiters are not stranded and a re-solve stays warm.
	_, cached, err := e.Solve(context.Background(), spec)
	if !errors.Is(err, ErrSolverPanic) || !cached {
		t.Fatalf("re-solve after panic: cached=%v err=%v", cached, err)
	}
}

func TestPanickingSolverDoesNotStrandWaiters(t *testing.T) {
	// A solver that panics organically (no chaos): concurrent callers
	// parked on the in-flight entry must all get ErrSolverPanic, not
	// deadlock.
	solver := func(context.Context, core.Spec) (*core.Solution, error) {
		time.Sleep(10 * time.Millisecond)
		panic("model bug")
	}
	e := New(Options{Solver: solver})
	spec := core.Spec{RAM: tech.SRAM, CapacityBytes: 1 << 20, BlockBytes: 64}
	errc := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			_, _, err := e.Solve(context.Background(), spec)
			errc <- err
		}()
	}
	for i := 0; i < 8; i++ {
		select {
		case err := <-errc:
			if !errors.Is(err, ErrSolverPanic) {
				t.Fatalf("waiter %d got %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("waiter stranded after solver panic")
		}
	}
	if got := e.Stats().Panics; got != 1 {
		t.Fatalf("panics = %d, want 1 (one owner, 7 waiters)", got)
	}
}

func TestChaosWorkerPanicConfinedToPoint(t *testing.T) {
	inj := chaos.New(2, chaos.Rule{Point: chaos.ExploreWorker, Fault: chaos.Panic, Rate: 0.5})
	_, solver := countingSolver(0)
	e := New(Options{Workers: 4, Solver: solver, Chaos: inj})
	specs, _ := testGrid().Expand()

	res := e.Sweep(context.Background(), specs)
	panicked, solved := 0, 0
	for i, r := range res {
		switch {
		case r.Err == nil && r.Solution != nil:
			solved++
		case errors.Is(r.Err, ErrSolverPanic):
			panicked++
		default:
			t.Fatalf("point %d: unexpected state err=%v", i, r.Err)
		}
	}
	if panicked == 0 || solved == 0 {
		t.Fatalf("want a mix of panicked and solved points, got %d/%d", panicked, solved)
	}
	if got := e.Stats().Panics; got != int64(panicked) {
		t.Fatalf("panics counter %d, want %d", got, panicked)
	}
	snap := inj.Snapshot()[chaos.ExploreWorker]
	if snap.Armed != int64(len(specs)) || snap.Panics != int64(panicked) {
		t.Fatalf("injector snapshot %+v vs %d points %d panics", snap, len(specs), panicked)
	}
}

func TestChaosWorkerCancelMarksPoints(t *testing.T) {
	inj := chaos.New(3, chaos.Rule{Point: chaos.ExploreWorker, Fault: chaos.Cancel, Rate: 1})
	n, solver := countingSolver(0)
	e := New(Options{Workers: 2, Solver: solver, Chaos: inj})
	specs, _ := testGrid().Expand()
	res := e.Sweep(context.Background(), specs)
	for i, r := range res {
		if !errors.Is(r.Err, context.Canceled) || !errors.Is(r.Err, chaos.ErrInjected) {
			t.Fatalf("point %d err = %v, want injected cancellation", i, r.Err)
		}
	}
	if n.Load() != 0 {
		t.Error("solver ran despite worker-level cancellation")
	}
}

func TestChaosSolveCancelDoesNotPoisonCache(t *testing.T) {
	// Injected cancellation at the solve point is indistinguishable
	// from a requester hanging up: the entry must be forgotten so a
	// later caller recomputes successfully.
	inj := chaos.New(4, chaos.Rule{Point: chaos.ExploreSolve, Fault: chaos.Cancel, Rate: 1})
	n, solver := countingSolver(0)
	e := New(Options{Solver: solver, Chaos: inj})
	spec := core.Spec{RAM: tech.SRAM, CapacityBytes: 1 << 20, BlockBytes: 64}
	if _, _, err := e.Solve(context.Background(), spec); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want injected cancel", err)
	}
	if got := e.Stats().CacheEntries; got != 0 {
		t.Fatalf("cancelled solve left %d cache entries", got)
	}
	// A fresh engine sharing no chaos succeeds; here the same engine
	// with injection still firing keeps failing but never deadlocks.
	if _, _, err := e.Solve(context.Background(), spec); !errors.Is(err, context.Canceled) {
		t.Fatalf("second solve err = %v", err)
	}
	if n.Load() != 0 {
		t.Error("solver ran under a rate-1 cancel rule")
	}
}

func TestChaosLatencySlowsSweep(t *testing.T) {
	const delay = 20 * time.Millisecond
	inj := chaos.New(6, chaos.Rule{Point: chaos.ExploreSolve, Fault: chaos.Latency, Rate: 1, Latency: delay})
	_, solver := countingSolver(0)
	e := New(Options{Workers: 1, Solver: solver, Chaos: inj})
	spec := core.Spec{RAM: tech.SRAM, CapacityBytes: 1 << 20, BlockBytes: 64}
	start := time.Now()
	if _, _, err := e.Solve(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < delay {
		t.Fatalf("latency injection had no effect: solve took %v", d)
	}
	if inj.Snapshot()[chaos.ExploreSolve].Latencies != 1 {
		t.Fatal("latency fault not counted")
	}
}

// TestChaosDisabledSweepByteIdentical: an engine with a disarmed
// injector produces byte-identical output to one with no injector at
// all — the no-op guarantee behind every chaos hook.
func TestChaosDisabledSweepByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("real-solver sweep")
	}
	specs, _ := testGrid().Expand()
	plain := New(Options{Workers: 4}).Sweep(context.Background(), specs)
	armedButSilent := New(Options{Workers: 4, Chaos: chaos.New(99)}).Sweep(context.Background(), specs)

	var a, b bytes.Buffer
	if err := WriteCSV(&a, plain); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&b, armedButSilent); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("disarmed chaos injector changed sweep output")
	}
}

// TestSolvePinnedOutput pins the engine's solver output for two
// reference specs to 7 significant digits. Like the validate.Micron
// pins, this is a determinism tripwire, not an accuracy check: the
// chaos/eviction/admission layers must not move published numbers by
// even one ulp when injection is disabled. A deliberate model change
// must update these constants in the same commit.
func TestSolvePinnedOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("real solver")
	}
	e := New(Options{CacheEntries: 64}) // bounded cache must not alter results
	pins := []struct {
		name string
		spec core.Spec
		want map[string]float64
	}{
		{
			name: "sram-64KB-4way",
			spec: core.Spec{Node: tech.Node32, RAM: tech.SRAM, CapacityBytes: 64 << 10,
				BlockBytes: 64, Associativity: 4, Banks: 1, IsCache: true, MaxPipelineStages: 6},
			want: map[string]float64{
				"AccessTime":     6.359686e-10,
				"EReadPerAccess": 1.063630e-10,
				"LeakagePower":   2.109295e-02,
				"Area":           1.522922e-07,
				"RandomCycle":    1.868909e-10,
			},
		},
		{
			name: "lpdram-16MB-8way",
			spec: core.Spec{Node: tech.Node32, RAM: tech.LPDRAM, CapacityBytes: 16 << 20,
				BlockBytes: 64, Associativity: 8, Banks: 8, IsCache: true,
				Mode: core.Sequential, PageBits: 8192, MaxPipelineStages: 6},
			want: map[string]float64{
				"AccessTime":     2.155344e-09,
				"EReadPerAccess": 3.521534e-10,
				"LeakagePower":   5.001937e-01,
				"Area":           8.518432e-06,
			},
		},
	}
	const relTol = 1e-5 // the pins carry 7 significant digits
	for _, p := range pins {
		t.Run(p.name, func(t *testing.T) {
			sol, _, err := e.Solve(context.Background(), p.spec)
			if err != nil {
				t.Fatal(err)
			}
			got := map[string]float64{
				"AccessTime":     sol.AccessTime,
				"EReadPerAccess": sol.EReadPerAccess,
				"LeakagePower":   sol.LeakagePower,
				"Area":           sol.Area,
				"RandomCycle":    sol.RandomCycle,
			}
			for name, want := range p.want {
				if math.Abs(got[name]-want) > relTol*math.Abs(want) {
					t.Errorf("%s = %.6e, pinned %.6e", name, got[name], want)
				}
			}
		})
	}
}
