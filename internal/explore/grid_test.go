package explore

import (
	"encoding/json"
	"testing"

	"cactid/internal/core"
	"cactid/internal/tech"
)

func TestParseSize(t *testing.T) {
	good := map[string]int64{
		"64":     64,
		"512B":   512,
		"32KB":   32 << 10,
		"4MB":    4 << 20,
		"2GB":    2 << 30,
		"1.5MB":  3 << 19,
		"8kb":    8 << 10,
		"1G":     1 << 30 / 8, // gigabit
		"2Gbit":  2 << 30 / 8,
		" 16MB ": 16 << 20,
	}
	for in, want := range good {
		got, err := ParseSize(in)
		if err != nil {
			t.Errorf("ParseSize(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseSize(%q) = %d, want %d", in, got, want)
		}
	}
	bad := []string{
		"", "abc", "12XB", "MB", // malformed
		"0", "0MB", "-1", "-4KB", // non-positive
		"1e30GB", "99999999999GB", "9223372036854775807KB", // overflow
		"NaNMB", // not a number... strconv accepts "NaN"!
	}
	for _, in := range bad {
		if got, err := ParseSize(in); err == nil {
			t.Errorf("ParseSize(%q) = %d, want error", in, got)
		}
	}
}

func TestParseRAM(t *testing.T) {
	good := map[string]tech.RAMType{
		"sram": tech.SRAM, "SRAM": tech.SRAM,
		"lp-dram": tech.LPDRAM, "lpdram": tech.LPDRAM, "lp": tech.LPDRAM,
		"comm-dram": tech.COMMDRAM, "comm": tech.COMMDRAM, "cm": tech.COMMDRAM,
	}
	for in, want := range good {
		if got, err := ParseRAM(in); err != nil || got != want {
			t.Errorf("ParseRAM(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "flash", "dram"} {
		if _, err := ParseRAM(bad); err == nil {
			t.Errorf("ParseRAM(%q) should fail", bad)
		}
	}
}

func TestParseMode(t *testing.T) {
	good := map[string]core.AccessMode{
		"": core.Normal, "normal": core.Normal, "n": core.Normal,
		"seq": core.Sequential, "sequential": core.Sequential, "SEQUENTIAL": core.Sequential,
		"fast": core.Fast, "f": core.Fast,
	}
	for in, want := range good {
		if got, err := ParseMode(in); err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"slow", "x", "normal2"} {
		if _, err := ParseMode(bad); err == nil {
			t.Errorf("ParseMode(%q) should fail", bad)
		}
	}
}

func TestSpecRequestDefaults(t *testing.T) {
	s, err := SpecRequest{Capacity: "4MB"}.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if s.CapacityBytes != 4<<20 || s.BlockBytes != 64 || !s.IsCache ||
		s.RAM != tech.SRAM || s.Mode != core.Normal {
		t.Fatalf("defaults wrong: %+v", s)
	}
	no := false
	s2, err := SpecRequest{Capacity: "1MB", Cache: &no, RAM: "comm-dram", Mode: "seq", NodeNM: 45}.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if s2.IsCache || s2.RAM != tech.COMMDRAM || s2.Mode != core.Sequential || s2.Node != tech.Node45 {
		t.Fatalf("explicit fields lost: %+v", s2)
	}
	for _, bad := range []SpecRequest{
		{Capacity: "zap"},
		{Capacity: "1MB", RAM: "flash"},
		{Capacity: "1MB", Mode: "warp"},
	} {
		if _, err := bad.Spec(); err == nil {
			t.Errorf("request %+v should fail", bad)
		}
	}
}

func TestSweepRequestGrid(t *testing.T) {
	raw := `{
		"base": {"ram": "sram", "node_nm": 32, "block_bytes": 64},
		"capacities": ["32KB", "64KB"],
		"associativities": [2, 4],
		"modes": ["normal", "seq"],
		"rams": ["sram", "lp-dram"]
	}`
	var req SweepRequest
	if err := json.Unmarshal([]byte(raw), &req); err != nil {
		t.Fatal(err)
	}
	g, err := req.Grid()
	if err != nil {
		t.Fatal(err)
	}
	if g.Points() != 16 {
		t.Fatalf("Points = %d, want 16", g.Points())
	}
	specs, skipped := g.Expand()
	if len(specs) != 16 || skipped != 0 {
		t.Fatalf("expanded %d specs (%d skipped), want 16", len(specs), skipped)
	}
	if specs[0].RAM != tech.SRAM || specs[len(specs)-1].RAM != tech.LPDRAM {
		t.Error("RAM axis order wrong")
	}
	// Bad axis values propagate.
	req.Capacities = []string{"1ZB"}
	if _, err := req.Grid(); err == nil {
		t.Error("bad capacity axis should fail")
	}
}
