package explore

import (
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"cactid/internal/core"
	"cactid/internal/tech"
)

// TestSolvePinnedTechOutput pins the first published numbers of the
// non-ITRS providers to 7 significant digits, the same determinism
// discipline as TestSolvePinnedOutput: any model change must move
// these constants in the same commit, alongside core.ModelVersion.
func TestSolvePinnedTechOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("real solver")
	}
	e := New(Options{})
	base := core.Spec{Node: tech.Node32, CapacityBytes: 4 << 20,
		BlockBytes: 64, Associativity: 8, Banks: 1, IsCache: true,
		MaxPipelineStages: 6}
	pins := []struct {
		name string
		want map[string]float64
	}{
		{
			name: "stt-ram",
			want: map[string]float64{
				"AccessTime":     1.069671e-09,
				"RandomCycle":    1.872195e-10,
				"Area":           2.420787e-06,
				"EReadPerAccess": 2.737538e-10,
				"LeakagePower":   1.656968e-01,
				"WriteTime":      1.106967e-08,
				"WriteEndurance": 4.000000e+12,
			},
		},
		{
			name: "gain-cell",
			want: map[string]float64{
				"AccessTime":     1.120017e-09,
				"RandomCycle":    1.966272e-10,
				"Area":           2.498597e-06,
				"EReadPerAccess": 2.787489e-10,
				"LeakagePower":   1.502141e-01,
				"RefreshPower":   3.339461e-03,
			},
		},
	}
	const relTol = 1e-5 // the pins carry 7 significant digits
	for _, p := range pins {
		t.Run(p.name, func(t *testing.T) {
			spec := base
			spec.Technology = p.name
			sol, _, err := e.Solve(context.Background(), spec)
			if err != nil {
				t.Fatal(err)
			}
			got := map[string]float64{
				"AccessTime":     sol.AccessTime,
				"RandomCycle":    sol.RandomCycle,
				"Area":           sol.Area,
				"EReadPerAccess": sol.EReadPerAccess,
				"LeakagePower":   sol.LeakagePower,
				"WriteTime":      sol.WriteTime,
				"WriteEndurance": sol.WriteEndurance,
				"RefreshPower":   sol.RefreshPower,
			}
			for name, want := range p.want {
				if math.Abs(got[name]-want) > relTol*math.Abs(want) {
					t.Errorf("%s = %.6e, pinned %.6e", name, got[name], want)
				}
			}
		})
	}
}

// Asking for the default provider by any of its names must be
// indistinguishable from not asking at all: same canonical spec, same
// fingerprint — so pre-provider store records and goldens keep
// resolving.
func TestDefaultTechnologySpellingsCanonicalize(t *testing.T) {
	plain := core.Spec{Node: tech.Node32, RAM: tech.SRAM, CapacityBytes: 64 << 10,
		BlockBytes: 64, Associativity: 4, IsCache: true}
	want, err := plain.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"itrs", "ITRS", "default", " itrs "} {
		spec := plain
		spec.Technology = name
		got, err := spec.Fingerprint()
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if got != want {
			t.Errorf("Technology=%q fingerprint %s differs from default %s", name, got, want)
		}
	}

	// Non-default providers must fold into the fingerprint: the same
	// geometry under two technologies is two distinct designs.
	stt := plain
	stt.Technology = "stt-ram"
	if got, err := stt.Fingerprint(); err != nil || got == want {
		t.Errorf("stt-ram fingerprint did not diverge from default (err=%v)", err)
	}
}

// TestSweepTechnologyAxis drives a grid across three providers and
// checks the axis accounting, the outermost-axis expansion order, and
// that every point solves with its provider's signature metrics.
func TestSweepTechnologyAxis(t *testing.T) {
	if testing.Short() {
		t.Skip("real solver")
	}
	g := Grid{
		Base: core.Spec{Node: tech.Node32, RAM: tech.SRAM, IsCache: true,
			MaxPipelineStages: 6},
		Techs:      []string{"itrs-sram", "stt-ram", "gain-cell"},
		Capacities: []int64{64 << 10, 128 << 10},
		Assocs:     []int{4},
		Blocks:     []int{64},
	}
	if got, want := g.Points(), 6; got != want {
		t.Fatalf("Points() = %d, want %d", got, want)
	}
	specs, skipped := g.Expand()
	if len(specs) != 6 || skipped != 0 {
		t.Fatalf("Expand() returned %d specs, %d skipped", len(specs), skipped)
	}
	// Technology is the outermost axis: all capacities of one provider
	// before the next provider starts.
	wantTech := []string{"itrs-sram", "itrs-sram", "stt-ram", "stt-ram", "gain-cell", "gain-cell"}
	for i, s := range specs {
		if s.Technology != wantTech[i] {
			t.Fatalf("spec %d technology %q, want %q (order: %v)", i, s.Technology, wantTech[i], specs)
		}
	}

	e := New(Options{})
	results, errs := e.SweepGrid(context.Background(), g)
	if errs != 0 {
		t.Fatalf("%d sweep points failed", errs)
	}
	for _, r := range results {
		sol := r.Solution
		switch r.Spec.Technology {
		case "stt-ram":
			if sol.WriteEndurance <= 0 || sol.WriteTime <= sol.AccessTime {
				t.Errorf("stt-ram point missing NVM write metrics: wt=%g end=%g", sol.WriteTime, sol.WriteEndurance)
			}
		case "gain-cell":
			if sol.RefreshPower <= 0 {
				t.Errorf("gain-cell point has no refresh power")
			}
		case "itrs-sram":
			if sol.WriteEndurance != 0 || sol.RefreshPower != 0 {
				t.Errorf("itrs-sram point grew NVM/refresh metrics: end=%g refr=%g", sol.WriteEndurance, sol.RefreshPower)
			}
		default:
			t.Errorf("unexpected technology %q in results", r.Spec.Technology)
		}
	}

	// The JSON export carries the technology key exactly for the
	// non-default points, and the new write metrics only where earned.
	for _, r := range results {
		blob, err := json.Marshal(ResultJSON(r))
		if err != nil {
			t.Fatal(err)
		}
		s := string(blob)
		if !strings.Contains(s, `"technology":"`+r.Spec.Technology+`"`) {
			t.Errorf("JSON for %s point lacks technology key: %s", r.Spec.Technology, s)
		}
		if r.Spec.Technology == "itrs-sram" && strings.Contains(s, "write_endurance_cycles") {
			t.Errorf("ITRS point leaked endurance key: %s", s)
		}
		if r.Spec.Technology == "stt-ram" && !strings.Contains(s, "write_endurance_cycles") {
			t.Errorf("stt-ram point lost endurance key: %s", s)
		}
	}
}

// Unknown and ambiguous provider names must fail at request-parse
// time with the candidate list, for both the single-spec and sweep
// request shapes — this is what the HTTP layer maps to a 400.
func TestTechnologyRequestErrors(t *testing.T) {
	if _, err := (SpecRequest{Capacity: "64KB", Technology: "flashy"}).Spec(); err == nil ||
		!strings.Contains(err.Error(), "unknown technology") {
		t.Errorf("unknown provider: err = %v", err)
	}
	// "itrs-" prefixes itrs-sram, itrs-lpdram and itrs-commdram.
	if _, err := (SpecRequest{Capacity: "64KB", Technology: "itrs-"}).Spec(); err == nil ||
		!strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous provider: err = %v", err)
	}
	if _, err := (SweepRequest{Capacities: []string{"64KB"}, Technologies: []string{"flashy"}}).Grid(); err == nil ||
		!strings.Contains(err.Error(), "unknown technology") {
		t.Errorf("unknown provider in sweep: err = %v", err)
	}
}
