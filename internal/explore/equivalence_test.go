package explore

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"cactid/internal/core"
	"cactid/internal/tech"
)

// The ITRS equivalence layer: the solver's rendered output for the
// built-in ITRS technologies is pinned byte-for-byte in testdata, and
// TestProviderITRSByteIdentical re-renders the same workloads on every
// run. The goldens were generated BEFORE the tech.Provider refactor
// (run with -update-golden only for an intentional, ModelVersion-bumped
// change), so a pass proves the provider indirection reproduces the
// hard-wired pre-refactor models exactly — fingerprints included.
var updateGolden = flag.Bool("update-golden", false,
	"rewrite the pinned ITRS golden outputs in testdata (requires a ModelVersion bump)")

// equivSolveSpecs mirrors the BenchmarkSolve spec set at the repo root
// (bench_test.go solveSpecs), in the deterministic name order the
// benchmark runs them: an SRAM cache, a sequential-mode COMM-DRAM
// cache and a plain COMM-DRAM memory, each at 45 and 32 nm.
func equivSolveSpecs() []core.Spec {
	var specs []core.Spec
	for _, node := range []tech.Node{tech.Node32, tech.Node45} {
		specs = append(specs,
			core.Spec{
				Node: node, RAM: tech.COMMDRAM, CapacityBytes: 64 << 20,
				BlockBytes: 64, Associativity: 8, IsCache: true,
				Mode: core.Sequential, PageBits: 8192, MaxPipelineStages: 6,
			},
			core.Spec{
				Node: node, RAM: tech.COMMDRAM, CapacityBytes: 64 << 20,
				BlockBytes: 64, PageBits: 8192,
			},
			core.Spec{
				Node: node, RAM: tech.SRAM, CapacityBytes: 4 << 20,
				BlockBytes: 64, Associativity: 8, IsCache: true,
			},
		)
	}
	return specs
}

// equivSweepGrid is the 64-point SRAM sweep grid the engine benchmarks
// use, plus an 8-point COMM-DRAM grid so the pinned sweep also covers
// the destructive-read/refresh path and DRAM tag arrays.
func equivSweepGrids() []Grid {
	return []Grid{
		testGrid(),
		{
			Base: core.Spec{Node: tech.Node32, RAM: tech.COMMDRAM, IsCache: true,
				PageBits: 8192, MaxPipelineStages: 6},
			Capacities: []int64{16 << 20, 64 << 20},
			Assocs:     []int{8},
			Blocks:     []int{64},
			Banks:      []int{1, 8},
			Modes:      []core.AccessMode{core.Normal, core.Sequential},
		},
	}
}

// renderBoth renders results through both exporters exactly as
// cactid-serve and cmd/cactid do.
func renderBoth(t *testing.T, results []Result) (jsonOut, csvOut []byte) {
	t.Helper()
	var jb, cb bytes.Buffer
	if err := WriteJSON(&jb, results); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&cb, results); err != nil {
		t.Fatal(err)
	}
	return jb.Bytes(), cb.Bytes()
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update-golden after an intentional model change): %v", name, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: output differs from pre-refactor pinned golden (%d bytes vs %d); ITRS results must be byte-identical across refactors", name, len(got), len(want))
	}
}

// TestProviderITRSByteIdentical re-runs the full BenchmarkSolve spec
// set plus the benchmark sweep grids through the exploration engine
// and asserts the rendered JSON and CSV — fingerprints, organization
// strings, every float — are byte-identical to the pre-refactor pinned
// outputs.
func TestProviderITRSByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("solver-heavy equivalence suite")
	}
	ctx := context.Background()

	t.Run("solve-set", func(t *testing.T) {
		e := New(Options{})
		results := e.Sweep(ctx, equivSolveSpecs())
		for _, r := range results {
			if r.Err != nil {
				t.Fatalf("point %d: %v", r.Index, r.Err)
			}
		}
		j, c := renderBoth(t, results)
		checkGolden(t, "itrs_solve.json", j)
		checkGolden(t, "itrs_solve.csv", c)
	})

	for gi, g := range equivSweepGrids() {
		g := g
		t.Run(fmt.Sprintf("sweep-grid-%d", gi), func(t *testing.T) {
			e := New(Options{})
			results, skipped := e.SweepGrid(ctx, g)
			if skipped != 0 {
				t.Fatalf("%d grid points skipped", skipped)
			}
			j, c := renderBoth(t, results)
			checkGolden(t, fmt.Sprintf("itrs_sweep%d.json", gi), j)
			checkGolden(t, fmt.Sprintf("itrs_sweep%d.csv", gi), c)

			specs, _ := g.Expand()
			front := New(Options{}).Pareto(ctx, specs)
			fj, fc := renderBoth(t, front)
			checkGolden(t, fmt.Sprintf("itrs_pareto%d.json", gi), fj)
			checkGolden(t, fmt.Sprintf("itrs_pareto%d.csv", gi), fc)
		})
	}
}
