// Package explore turns the CACTI-D solver into a scalable batch
// engine: a sweep planner that expands parameter grids into concrete
// core.Spec jobs, a parallel worker pool with a fingerprint-keyed
// result cache, a Pareto-frontier extractor over the four solver
// objectives, and CSV/JSON exporters. It is the layer between the
// analytical model (internal/core) and the outside world — the
// cactid-serve HTTP API and the CLIs build on it.
package explore

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"cactid/internal/core"
	"cactid/internal/tech"
)

// ParseSize parses a human-readable capacity: plain bytes ("64"), an
// explicit byte suffix ("512B", binary "32KB"/"4MB"/"2GB", case
// insensitive), or gigabits ("1G", "2Gbit") for main-memory chips.
// Non-positive and overflowing sizes are rejected.
func ParseSize(s string) (int64, error) {
	orig := s
	s = strings.TrimSpace(s)
	up := strings.ToUpper(s)
	mult := int64(1)
	switch {
	case strings.HasSuffix(up, "GBIT"):
		mult, s = (1<<30)/8, s[:len(s)-4]
	case strings.HasSuffix(up, "GB"):
		mult, s = 1<<30, s[:len(s)-2]
	case strings.HasSuffix(up, "MB"):
		mult, s = 1<<20, s[:len(s)-2]
	case strings.HasSuffix(up, "KB"):
		mult, s = 1<<10, s[:len(s)-2]
	case strings.HasSuffix(up, "G"):
		mult, s = (1<<30)/8, s[:len(s)-1]
	case strings.HasSuffix(up, "B"):
		s = s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", orig)
	}
	if math.IsNaN(v) || v <= 0 {
		return 0, fmt.Errorf("size %q must be positive", orig)
	}
	bytes := v * float64(mult)
	if bytes >= math.MaxInt64 {
		return 0, fmt.Errorf("size %q overflows", orig)
	}
	return int64(bytes), nil
}

// ParseRAM parses a memory technology name.
func ParseRAM(s string) (tech.RAMType, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "sram":
		return tech.SRAM, nil
	case "lp-dram", "lpdram", "lp":
		return tech.LPDRAM, nil
	case "comm-dram", "commdram", "comm", "cm":
		return tech.COMMDRAM, nil
	}
	return 0, fmt.Errorf("unknown RAM type %q (sram, lp-dram, comm-dram)", s)
}

// ParseMode parses an access-mode name; the empty string means
// Normal.
func ParseMode(s string) (core.AccessMode, error) {
	switch m := strings.ToLower(strings.TrimSpace(s)); {
	case m == "" || m == "normal" || m == "n":
		return core.Normal, nil
	case strings.HasPrefix(m, "seq"):
		return core.Sequential, nil
	case m == "fast" || m == "f":
		return core.Fast, nil
	}
	return 0, fmt.Errorf("unknown access mode %q (normal, sequential, fast)", s)
}

// Grid is a sweep plan: a base spec plus one slice per swept axis.
// Empty axes keep the base spec's value. Expand enumerates the cross
// product in a fixed axis order, so a grid always yields the same job
// sequence.
type Grid struct {
	Base core.Spec

	// Techs sweeps the technology provider (tech.Providers names);
	// it is the outermost axis. Values should be canonical —
	// SweepRequest.Grid canonicalises; hand-built grids can pass any
	// spelling tech.Resolve accepts and the solver canonicalises per
	// point.
	Techs      []string
	Nodes      []tech.Node
	RAMs       []tech.RAMType
	Capacities []int64
	Blocks     []int
	Assocs     []int
	Banks      []int
	Modes      []core.AccessMode
}

func orBase[T any](axis []T, base T) []T {
	if len(axis) == 0 {
		return []T{base}
	}
	return axis
}

// Points returns the number of grid points before validity filtering,
// saturating at math.MaxInt. Saturation matters: a hostile request
// with seven long axes could overflow the product to a small (or
// negative) count, slipping past the server's max-points bound and
// into an Expand whose capacity allocation would then panic.
func (g Grid) Points() int {
	n := 1
	for _, l := range []int{len(g.Techs), len(g.Nodes), len(g.RAMs), len(g.Capacities),
		len(g.Blocks), len(g.Assocs), len(g.Banks), len(g.Modes)} {
		if l > 0 {
			if n > math.MaxInt/l {
				return math.MaxInt
			}
			n *= l
		}
	}
	return n
}

// Expand enumerates the grid into concrete solver jobs, in
// deterministic axis-major order (technologies, nodes, RAM types,
// capacities, block sizes, associativities, banks, modes). Points
// that cannot form a valid organization — capacity not divisible by
// the bank count, or fewer than one set per bank — are dropped;
// skipped reports how many.
func (g Grid) Expand() (specs []core.Spec, skipped int) {
	techs := orBase(g.Techs, g.Base.Technology)
	nodes := orBase(g.Nodes, g.Base.Node)
	rams := orBase(g.RAMs, g.Base.RAM)
	caps := orBase(g.Capacities, g.Base.CapacityBytes)
	blocks := orBase(g.Blocks, g.Base.BlockBytes)
	assocs := orBase(g.Assocs, g.Base.Associativity)
	banks := orBase(g.Banks, g.Base.Banks)
	modes := orBase(g.Modes, g.Base.Mode)

	specs = make([]core.Spec, 0, g.Points())
	for _, tc := range techs {
		for _, node := range nodes {
			for _, ram := range rams {
				for _, capBytes := range caps {
					for _, block := range blocks {
						for _, assoc := range assocs {
							for _, nb := range banks {
								for _, mode := range modes {
									spec := g.Base
									spec.Technology = tc
									spec.Node, spec.RAM = node, ram
									spec.CapacityBytes, spec.BlockBytes = capBytes, block
									spec.Associativity, spec.Banks = assoc, nb
									spec.Mode = mode
									if !feasiblePoint(spec) {
										skipped++
										continue
									}
									specs = append(specs, spec)
								}
							}
						}
					}
				}
			}
		}
	}
	return specs, skipped
}

// feasiblePoint rejects grid points that can never form a valid
// organization, before they reach the solver.
func feasiblePoint(s core.Spec) bool {
	if s.CapacityBytes <= 0 || s.BlockBytes <= 0 {
		return false
	}
	nb := int64(max(s.Banks, 1))
	assoc := int64(max(s.Associativity, 1))
	if s.CapacityBytes%nb != 0 {
		return false
	}
	// At least one whole set per bank.
	return s.CapacityBytes/nb >= int64(s.BlockBytes)*assoc
}

// SpecRequest is the JSON face of core.Spec used by the HTTP API and
// example clients: technologies and modes are named, capacities are
// human-readable strings. Zero-valued fields take the same defaults
// as the cactid CLI.
type SpecRequest struct {
	RAM                  string        `json:"ram,omitempty"`
	Technology           string        `json:"tech,omitempty"`
	NodeNM               int           `json:"node_nm,omitempty"`
	Capacity             string        `json:"capacity,omitempty"`
	BlockBytes           int           `json:"block_bytes,omitempty"`
	Associativity        int           `json:"associativity,omitempty"`
	Banks                int           `json:"banks,omitempty"`
	Cache                *bool         `json:"cache,omitempty"`
	Mode                 string        `json:"mode,omitempty"`
	PageBits             int           `json:"page_bits,omitempty"`
	MaxPipelineStages    int           `json:"max_pipeline_stages,omitempty"`
	MaxAreaConstraint    float64       `json:"max_area_constraint,omitempty"`
	MaxAcctimeConstraint float64       `json:"max_acctime_constraint,omitempty"`
	MaxRepeaterSlack     float64       `json:"max_repeater_slack,omitempty"`
	SleepTransistors     bool          `json:"sleep_transistors,omitempty"`
	ECC                  bool          `json:"ecc,omitempty"`
	Ports                int           `json:"ports,omitempty"`
	IncludeBankRouting   bool          `json:"include_bank_routing,omitempty"`
	PhysicalAddressBits  int           `json:"physical_address_bits,omitempty"`
	Weights              *core.Weights `json:"weights,omitempty"`
}

// Spec compiles the request into a solver spec. The capacity may be
// left empty when a surrounding sweep supplies it per point; the
// solver rejects a zero capacity at solve time otherwise.
func (r SpecRequest) Spec() (core.Spec, error) {
	s := core.Spec{
		Node:                 tech.Node(r.NodeNM),
		BlockBytes:           r.BlockBytes,
		Associativity:        r.Associativity,
		Banks:                r.Banks,
		PageBits:             r.PageBits,
		MaxPipelineStages:    r.MaxPipelineStages,
		MaxAreaConstraint:    r.MaxAreaConstraint,
		MaxAcctimeConstraint: r.MaxAcctimeConstraint,
		MaxRepeaterSlack:     r.MaxRepeaterSlack,
		SleepTransistors:     r.SleepTransistors,
		ECC:                  r.ECC,
		Ports:                r.Ports,
		IncludeBankRouting:   r.IncludeBankRouting,
		PhysicalAddressBits:  r.PhysicalAddressBits,
		Weights:              r.Weights,
	}
	if r.Capacity != "" {
		capBytes, err := ParseSize(r.Capacity)
		if err != nil {
			return core.Spec{}, err
		}
		s.CapacityBytes = capBytes
	}
	if r.RAM != "" {
		ram, err := ParseRAM(r.RAM)
		if err != nil {
			return core.Spec{}, err
		}
		s.RAM = ram
	}
	if r.Technology != "" {
		// Resolve eagerly so unknown/ambiguous technology names fail
		// at request-parse time (the server's 400 path), canonicalised
		// so equivalent spellings share fingerprints.
		p, err := tech.Resolve(r.Technology)
		if err != nil {
			return core.Spec{}, err
		}
		s.Technology = p.Name()
	}
	mode, err := ParseMode(r.Mode)
	if err != nil {
		return core.Spec{}, err
	}
	s.Mode = mode
	if s.BlockBytes == 0 {
		s.BlockBytes = 64
	}
	// Like the CLI, model a cache unless the request opts out.
	s.IsCache = r.Cache == nil || *r.Cache
	return s, nil
}

// SweepRequest is the JSON face of Grid.
type SweepRequest struct {
	Base            SpecRequest `json:"base"`
	Technologies    []string    `json:"techs,omitempty"`
	Nodes           []int       `json:"nodes,omitempty"`
	RAMs            []string    `json:"rams,omitempty"`
	Capacities      []string    `json:"capacities,omitempty"`
	BlockBytes      []int       `json:"block_bytes,omitempty"`
	Associativities []int       `json:"associativities,omitempty"`
	Banks           []int       `json:"banks,omitempty"`
	Modes           []string    `json:"modes,omitempty"`
}

// Grid compiles the request, parsing every named axis value.
func (r SweepRequest) Grid() (Grid, error) {
	base, err := r.Base.Spec()
	if err != nil {
		return Grid{}, fmt.Errorf("base: %w", err)
	}
	g := Grid{Base: base}
	for _, s := range r.Technologies {
		p, err := tech.Resolve(s)
		if err != nil {
			return Grid{}, err
		}
		g.Techs = append(g.Techs, p.Name())
	}
	for _, n := range r.Nodes {
		g.Nodes = append(g.Nodes, tech.Node(n))
	}
	for _, s := range r.RAMs {
		ram, err := ParseRAM(s)
		if err != nil {
			return Grid{}, err
		}
		g.RAMs = append(g.RAMs, ram)
	}
	for _, s := range r.Capacities {
		capBytes, err := ParseSize(s)
		if err != nil {
			return Grid{}, err
		}
		g.Capacities = append(g.Capacities, capBytes)
	}
	g.Blocks = r.BlockBytes
	g.Assocs = r.Associativities
	g.Banks = r.Banks
	for _, s := range r.Modes {
		mode, err := ParseMode(s)
		if err != nil {
			return Grid{}, err
		}
		g.Modes = append(g.Modes, mode)
	}
	return g, nil
}
