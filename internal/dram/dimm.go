package dram

import "fmt"

// DIMMConfig aggregates identical chips into the ranked module the
// study's memory channels are built from (Section 3.1: single-ranked
// 8 GB DIMMs of 8 Gb x8 devices).
type DIMMConfig struct {
	Chip         ChipConfig
	ChipsPerRank int // devices accessed in lockstep (64-bit bus / pins)
	Ranks        int
}

// DIMM is the evaluated module model.
type DIMM struct {
	Cfg  DIMMConfig
	Chip *Chip

	CapacityBytes int64
	TotalChips    int

	// Per-line command energies (all chips of the rank act together).
	LineActivateEnergy float64
	LineReadEnergy     float64 // ACT excluded: a row-hit read
	LineWriteEnergy    float64

	// Module standby and refresh power (all chips, all ranks).
	StandbyPower float64
	RefreshPower float64
}

// NewDIMM builds the module model around a chip model.
func NewDIMM(cfg DIMMConfig) (*DIMM, error) {
	if cfg.ChipsPerRank <= 0 {
		return nil, fmt.Errorf("dram: ChipsPerRank must be positive")
	}
	if cfg.Ranks <= 0 {
		cfg.Ranks = 1
	}
	// The rank must deliver a 64-bit data bus.
	if cfg.ChipsPerRank*cfg.Chip.DataPins != 64 {
		return nil, fmt.Errorf("dram: %d x%d chips deliver a %d-bit bus, want 64",
			cfg.ChipsPerRank, cfg.Chip.DataPins, cfg.ChipsPerRank*cfg.Chip.DataPins)
	}
	chip, err := NewChip(cfg.Chip)
	if err != nil {
		return nil, err
	}
	d := &DIMM{Cfg: cfg, Chip: chip}
	d.TotalChips = cfg.ChipsPerRank * cfg.Ranks
	d.CapacityBytes = cfg.Chip.CapacityBits / 8 * int64(d.TotalChips)
	n := float64(cfg.ChipsPerRank)
	d.LineActivateEnergy = n * chip.EActivate
	d.LineReadEnergy = n * chip.ERead
	d.LineWriteEnergy = n * chip.EWrite
	d.StandbyPower = float64(d.TotalChips) * chip.StandbyPower
	d.RefreshPower = float64(d.TotalChips) * chip.RefreshPower
	return d, nil
}

// LineBytes returns the bytes delivered per burst by the rank.
func (d *DIMM) LineBytes() int {
	return d.Cfg.ChipsPerRank * d.Chip.Cfg.PrefetchWidth / 8
}

// String summarizes the module.
func (d *DIMM) String() string {
	return fmt.Sprintf("%dGB DIMM: %d x %s (x%d chips, %d rank(s)); line ACT+RD %.3gnJ, standby %.3gW, refresh %.3gW",
		d.CapacityBytes>>30, d.TotalChips,
		fmt.Sprintf("%dMb", d.Cfg.Chip.CapacityBits>>20), d.Cfg.Chip.DataPins, d.Cfg.Ranks,
		(d.LineActivateEnergy+d.LineReadEnergy)*1e9, d.StandbyPower, d.RefreshPower)
}
