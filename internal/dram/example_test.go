package dram_test

import (
	"fmt"
	"log"

	"cactid/internal/dram"
	"cactid/internal/tech"
)

// ExampleNewChip models the paper's Table 2 validation target: a
// 78nm Micron-class 1Gb DDR3-1066 x8 device.
func ExampleNewChip() {
	chip, err := dram.NewChip(dram.ChipConfig{
		Tech:         tech.New(78),
		CapacityBits: 1 << 30,
		Banks:        8,
		DataPins:     8,
		BurstLength:  8,
		PageBits:     8192,
		DataRateMTps: 1066,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("banks: %d\n", chip.Cfg.Banks)
	fmt.Printf("tRC within DDR3 range: %v\n", chip.Timing.TRC > 40e-9 && chip.Timing.TRC < 60e-9)
	fmt.Printf("interleaving beats row cycling: %v\n", chip.Timing.TRRD < chip.Timing.TRC/3)
	// Output:
	// banks: 8
	// tRC within DDR3 range: true
	// interleaving beats row cycling: true
}

// ExampleEmbeddedTiming derives ACTIVATE/READ/WRITE/PRECHARGE timing
// for a stacked LP-DRAM bank operated with a main-memory-like
// interface (Section 2.3.4).
func ExampleEmbeddedTiming() {
	t := tech.New(tech.Node32)
	bank, err := dram.EmbeddedBank(t, tech.LPDRAM, 8<<20, 512, 8192)
	if err != nil {
		log.Fatal(err)
	}
	tm, err := dram.EmbeddedTiming(bank, 2e9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tRC = tRAS + tRP: %v\n", tm.TRC == tm.TRAS+tm.TRP)
	fmt.Printf("interleave beats row cycle: %v\n", tm.TRRD < tm.TRC)
	// Output:
	// tRC = tRAS + tRP: true
	// interleave beats row cycle: true
}
