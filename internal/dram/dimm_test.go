package dram

import (
	"strings"
	"testing"

	"cactid/internal/tech"
)

func studyDIMMConfig() DIMMConfig {
	return DIMMConfig{
		Chip: ChipConfig{
			Tech: tech.New(tech.Node32), CapacityBits: 8 << 30, Banks: 8,
			DataPins: 8, BurstLength: 8, PageBits: 8192, DataRateMTps: 3200,
		},
		ChipsPerRank: 8,
		Ranks:        1,
	}
}

func TestDIMMStudyModule(t *testing.T) {
	// The study's channel: single-ranked 8GB DIMM of 8Gb x8 devices.
	d, err := NewDIMM(studyDIMMConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d.CapacityBytes != 8<<30 {
		t.Errorf("capacity = %d, want 8GB", d.CapacityBytes)
	}
	if d.TotalChips != 8 {
		t.Errorf("chips = %d", d.TotalChips)
	}
	if d.LineBytes() != 64 {
		t.Errorf("line = %dB, want 64 (x8 BL8 rank)", d.LineBytes())
	}
	// Table 3: full-rank line read (ACT+RD) ~14nJ.
	lineNJ := (d.LineActivateEnergy + d.LineReadEnergy) * 1e9
	if lineNJ < 7 || lineNJ > 25 {
		t.Errorf("line read %.1fnJ out of band (paper 14.2)", lineNJ)
	}
	if d.StandbyPower != 8*d.Chip.StandbyPower {
		t.Error("standby must sum over chips")
	}
	if !strings.Contains(d.String(), "DIMM") {
		t.Error("String malformed")
	}
}

func TestDIMMBusWidthValidated(t *testing.T) {
	cfg := studyDIMMConfig()
	cfg.ChipsPerRank = 4 // 4 x8 = 32-bit bus: invalid
	if _, err := NewDIMM(cfg); err == nil {
		t.Fatal("32-bit rank should be rejected")
	}
	cfg.ChipsPerRank = 0
	if _, err := NewDIMM(cfg); err == nil {
		t.Fatal("zero chips should be rejected")
	}
}

func TestDIMMx4Rank(t *testing.T) {
	cfg := studyDIMMConfig()
	cfg.Chip.DataPins = 4
	cfg.ChipsPerRank = 16
	d, err := NewDIMM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.CapacityBytes != 16<<30 {
		t.Errorf("x4 rank capacity = %d, want 16GB", d.CapacityBytes)
	}
	// More chips activate per line: higher activate energy.
	d8, _ := NewDIMM(studyDIMMConfig())
	if d.LineActivateEnergy <= d8.LineActivateEnergy {
		t.Error("x4 rank should burn more activation energy per line")
	}
}

func TestDIMMTwoRanks(t *testing.T) {
	cfg := studyDIMMConfig()
	cfg.Ranks = 2
	d, err := NewDIMM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d1, _ := NewDIMM(studyDIMMConfig())
	if d.StandbyPower != 2*d1.StandbyPower {
		t.Error("two ranks should double standby power")
	}
	if d.LineReadEnergy != d1.LineReadEnergy {
		t.Error("per-line energy is a rank property, not a module property")
	}
}
