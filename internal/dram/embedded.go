package dram

import (
	"errors"

	"cactid/internal/array"
	"cactid/internal/tech"
)

// EmbeddedTiming derives a main-memory-style timing interface
// (ACTIVATE / READ / WRITE / PRECHARGE) for an embedded or stacked
// DRAM bank, the second operational model of Section 2.3.4. Unlike a
// commodity chip there is no off-chip I/O pipeline or interface-clock
// quantization: commands act at core speed, so CAS latency is just the
// column path, and the multisubbank interleave cycle plays the role of
// tRRD. clockHz sets TCK for bookkeeping (burst transfers happen over
// the wide on-die bus in a single beat, so TBurst = one clock).
//
// The alternative — the vanilla SRAM-like interface the paper's LLC
// study uses — needs no timing translation at all: its access and
// interleave cycle times are the array.Bank's own figures.
func EmbeddedTiming(b *array.Bank, clockHz float64) (Timing, error) {
	if b == nil {
		return Timing{}, errors.New("dram: nil bank")
	}
	if !b.Spec.RAM.IsDRAM() {
		return Timing{}, errors.New("dram: embedded timing requires a DRAM bank")
	}
	m := b.Mat
	tck := 1 / clockHz
	trcd := b.HtreeInDelay + m.TDecoder + m.TWordline + m.TBitline + m.TSense
	cas := m.TColumnMux + b.HtreeOutDelay
	tras := trcd + m.TRestore
	trp := b.HtreeInDelay + m.TPrecharge
	return Timing{
		TCK:    tck,
		TRCD:   trcd,
		CAS:    cas,
		TRP:    trp,
		TRAS:   tras,
		TRC:    tras + trp,
		TRRD:   b.InterleaveCycle,
		TBurst: tck,
	}, nil
}

// EmbeddedBank builds an embedded/stacked DRAM bank suitable for
// EmbeddedTiming: a convenience wrapper over array.Enumerate that
// picks the organization with the best interleave cycle within 10% of
// the best area efficiency.
func EmbeddedBank(t *tech.Technology, ram tech.RAMType, capacityBytes int64, outputBits, pageBits int) (*array.Bank, error) {
	if !ram.IsDRAM() {
		return nil, errors.New("dram: embedded bank requires LP-DRAM or COMM-DRAM")
	}
	banks := array.Enumerate(array.Spec{
		Tech: t, RAM: ram, CapacityBytes: capacityBytes,
		OutputBits: outputBits, AssocReadout: 1, PageBits: pageBits,
		MaxPipelineStages: 6,
	})
	if len(banks) == 0 {
		return nil, ErrNoChip
	}
	bestEff := 0.0
	for _, b := range banks {
		if b.AreaEff > bestEff {
			bestEff = b.AreaEff
		}
	}
	var pick *array.Bank
	for _, b := range banks {
		if b.AreaEff < bestEff*0.9 {
			continue
		}
		if pick == nil || b.InterleaveCycle < pick.InterleaveCycle {
			pick = b
		}
	}
	return pick, nil
}
