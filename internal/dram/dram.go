// Package dram models main-memory DRAM chip organization on top of
// the array model: banks, data pins, burst length, internal prefetch
// width and page size (Section 2.1 of the paper), together with the
// main-memory timing interface (tRCD, CAS latency, tRP, tRAS, tRC,
// tRRD; Section 2.3.5) and the command energies (ACTIVATE including
// precharge, READ, WRITE) plus refresh and standby power used in the
// Table 2 validation against a Micron DDR3-1066 device.
package dram

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"cactid/internal/array"
	"cactid/internal/tech"
)

// ChipConfig specifies a main-memory DRAM chip.
type ChipConfig struct {
	Tech *tech.Technology

	CapacityBits int64   // total chip capacity (e.g. 1<<30 for 1Gb)
	Banks        int     // independent banks (8 for DDR3/DDR4)
	DataPins     int     // x4 / x8 / x16
	BurstLength  int     // 4 or 8
	PageBits     int     // page (row buffer) size per bank in bits
	DataRateMTps float64 // interface data rate in MT/s (e.g. 1066, 3200)

	// PrefetchWidth is the internal prefetch in bits; zero defaults
	// to DataPins*BurstLength (8n prefetch for DDR3).
	PrefetchWidth int

	// RepeaterSlack relaxes the H-tree repeaters (commodity DRAM
	// favors cheap, dense wiring over speed).
	RepeaterSlack float64
}

// Timing is the main-memory timing interface of the modeled chip, in
// seconds. These are the quantities a memory controller schedules by.
type Timing struct {
	TCK    float64 // interface clock period
	TRCD   float64 // ACTIVATE to READ/WRITE
	CAS    float64 // READ to first data (CL)
	TRP    float64 // PRECHARGE period
	TRAS   float64 // ACTIVATE to PRECHARGE (row restore complete)
	TRC    float64 // row cycle time = TRAS + TRP
	TRRD   float64 // ACTIVATE-to-ACTIVATE, different banks
	TBurst float64 // data burst duration
}

// Chip is the evaluated main-memory DRAM chip model.
type Chip struct {
	Cfg  ChipConfig
	Bank *array.Bank // the per-bank organization chosen

	Timing Timing

	// Geometry.
	Area    float64 // chip area (m^2)
	AreaEff float64 // cell area / chip area

	// Command energies (J). EActivate includes the eventual
	// precharge, matching the Micron power-calculator convention the
	// paper validates against.
	EActivate float64
	ERead     float64 // one READ burst (PrefetchWidth bits to the pins)
	EWrite    float64

	RefreshPower float64 // W, averaged over the retention period
	StandbyPower float64 // W, leakage + interface standby
}

// ioEnergyPerBit is the off-chip I/O energy per transferred bit at
// 1.5 V DDR3 signaling (driver + termination), scaled by (V/1.5)^2
// for other rails.
const ioEnergyPerBit = 12e-12 // J/bit at 1.5V

// refreshShareFactor discounts per-row refresh energy relative to a
// normal ACTIVATE+PRECHARGE: refresh batches rows across banks and
// skips the column/I-O periphery.
const refreshShareFactor = 0.7

// ErrNoChip is returned when no bank organization satisfies the chip
// constraints.
var ErrNoChip = errors.New("dram: no valid bank organization for chip config")

// NewChip builds the chip model. Among the feasible bank
// organizations it selects the one with the best area efficiency
// (the paper: "because of the premium on price per bit of commodity
// DRAM we select one with high area efficiency"), breaking ties
// toward lower row-cycle time.
func NewChip(cfg ChipConfig) (*Chip, error) {
	if cfg.Tech == nil || cfg.CapacityBits <= 0 || cfg.Banks <= 0 || cfg.DataPins <= 0 ||
		cfg.BurstLength <= 0 || cfg.PageBits <= 0 || cfg.DataRateMTps <= 0 {
		return nil, fmt.Errorf("dram: invalid config %+v", cfg)
	}
	if cfg.PrefetchWidth == 0 {
		cfg.PrefetchWidth = cfg.DataPins * cfg.BurstLength
	}

	spec := array.Spec{
		Tech:          cfg.Tech,
		RAM:           tech.COMMDRAM,
		CapacityBytes: cfg.CapacityBits / int64(cfg.Banks) / 8,
		OutputBits:    cfg.PrefetchWidth,
		AssocReadout:  1,
		PageBits:      cfg.PageBits,
		RepeaterSlack: cfg.RepeaterSlack,
	}
	banks := array.Enumerate(spec)
	if len(banks) == 0 {
		return nil, ErrNoChip
	}
	// Keep organizations within 3% of the best area efficiency
	// (price-per-bit premium), then pick the lowest-energy one,
	// breaking ties toward lower row cycle time.
	bestEff := 0.0
	for _, b := range banks {
		if b.AreaEff > bestEff {
			bestEff = b.AreaEff
		}
	}
	var cands []*array.Bank
	for _, b := range banks {
		if b.AreaEff >= bestEff-0.03 {
			cands = append(cands, b)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		ei := cands[i].EReadTotal()
		ej := cands[j].EReadTotal()
		if ei != ej {
			return ei < ej
		}
		return cands[i].RandomCycle < cands[j].RandomCycle
	})
	return chipFromBank(cfg, cands[0])
}

// chipFromBank assembles chip-level figures from a chosen bank.
func chipFromBank(cfg ChipConfig, b *array.Bank) (*Chip, error) {
	c := &Chip{Cfg: cfg, Bank: b}
	m := b.Mat
	cell := cfg.Tech.Cell(tech.COMMDRAM)

	// ---- Timing ----
	// DDR: two transfers per clock.
	tck := 2 / (cfg.DataRateMTps * 1e6)
	roundUp := func(x float64) float64 { return math.Ceil(x/tck) * tck }

	// Command decode and clock synchronization cost two interface
	// clocks before the array sees any command.
	cmd := tck
	trcd := cmd + b.HtreeInDelay + m.TDecoder + m.TWordline + m.TBitline + m.TSense
	// Column path: mux select, data H-tree back out, and the I/O
	// pipeline (DLL, read FIFO, serializer): a fixed latency plus
	// three interface clocks.
	cas := m.TColumnMux + b.HtreeOutDelay + 4e-9 + 3*tck
	tras := trcd + m.TRestore
	trp := cmd + b.HtreeInDelay + m.TPrecharge
	c.Timing = Timing{
		TCK:    tck,
		TRCD:   roundUp(trcd),
		CAS:    roundUp(cas),
		TRP:    roundUp(trp),
		TRAS:   roundUp(tras),
		TRC:    roundUp(tras) + roundUp(trp),
		TRRD:   math.Max(roundUp(b.InterleaveCycle), 2*tck),
		TBurst: float64(cfg.BurstLength) / 2 * tck,
	}

	// ---- Area ----
	// Banks plus the center spine (command/address, DLL, I/O pads):
	// commodity layouts spend ~12% of the die on the spine and pad
	// ring.
	banksArea := float64(cfg.Banks) * b.Area
	c.Area = banksArea / 0.88
	cellArea := float64(cfg.CapacityBits) * cell.CellArea(cfg.Tech.F)
	c.AreaEff = cellArea / c.Area

	// ---- Energies ----
	// The I/O rail tracks the core rail (1.5 V for DDR3-era parts).
	ioScale := (cell.Vdd / 1.5) * (cell.Vdd / 1.5)
	eIO := float64(cfg.PrefetchWidth) * ioEnergyPerBit * ioScale
	// Per-command control overhead: CA receivers, control logic.
	eCmd := 0.3e-9 * ioScale
	c.EActivate = b.EActivate + b.EPrecharge + eCmd
	c.ERead = b.ERead + eIO + eCmd
	c.EWrite = b.EWrite + eIO + eCmd

	// ---- Refresh ----
	// The bank model already charges one activate+precharge (plus
	// address distribution) per page per retention period; refresh
	// batches rows across banks, discounting the overhead.
	c.RefreshPower = float64(cfg.Banks) * b.RefreshPower * refreshShareFactor

	// ---- Standby ----
	// Array leakage plus interface standby: clock tree, DLL, input
	// buffers and termination. The interface portion is dominated by
	// high-speed circuitry whose power tracks the interface clock
	// rather than the core rail (IDD2N-style: ~44mW for DDR3-1066,
	// ~92mW for DDR4-3200).
	fclk := 1 / tck
	c.StandbyPower = float64(cfg.Banks)*b.Leakage + 20e-3 + 45e-12*fclk
	return c, nil
}

// ReadLatency returns the total latency of a random read (closed
// page): ACTIVATE + CAS, the figure Table 3 reports for the main
// memory chip.
func (c *Chip) ReadLatency() float64 { return c.Timing.TRCD + c.Timing.CAS }

// String summarizes the chip.
func (c *Chip) String() string {
	t := c.Timing
	return fmt.Sprintf("%dMb x%d %d banks: tRCD=%.1fns CL=%.1fns tRC=%.1fns tRRD=%.1fns eff=%.0f%% ACT=%.2gnJ RD=%.2gnJ",
		c.Cfg.CapacityBits>>20, c.Cfg.DataPins, c.Cfg.Banks,
		t.TRCD*1e9, t.CAS*1e9, t.TRC*1e9, t.TRRD*1e9, c.AreaEff*100,
		c.EActivate*1e9, c.ERead*1e9)
}
