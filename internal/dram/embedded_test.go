package dram

import (
	"testing"

	"cactid/internal/tech"
)

func TestEmbeddedBankAndTiming(t *testing.T) {
	tt := tech.New(tech.Node32)
	b, err := EmbeddedBank(tt, tech.LPDRAM, 8<<20, 512, 8192)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := EmbeddedTiming(b, 2e9)
	if err != nil {
		t.Fatal(err)
	}
	if tm.TRCD <= 0 || tm.CAS <= 0 || tm.TRP <= 0 {
		t.Fatalf("non-positive timing: %+v", tm)
	}
	if tm.TRC != tm.TRAS+tm.TRP {
		t.Error("tRC != tRAS + tRP")
	}
	if tm.TRRD != b.InterleaveCycle {
		t.Error("embedded tRRD should be the multisubbank interleave cycle")
	}
}

func TestEmbeddedFasterThanChipInterface(t *testing.T) {
	// Section 2.3.4: the embedded interface skips the off-chip I/O
	// pipeline, so its CAS latency must be well below a commodity
	// chip's CL at the same node.
	tt := tech.New(tech.Node32)
	b, err := EmbeddedBank(tt, tech.COMMDRAM, 12<<20, 512, 8192)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := EmbeddedTiming(b, 2e9)
	if err != nil {
		t.Fatal(err)
	}
	chip, err := NewChip(ChipConfig{
		Tech: tt, CapacityBits: 8 << 30, Banks: 8, DataPins: 8,
		BurstLength: 8, PageBits: 8192, DataRateMTps: 3200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tm.CAS >= chip.Timing.CAS {
		t.Errorf("embedded CAS %.2gns not below chip CL %.2gns", tm.CAS*1e9, chip.Timing.CAS*1e9)
	}
	if tm.TRCD >= chip.Timing.TRCD {
		t.Errorf("embedded tRCD %.2gns not below chip %.2gns", tm.TRCD*1e9, chip.Timing.TRCD*1e9)
	}
}

func TestEmbeddedErrors(t *testing.T) {
	tt := tech.New(tech.Node32)
	if _, err := EmbeddedTiming(nil, 2e9); err == nil {
		t.Error("nil bank should fail")
	}
	if _, err := EmbeddedBank(tt, tech.SRAM, 1<<20, 512, 0); err == nil {
		t.Error("SRAM embedded bank should fail")
	}
	// SRAM bank passed to EmbeddedTiming should fail.
	sb, err := EmbeddedBank(tt, tech.LPDRAM, 1<<20, 512, 0)
	if err != nil {
		t.Fatal(err)
	}
	sb.Spec.RAM = tech.SRAM
	if _, err := EmbeddedTiming(sb, 2e9); err == nil {
		t.Error("non-DRAM bank should fail")
	}
}

func TestLPDRAMEmbeddedFasterThanCOMM(t *testing.T) {
	tt := tech.New(tech.Node32)
	lp, err1 := EmbeddedBank(tt, tech.LPDRAM, 8<<20, 512, 8192)
	cm, err2 := EmbeddedBank(tt, tech.COMMDRAM, 8<<20, 512, 8192)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	tlp, _ := EmbeddedTiming(lp, 2e9)
	tcm, _ := EmbeddedTiming(cm, 2e9)
	if tlp.TRC >= tcm.TRC {
		t.Errorf("LP-DRAM tRC %.2gns not below COMM-DRAM %.2gns", tlp.TRC*1e9, tcm.TRC*1e9)
	}
}
