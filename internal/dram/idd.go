package dram

import (
	"fmt"
	"strings"
)

// IDD approximates the datasheet supply-current specification of the
// modeled chip — the currency of the Micron power calculator the paper
// validates against (Table 2). Currents are reported at the cell/core
// rail.
type IDD struct {
	VDD float64 // core rail (V)

	// IDD0: one-bank ACTIVATE-PRECHARGE cycling at tRC.
	IDD0 float64 // A
	// IDD2N: precharge standby, CKE high.
	IDD2N float64 // A
	// IDD2P: precharge power-down (power-down modes, Section 6).
	IDD2P float64 // A
	// IDD4R / IDD4W: burst read / write current (gross, including
	// background).
	IDD4R float64 // A
	IDD4W float64 // A
	// IDD5: burst refresh.
	IDD5 float64 // A
}

// powerDownResidual is the fraction of standby power that remains in
// power-down (DLL off, input buffers off; self-refresh logic stays).
const powerDownResidual = 0.15

// IDDReport derives the IDD specification from the chip model.
func (c *Chip) IDDReport() IDD {
	vdd := c.Cfg.Tech.Cell(c.Bank.Spec.RAM).Vdd
	bg := c.StandbyPower / vdd // background current

	var r IDD
	r.VDD = vdd
	r.IDD2N = bg
	r.IDD2P = bg * powerDownResidual
	// IDD0: ACT+PRE energy amortized over tRC, plus background.
	r.IDD0 = bg + c.EActivate/c.Timing.TRC/vdd
	// IDD4R/W: continuous bursts: one READ/WRITE every burst period.
	r.IDD4R = bg + c.ERead/c.Timing.TBurst/vdd
	r.IDD4W = bg + c.EWrite/c.Timing.TBurst/vdd
	// IDD5: refresh power averaged over the retention period, scaled
	// to the burst-refresh duty cycle (~1/64 of time refreshing at
	// 64ms retention with 8K refresh commands of ~tRFC each);
	// approximate as the average refresh current times the inverse
	// duty factor, floored at IDD0.
	avgRefresh := c.RefreshPower / vdd
	r.IDD5 = bg + avgRefresh*64
	if r.IDD5 < r.IDD0 {
		r.IDD5 = r.IDD0
	}
	return r
}

// String renders the IDD report datasheet-style (mA).
func (i IDD) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "IDD report @ VDD=%.2fV\n", i.VDD)
	fmt.Fprintf(&b, "  IDD0  (ACT-PRE cycling)   %7.1f mA\n", i.IDD0*1e3)
	fmt.Fprintf(&b, "  IDD2N (precharge standby) %7.1f mA\n", i.IDD2N*1e3)
	fmt.Fprintf(&b, "  IDD2P (power-down)        %7.1f mA\n", i.IDD2P*1e3)
	fmt.Fprintf(&b, "  IDD4R (burst read)        %7.1f mA\n", i.IDD4R*1e3)
	fmt.Fprintf(&b, "  IDD4W (burst write)       %7.1f mA\n", i.IDD4W*1e3)
	fmt.Fprintf(&b, "  IDD5  (burst refresh)     %7.1f mA\n", i.IDD5*1e3)
	return b.String()
}
