package dram

import (
	"math"
	"strings"
	"testing"

	"cactid/internal/tech"
)

// micronChip builds the Table 2 validation target: a 78nm Micron 1Gb
// DDR3-1066 x8 device.
func micronChip(t *testing.T) *Chip {
	t.Helper()
	c, err := NewChip(ChipConfig{
		Tech: tech.New(78), CapacityBits: 1 << 30, Banks: 8, DataPins: 8,
		BurstLength: 8, PageBits: 8192, DataRateMTps: 1066,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// within asserts |got-want|/want <= tol.
func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if err := math.Abs(got-want) / want; err > tol {
		t.Errorf("%s = %.4g, want %.4g (+/-%.0f%%), error %.1f%%", name, got, want, tol*100, err*100)
	}
}

// TestTable2MicronValidation checks the paper's Table 2: the actual
// datasheet/power-calculator values of the Micron device, with
// tolerance bands at least as tight as the errors the paper itself
// reports for CACTI-D (-6.2% to -33%).
func TestTable2MicronValidation(t *testing.T) {
	c := micronChip(t)
	within(t, "area efficiency", c.AreaEff, 0.56, 0.10)
	within(t, "tRCD", c.Timing.TRCD, 13.1e-9, 0.15)
	within(t, "CAS latency", c.Timing.CAS, 13.1e-9, 0.20)
	within(t, "tRC", c.Timing.TRC, 52.5e-9, 0.15)
	within(t, "ACTIVATE energy", c.EActivate, 3.1e-9, 0.30)
	within(t, "READ energy", c.ERead, 1.6e-9, 0.30)
	within(t, "WRITE energy", c.EWrite, 1.8e-9, 0.30)
	within(t, "refresh power", c.RefreshPower, 3.5e-3, 0.35)
}

func TestTimingRelations(t *testing.T) {
	c := micronChip(t)
	tm := c.Timing
	if tm.TRAS <= tm.TRCD {
		t.Error("tRAS must exceed tRCD (restore after activation)")
	}
	if math.Abs(tm.TRC-(tm.TRAS+tm.TRP)) > 1e-12 {
		t.Errorf("tRC %g != tRAS %g + tRP %g", tm.TRC, tm.TRAS, tm.TRP)
	}
	if tm.TRRD >= tm.TRC {
		t.Error("multibank interleave (tRRD) must beat the row cycle (tRC)")
	}
	if tm.TBurst != 4*tm.TCK {
		t.Errorf("BL8 burst should last 4 clocks, got %g/%g", tm.TBurst, tm.TCK)
	}
	if got := c.ReadLatency(); got != tm.TRCD+tm.CAS {
		t.Errorf("ReadLatency %g != tRCD+CAS %g", got, tm.TRCD+tm.CAS)
	}
}

func TestMultibankInterleavingThroughput(t *testing.T) {
	// Section 2.1: tRC ~50ns but tRRD ~7.5ns; interleaving must give
	// a substantial throughput boost.
	c := micronChip(t)
	boost := c.Timing.TRC / c.Timing.TRRD
	if boost < 3 {
		t.Errorf("interleaving boost only %.1fx; paper expects ~7x (50ns vs 7.5ns)", boost)
	}
}

func TestDDR4At32nm(t *testing.T) {
	// The LLC study's main memory: 8Gb DDR4-3200 x8 at 32nm
	// (Table 3, last column).
	c, err := NewChip(ChipConfig{
		Tech: tech.New(tech.Node32), CapacityBits: 8 << 30, Banks: 8, DataPins: 8,
		BurstLength: 8, PageBits: 8192, DataRateMTps: 3200,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Table 3: random cycle 98 CPU cycles @2GHz = 49ns.
	within(t, "tRC", c.Timing.TRC, 49e-9, 0.15)
	// Area efficiency ~46-57%, area order of 100mm^2.
	if c.AreaEff < 0.40 || c.AreaEff > 0.65 {
		t.Errorf("8Gb area efficiency %.2f out of band", c.AreaEff)
	}
	if c.Area < 50e-6 || c.Area > 200e-6 {
		t.Errorf("8Gb chip area %.1f mm^2 out of band", c.Area*1e6)
	}
	// Refresh a few mW, standby tens of mW.
	if c.RefreshPower < 1e-3 || c.RefreshPower > 30e-3 {
		t.Errorf("refresh power %.2g out of band", c.RefreshPower)
	}
}

func TestPageSizeTradeoff(t *testing.T) {
	// Larger pages cost more activation energy per ACTIVATE.
	small, err1 := NewChip(ChipConfig{
		Tech: tech.New(78), CapacityBits: 1 << 30, Banks: 8, DataPins: 8,
		BurstLength: 8, PageBits: 4096, DataRateMTps: 1066,
	})
	big, err2 := NewChip(ChipConfig{
		Tech: tech.New(78), CapacityBits: 1 << 30, Banks: 8, DataPins: 8,
		BurstLength: 8, PageBits: 16384, DataRateMTps: 1066,
	})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if big.EActivate <= small.EActivate {
		t.Errorf("16Kb page ACT %.3g <= 4Kb page ACT %.3g", big.EActivate, small.EActivate)
	}
}

func TestBurstLengthScalesReadEnergy(t *testing.T) {
	bl4, err1 := NewChip(ChipConfig{
		Tech: tech.New(78), CapacityBits: 1 << 30, Banks: 8, DataPins: 8,
		BurstLength: 4, PageBits: 8192, DataRateMTps: 1066,
	})
	bl8, err2 := NewChip(ChipConfig{
		Tech: tech.New(78), CapacityBits: 1 << 30, Banks: 8, DataPins: 8,
		BurstLength: 8, PageBits: 8192, DataRateMTps: 1066,
	})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if bl8.ERead <= bl4.ERead {
		t.Error("BL8 moves twice the bits of BL4; READ energy must rise")
	}
	if bl8.Timing.TBurst != 2*bl4.Timing.TBurst {
		t.Error("BL8 burst should take twice as long as BL4")
	}
}

func TestWiderInterfaceCostsMore(t *testing.T) {
	x4, err1 := NewChip(ChipConfig{
		Tech: tech.New(78), CapacityBits: 1 << 30, Banks: 8, DataPins: 4,
		BurstLength: 8, PageBits: 8192, DataRateMTps: 1066,
	})
	x8 := micronChip(t)
	if err1 != nil {
		t.Fatal(err1)
	}
	if x8.ERead <= x4.ERead {
		t.Error("x8 READ burst moves twice the bits of x4")
	}
}

func TestInvalidConfig(t *testing.T) {
	cases := []ChipConfig{
		{},
		{Tech: tech.New(78)},
		{Tech: tech.New(78), CapacityBits: 1 << 30, Banks: 0, DataPins: 8, BurstLength: 8, PageBits: 8192, DataRateMTps: 1066},
		{Tech: tech.New(78), CapacityBits: 1 << 30, Banks: 8, DataPins: 8, BurstLength: 8, PageBits: 0, DataRateMTps: 1066},
	}
	for i, cfg := range cases {
		if _, err := NewChip(cfg); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestChipString(t *testing.T) {
	if s := micronChip(t).String(); len(s) < 20 {
		t.Errorf("String too short: %q", s)
	}
}

func TestRefreshScalesWithCapacity(t *testing.T) {
	c1 := micronChip(t)
	c4, err := NewChip(ChipConfig{
		Tech: tech.New(78), CapacityBits: 4 << 30, Banks: 8, DataPins: 8,
		BurstLength: 8, PageBits: 8192, DataRateMTps: 1066,
	})
	if err != nil {
		t.Fatal(err)
	}
	ratio := c4.RefreshPower / c1.RefreshPower
	if ratio < 2.5 || ratio > 6 {
		t.Errorf("4x capacity changed refresh power by %.1fx, want ~4x", ratio)
	}
}

func TestIDDReport(t *testing.T) {
	c := micronChip(t)
	idd := c.IDDReport()
	// Datasheet sanity for a DDR3-1066 1Gb part: IDD0 tens of mA,
	// IDD2N a few tens, IDD4R/W around 100-300mA.
	if idd.IDD0 < 0.02 || idd.IDD0 > 0.3 {
		t.Errorf("IDD0 = %.1fmA out of band", idd.IDD0*1e3)
	}
	if idd.IDD2N < 0.005 || idd.IDD2N > 0.1 {
		t.Errorf("IDD2N = %.1fmA out of band", idd.IDD2N*1e3)
	}
	if idd.IDD4R < 0.05 || idd.IDD4R > 1.0 {
		t.Errorf("IDD4R = %.1fmA out of band", idd.IDD4R*1e3)
	}
	// Orderings: power-down below standby, bursts above cycling,
	// refresh at least as hungry as cycling.
	if idd.IDD2P >= idd.IDD2N {
		t.Error("power-down current must undercut standby")
	}
	if idd.IDD4R <= idd.IDD0 || idd.IDD4W <= idd.IDD0 {
		t.Error("burst currents must exceed ACT-PRE cycling")
	}
	if idd.IDD5 < idd.IDD0 {
		t.Error("burst refresh must be at least IDD0")
	}
	if s := idd.String(); !strings.Contains(s, "IDD4R") || !strings.Contains(s, "mA") {
		t.Error("IDD report malformed")
	}
}
