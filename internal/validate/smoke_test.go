package validate

import (
	"math"
	"testing"
)

// TestMicronPinnedOutputs pins the Table 2 model outputs to the values
// the current model produces. The tolerance is far tighter than the
// model-vs-datasheet validation band: this test is not about accuracy,
// it is a determinism tripwire. Any change to the DRAM model, the
// 78 nm interpolated technology tables, or float evaluation order
// shows up here as a precise diff, so a deliberate model change must
// update these constants in the same commit.
func TestMicronPinnedOutputs(t *testing.T) {
	rows, c, err := Micron()
	if err != nil {
		t.Fatal(err)
	}
	pins := []struct {
		name string
		got  float64
		want float64
	}{
		{"Timing.TRCD", c.Timing.TRCD, 1.313321e-08},
		{"Timing.CAS", c.Timing.CAS, 1.125704e-08},
		{"Timing.TRC", c.Timing.TRC, 4.878049e-08},
		{"EActivate", c.EActivate, 3.131905e-09},
		{"ERead", c.ERead, 1.607000e-09},
		{"AreaEff", c.AreaEff, 0.563650},
		{"RefreshPower", c.RefreshPower, 3.962336e-03},
		{"AvgAbsError", AvgAbsError(rows), 0.057189},
	}
	const relTol = 1e-5 // the pins above carry 7 significant digits
	for _, p := range pins {
		if math.Abs(p.got-p.want) > relTol*math.Abs(p.want) {
			t.Errorf("%s = %.6e, pinned %.6e (rel err %.2e)",
				p.name, p.got, p.want, math.Abs(p.got-p.want)/math.Abs(p.want))
		}
	}
}
