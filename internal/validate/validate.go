// Package validate reproduces the paper's model-validation exercises
// (Section 2.5): the 65 nm Intel Xeon 16 MB L3 SRAM cache (Figure 1's
// bubble chart), the 90 nm Sun SPARC 4 MB L2, and the 78 nm Micron
// 1 Gb DDR3-1066 x8 DRAM device (Table 2).
//
// Target values for the two SRAM caches are representative published
// figures ([8] Chang et al. JSSC 2007 and [22] McIntyre et al. JSSC
// 2005); the paper plots them as bubbles without tabulating, so the
// harness records the values used. The Micron targets are the actual
// values printed in the paper's Table 2.
package validate

import (
	"context"
	"fmt"
	"math"
	"strings"

	"cactid/internal/core"
	"cactid/internal/dram"
	"cactid/internal/tech"
)

// Bubble is one point of Figure 1: a design plotted by access time,
// total power, and area (bubble size).
type Bubble struct {
	Label      string
	AccessTime float64 // s
	Power      float64 // W (dynamic at the stated activity + leakage)
	Area       float64 // m^2
	IsTarget   bool
}

// XeonResult holds the Figure 1 reproduction.
type XeonResult struct {
	Targets   []Bubble // the two published-power bubbles
	Solutions []Bubble // CACTI-D solutions across constraint sweeps
	Best      Bubble   // best-access-time solution
	AvgError  float64  // mean |error| of Best vs first target (access, area, power)
}

// Xeon target: 65 nm 16 MB L3 [8], L3 clocked at half the 3.4 GHz
// core. The two power bubbles correspond to the two quoted dynamic
// powers (different activity assumptions).
const (
	xeonAccessTarget = 4.0e-9
	xeonAreaTarget   = 120e-6
	xeonLeakTarget   = 3.4
	xeonDynTargetA   = 2.2
	xeonDynTargetB   = 1.2
	xeonL3Clock      = 1.7e9 // accesses/s at activity factor 1.0
)

// Xeon runs the Figure 1 validation with no cancellation.
func Xeon() (*XeonResult, error) { return XeonContext(context.Background()) }

// XeonContext runs the Figure 1 validation: it sweeps the optimization
// constraints (max area, max access time, max repeater delay) within
// reasonable bounds, as the paper describes, and reports the solution
// bubbles alongside the target. The sweep runs 18 full solves; ctx
// cancels between (and, via the solver's worker pools, within) them.
func XeonContext(ctx context.Context) (*XeonResult, error) {
	r := &XeonResult{
		Targets: []Bubble{
			{Label: "Xeon L3 (dyn A)", AccessTime: xeonAccessTarget, Power: xeonDynTargetA + xeonLeakTarget, Area: xeonAreaTarget, IsTarget: true},
			{Label: "Xeon L3 (dyn B)", AccessTime: xeonAccessTarget, Power: xeonDynTargetB + xeonLeakTarget, Area: xeonAreaTarget, IsTarget: true},
		},
	}
	bestAcc := math.Inf(1)
	var best *core.Solution
	for _, maxArea := range []float64{0.1, 0.3, 0.6} {
		for _, maxAcc := range []float64{0.1, 0.3, 0.6} {
			for _, slack := range []float64{0, 0.3} {
				spec := core.Spec{
					Node: tech.Node65, RAM: tech.SRAM,
					CapacityBytes: 16 << 20, BlockBytes: 64, Associativity: 16, Banks: 1,
					IsCache: true, Mode: core.Sequential, SleepTransistors: true,
					MaxAreaConstraint: maxArea, MaxAcctimeConstraint: maxAcc,
					MaxRepeaterSlack: slack,
				}
				sols, err := core.ExploreContext(ctx, spec, nil)
				if err != nil {
					if ctx.Err() != nil {
						return nil, ctx.Err()
					}
					continue
				}
				filtered := core.Filter(spec, sols)
				if len(filtered) == 0 {
					continue
				}
				// Plot a spread of the surviving solutions, not just
				// the optimum, as the paper's bubble chart does.
				for _, idx := range []int{0, len(filtered) / 3, 2 * len(filtered) / 3, len(filtered) - 1} {
					sol := filtered[idx]
					b := solutionBubble(sol, xeonL3Clock,
						fmt.Sprintf("area<%.0f%% acc<%.0f%% slack %.0f%% #%d", maxArea*100, maxAcc*100, slack*100, idx))
					r.Solutions = append(r.Solutions, b)
					if sol.AccessTime < bestAcc {
						bestAcc = sol.AccessTime
						best = sol
						r.Best = b
					}
				}
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("validate: no Xeon solutions")
	}
	r.AvgError = (relErr(r.Best.AccessTime, xeonAccessTarget) +
		relErr(r.Best.Area, xeonAreaTarget) +
		relErr(r.Best.Power, xeonDynTargetA+xeonLeakTarget)) / 3
	return r, nil
}

// SPARCResult holds the 90 nm SPARC L2 check.
type SPARCResult struct {
	Target   Bubble
	Best     Bubble
	AvgError float64
}

// SPARC targets: 90 nm 4 MB on-chip L2 of a 1.6 GHz 64-bit
// processor [22].
const (
	sparcAccessTarget = 2.5e-9
	sparcAreaTarget   = 60e-6
	sparcPowerTarget  = 3.3 // dynamic at 1.6 GHz + leakage
	sparcClock        = 1.6e9
)

// SPARC runs the 90 nm SPARC L2 validation with no cancellation.
func SPARC() (*SPARCResult, error) { return SPARCContext(context.Background()) }

// SPARCContext runs the 90 nm SPARC L2 validation.
func SPARCContext(ctx context.Context) (*SPARCResult, error) {
	sol, err := core.OptimizeContext(ctx, core.Spec{
		Node: tech.Node90, RAM: tech.SRAM,
		CapacityBytes: 4 << 20, BlockBytes: 64, Associativity: 4, Banks: 1,
		IsCache: true, Mode: core.Normal,
		MaxAreaConstraint: 0.3, MaxAcctimeConstraint: 0.3,
	}, nil)
	if err != nil {
		return nil, err
	}
	r := &SPARCResult{
		Target: Bubble{Label: "SPARC L2", AccessTime: sparcAccessTarget, Power: sparcPowerTarget, Area: sparcAreaTarget, IsTarget: true},
		Best:   solutionBubble(sol, sparcClock, "best"),
	}
	r.AvgError = (relErr(r.Best.AccessTime, sparcAccessTarget) +
		relErr(r.Best.Area, sparcAreaTarget) +
		relErr(r.Best.Power, sparcPowerTarget)) / 3
	return r, nil
}

func solutionBubble(sol *core.Solution, clock float64, label string) Bubble {
	return Bubble{
		Label:      label,
		AccessTime: sol.AccessTime,
		Power:      sol.EReadPerAccess*clock + sol.LeakagePower + sol.RefreshPower,
		Area:       sol.Area,
	}
}

// Table2Row is one row of the paper's Table 2.
type Table2Row struct {
	Metric string
	Actual float64 // the measured/datasheet value the paper prints
	Model  float64 // this implementation's CACTI-D value
	Unit   string
	// PaperError is the error the paper's own CACTI-D reported, for
	// side-by-side comparison.
	PaperError float64
}

// Error returns the relative error of the model against the actual
// value (signed).
func (r Table2Row) Error() float64 { return (r.Model - r.Actual) / r.Actual }

// Micron reproduces Table 2: model a 78 nm Micron 1 Gb DDR3-1066 x8
// device and compare against the paper's actual values.
func Micron() ([]Table2Row, *dram.Chip, error) {
	c, err := dram.NewChip(dram.ChipConfig{
		Tech: tech.New(78), CapacityBits: 1 << 30, Banks: 8, DataPins: 8,
		BurstLength: 8, PageBits: 8192, DataRateMTps: 1066,
	})
	if err != nil {
		return nil, nil, err
	}
	rows := []Table2Row{
		{"Area efficiency", 0.56, c.AreaEff, "", -0.062},
		{"Activation delay (tRCD)", 13.1e-9, c.Timing.TRCD, "ns", 0.045},
		{"CAS latency", 13.1e-9, c.Timing.CAS, "ns", -0.058},
		{"Row cycle time (tRC)", 52.5e-9, c.Timing.TRC, "ns", -0.082},
		{"ACTIVATE energy", 3.1e-9, c.EActivate, "nJ", -0.252},
		{"READ energy", 1.6e-9, c.ERead, "nJ", -0.322},
		{"WRITE energy", 1.8e-9, c.EWrite, "nJ", -0.33},
		{"Refresh power", 3.5e-3, c.RefreshPower, "mW", 0.29},
	}
	return rows, c, nil
}

// AvgAbsError returns the mean absolute relative error of Table 2.
func AvgAbsError(rows []Table2Row) float64 {
	sum := 0.0
	for _, r := range rows {
		sum += math.Abs(r.Error())
	}
	return sum / float64(len(rows))
}

func relErr(got, want float64) float64 { return math.Abs(got-want) / want }

// FormatTable2 renders the Table 2 comparison as text.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: CACTI-D DRAM model validation vs 78nm Micron 1Gb DDR3-1066 x8\n")
	fmt.Fprintf(&b, "%-28s %12s %12s %10s %12s\n", "Metric", "Actual", "This model", "Error", "Paper error")
	for _, r := range rows {
		scale, unit := 1.0, r.Unit
		switch unit {
		case "ns":
			scale = 1e9
		case "nJ":
			scale = 1e9
		case "mW":
			scale = 1e3
		}
		fmt.Fprintf(&b, "%-28s %12.3g %12.3g %9.1f%% %11.1f%%\n",
			r.Metric, r.Actual*scale, r.Model*scale, r.Error()*100, r.PaperError*100)
	}
	fmt.Fprintf(&b, "Average |error|: %.1f%% (paper: 16%%)\n", AvgAbsError(rows)*100)
	return b.String()
}

// FormatBubbles renders Figure 1's data as text.
func FormatBubbles(r *XeonResult) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 1: 65nm Xeon 16MB L3 validation (access time, power, area bubbles)")
	fmt.Fprintf(&b, "%-32s %10s %10s %10s %s\n", "Design", "Access(ns)", "Power(W)", "Area(mm2)", "")
	for _, t := range r.Targets {
		fmt.Fprintf(&b, "%-32s %10.2f %10.2f %10.1f  <- target\n", t.Label, t.AccessTime*1e9, t.Power, t.Area*1e6)
	}
	seen := map[string]bool{}
	for _, s := range r.Solutions {
		key := fmt.Sprintf("%.3g/%.3g/%.3g", s.AccessTime, s.Power, s.Area)
		if seen[key] {
			continue
		}
		seen[key] = true
		fmt.Fprintf(&b, "%-32s %10.2f %10.2f %10.1f\n", s.Label, s.AccessTime*1e9, s.Power, s.Area*1e6)
	}
	fmt.Fprintf(&b, "Best-access solution avg |error| vs target: %.1f%% (paper reports ~20%%)\n", r.AvgError*100)
	return b.String()
}

// EDRAMResult holds the secondary LP-DRAM validation against the
// compilable embedded-DRAM macro literature the paper builds its
// LP-DRAM model on ([12] Barth et al., JSSC 2005: a 500 MHz
// multi-banked compilable DRAM macro; [38] Wang et al.).
type EDRAMResult struct {
	AccessTime      float64 // s
	InterleaveCycle float64 // s
	RandomCycle     float64 // s
	AvgError        float64
}

// eDRAM macro targets: ~1.7 ns access latency and a per-bank row
// cycle around 8 ns, with 500 MHz (2 ns) effective operation achieved
// by cycling among banks - the operating point of a banked compilable
// macro in a 90nm-class logic process.
const (
	edramAccessTarget   = 1.7e-9
	edramRowCycleTarget = 8.0e-9
	edramEffectiveCycle = 2.0e-9
)

// EDRAMMacro validates the LP-DRAM model with no cancellation.
func EDRAMMacro() (*EDRAMResult, error) { return EDRAMMacroContext(context.Background()) }

// EDRAMMacroContext validates the LP-DRAM model against the published
// characteristics of IBM-class compilable eDRAM macros: a 2MB macro at
// 90 nm operated with an SRAM-like interface and multisubbank
// interleaving.
func EDRAMMacroContext(ctx context.Context) (*EDRAMResult, error) {
	sol, err := core.OptimizeContext(ctx, core.Spec{
		Node: tech.Node90, RAM: tech.LPDRAM,
		CapacityBytes: 2 << 20, BlockBytes: 32, Associativity: 1, Banks: 1,
		MaxPipelineStages: 6, MaxAreaConstraint: 0.8, MaxAcctimeConstraint: 0.3,
	}, nil)
	if err != nil {
		return nil, err
	}
	r := &EDRAMResult{
		AccessTime:      sol.AccessTime,
		InterleaveCycle: sol.InterleaveCycle,
		RandomCycle:     sol.RandomCycle,
	}
	r.AvgError = (relErr(r.AccessTime, edramAccessTarget) +
		relErr(r.RandomCycle, edramRowCycleTarget)) / 2
	return r, nil
}
