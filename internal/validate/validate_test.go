package validate

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
)

func TestXeonValidation(t *testing.T) {
	r, err := Xeon()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Solutions) < 5 {
		t.Fatalf("constraint sweep produced only %d solutions", len(r.Solutions))
	}
	if len(r.Targets) != 2 {
		t.Fatal("Figure 1 has two target bubbles (two quoted dynamic powers)")
	}
	// The paper claims ~20% average error for the best-access
	// solution; hold this reproduction to 25%.
	if r.AvgError > 0.25 {
		t.Errorf("Xeon average error %.1f%% exceeds 25%%", r.AvgError*100)
	}
	// The sweep must expose tradeoffs: solutions should not all be
	// identical in power.
	minP, maxP := math.Inf(1), 0.0
	for _, s := range r.Solutions {
		minP = math.Min(minP, s.Power)
		maxP = math.Max(maxP, s.Power)
	}
	if maxP/minP < 1.02 {
		t.Error("constraint sweep produced no power spread")
	}
}

func TestSPARCValidation(t *testing.T) {
	r, err := SPARC()
	if err != nil {
		t.Fatal(err)
	}
	if r.AvgError > 0.25 {
		t.Errorf("SPARC average error %.1f%% exceeds 25%%", r.AvgError*100)
	}
}

func TestMicronTable2(t *testing.T) {
	rows, chip, err := Micron()
	if err != nil {
		t.Fatal(err)
	}
	if chip == nil || len(rows) != 8 {
		t.Fatalf("Table 2 must have 8 rows, got %d", len(rows))
	}
	// Every row must be within the larger of 20% or the paper's own
	// error magnitude + 5 points.
	for _, r := range rows {
		bound := math.Max(0.20, math.Abs(r.PaperError)+0.05)
		if e := math.Abs(r.Error()); e > bound {
			t.Errorf("%s: error %.1f%% exceeds bound %.1f%%", r.Metric, e*100, bound*100)
		}
	}
	// Overall: at least as good as the paper's reported 16% average.
	if avg := AvgAbsError(rows); avg > 0.16 {
		t.Errorf("average |error| %.1f%% exceeds the paper's 16%%", avg*100)
	}
}

func TestFormatting(t *testing.T) {
	rows, _, err := Micron()
	if err != nil {
		t.Fatal(err)
	}
	s := FormatTable2(rows)
	for _, want := range []string{"tRCD", "ACTIVATE", "Refresh", "Average"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 2 output missing %q", want)
		}
	}
	x, err := Xeon()
	if err != nil {
		t.Fatal(err)
	}
	fb := FormatBubbles(x)
	if !strings.Contains(fb, "target") || !strings.Contains(fb, "Figure 1") {
		t.Error("bubble output malformed")
	}
}

func TestEDRAMMacroValidation(t *testing.T) {
	r, err := EDRAMMacro()
	if err != nil {
		t.Fatal(err)
	}
	// Published compilable eDRAM macros: ~1.7ns latency, per-bank
	// row cycle around 8ns. Hold the model to 40% average error.
	if r.AvgError > 0.40 {
		t.Errorf("eDRAM macro average error %.1f%% exceeds 40%% (acc %.2fns, row cycle %.2fns)",
			r.AvgError*100, r.AccessTime*1e9, r.RandomCycle*1e9)
	}
	// The macro's 500MHz (2ns) effective operation must be
	// achievable through multisubbank interleaving.
	if r.InterleaveCycle > edramEffectiveCycle {
		t.Errorf("interleave cycle %.2fns cannot sustain 500MHz", r.InterleaveCycle*1e9)
	}
	// The destructive-readout random cycle must exceed the
	// interleaved cycle (that is the point of multibank operation).
	if r.RandomCycle <= r.InterleaveCycle {
		t.Error("random cycle should exceed the interleave cycle")
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := XeonContext(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("XeonContext on canceled ctx: %v, want context.Canceled", err)
	}
	if _, err := SPARCContext(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("SPARCContext on canceled ctx: %v, want context.Canceled", err)
	}
	if _, err := EDRAMMacroContext(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("EDRAMMacroContext on canceled ctx: %v, want context.Canceled", err)
	}
}
