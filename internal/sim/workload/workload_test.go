package workload

import (
	"testing"
	"testing/quick"
)

func TestNPBProfiles(t *testing.T) {
	ps := NPB()
	if len(ps) != 8 {
		t.Fatalf("NPB has %d profiles, want 8", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Name] = true
		if p.MemPerInstr <= 0 || p.MemPerInstr >= 1 {
			t.Errorf("%s: MemPerInstr %g out of (0,1)", p.Name, p.MemPerInstr)
		}
		if p.HotFrac <= 0 || p.HotFrac >= 1 {
			t.Errorf("%s: HotFrac %g out of (0,1)", p.Name, p.HotFrac)
		}
		if p.WSBytes <= p.HotBytes {
			t.Errorf("%s: working set smaller than hot set", p.Name)
		}
		if p.RadialK < 1 {
			t.Errorf("%s: RadialK %g < 1", p.Name, p.RadialK)
		}
	}
	for _, want := range []string{"bt.C", "cg.C", "ft.B", "is.C", "lu.C", "mg.B", "sp.C", "ua.C"} {
		if !names[want] {
			t.Errorf("missing benchmark %s", want)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("ft.B")
	if err != nil || p.Name != "ft.B" {
		t.Fatal(err)
	}
	if _, err := ByName("nonsense"); err == nil {
		t.Fatal("unknown name should error")
	}
}

func TestPaperGroupCharacteristics(t *testing.T) {
	// Section 4.2's grouping must be visible in the parameters.
	ft, _ := ByName("ft.B")
	lu, _ := ByName("lu.C")
	cg, _ := ByName("cg.C")
	ua, _ := ByName("ua.C")
	bt, _ := ByName("bt.C")
	// ft.B and lu.C working sets fit within the DRAM L3s (<=96MB).
	if ft.WSBytes > 96<<20 || lu.WSBytes > 96<<20 {
		t.Error("ft.B/lu.C working sets must fit the DRAM L3s")
	}
	// bt/cg working sets exceed even the 192MB L3.
	if bt.WSBytes <= 192<<20 || cg.WSBytes <= 192<<20 {
		t.Error("bt.C/cg.C working sets must exceed 192MB")
	}
	// cg.C has no post-L2 locality (uniform).
	if cg.RadialK != 1.0 {
		t.Errorf("cg.C RadialK = %g, want 1.0 (uniform)", cg.RadialK)
	}
	// ua.C rarely leaves L2.
	if ua.HotFrac < 0.95 {
		t.Errorf("ua.C HotFrac = %g, want very high", ua.HotFrac)
	}
	// bt.C has strong reuse locality.
	if bt.RadialK < 2.5 {
		t.Errorf("bt.C RadialK = %g, want strong concentration", bt.RadialK)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p, _ := ByName("ft.B")
	g1 := NewGenerator(p, 3, 32, 42)
	g2 := NewGenerator(p, 3, 32, 42)
	for i := 0; i < 1000; i++ {
		a, b := g1.Next(), g2.Next()
		if a != b {
			t.Fatalf("ref %d differs: %+v vs %+v", i, a, b)
		}
	}
	g3 := NewGenerator(p, 4, 32, 42)
	same := 0
	g1b := NewGenerator(p, 3, 32, 42)
	for i := 0; i < 1000; i++ {
		if g1b.Next().Addr == g3.Next().Addr {
			same++
		}
	}
	if same > 500 {
		t.Error("different threads should produce mostly different streams")
	}
}

func TestAddressesLineAligned(t *testing.T) {
	p, _ := ByName("is.C")
	g := NewGenerator(p, 0, 32, 7)
	for i := 0; i < 10000; i++ {
		if r := g.Next(); r.Addr%64 != 0 {
			t.Fatalf("unaligned address %x", r.Addr)
		}
	}
}

func TestMemIntensityMatchesProfile(t *testing.T) {
	p, _ := ByName("cg.C")
	g := NewGenerator(p, 0, 32, 7)
	refs := 50000
	for i := 0; i < refs; i++ {
		g.Next()
	}
	got := float64(refs) / float64(g.Instrs)
	if got < p.MemPerInstr*0.8 || got > p.MemPerInstr*1.25 {
		t.Errorf("memory intensity %g, profile says %g", got, p.MemPerInstr)
	}
}

func TestHotFractionRespected(t *testing.T) {
	p, _ := ByName("sp.C")
	g := NewGenerator(p, 0, 32, 7)
	hot := 0
	n := 100000
	for i := 0; i < n; i++ {
		if r := g.Next(); r.Addr >= hotRegionBase {
			hot++
		}
	}
	got := float64(hot) / float64(n)
	if got < p.HotFrac-0.08 || got > p.HotFrac+0.08 {
		t.Errorf("hot fraction %g, profile says %g", got, p.HotFrac)
	}
}

func TestColdFootprintBounded(t *testing.T) {
	// The union of all threads' cold addresses must stay within
	// WSBytes (the bug class this guards against inflated the
	// footprint by nthreads).
	p, _ := ByName("ft.B")
	nthreads := 32
	var maxAddr uint64
	for th := 0; th < nthreads; th++ {
		g := NewGenerator(p, th, nthreads, 7)
		for i := 0; i < 5000; i++ {
			r := g.Next()
			if r.Addr >= coldRegionBase && r.Addr < hotRegionBase && r.Addr > maxAddr {
				maxAddr = r.Addr
			}
		}
	}
	if maxAddr == 0 {
		t.Fatal("no cold references seen")
	}
	if span := maxAddr - coldRegionBase; span > uint64(p.WSBytes) {
		t.Errorf("cold footprint %d exceeds WSBytes %d", span, p.WSBytes)
	}
}

func TestRadialLocality(t *testing.T) {
	// With K=3.4 (bt.C), at least 60% of cold references must land
	// in the innermost quarter of the thread's slab.
	p, _ := ByName("bt.C")
	g := NewGenerator(p, 0, 32, 7)
	slab := uint64(p.WSBytes) / 32
	inner, total := 0, 0
	for i := 0; i < 200000; i++ {
		r := g.Next()
		if r.Addr >= coldRegionBase && r.Addr < coldRegionBase+slab && r.Addr < hotRegionBase {
			total++
			if r.Addr < coldRegionBase+slab/4 {
				inner++
			}
		}
	}
	if total < 100 {
		t.Fatalf("only %d cold refs for thread 0", total)
	}
	if frac := float64(inner) / float64(total); frac < 0.6 {
		t.Errorf("inner-quarter fraction %g, want >= 0.6 for K=%g", frac, p.RadialK)
	}
}

func TestSynchronizationCadence(t *testing.T) {
	p, _ := ByName("is.C") // has both barriers and locks
	g := NewGenerator(p, 0, 32, 7)
	barriers, locks := 0, 0
	for g.Instrs < 1_300_000 {
		r := g.Next()
		if r.Barrier {
			barriers++
		}
		if r.Lock {
			locks++
		}
	}
	if barriers < 8 || barriers > 13 {
		t.Errorf("barriers = %d over 1.3M instrs at every-%d", barriers, p.BarrierEvery)
	}
	if locks < 15 || locks > 26 {
		t.Errorf("locks = %d over 1.3M instrs at every-%d", locks, p.LockEvery)
	}
}

func TestPropertyRefsWellFormed(t *testing.T) {
	p, _ := ByName("mg.B")
	g := NewGenerator(p, 1, 32, 99)
	f := func(_ uint8) bool {
		r := g.Next()
		return r.Addr != 0 && r.FPGap >= 0 && r.OtherGap >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
