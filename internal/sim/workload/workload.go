// Package workload generates synthetic multithreaded memory-reference
// streams standing in for the NAS Parallel Benchmarks the paper runs
// under COTSon (Section 3.2). Each benchmark is characterized by the
// parameters the paper's analysis turns on (Section 4.2): working-set
// size relative to the cache hierarchy, locality of the post-L2
// stream, memory intensity, floating-point mix, data sharing, and
// barrier/lock cadence. Absolute IPCs are not reproduced — the
// grouping and ordering of configurations in Figures 4 and 5 are.
package workload

import (
	"fmt"
	"math"
)

// Profile parameterizes one synthetic benchmark.
type Profile struct {
	Name string

	// MemPerInstr is the fraction of instructions that reference
	// data memory.
	MemPerInstr float64
	// FPFrac is the fraction of non-memory instructions that are
	// floating-point (1 cycle each; others average 4 cycles).
	FPFrac float64
	// WriteFrac is the fraction of memory references that are writes.
	WriteFrac float64

	// HotBytes is the per-thread working set with immediate reuse
	// (intended to hit in L1/L2). HotFrac of references go there.
	HotBytes int64
	HotFrac  float64

	// WSBytes is the total (shared) working set of the remaining
	// references. RadialK shapes their locality: references fall at
	// radius WSBytes*u^RadialK for uniform u, so larger K
	// concentrates them near the start and a cache of capacity C
	// captures (C/WSBytes)^(1/RadialK) of them. K=1 is uniform
	// (cg.C-style, no locality); K=3-4 gives the "bigger L3 keeps
	// helping" behaviour of bt/is/mg/sp.
	WSBytes int64
	RadialK float64

	// SeqRun is the number of consecutive lines touched per cold
	// region visit (spatial locality).
	SeqRun int

	// SharedFrac of cold references go to a region shared by all
	// threads (drives MESI traffic).
	SharedFrac float64

	// BarrierEvery / LockEvery are mean instruction counts between
	// synchronization events per thread (0 = never).
	BarrierEvery int64
	LockEvery    int64
}

// NPB returns the synthetic profiles standing in for the paper's
// eight NPB applications, grouped as Section 4.2 groups them:
//
//   - ft.B, lu.C: working sets larger than the 8MB of L2 but small
//     enough to live in the DRAM L3s; lu.C overflows the 24MB SRAM L3.
//   - bt.C, is.C, mg.B, sp.C: working sets beyond even 192MB, with
//     locality, so every extra megabyte of L3 keeps helping.
//   - ua.C: very low L3 access frequency (L2 captures the hot set).
//   - cg.C: no post-L2 locality; all L3s fail to filter the stream.
func NPB() []Profile {
	return []Profile{
		{Name: "bt.C", MemPerInstr: 0.26, FPFrac: 0.45, WriteFrac: 0.32,
			HotBytes: 192 << 10, HotFrac: 0.93, WSBytes: 640 << 20, RadialK: 3.4,
			SeqRun: 8, SharedFrac: 0.04, BarrierEvery: 400_000, LockEvery: 0},
		{Name: "cg.C", MemPerInstr: 0.36, FPFrac: 0.30, WriteFrac: 0.12,
			HotBytes: 96 << 10, HotFrac: 0.80, WSBytes: 700 << 20, RadialK: 1.0,
			SeqRun: 1, SharedFrac: 0.06, BarrierEvery: 150_000, LockEvery: 0},
		{Name: "ft.B", MemPerInstr: 0.30, FPFrac: 0.42, WriteFrac: 0.38,
			HotBytes: 128 << 10, HotFrac: 0.86, WSBytes: 36 << 20, RadialK: 1.15,
			SeqRun: 16, SharedFrac: 0.05, BarrierEvery: 500_000, LockEvery: 0},
		{Name: "is.C", MemPerInstr: 0.38, FPFrac: 0.08, WriteFrac: 0.42,
			HotBytes: 128 << 10, HotFrac: 0.88, WSBytes: 900 << 20, RadialK: 3.0,
			SeqRun: 4, SharedFrac: 0.10, BarrierEvery: 120_000, LockEvery: 60_000},
		{Name: "lu.C", MemPerInstr: 0.28, FPFrac: 0.48, WriteFrac: 0.30,
			HotBytes: 160 << 10, HotFrac: 0.85, WSBytes: 44 << 20, RadialK: 1.1,
			SeqRun: 12, SharedFrac: 0.04, BarrierEvery: 0, LockEvery: 25_000},
		{Name: "mg.B", MemPerInstr: 0.34, FPFrac: 0.35, WriteFrac: 0.34,
			HotBytes: 128 << 10, HotFrac: 0.88, WSBytes: 420 << 20, RadialK: 2.8,
			SeqRun: 16, SharedFrac: 0.05, BarrierEvery: 100_000, LockEvery: 0},
		{Name: "sp.C", MemPerInstr: 0.30, FPFrac: 0.40, WriteFrac: 0.33,
			HotBytes: 160 << 10, HotFrac: 0.90, WSBytes: 560 << 20, RadialK: 3.2,
			SeqRun: 8, SharedFrac: 0.04, BarrierEvery: 300_000, LockEvery: 0},
		{Name: "ua.C", MemPerInstr: 0.22, FPFrac: 0.38, WriteFrac: 0.30,
			HotBytes: 192 << 10, HotFrac: 0.99, WSBytes: 300 << 20, RadialK: 2.0,
			SeqRun: 4, SharedFrac: 0.08, BarrierEvery: 0, LockEvery: 120_000},
	}
}

// ByName returns the named profile.
func ByName(name string) (Profile, error) {
	for _, p := range NPB() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Ref is one memory reference with the instruction gap preceding it.
type Ref struct {
	FPGap    int    // floating-point instructions since the last reference
	OtherGap int    // other non-memory instructions since the last reference
	Addr     uint64 // byte address
	Write    bool

	// Barrier/Lock mark a synchronization event occurring before
	// this reference.
	Barrier bool
	Lock    bool
}

// Generator produces the reference stream of one thread
// deterministically (same seed, same stream).
type Generator struct {
	p        Profile
	thread   int
	nthreads int
	rng      uint64

	hotBase    uint64
	coldBase   uint64
	sharedBase uint64

	instrSinceBarrier int64
	instrSinceLock    int64

	seqLeft int
	seqAddr uint64

	// Instrs counts all instructions generated so far (memory +
	// gaps), the budget the simulator runs against.
	Instrs int64
}

// Address-space layout (byte addresses): per-thread hot regions, the
// shared region, then the large cold working set shared across
// threads (threads interleave through it, as OpenMP loops do).
const (
	sharedRegionBase = 0x0000_0002_0000_0000
	coldRegionBase   = 0x0000_0004_0000_0000
	// Hot regions sit far above the cold region (which spans at most
	// a few GB from its base) so per-thread hot slots never collide
	// with cold addresses.
	hotRegionBase = 0x0000_0100_0000_0000
	lineBytes     = 64
)

// NewGenerator builds the stream generator for one thread.
func NewGenerator(p Profile, thread, nthreads int, seed uint64) *Generator {
	g := &Generator{
		p: p, thread: thread, nthreads: nthreads,
		rng:        seed ^ (uint64(thread)+1)*0x9E3779B97F4A7C15,
		hotBase:    hotRegionBase + uint64(thread)<<32,
		sharedBase: sharedRegionBase,
		coldBase:   coldRegionBase,
	}
	g.next() // warm the state
	return g
}

// next is a splitmix64 step.
func (g *Generator) next() uint64 {
	g.rng += 0x9E3779B97F4A7C15
	z := g.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// uniform returns a float64 in [0,1).
func (g *Generator) uniform() float64 { return float64(g.next()>>11) / (1 << 53) }

// Next produces the next memory reference.
func (g *Generator) Next() Ref {
	var r Ref

	// Instruction gap to the next memory reference: geometric with
	// mean 1/MemPerInstr - 1.
	gap := 0
	meanGap := 1/g.p.MemPerInstr - 1
	for float64(gap) < meanGap*4 {
		if g.uniform() < 1/(meanGap+1) {
			break
		}
		gap++
	}
	for i := 0; i < gap; i++ {
		if g.uniform() < g.p.FPFrac {
			r.FPGap++
		} else {
			r.OtherGap++
		}
	}
	instrs := int64(gap + 1)
	g.Instrs += instrs

	// Synchronization.
	if g.p.BarrierEvery > 0 {
		g.instrSinceBarrier += instrs
		if g.instrSinceBarrier >= g.p.BarrierEvery {
			g.instrSinceBarrier = 0
			r.Barrier = true
		}
	}
	if g.p.LockEvery > 0 {
		g.instrSinceLock += instrs
		if g.instrSinceLock >= g.p.LockEvery {
			g.instrSinceLock = 0
			r.Lock = true
		}
	}

	// Address. Sequential runs make each cold visit produce ~1.5x
	// SeqRun references, so the visit probability is scaled to keep
	// HotFrac meaning "fraction of references that are hot".
	coldVisitP := 1 - g.p.HotFrac
	if g.p.SeqRun > 1 {
		coldVisitP /= 1.5 * float64(g.p.SeqRun)
	}
	pHot := g.p.HotFrac / (g.p.HotFrac + coldVisitP)
	switch {
	case g.seqLeft > 0:
		g.seqLeft--
		g.seqAddr += lineBytes
		r.Addr = g.seqAddr
	case g.uniform() < pHot:
		// Hot references concentrate further: 60% land in an
		// L1-resident core (stack frames, reduction variables) of
		// 1/16th the hot region.
		region := uint64(g.p.HotBytes)
		if g.uniform() < 0.6 {
			region /= 16
			if region < 2*lineBytes {
				region = 2 * lineBytes
			}
		}
		off := g.next() % region
		r.Addr = g.hotBase + off&^uint64(lineBytes-1)
	default:
		radius := math.Pow(g.uniform(), g.p.RadialK)
		if g.uniform() < g.p.SharedFrac {
			off := uint64(radius * float64(min64(g.p.WSBytes/8, 64<<20)))
			r.Addr = g.sharedBase + off&^uint64(lineBytes-1)
		} else {
			// Each thread owns a contiguous slab of the cold region
			// (an OpenMP static block schedule). The radial reuse
			// distribution selects a 64KB block (so caches see the
			// capacity curve at block granularity) and the reference
			// lands uniformly inside it (so set coverage stays
			// uniform and no single DRAM page is hammered).
			slab := uint64(g.p.WSBytes) / uint64(g.nthreads)
			const blockBytes = 64 << 10
			nBlocks := slab / blockBytes
			if nBlocks == 0 {
				nBlocks = 1
			}
			block := uint64(radius * float64(nBlocks))
			if block >= nBlocks {
				block = nBlocks - 1
			}
			off := block*blockBytes + g.next()%blockBytes
			r.Addr = (g.coldBase + uint64(g.thread)*slab + off) &^ uint64(lineBytes-1)
		}
		if g.p.SeqRun > 1 {
			g.seqLeft = g.p.SeqRun - 1 + int(g.next()%uint64(g.p.SeqRun))
			g.seqAddr = r.Addr
		}
	}
	r.Write = g.uniform() < g.p.WriteFrac
	return r
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
