package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Source produces one thread's reference stream. The synthetic
// Generator implements it; TraceSource replays recorded traces, which
// is how users drive the simulator with their own workloads (and how
// the test suite builds directed coherence scenarios with exact
// expectations).
type Source interface {
	// Next returns the next memory reference.
	Next() Ref
	// Instructions reports the total instructions generated so far
	// (memory references plus the gaps preceding them).
	Instructions() int64
}

// Instructions implements Source for the synthetic generator.
func (g *Generator) Instructions() int64 { return g.Instrs }

// TraceSource replays a fixed sequence of references, looping when it
// reaches the end (so an instruction budget larger than the trace is
// still satisfiable).
type TraceSource struct {
	Refs   []Ref
	pos    int
	instrs int64
}

// NewTraceSource builds a replaying source. It panics on an empty
// trace (a thread must always be able to produce a reference).
func NewTraceSource(refs []Ref) *TraceSource {
	if len(refs) == 0 {
		panic("workload: empty trace")
	}
	return &TraceSource{Refs: refs}
}

// Next returns the next reference, looping over the trace.
func (t *TraceSource) Next() Ref {
	r := t.Refs[t.pos]
	t.pos = (t.pos + 1) % len(t.Refs)
	t.instrs += int64(1 + r.FPGap + r.OtherGap)
	return r
}

// Instructions reports instructions replayed so far.
func (t *TraceSource) Instructions() int64 { return t.instrs }

// LoadTrace parses a CSV trace. Each record is
//
//	addr,rw[,fpgap,othergap[,flags]]
//
// where addr is hex (with or without 0x), rw is "r" or "w", the gaps
// are decimal instruction counts, and flags may contain "barrier"
// and/or "lock". Blank lines and lines starting with '#' are skipped.
func LoadTrace(r io.Reader) ([]Ref, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.Comment = '#'
	cr.TrimLeadingSpace = true
	var out []Ref
	for line := 1; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		if len(rec) < 2 {
			return nil, fmt.Errorf("workload: trace line %d: need at least addr,rw", line)
		}
		addrStr := strings.TrimPrefix(strings.TrimSpace(rec[0]), "0x")
		addr, err := strconv.ParseUint(addrStr, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad address %q", line, rec[0])
		}
		ref := Ref{Addr: addr}
		switch strings.ToLower(strings.TrimSpace(rec[1])) {
		case "r":
		case "w":
			ref.Write = true
		default:
			return nil, fmt.Errorf("workload: trace line %d: rw must be r or w, got %q", line, rec[1])
		}
		if len(rec) > 2 {
			ref.FPGap, err = strconv.Atoi(strings.TrimSpace(rec[2]))
			if err != nil || ref.FPGap < 0 {
				return nil, fmt.Errorf("workload: trace line %d: bad fpgap %q", line, rec[2])
			}
		}
		if len(rec) > 3 {
			ref.OtherGap, err = strconv.Atoi(strings.TrimSpace(rec[3]))
			if err != nil || ref.OtherGap < 0 {
				return nil, fmt.Errorf("workload: trace line %d: bad othergap %q", line, rec[3])
			}
		}
		if len(rec) > 4 {
			for _, f := range strings.Fields(strings.ReplaceAll(rec[4], ";", " ")) {
				switch strings.ToLower(f) {
				case "barrier":
					ref.Barrier = true
				case "lock":
					ref.Lock = true
				default:
					return nil, fmt.Errorf("workload: trace line %d: unknown flag %q", line, f)
				}
			}
		}
		out = append(out, ref)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	return out, nil
}
