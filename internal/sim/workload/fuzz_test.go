package workload

import (
	"strings"
	"testing"
)

// FuzzLoadTrace exercises the trace parser with arbitrary inputs: it
// must either reject the input or produce well-formed references, and
// never panic.
func FuzzLoadTrace(f *testing.F) {
	f.Add("0x1000,r\n2000,w,3,4\n")
	f.Add("3000,r,0,0,barrier\n")
	f.Add("# comment\n4000,w,1,2,lock\n")
	f.Add("zzzz,r\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		refs, err := LoadTrace(strings.NewReader(input))
		if err != nil {
			return
		}
		if len(refs) == 0 {
			t.Fatal("nil error with empty trace")
		}
		for _, r := range refs {
			if r.FPGap < 0 || r.OtherGap < 0 {
				t.Fatalf("negative gaps in accepted ref %+v", r)
			}
		}
	})
}
