package workload

import (
	"strings"
	"testing"
)

func TestTraceSourceLoops(t *testing.T) {
	refs := []Ref{
		{Addr: 0x1000, FPGap: 1},
		{Addr: 0x2000, Write: true, OtherGap: 2},
	}
	s := NewTraceSource(refs)
	for i := 0; i < 5; i++ {
		got := s.Next()
		want := refs[i%2]
		if got != want {
			t.Fatalf("ref %d = %+v, want %+v", i, got, want)
		}
	}
	// 5 refs: 3x first (2 instrs each) + 2x second (3 instrs each).
	if got := s.Instructions(); got != 3*2+2*3 {
		t.Fatalf("Instructions = %d, want 12", got)
	}
}

func TestTraceSourcePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewTraceSource(nil)
}

func TestLoadTrace(t *testing.T) {
	in := `# address, rw, fpgap, othergap, flags
0x1000,r
2000,w,3,4
3000,r,0,0,barrier
4000,w,1,2,lock
5000,r,0,1,barrier;lock
`
	refs, err := LoadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 5 {
		t.Fatalf("got %d refs", len(refs))
	}
	if refs[0].Addr != 0x1000 || refs[0].Write {
		t.Errorf("ref 0 = %+v", refs[0])
	}
	if refs[1].Addr != 0x2000 || !refs[1].Write || refs[1].FPGap != 3 || refs[1].OtherGap != 4 {
		t.Errorf("ref 1 = %+v", refs[1])
	}
	if !refs[2].Barrier || refs[2].Lock {
		t.Errorf("ref 2 flags = %+v", refs[2])
	}
	if !refs[3].Lock || refs[3].Barrier {
		t.Errorf("ref 3 flags = %+v", refs[3])
	}
	if !refs[4].Barrier || !refs[4].Lock {
		t.Errorf("ref 4 flags = %+v", refs[4])
	}
}

func TestLoadTraceErrors(t *testing.T) {
	cases := []string{
		"",                     // empty
		"zzzz,r",               // bad address
		"1000,x",               // bad rw
		"1000",                 // too few fields
		"1000,r,-1",            // bad gap
		"1000,r,0,zz",          // bad gap
		"1000,r,0,0,whirlygig", // bad flag
	}
	for i, in := range cases {
		if _, err := LoadTrace(strings.NewReader(in)); err == nil {
			t.Errorf("case %d (%q) should fail", i, in)
		}
	}
}
