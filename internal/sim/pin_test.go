package sim

import (
	"testing"

	"cactid/internal/sim/workload"
)

// TestRunPinnedOutputs pins one small run to its exact event counts.
// TestDeterminism already proves same-process reproducibility; this
// pin extends the guarantee across builds and machines — the
// simulator must not depend on map iteration order, address layout,
// or scheduling, so these integers are stable until the model itself
// changes (in which case update them in the same commit).
func TestRunPinnedOutputs(t *testing.T) {
	p, _ := workload.ByName("ft.B")
	r := Run(testConfig(p, l3For(6<<20), 500_000))
	pins := []struct {
		name string
		got  int64
		want int64
	}{
		{"Cycles", r.Cycles, 248457},
		{"Instrs", r.Instrs, 374426},
		{"L2Accesses", int64(r.Events.L2Accesses), 64627},
		{"L3Misses", int64(r.Events.L3Misses), 15024},
	}
	for _, p := range pins {
		if p.got != p.want {
			t.Errorf("%s = %d, pinned %d", p.name, p.got, p.want)
		}
	}
}
