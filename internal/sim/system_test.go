package sim

import (
	"testing"

	"cactid/internal/sim/memctl"
	"cactid/internal/sim/workload"
)

// testConfig builds a small, fast system configuration (scaled 8x)
// for a given workload profile.
func testConfig(p workload.Profile, l3 *L3Params, budget int64) Config {
	p.HotBytes /= 8
	p.WSBytes /= 8
	return Config{
		Cores: 8, ThreadsPerCore: 4, LineBytes: 64,
		L1Bytes: 4 << 10, L1Ways: 8, L2Bytes: 128 << 10, L2Ways: 8,
		L1HitCycles: 2, L2HitCycles: 3,
		L3: l3,
		Mem: memctl.Config{
			Channels: 2, BanksPerChannel: 8, PageBytes: 8192, LineBytes: 64,
			Policy: memctl.OpenPage,
			Timing: memctl.Timing{TRCD: 21, CAS: 14, TRP: 15, TRAS: 78, TRC: 99, TRRD: 5, Burst: 3},
		},
		Workload: p, InstrBudget: budget, WarmupFrac: 0.25, Seed: 42,
	}
}

func l3For(capacity int64) *L3Params {
	return &L3Params{
		CapacityBytes: capacity, Ways: 12, Banks: 8,
		TagCycles: 2, DataCycles: 3, BankBusyCycles: 1, CrossbarCycles: 3,
	}
}

func TestRunBasics(t *testing.T) {
	p, _ := workload.ByName("ft.B")
	r := Run(testConfig(p, l3For(6<<20), 2_000_000))
	if r.Cycles <= 0 || r.Instrs <= 0 || r.IPC <= 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
	bd := r.Breakdown
	if bd.Total() <= 0 || bd.Busy <= 0 {
		t.Fatal("breakdown must have positive busy cycles")
	}
	if r.Events.L1DReads == 0 || r.Events.L2Accesses == 0 {
		t.Fatal("no cache activity recorded")
	}
	if r.AvgReadLatency < 1 {
		t.Fatalf("average read latency %g < L1 hit time", r.AvgReadLatency)
	}
}

func TestDeterminism(t *testing.T) {
	p, _ := workload.ByName("mg.B")
	a := Run(testConfig(p, l3For(6<<20), 1_000_000))
	b := Run(testConfig(p, l3For(6<<20), 1_000_000))
	if a.Cycles != b.Cycles || a.Events != b.Events {
		t.Fatal("same seed must reproduce the identical run")
	}
}

func TestL3CapturesFittingWorkingSet(t *testing.T) {
	// ft.B's working set (scaled) fits the larger L3: the L3 must
	// filter most memory traffic and shorten the run.
	p, _ := workload.ByName("ft.B")
	noL3 := Run(testConfig(p, nil, 8_000_000))
	with := Run(testConfig(p, l3For(12<<20), 8_000_000))
	if with.Cycles >= noL3.Cycles {
		t.Fatalf("fitting L3 did not speed up: %d vs %d cycles", with.Cycles, noL3.Cycles)
	}
	if with.L3MissRate > 0.40 {
		t.Errorf("L3 miss rate %.2f too high for a fitting working set", with.L3MissRate)
	}
	memNo := noL3.Events.Mem.Reads + noL3.Events.Mem.Writes
	memWith := with.Events.Mem.Reads + with.Events.Mem.Writes
	if memWith*2 >= memNo {
		t.Errorf("L3 filtered too little traffic: %d vs %d", memWith, memNo)
	}
}

func TestNoLocalityWorkloadInsensitive(t *testing.T) {
	// cg.C (uniform over a huge working set): the L3 changes little.
	p, _ := workload.ByName("cg.C")
	noL3 := Run(testConfig(p, nil, 2_000_000))
	with := Run(testConfig(p, l3For(6<<20), 2_000_000))
	ratio := float64(with.Cycles) / float64(noL3.Cycles)
	if ratio < 0.80 || ratio > 1.25 {
		t.Errorf("cg.C cycle ratio %g; expected near-insensitivity to L3", ratio)
	}
}

func TestCapacityMonotonicityForLocalWorkload(t *testing.T) {
	// bt.C has strong locality: bigger L3s must not hurt, and the
	// biggest must clearly beat the smallest.
	p, _ := workload.ByName("bt.C")
	small := Run(testConfig(p, l3For(3<<20), 3_000_000))
	big := Run(testConfig(p, l3For(24<<20), 3_000_000))
	if big.Cycles >= small.Cycles {
		t.Errorf("8x L3 capacity did not help bt.C: %d vs %d", big.Cycles, small.Cycles)
	}
	if big.L3MissRate >= small.L3MissRate {
		t.Error("bigger L3 should miss less")
	}
}

func TestBreakdownCategories(t *testing.T) {
	// Memory-bound without L3: memory stall dominates; with a
	// fitting L3 the L3 category appears and memory shrinks.
	p, _ := workload.ByName("lu.C")
	noL3 := Run(testConfig(p, nil, 5_000_000))
	with := Run(testConfig(p, l3For(12<<20), 5_000_000))
	if noL3.Breakdown.L3 != 0 {
		t.Error("nol3 run cannot have L3 stalls")
	}
	if with.Breakdown.L3 <= 0 {
		t.Error("L3 run must record L3 stalls")
	}
	if with.Breakdown.Mem >= noL3.Breakdown.Mem {
		t.Error("L3 must reduce memory stall cycles")
	}
	// lu.C has locks; lock waits must be recorded.
	if with.Breakdown.Lock <= 0 {
		t.Error("lu.C must record lock waits")
	}
}

func TestBarrierAccounting(t *testing.T) {
	p, _ := workload.ByName("mg.B") // barriers every 100K instrs
	r := Run(testConfig(p, l3For(6<<20), 10_000_000))
	if r.Breakdown.Barrier <= 0 {
		t.Fatal("mg.B must record barrier waits")
	}
	// Barrier waits are real but bounded (not the dominant class).
	if r.Breakdown.Barrier > r.Breakdown.Total()/2 {
		t.Error("barrier waits implausibly dominant")
	}
}

func TestCoherenceActivity(t *testing.T) {
	// is.C writes to a shared region: upgrades/invalidations and
	// remote fetches must occur.
	p, _ := workload.ByName("is.C")
	r := Run(testConfig(p, l3For(6<<20), 2_000_000))
	if r.Events.Upgrades == 0 && r.Events.RemoteFetches == 0 {
		t.Error("shared-region workload produced no coherence traffic")
	}
}

func TestWarmupExcluded(t *testing.T) {
	p, _ := workload.ByName("ft.B")
	cfg := testConfig(p, l3For(12<<20), 2_000_000)
	cfg.WarmupFrac = 0.5
	half := Run(cfg)
	cfg.WarmupFrac = 0
	full := Run(cfg)
	if half.Instrs >= full.Instrs {
		t.Error("warmup instructions must be excluded from results")
	}
	// Post-warmup miss rate should not exceed the cold-start rate.
	if half.L3MissRate > full.L3MissRate*1.1 {
		t.Errorf("post-warmup L3 miss rate %.3f above cold %.3f", half.L3MissRate, full.L3MissRate)
	}
}

func TestMemTrafficConservation(t *testing.T) {
	// Every memory read must correspond to a post-L3 (or post-L2)
	// miss; reads cannot exceed misses.
	p, _ := workload.ByName("sp.C")
	r := Run(testConfig(p, l3For(6<<20), 2_000_000))
	if r.Events.Mem.Reads > r.Events.L3Misses {
		t.Errorf("memory reads %d exceed L3 misses %d", r.Events.Mem.Reads, r.Events.L3Misses)
	}
	if r.Events.L3Misses > r.Events.L3Tag {
		t.Error("L3 misses exceed L3 accesses")
	}
	if r.Events.L2Misses > r.Events.L2Accesses {
		t.Error("L2 misses exceed L2 accesses")
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Run(Config{})
}

func TestIPCBounded(t *testing.T) {
	// 32 threads at best-case CPI 1 (all FP) bound IPC at 32; any
	// realistic mix sits well below.
	for _, bm := range []string{"ua.C", "ft.B"} {
		p, _ := workload.ByName(bm)
		r := Run(testConfig(p, l3For(12<<20), 2_000_000))
		if r.IPC <= 0 || r.IPC > 32 {
			t.Errorf("%s: IPC %.2f outside (0, 32]", bm, r.IPC)
		}
	}
}

func TestEventsSaneAcrossAllBenchmarks(t *testing.T) {
	// Smoke every profile through the engine with a small budget and
	// check event conservation invariants.
	for _, p := range workload.NPB() {
		r := Run(testConfig(p, l3For(6<<20), 800_000))
		ev := r.Events
		if ev.L1DMisses > ev.L1DReads+ev.L1DWrites {
			t.Errorf("%s: L1 misses exceed accesses", p.Name)
		}
		if ev.L2Accesses != ev.L1DMisses {
			t.Errorf("%s: every L1 miss must access L2 (%d vs %d)", p.Name, ev.L2Accesses, ev.L1DMisses)
		}
		if ev.L3Tag > ev.L2Misses {
			t.Errorf("%s: more L3 lookups than L2 misses", p.Name)
		}
		if r.Breakdown.Total() <= 0 {
			t.Errorf("%s: empty breakdown", p.Name)
		}
	}
}
