// Package stats turns simulator event counts into the power and
// energy-delay figures of the paper's Figures 5(a) and 5(b): dynamic
// power from per-event CACTI-D energies, leakage and refresh from
// standby powers, memory bus power at 2 mW/Gb/s, core power scaled
// from the 90 nm Niagara, and the normalized system energy-delay
// product.
package stats

import "cactid/internal/sim"

// Energies carries the per-component CACTI-D projections the power
// model consumes, in SI units.
type Energies struct {
	ClockHz float64

	// Per-access dynamic energies (J).
	EL1      float64 // one L1 (I or D) access
	EL2      float64 // one L2 access
	EXbar    float64 // one crossbar line transfer
	EL3Tag   float64 // one L3 tag probe
	EL3Read  float64 // one L3 data read
	EL3Write float64 // one L3 data write

	// Standby powers (W), whole structure across all instances.
	L1Leak    float64 // all L1 I+D caches
	L2Leak    float64 // all L2 caches
	XbarLeak  float64
	L3Leak    float64
	L3Refresh float64

	// Main memory: per-chip command energies and standby/refresh.
	MemChips          int     // chips accessed in parallel per line (rank width)
	MemTotalChips     int     // all chips in the system (for standby/refresh)
	EMemActivate      float64 // per chip
	EMemRead          float64
	EMemWrite         float64
	MemStandbyPerChip float64
	MemRefreshPerChip float64

	// Bus power coefficient: J per transferred bit (the paper uses
	// 2 mW/Gb/s = 2 pJ/bit for the 2013 timeframe).
	BusEnergyPerBit float64

	// CorePower is the total power of the core die's 8 cores (the
	// paper scales the 90 nm Niagara to 22.3 W at 32 nm).
	CorePower float64

	// MemChannels and PowerDownSaving support the paper's concluding
	// suggestion of DRAM power-down modes: standby power is
	// discounted by PowerDownSaving (e.g. 0.85) over the fraction of
	// channel-cycles the controller reports as powered down.
	MemChannels     int
	PowerDownSaving float64
}

// Power is the Figure 5(a)/(b) breakdown, in watts.
type Power struct {
	L1Leak, L1Dyn     float64
	L2Leak, L2Dyn     float64
	XbarLeak, XbarDyn float64
	L3Leak, L3Dyn     float64
	L3Refresh         float64
	MemStandby        float64
	MemRefresh        float64
	MemDyn            float64
	Bus               float64
	Core              float64
}

// MemoryHierarchy returns the total memory-hierarchy power (the
// Figure 5(a) stack: everything but the cores).
func (p *Power) MemoryHierarchy() float64 {
	return p.L1Leak + p.L1Dyn + p.L2Leak + p.L2Dyn + p.XbarLeak + p.XbarDyn +
		p.L3Leak + p.L3Dyn + p.L3Refresh + p.MemStandby + p.MemRefresh + p.MemDyn + p.Bus
}

// System returns total system power (Figure 5(b) stack).
func (p *Power) System() float64 { return p.MemoryHierarchy() + p.Core }

// Compute evaluates the power breakdown for one simulation result.
func Compute(r *sim.Result, e Energies) Power {
	seconds := float64(r.Cycles) / e.ClockHz
	if seconds <= 0 {
		return Power{}
	}
	ev := &r.Events

	dyn := func(count uint64, energy float64) float64 {
		return float64(count) * energy / seconds
	}

	var p Power
	p.L1Leak = e.L1Leak
	p.L1Dyn = dyn(ev.L1IAccesses+ev.L1DReads+ev.L1DWrites, e.EL1)
	p.L2Leak = e.L2Leak
	p.L2Dyn = dyn(ev.L2Accesses+ev.L2Writebacks, e.EL2)
	p.XbarLeak = e.XbarLeak
	p.XbarDyn = dyn(ev.Xbar, e.EXbar)
	p.L3Leak = e.L3Leak
	p.L3Refresh = e.L3Refresh
	p.L3Dyn = dyn(ev.L3Tag, e.EL3Tag) + dyn(ev.L3DataRead, e.EL3Read) + dyn(ev.L3DataWrite, e.EL3Write)

	chips := float64(e.MemChips)
	p.MemDyn = dyn(ev.Mem.Activates, e.EMemActivate*chips) +
		dyn(ev.Mem.Reads, e.EMemRead*chips) +
		dyn(ev.Mem.Writes, e.EMemWrite*chips)
	p.MemStandby = float64(e.MemTotalChips) * e.MemStandbyPerChip
	if e.MemChannels > 0 && e.PowerDownSaving > 0 {
		pdFrac := float64(ev.Mem.PowerDownCyc) / (float64(e.MemChannels) * float64(r.Cycles))
		if pdFrac > 1 {
			pdFrac = 1
		}
		p.MemStandby *= 1 - pdFrac*e.PowerDownSaving
	}
	p.MemRefresh = float64(e.MemTotalChips) * e.MemRefreshPerChip
	p.Bus = float64(ev.Mem.BusBytes*8) * e.BusEnergyPerBit / seconds
	p.Core = e.CorePower
	return p
}

// EDP returns the energy-delay product of a run: system power x
// time^2 (J*s). Comparisons are made as ratios against a baseline
// configuration, as in Figure 5(b).
func EDP(p *Power, cycles int64, clockHz float64) float64 {
	t := float64(cycles) / clockHz
	return p.System() * t * t
}
