package stats

import (
	"math"
	"testing"

	"cactid/internal/sim"
	"cactid/internal/sim/memctl"
)

func sampleEnergies() Energies {
	return Energies{
		ClockHz: 2e9,
		EL1:     0.07e-9, EL2: 0.27e-9, EXbar: 0.1e-9,
		EL3Tag: 0.05e-9, EL3Read: 0.5e-9, EL3Write: 0.6e-9,
		L1Leak: 0.15, L2Leak: 1.25, XbarLeak: 0.05,
		L3Leak: 3.6, L3Refresh: 0.0,
		MemChips: 8, MemTotalChips: 16,
		EMemActivate: 0.78e-9, EMemRead: 0.63e-9, EMemWrite: 0.7e-9,
		MemStandbyPerChip: 0.091 / 16, MemRefreshPerChip: 0.009 / 16,
		BusEnergyPerBit: 2e-12,
		CorePower:       22.3,
	}
}

func sampleResult(cycles int64) *sim.Result {
	return &sim.Result{
		Cycles: cycles,
		Events: sim.Events{
			L1IAccesses: 1e8, L1DReads: 5e7, L1DWrites: 2e7,
			L2Accesses: 1e7, L2Writebacks: 2e6,
			Xbar: 5e6, L3Tag: 5e6, L3DataRead: 3e6, L3DataWrite: 2e6,
			Mem: memctl.Stats{
				Reads: 1e6, Writes: 5e5, Activates: 1.4e6,
				BusBytes: 96e6,
			},
		},
	}
}

func TestComputeBasic(t *testing.T) {
	p := Compute(sampleResult(2e9), sampleEnergies()) // 1 second of runtime
	if p.MemoryHierarchy() <= 0 || p.System() <= p.MemoryHierarchy() {
		t.Fatal("power totals wrong")
	}
	// 1.7e8 L1 accesses x 0.07nJ over 1s = 11.9mW.
	if want := 1.7e8 * 0.07e-9; math.Abs(p.L1Dyn-want)/want > 1e-9 {
		t.Errorf("L1Dyn = %g, want %g", p.L1Dyn, want)
	}
	// Leakage passes through.
	if p.L3Leak != 3.6 || p.L1Leak != 0.15 {
		t.Error("leakage passthrough wrong")
	}
	// Memory dynamic: per-op energy x 8 chips.
	wantMem := (1.4e6*0.78e-9 + 1e6*0.63e-9 + 5e5*0.7e-9) * 8
	if math.Abs(p.MemDyn-wantMem)/wantMem > 1e-9 {
		t.Errorf("MemDyn = %g, want %g", p.MemDyn, wantMem)
	}
	// Bus: 96MB x 8 bits x 2pJ over 1s.
	wantBus := 96e6 * 8 * 2e-12
	if math.Abs(p.Bus-wantBus)/wantBus > 1e-9 {
		t.Errorf("Bus = %g, want %g", p.Bus, wantBus)
	}
	if p.Core != 22.3 {
		t.Error("core power passthrough wrong")
	}
}

func TestDynamicPowerScalesWithTime(t *testing.T) {
	e := sampleEnergies()
	fast := Compute(sampleResult(1e9), e) // same events in half the time
	slow := Compute(sampleResult(2e9), e)
	if fast.L1Dyn <= slow.L1Dyn || fast.MemDyn <= slow.MemDyn {
		t.Error("same events in less time must mean more dynamic power")
	}
	if fast.L1Leak != slow.L1Leak {
		t.Error("leakage must not depend on runtime")
	}
}

func TestEDP(t *testing.T) {
	e := sampleEnergies()
	p := Compute(sampleResult(2e9), e)
	edp1 := EDP(&p, 2e9, 2e9)
	edp2 := EDP(&p, 4e9, 2e9)
	if edp2 <= edp1*3.9 || edp2 >= edp1*4.1 {
		t.Errorf("EDP should scale with t^2 at fixed power: %g vs %g", edp1, edp2)
	}
}

func TestZeroCycles(t *testing.T) {
	p := Compute(&sim.Result{}, sampleEnergies())
	if p.System() != 0 {
		t.Error("zero-cycle run should produce zero power")
	}
}

func TestPowerDownDiscount(t *testing.T) {
	e := sampleEnergies()
	e.MemChannels = 2
	e.PowerDownSaving = 0.85
	r := sampleResult(2e9)
	// Half of all channel-cycles powered down.
	r.Events.Mem.PowerDownCyc = 2e9 // of 2 channels x 2e9 cycles
	p := Compute(r, e)
	base := float64(e.MemTotalChips) * e.MemStandbyPerChip
	want := base * (1 - 0.5*0.85)
	if math.Abs(p.MemStandby-want)/want > 1e-9 {
		t.Errorf("discounted standby = %g, want %g", p.MemStandby, want)
	}
	// Overshoot clamps at full power-down.
	r.Events.Mem.PowerDownCyc = 1e12
	p = Compute(r, e)
	if p.MemStandby < base*(1-0.85)-1e-12 {
		t.Errorf("standby %g fell below the residual floor", p.MemStandby)
	}
}
