package sim

import (
	"testing"

	"cactid/internal/sim/memctl"
	"cactid/internal/sim/workload"
)

// directedConfig builds a minimal system driven by explicit traces,
// for exact-count verification of the hierarchy and coherence engine.
func directedConfig(sources []workload.Source, budget int64, cores int) Config {
	return Config{
		Cores: cores, ThreadsPerCore: 1, LineBytes: 64,
		L1Bytes: 4 << 10, L1Ways: 4, L2Bytes: 32 << 10, L2Ways: 4,
		L1HitCycles: 1, L2HitCycles: 3,
		Mem: memctl.Config{
			Channels: 2, BanksPerChannel: 8, PageBytes: 8192, LineBytes: 64,
			Policy: memctl.ClosedPage,
			Timing: memctl.Timing{TRCD: 21, CAS: 14, TRP: 15, TRAS: 78, TRC: 99, TRRD: 5, Burst: 3},
		},
		Sources:     sources,
		InstrBudget: budget,
		Seed:        1,
	}
}

func TestDirectedTraceExactCounts(t *testing.T) {
	// One thread alternating between two lines: exactly two cold
	// misses, everything else L1 hits.
	trace := []workload.Ref{{Addr: 0x10000}, {Addr: 0x20000}}
	src := []workload.Source{workload.NewTraceSource(trace)}
	r := Run(directedConfig(src, 8, 1))
	ev := r.Events
	if ev.L1DReads != 8 {
		t.Fatalf("L1D reads = %d, want 8", ev.L1DReads)
	}
	if ev.L1DMisses != 2 {
		t.Fatalf("L1D misses = %d, want 2 (cold)", ev.L1DMisses)
	}
	if ev.L2Accesses != 2 || ev.L2Misses != 2 {
		t.Fatalf("L2 = %d/%d, want 2/2", ev.L2Accesses, ev.L2Misses)
	}
	if ev.Mem.Reads != 2 || ev.Mem.Writes != 0 {
		t.Fatalf("memory = %d reads / %d writes, want 2/0", ev.Mem.Reads, ev.Mem.Writes)
	}
}

func TestDirectedWriteAllocate(t *testing.T) {
	// A single write: write-allocate fetches the line (1 memory op),
	// and the dirty line stays resident (no writeback in-run).
	trace := []workload.Ref{{Addr: 0x40000, Write: true}}
	src := []workload.Source{workload.NewTraceSource(trace)}
	r := Run(directedConfig(src, 4, 1))
	ev := r.Events
	if ev.L1DWrites != 4 || ev.L1DMisses != 1 {
		t.Fatalf("writes=%d misses=%d, want 4/1", ev.L1DWrites, ev.L1DMisses)
	}
	if ev.Mem.Reads+ev.Mem.Writes != 1 {
		t.Fatalf("memory ops = %d, want 1 (allocate only)", ev.Mem.Reads+ev.Mem.Writes)
	}
}

func TestDirectedCoherencePingPong(t *testing.T) {
	// Core 0 writes line A, core 1 reads it: the reader must fetch
	// the modified copy from the writer's cache (remote fetches) and
	// the writer must re-upgrade (invalidations) - a classic MESI
	// ping-pong.
	a := uint64(0x80000)
	w := []workload.Ref{{Addr: a, Write: true, OtherGap: 3}}
	rd := []workload.Ref{{Addr: a, OtherGap: 3}}
	src := []workload.Source{
		workload.NewTraceSource(w),
		workload.NewTraceSource(rd),
	}
	r := Run(directedConfig(src, 400, 2))
	ev := r.Events
	if ev.RemoteFetches == 0 {
		t.Error("reader never fetched the modified line from the writer")
	}
	if ev.Upgrades == 0 {
		t.Error("writer never upgraded a shared line")
	}
	// Memory traffic stays tiny: the line ping-pongs between caches.
	if ev.Mem.Reads > 4 {
		t.Errorf("memory reads = %d; ping-pong should stay on-chip", ev.Mem.Reads)
	}
}

func TestDirectedConflictEviction(t *testing.T) {
	// Five lines mapping to the same L1 set (4-way): steady-state
	// round-robin misses every access in L1 but hits L2.
	sets := uint64(4096 / 64 / 4) // 16 sets
	var trace []workload.Ref
	for i := uint64(0); i < 5; i++ {
		trace = append(trace, workload.Ref{Addr: 0x100000 + i*sets*64})
	}
	src := []workload.Source{workload.NewTraceSource(trace)}
	r := Run(directedConfig(src, 100, 1))
	ev := r.Events
	if ev.L1DMisses != ev.L1DReads {
		t.Fatalf("L1 should miss every access in a 5-way conflict: %d/%d", ev.L1DMisses, ev.L1DReads)
	}
	// After the 5 cold fills, L2 (32KB, plenty of room) absorbs all.
	if ev.L2Misses != 5 {
		t.Fatalf("L2 misses = %d, want 5 (cold only)", ev.L2Misses)
	}
}

func TestDirectedBarrierSynchronizes(t *testing.T) {
	// Two threads, one fast one slow, meeting at barriers: the fast
	// thread must accumulate barrier wait cycles.
	fast := []workload.Ref{{Addr: 0x200000, OtherGap: 1}, {Addr: 0x200000, Barrier: true}}
	slow := []workload.Ref{{Addr: 0x300000, OtherGap: 40}, {Addr: 0x300000, Barrier: true}}
	src := []workload.Source{
		workload.NewTraceSource(fast),
		workload.NewTraceSource(slow),
	}
	r := Run(directedConfig(src, 2000, 2))
	if r.Breakdown.Barrier <= 0 {
		t.Fatal("fast thread should wait at barriers")
	}
}

func TestSourcesLengthValidated(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong Sources length")
		}
	}()
	src := []workload.Source{workload.NewTraceSource([]workload.Ref{{Addr: 1}})}
	Run(directedConfig(src, 8, 2)) // 2 cores but 1 source
}
