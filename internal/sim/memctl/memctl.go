// Package memctl models the main-memory subsystem of the LLC study:
// two channels, each a single-ranked DIMM of x8 DDR devices, with
// per-bank row-buffer tracking, open or closed page policy
// (Section 2.1), multibank interleaving (tRRD), and shared data-bus
// occupancy. Timing parameters come from the CACTI-D DRAM chip model.
package memctl

// PagePolicy selects between keeping rows open for locality and
// proactively closing them (Section 2.1).
type PagePolicy int

const (
	ClosedPage PagePolicy = iota
	OpenPage
)

func (p PagePolicy) String() string {
	if p == OpenPage {
		return "open-page"
	}
	return "closed-page"
}

// Timing holds the controller's view of device timing, in CPU cycles.
type Timing struct {
	TRCD, CAS, TRP, TRAS, TRC, TRRD, Burst int64
}

// Config describes the memory subsystem.
type Config struct {
	Channels        int
	BanksPerChannel int
	PageBytes       int64 // row-buffer footprint per channel (page bits x chips / 8)
	LineBytes       int64
	Policy          PagePolicy
	Timing          Timing

	// PowerDown enables the DRAM power-down mode the paper's
	// conclusion points to: after PowerDownAfter idle cycles a
	// channel's rank enters power-down; the next request pays
	// WakeupCycles. The controller reports the powered-down cycles
	// so the power model can discount standby power.
	PowerDown      bool
	PowerDownAfter int64
	WakeupCycles   int64
}

// Stats counts controller events for the power model. Activates and
// Precharges count DIMM-rank operations (all chips of the rank act
// together); Reads/Writes count line transfers.
type Stats struct {
	Reads, Writes       uint64
	Activates           uint64
	RowHits, RowMisses  uint64
	BusBytes            uint64
	TotalReadLatencyCyc uint64 // sum of read latencies (cycles)
	QueueWaitCyc        uint64

	// Power-down bookkeeping (channel-cycles spent powered down, and
	// wakeup events).
	PowerDownCyc uint64
	Wakeups      uint64
}

// Controller is the evaluated model. It must be accessed in
// non-decreasing request-time order (the simulator's event loop
// guarantees this approximately; small inversions are tolerated by
// the max() arbitration).
type Controller struct {
	cfg Config

	bankFree [][]int64 // [channel][bank] earliest next activate
	openRow  [][]int64 // [channel][bank] open row id (-1 = closed)
	busFree  []int64   // [channel]
	actFree  []int64   // [channel] tRRD gate
	lastDone []int64   // [channel] last activity, for power-down

	Stats Stats
}

// New builds a controller.
func New(cfg Config) *Controller {
	if cfg.Channels <= 0 || cfg.BanksPerChannel <= 0 || cfg.LineBytes <= 0 || cfg.PageBytes <= 0 {
		panic("memctl: bad config")
	}
	c := &Controller{cfg: cfg}
	c.bankFree = make([][]int64, cfg.Channels)
	c.openRow = make([][]int64, cfg.Channels)
	for i := range c.bankFree {
		c.bankFree[i] = make([]int64, cfg.BanksPerChannel)
		c.openRow[i] = make([]int64, cfg.BanksPerChannel)
		for b := range c.openRow[i] {
			c.openRow[i][b] = -1
		}
	}
	c.busFree = make([]int64, cfg.Channels)
	c.actFree = make([]int64, cfg.Channels)
	c.lastDone = make([]int64, cfg.Channels)
	return c
}

// route maps a line address to (channel, bank, row).
func (c *Controller) route(addr uint64) (ch, bank int, row int64) {
	line := addr / uint64(c.cfg.LineBytes)
	ch = int(line % uint64(c.cfg.Channels))
	rowGlobal := addr / uint64(c.cfg.PageBytes)
	// Hash the bank index from the page number so that strided or
	// clustered access patterns still spread across banks
	// (permutation-based interleaving, as real controllers do). A
	// multiplicative mix avalanches far better than simple XOR
	// folding.
	hashed := rowGlobal * 0x9E3779B97F4A7C15
	bank = int((hashed >> 32) % uint64(c.cfg.BanksPerChannel))
	// The row id must uniquely identify the page within its bank;
	// the global page number does.
	row = int64(rowGlobal)
	return ch, bank, row
}

// Access issues a line read or write at CPU-cycle time now and
// returns the completion time. Contention (bank busy, tRRD, data bus)
// is accounted via resource free-times.
func (c *Controller) Access(addr uint64, write bool, now int64) int64 {
	t := &c.cfg.Timing
	ch, bank, row := c.route(addr)

	// Power-down: a rank idle beyond the threshold sleeps until this
	// request wakes it (paying the exit latency).
	if c.cfg.PowerDown && now > c.lastDone[ch] {
		if idle := now - c.lastDone[ch]; idle > c.cfg.PowerDownAfter {
			c.Stats.PowerDownCyc += uint64(idle - c.cfg.PowerDownAfter)
			c.Stats.Wakeups++
			now += c.cfg.WakeupCycles
		}
	}

	start := now
	if bf := c.bankFree[ch][bank]; bf > start {
		start = bf
	}

	var ready int64 // when data can start on the bus
	switch {
	case c.cfg.Policy == OpenPage && c.openRow[ch][bank] == row:
		// Row hit: CAS only.
		c.Stats.RowHits++
		ready = start + t.CAS
		c.bankFree[ch][bank] = start + t.CAS
	case c.cfg.Policy == OpenPage && c.openRow[ch][bank] >= 0:
		// Row conflict: precharge, activate, CAS.
		c.Stats.RowMisses++
		c.Stats.Activates++
		actAt := maxi(start+t.TRP, c.actFree[ch])
		c.actFree[ch] = actAt + t.TRRD
		ready = actAt + t.TRCD + t.CAS
		c.openRow[ch][bank] = row
		c.bankFree[ch][bank] = actAt + t.TRAS
	default:
		// Closed bank (or closed-page policy): activate, CAS.
		c.Stats.Activates++
		actAt := maxi(start, c.actFree[ch])
		c.actFree[ch] = actAt + t.TRRD
		ready = actAt + t.TRCD + t.CAS
		if c.cfg.Policy == OpenPage {
			c.openRow[ch][bank] = row
			c.bankFree[ch][bank] = actAt + t.TRAS
		} else {
			// Auto-precharge after the access.
			c.bankFree[ch][bank] = actAt + t.TRC
		}
	}

	busAt := maxi(ready, c.busFree[ch])
	done := busAt + t.Burst
	c.busFree[ch] = done
	c.Stats.QueueWaitCyc += uint64(busAt - ready + start - now)

	if write {
		c.Stats.Writes++
	} else {
		c.Stats.Reads++
		c.Stats.TotalReadLatencyCyc += uint64(done - now)
	}
	c.Stats.BusBytes += uint64(c.cfg.LineBytes)
	if done > c.lastDone[ch] {
		c.lastDone[ch] = done
	}
	return done
}

func maxi(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
