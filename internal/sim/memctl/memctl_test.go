package memctl

import (
	"testing"
	"testing/quick"
)

func cfg(policy PagePolicy) Config {
	return Config{
		Channels: 2, BanksPerChannel: 8, PageBytes: 8192, LineBytes: 64,
		Policy: policy,
		Timing: Timing{TRCD: 21, CAS: 14, TRP: 15, TRAS: 78, TRC: 99, TRRD: 5, Burst: 3},
	}
}

func TestClosedPageLatency(t *testing.T) {
	c := New(cfg(ClosedPage))
	done := c.Access(0, false, 1000)
	// Unloaded: tRCD + CAS + burst.
	want := int64(1000 + 21 + 14 + 3)
	if done != want {
		t.Fatalf("done = %d, want %d", done, want)
	}
	if c.Stats.Activates != 1 || c.Stats.Reads != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestOpenPageRowHit(t *testing.T) {
	c := New(cfg(OpenPage))
	c.Access(0, false, 1000)
	// Same page (within 8KB, same channel requires same line%2...):
	// line 0 and line 2 are both channel 0, same page.
	start := int64(5000)
	done := c.Access(128, false, start)
	if c.Stats.RowHits != 1 {
		t.Fatalf("expected a row hit, stats = %+v", c.Stats)
	}
	if done != start+14+3 {
		t.Fatalf("row hit latency = %d, want CAS+burst", done-start)
	}
}

func TestOpenPageConflict(t *testing.T) {
	c := New(cfg(OpenPage))
	c.Access(0, false, 1000)
	// Same channel and bank hash requires same page group; use an
	// address far away mapping to the same bank: search one.
	var conflictAddr uint64
	probe := New(cfg(OpenPage))
	ch0, b0, _ := probe.route(0)
	for a := uint64(16384); ; a += 16384 {
		ch, b, _ := probe.route(a)
		if ch == ch0 && b == b0 {
			conflictAddr = a
			break
		}
	}
	done := c.Access(conflictAddr, false, 5000)
	if c.Stats.RowMisses != 1 {
		t.Fatalf("expected a row conflict, stats = %+v", c.Stats)
	}
	if done-5000 < 15+21+14 {
		t.Fatalf("conflict latency %d too small", done-5000)
	}
}

func TestBankOccupancySerializes(t *testing.T) {
	c := New(cfg(ClosedPage))
	d1 := c.Access(0, false, 0)
	d2 := c.Access(0, false, 0) // same line, same bank, same time
	if d2 <= d1 {
		t.Fatal("second access to a busy bank must wait")
	}
	// Closed page: bank recovers after tRC.
	if d2 < 99 {
		t.Fatalf("second access done at %d, want >= tRC", d2)
	}
}

func TestChannelsIndependent(t *testing.T) {
	c := New(cfg(ClosedPage))
	d1 := c.Access(0, false, 0)  // channel 0
	d2 := c.Access(64, false, 0) // channel 1 (line 1)
	if d2 != d1 {
		t.Fatalf("different channels should not interfere: %d vs %d", d1, d2)
	}
}

func TestTRRDGatesSameChannelActivates(t *testing.T) {
	c := New(cfg(ClosedPage))
	// Two different banks, same channel: the second ACTIVATE waits
	// tRRD.
	probe := New(cfg(ClosedPage))
	ch0, b0, _ := probe.route(0)
	var other uint64
	for a := uint64(8192); ; a += 8192 {
		ch, b, _ := probe.route(a)
		if ch == ch0 && b != b0 {
			other = a
			break
		}
	}
	d1 := c.Access(0, false, 0)
	d2 := c.Access(other, false, 0)
	if d2 != d1+5 {
		t.Fatalf("tRRD gating wrong: %d vs %d", d2, d1)
	}
}

func TestBusSerializesData(t *testing.T) {
	cf := cfg(ClosedPage)
	cf.Timing.Burst = 10
	c := New(cf)
	probe := New(cf)
	ch0, b0, _ := probe.route(0)
	// Find a second address on the same channel, different bank.
	var other uint64
	for a := uint64(8192); ; a += 8192 {
		ch, b, _ := probe.route(a)
		if ch == ch0 && b != b0 {
			other = a
			break
		}
	}
	d1 := c.Access(0, false, 0)
	d2 := c.Access(other, false, 0)
	// Second burst cannot overlap the first on the shared bus.
	if d2 < d1+10 {
		t.Fatalf("bus overlap: %d then %d", d1, d2)
	}
}

func TestWritesCounted(t *testing.T) {
	c := New(cfg(ClosedPage))
	c.Access(0, true, 0)
	if c.Stats.Writes != 1 || c.Stats.Reads != 0 {
		t.Fatalf("stats = %+v", c.Stats)
	}
	if c.Stats.BusBytes != 64 {
		t.Fatalf("bus bytes = %d", c.Stats.BusBytes)
	}
}

func TestBankHashSpreads(t *testing.T) {
	c := New(cfg(ClosedPage))
	counts := make([]int, 8)
	for i := 0; i < 8192; i++ {
		_, b, _ := c.route(uint64(i) * 8192)
		counts[b]++
	}
	for b, n := range counts {
		if n < 512 || n > 1536 {
			t.Fatalf("bank %d got %d of 8192 pages; hash not spreading", b, n)
		}
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Config{})
}

func TestPolicyString(t *testing.T) {
	if OpenPage.String() != "open-page" || ClosedPage.String() != "closed-page" {
		t.Fatal("policy strings wrong")
	}
}

func TestPropertyMonotoneCompletion(t *testing.T) {
	// Property: completion time never precedes issue time plus the
	// unloaded minimum.
	c := New(cfg(OpenPage))
	now := int64(0)
	f := func(step uint16, addr uint32, write bool) bool {
		now += int64(step % 500)
		done := c.Access(uint64(addr)*64, write, now)
		return done >= now+14+3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPowerDown(t *testing.T) {
	cf := cfg(ClosedPage)
	cf.PowerDown = true
	cf.PowerDownAfter = 100
	cf.WakeupCycles = 12
	c := New(cf)
	d1 := c.Access(0, false, 0)
	// Long idle gap: the rank powers down and the next access pays
	// the wakeup latency.
	d2 := c.Access(0, false, d1+10_000)
	base := int64(21 + 14 + 3)
	if got := d2 - (d1 + 10_000); got != base+12 {
		t.Fatalf("post-idle latency %d, want %d (+wakeup)", got, base+12)
	}
	if c.Stats.Wakeups != 1 {
		t.Fatalf("wakeups = %d", c.Stats.Wakeups)
	}
	if c.Stats.PowerDownCyc < 9_000 {
		t.Fatalf("powered-down cycles = %d, want ~9900", c.Stats.PowerDownCyc)
	}
}

func TestPowerDownDisabledByDefault(t *testing.T) {
	c := New(cfg(ClosedPage))
	d1 := c.Access(0, false, 0)
	c.Access(0, false, d1+10_000)
	if c.Stats.Wakeups != 0 || c.Stats.PowerDownCyc != 0 {
		t.Fatal("power-down should be off by default")
	}
}

func TestPowerDownShortIdleNoEntry(t *testing.T) {
	cf := cfg(ClosedPage)
	cf.PowerDown = true
	cf.PowerDownAfter = 1000
	cf.WakeupCycles = 12
	c := New(cf)
	d1 := c.Access(0, false, 0)
	c.Access(0, false, d1+500) // below threshold
	if c.Stats.Wakeups != 0 {
		t.Fatal("short idle must not enter power-down")
	}
}
