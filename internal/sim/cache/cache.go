// Package cache provides the fast set-associative cache model used by
// the architectural simulator: true-LRU replacement, write-back
// write-allocate, MESI line states, and event counters sized for
// simulating hundreds of millions of references.
package cache

// State is a MESI coherence state.
type State uint8

const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

func (s State) String() string {
	switch s {
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return "I"
}

// Stats counts cache events.
type Stats struct {
	Reads, Writes             uint64
	ReadMisses, WriteMisses   uint64
	Evictions, DirtyEvictions uint64
	Invalidations             uint64
}

// Accesses returns total accesses.
func (s *Stats) Accesses() uint64 { return s.Reads + s.Writes }

// Misses returns total misses.
func (s *Stats) Misses() uint64 { return s.ReadMisses + s.WriteMisses }

// MissRate returns the overall miss ratio (0 when idle).
func (s *Stats) MissRate() float64 {
	a := s.Accesses()
	if a == 0 {
		return 0
	}
	return float64(s.Misses()) / float64(a)
}

// Cache is one set-associative cache. The zero value is unusable;
// construct with New.
type Cache struct {
	Sets, Ways, LineBytes int

	offShift uint

	tags  []uint64 // line address (addr >> offShift), valid iff state != Invalid
	state []State
	lru   []uint32
	clock uint32

	Stats Stats
}

// New builds a cache of totalBytes capacity. totalBytes must be
// divisible by ways*lineBytes; the resulting set count need not be a
// power of two (sets are selected by modulo), which supports the
// study's 12/18/24-way LLCs.
func New(totalBytes int64, ways, lineBytes int) *Cache {
	if totalBytes <= 0 || ways <= 0 || lineBytes <= 0 {
		panic("cache: non-positive geometry")
	}
	lines := totalBytes / int64(lineBytes)
	sets := lines / int64(ways)
	if sets <= 0 || lines%int64(ways) != 0 {
		panic("cache: capacity not divisible by ways*lineBytes")
	}
	off := uint(0)
	for 1<<off < lineBytes {
		off++
	}
	c := &Cache{
		Sets: int(sets), Ways: ways, LineBytes: lineBytes,
		offShift: off,
		tags:     make([]uint64, lines),
		state:    make([]State, lines),
		lru:      make([]uint32, lines),
	}
	return c
}

// line returns the line address for a byte address.
func (c *Cache) line(addr uint64) uint64 { return addr >> c.offShift }

// set returns the set index for a byte address.
func (c *Cache) set(addr uint64) int { return int(c.line(addr) % uint64(c.Sets)) }

// probe finds the way holding addr, or -1.
func (c *Cache) probe(addr uint64) int {
	ln := c.line(addr)
	base := c.set(addr) * c.Ways
	for w := 0; w < c.Ways; w++ {
		if c.state[base+w] != Invalid && c.tags[base+w] == ln {
			return base + w
		}
	}
	return -1
}

// Contains reports whether addr is present, without touching LRU or
// stats.
func (c *Cache) Contains(addr uint64) bool { return c.probe(addr) >= 0 }

// GetState returns the MESI state of addr (Invalid if absent).
func (c *Cache) GetState(addr uint64) State {
	if i := c.probe(addr); i >= 0 {
		return c.state[i]
	}
	return Invalid
}

// SetState updates the MESI state of a present line; it is a no-op if
// the line is absent.
func (c *Cache) SetState(addr uint64, s State) {
	if i := c.probe(addr); i >= 0 {
		c.state[i] = s
	}
}

// Access performs a read or write lookup, updating LRU and stats.
// It returns whether the access hit. A write hit upgrades the line to
// Modified; upgrades from Shared are the caller's business (coherence
// actions), but the local state still moves to Modified.
func (c *Cache) Access(addr uint64, write bool) bool {
	c.clock++
	i := c.probe(addr)
	if write {
		c.Stats.Writes++
	} else {
		c.Stats.Reads++
	}
	if i < 0 {
		if write {
			c.Stats.WriteMisses++
		} else {
			c.Stats.ReadMisses++
		}
		return false
	}
	c.lru[i] = c.clock
	if write {
		c.state[i] = Modified
	}
	return true
}

// Victim holds an evicted line.
type Victim struct {
	Addr  uint64 // byte address of the line
	State State
	Valid bool
}

// Insert fills addr with the given state, evicting the LRU line of
// the set if needed. The evicted line (if any) is returned.
func (c *Cache) Insert(addr uint64, st State) Victim {
	c.clock++
	if i := c.probe(addr); i >= 0 { // already present: refresh
		c.state[i] = st
		c.lru[i] = c.clock
		return Victim{}
	}
	base := c.set(addr) * c.Ways
	victim := base
	for w := 0; w < c.Ways; w++ {
		if c.state[base+w] == Invalid {
			victim = base + w
			goto place
		}
		if c.lru[base+w] < c.lru[victim] {
			victim = base + w
		}
	}
place:
	var out Victim
	if c.state[victim] != Invalid {
		out = Victim{Addr: c.tags[victim] << c.offShift, State: c.state[victim], Valid: true}
		c.Stats.Evictions++
		if c.state[victim] == Modified {
			c.Stats.DirtyEvictions++
		}
	}
	c.tags[victim] = c.line(addr)
	c.state[victim] = st
	c.lru[victim] = c.clock
	return out
}

// Invalidate removes addr, returning its prior state (Invalid if it
// was absent).
func (c *Cache) Invalidate(addr uint64) State {
	i := c.probe(addr)
	if i < 0 {
		return Invalid
	}
	st := c.state[i]
	c.state[i] = Invalid
	c.Stats.Invalidations++
	return st
}

// WayOf returns the way index holding addr within its set, or -1.
func (c *Cache) WayOf(addr uint64) int {
	i := c.probe(addr)
	if i < 0 {
		return -1
	}
	return i % c.Ways
}

// Touch refreshes LRU for a present line (used when an upper level
// hits and the lower level should observe recency, e.g. inclusive
// LLCs).
func (c *Cache) Touch(addr uint64) {
	if i := c.probe(addr); i >= 0 {
		c.clock++
		c.lru[i] = c.clock
	}
}
