package cache

import (
	"testing"
	"testing/quick"
)

func TestBasicHitMiss(t *testing.T) {
	c := New(64<<10, 8, 64)
	if c.Access(0x1000, false) {
		t.Fatal("cold cache should miss")
	}
	c.Insert(0x1000, Exclusive)
	if !c.Access(0x1000, false) {
		t.Fatal("inserted line should hit")
	}
	if !c.Access(0x1020, false) {
		t.Fatal("same line, different offset should hit")
	}
	if c.Access(0x2000, false) {
		t.Fatal("different line should miss")
	}
}

func TestWriteSetsModified(t *testing.T) {
	c := New(64<<10, 8, 64)
	c.Insert(0x40, Shared)
	if !c.Access(0x40, true) {
		t.Fatal("write to present line should hit")
	}
	if got := c.GetState(0x40); got != Modified {
		t.Fatalf("state after write = %v, want M", got)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way cache, one set per conflict class: fill two ways, touch
	// the first, insert a third: the second must be evicted.
	c := New(2*64, 2, 64) // 1 set, 2 ways
	c.Insert(0x0000, Exclusive)
	c.Insert(0x1000, Exclusive)
	c.Access(0x0000, false) // refresh line 0
	v := c.Insert(0x2000, Exclusive)
	if !v.Valid || v.Addr != 0x1000 {
		t.Fatalf("victim = %+v, want line 0x1000", v)
	}
	if !c.Contains(0x0000) || !c.Contains(0x2000) || c.Contains(0x1000) {
		t.Fatal("post-eviction contents wrong")
	}
}

func TestDirtyEviction(t *testing.T) {
	c := New(2*64, 2, 64)
	c.Insert(0x0000, Modified)
	c.Insert(0x1000, Exclusive)
	v := c.Insert(0x2000, Exclusive) // evicts LRU = 0x0000 (M)
	if !v.Valid || v.State != Modified {
		t.Fatalf("victim = %+v, want Modified", v)
	}
	if c.Stats.DirtyEvictions != 1 {
		t.Fatalf("DirtyEvictions = %d", c.Stats.DirtyEvictions)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(64<<10, 8, 64)
	c.Insert(0x40, Modified)
	if st := c.Invalidate(0x40); st != Modified {
		t.Fatalf("Invalidate returned %v", st)
	}
	if c.Contains(0x40) {
		t.Fatal("line still present after invalidate")
	}
	if st := c.Invalidate(0x40); st != Invalid {
		t.Fatal("double invalidate should return Invalid")
	}
}

func TestInsertExistingRefreshes(t *testing.T) {
	c := New(2*64, 2, 64)
	c.Insert(0x0000, Exclusive)
	c.Insert(0x1000, Exclusive)
	if v := c.Insert(0x0000, Modified); v.Valid {
		t.Fatal("re-inserting a present line must not evict")
	}
	if got := c.GetState(0x0000); got != Modified {
		t.Fatal("re-insert should update state")
	}
}

func TestNonPowerOfTwoWays(t *testing.T) {
	// 12-way 24MB/8-bank style geometry (sets not a power of two).
	c := New(3<<20, 12, 64)
	if c.Sets != 3<<20/64/12 {
		t.Fatalf("sets = %d", c.Sets)
	}
	for i := 0; i < 100; i++ {
		c.Insert(uint64(i)*64*uint64(c.Sets), Exclusive) // same set
	}
	if c.Stats.Evictions != 100-12 {
		t.Fatalf("evictions = %d, want %d", c.Stats.Evictions, 100-12)
	}
}

func TestStats(t *testing.T) {
	c := New(64<<10, 8, 64)
	c.Access(0, false)
	c.Access(64, true)
	c.Insert(0, Exclusive)
	c.Access(0, false)
	s := &c.Stats
	if s.Reads != 2 || s.Writes != 1 || s.ReadMisses != 1 || s.WriteMisses != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if got := s.MissRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("miss rate = %g", got)
	}
	if s.Accesses() != 3 || s.Misses() != 2 {
		t.Fatal("aggregate counters wrong")
	}
}

func TestMissRateEmptyCache(t *testing.T) {
	c := New(1<<10, 2, 64)
	if c.Stats.MissRate() != 0 {
		t.Fatal("idle cache should report 0 miss rate")
	}
}

func TestPanicsOnBadGeometry(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 8, 64) },
		func() { New(1<<10, 0, 64) },
		func() { New(100, 8, 64) }, // not divisible
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestStateStrings(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Exclusive.String() != "E" || Modified.String() != "M" {
		t.Fatal("state strings wrong")
	}
}

func TestPropertyCapacityBound(t *testing.T) {
	// Property: after any insert sequence, the number of resident
	// lines never exceeds capacity.
	c := New(4<<10, 4, 64) // 64 lines
	f := func(addrs []uint16) bool {
		for _, a := range addrs {
			c.Insert(uint64(a)*64, Exclusive)
		}
		resident := 0
		for i := 0; i < 1<<16; i++ {
			if c.Contains(uint64(i) * 64) {
				resident++
			}
		}
		return resident <= 64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestTouchKeepsLineHot(t *testing.T) {
	c := New(2*64, 2, 64)
	c.Insert(0x0000, Exclusive)
	c.Insert(0x1000, Exclusive)
	c.Touch(0x0000)
	v := c.Insert(0x2000, Exclusive)
	if v.Addr != 0x1000 {
		t.Fatalf("Touch ignored by LRU; victim %x", v.Addr)
	}
}
