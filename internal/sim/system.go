// Package sim is the architectural simulator of the LLC study
// (Section 3): a multicore multithreaded processor in the style of
// Niagara — 8 cores x 4 threads, in-order, one FP instruction per
// cycle per thread and other instructions every 4 cycles, at most one
// memory request per cycle per core — over a three-level cache
// hierarchy with MESI coherence, a banked shared L3 reached through a
// crossbar, and a DDR main-memory subsystem. It is a discrete-event
// simulator: threads are events ordered by their local time, and
// shared resources (L3 banks, memory banks and buses, locks) are
// modeled by busy-until times.
package sim

import (
	"cactid/internal/sim/cache"
	"cactid/internal/sim/memctl"
	"cactid/internal/sim/workload"
)

// L3Params configures the shared last-level cache; nil means no L3.
type L3Params struct {
	CapacityBytes int64
	Ways          int
	Banks         int

	TagCycles      int64 // tag array access (sequential mode reads tags first)
	DataCycles     int64 // data array access
	BankBusyCycles int64 // multisubbank interleave cycle (bank occupancy per access)
	CrossbarCycles int64 // one L2<->L3 crossbar traversal

	// PageBits, when positive (DRAM L3s), enables the Section 3.4
	// page-locality analysis: the simulator tracks the DRAM page hit
	// ratio the L3's access stream would see under both cache-set
	// mappings of Figure 3 (sets mapped to pages, and sets striped
	// across pages). The study uses this to justify the SRAM-like
	// interface.
	PageBits int64
}

// Config describes the simulated system.
type Config struct {
	Cores          int
	ThreadsPerCore int

	LineBytes int
	L1Bytes   int64
	L1Ways    int
	L2Bytes   int64
	L2Ways    int

	L1HitCycles int64
	L2HitCycles int64

	L3  *L3Params
	Mem memctl.Config

	Workload    workload.Profile
	InstrBudget int64   // total across all threads
	WarmupFrac  float64 // fraction of the budget excluded from stats
	Seed        uint64

	// Sources, when non-nil, overrides the synthetic workload with
	// one reference stream per thread (trace-driven simulation). Its
	// length must equal Cores*ThreadsPerCore.
	Sources []workload.Source
}

// Breakdown attributes thread cycles to the paper's Figure 4(b)
// categories.
type Breakdown struct {
	Busy    int64 // processing instructions
	L2      int64 // stalled on L2 (incl. remote-L2 transfers)
	L3      int64 // stalled on L3
	Mem     int64 // stalled on main memory
	Barrier int64
	Lock    int64
}

// Total returns the sum of all categories.
func (b *Breakdown) Total() int64 {
	return b.Busy + b.L2 + b.L3 + b.Mem + b.Barrier + b.Lock
}

func (b *Breakdown) add(o Breakdown) {
	b.Busy += o.Busy
	b.L2 += o.L2
	b.L3 += o.L3
	b.Mem += o.Mem
	b.Barrier += o.Barrier
	b.Lock += o.Lock
}

func (b *Breakdown) sub(o Breakdown) {
	b.Busy -= o.Busy
	b.L2 -= o.L2
	b.L3 -= o.L3
	b.Mem -= o.Mem
	b.Barrier -= o.Barrier
	b.Lock -= o.Lock
}

// Events counts the activity the power model consumes.
type Events struct {
	Instrs        int64
	L1IAccesses   uint64
	L1DReads      uint64
	L1DWrites     uint64
	L1DMisses     uint64
	L2Accesses    uint64
	L2Misses      uint64
	L2Writebacks  uint64
	Xbar          uint64 // crossbar line transfers
	L3Tag         uint64
	L3DataRead    uint64
	L3DataWrite   uint64
	L3Misses      uint64
	RemoteFetches uint64
	Upgrades      uint64

	// Section 3.4 page-locality analysis (DRAM L3s only): hits of
	// the would-be open page per bank under the two mappings of
	// Figure 3.
	L3PageProbes        uint64
	L3PageHitsSetMapped uint64
	L3PageHitsStriped   uint64

	Mem memctl.Stats
}

// Result is the outcome of one simulation run (post-warmup).
type Result struct {
	Cycles int64
	Instrs int64
	IPC    float64

	// AvgReadLatency is the mean load latency in cycles.
	AvgReadLatency float64

	Breakdown Breakdown
	Events    Events

	L1MissRate, L2MissRate, L3MissRate float64
}

const (
	lockHoldCycles    = 180
	barrierCostCycles = 60
)

type thread struct {
	gen  workload.Source
	core int
	time int64
	bd   Breakdown

	pending    workload.Ref
	hasPending bool
	blocked    bool // waiting at barrier
	arriveTime int64
	done       bool

	instrLimit int64

	reads       uint64
	readLatency uint64
}

// engine holds all mutable simulation state.
type engine struct {
	cfg Config

	threads []*thread
	l1d     []*cache.Cache
	l2      []*cache.Cache
	l3      []*cache.Cache // per bank; nil if no L3
	mem     *memctl.Controller

	// directory tracks which cores' L2s hold each line: low 16 bits
	// sharer mask, bit 31 set when exactly one core holds it
	// Modified.
	directory map[uint64]uint32

	portFree   []int64 // per core: 1 memory request per cycle
	l3BankFree []int64

	// Per-bank last-open-page trackers for the Section 3.4 analysis.
	l3LastPageSet     []int64
	l3LastPageStriped []int64

	// barrier state
	arrived  int
	lockFree int64

	ev Events
}

// Run executes the configured simulation and returns post-warmup
// results.
func Run(cfg Config) *Result {
	if cfg.Cores <= 0 || cfg.ThreadsPerCore <= 0 || cfg.InstrBudget <= 0 {
		panic("sim: bad config")
	}
	if cfg.LineBytes == 0 {
		cfg.LineBytes = 64
	}
	e := &engine{cfg: cfg, directory: make(map[uint64]uint32, 1<<18)}
	n := cfg.Cores * cfg.ThreadsPerCore
	if cfg.Sources != nil && len(cfg.Sources) != n {
		panic("sim: Sources length must equal Cores*ThreadsPerCore")
	}
	perThread := cfg.InstrBudget / int64(n)
	for i := 0; i < n; i++ {
		var src workload.Source
		if cfg.Sources != nil {
			src = cfg.Sources[i]
		} else {
			src = workload.NewGenerator(cfg.Workload, i, n, cfg.Seed+0x5EED)
		}
		e.threads = append(e.threads, &thread{
			gen:        src,
			core:       i / cfg.ThreadsPerCore,
			instrLimit: perThread,
		})
	}
	for c := 0; c < cfg.Cores; c++ {
		e.l1d = append(e.l1d, cache.New(cfg.L1Bytes, cfg.L1Ways, cfg.LineBytes))
		e.l2 = append(e.l2, cache.New(cfg.L2Bytes, cfg.L2Ways, cfg.LineBytes))
	}
	if cfg.L3 != nil {
		for b := 0; b < cfg.L3.Banks; b++ {
			e.l3 = append(e.l3, cache.New(cfg.L3.CapacityBytes/int64(cfg.L3.Banks), cfg.L3.Ways, cfg.LineBytes))
		}
		e.l3BankFree = make([]int64, cfg.L3.Banks)
		e.l3LastPageSet = make([]int64, cfg.L3.Banks)
		e.l3LastPageStriped = make([]int64, cfg.L3.Banks)
		for b := range e.l3LastPageSet {
			e.l3LastPageSet[b] = -1
			e.l3LastPageStriped[b] = -1
		}
	}
	e.portFree = make([]int64, cfg.Cores)
	e.mem = memctl.New(cfg.Mem)

	warmInstr := int64(float64(cfg.InstrBudget) * cfg.WarmupFrac)
	var warmEv Events
	var warmBD Breakdown
	var warmReads, warmReadLat uint64
	warmTime := int64(0)
	warmed := warmInstr <= 0

	totalInstr := func() int64 {
		var s int64
		for _, t := range e.threads {
			s += t.gen.Instructions()
		}
		return s
	}

	steps := 0
	for {
		t := e.nextThread()
		if t == nil {
			break
		}
		e.step(t)
		steps++

		if !warmed && steps%256 == 0 && totalInstr() >= warmInstr {
			warmed = true
			warmEv = e.ev
			warmEv.Mem = e.mem.Stats
			for _, th := range e.threads {
				warmBD.add(th.bd)
				warmReads += th.reads
				warmReadLat += th.readLatency
				if th.time > warmTime {
					warmTime = th.time
				}
			}
			warmEv.Instrs = totalInstr()
		}
	}

	r := &Result{}
	var endTime int64
	for _, th := range e.threads {
		r.Breakdown.add(th.bd)
		if th.time > endTime {
			endTime = th.time
		}
	}
	r.Breakdown.sub(warmBD)
	r.Cycles = endTime - warmTime
	e.ev.Mem = e.mem.Stats
	e.ev.Instrs = totalInstr()
	r.Events = subEvents(e.ev, warmEv)
	r.Instrs = r.Events.Instrs
	if r.Cycles > 0 {
		r.IPC = float64(r.Instrs) / float64(r.Cycles)
	}
	var reads, lat uint64
	for _, th := range e.threads {
		reads += th.reads
		lat += th.readLatency
	}
	reads -= warmReads
	lat -= warmReadLat
	if reads > 0 {
		r.AvgReadLatency = float64(lat) / float64(reads)
	}
	if a := r.Events.L1DReads + r.Events.L1DWrites; a > 0 {
		r.L1MissRate = float64(r.Events.L1DMisses) / float64(a)
	}
	if r.Events.L2Accesses > 0 {
		r.L2MissRate = float64(r.Events.L2Misses) / float64(r.Events.L2Accesses)
	}
	if r.Events.L3Tag > 0 {
		r.L3MissRate = float64(r.Events.L3Misses) / float64(r.Events.L3Tag)
	}
	return r
}

func subEvents(a, b Events) Events {
	a.Instrs -= b.Instrs
	a.L1IAccesses -= b.L1IAccesses
	a.L1DReads -= b.L1DReads
	a.L1DWrites -= b.L1DWrites
	a.L1DMisses -= b.L1DMisses
	a.L2Accesses -= b.L2Accesses
	a.L2Misses -= b.L2Misses
	a.L2Writebacks -= b.L2Writebacks
	a.Xbar -= b.Xbar
	a.L3Tag -= b.L3Tag
	a.L3DataRead -= b.L3DataRead
	a.L3DataWrite -= b.L3DataWrite
	a.L3Misses -= b.L3Misses
	a.RemoteFetches -= b.RemoteFetches
	a.Upgrades -= b.Upgrades
	a.L3PageProbes -= b.L3PageProbes
	a.L3PageHitsSetMapped -= b.L3PageHitsSetMapped
	a.L3PageHitsStriped -= b.L3PageHitsStriped
	a.Mem.Reads -= b.Mem.Reads
	a.Mem.Writes -= b.Mem.Writes
	a.Mem.Activates -= b.Mem.Activates
	a.Mem.RowHits -= b.Mem.RowHits
	a.Mem.RowMisses -= b.Mem.RowMisses
	a.Mem.BusBytes -= b.Mem.BusBytes
	a.Mem.TotalReadLatencyCyc -= b.Mem.TotalReadLatencyCyc
	a.Mem.QueueWaitCyc -= b.Mem.QueueWaitCyc
	return a
}

// nextThread picks the runnable thread with the smallest local time.
// When every unfinished thread is blocked at the barrier, it releases
// the barrier.
func (e *engine) nextThread() *thread {
	var best *thread
	active := 0
	blocked := 0
	for _, t := range e.threads {
		if t.done {
			continue
		}
		active++
		if t.blocked {
			blocked++
			continue
		}
		if best == nil || t.time < best.time {
			best = t
		}
	}
	if active == 0 {
		return nil
	}
	if best == nil || blocked == active {
		// Every unfinished thread is waiting: release the barrier
		// (finished threads do not participate).
		e.releaseBarrier()
		return e.nextThread()
	}
	return best
}

// releaseBarrier unblocks all waiting threads at the latest arrival
// time plus the barrier cost, charging each thread its wait.
func (e *engine) releaseBarrier() {
	var maxT int64
	for _, t := range e.threads {
		if t.blocked && t.arriveTime > maxT {
			maxT = t.arriveTime
		}
	}
	release := maxT + barrierCostCycles
	for _, t := range e.threads {
		if t.blocked {
			t.bd.Barrier += release - t.arriveTime
			t.time = release
			t.blocked = false
		}
	}
	e.arrived = 0
}

// step advances one thread by one memory reference.
func (e *engine) step(t *thread) {
	if !t.hasPending {
		if t.gen.Instructions() >= t.instrLimit {
			t.done = true
			return
		}
		t.pending = t.gen.Next()
		t.hasPending = true

		if t.pending.Barrier {
			t.blocked = true
			t.arriveTime = t.time
			e.arrived++
			if e.arrived >= e.activeCount() {
				e.releaseBarrier()
			}
			return
		}
	}
	r := t.pending
	t.hasPending = false

	if r.Lock {
		start := t.time
		if e.lockFree > start {
			t.bd.Lock += e.lockFree - start
			start = e.lockFree
		}
		e.lockFree = start + lockHoldCycles
		t.bd.Busy += lockHoldCycles
		t.time = start + lockHoldCycles
	}

	// Non-memory instructions.
	gap := int64(r.FPGap) + 4*int64(r.OtherGap)
	t.bd.Busy += gap
	t.time += gap
	e.ev.L1IAccesses += uint64(r.FPGap+r.OtherGap+1+3) / 4

	// Memory reference: one request per cycle per core.
	issue := t.time
	if pf := e.portFree[t.core]; pf > issue {
		issue = pf
	}
	e.portFree[t.core] = issue + 1

	done := e.access(t, issue, r.Addr, r.Write)
	if !r.Write {
		t.reads++
		t.readLatency += uint64(done - issue)
	}
	t.time = done
}

func (e *engine) activeCount() int {
	n := 0
	for _, t := range e.threads {
		if !t.done {
			n++
		}
	}
	return n
}

// lineAddr masks a byte address to its line.
func (e *engine) lineAddr(addr uint64) uint64 {
	return addr &^ uint64(e.cfg.LineBytes-1)
}

// access walks the hierarchy for one reference and returns the
// completion time. Stall cycles are attributed to t's breakdown by
// the level that serviced the request.
func (e *engine) access(t *thread, now int64, addr uint64, write bool) int64 {
	line := e.lineAddr(addr)
	core := t.core
	cfg := &e.cfg

	// ---- L1 ----
	if write {
		e.ev.L1DWrites++
	} else {
		e.ev.L1DReads++
	}
	if e.l1d[core].Access(line, write) {
		if write && e.l1d[core].GetState(line) == cache.Modified {
			// Write hit: if the line was Shared in L2 we need an
			// upgrade (invalidate other sharers).
			if e.l2[core].GetState(line) == cache.Shared {
				return e.upgrade(t, now+cfg.L1HitCycles, line)
			}
			e.l2[core].SetState(line, cache.Modified)
		}
		t.bd.Busy += cfg.L1HitCycles
		return now + cfg.L1HitCycles
	}
	e.ev.L1DMisses++

	// ---- L2 ----
	e.ev.L2Accesses++
	if e.l2[core].Access(line, write) {
		if write {
			st := e.l2[core].GetState(line)
			if st == cache.Modified { // Access already upgraded local state
				// If other cores share it, invalidate them.
				if e.sharersOtherThan(line, core) != 0 {
					return e.fillL1AfterUpgrade(t, now, line)
				}
			}
		}
		lat := cfg.L2HitCycles
		t.bd.L2 += lat
		e.fillL1(t, line, write)
		return now + lat
	}
	e.ev.L2Misses++

	// ---- Coherence: another core's L2 may own the line Modified ----
	if owner, isMod := e.modifiedOwner(line, core); isMod {
		lat := 2*e.xbarCycles() + cfg.L2HitCycles + e.tagCycles()
		e.ev.RemoteFetches++
		e.ev.Xbar += 2
		// Owner downgrades to Shared (writes back to L3/memory).
		e.l2[owner].SetState(line, cache.Shared)
		e.l1d[owner].SetState(line, cache.Shared)
		e.setDirty(line, false)
		if e.l3 != nil {
			e.ev.L3DataWrite++
			bank := e.l3Bank(line)
			e.l3[bank].Access(e.l3Local(line), true)
		} else {
			e.mem.Access(line, true, now)
		}
		if write {
			e.invalidateSharers(line, core)
		}
		t.bd.L2 += lat
		e.fillL2(t, now, line, write)
		e.fillL1(t, line, write)
		return now + lat
	}

	// ---- L3 ----
	if e.l3 != nil {
		return e.accessL3(t, now, line, write)
	}

	// ---- No L3: straight to memory ----
	done := e.mem.Access(line, write, now)
	t.bd.Mem += done - now
	e.fillL2(t, now, line, write)
	e.fillL1(t, line, write)
	return done
}

func (e *engine) xbarCycles() int64 {
	if e.cfg.L3 != nil {
		return e.cfg.L3.CrossbarCycles
	}
	return 2
}

func (e *engine) tagCycles() int64 {
	if e.cfg.L3 != nil {
		return e.cfg.L3.TagCycles
	}
	return 0
}

func (e *engine) l3Bank(line uint64) int {
	return int((line / uint64(e.cfg.LineBytes)) % uint64(len(e.l3)))
}

// l3Local strips the bank-select bits from a line address so that a
// bank's sets are indexed by the bank-local line number (without this
// every line of a bank would alias into 1/Banks of its sets).
func (e *engine) l3Local(line uint64) uint64 {
	lb := uint64(e.cfg.LineBytes)
	return line / lb / uint64(len(e.l3)) * lb
}

// l3Global undoes l3Local given the bank.
func (e *engine) l3Global(local uint64, bank int) uint64 {
	lb := uint64(e.cfg.LineBytes)
	return (local/lb*uint64(len(e.l3)) + uint64(bank)) * lb
}

// accessL3 handles the L3 lookup and, on miss, main memory.
func (e *engine) accessL3(t *thread, now int64, line uint64, write bool) int64 {
	cfg := e.cfg.L3
	bank := e.l3Bank(line)

	// Crossbar to the L3 bank, then the tag lookup (TagCycles is 0
	// for normal-mode caches whose DataCycles already covers the
	// overlapped tag+data access).
	at := now + cfg.CrossbarCycles
	if bf := e.l3BankFree[bank]; bf > at {
		at = bf
	}
	e.ev.Xbar++
	e.ev.L3Tag++
	e.l3BankFree[bank] = at + cfg.BankBusyCycles

	local := e.l3Local(line)
	e.trackL3Page(bank, local)
	if e.l3[bank].Access(local, false) {
		// L3 hit: sequential data access, crossbar back.
		e.ev.L3DataRead++
		done := at + cfg.TagCycles + cfg.DataCycles + cfg.CrossbarCycles
		e.ev.Xbar++
		t.bd.L3 += done - now
		e.fillL2(t, now, line, write)
		e.fillL1(t, line, write)
		if write {
			e.l3[bank].SetState(local, cache.Modified)
		}
		return done
	}
	e.ev.L3Misses++

	// L3 miss: memory access begins after the tag lookup.
	memStart := at + cfg.TagCycles
	done := e.mem.Access(line, write, memStart)
	// Fill L3 (data write), possibly evicting.
	e.ev.L3DataWrite++
	st := cache.Exclusive
	if write {
		st = cache.Modified
	}
	victim := e.l3[bank].Insert(local, st)
	if victim.Valid && victim.State == cache.Modified {
		// Non-inclusive LLC: evicted dirty lines go to memory; clean
		// victims are dropped (core caches keep their copies,
		// coherence is tracked by the directory independently). The
		// writeback is issued at the request time, never in the
		// future, so it cannot inflate resource clocks seen by
		// presently-issued reads.
		e.mem.Access(e.l3Global(victim.Addr, bank), true, memStart)
	}
	// Data return over the crossbar.
	done += cfg.CrossbarCycles
	e.ev.Xbar++
	t.bd.Mem += done - now
	e.fillL2(t, now, line, write)
	e.fillL1(t, line, write)
	return done
}

// trackL3Page implements the Section 3.4 page-locality analysis: for
// a DRAM L3, compute which internal DRAM page this access would open
// under the two cache-set mappings of Figure 3 and record whether it
// matches the bank's previously open page.
func (e *engine) trackL3Page(bank int, local uint64) {
	cfg := e.cfg.L3
	if cfg.PageBits <= 0 {
		return
	}
	e.ev.L3PageProbes++
	lineBits := int64(e.cfg.LineBytes) * 8
	linesPerPage := cfg.PageBits / lineBits
	if linesPerPage < 1 {
		linesPerPage = 1
	}
	bankLines := cfg.CapacityBytes / int64(cfg.Banks) / int64(e.cfg.LineBytes)
	sets := bankLines / int64(cfg.Ways)
	lineIdx := int64(local) / int64(e.cfg.LineBytes)
	set := lineIdx % sets
	way := e.l3[bank].WayOf(local)
	if way < 0 {
		way = 0 // miss: the fill way; approximate with 0
	}

	// Mapping (a): a cache set maps to a page — consecutive sets'
	// full way-groups fill consecutive pages.
	setsPerPage := linesPerPage / int64(cfg.Ways)
	if setsPerPage < 1 {
		setsPerPage = 1
	}
	pageA := set / setsPerPage
	if e.l3LastPageSet[bank] == pageA {
		e.ev.L3PageHitsSetMapped++
	}
	e.l3LastPageSet[bank] = pageA

	// Mapping (b): sets striped across pages — a page holds the same
	// way of linesPerPage sequential sets.
	pageB := int64(way)*((sets+linesPerPage-1)/linesPerPage) + set/linesPerPage
	if e.l3LastPageStriped[bank] == pageB {
		e.ev.L3PageHitsStriped++
	}
	e.l3LastPageStriped[bank] = pageB
}

// fillL1 inserts the line into the requesting core's L1.
func (e *engine) fillL1(t *thread, line uint64, write bool) {
	st := cache.Shared
	if write {
		st = cache.Modified
	}
	e.l1d[t.core].Insert(line, st)
	// L1 victims are clean or their dirtiness is absorbed by the
	// inclusive L2 (write-through of dirty L1 victims into L2 is
	// modeled as free: the L2 line is already allocated).
}

// fillL2 inserts the line into the requesting core's L2, handling the
// victim writeback and directory maintenance.
func (e *engine) fillL2(t *thread, now int64, line uint64, write bool) {
	st := cache.Exclusive
	if write {
		st = cache.Modified
	}
	if e.sharersOtherThan(line, t.core) != 0 {
		st = cache.Shared
		if write {
			st = cache.Modified
			e.invalidateSharers(line, t.core)
		}
	}
	victim := e.l2[t.core].Insert(line, st)
	e.addSharer(line, t.core, st == cache.Modified)
	if victim.Valid {
		e.removeSharer(victim.Addr, t.core)
		e.l1d[t.core].Invalidate(victim.Addr) // inclusion
		if victim.State == cache.Modified {
			e.ev.L2Writebacks++
			if e.l3 != nil {
				// Write back into the L3 (allocating on writeback,
				// like a victim path), evicting if needed.
				bank := e.l3Bank(victim.Addr)
				local := e.l3Local(victim.Addr)
				e.ev.L3DataWrite++
				e.ev.Xbar++
				if !e.l3[bank].Access(local, true) {
					v := e.l3[bank].Insert(local, cache.Modified)
					if v.Valid && v.State == cache.Modified {
						e.mem.Access(e.l3Global(v.Addr, bank), true, now)
					}
				}
			} else {
				e.mem.Access(victim.Addr, true, now)
			}
		}
	}
}

// upgrade invalidates other sharers on a write to a Shared line.
func (e *engine) upgrade(t *thread, now int64, line uint64) int64 {
	e.ev.Upgrades++
	e.ev.Xbar++
	lat := 2 * e.xbarCycles()
	e.invalidateSharers(line, t.core)
	e.l2[t.core].SetState(line, cache.Modified)
	e.setDirty(line, true)
	e.setDirtyOwner(line, t.core)
	t.bd.L2 += lat
	return now + lat
}

func (e *engine) fillL1AfterUpgrade(t *thread, now int64, line uint64) int64 {
	done := e.upgrade(t, now+e.cfg.L2HitCycles, line)
	t.bd.L2 += e.cfg.L2HitCycles
	e.fillL1(t, line, true)
	return done
}

// ---- directory helpers ----

const dirtyBit = uint32(1) << 31

func (e *engine) addSharer(line uint64, core int, dirty bool) {
	v := e.directory[line]
	v |= 1 << uint(core)
	if dirty {
		v |= dirtyBit
		v = (v &^ (0xff << 16)) | uint32(core)<<16
	}
	e.directory[line] = v
}

func (e *engine) removeSharer(line uint64, core int) {
	v := e.directory[line]
	v &^= 1 << uint(core)
	if v&0xffff == 0 {
		delete(e.directory, line)
		return
	}
	e.directory[line] = v
}

func (e *engine) sharersOtherThan(line uint64, core int) uint32 {
	return e.directory[line] & 0xffff &^ (1 << uint(core))
}

func (e *engine) modifiedOwner(line uint64, requester int) (int, bool) {
	v := e.directory[line]
	if v&dirtyBit == 0 {
		return 0, false
	}
	owner := int(v >> 16 & 0xff)
	if owner == requester {
		return 0, false
	}
	if v&(1<<uint(owner)) == 0 {
		return 0, false
	}
	return owner, true
}

func (e *engine) setDirty(line uint64, dirty bool) {
	v, ok := e.directory[line]
	if !ok {
		return
	}
	if dirty {
		v |= dirtyBit
	} else {
		v &^= dirtyBit
	}
	e.directory[line] = v
}

func (e *engine) setDirtyOwner(line uint64, core int) {
	v, ok := e.directory[line]
	if !ok {
		return
	}
	v = (v &^ (0xff << 16)) | uint32(core)<<16
	e.directory[line] = v
}

// invalidateSharers removes the line from all other cores' caches.
func (e *engine) invalidateSharers(line uint64, except int) {
	mask := e.sharersOtherThan(line, except)
	for c := 0; mask != 0; c++ {
		if mask&1 != 0 {
			if e.l2[c].Invalidate(line) == cache.Modified && e.l3 != nil {
				e.ev.L3DataWrite++
				e.l3[e.l3Bank(line)].Access(e.l3Local(line), true)
			}
			e.l1d[c].Invalidate(line)
			e.removeSharer(line, c)
		}
		mask >>= 1
	}
	if v, ok := e.directory[line]; ok {
		e.directory[line] = v & (dirtyBit | 0xffff | 0xff<<16)
	}
}
