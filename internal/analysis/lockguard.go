package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// LockGuard checks `// guarded by <mu>` field annotations: every
// access to an annotated struct field must happen in a function that
// has already locked the named mutex of the same base expression
// (x.mu.Lock() / x.mu.RLock() textually before the access, or
// x.Lock() when the mutex is an embedded sync.Mutex/RWMutex).
//
// The check is deliberately flow-insensitive — a function either
// takes the right lock before the access or it does not — which is
// exactly the discipline the memoized tech tables and the explore
// result cache rely on. Construction-time accesses that precede
// sharing (make(map...) in a constructor) are the intended use of a
// //lint:ignore suppression: the reason documents the publication
// argument.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc:  "struct fields annotated `// guarded by <mu>` must only be accessed with that mutex held",
	Run:  runLockGuard,
}

var guardedByRE = regexp.MustCompile(`guarded by (\w+)`)

// guardInfo is one annotated field.
type guardInfo struct {
	mu       string // sibling mutex field name
	embedded bool   // mu is an embedded sync.Mutex/RWMutex (promoted Lock)
}

func runLockGuard(pass *Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGuardedAccesses(pass, guards, fd.Body)
		}
	}
	return nil
}

// collectGuards finds every `// guarded by <mu>` annotation on a
// struct field and validates that the named mutex is a sibling field.
func collectGuards(pass *Pass) map[types.Object]guardInfo {
	guards := map[types.Object]guardInfo{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				mu := annotation(field)
				if mu == "" {
					continue
				}
				sibling, embedded, found := findMutexField(pass, st, mu)
				if !found {
					pass.Report(field.Pos(), "guarded by %s: no such sibling field", mu)
					continue
				}
				_ = sibling
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guards[obj] = guardInfo{mu: mu, embedded: embedded}
					}
				}
			}
			return true
		})
	}
	return guards
}

// annotation extracts the mutex name from the field's doc or trailing
// comment.
func annotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// findMutexField locates the named sibling field and reports whether
// it is an embedded sync.Mutex/RWMutex.
func findMutexField(pass *Pass, st *ast.StructType, mu string) (*ast.Field, bool, bool) {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if name.Name == mu {
				return field, false, true
			}
		}
		if len(field.Names) == 0 {
			// Embedded: the implicit name is the type's base name.
			t := pass.TypesInfo.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Name() == mu {
				sync := isSyncLocker(named)
				return field, sync, true
			}
		}
	}
	return nil, false, false
}

func isSyncLocker(named *types.Named) bool {
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// checkGuardedAccesses reports selector accesses to guarded fields
// not preceded (textually, within the same function body) by a lock
// of the matching mutex on the same base expression.
func checkGuardedAccesses(pass *Pass, guards map[types.Object]guardInfo, body *ast.BlockStmt) {
	// lockCalls: printed receiver expression -> earliest Lock position.
	type lockCall struct {
		recv string
		pos  int
	}
	var locks []lockCall
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
			return true
		}
		locks = append(locks, lockCall{recv: types.ExprString(sel.X), pos: int(call.Pos())})
		return true
	})

	lockedBefore := func(recv string, pos int) bool {
		for _, l := range locks {
			if l.recv == recv && l.pos < pos {
				return true
			}
		}
		return false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.ObjectOf(sel.Sel)
		g, guarded := guards[obj]
		if !guarded {
			return true
		}
		base := types.ExprString(sel.X)
		ok = lockedBefore(base+"."+g.mu, int(sel.Pos()))
		if !ok && g.embedded {
			ok = lockedBefore(base, int(sel.Pos()))
		}
		if !ok {
			pass.Report(sel.Pos(), "%s is accessed without %s held (annotation: guarded by %s)",
				types.ExprString(sel), lockName(base, g), g.mu)
		}
		return true
	})
}

func lockName(base string, g guardInfo) string {
	if g.embedded {
		return base + ".Lock()"
	}
	return strings.Join([]string{base, g.mu}, ".") + ".Lock()"
}
