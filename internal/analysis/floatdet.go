package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatDet flags nondeterminism hazards on floating-point result
// paths. The solver's outputs (and the byte-identical guarantee of the
// parallel enumeration) depend on every float being computed by the
// exact same sequence of operations on every run:
//
//  1. accumulating into (or formatting) floats while ranging over a
//     map — iteration order is randomized, and float addition is not
//     associative, so the sum (or the emitted text) differs run to
//     run; collect the keys, sort them, then iterate;
//  2. math.FMA — a fused multiply-add rounds once where a*b+c rounds
//     twice, so mixing the two forms across refactored helper
//     boundaries silently changes results;
//  3. ==/!= on a freshly computed float expression — exact equality
//     of computed floats depends on expression grouping, which is
//     precisely what refactors change.
var FloatDet = &Analyzer{
	Name: "floatdet",
	Doc:  "flags nondeterminism hazards on float result paths (map-order accumulation, math.FMA, exact equality of computed floats)",
	Run:  runFloatDet,
}

func runFloatDet(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if isMapType(pass.TypesInfo.TypeOf(n.X)) {
					checkMapRangeBody(pass, n)
				}
			case *ast.CallExpr:
				if isMathFMA(pass.TypesInfo, n) {
					pass.Report(n.Pos(), "math.FMA rounds once where a*b+c rounds twice; it changes results across refactors of the same expression")
				}
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					checkFloatEquality(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// checkMapRangeBody reports order-sensitive float operations inside a
// range-over-map body: compound accumulation into a variable declared
// outside the loop, appends of floats to an outer slice, and
// fmt-family formatting of float values.
func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// Descend into nested slice/array ranges (their bodies
			// still run in map order), but not nested map ranges:
			// those get their own visit from runFloatDet.
			return n == rng || !isMapType(pass.TypesInfo.TypeOf(n.X))
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range n.Lhs {
					if isFloat(pass.TypesInfo.TypeOf(lhs)) && declaredOutside(pass, lhs, rng) {
						pass.Report(n.Pos(), "float accumulation in map iteration order is nondeterministic; sort the keys first")
						return false
					}
				}
			case token.ASSIGN:
				// x = x + v (or x = v + x) forms.
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) || !isFloat(pass.TypesInfo.TypeOf(lhs)) || !declaredOutside(pass, lhs, rng) {
						continue
					}
					if bin, ok := n.Rhs[i].(*ast.BinaryExpr); ok &&
						(bin.Op == token.ADD || bin.Op == token.MUL) &&
						(types.ExprString(bin.X) == types.ExprString(lhs) || types.ExprString(bin.Y) == types.ExprString(lhs)) {
						pass.Report(n.Pos(), "float accumulation in map iteration order is nondeterministic; sort the keys first")
						return false
					}
				}
			}
		case *ast.CallExpr:
			if name, ok := calleeName(pass.TypesInfo, n); ok {
				if name == "append" {
					for _, arg := range n.Args[1:] {
						if isFloat(pass.TypesInfo.TypeOf(arg)) {
							pass.Report(n.Pos(), "appending floats in map iteration order is nondeterministic; sort the keys first")
							return false
						}
					}
				}
				if isFmtFormatter(name) {
					for _, arg := range n.Args {
						if isFloat(pass.TypesInfo.TypeOf(arg)) {
							pass.Report(n.Pos(), "formatting floats in map iteration order emits nondeterministic output; sort the keys first")
							return false
						}
					}
				}
			}
		}
		return true
	})
}

// declaredOutside reports whether the root identifier of expr is
// declared outside the range statement (so mutations survive the
// loop and the final value depends on iteration order).
func declaredOutside(pass *Pass, expr ast.Expr, rng *ast.RangeStmt) bool {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.ObjectOf(e)
			if obj == nil {
				return false
			}
			return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return false
		}
	}
}

// calleeName resolves a call to "pkg.Func", a builtin name, or a
// method name; ok is false for indirect calls.
func calleeName(info *types.Info, call *ast.CallExpr) (string, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj := info.ObjectOf(fun); obj != nil {
			if b, ok := obj.(*types.Builtin); ok {
				return b.Name(), true
			}
			if f, ok := obj.(*types.Func); ok {
				return qualifiedName(f), true
			}
		}
	case *ast.SelectorExpr:
		if f, ok := info.ObjectOf(fun.Sel).(*types.Func); ok {
			return qualifiedName(f), true
		}
	}
	return "", false
}

func qualifiedName(f *types.Func) string {
	if pkg := f.Pkg(); pkg != nil && f.Type().(*types.Signature).Recv() == nil {
		return pkg.Path() + "." + f.Name()
	}
	return f.Name()
}

func isMathFMA(info *types.Info, call *ast.CallExpr) bool {
	name, ok := calleeName(info, call)
	return ok && name == "math.FMA"
}

// fmtFormatters are the fmt functions whose output lands on a result
// path (string building or writers).
var fmtFormatters = map[string]bool{
	"fmt.Sprintf": true, "fmt.Sprint": true, "fmt.Sprintln": true,
	"fmt.Fprintf": true, "fmt.Fprint": true, "fmt.Fprintln": true,
	"fmt.Printf": true, "fmt.Print": true, "fmt.Println": true,
	"fmt.Appendf": true, "fmt.Append": true, "fmt.Appendln": true,
}

func isFmtFormatter(name string) bool { return fmtFormatters[name] }

// checkFloatEquality flags ==/!= where an operand is itself float
// arithmetic: exact equality of a computed float depends on the
// expression's grouping.
func checkFloatEquality(pass *Pass, bin *ast.BinaryExpr) {
	if !isFloat(pass.TypesInfo.TypeOf(bin.X)) || !isFloat(pass.TypesInfo.TypeOf(bin.Y)) {
		return
	}
	if isFloatArithmetic(pass, bin.X) || isFloatArithmetic(pass, bin.Y) {
		pass.Report(bin.Pos(), "exact %s on a computed float depends on expression grouping; compare stored values or use a tolerance", bin.Op)
	}
}

func isFloatArithmetic(pass *Pass, expr ast.Expr) bool {
	b, ok := ast.Unparen(expr).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	// Constant-folded arithmetic (2 * math.Pi) is evaluated exactly
	// at compile time and is deterministic.
	if tv, found := pass.TypesInfo.Types[ast.Unparen(expr)]; found && tv.Value != nil {
		return false
	}
	switch b.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO:
		return isFloat(pass.TypesInfo.TypeOf(expr))
	}
	return false
}
