// Package analysis is a small, dependency-free analogue of
// golang.org/x/tools/go/analysis: it defines the Analyzer/Pass/
// Diagnostic vocabulary, a package loader built on `go list -export`
// plus the standard library's gc export-data importer, and the
// suppression convention used across the repository.
//
// The suite exists to mechanically enforce invariants the model's
// correctness (and PR 2's byte-identical parallel hot path) depends
// on:
//
//   - floatdet: no nondeterminism on float result paths (map-order
//     accumulation, math.FMA, exact equality of computed floats);
//   - ctxflow:  context.Context parameters are propagated, not
//     shadowed by new root contexts, and worker loops observe
//     cancellation;
//   - lockguard: struct fields annotated `// guarded by <mu>` are
//     only touched with that mutex held;
//   - unitname: identifiers carrying unit suffixes (Ns, NJ, MM2,
//     Ohm, ...) are never assigned or compared across mismatched
//     units or scales.
//
// Deliberate exceptions are written as
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or the line directly above it. The reason is
// mandatory; a bare suppression is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. Exactly one of Run (package-level)
// and RunProgram (interprocedural/whole-program) is set.
type Analyzer struct {
	// Name is the identifier used on the command line and in
	// //lint:ignore suppressions.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run reports diagnostics for one package through pass.Report.
	Run func(pass *Pass) error
	// RunProgram reports diagnostics over the whole program (all
	// loaded packages, shared FileSet, call graph) through
	// pass.Report. Program-level analyzers see every package at once:
	// detpure walks call-graph reachability across package
	// boundaries, wirecompat closes over serialized types wherever
	// they are declared, chaoscover cross-references test files
	// against another package's constants.
	RunProgram func(pass *ProgramPass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Report records a diagnostic.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ProgramPass carries one program-level analyzer's view of the whole
// loaded program.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program

	diags *[]Diagnostic
}

// Report records a diagnostic.
func (p *ProgramPass) Report(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Position: p.Prog.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Position token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Position, d.Analyzer, d.Message)
}

// ignorePrefix introduces a suppression comment.
const ignorePrefix = "//lint:ignore"

// suppression is one parsed //lint:ignore comment.
type suppression struct {
	analyzer string
	reason   string
	file     string
	line     int
	pos      token.Pos
	used     bool
}

// RunPackage applies every analyzer to pkg and returns the surviving
// diagnostics sorted by position: suppressed findings are dropped,
// malformed or unused suppressions are reported as findings of the
// pseudo-analyzer "lint".
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.ImportPath, a.Name, err)
		}
	}
	sups, bad := collectSuppressions(pkg.Fset, pkg.Files)
	return finish(pkg.Fset, diags, sups, bad, analyzers), nil
}

// RunProgram applies the full analyzer set — package-level analyzers
// per package, program-level analyzers once over the whole program —
// and returns the surviving diagnostics sorted by position.
// Suppressions are collected program-wide (source and test files), so
// a //lint:ignore next to a finding works identically for both
// analyzer kinds, and unused suppressions are judged against every
// analyzer that actually ran.
func RunProgram(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		switch {
		case a.RunProgram != nil:
			pass := &ProgramPass{Analyzer: a, Prog: prog, diags: &diags}
			if err := a.RunProgram(pass); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
		case a.Run != nil:
			for _, pkg := range prog.Pkgs {
				pass := &Pass{
					Analyzer:  a,
					Fset:      pkg.Fset,
					Files:     pkg.Files,
					Pkg:       pkg.Types,
					TypesInfo: pkg.Info,
					diags:     &diags,
				}
				if err := a.Run(pass); err != nil {
					return nil, fmt.Errorf("%s: %s: %w", pkg.ImportPath, a.Name, err)
				}
			}
		}
	}
	var sups []*suppression
	var bad []Diagnostic
	for _, pkg := range prog.Pkgs {
		files := append(append([]*ast.File{}, pkg.Files...), pkg.TestFiles...)
		s, b := collectSuppressions(pkg.Fset, files)
		sups = append(sups, s...)
		bad = append(bad, b...)
	}
	return finish(prog.Fset, diags, sups, bad, analyzers), nil
}

// finish applies suppressions to diags, reports malformed and unused
// ones, and sorts. A suppression counts as unused only when its
// analyzer actually ran (or is "all"): running a subset — cactid-lint
// -run, make lint-new — must not flag the other analyzers'
// legitimate suppressions.
func finish(fset *token.FileSet, diags []Diagnostic, sups []*suppression, bad []Diagnostic, analyzers []*Analyzer) []Diagnostic {
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	kept := diags[:0]
	for _, d := range diags {
		if !suppress(sups, d) {
			kept = append(kept, d)
		}
	}
	diags = kept
	diags = append(diags, bad...)
	for _, s := range sups {
		if !s.used && (ran[s.analyzer] || s.analyzer == "all") {
			diags = append(diags, Diagnostic{
				Analyzer: "lint",
				Pos:      s.pos,
				Position: fset.Position(s.pos),
				Message:  fmt.Sprintf("//lint:ignore %s suppresses nothing on this or the next line", s.analyzer),
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// collectSuppressions parses every //lint:ignore comment, returning
// the well-formed suppressions and a diagnostic per malformed one.
func collectSuppressions(fset *token.FileSet, files []*ast.File) ([]*suppression, []Diagnostic) {
	var sups []*suppression
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				name, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				if name == "" || reason == "" {
					bad = append(bad, Diagnostic{
						Analyzer: "lint",
						Pos:      c.Pos(),
						Position: fset.Position(c.Pos()),
						Message:  "malformed suppression: want //lint:ignore <analyzer> <reason>",
					})
					continue
				}
				p := fset.Position(c.Pos())
				sups = append(sups, &suppression{
					analyzer: name,
					reason:   reason,
					file:     p.Filename,
					line:     p.Line,
					pos:      c.Pos(),
				})
			}
		}
	}
	return sups, bad
}

// suppress reports whether d is covered by a suppression: same
// analyzer (or "all"), same file, and the diagnostic sits on the
// suppression's line or the one after it.
func suppress(sups []*suppression, d Diagnostic) bool {
	for _, s := range sups {
		if s.analyzer != d.Analyzer && s.analyzer != "all" {
			continue
		}
		if s.file != d.Position.Filename {
			continue
		}
		if d.Position.Line == s.line || d.Position.Line == s.line+1 {
			s.used = true
			return true
		}
	}
	return false
}

// All returns the full analyzer suite in stable order: the PR-4
// per-function checks first, then the interprocedural/program-level
// suite guarding the distributed surface.
func All() []*Analyzer {
	return []*Analyzer{FloatDet, CtxFlow, LockGuard, UnitName,
		DetPure, WireCompat, AtomicMix, HTTPClose, ChaosCover}
}

// NewSuite returns only the analyzers added for the distributed
// surface (PR 9) — the set `make lint-new` iterates on.
func NewSuite() []*Analyzer {
	return []*Analyzer{DetPure, WireCompat, AtomicMix, HTTPClose, ChaosCover}
}
