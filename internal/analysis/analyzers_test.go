package analysis

import "testing"

func TestFloatDet(t *testing.T)  { runFixture(t, FloatDet, "floatdet.go") }
func TestCtxFlow(t *testing.T)   { runFixture(t, CtxFlow, "ctxflow.go") }
func TestLockGuard(t *testing.T) { runFixture(t, LockGuard, "lockguard.go") }
func TestUnitName(t *testing.T)  { runFixture(t, UnitName, "unitname.go") }

func TestAllRegistered(t *testing.T) {
	all := All()
	if len(all) != 4 {
		t.Fatalf("expected 4 analyzers, got %d", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %s", a.Name)
		}
		seen[a.Name] = true
	}
}
