package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestFloatDet(t *testing.T)  { runFixture(t, FloatDet, "floatdet.go") }
func TestCtxFlow(t *testing.T)   { runFixture(t, CtxFlow, "ctxflow.go") }
func TestLockGuard(t *testing.T) { runFixture(t, LockGuard, "lockguard.go") }
func TestUnitName(t *testing.T)  { runFixture(t, UnitName, "unitname.go") }
func TestHTTPClose(t *testing.T) { runFixture(t, HTTPClose, "httpclose.go") }

func TestDetPure(t *testing.T)    { runProgramFixture(t, DetPure, "detpure") }
func TestAtomicMix(t *testing.T)  { runProgramFixture(t, AtomicMix, "atomicmix") }
func TestChaosCover(t *testing.T) { runProgramFixture(t, ChaosCover, "chaoscover") }
func TestWireCompatDrift(t *testing.T) {
	runProgramFixture(t, WireCompat, "wirecompat_drift")
}

// TestWireCompatRoundTrip proves the digest lifecycle: a golden
// written by WriteWireDigests (the -fix-digests implementation) makes
// the analyzer come back clean on the same program.
func TestWireCompatRoundTrip(t *testing.T) {
	prog := loadFixtureProgram(t, "wirecompat_ok")
	prog.WireDigestFile = filepath.Join(t.TempDir(), "wiredigest.json")
	if _, err := WriteWireDigests(prog); err != nil {
		t.Fatal(err)
	}
	diags, err := RunProgram(prog, []*Analyzer{WireCompat})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic after round trip: %s", d)
	}
}

// TestWireCompatMissingGolden: with no golden on disk the analyzer
// points at -fix-digests instead of guessing.
func TestWireCompatMissingGolden(t *testing.T) {
	prog := loadFixtureProgram(t, "wirecompat_ok")
	prog.WireDigestFile = filepath.Join(t.TempDir(), "absent.json")
	diags, err := RunProgram(prog, []*Analyzer{WireCompat})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "unreadable") {
		t.Fatalf("want exactly one 'unreadable' finding, got %v", diags)
	}
}

func TestAllRegistered(t *testing.T) {
	all := All()
	if len(all) != 9 {
		t.Fatalf("expected 9 analyzers, got %d", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if (a.Run == nil) == (a.RunProgram == nil) {
			t.Errorf("analyzer %s must set exactly one of Run and RunProgram", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %s", a.Name)
		}
		seen[a.Name] = true
	}
	for _, a := range NewSuite() {
		if !seen[a.Name] {
			t.Errorf("NewSuite analyzer %s missing from All()", a.Name)
		}
	}
	if len(NewSuite()) != 5 {
		t.Errorf("expected 5 analyzers in NewSuite, got %d", len(NewSuite()))
	}
}
