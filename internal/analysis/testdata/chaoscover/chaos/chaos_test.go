package chaos

import "testing"

// TestArmed arms exactly one point; the other declared points stay
// uncovered on purpose.
func TestArmed(t *testing.T) {
	if Armed == "" {
		t.Fatal("empty point")
	}
}
