// Package chaos mirrors the real injection-point catalog: chaoscover
// must see which Point constants the test files arm.
package chaos

// Point identifies one injection site.
type Point string

const (
	Armed   Point = "explore.worker"
	Unarmed Point = "fabric.dispatch" // want "chaos point Unarmed is not armed by any test"
	//lint:ignore chaoscover fixture: armed by an external harness the loader cannot see
	External Point = "external.probe"
)

// NotAPoint is a plain string constant: same package, different type,
// never a finding.
const NotAPoint = "not.a.point"
