// Package store exercises every wirecompat drift finding against the
// deliberately stale golden file checked in next to this fixture.
package store // want "pinned wire/store type fixture/wirecompat_drift/store.Ghost no longer exists"

// solutionRecord is seeded by the built-in registry (package name
// "store"); the golden entry for it records one field, so the shape
// below is drift.
type solutionRecord struct { // want "changed shape"
	ModelVersion int       `json:"model_version"`
	Spec         *specData `json:"spec,omitempty"`
}

// specData joins the boundary set through solutionRecord's field
// closure; the golden file does not pin it.
type specData struct { // want "is not pinned"
	Banks int `json:"banks"`
}

//wire:boundary
type extraWire struct { // want "is not pinned"
	N int `json:"n"`
}

//wire:boundary
type legacyRecord struct { //lint:ignore wirecompat fixture: unpinned by design, the suppressed case
	Old string `json:"old"`
}

// plain is neither registered nor marked: never fingerprinted.
type plain struct {
	X int
}
