// Fixture for httpclose: unclosed response bodies, escaping
// responses (assumed closed elsewhere), and dropped CancelFuncs.
package fixture

import (
	"context"
	"io"
	"net/http"
)

func leak(c *http.Client, req *http.Request) (int, error) {
	resp, err := c.Do(req) // want "never closed"
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}

func closed(c *http.Client, req *http.Request) ([]byte, error) {
	resp, err := c.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

func escapesVar(c *http.Client, req *http.Request) (*http.Response, error) {
	resp, err := c.Do(req)
	return resp, err
}

func handedOff(c *http.Client, req *http.Request, sink func(*http.Response)) error {
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	sink(resp)
	return nil
}

func inClosure(c *http.Client, req *http.Request) func() error {
	return func() error {
		resp, err := c.Do(req) // want "never closed"
		if err != nil {
			return err
		}
		_ = resp.Status
		return nil
	}
}

func dropsCancel(ctx context.Context) context.Context {
	ctx2, _ := context.WithCancel(ctx) // want "CancelFunc discarded"
	return ctx2
}

func keepsCancel(ctx context.Context) {
	ctx2, cancel := context.WithCancel(ctx)
	defer cancel()
	_ = ctx2
}

func suppressedDrop(ctx context.Context) context.Context {
	//lint:ignore httpclose fixture: cancellation owned by the caller's context tree
	ctx2, _ := context.WithCancel(ctx)
	return ctx2
}
