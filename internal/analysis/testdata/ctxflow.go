// Fixture for the ctxflow analyzer.
package fixture

import "context"

func solve(ctx context.Context, n int) error { return ctx.Err() }

// unusedCtx takes a context and drops it on the floor.
func unusedCtx(ctx context.Context, n int) int { // want "parameter ctx is never used"
	return n * 2
}

// blankCtx is the honest spelling of "I ignore cancellation".
func blankCtx(_ context.Context, n int) int {
	return n * 2
}

// newRoot forks a fresh root instead of propagating.
func newRoot(ctx context.Context) error {
	_ = ctx
	return solve(context.Background(), 1) // want "context.Background inside a function that already has a context"
}

func newTODO(ctx context.Context) error {
	_ = ctx
	return solve(context.TODO(), 1) // want "context.TODO inside a function that already has a context"
}

// propagated is the correct form.
func propagated(ctx context.Context) error {
	return solve(ctx, 1)
}

// A function with no context may start a root: that is what roots
// are for.
func entryPoint() error {
	return solve(context.Background(), 1)
}

// spinningWorker launches a worker whose infinite loop never looks
// at the context.
func spinningWorker(ctx context.Context, jobs chan int) {
	go func() {
		for { // want "infinite worker loop never observes the in-scope context"
			select {
			case j := <-jobs:
				_ = j
			}
		}
	}()
	<-ctx.Done()
}

// pollingWorker checks ctx.Err each round: fine.
func pollingWorker(ctx context.Context, jobs chan int) {
	go func() {
		for {
			if ctx.Err() != nil {
				return
			}
			<-jobs
		}
	}()
}

// selectingWorker selects on Done: fine.
func selectingWorker(ctx context.Context, jobs chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case j := <-jobs:
				_ = j
			}
		}
	}()
}

// rangeWorker drains a channel the producer closes on cancellation;
// the loop is bounded by the channel, not the context.
func rangeWorker(ctx context.Context, jobs chan int) {
	go func() {
		for range jobs {
		}
	}()
	<-ctx.Done()
	close(jobs)
}

// workerOwnCtx receives its own context parameter.
func workerOwnCtx(ctx context.Context, jobs chan int) {
	go func(ctx context.Context) {
		for {
			if ctx.Err() != nil {
				return
			}
			<-jobs
		}
	}(ctx)
}

// compute is the Background-calling compatibility wrapper for
// computeContext.
func compute(n int) int { return computeContext(context.Background(), n) }

func computeContext(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return n
}

// lostContext has a context in scope but calls the wrapper, severing
// cancellation at this frame.
func lostContext(ctx context.Context, n int) int {
	_ = ctx.Err()
	return compute(n) // want "call computeContext and propagate ctx"
}

// keptContext calls the Context variant: fine.
func keptContext(ctx context.Context, n int) int {
	return computeContext(ctx, n)
}

// suppressedRoot documents why a fresh root is correct here.
func suppressedRoot(ctx context.Context) error {
	_ = ctx.Err()
	//lint:ignore ctxflow detached audit write must survive request cancellation
	return solve(context.Background(), 1)
}
