// Fixture for the lockguard analyzer.
package fixture

import "sync"

type store struct {
	mu sync.Mutex
	// guarded by mu
	m map[string]int

	plain int // unannotated: free access
}

func (s *store) get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[k]
}

func (s *store) put(k string, v int) {
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}

func (s *store) racyGet(k string) int {
	return s.m[k] // want "s.m is accessed without s.mu.Lock"
}

func (s *store) racyLen() int {
	n := len(s.m) // want "s.m is accessed without s.mu.Lock"
	return n + s.plain
}

// lockAfter takes the lock only after touching the field: the
// textual-order approximation must still catch it.
func (s *store) lockAfter(k string) int {
	v := s.m[k] // want "s.m is accessed without s.mu.Lock"
	s.mu.Lock()
	defer s.mu.Unlock()
	return v
}

// newStore initializes before the value is shared; the suppression
// documents the publication argument.
func newStore() *store {
	s := &store{}
	//lint:ignore lockguard s is not yet shared, constructor runs single-threaded
	s.m = map[string]int{}
	return s
}

// rwStore embeds the mutex: promoted Lock/RLock calls count.
type rwStore struct {
	sync.RWMutex
	// guarded by RWMutex
	vals []float64
}

func (r *rwStore) read(i int) float64 {
	r.RLock()
	defer r.RUnlock()
	return r.vals[i]
}

func (r *rwStore) racyRead(i int) float64 {
	return r.vals[i] // want "r.vals is accessed without r.Lock"
}

// sharded mirrors the explore result cache shape: the lock and the
// access share an indexed base expression.
type shard struct {
	mu sync.Mutex
	// guarded by mu
	n int
}

type sharded struct {
	shards [4]shard
}

func (s *sharded) total() int {
	t := 0
	for i := range s.shards {
		s.shards[i].mu.Lock()
		t += s.shards[i].n
		s.shards[i].mu.Unlock()
	}
	return t
}

func (s *sharded) racyTotal() int {
	t := 0
	for i := range s.shards {
		t += s.shards[i].n // want "s.shards[i].n is accessed without s.shards[i].mu.Lock"
	}
	return t
}

// badAnnotation names a mutex that does not exist.
type badAnnotation struct {
	// guarded by mux
	v int // want "guarded by mux: no such sibling field"
}
