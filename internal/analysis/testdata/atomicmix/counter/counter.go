// Package counter exercises atomicmix: one field mixing atomic and
// plain access (the race), one consistently plain, one consistently
// atomic, and one deliberate suppression.
package counter

import "sync/atomic"

type stats struct {
	hits  int64
	total int64
}

func (s *stats) hit() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *stats) snapshot() int64 {
	return s.hits // want "plainly read here"
}

func (s *stats) reset() {
	s.hits = 0 // want "plainly written here"
	s.total = 0
}

func (s *stats) snapshotOK() int64 {
	return atomic.LoadInt64(&s.hits)
}

func (s *stats) bump() {
	s.total++
}

func (s *stats) seed(n int64) {
	//lint:ignore atomicmix fixture: runs before the struct is shared with any goroutine
	s.hits = n
}
