// Package store is the wirecompat round-trip fixture: the test
// regenerates its golden with WriteWireDigests and expects the
// analyzer to come back clean.
package store

//wire:boundary
type envelope struct {
	Version int      `json:"version"`
	Payload *payload `json:"payload,omitempty"`
}

type payload struct {
	Data []byte `json:"data"`
}
