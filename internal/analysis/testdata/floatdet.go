// Fixture for the floatdet analyzer.
package fixture

import (
	"fmt"
	"math"
	"sort"
)

// mapAccumulation: summing floats in map order is nondeterministic.
func mapAccumulation(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want "float accumulation in map iteration order"
	}
	return sum
}

func mapAccumulationPlain(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want "float accumulation in map iteration order"
	}
	return total
}

func mapProduct(m map[int]float64) float64 {
	p := 1.0
	for _, v := range m {
		p *= v // want "float accumulation in map iteration order"
	}
	return p
}

// Accumulating into a loop-local is fine: the value dies each
// iteration, so order cannot leak out through it.
func mapLocalOnly(m map[string][]float64) int {
	n := 0
	for _, vs := range m {
		local := 0.0
		for _, v := range vs {
			local += v
		}
		if local > 1 {
			n++ // int accumulation is exact and order-independent
		}
	}
	return n
}

// The sanctioned pattern: collect keys, sort, then iterate.
func mapSorted(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sum := 0.0
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

func mapAppend(m map[string]float64, out []float64) []float64 {
	for _, v := range m {
		out = append(out, v) // want "appending floats in map iteration order"
	}
	return out
}

func mapFormat(m map[string]float64) {
	for k, v := range m {
		fmt.Printf("%s=%g\n", k, v) // want "formatting floats in map iteration order"
	}
}

// Suppressed with a reason: diagnostic-only output.
func mapFormatSuppressed(m map[string]float64) {
	for k, v := range m {
		//lint:ignore floatdet debug dump, never parsed or diffed
		fmt.Printf("%s=%g\n", k, v)
	}
}

func fma(a, b, c float64) float64 {
	return math.FMA(a, b, c) // want "math.FMA rounds once"
}

func exactEquality(a, b, c float64) bool {
	return a+b == c // want "exact == on a computed float"
}

func exactInequality(a, b, c float64) bool {
	return c != a*b // want "exact != on a computed float"
}

// Comparing stored values is the deterministic tie-break idiom the
// solver uses; it must not be flagged.
func storedComparison(xs []float64, i, j int) bool {
	return xs[i] == xs[j]
}

// Constant-folded arithmetic is exact.
func constantComparison(x float64) bool {
	return x == 2*math.Pi
}
