// Package app is the caller side of the call-graph fixture: interface
// dispatch, method values, and func-value calls across the package
// boundary.
package app

import "fixture/callgraph/shapes"

// Total dispatches through the Shape interface: conservatively, every
// Area() float64 implementation is a possible callee.
func Total(ss []shapes.Shape) float64 {
	var t float64
	for _, s := range ss {
		t += s.Area()
	}
	return t
}

// MethodValue takes a bound method value and calls it.
func MethodValue() float64 {
	c := shapes.Circle{R: 1}
	f := c.Area
	return f()
}

// TakeHelper makes shapes.Helper address-taken (and directly called,
// per the conservative value-taken edge).
func TakeHelper() func() int {
	return shapes.Helper
}

// TakeFloat makes shapes.FloatFn address-taken with a signature no
// func-value call site in this fixture shares.
func TakeFloat() func() float32 {
	return shapes.FloatFn
}

// CallValue calls through a func value: it must reach every
// address-taken function with the matching canonical signature —
// shapes.Helper — and nothing else.
func CallValue(g func() int) int {
	return g()
}

// Isolated calls nothing and is called by nothing.
func Isolated() {}
