// Package shapes is the callee side of the call-graph fixture:
// interface implementations, a same-name method with a different
// signature, and functions that are (and are not) address-taken.
package shapes

// Shape is the dispatch interface.
type Shape interface {
	Area() float64
}

type Circle struct{ R float64 }

func (c Circle) Area() float64 { return 3 * c.R * c.R }

type Square struct{ S float64 }

func (s Square) Area() float64 { return s.S * s.S }

// Labeled has a method named Area with a different signature: the
// canonical-signature filter must keep it out of Shape dispatch.
type Labeled struct{ N string }

func (l Labeled) Area(scale float64) float64 { return scale }

// Helper is address-taken by app.TakeHelper.
func Helper() int { return 1 }

// Unrelated shares Helper's signature but is never address-taken: a
// func-value call must not reach it.
func Unrelated() int { return 2 }

// FloatFn is address-taken but with a different signature.
func FloatFn() float32 { return 3 }
