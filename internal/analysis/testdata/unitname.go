// Fixture for the unitname analyzer.
package fixture

// Cross-dimension mixing.
func dims(delayNs float64, capFF float64) bool {
	return delayNs < capFF // want "mismatched dimensions"
}

// Same dimension, different scale: a dropped conversion factor.
func scales(tRCDns, setupPs float64) float64 {
	return tRCDns + setupPs // want "mismatched scales"
}

func assignMismatch(energyNJ float64) {
	var readPJ float64
	readPJ = energyNJ // want "mismatched scales"
	_ = readPJ
}

func declMismatch(areaMM2 float64) {
	var areaUm2 = areaMM2 // want "mismatched scales"
	_ = areaUm2
}

// Matching units are fine.
func matched(aNs, bNs float64) bool {
	return aNs < bNs
}

// Multiplication and division are unit algebra, not mixing.
func algebra(rOhm, cFF float64) float64 {
	return rOhm * cFF
}

// One-sided names carry no claim.
func oneSided(delayNs, x float64) float64 {
	return delayNs + x
}

// snake_case boundaries are recognized too.
func snake(area_mm2, area_um2 float64) float64 {
	return area_mm2 - area_um2 // want "mismatched scales"
}

// Plural words and acronyms must not be mistaken for units: FPUs is
// not microseconds, and ns alone (a bare word) is not a suffix.
func falsePositives(FPUs int, ns []int, cores int) int {
	if FPUs > cores {
		return len(ns)
	}
	return 0
}

// Selector fields carry units like locals do.
type timing struct {
	TRCDns  float64
	CASps   float64
	AreaMM2 float64
}

func selectors(t timing) float64 {
	return t.TRCDns + t.CASps // want "mismatched scales"
}

// Deliberate mixed-scale comparison, documented.
func suppressed(t timing, marginPs float64) bool {
	//lint:ignore unitname margin is pre-scaled by the caller, see calibration note
	return t.TRCDns > marginPs
}
