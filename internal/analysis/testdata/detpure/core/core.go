// Package core mirrors the real solver package's entry-point names so
// the detpure root predicates (matched by package name) fire on it.
package core

import (
	"sort"
	"sync"
	"time"

	"fixture/detpure/impl"
)

// Explore is a cone root: byte-identity outputs start here.
func Explore() []string {
	now := time.Now() // want "time.Now in fixture/detpure/core.Explore"
	_ = now
	m := map[string]int{"a": 1, "b": 2}
	out := keysUnsorted(m)
	out = append(out, keysSorted(m)...)
	out = append(out, impl.Helper())
	out = gather(out)
	_ = stamp()
	return out
}

// keysUnsorted leaks map iteration order into its result slice.
func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append in map iteration order"
	}
	return out
}

// keysSorted is the collect-then-sort idiom — the fix the diagnostic
// recommends — and must stay clean.
func keysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// gather appends from goroutines: the scheduler decides the order.
func gather(in []string) []string {
	var out []string
	var wg sync.WaitGroup
	for range in {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out = append(out, "x") // want "goroutine scheduling"
		}()
	}
	wg.Wait()
	return out
}

// stamp's wall-clock read is deliberate: suppressed with a reason.
func stamp() int64 {
	//lint:ignore detpure fixture: timestamp is job metadata, never result bytes
	return time.Now().UnixNano()
}

// unreached is outside the cone: its hazards are not findings.
func unreached() time.Time {
	return time.Now()
}
