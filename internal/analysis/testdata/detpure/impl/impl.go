// Package impl has no roots of its own: everything here is in the
// cone purely because the cross-package call graph says so.
package impl

import "math/rand"

// Helper is called from core.Explore.
func Helper() string {
	return pick()
}

// pick is two edges from the root; the witness in the finding proves
// the reachability chain.
func pick() string {
	words := []string{"a", "b"}
	return words[rand.Intn(len(words))] // want "math/rand use in fixture/detpure/impl.pick (reachable from fixture/detpure/core.Explore)"
}
