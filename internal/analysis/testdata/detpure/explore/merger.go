// Package explore mirrors the real frontier merger: FrontierMerger
// methods are cone roots (the distributed == single-node guarantee
// rests on their determinism).
package explore

import "math/rand"

// FrontierMerger is the fixture stand-in for the streaming merger.
type FrontierMerger struct {
	jitter float64
}

// Push is a root by receiver-type match.
func (m *FrontierMerger) Push(v float64) {
	m.jitter = v + rand.Float64() // want "math/rand use in fixture/detpure/explore.FrontierMerger.Push"
}
