package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TestFiles are the package's _test.go files (in-package and
	// external), parsed but NOT type-checked: program-level analyzers
	// that only need syntax (chaoscover's "is this chaos point armed
	// by any test" cross-reference) read them without dragging test
	// dependencies into the type-check.
	TestFiles []*ast.File
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath   string
	Dir          string
	Name         string
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	DepOnly      bool
	Standard     bool
	Incomplete   bool
	Error        *struct{ Err string }
	Module       *struct{ Dir string }
}

// Load lists, parses and type-checks the packages matching patterns
// (plus nothing else: dependencies are consumed as compiled export
// data, not re-analyzed). It shells out to `go list -deps -export`,
// so it works offline against the local build cache and needs no
// third-party modules — the whole point, given that this repository
// pins zero dependencies.
func Load(dir string, patterns ...string) ([]*Package, error) {
	pkgs, _, err := load(dir, patterns...)
	return pkgs, err
}

// LoadProgram loads the packages matching patterns and assembles them
// into a Program: the whole-program view (shared FileSet, parsed test
// files, module root, package-level call graph) that interprocedural
// analyzers consume.
func LoadProgram(dir string, patterns ...string) (*Program, error) {
	pkgs, moduleDir, err := load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	if moduleDir == "" {
		moduleDir = dir
	}
	prog := &Program{
		Dir:  moduleDir,
		Pkgs: pkgs,
	}
	if len(pkgs) > 0 {
		prog.Fset = pkgs[0].Fset
	}
	prog.CallGraph = BuildCallGraph(prog)
	return prog, nil
}

func load(dir string, patterns ...string) ([]*Package, string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, "", fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := map[string]string{} // import path -> export data file
	var targets []*listedPackage
	moduleDir := ""
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, "", fmt.Errorf("go list: decoding: %v", err)
		}
		if p.Error != nil {
			return nil, "", fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && p.Name != "" {
			q := p
			targets = append(targets, &q)
			if moduleDir == "" && p.Module != nil {
				moduleDir = p.Module.Dir
			}
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := check(fset, imp, t)
		if err != nil {
			return nil, "", err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, moduleDir, nil
}

// check parses and type-checks one listed package from source. Test
// files are parsed (for syntax-only analyzers) but not type-checked.
func check(fset *token.FileSet, imp types.Importer, lp *listedPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", lp.ImportPath, err)
		}
		files = append(files, f)
	}
	var testFiles []*ast.File
	for _, name := range append(append([]string{}, lp.TestGoFiles...), lp.XTestGoFiles...) {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", lp.ImportPath, err)
		}
		testFiles = append(testFiles, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("%s: type checking: %v", lp.ImportPath, err)
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		TestFiles:  testFiles,
	}, nil
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
