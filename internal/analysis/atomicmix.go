package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicMix enforces all-or-nothing atomicity per field: a struct
// field that is ever accessed through sync/atomic (atomic.AddInt64,
// atomic.LoadUint32, ... on its address) must never also be plainly
// read or written. A mixed field is a data race the race detector
// only catches when a test happens to interleave the two access
// paths; the analyzer catches it on every path, every build.
//
// Fields of the type-safe wrappers (atomic.Int64, atomic.Bool, ...)
// cannot be mixed — the type system already forbids plain access —
// so this analyzer is about the address-based legacy API only.
var AtomicMix = &Analyzer{
	Name:       "atomicmix",
	Doc:        "a field accessed through sync/atomic must never be plainly loaded or stored elsewhere",
	RunProgram: runAtomicMix,
}

// atomicFns are the sync/atomic functions whose first argument is the
// address of the accessed word.
var atomicFns = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

func runAtomicMix(pass *ProgramPass) error {
	// Fields are identified per package universe (*types.Var object
	// identity): the address-based atomic API is only usable where
	// the field is addressable, which for the unexported counters this
	// repo uses means the declaring package itself.
	for _, pkg := range pass.Prog.Pkgs {
		runAtomicMixPackage(pass, pkg)
	}
	return nil
}

type plainAccess struct {
	pos   token.Pos
	write bool
}

func runAtomicMixPackage(pass *ProgramPass, pkg *Package) {
	info := pkg.Info
	atomicFields := map[*types.Var]token.Pos{} // field -> first atomic access
	plain := map[*types.Var][]plainAccess{}

	// blessed marks selector expressions consumed by an atomic call
	// (the &x.f argument) so the plain-access pass skips them.
	blessed := map[*ast.SelectorExpr]bool{}

	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !atomicFns[sel.Sel.Name] {
				return true
			}
			obj := info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			if f := addrOfField(info, call.Args[0]); f != nil {
				if _, seen := atomicFields[f]; !seen {
					atomicFields[f] = call.Args[0].Pos()
				}
				if fs, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); ok {
					if s, ok := ast.Unparen(fs.X).(*ast.SelectorExpr); ok {
						blessed[s] = true
					}
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}

	for _, file := range pkg.Files {
		// The write/read distinction needs parents; track assignment
		// contexts with a small stack walk.
		var visit func(n ast.Node, writeTargets map[ast.Expr]bool)
		visit = func(n ast.Node, writeTargets map[ast.Expr]bool) {
			ast.Inspect(n, func(m ast.Node) bool {
				switch e := m.(type) {
				case *ast.AssignStmt:
					wt := map[ast.Expr]bool{}
					for _, lhs := range e.Lhs {
						wt[ast.Unparen(lhs)] = true
					}
					for _, lhs := range e.Lhs {
						visit(lhs, wt)
					}
					for _, rhs := range e.Rhs {
						visit(rhs, nil)
					}
					return false
				case *ast.IncDecStmt:
					visit(e.X, map[ast.Expr]bool{ast.Unparen(e.X): true})
					return false
				case *ast.SelectorExpr:
					if blessed[e] {
						return false
					}
					if f, ok := info.Uses[e.Sel].(*types.Var); ok && f.IsField() {
						if _, isAtomic := atomicFields[f]; isAtomic {
							plain[f] = append(plain[f], plainAccess{pos: e.Pos(), write: writeTargets[e]})
						}
					}
					// Still descend into e.X (x.a.b chains).
					visit(e.X, nil)
					return false
				}
				return true
			})
		}
		visit(file, nil)
	}

	fields := make([]*types.Var, 0, len(plain))
	for f := range plain {
		fields = append(fields, f)
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].Pos() < fields[j].Pos() })
	for _, f := range fields {
		accs := plain[f]
		sort.Slice(accs, func(i, j int) bool { return accs[i].pos < accs[j].pos })
		for _, a := range accs {
			kind := "read"
			if a.write {
				kind = "written"
			}
			pass.Report(a.pos, "field %s is accessed through sync/atomic (first at %s) but plainly %s here: every access to an atomic word must go through sync/atomic",
				f.Name(), pkg.Fset.Position(atomicFields[f]), kind)
		}
	}
}

// addrOfField unwraps &x.f (possibly parenthesized) to the field's
// *types.Var, or nil.
func addrOfField(info *types.Info, arg ast.Expr) *types.Var {
	u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	f, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !f.IsField() {
		return nil
	}
	return f
}
