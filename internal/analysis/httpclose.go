package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HTTPClose guards the fabric client and example paths against the
// two classic HTTP-client leaks:
//
//  1. an *http.Response whose Body is never closed in the function
//     that obtained it (and which does not escape to a caller or
//     callee that could close it) — each one pins a connection, and
//     under the fabric's retry/reroute traffic the pool starves;
//  2. a context.CancelFunc that is discarded (assigned to _) or never
//     used — the derived context's resources are held until the
//     parent dies, which for the coordinator's long-lived root
//     context is effectively forever.
//
// The escape analysis is deliberately coarse and errs quiet: a
// response that is returned, stored, or passed to any function is
// assumed closed elsewhere. The findings that remain are the ones
// with no possible closer.
var HTTPClose = &Analyzer{
	Name: "httpclose",
	Doc:  "flags http.Response bodies never closed in the obtaining function and dropped context.CancelFuncs",
	Run:  runHTTPClose,
}

func runHTTPClose(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkHTTPCloseBody(pass, fn.Body)
				}
				return false // checkHTTPCloseBody descends, closures included
			}
			return true
		})
	}
	return nil
}

// checkHTTPCloseBody checks one function body. Closures are checked
// as part of the enclosing body: a response obtained in the closure
// and closed in the closure resolves naturally, and one smuggled
// across the closure boundary counts as an escape (the ident appears
// in a context the scanner treats as a use-beyond-Body).
func checkHTTPCloseBody(pass *Pass, body *ast.BlockStmt) {
	var resps []*respVar
	byObj := map[types.Object]*respVar{}

	// Pass 1: collect response-producing assignments and dropped
	// cancel funcs.
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		// resp, err := <call> — the call's first result is *http.Response.
		if len(as.Rhs) == 1 {
			if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
				rt := pass.TypesInfo.TypeOf(call)
				first := rt
				if tup, ok := rt.(*types.Tuple); ok && tup.Len() > 0 {
					first = tup.At(0).Type()
				}
				if isHTTPResponsePtr(first) && len(as.Lhs) > 0 {
					if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
						if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
							rv := &respVar{obj: obj, pos: call}
							resps = append(resps, rv)
							byObj[obj] = rv
						}
					}
				}
			}
		}
		// _, _ = context.WithCancel(...) forms: a blank CancelFunc can
		// never be called.
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name != "_" {
				continue
			}
			if isCancelFuncAt(pass, as, i) {
				pass.Report(lhs.Pos(), "context.CancelFunc discarded; the derived context leaks until its parent is done — call it (usually via defer)")
			}
		}
		return true
	})

	// Cancel funcs bound to a named variable but never used.
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if as.Tok != token.DEFINE {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" || !isCancelFuncAt(pass, as, i) {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				continue
			}
			if !identUsedIn(pass, body, obj, id) {
				pass.Report(id.Pos(), "context.CancelFunc %s is never used; the derived context leaks until its parent is done — call it (usually via defer)", id.Name)
			}
		}
		return true
	})

	if len(resps) == 0 {
		return
	}

	// Pass 2: for each response var, look for a closing use or an
	// escape.
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			// resp.Body.Close() (also via defer, which wraps the same
			// CallExpr).
			if sel, ok := e.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
				if inner, ok := sel.X.(*ast.SelectorExpr); ok && inner.Sel.Name == "Body" {
					if id, ok := ast.Unparen(inner.X).(*ast.Ident); ok {
						if rv := byObj[pass.TypesInfo.ObjectOf(id)]; rv != nil {
							rv.closed = true
						}
					}
				}
			}
			// resp passed to any function: assume the callee closes.
			for _, arg := range e.Args {
				markEscape(pass, byObj, arg)
			}
		case *ast.ReturnStmt:
			for _, r := range e.Results {
				markEscape(pass, byObj, r)
			}
		case *ast.AssignStmt:
			// resp re-assigned somewhere else (struct field, channel
			// send via variable, etc.): rhs idents escape.
			for _, r := range e.Rhs {
				if id, ok := ast.Unparen(r).(*ast.Ident); ok {
					markEscape(pass, byObj, id)
				}
			}
		case *ast.SendStmt:
			markEscape(pass, byObj, e.Value)
		}
		return true
	})

	for _, rv := range resps {
		if !rv.closed {
			pass.Report(rv.pos.Pos(), "http.Response body obtained here is never closed in this function (and the response does not escape); leaked bodies pin pooled connections — defer resp.Body.Close()")
		}
	}
}

// respVar tracks one *http.Response-producing assignment.
type respVar struct {
	obj    types.Object
	pos    ast.Expr // the producing call, for the report position
	closed bool
}

// markEscape marks a response variable as escaping when expr is (or
// roots at) its identifier.
func markEscape(pass *Pass, byObj map[types.Object]*respVar, expr ast.Expr) {
	if id, ok := ast.Unparen(expr).(*ast.Ident); ok {
		if rv := byObj[pass.TypesInfo.ObjectOf(id)]; rv != nil {
			rv.closed = true
		}
	}
}

func isHTTPResponsePtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Response"
}

// isCancelFuncAt reports whether position i of the assignment's
// value(s) has type context.CancelFunc.
func isCancelFuncAt(pass *Pass, as *ast.AssignStmt, i int) bool {
	var t types.Type
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		rt := pass.TypesInfo.TypeOf(as.Rhs[0])
		tup, ok := rt.(*types.Tuple)
		if !ok || i >= tup.Len() {
			return false
		}
		t = tup.At(i).Type()
	} else if i < len(as.Rhs) {
		t = pass.TypesInfo.TypeOf(as.Rhs[i])
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "CancelFunc"
}

// identUsedIn reports whether obj is referenced anywhere in body
// besides its defining identifier.
func identUsedIn(pass *Pass, body *ast.BlockStmt, obj types.Object, def *ast.Ident) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id == def {
			return true
		}
		if pass.TypesInfo.Uses[id] == obj {
			used = true
			return false
		}
		return true
	})
	return used
}
