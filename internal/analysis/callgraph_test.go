package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// The callgraph fixture (testdata/callgraph) exercises the dynamic
// call forms the determinism cone depends on resolving conservatively:
// interface dispatch lands on every same-name, same-signature method;
// method values and address-taken functions feed func-value call
// sites; and the canonical-signature filter keeps lookalikes out.

const (
	cgApp    = "fixture/callgraph/app."
	cgShapes = "fixture/callgraph/shapes."
)

func cgReach(t *testing.T, g *CallGraph, root string) map[string]bool {
	t.Helper()
	if g.Nodes[root] == nil {
		t.Fatalf("root %s not in graph:\n%s", root, g)
	}
	seen, witness := g.Reachable([]string{root})
	for id := range seen {
		if witness[id] != root {
			t.Errorf("witness[%s] = %q, want %q", id, witness[id], root)
		}
	}
	return seen
}

func TestCallGraphInterfaceDispatch(t *testing.T) {
	prog := loadFixtureProgram(t, "callgraph")
	seen := cgReach(t, prog.CallGraph, cgApp+"Total")

	for _, want := range []string{cgShapes + "Circle.Area", cgShapes + "Square.Area"} {
		if !seen[want] {
			t.Errorf("interface dispatch must reach %s conservatively; graph:\n%s", want, prog.CallGraph)
		}
	}
	for _, not := range []string{cgShapes + "Labeled.Area", cgShapes + "Helper", cgApp + "Isolated"} {
		if seen[not] {
			t.Errorf("%s must not be reachable from Total; graph:\n%s", not, prog.CallGraph)
		}
	}
}

func TestCallGraphMethodValue(t *testing.T) {
	prog := loadFixtureProgram(t, "callgraph")
	seen := cgReach(t, prog.CallGraph, cgApp+"MethodValue")

	if !seen[cgShapes+"Circle.Area"] {
		t.Errorf("method value must add an edge to Circle.Area; graph:\n%s", prog.CallGraph)
	}
	if seen[cgShapes+"Square.Area"] {
		t.Errorf("a bound method value must not fan out to other implementations; graph:\n%s", prog.CallGraph)
	}
}

func TestCallGraphFuncValueBySignature(t *testing.T) {
	prog := loadFixtureProgram(t, "callgraph")
	g := prog.CallGraph

	// TakeHelper / TakeFloat mark their returns address-taken before
	// CallValue's dynamic site resolves (the graph is whole-program,
	// order-free), so force them into the root set alongside the call.
	seen, _ := g.Reachable([]string{cgApp + "CallValue", cgApp + "TakeHelper", cgApp + "TakeFloat"})

	if !seen[cgShapes+"Helper"] {
		t.Errorf("func-value call must reach the address-taken signature match Helper; graph:\n%s", g)
	}
	if seen[cgShapes+"Unrelated"] {
		t.Errorf("Unrelated is never address-taken and must not be a func-value target; graph:\n%s", g)
	}

	// Signature filter: CallValue's ()(int) site must not pick up the
	// address-taken ()(float32) function.
	cv := g.Nodes[cgApp+"CallValue"]
	if cv == nil {
		t.Fatalf("CallValue missing from graph:\n%s", g)
	}
	if cv.calls[cgShapes+"FloatFn"] {
		t.Errorf("CallValue must not call FloatFn (signature mismatch); graph:\n%s", g)
	}
	if !cv.calls[cgShapes+"Helper"] {
		t.Errorf("CallValue must call Helper; graph:\n%s", g)
	}
}

func TestCallGraphIsolated(t *testing.T) {
	prog := loadFixtureProgram(t, "callgraph")
	seen := cgReach(t, prog.CallGraph, cgApp+"Isolated")
	if len(seen) != 1 {
		t.Errorf("Isolated must reach only itself, got %d nodes", len(seen))
	}
}

// TestCallGraphRealTree sanity-checks FuncID and node coverage on the
// repository itself: every node ID is package-qualified and the
// explore merger's methods exist under their erased-pointer receiver.
func TestCallGraphRealTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	dir, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := LoadProgram(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	g := prog.CallGraph
	if len(g.Nodes) < 100 {
		t.Fatalf("suspiciously small call graph: %d nodes", len(g.Nodes))
	}
	for id := range g.Nodes {
		if !strings.HasPrefix(id, "cactid/") && !strings.HasPrefix(id, "main.") {
			t.Errorf("node ID %q is not package-qualified", id)
		}
	}
	var roots []string
	for id, n := range g.Nodes {
		if detPureRoot(n) {
			roots = append(roots, id)
		}
	}
	if len(roots) == 0 {
		t.Fatal("no detpure roots found in the real tree")
	}
	seen, _ := g.Reachable(roots)
	// The cone must cross package boundaries: the solver calls into
	// the array enumeration which calls into mat.
	for _, want := range []string{"cactid/internal/core.ExploreContext", "cactid/internal/mat.Shared.BuildInto"} {
		if g.Nodes[want] == nil {
			t.Fatalf("expected node %s in the real graph", want)
		}
		if !seen[want] {
			t.Errorf("expected %s inside the byte-identity cone", want)
		}
	}
}
