package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ChaosCover closes the loop between the chaos catalog and the test
// suite: every chaos.Point constant declared in the package named
// "chaos" must be referenced by at least one _test.go file somewhere
// in the program. An injection point nobody arms is an instrumented
// failure path that ships untested — exactly the blind spot the PR-5
// chaos layer exists to eliminate, and one that silently reopens
// every time a new point is added without a matching test.
//
// Test files are matched syntactically (the loader parses them
// without type-checking): a reference is any identifier with the
// constant's name, package-qualified or bare. Point names are
// distinctive enough (ExploreWorker, FabricDispatch, ...) that name
// collisions are not a practical concern — and a collision errs
// toward silence, never toward a false finding.
var ChaosCover = &Analyzer{
	Name:       "chaoscover",
	Doc:        "every chaos.Point constant must be armed (referenced) by at least one test in the repo",
	RunProgram: runChaosCover,
}

func runChaosCover(pass *ProgramPass) error {
	chaosPkg := pass.Prog.PackageNamed("chaos")
	if chaosPkg == nil {
		return nil
	}

	// Collect the Point constants in declaration order.
	type pointConst struct {
		name string
		pos  token.Pos
	}
	var points []pointConst
	for _, file := range chaosPkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gd, ok := n.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj, _ := chaosPkg.Info.Defs[name].(*types.Const)
					if obj == nil {
						continue
					}
					if named, ok := obj.Type().(*types.Named); ok && named.Obj().Name() == "Point" {
						points = append(points, pointConst{name: name.Name, pos: name.Pos()})
					}
				}
			}
			return false
		})
	}
	if len(points) == 0 {
		return nil
	}

	// Collect every identifier mentioned in any test file.
	testIdents := map[string]bool{}
	for _, pkg := range pass.Prog.Pkgs {
		for _, f := range pkg.TestFiles {
			ast.Inspect(f, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					testIdents[id.Name] = true
				}
				return true
			})
		}
	}

	sort.Slice(points, func(i, j int) bool { return points[i].pos < points[j].pos })
	for _, p := range points {
		if !testIdents[p.name] {
			pass.Report(p.pos, "chaos point %s is not armed by any test in the repo: its instrumented failure path ships unexercised — add a test that injects it (or suppress with a reason)", p.name)
		}
	}
	return nil
}
