package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural layer under the program-level
// analyzers: a package-level call graph over every function declared
// in the analyzed packages.
//
// The loader type-checks each target package from source while its
// dependencies — including other target packages — resolve from
// compiled export data. A function therefore has two incompatible
// identities: the *types.Func of its source-checked declaration and
// the *types.Func other packages import. The graph bridges the two by
// keying every node on a stable string ID (FuncID) that both views
// render identically, so cross-package edges land on the node that
// owns the declaration body.
//
// The graph is deliberately an over-approximation — for a determinism
// cone, missing an edge is the only unsafe direction:
//
//   - static calls (including go and defer) add one edge;
//   - a call through an interface method adds an edge to every
//     declared method with the same name and canonical signature
//     (conservative class-hierarchy dispatch; object identity cannot
//     be compared across type-check universes, so signatures are
//     matched as fully-qualified strings);
//   - a function or method referenced outside call position (a method
//     value, a func value stored or passed) adds a direct edge from
//     the referencing function and marks the target address-taken;
//   - a call through a func-typed expression adds an edge to every
//     address-taken function in the program with the same canonical
//     signature.

// Program is the whole-program view the interprocedural analyzers
// consume: every loaded package over one shared FileSet plus the call
// graph across them.
type Program struct {
	// Dir is the module root; relative artifact paths (the wirecompat
	// golden digest file) resolve against it.
	Dir  string
	Fset *token.FileSet
	Pkgs []*Package
	// CallGraph is built by LoadProgram (or BuildCallGraph).
	CallGraph *CallGraph
	// WireDigestFile overrides the wirecompat golden digest location;
	// empty means Dir/internal/analysis/wiredigest.json. The fixture
	// harness points it at per-fixture goldens.
	WireDigestFile string
}

// Node is one declared function or method in the call graph.
type Node struct {
	ID   string
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// calls is the set of callee IDs, conservative per the package
	// comment. IDs may name functions with no node (stdlib, export-
	// data-only dependencies); reachability simply has no body to
	// continue through there.
	calls map[string]bool
}

// CallGraph is the package-level call graph over a Program.
type CallGraph struct {
	Nodes map[string]*Node
}

// FuncID renders the stable identity of f: "pkg/path.Func" for
// package functions, "pkg/path.Type.Method" for methods (pointerness
// of the receiver is erased — both views must agree), and plain names
// for builtins. Generic instantiations collapse onto their origin.
func FuncID(f *types.Func) string {
	f = f.Origin()
	sig, _ := f.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil {
				return obj.Pkg().Path() + "." + obj.Name() + "." + f.Name()
			}
			return obj.Name() + "." + f.Name()
		}
		// Interface method via an anonymous interface: no stable
		// receiver name; fall through to the bare name.
		return f.Name()
	}
	if f.Pkg() != nil {
		return f.Pkg().Path() + "." + f.Name()
	}
	return f.Name()
}

// BuildCallGraph builds the conservative call graph over prog's
// packages.
func BuildCallGraph(prog *Program) *CallGraph {
	g := &CallGraph{Nodes: map[string]*Node{}}

	// methodsByName and addrTaken resolve the two dynamic call forms;
	// both are collected in the first pass over every package. Dynamic
	// edges match on the canonical signature string (types only, fully
	// package-qualified, receiver excluded): identical rendering from
	// both sides of the source/export-data divide, and the tightest
	// sound criterion — a dynamic call can only land on a function the
	// type system would let the call site hold.
	type dynCall struct {
		from *Node
		name string // interface method name, "" for func-value calls
		sig  string // canonical signature of the call site, "" unknown
	}
	methodsByName := map[string][]*Node{}
	var addrTaken []*Node
	addrTakenSeen := map[string]bool{}
	var dyns []dynCall

	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				n := &Node{ID: FuncID(fn), Fn: fn, Decl: fd, Pkg: pkg, calls: map[string]bool{}}
				g.Nodes[n.ID] = n
				if fd.Recv != nil {
					methodsByName[fn.Name()] = append(methodsByName[fn.Name()], n)
				}
			}
		}
	}

	markTaken := func(n *Node) {
		if n != nil && !addrTakenSeen[n.ID] {
			addrTakenSeen[n.ID] = true
			addrTaken = append(addrTaken, n)
		}
	}

	for _, n := range g.Nodes {
		info := n.Pkg.Info
		// calleeIdents marks the identifiers that ARE the callee of a
		// static call, so the reference pass below treats every other
		// *types.Func use as a value taken.
		calleeIdents := map[*ast.Ident]bool{}
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			e, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, calleeIdent, iface := resolveCallee(info, e)
			switch {
			case callee != nil:
				n.calls[FuncID(callee)] = true
				calleeIdents[calleeIdent] = true
			case iface != "":
				dyns = append(dyns, dynCall{from: n, name: iface, sig: callSiteSig(info, e)})
				if calleeIdent != nil {
					calleeIdents[calleeIdent] = true
				}
			case isFuncValueCall(info, e):
				dyns = append(dyns, dynCall{from: n, sig: callSiteSig(info, e)})
			}
			return true
		})
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			id, ok := node.(*ast.Ident)
			if !ok || calleeIdents[id] {
				return true
			}
			if fn, ok := info.Uses[id].(*types.Func); ok {
				// Function or method value taken (a method value, a
				// func passed or stored): direct edge from the taker
				// plus address-taken registration for indirect calls.
				n.calls[FuncID(fn)] = true
				markTaken(g.Nodes[FuncID(fn)])
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
					// Interface method value: the eventual call could
					// land on any implementation — treat like dispatch.
					dyns = append(dyns, dynCall{from: n, name: fn.Name(), sig: sigKey(sig)})
				}
			}
			return true
		})
	}

	// Resolve dynamic calls now that address-taken and methods-by-name
	// are complete.
	for _, d := range dyns {
		if d.name != "" {
			for _, m := range methodsByName[d.name] {
				if sigCompatible(m.Fn, d.sig) {
					d.from.calls[m.ID] = true
				}
			}
			continue
		}
		for _, t := range addrTaken {
			if sigCompatible(t.Fn, d.sig) {
				d.from.calls[t.ID] = true
			}
		}
	}
	return g
}

// callSiteSig renders the canonical signature of the expression being
// called ("" when unavailable).
func callSiteSig(info *types.Info, call *ast.CallExpr) string {
	tv, ok := info.Types[ast.Unparen(call.Fun)]
	if !ok || tv.Type == nil {
		return ""
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return ""
	}
	return sigKey(sig)
}

// sigKey renders a signature canonically — parameter and result
// types only (no names, no receiver), fully package-qualified — so
// signatures render identically from the source-checked and
// export-data views of the same function.
func sigKey(sig *types.Signature) string {
	var b strings.Builder
	b.WriteByte('(')
	for i := 0; i < sig.Params().Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(types.TypeString(sig.Params().At(i).Type(), qualifyFull))
	}
	b.WriteString(")(")
	for i := 0; i < sig.Results().Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(types.TypeString(sig.Results().At(i).Type(), qualifyFull))
	}
	b.WriteByte(')')
	if sig.Variadic() {
		b.WriteString("...")
	}
	return b.String()
}

// sigCompatible reports whether fn could be the target of a dynamic
// call with the given canonical call-site signature. An unknown site
// signature ("") stays fully conservative and matches everything.
func sigCompatible(fn *types.Func, siteSig string) bool {
	if siteSig == "" {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return true
	}
	return sigKey(sig) == siteSig
}

// resolveCallee resolves a call expression to its static callee, or
// to the name of the interface method it dispatches through. The
// returned ident (when non-nil) is the identifier standing in call
// position, so the reference pass can skip it. callee==nil and
// ifaceMethod=="" means the call is through a func-typed expression
// (or a conversion/builtin).
func resolveCallee(info *types.Info, call *ast.CallExpr) (callee *types.Func, calleeIdent *ast.Ident, ifaceMethod string) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f, fun, ""
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			f, _ := sel.Obj().(*types.Func)
			if f == nil {
				return nil, nil, ""
			}
			if types.IsInterface(sel.Recv()) {
				return nil, fun.Sel, f.Name()
			}
			return f, fun.Sel, ""
		}
		// Package-qualified call (pkg.F) has no Selection entry.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f, fun.Sel, ""
		}
	case *ast.IndexExpr:
		// Generic instantiation F[T](...).
		if id, ok := fun.X.(*ast.Ident); ok {
			if f, ok := info.Uses[id].(*types.Func); ok {
				return f, id, ""
			}
		}
	}
	return nil, nil, ""
}

// isFuncValueCall reports whether call invokes a func-typed
// expression (variable, field, parameter, map entry, call result)
// rather than a declared function, builtin, or conversion.
func isFuncValueCall(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[ast.Unparen(call.Fun)]
	if !ok {
		return false
	}
	if tv.IsType() || tv.IsBuiltin() {
		return false
	}
	_, isSig := tv.Type.Underlying().(*types.Signature)
	return isSig
}

// Reachable returns the set of node IDs reachable from the given
// roots (roots included, when present in the graph), alongside a
// witness map naming, for each reachable node, the root that first
// reached it — the "byte-identity cone" evidence detpure prints.
func (g *CallGraph) Reachable(roots []string) (map[string]bool, map[string]string) {
	seen := map[string]bool{}
	witness := map[string]string{}
	queue := make([]string, 0, len(roots))
	sorted := append([]string(nil), roots...)
	sort.Strings(sorted)
	for _, r := range sorted {
		if g.Nodes[r] != nil && !seen[r] {
			seen[r] = true
			witness[r] = r
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		n := g.Nodes[id]
		if n == nil {
			continue
		}
		callees := make([]string, 0, len(n.calls))
		for c := range n.calls {
			callees = append(callees, c)
		}
		sort.Strings(callees)
		for _, c := range callees {
			if !seen[c] {
				seen[c] = true
				witness[c] = witness[id]
				if g.Nodes[c] != nil {
					queue = append(queue, c)
				}
			}
		}
	}
	return seen, witness
}

// Package returns prog's package with the given import path, or nil.
func (prog *Program) Package(path string) *Package {
	for _, p := range prog.Pkgs {
		if p.ImportPath == path {
			return p
		}
	}
	return nil
}

// PackageNamed returns the first package whose package name (not
// import path) matches, or nil. Root and registry matching works on
// package names so fixtures (import path "fixture/...", package
// clause "core") exercise the same predicates as the real tree.
func (prog *Program) PackageNamed(name string) *Package {
	for _, p := range prog.Pkgs {
		if p.Types != nil && p.Types.Name() == name {
			return p
		}
	}
	return nil
}

// String renders the graph for debugging: one sorted "caller -> [callees]"
// line per node.
func (g *CallGraph) String() string {
	ids := make([]string, 0, len(g.Nodes))
	for id := range g.Nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var b strings.Builder
	for _, id := range ids {
		n := g.Nodes[id]
		callees := make([]string, 0, len(n.calls))
		for c := range n.calls {
			callees = append(callees, c)
		}
		sort.Strings(callees)
		fmt.Fprintf(&b, "%s -> %v\n", id, callees)
	}
	return b.String()
}
