package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The fixture harness is a miniature analysistest: each file under
// testdata/ is parsed and type-checked on its own (stdlib imports
// resolve through the source importer, so no build cache or network
// is needed), the analyzer under test runs, and its diagnostics are
// matched against `// want "substring"` comments on the offending
// lines. Unmatched diagnostics and unsatisfied wants both fail.

var (
	fixtureFset = token.NewFileSet()
	fixtureImp  = sync.OnceValue(func() types.Importer {
		return importer.ForCompiler(fixtureFset, "source", nil)
	})
)

var wantRE = regexp.MustCompile(`// want (".*")\s*$`)
var wantStrRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// runFixture applies one analyzer to one testdata file and compares
// diagnostics (after suppression filtering) with want comments.
func runFixture(t *testing.T, a *Analyzer, filename string) {
	t.Helper()
	path := filepath.Join("testdata", filename)
	f, err := parser.ParseFile(fixtureFset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	info := NewInfo()
	conf := types.Config{Importer: fixtureImp()}
	tpkg, err := conf.Check("fixture/"+strings.TrimSuffix(filename, ".go"), fixtureFset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", path, err)
	}
	pkg := &Package{
		ImportPath: tpkg.Path(),
		Fset:       fixtureFset,
		Files:      []*ast.File{f},
		Types:      tpkg,
		Info:       info,
	}
	diags, err := RunPackage(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	wants := fixtureWants(t, f)
	for _, d := range diags {
		line := d.Position.Line
		ws := wants[line]
		matched := false
		for i, w := range ws {
			if w != "" && strings.Contains(d.Message, w) {
				ws[i] = "" // consumed
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", fmt.Sprintf("%s:%d", filename, line), d.Message)
		}
	}
	for line, ws := range wants {
		for _, w := range ws {
			if w != "" {
				t.Errorf("%s:%d: no diagnostic matched want %q", filename, line, w)
			}
		}
	}
}

// fixtureWants maps line numbers to the expected message substrings.
func fixtureWants(t *testing.T, f *ast.File) map[int][]string {
	t.Helper()
	wants := map[int][]string{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			line := fixtureFset.Position(c.Pos()).Line
			for _, s := range wantStrRE.FindAllStringSubmatch(m[1], -1) {
				wants[line] = append(wants[line], s[1])
			}
		}
	}
	return wants
}
