package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// The fixture harness is a miniature analysistest: each file under
// testdata/ is parsed and type-checked on its own (stdlib imports
// resolve through the source importer, so no build cache or network
// is needed), the analyzer under test runs, and its diagnostics are
// matched against `// want "substring"` comments on the offending
// lines. Unmatched diagnostics and unsatisfied wants both fail.

var (
	fixtureFset = token.NewFileSet()
	fixtureImp  = sync.OnceValue(func() types.Importer {
		return importer.ForCompiler(fixtureFset, "source", nil)
	})
)

var wantRE = regexp.MustCompile(`// want (".*")\s*$`)
var wantStrRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// runFixture applies one analyzer to one testdata file and compares
// diagnostics (after suppression filtering) with want comments.
func runFixture(t *testing.T, a *Analyzer, filename string) {
	t.Helper()
	path := filepath.Join("testdata", filename)
	f, err := parser.ParseFile(fixtureFset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	info := NewInfo()
	conf := types.Config{Importer: fixtureImp()}
	tpkg, err := conf.Check("fixture/"+strings.TrimSuffix(filename, ".go"), fixtureFset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", path, err)
	}
	pkg := &Package{
		ImportPath: tpkg.Path(),
		Fset:       fixtureFset,
		Files:      []*ast.File{f},
		Types:      tpkg,
		Info:       info,
	}
	diags, err := RunPackage(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	wants := fixtureWants(t, f)
	for _, d := range diags {
		line := d.Position.Line
		ws := wants[line]
		matched := false
		for i, w := range ws {
			if w != "" && strings.Contains(d.Message, w) {
				ws[i] = "" // consumed
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", fmt.Sprintf("%s:%d", filename, line), d.Message)
		}
	}
	for line, ws := range wants {
		for _, w := range ws {
			if w != "" {
				t.Errorf("%s:%d: no diagnostic matched want %q", filename, line, w)
			}
		}
	}
}

// loadFixtureProgram builds a Program from testdata/<dir>: each
// subdirectory is one package with import path "fixture/<dir>/<sub>",
// _test.go files are parsed (with comments) but not type-checked —
// mirroring the real loader — and a wiredigest.json at the fixture
// root becomes the program's golden digest file. Fixture packages may
// import each other; type-checking retries until the dependency order
// resolves.
func loadFixtureProgram(t *testing.T, dir string) *Program {
	t.Helper()
	root := filepath.Join("testdata", dir)
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatalf("read fixture dir %s: %v", root, err)
	}

	type rawPkg struct {
		path  string
		files []*ast.File
		tests []*ast.File
	}
	var raws []*rawPkg
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		sub := filepath.Join(root, e.Name())
		fis, err := os.ReadDir(sub)
		if err != nil {
			t.Fatalf("read %s: %v", sub, err)
		}
		rp := &rawPkg{path: "fixture/" + dir + "/" + e.Name()}
		for _, fi := range fis {
			if !strings.HasSuffix(fi.Name(), ".go") {
				continue
			}
			path := filepath.Join(sub, fi.Name())
			f, err := parser.ParseFile(fixtureFset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				t.Fatalf("parse %s: %v", path, err)
			}
			if strings.HasSuffix(fi.Name(), "_test.go") {
				rp.tests = append(rp.tests, f)
			} else {
				rp.files = append(rp.files, f)
			}
		}
		if len(rp.files) > 0 || len(rp.tests) > 0 {
			raws = append(raws, rp)
		}
	}

	checked := map[string]*types.Package{}
	imp := &fixtureProgImporter{checked: checked}
	var pkgs []*Package
	pending := raws
	for len(pending) > 0 {
		var next []*rawPkg
		var firstErr error
		for _, rp := range pending {
			info := NewInfo()
			conf := types.Config{Importer: imp}
			tpkg, err := conf.Check(rp.path, fixtureFset, rp.files, info)
			if err != nil {
				firstErr = fmt.Errorf("typecheck %s: %w", rp.path, err)
				next = append(next, rp)
				continue
			}
			checked[rp.path] = tpkg
			pkgs = append(pkgs, &Package{
				ImportPath: rp.path,
				Fset:       fixtureFset,
				Files:      rp.files,
				TestFiles:  rp.tests,
				Types:      tpkg,
				Info:       info,
			})
		}
		if len(next) == len(pending) {
			t.Fatal(firstErr)
		}
		pending = next
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })

	prog := &Program{Dir: root, Fset: fixtureFset, Pkgs: pkgs}
	if golden := filepath.Join(root, "wiredigest.json"); fileExists(golden) {
		prog.WireDigestFile = golden
	}
	prog.CallGraph = BuildCallGraph(prog)
	return prog
}

// fixtureProgImporter resolves already-checked fixture packages by
// import path and delegates everything else (the stdlib) to the
// source importer.
type fixtureProgImporter struct {
	checked map[string]*types.Package
}

func (i *fixtureProgImporter) Import(path string) (*types.Package, error) {
	if p, ok := i.checked[path]; ok {
		return p, nil
	}
	return fixtureImp().Import(path)
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// runProgramFixture applies one analyzer to a fixture program and
// compares diagnostics (after suppression filtering) with want
// comments across every file, source and test alike.
func runProgramFixture(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	prog := loadFixtureProgram(t, dir)
	diags, err := RunProgram(prog, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	wants := map[string]map[int][]string{}
	for _, pkg := range prog.Pkgs {
		for _, f := range append(append([]*ast.File{}, pkg.Files...), pkg.TestFiles...) {
			name := fixtureFset.Position(f.Pos()).Filename
			wants[name] = fixtureWants(t, f)
		}
	}
	for _, d := range diags {
		ws := wants[d.Position.Filename][d.Position.Line]
		matched := false
		for i, w := range ws {
			if w != "" && strings.Contains(d.Message, w) {
				ws[i] = ""
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", d.Position.Filename, d.Position.Line, d.Message)
		}
	}
	for name, byLine := range wants {
		for line, ws := range byLine {
			for _, w := range ws {
				if w != "" {
					t.Errorf("%s:%d: no diagnostic matched want %q", name, line, w)
				}
			}
		}
	}
}

// fixtureWants maps line numbers to the expected message substrings.
func fixtureWants(t *testing.T, f *ast.File) map[int][]string {
	t.Helper()
	wants := map[int][]string{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			line := fixtureFset.Position(c.Pos()).Line
			for _, s := range wantStrRE.FindAllStringSubmatch(m[1], -1) {
				wants[line] = append(wants[line], s[1])
			}
		}
	}
	return wants
}
