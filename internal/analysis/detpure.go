package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// DetPure is the determinism-taint analyzer: inside the byte-identity
// cone — every function reachable, on the conservative call graph,
// from the solver entry points whose outputs the repo pins
// byte-for-byte — it flags the operations that can make two runs
// differ:
//
//  1. wall-clock reads (time.Now / time.Since / time.Until): any
//     value derived from them differs run to run;
//  2. math/rand (v1 or v2): pseudo-randomness, seeded or not, has no
//     place on a result path;
//  3. output produced in map iteration order — appending to an outer
//     slice, sending on a channel, or fmt-formatting inside a
//     range-over-map body (floatdet's float-specific rule,
//     generalized to every element type, but only inside the cone
//     where ordering is load-bearing);
//  4. goroutine-order-dependent appends: a goroutine body appending
//     to a slice declared outside it — the final element order is an
//     interleaving accident.
//
// The cone roots are the byte-identity surface (matched by package
// name so fixtures exercise the same predicates):
//
//   - core.Solve / Explore / ExploreContext / Optimize /
//     OptimizeContext — the solver API whose outputs the 7-digit pins
//     and the store digests freeze;
//   - array.Enumerate* — the enumeration the parallel hot path must
//     replay byte-identically;
//   - explore.FrontierMerger methods — the streaming merge whose
//     order-independence the fabric's "distributed == single-node"
//     guarantee rests on.
//
// Reachability does the work — no hand-listed packages: a helper
// three calls deep in internal/mat is in the cone because the graph
// says so, and a new package joins the cone the moment the solver
// calls into it.
var DetPure = &Analyzer{
	Name:       "detpure",
	Doc:        "flags nondeterminism (time, rand, map-order or goroutine-order output) in functions reachable from the byte-identity solver entry points",
	RunProgram: runDetPure,
}

// detPureRoot reports whether a call-graph node is a cone root.
func detPureRoot(n *Node) bool {
	if n.Pkg.Types == nil {
		return false
	}
	pkgName := n.Pkg.Types.Name()
	name := n.Fn.Name()
	recv := receiverTypeName(n.Fn)
	switch pkgName {
	case "core":
		switch name {
		case "Solve", "Explore", "ExploreContext", "Optimize", "OptimizeContext":
			return recv == ""
		}
	case "array":
		return len(name) >= 9 && name[:9] == "Enumerate"
	case "explore":
		return recv == "FrontierMerger"
	}
	return false
}

// receiverTypeName returns the bare receiver type name of a method
// ("" for package functions).
func receiverTypeName(f *types.Func) string {
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func runDetPure(pass *ProgramPass) error {
	g := pass.Prog.CallGraph
	if g == nil {
		return nil
	}
	var roots []string
	for id, n := range g.Nodes {
		if detPureRoot(n) {
			roots = append(roots, id)
		}
	}
	reachable, witness := g.Reachable(roots)

	ids := make([]string, 0, len(reachable))
	for id := range reachable {
		if g.Nodes[id] != nil {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		n := g.Nodes[id]
		checkDetPureFunc(pass, n, witness[id])
	}
	return nil
}

// checkDetPureFunc scans one in-cone function body (closures
// included — they execute as part of the function) for the four
// hazard classes.
func checkDetPureFunc(pass *ProgramPass, n *Node, root string) {
	info := n.Pkg.Info
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch e := node.(type) {
		case *ast.SelectorExpr:
			if obj := info.Uses[e.Sel]; obj != nil && obj.Pkg() != nil {
				switch obj.Pkg().Path() {
				case "math/rand", "math/rand/v2":
					pass.Report(e.Pos(), "math/rand use in %s (reachable from %s): randomness on a byte-identity result path", n.ID, root)
					return false
				case "time":
					switch obj.Name() {
					case "Now", "Since", "Until":
						pass.Report(e.Pos(), "time.%s in %s (reachable from %s): wall-clock reads are nondeterministic on a byte-identity result path", obj.Name(), n.ID, root)
						return false
					}
				}
			}
		case *ast.RangeStmt:
			if isMapType(info.TypeOf(e.X)) {
				checkDetPureMapRange(pass, info, e, n, root, n.Decl.Body)
			}
		case *ast.GoStmt:
			checkDetPureGoroutine(pass, info, e, n, root)
		}
		return true
	})
}

// checkDetPureMapRange flags ordered output produced inside a
// range-over-map body: appends to a slice declared outside the loop
// (any element type), channel sends, and fmt-family formatting. The
// collect-then-sort idiom — the very fix the diagnostic recommends —
// is recognized and left alone: an append target that is later
// sorted in the same function carries no iteration order out.
func checkDetPureMapRange(pass *ProgramPass, info *types.Info, rng *ast.RangeStmt, n *Node, root string, funcBody *ast.BlockStmt) {
	ast.Inspect(rng.Body, func(node ast.Node) bool {
		switch e := node.(type) {
		case *ast.RangeStmt:
			// Nested map ranges get their own visit from the outer
			// walk; nested slice ranges still run in map order.
			return e == rng || !isMapType(info.TypeOf(e.X))
		case *ast.SendStmt:
			pass.Report(e.Pos(), "channel send in map iteration order in %s (reachable from %s): receivers observe a nondeterministic sequence; sort the keys first", n.ID, root)
			return false
		case *ast.CallExpr:
			if name, ok := detPureCalleeName(info, e); ok {
				if name == "append" && appendTargetOutside(info, e, rng) && !sortedInBody(info, funcBody, e.Args[0]) {
					pass.Report(e.Pos(), "append in map iteration order in %s (reachable from %s): element order is nondeterministic; sort the keys first", n.ID, root)
					return false
				}
				if isFmtFormatter(name) {
					pass.Report(e.Pos(), "formatting in map iteration order in %s (reachable from %s): output order is nondeterministic; sort the keys first", n.ID, root)
					return false
				}
			}
		}
		return true
	})
}

// sortFns are the sorting entry points that erase insertion order.
var sortFns = map[string]bool{
	"sort.Strings": true, "sort.Ints": true, "sort.Float64s": true,
	"sort.Slice": true, "sort.SliceStable": true, "sort.Sort": true, "sort.Stable": true,
	"slices.Sort": true, "slices.SortFunc": true, "slices.SortStableFunc": true,
}

// sortedInBody reports whether the slice rooted at target is passed
// to a sort function anywhere in the function body.
func sortedInBody(info *types.Info, body *ast.BlockStmt, target ast.Expr) bool {
	obj := rootObject(info, target)
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		name, ok := detPureCalleeName(info, call)
		if !ok || !sortFns[name] || len(call.Args) == 0 {
			return true
		}
		if rootObject(info, call.Args[0]) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// rootObject resolves the root identifier's object of a selector/
// index/star/paren chain, or nil.
func rootObject(info *types.Info, expr ast.Expr) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return info.ObjectOf(e)
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// appendTargetOutside reports whether the append call grows a slice
// rooted in a variable declared outside the range statement, so the
// accumulated order escapes the loop.
func appendTargetOutside(info *types.Info, call *ast.CallExpr, rng *ast.RangeStmt) bool {
	if len(call.Args) == 0 {
		return false
	}
	return exprRootDeclaredOutside(info, call.Args[0], rng)
}

// exprRootDeclaredOutside reports whether the root identifier of expr
// is declared outside the node span [outer.Pos(), outer.End()].
func exprRootDeclaredOutside(info *types.Info, expr ast.Expr, outer ast.Node) bool {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			obj := info.ObjectOf(e)
			if obj == nil {
				return false
			}
			return obj.Pos() < outer.Pos() || obj.Pos() > outer.End()
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return false
		}
	}
}

// checkDetPureGoroutine flags appends to shared slices inside a
// goroutine body: the interleaving decides the element order.
func checkDetPureGoroutine(pass *ProgramPass, info *types.Info, g *ast.GoStmt, n *Node, root string) {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := detPureCalleeName(info, call); ok && name == "append" &&
			len(call.Args) > 0 && exprRootDeclaredOutside(info, call.Args[0], lit) {
			// Only assignment back into the shared slice is hazardous;
			// `tmp := append(shared, ...)` inside the goroutine still
			// races but does not reorder shared itself. The append
			// call's first argument rooted outside the closure is the
			// conservative signal either way.
			pass.Report(call.Pos(), "append to a slice declared outside the goroutine in %s (reachable from %s): element order depends on goroutine scheduling; merge per-worker slices in a fixed order instead", n.ID, root)
			return false
		}
		return true
	})
}

// detPureCalleeName resolves a call to "pkg.Func", a builtin name, or
// a method name; ok is false for indirect calls. (Same contract as
// floatdet's calleeName, shared here for the ProgramPass context.)
func detPureCalleeName(info *types.Info, call *ast.CallExpr) (string, bool) {
	return calleeName(info, call)
}
