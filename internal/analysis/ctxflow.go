package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces context propagation through the solver's
// cancellable call graph (core.ExploreContext -> array.EnumerateContext
// -> worker pools, and the explore engine above them):
//
//  1. a function that accepts a context.Context must not start a new
//     root context (context.Background/TODO) in its body — pass the
//     parameter on, or cancellation silently stops at this frame;
//  2. a non-blank context.Context parameter must actually be used;
//     an ignored ctx is a cancellation leak wearing the API's
//     clothes (propagate it or rename it _);
//  3. an unconditional `for {}` loop inside a go-launched worker must
//     observe the in-scope context (select on ctx.Done() or check
//     ctx.Err()); otherwise the pool can spin on after the caller
//     gave up;
//  4. with a context in scope, a call to a context-less function F
//     whose package also exports FContext(ctx, ...) must use the
//     Context variant — F is the Background-calling compatibility
//     wrapper and severs cancellation.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "functions accepting a context.Context must propagate it; worker loops must observe cancellation",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				w := &ctxWalker{pass: pass}
				w.enterFunc(fd.Type, fd.Body, nil)
			}
		}
	}
	return nil
}

// ctxWalker walks one top-level function, tracking which context
// parameters are lexically in scope (closures inherit the enclosing
// scope) and whether the walk is inside a go-launched worker literal.
type ctxWalker struct {
	pass *Pass
}

// enterFunc checks one function (declaration or literal) and recurses
// into its body with the merged context scope.
func (w *ctxWalker) enterFunc(ftyp *ast.FuncType, body *ast.BlockStmt, outer []types.Object) {
	own := contextParams(w.pass.TypesInfo, ftyp)
	for _, obj := range own {
		if !references(w.pass.TypesInfo, body, obj) {
			w.pass.Report(obj.Pos(), "context.Context parameter %s is never used: propagate it or rename it _", obj.Name())
		}
	}
	scope := append(append([]types.Object{}, outer...), own...)
	w.walk(body, scope, false)
}

// walk visits stmts/exprs under one function body. inWorker marks
// positions inside a go-launched function literal.
func (w *ctxWalker) walk(n ast.Node, scope []types.Object, inWorker bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.enterFunc(n.Type, n.Body, scope)
			return false
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				for _, arg := range n.Call.Args {
					w.walk(arg, scope, inWorker)
				}
				own := contextParams(w.pass.TypesInfo, lit.Type)
				for _, obj := range own {
					if !references(w.pass.TypesInfo, lit.Body, obj) {
						w.pass.Report(obj.Pos(), "context.Context parameter %s is never used: propagate it or rename it _", obj.Name())
					}
				}
				w.walk(lit.Body, append(append([]types.Object{}, scope...), own...), true)
				return false
			}
		case *ast.ForStmt:
			if n.Cond == nil && inWorker && len(scope) > 0 && !referencesAny(w.pass.TypesInfo, n, scope) {
				w.pass.Report(n.Pos(), "infinite worker loop never observes the in-scope context; select on ctx.Done() or check ctx.Err() each iteration")
			}
		case *ast.CallExpr:
			if name, ok := calleeName(w.pass.TypesInfo, n); ok && len(scope) > 0 &&
				(name == "context.Background" || name == "context.TODO") {
				w.pass.Report(n.Pos(), "%s inside a function that already has a context: propagate the parameter instead of starting a new root", name)
			}
			if len(scope) > 0 {
				w.checkLostContext(n)
			}
		}
		return true
	})
}

// checkLostContext reports calls to a package-level function F from a
// context-bearing function when F's package also exports FContext
// taking a leading context.Context: calling the Background-wrapper
// variant silently severs cancellation.
func (w *ctxWalker) checkLostContext(call *ast.CallExpr) {
	var fn *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = w.pass.TypesInfo.ObjectOf(fun).(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = w.pass.TypesInfo.ObjectOf(fun.Sel).(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil || strings.HasSuffix(fn.Name(), "Context") {
		return
	}
	// The callee must not itself take a context (then it is already
	// context-aware and the ctxflow rules apply inside it).
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return
		}
	}
	alt, ok := fn.Pkg().Scope().Lookup(fn.Name() + "Context").(*types.Func)
	if !ok {
		return
	}
	altSig := alt.Type().(*types.Signature)
	if altSig.Params().Len() > 0 && isContextType(altSig.Params().At(0).Type()) {
		w.pass.Report(call.Pos(), "%s.%s discards the in-scope context: call %sContext and propagate ctx",
			fn.Pkg().Name(), fn.Name(), fn.Name())
	}
}

// contextParams returns the objects of the named, non-blank
// context.Context parameters of ftyp.
func contextParams(info *types.Info, ftyp *ast.FuncType) []types.Object {
	var out []types.Object
	if ftyp.Params == nil {
		return nil
	}
	for _, field := range ftyp.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := info.ObjectOf(name)
			if obj != nil && isContextType(obj.Type()) {
				out = append(out, obj)
			}
		}
	}
	return out
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func references(info *types.Info, n ast.Node, obj types.Object) bool {
	return referencesAny(info, n, []types.Object{obj})
}

func referencesAny(info *types.Info, n ast.Node, objs []types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				for _, o := range objs {
					if o == obj {
						found = true
						return false
					}
				}
			}
		}
		return true
	})
	return found
}
