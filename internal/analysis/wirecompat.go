package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// WireCompat turns the PR-6 runtime version tripwire into a
// compile-time one. Every type whose shape crosses a durability or
// wire boundary — the store's persisted solutionRecord, the fabric
// wire structs, core.Solution and everything those reach through
// their fields — is fingerprinted (field names, rendered types, json
// tags, declaration order) and compared against a pinned golden file,
// internal/analysis/wiredigest.json. Any drift is a finding:
//
//   - if core.ModelVersion still equals the recorded one, the change
//     silently skews persisted records and fabric peers — the exact
//     failure mode the distributed-memory literature reports — so the
//     finding demands a version bump;
//   - if ModelVersion was bumped but the golden file was not
//     regenerated, the finding demands `cactid-lint -fix-digests`.
//
// Boundary types are discovered two ways: a built-in registry of the
// repo's known crossing points (matched by package name + type name,
// so fixtures exercise the same code), plus any struct type annotated
// with a `//wire:boundary` comment on or above its declaration. The
// transitive closure over struct fields then pulls in every type a
// boundary struct embeds or references, wherever it is declared.
var WireCompat = &Analyzer{
	Name:       "wirecompat",
	Doc:        "pins the shape of every durability/wire-crossing type to a golden digest file; shape drift without a deliberate regeneration (and ModelVersion bump) is a finding",
	RunProgram: runWireCompat,
}

// wireBoundaryMarker annotates additional boundary types in source.
const wireBoundaryMarker = "//wire:boundary"

// wireRegistry names the repo's known boundary types by (package
// name, type name).
var wireRegistry = map[string][]string{
	"store":  {"solutionRecord"},
	"fabric": {"WireSolution", "WireResult", "BatchRequest", "BatchResponse"},
	"core":   {"Solution"},
}

// WireDigestDefault is the golden file's path relative to the module
// root.
const WireDigestDefault = "internal/analysis/wiredigest.json"

// wireDigestFile is the golden file schema. Fields are stored in
// declaration order, one human-readable line per field, so `git diff`
// on the file IS the shape diff; the short digest in finding messages
// is derived, never stored (nothing to fall out of sync).
type wireDigestFile struct {
	// Comment documents the regeneration workflow inside the artifact.
	Comment string `json:"_comment,omitempty"`
	// ModelVersion is core.ModelVersion at regeneration time.
	ModelVersion int `json:"model_version"`
	// Types maps "importPath.TypeName" to its recorded field lines.
	Types map[string][]string `json:"types"`
}

// wireType is one fingerprinted boundary type.
type wireType struct {
	key    string // importPath.TypeName
	pos    token.Pos
	fields []string
	pkg    *Package
}

func runWireCompat(pass *ProgramPass) error {
	prog := pass.Prog
	current, modelVersion := collectWireTypes(prog)

	path := prog.WireDigestFile
	if path == "" {
		path = filepath.Join(prog.Dir, filepath.FromSlash(WireDigestDefault))
	}
	golden, err := readWireDigests(path)
	if err != nil {
		if len(current) == 0 {
			return nil // nothing to pin in this load (pattern subset)
		}
		pos := current[0].pos
		pass.Report(pos, "golden digest file %s unreadable (%v); run `cactid-lint -fix-digests` to create it", path, err)
		return nil
	}

	versionBumped := golden.ModelVersion != modelVersion
	for _, wt := range current {
		want, ok := golden.Types[wt.key]
		if !ok {
			pass.Report(wt.pos, "wire/store type %s is not pinned in %s; run `cactid-lint -fix-digests` after reviewing the wire surface", wt.key, filepath.Base(path))
			continue
		}
		if !equalFields(want, wt.fields) {
			if versionBumped {
				pass.Report(wt.pos, "wire/store type %s changed shape (digest %s, pinned %s); the golden file is stale — run `cactid-lint -fix-digests`",
					wt.key, shortDigest(wt.fields), shortDigest(want))
			} else {
				pass.Report(wt.pos, "wire/store type %s changed shape (digest %s, pinned %s) without a core.ModelVersion/wire-version bump; persisted records and fabric peers will skew silently — bump ModelVersion, then run `cactid-lint -fix-digests`",
					wt.key, shortDigest(wt.fields), shortDigest(want))
			}
		}
	}

	// A pinned type that vanished (or lost its marker) from a package
	// we actually analyzed is drift too: deleting the annotation must
	// not silently unpin the type.
	seen := map[string]bool{}
	for _, wt := range current {
		seen[wt.key] = true
	}
	keys := make([]string, 0, len(golden.Types))
	for k := range golden.Types {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if seen[k] {
			continue
		}
		dot := strings.LastIndex(k, ".")
		if dot < 0 {
			continue
		}
		pkg := prog.Package(k[:dot])
		if pkg == nil {
			continue // that package was not in this load's patterns
		}
		pos := token.NoPos
		if len(pkg.Files) > 0 {
			pos = pkg.Files[0].Pos()
		}
		pass.Report(pos, "pinned wire/store type %s no longer exists (or lost its //wire:boundary marker); run `cactid-lint -fix-digests` if the removal is deliberate", k)
	}

	if golden.ModelVersion != modelVersion && len(current) > 0 {
		allMatch := true
		for _, wt := range current {
			if want, ok := golden.Types[wt.key]; !ok || !equalFields(want, wt.fields) {
				allMatch = false
				break
			}
		}
		if allMatch {
			pass.Report(current[0].pos, "golden digest file records model_version %d but core.ModelVersion is %d; run `cactid-lint -fix-digests` to refresh the pin", golden.ModelVersion, modelVersion)
		}
	}
	return nil
}

// collectWireTypes discovers the boundary types of prog (registry +
// //wire:boundary markers, transitively closed over struct fields)
// and returns them fingerprinted in stable key order, together with
// the program's core.ModelVersion (0 when absent).
func collectWireTypes(prog *Program) ([]wireType, int) {
	type namedDecl struct {
		pkg  *Package
		spec *ast.TypeSpec
		obj  *types.TypeName
	}
	decls := map[string]namedDecl{} // importPath.TypeName -> decl

	// Index every named type declaration in the program and collect
	// seeds from the registry and the marker comments.
	var seeds []string
	for _, pkg := range prog.Pkgs {
		if pkg.Types == nil {
			continue
		}
		registry := wireRegistry[pkg.Types.Name()]
		for _, file := range pkg.Files {
			markers := markerLines(pkg.Fset, file)
			for _, d := range file.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, s := range gd.Specs {
					ts, ok := s.(*ast.TypeSpec)
					if !ok {
						continue
					}
					obj, _ := pkg.Info.Defs[ts.Name].(*types.TypeName)
					if obj == nil {
						continue
					}
					key := pkg.ImportPath + "." + ts.Name.Name
					decls[key] = namedDecl{pkg: pkg, spec: ts, obj: obj}
					for _, want := range registry {
						if ts.Name.Name == want {
							seeds = append(seeds, key)
						}
					}
					line := pkg.Fset.Position(ts.Pos()).Line
					declLine := pkg.Fset.Position(gd.Pos()).Line
					if markers[line-1] || markers[line] || markers[declLine-1] {
						seeds = append(seeds, key)
					}
				}
			}
		}
	}

	// Transitive closure over struct fields: a field whose (possibly
	// pointer/slice/array/map-wrapped) type is a named struct declared
	// in the program joins the boundary set.
	include := map[string]bool{}
	queue := append([]string(nil), seeds...)
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		if include[key] {
			continue
		}
		d, ok := decls[key]
		if !ok {
			continue
		}
		include[key] = true
		st, ok := d.obj.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			for _, ref := range namedStructRefs(st.Field(i).Type()) {
				queue = append(queue, ref)
			}
		}
	}

	keys := make([]string, 0, len(include))
	for k := range include {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]wireType, 0, len(keys))
	for _, k := range keys {
		d := decls[k]
		out = append(out, wireType{
			key:    k,
			pos:    d.spec.Pos(),
			fields: fingerprintType(d.obj),
			pkg:    d.pkg,
		})
	}
	return out, programModelVersion(prog)
}

// markerLines returns the set of line numbers carrying a
// //wire:boundary marker in file.
func markerLines(fset *token.FileSet, file *ast.File) map[int]bool {
	out := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, wireBoundaryMarker) {
				out[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return out
}

// namedStructRefs unwraps composite types down to named types
// declared anywhere, returning their "importPath.TypeName" keys.
// Only keys present in the program's decl index survive the closure.
func namedStructRefs(t types.Type) []string {
	switch u := t.(type) {
	case *types.Pointer:
		return namedStructRefs(u.Elem())
	case *types.Slice:
		return namedStructRefs(u.Elem())
	case *types.Array:
		return namedStructRefs(u.Elem())
	case *types.Map:
		return append(namedStructRefs(u.Key()), namedStructRefs(u.Elem())...)
	case *types.Named:
		obj := u.Obj()
		if obj.Pkg() == nil {
			return nil
		}
		return []string{obj.Pkg().Path() + "." + obj.Name()}
	}
	return nil
}

// fingerprintType renders one line per field: name, fully-qualified
// type, and the raw struct tag. Non-struct named types (a wire enum,
// say) fingerprint as their underlying type's rendering.
func fingerprintType(obj *types.TypeName) []string {
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return []string{"= " + types.TypeString(obj.Type().Underlying(), qualifyFull)}
	}
	out := make([]string, 0, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		line := f.Name() + " " + types.TypeString(f.Type(), qualifyFull)
		if tag := st.Tag(i); tag != "" {
			line += " `" + tag + "`"
		}
		out = append(out, line)
	}
	return out
}

func qualifyFull(p *types.Package) string { return p.Path() }

// programModelVersion reads the core.ModelVersion constant from the
// program's package named "core"; 0 when absent (fixtures).
func programModelVersion(prog *Program) int {
	pkg := prog.PackageNamed("core")
	if pkg == nil {
		return 0
	}
	obj := pkg.Types.Scope().Lookup("ModelVersion")
	c, ok := obj.(*types.Const)
	if !ok {
		return 0
	}
	v, ok := constant.Int64Val(c.Val())
	if !ok {
		return 0
	}
	return int(v)
}

func equalFields(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// shortDigest is the compact fingerprint used in messages: the first
// 12 hex digits of the sha256 over the field lines.
func shortDigest(fields []string) string {
	h := sha256.Sum256([]byte(strings.Join(fields, "\n")))
	return fmt.Sprintf("%x", h[:6])
}

func readWireDigests(path string) (*wireDigestFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f wireDigestFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if f.Types == nil {
		f.Types = map[string][]string{}
	}
	return &f, nil
}

// WriteWireDigests regenerates the golden digest file from prog —
// the implementation of `cactid-lint -fix-digests`. It returns the
// path written.
func WriteWireDigests(prog *Program) (string, error) {
	current, modelVersion := collectWireTypes(prog)
	f := wireDigestFile{
		Comment:      "Pinned shapes of every durability/wire-crossing type (see DESIGN.md §1.3). Regenerate deliberately with `cactid-lint -fix-digests` — in a separate commit from any core.ModelVersion bump.",
		ModelVersion: modelVersion,
		Types:        make(map[string][]string, len(current)),
	}
	for _, wt := range current {
		f.Types[wt.key] = wt.fields
	}
	path := prog.WireDigestFile
	if path == "" {
		path = filepath.Join(prog.Dir, filepath.FromSlash(WireDigestDefault))
	}
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return path, err
	}
	data = append(data, '\n')
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return path, err
	}
	return path, os.WriteFile(path, data, 0o644)
}
