package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"unicode"
)

// UnitName catches silent unit bugs — the failure mode an analytical
// model is most prone to. Identifiers that carry a unit suffix
// (latencyNs, energyNJ, areaMM2, pitchNm, rOhm, ...) declare their
// dimension and scale in their name; assigning or comparing two such
// identifiers whose suffixes disagree (ns vs ps, nJ vs pJ, nm vs mm2)
// is almost always a dropped conversion factor. Multiplication and
// division are exempt: unit algebra legitimately mixes dimensions.
//
// A suffix is recognized only at a camelCase or snake_case boundary
// (latSumNS, PauseTotalNs, area_mm2), never inside a plain word, and
// only when the identifier is numeric.
var UnitName = &Analyzer{
	Name: "unitname",
	Doc:  "identifiers carrying unit suffixes must not be assigned or compared across mismatched units",
	Run:  runUnitName,
}

// unit is a recognized suffix: a dimension plus a scale within it.
type unit struct {
	dim   string
	scale string // the canonical lowercase suffix, e.g. "ns"
}

// unitSuffixes maps lowercase suffixes to their dimension. Scale
// differences within a dimension (ns vs ps) are mismatches too.
var unitSuffixes = map[string]string{
	"ns": "time", "ps": "time", "us": "time", "ms": "time",
	"hz": "frequency", "khz": "frequency", "mhz": "frequency", "ghz": "frequency",
	"ff": "capacitance", "pf": "capacitance", "nf": "capacitance", "uf": "capacitance",
	"fj": "energy", "pj": "energy", "nj": "energy", "uj": "energy", "mj": "energy",
	"ohm": "resistance", "kohm": "resistance",
	"nm": "length", "um": "length", "mm": "length",
	"nm2": "area", "um2": "area", "mm2": "area",
	"nw": "power", "uw": "power", "mw": "power", "kw": "power",
	"mv": "voltage", "uv": "voltage",
	"na": "current", "ua": "current", "ma": "current",
}

// suffixesByLen holds the suffixes longest-first so mm2 wins over mm.
var suffixesByLen = func() []string {
	out := make([]string, 0, len(unitSuffixes))
	for s := range unitSuffixes {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i] < out[j]
	})
	return out
}()

func runUnitName(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i < len(n.Rhs) && len(n.Lhs) == len(n.Rhs) {
						checkUnitPair(pass, n.Pos(), lhs, n.Rhs[i], "assigned to")
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) {
						checkUnitPair(pass, n.Pos(), name, n.Values[i], "assigned to")
					}
				}
			case *ast.BinaryExpr:
				switch n.Op {
				case token.ADD, token.SUB, token.EQL, token.NEQ,
					token.LSS, token.GTR, token.LEQ, token.GEQ:
					checkUnitPair(pass, n.Pos(), n.X, n.Y, n.Op.String()+"-combined with")
				}
			}
			return true
		})
	}
	return nil
}

// checkUnitPair reports when both expressions resolve to unit-carrying
// numeric identifiers whose units disagree.
func checkUnitPair(pass *Pass, pos token.Pos, a, b ast.Expr, verb string) {
	ua, na, ok := exprUnit(pass, a)
	if !ok {
		return
	}
	ub, nb, ok := exprUnit(pass, b)
	if !ok {
		return
	}
	if ua == ub {
		return
	}
	if ua.dim != ub.dim {
		pass.Report(pos, "%s (%s) %s %s (%s): mismatched dimensions", nb, ub.dim, verb, na, ua.dim)
		return
	}
	pass.Report(pos, "%s (%s) %s %s (%s): same dimension, mismatched scales — missing conversion factor?",
		nb, ub.scale, verb, na, ua.scale)
}

// exprUnit resolves an identifier or selector to its unit suffix.
func exprUnit(pass *Pass, e ast.Expr) (unit, string, bool) {
	var name string
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	default:
		return unit{}, "", false
	}
	if !isNumeric(pass.TypesInfo.TypeOf(e)) {
		return unit{}, "", false
	}
	u, ok := nameUnit(name)
	return u, name, ok
}

func isNumeric(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

// nameUnit extracts a unit suffix from an identifier name. The suffix
// must start at a word boundary: an uppercase rune following a
// non-uppercase rune, or the character after an underscore, and must
// not be the whole name.
func nameUnit(name string) (unit, bool) {
	lower := strings.ToLower(name)
	for _, s := range suffixesByLen {
		if len(name) <= len(s) || !strings.HasSuffix(lower, s) {
			continue
		}
		i := len(name) - len(s)
		if name[i-1] == '_' {
			return unit{dim: unitSuffixes[s], scale: s}, true
		}
		first := rune(name[i])
		prev := rune(name[i-1])
		if unicode.IsUpper(first) && !unicode.IsUpper(prev) {
			return unit{dim: unitSuffixes[s], scale: s}, true
		}
		// Lowercase suffix ending an acronym run: tRCDns, CASps. The
		// suffix must be all-lowercase in the original spelling, so
		// plural acronyms (RAMs, CPUs) stay words.
		if unicode.IsLower(first) && unicode.IsUpper(prev) && name[i:] == s {
			return unit{dim: unitSuffixes[s], scale: s}, true
		}
		// All-caps tail after a lowercase run: latSumNS, DynReadNJ.
		if unicode.IsUpper(first) && unicode.IsUpper(prev) {
			// Walk back: the suffix must be exactly the trailing
			// uppercase/digit run, e.g. NS in latSumNS — but not a
			// fragment of a longer acronym.
			j := i
			for j > 0 && (unicode.IsUpper(rune(name[j-1])) || unicode.IsDigit(rune(name[j-1]))) {
				j--
			}
			if j == i {
				return unit{dim: unitSuffixes[s], scale: s}, true
			}
		}
		return unit{}, false
	}
	return unit{}, false
}
