// Package chaos provides deterministic, seed-driven fault injection
// for the exploration engine and its HTTP server. Production code is
// instrumented with named injection points; a test (or a soak rig)
// arms an Injector with per-point fault rules and a seed, and the
// instrumented paths then observe forced cancellations, added
// latency, panics, and cache-miss storms on a reproducible schedule.
//
// When no Injector is armed the hooks are nil-receiver no-ops: a
// single nil check and an immediate return, so the instrumented hot
// paths pay nothing in production builds.
//
// Determinism: each point keeps an arm counter; the decision for arm
// n of point p under rule lane l is a pure function of
// (seed, p, l, n) via a splitmix64 hash. Two runs that arm a point
// the same number of times therefore observe the same multiset of
// injected faults, regardless of goroutine interleaving.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Point names one instrumented site. The catalog below is the
// complete set of named injection points; DESIGN.md §1.4 documents
// what each one can force.
type Point string

const (
	// ExploreWorker arms in the sweep worker pool, once per job
	// before the job is solved (internal/explore.Engine.Sweep).
	ExploreWorker Point = "explore.worker"
	// ExploreSolve arms on the solver call path, after the cache
	// admitted a miss and before the solver runs
	// (internal/explore.Engine.solve).
	ExploreSolve Point = "explore.solve"
	// CacheLookup arms on result-cache hits; a Miss fault drops the
	// completed entry and forces a recompute (a cache-miss storm).
	CacheLookup Point = "explore.cache.lookup"
	// ServeAdmit arms in the cactid-serve admission gate, before a
	// request waits for a slot; a Cancel fault sheds the request.
	ServeAdmit Point = "serve.admit"
	// ServeHandler arms inside the gated handler, after admission
	// and deadline setup, before the endpoint logic runs.
	ServeHandler Point = "serve.handler"
	// StoreGet arms on every durable-store read (internal/store), a
	// tier-1 lookup after a tier-0 miss. A Cancel fault surfaces as a
	// read error the engine must absorb as a miss; a Miss fault makes
	// the store report the key absent.
	StoreGet Point = "store.get"
	// StorePut arms before a durable-store append. A Cancel fault
	// drops the write: the result stays correct but unpersisted, and
	// the caller must carry on.
	StorePut Point = "store.put"
	// StoreRecover arms once per store.Open, before segment recovery.
	// Injected faults are absorbed into the recovery counters —
	// recovery is best-effort by contract and must always yield a
	// usable store.
	StoreRecover Point = "store.recover"
	// FabricDispatch arms in the sweep coordinator before each chunk
	// RPC to a worker (internal/fabric). A Cancel fault is absorbed as
	// a transport failure: the chunk is rerouted to another healthy
	// worker, never lost and never solved twice.
	FabricDispatch Point = "fabric.dispatch"
	// FabricSteal arms when an idle coordinator runner is about to
	// steal a queued chunk from a straggling worker's queue. A Cancel
	// fault abandons that steal attempt; the chunk stays with its
	// owner.
	FabricSteal Point = "fabric.steal"
)

// Points lists every named injection point, in catalog order.
func Points() []Point {
	return []Point{ExploreWorker, ExploreSolve, CacheLookup, ServeAdmit, ServeHandler,
		StoreGet, StorePut, StoreRecover, FabricDispatch, FabricSteal}
}

// Fault is the kind of failure a rule injects.
type Fault uint8

const (
	// Cancel makes Inject return an error satisfying
	// errors.Is(err, context.Canceled) — a forced cancellation.
	Cancel Fault = iota
	// Latency makes Inject sleep for the rule's Latency (or until
	// the context is done, whichever is first).
	Latency
	// Panic makes Inject panic with a PanicValue. The instrumented
	// layer is expected to recover and convert it to an error.
	Panic
	// Miss makes ForceMiss report true: the caller should treat a
	// cache hit as a miss.
	Miss
	nFaults
)

func (f Fault) String() string {
	switch f {
	case Cancel:
		return "cancel"
	case Latency:
		return "latency"
	case Panic:
		return "panic"
	case Miss:
		return "miss"
	}
	return fmt.Sprintf("fault(%d)", uint8(f))
}

// Rule arms one fault at one point with a firing rate.
type Rule struct {
	Point Point
	Fault Fault
	// Rate is the per-arm firing probability in [0, 1]. The decision
	// is deterministic per arm index (see the package comment), so a
	// Rate of 1 fires on every arm and 0 never fires.
	Rate float64
	// Latency is the injected delay for Latency faults.
	Latency time.Duration
}

// ErrInjected marks every chaos-injected cancellation, so layers can
// distinguish forced faults from organic ones in logs and tests.
var ErrInjected = errors.New("chaos: injected fault")

// PanicValue is the value a Panic fault panics with.
type PanicValue struct {
	Point Point
	Arm   int64 // the arm index that fired
}

func (p PanicValue) String() string {
	return fmt.Sprintf("chaos: injected panic at %s (arm %d)", p.Point, p.Arm)
}

// PointStats is a snapshot of one point's counters.
type PointStats struct {
	Armed     int64 `json:"armed"` // times the point was reached
	Cancels   int64 `json:"cancels"`
	Latencies int64 `json:"latencies"`
	Panics    int64 `json:"panics"`
	Misses    int64 `json:"misses"`
}

// Fired returns the total number of injected faults at the point.
func (s PointStats) Fired() int64 { return s.Cancels + s.Latencies + s.Panics + s.Misses }

type pointState struct {
	armed atomic.Int64
	fired [nFaults]atomic.Int64
	rules []Rule // immutable after New
}

// Injector injects faults according to its rules. All methods are
// safe for concurrent use, and safe on a nil receiver (no-ops).
type Injector struct {
	seed   uint64
	points map[Point]*pointState // immutable after New
}

// New builds an Injector from a seed and a rule set. Multiple rules
// may arm the same point; each occupies its own decision lane, in the
// order given.
func New(seed uint64, rules ...Rule) *Injector {
	in := &Injector{seed: seed, points: make(map[Point]*pointState)}
	for _, r := range rules {
		st := in.points[r.Point]
		if st == nil {
			st = &pointState{}
			in.points[r.Point] = st
		}
		st.rules = append(st.rules, r)
	}
	return in
}

// Enabled reports whether the injector is armed at all.
func (in *Injector) Enabled() bool { return in != nil && len(in.points) > 0 }

// splitmix64 is the decision hash: deterministic, well-mixed, cheap.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// fires decides rule lane l at arm n of point p.
func (in *Injector) fires(p Point, l int, n int64, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	r := splitmix64(in.seed ^ fnv64(string(p)) ^ uint64(n)<<8 ^ uint64(l))
	return float64(r>>11)/(1<<53) < rate
}

// Inject arms the point: depending on the armed rules it may sleep
// (Latency), panic (Panic), or return a cancellation error (Cancel).
// A nil Injector, or a point with no rules, returns nil immediately.
// Rules are evaluated in order; the first Cancel or Panic that fires
// ends the call, while latencies accumulate before it.
func (in *Injector) Inject(ctx context.Context, p Point) error {
	if in == nil {
		return nil
	}
	st := in.points[p]
	if st == nil {
		return nil
	}
	n := st.armed.Add(1)
	for l, r := range st.rules {
		if r.Fault == Miss || !in.fires(p, l, n, r.Rate) {
			continue
		}
		switch r.Fault {
		case Latency:
			st.fired[Latency].Add(1)
			if err := sleep(ctx, r.Latency); err != nil {
				return err
			}
		case Cancel:
			st.fired[Cancel].Add(1)
			return fmt.Errorf("%w: cancel at %s (arm %d): %w", ErrInjected, p, n, context.Canceled)
		case Panic:
			st.fired[Panic].Add(1)
			panic(PanicValue{Point: p, Arm: n})
		}
	}
	return nil
}

// ForceMiss arms the point and reports whether a Miss fault fired:
// the caller should treat its cache hit as a miss. Non-Miss rules at
// the point are ignored here.
func (in *Injector) ForceMiss(p Point) bool {
	if in == nil {
		return false
	}
	st := in.points[p]
	if st == nil {
		return false
	}
	n := st.armed.Add(1)
	for l, r := range st.rules {
		if r.Fault == Miss && in.fires(p, l, n, r.Rate) {
			st.fired[Miss].Add(1)
			return true
		}
	}
	return false
}

// sleep waits for d or until ctx is done.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Snapshot returns the per-point counters for every armed point. A
// nil Injector returns nil.
func (in *Injector) Snapshot() map[Point]PointStats {
	if in == nil {
		return nil
	}
	out := make(map[Point]PointStats, len(in.points))
	for p, st := range in.points {
		out[p] = PointStats{
			Armed:     st.armed.Load(),
			Cancels:   st.fired[Cancel].Load(),
			Latencies: st.fired[Latency].Load(),
			Panics:    st.fired[Panic].Load(),
			Misses:    st.fired[Miss].Load(),
		}
	}
	return out
}
