package chaos

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if in.Enabled() {
		t.Error("nil injector reports enabled")
	}
	if err := in.Inject(context.Background(), ExploreSolve); err != nil {
		t.Errorf("nil Inject = %v", err)
	}
	if in.ForceMiss(CacheLookup) {
		t.Error("nil ForceMiss fired")
	}
	if in.Snapshot() != nil {
		t.Error("nil Snapshot not nil")
	}
}

func TestUnarmedPointIsNoOp(t *testing.T) {
	in := New(1, Rule{Point: ExploreSolve, Fault: Cancel, Rate: 1})
	if err := in.Inject(context.Background(), ServeHandler); err != nil {
		t.Errorf("unarmed point injected: %v", err)
	}
	if got := in.Snapshot()[ServeHandler]; got.Armed != 0 {
		t.Errorf("unarmed point counted arms: %+v", got)
	}
}

func TestCancelWrapsCanceledAndErrInjected(t *testing.T) {
	in := New(7, Rule{Point: ExploreSolve, Fault: Cancel, Rate: 1})
	err := in.Inject(context.Background(), ExploreSolve)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v does not wrap context.Canceled", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err %v does not wrap ErrInjected", err)
	}
	st := in.Snapshot()[ExploreSolve]
	if st.Armed != 1 || st.Cancels != 1 || st.Fired() != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPanicCarriesPointAndArm(t *testing.T) {
	in := New(7, Rule{Point: ExploreWorker, Fault: Panic, Rate: 1})
	defer func() {
		v := recover()
		pv, ok := v.(PanicValue)
		if !ok || pv.Point != ExploreWorker || pv.Arm != 1 {
			t.Fatalf("recovered %#v", v)
		}
		if in.Snapshot()[ExploreWorker].Panics != 1 {
			t.Error("panic not counted")
		}
	}()
	in.Inject(context.Background(), ExploreWorker)
	t.Fatal("injected panic did not fire")
}

func TestLatencyDelaysAndHonorsContext(t *testing.T) {
	in := New(7, Rule{Point: ServeHandler, Fault: Latency, Rate: 1, Latency: 30 * time.Millisecond})
	start := time.Now()
	if err := in.Inject(context.Background(), ServeHandler); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("latency injection slept only %v", d)
	}
	// A cancelled context cuts the sleep short.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start = time.Now()
	if err := in.Inject(ctx, ServeHandler); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled-latency err = %v", err)
	}
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Errorf("cancelled latency still slept %v", d)
	}
	if got := in.Snapshot()[ServeHandler].Latencies; got != 2 {
		t.Errorf("latencies fired %d, want 2", got)
	}
}

func TestForceMissOnlyFiresMissRules(t *testing.T) {
	in := New(3,
		Rule{Point: CacheLookup, Fault: Miss, Rate: 1},
		Rule{Point: CacheLookup, Fault: Cancel, Rate: 1})
	if !in.ForceMiss(CacheLookup) {
		t.Fatal("miss rule at rate 1 did not fire")
	}
	st := in.Snapshot()[CacheLookup]
	if st.Misses != 1 || st.Cancels != 0 {
		t.Fatalf("ForceMiss fired non-miss rules: %+v", st)
	}
	// Inject, conversely, ignores Miss rules.
	if err := in.Inject(context.Background(), CacheLookup); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel rule did not fire via Inject: %v", err)
	}
	if in.Snapshot()[CacheLookup].Misses != 1 {
		t.Error("Inject fired a Miss rule")
	}
}

// TestDeterministicSchedule: the same seed and arm count produce the
// same fault schedule; a different seed produces a different one.
func TestDeterministicSchedule(t *testing.T) {
	const arms = 2048
	run := func(seed uint64) (fired int64, pattern []bool) {
		in := New(seed, Rule{Point: ExploreSolve, Fault: Cancel, Rate: 0.3})
		pattern = make([]bool, arms)
		for i := 0; i < arms; i++ {
			pattern[i] = in.Inject(context.Background(), ExploreSolve) != nil
		}
		return in.Snapshot()[ExploreSolve].Cancels, pattern
	}
	f1, p1 := run(42)
	f2, p2 := run(42)
	if f1 != f2 {
		t.Fatalf("same seed fired %d vs %d faults", f1, f2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("same seed diverged at arm %d", i)
		}
	}
	// The empirical rate should be near 0.3.
	if r := float64(f1) / arms; r < 0.2 || r > 0.4 {
		t.Errorf("empirical rate %.3f far from 0.3", r)
	}
	f3, p3 := run(43)
	same := true
	for i := range p1 {
		if p1[i] != p3[i] {
			same = false
			break
		}
	}
	if same && f1 == f3 {
		t.Error("different seeds produced identical schedules")
	}
}

func TestRateZeroNeverFiresRateOneAlwaysFires(t *testing.T) {
	in := New(9,
		Rule{Point: ExploreWorker, Fault: Cancel, Rate: 0},
		Rule{Point: ExploreSolve, Fault: Cancel, Rate: 1})
	for i := 0; i < 100; i++ {
		if err := in.Inject(context.Background(), ExploreWorker); err != nil {
			t.Fatal("rate-0 rule fired")
		}
		if err := in.Inject(context.Background(), ExploreSolve); err == nil {
			t.Fatal("rate-1 rule missed")
		}
	}
}

// TestConcurrentArming: the counters stay consistent under -race and
// the total fired count is deterministic for a fixed arm count even
// when arms race (the multiset of decisions depends only on indices).
func TestConcurrentArming(t *testing.T) {
	const workers, perWorker = 8, 250
	run := func() int64 {
		in := New(11, Rule{Point: ServeAdmit, Fault: Cancel, Rate: 0.5})
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					in.Inject(context.Background(), ServeAdmit)
				}
			}()
		}
		wg.Wait()
		st := in.Snapshot()[ServeAdmit]
		if st.Armed != workers*perWorker {
			t.Errorf("armed %d, want %d", st.Armed, workers*perWorker)
		}
		return st.Cancels
	}
	if a, b := run(), run(); a != b {
		t.Errorf("concurrent schedules fired %d vs %d faults", a, b)
	}
}

func TestPointsCatalog(t *testing.T) {
	pts := Points()
	if len(pts) != 10 {
		t.Fatalf("catalog has %d points", len(pts))
	}
	seen := map[Point]bool{}
	for _, p := range pts {
		if p == "" || seen[p] {
			t.Fatalf("bad catalog entry %q", p)
		}
		seen[p] = true
	}
}

func TestFaultStrings(t *testing.T) {
	for f, want := range map[Fault]string{Cancel: "cancel", Latency: "latency", Panic: "panic", Miss: "miss"} {
		if f.String() != want {
			t.Errorf("Fault(%d).String() = %q, want %q", f, f, want)
		}
	}
}
