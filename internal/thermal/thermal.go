// Package thermal is a steady-state thermal model of the two-die
// stack in the LLC study, standing in for the HotSpot tool the paper
// uses (Section 4.3). It solves a resistive grid: each die is divided
// into blocks with given power densities; heat flows vertically
// through the dies, the thermal interface, the heat spreader and sink,
// and laterally between neighboring blocks. The paper's observation —
// the maximum temperature difference between L3 technologies is below
// 1.5 K because even the SRAM L3 burns under ~450 mW per bank — is the
// behaviour this model reproduces.
package thermal

import (
	"errors"
	"math"
)

// Layer describes one die (or interposer) in the stack.
type Layer struct {
	Name         string
	Thickness    float64 // m
	Conductivity float64 // W/(m*K), vertical (silicon ~ 120-150)
	// Power is the dissipated power per block (W); all layers must
	// use the same block grid.
	Power []float64
}

// StackConfig describes the whole package.
type StackConfig struct {
	BlocksX, BlocksY int
	BlockW, BlockH   float64 // m
	Layers           []Layer // ordered from heat sink side (bottom) up
	// SinkResistance is the package+heatsink thermal resistance from
	// the bottom layer to ambient (K*m^2/W per unit area).
	SinkResistance float64
	Ambient        float64 // K
}

// Result holds per-layer block temperatures.
type Result struct {
	Temps [][]float64 // [layer][block] K
}

// Max returns the maximum temperature of one layer.
func (r *Result) Max(layer int) float64 {
	m := math.Inf(-1)
	for _, t := range r.Temps[layer] {
		if t > m {
			m = t
		}
	}
	return m
}

// MaxOverall returns the hottest block in the stack.
func (r *Result) MaxOverall() float64 {
	m := math.Inf(-1)
	for l := range r.Temps {
		if v := r.Max(l); v > m {
			m = v
		}
	}
	return m
}

// Solve computes the steady-state temperature field with Gauss-Seidel
// iteration over the thermal resistance network.
func Solve(cfg StackConfig) (*Result, error) {
	nb := cfg.BlocksX * cfg.BlocksY
	if nb <= 0 || len(cfg.Layers) == 0 {
		return nil, errors.New("thermal: empty configuration")
	}
	for _, l := range cfg.Layers {
		if len(l.Power) != nb {
			return nil, errors.New("thermal: power grid size mismatch")
		}
	}
	nl := len(cfg.Layers)
	area := cfg.BlockW * cfg.BlockH

	// Vertical conductances.
	// sinkG: block to ambient through the sink.
	sinkG := area / cfg.SinkResistance
	// interG[l]: between layer l and l+1 (series of half-thicknesses).
	interG := make([]float64, nl-1)
	for l := 0; l+1 < nl; l++ {
		r1 := cfg.Layers[l].Thickness / 2 / (cfg.Layers[l].Conductivity * area)
		r2 := cfg.Layers[l+1].Thickness / 2 / (cfg.Layers[l+1].Conductivity * area)
		// Include a bonding/TSV interface resistance.
		rIf := 2e-6 / (1.0 * area) // 2um of ~1 W/mK interface material
		interG[l] = 1 / (r1 + r2 + rIf)
	}
	// Lateral conductances within a layer.
	latGx := make([]float64, nl)
	latGy := make([]float64, nl)
	for l := range cfg.Layers {
		k := cfg.Layers[l].Conductivity
		th := cfg.Layers[l].Thickness
		latGx[l] = k * th * cfg.BlockH / cfg.BlockW
		latGy[l] = k * th * cfg.BlockW / cfg.BlockH
	}

	temps := make([][]float64, nl)
	for l := range temps {
		temps[l] = make([]float64, nb)
		for i := range temps[l] {
			temps[l][i] = cfg.Ambient
		}
	}
	idx := func(x, y int) int { return y*cfg.BlocksX + x }

	for iter := 0; iter < 20000; iter++ {
		var maxDelta float64
		for l := 0; l < nl; l++ {
			for y := 0; y < cfg.BlocksY; y++ {
				for x := 0; x < cfg.BlocksX; x++ {
					i := idx(x, y)
					gSum := 0.0
					flux := cfg.Layers[l].Power[i]
					if l == 0 {
						gSum += sinkG
						flux += sinkG * cfg.Ambient
					}
					if l > 0 {
						gSum += interG[l-1]
						flux += interG[l-1] * temps[l-1][i]
					}
					if l+1 < nl {
						gSum += interG[l]
						flux += interG[l] * temps[l+1][i]
					}
					if x > 0 {
						gSum += latGx[l]
						flux += latGx[l] * temps[l][idx(x-1, y)]
					}
					if x+1 < cfg.BlocksX {
						gSum += latGx[l]
						flux += latGx[l] * temps[l][idx(x+1, y)]
					}
					if y > 0 {
						gSum += latGy[l]
						flux += latGy[l] * temps[l][idx(x, y-1)]
					}
					if y+1 < cfg.BlocksY {
						gSum += latGy[l]
						flux += latGy[l] * temps[l][idx(x, y+1)]
					}
					next := flux / gSum
					if d := math.Abs(next - temps[l][i]); d > maxDelta {
						maxDelta = d
					}
					temps[l][i] = next
				}
			}
		}
		if maxDelta < 1e-7 {
			break
		}
	}
	return &Result{Temps: temps}, nil
}

// StackedLLC builds the study's two-die stack: an 8-core die (bottom,
// toward the sink) topped by the 8-bank L3 die, as a 4x2 block grid
// per die. corePowerW is the total core-die power; l3PowerPerBankW is
// the per-bank L3 power (leakage + refresh + dynamic share).
func StackedLLC(corePowerW, l3PowerPerBankW float64) StackConfig {
	const bx, by = 4, 2
	nb := bx * by
	corePower := make([]float64, nb)
	l3Power := make([]float64, nb)
	for i := 0; i < nb; i++ {
		corePower[i] = corePowerW / float64(nb)
		l3Power[i] = l3PowerPerBankW
	}
	return StackConfig{
		BlocksX: bx, BlocksY: by,
		BlockW: 2.5e-3, BlockH: 2.5e-3,
		Layers: []Layer{
			{Name: "core-die", Thickness: 150e-6, Conductivity: 130, Power: corePower},
			{Name: "l3-die", Thickness: 100e-6, Conductivity: 130, Power: l3Power},
		},
		SinkResistance: 1.5e-5, // K*m^2/W: ~0.3 K/W for the 50mm^2 die
		Ambient:        318,    // 45C case ambient
	}
}
