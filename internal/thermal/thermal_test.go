package thermal

import (
	"math"
	"testing"
)

func TestSolveBasic(t *testing.T) {
	cfg := StackedLLC(22.3, 0.45)
	r, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.MaxOverall(); got <= cfg.Ambient || got > cfg.Ambient+80 {
		t.Fatalf("max temperature %.1fK implausible (ambient %.1fK)", got, cfg.Ambient)
	}
	// The L3 die (farther from the sink) must be at least as hot as
	// its own contribution implies, and hotter than ambient.
	if r.Max(1) < r.Max(0)-1 {
		t.Errorf("stacked die should not be much cooler than the core die: %.2f vs %.2f", r.Max(1), r.Max(0))
	}
}

func TestDeltaAcrossL3Technologies(t *testing.T) {
	// The paper: max power per L3 bank is ~450mW (SRAM with sleep
	// transistors); COMM-DRAM banks burn a few mW. The temperature
	// difference across technologies is under 1.5K.
	hot, err1 := Solve(StackedLLC(22.3, 0.45))
	cold, err2 := Solve(StackedLLC(22.3, 0.005))
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	delta := hot.MaxOverall() - cold.MaxOverall()
	if delta <= 0 {
		t.Fatalf("hotter L3 must raise the stack temperature (delta=%.3f)", delta)
	}
	if delta > 1.5 {
		t.Errorf("delta %.2fK exceeds the paper's <1.5K observation", delta)
	}
}

func TestPowerRaisesTemperature(t *testing.T) {
	lo, _ := Solve(StackedLLC(10, 0.1))
	hi, _ := Solve(StackedLLC(40, 0.1))
	if hi.MaxOverall() <= lo.MaxOverall() {
		t.Error("4x core power should raise temperature")
	}
}

func TestErrors(t *testing.T) {
	if _, err := Solve(StackConfig{}); err == nil {
		t.Error("empty config should fail")
	}
	bad := StackedLLC(20, 0.4)
	bad.Layers[0].Power = bad.Layers[0].Power[:3]
	if _, err := Solve(bad); err == nil {
		t.Error("grid mismatch should fail")
	}
}

func TestZeroPowerIsAmbient(t *testing.T) {
	cfg := StackedLLC(0, 0)
	r, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.MaxOverall()-cfg.Ambient) > 0.01 {
		t.Errorf("zero power should settle at ambient, got %.2f", r.MaxOverall())
	}
}

func TestThreeLayerStack(t *testing.T) {
	// Generic capability: a 3-die stack (core + two memory dies).
	base := StackedLLC(22.3, 0.2)
	mem2 := make([]float64, len(base.Layers[1].Power))
	for i := range mem2 {
		mem2[i] = 0.05
	}
	base.Layers = append(base.Layers, Layer{
		Name: "mem2-die", Thickness: 100e-6, Conductivity: 130, Power: mem2,
	})
	r, err := Solve(base)
	if err != nil {
		t.Fatal(err)
	}
	// The farthest die from the sink runs hottest or equal.
	if r.Max(2) < r.Max(0)-0.5 {
		t.Errorf("top die %.2fK much cooler than bottom %.2fK", r.Max(2), r.Max(0))
	}
	if r.MaxOverall() <= base.Ambient {
		t.Error("powered stack must sit above ambient")
	}
}

func TestLateralSpreading(t *testing.T) {
	// A single hot block must heat its neighbors: the spatial
	// temperature spread stays bounded by lateral conduction.
	cfg := StackedLLC(0, 0)
	cfg.Layers[0].Power[0] = 10 // one hot corner block
	r, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hot := r.Temps[0][0]
	neighbor := r.Temps[0][1]
	far := r.Temps[0][len(r.Temps[0])-1]
	if !(hot > neighbor && neighbor > far) {
		t.Errorf("temperature field not decaying: %.2f / %.2f / %.2f", hot, neighbor, far)
	}
	if far <= cfg.Ambient {
		t.Error("heat must spread to the far corner")
	}
}
