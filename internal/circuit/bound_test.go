package circuit

import (
	"math"
	"testing"
	"testing/quick"

	"cactid/internal/tech"
)

// The repeated-wire delay floor underpins the solver's branch-and-bound
// pruning (internal/array): an inadmissible bound would silently change
// solver output. Check delay >= max(fixed+lin*L, rate*L) across random
// lengths and slacks.
func TestRepeatedWireDelayLBAdmissible(t *testing.T) {
	d := dev32()
	w := t32().Wire(tech.WireGlobal)
	f := func(lenU uint16, slackU uint8) bool {
		length := 1e-6 + float64(lenU)*1e-7 // 1um .. ~6.6mm
		slack := float64(slackU%5) * 0.25   // 0 .. 1.0
		fixed, lin, rate := RepeatedWireDelayLBParts(d, w, slack)
		lb := math.Max(fixed+lin*length, rate*length)
		return lb <= NewRepeatedWire(d, w, length, slack).Res.Delay
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRepeatedWireDelayLBParts(t *testing.T) {
	d := dev32()
	w := t32().Wire(tech.WireGlobal)
	fixed, lin, rate := RepeatedWireDelayLBParts(d, w, 0)
	if fixed <= 0 || lin <= 0 || rate <= 0 {
		t.Fatalf("parts must be positive: fixed=%g lin=%g rate=%g", fixed, lin, rate)
	}
	if rate <= lin {
		t.Errorf("rate %g should exceed lin %g (it adds the AM-GM repeater term)", rate, lin)
	}
	if RepeatedWireDelayLB(d, w, 0) != rate {
		t.Error("RepeatedWireDelayLB must return the per-meter rate branch")
	}
}
