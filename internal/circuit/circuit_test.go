package circuit

import (
	"math"
	"testing"
	"testing/quick"

	"cactid/internal/tech"
)

func dev32() *tech.DeviceParams { return tech.New(tech.Node32).Device(tech.HP) }
func t32() *tech.Technology     { return tech.New(tech.Node32) }

func TestHorowitzStepInput(t *testing.T) {
	// With a step input, delay reduces to tf*|ln(vs)|.
	tf, vs := 10e-12, 0.3
	got := Horowitz(0, tf, vs)
	want := tf * math.Abs(math.Log(vs))
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("Horowitz step = %g, want %g", got, want)
	}
}

func TestHorowitzRampSlower(t *testing.T) {
	tf, vs := 10e-12, 0.3
	step := Horowitz(0, tf, vs)
	ramp := Horowitz(20e-12, tf, vs)
	if ramp <= step {
		t.Errorf("ramp input delay %g should exceed step delay %g", ramp, step)
	}
}

func TestHorowitzMonotoneInTf(t *testing.T) {
	f := func(a, b uint16) bool {
		tf1 := 1e-12 * (1 + float64(a%1000))
		tf2 := tf1 * (1 + float64(b%100)/10)
		return Horowitz(5e-12, tf2, 0.3) >= Horowitz(5e-12, tf1, 0.3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInverterBasics(t *testing.T) {
	d := dev32()
	inv := NewInverter(d, 10*d.Lphy)
	if inv.Wp != 2*inv.Wn {
		t.Fatalf("beta ratio: Wp=%g Wn=%g", inv.Wp, inv.Wn)
	}
	if inv.InputCap() <= 0 || inv.SelfCap() <= 0 || inv.DriveRes() <= 0 {
		t.Fatal("non-positive inverter parasitics")
	}
	// Bigger inverter: more cap, less resistance.
	big := NewInverter(d, 20*d.Lphy)
	if big.InputCap() <= inv.InputCap() || big.DriveRes() >= inv.DriveRes() {
		t.Error("scaling violated")
	}
	// Delay grows with load.
	if inv.Delay(2e-15, 0) >= inv.Delay(20e-15, 0) {
		t.Error("delay not monotone in load")
	}
	if inv.Leakage() <= 0 || inv.Area() <= 0 {
		t.Error("leakage/area must be positive")
	}
	if e := inv.SwitchEnergy(1e-15); e <= 0 {
		t.Error("switch energy must be positive")
	}
}

func TestInverterLeakageTracksDevice(t *testing.T) {
	hp := tech.New(tech.Node32).Device(tech.HP)
	lstp := tech.New(tech.Node32).Device(tech.LSTP)
	w := 10 * hp.Lphy
	lHP := NewInverter(hp, w).Leakage()
	lLSTP := NewInverter(lstp, w).Leakage()
	if lLSTP >= lHP/100 {
		t.Errorf("LSTP inverter leakage %g should be orders below HP %g", lLSTP, lHP)
	}
}

func TestOptimalChainStages(t *testing.T) {
	d := dev32()
	cin := 3 * (d.CgIdealPerWidth + d.CFringePerWidth) * 6 * d.Lphy
	small := OptimalChain(d, cin, cin*2, 1)
	big := OptimalChain(d, cin, cin*1000, 1)
	if small.NumStage < 1 || big.NumStage <= small.NumStage {
		t.Errorf("stage counts: small=%d big=%d", small.NumStage, big.NumStage)
	}
	if big.Res.Delay <= small.Res.Delay {
		t.Error("driving a larger load should take longer")
	}
	if big.Res.Energy <= small.Res.Energy {
		t.Error("driving a larger load should take more energy")
	}
}

func TestOptimalChainDelayNearLogarithmic(t *testing.T) {
	// Logical effort: delay should grow roughly with log(load), far
	// slower than linearly.
	d := dev32()
	cin := 3 * (d.CgIdealPerWidth + d.CFringePerWidth) * 6 * d.Lphy
	d1 := OptimalChain(d, cin, cin*16, 1).Res.Delay
	d2 := OptimalChain(d, cin, cin*256, 1).Res.Delay
	if d2 > 4*d1 {
		t.Errorf("chain delay grew too fast: %g -> %g for 16x load", d1, d2)
	}
}

func TestGateAreaFolding(t *testing.T) {
	d := dev32()
	pitch := 20 * d.Lphy
	narrow := GateArea(d, []float64{8 * d.Lphy}, pitch)
	wide := GateArea(d, []float64{200 * d.Lphy}, pitch)
	if wide <= narrow {
		t.Error("wider transistor must occupy more area")
	}
	// Under a pitch constraint, a wide device folds: area grows
	// roughly linearly with width, not quadratically.
	ratio := wide / narrow
	if ratio < 5 || ratio > 50 {
		t.Errorf("folding ratio %g out of plausible band for 25x width", ratio)
	}
	if GateArea(d, nil, pitch) != 0 {
		t.Error("no transistors -> zero area")
	}
}

func TestGateAreaPitchSensitivity(t *testing.T) {
	// The same transistor folded to a tight DRAM-cell pitch takes a
	// different (generally larger) footprint than unconstrained.
	d := dev32()
	w := []float64{100 * d.Lphy}
	tight := GateArea(d, w, 4*32e-9) // 4F pitch
	free := GateArea(d, w, 0)
	if tight <= 0 || free <= 0 {
		t.Fatal("areas must be positive")
	}
	if tight == free {
		t.Error("pitch constraint should change the layout area")
	}
}

func TestRepeatedWireScaling(t *testing.T) {
	d := dev32()
	w := t32().Wire(tech.WireGlobal)
	short := NewRepeatedWire(d, w, 100e-6, 0)
	long := NewRepeatedWire(d, w, 4000e-6, 0)
	if long.Res.Delay <= short.Res.Delay {
		t.Error("longer wire should be slower")
	}
	if long.NumRep <= short.NumRep {
		t.Error("longer wire should need more repeaters")
	}
	// Repeated wire delay is linear in length: 40x length should be
	// roughly 40x the delay (within 3x band given discretization).
	r := long.Res.Delay / short.Res.Delay
	if r < 10 || r > 120 {
		t.Errorf("delay ratio %g not near-linear for 40x length", r)
	}
}

func TestRepeatedWireSlackTradesDelayForEnergy(t *testing.T) {
	d := dev32()
	w := t32().Wire(tech.WireGlobal)
	opt := NewRepeatedWire(d, w, 2000e-6, 0)
	relaxed := NewRepeatedWire(d, w, 2000e-6, 0.5)
	if relaxed.Res.Delay <= opt.Res.Delay {
		t.Error("slack should increase delay")
	}
	if relaxed.Res.Energy >= opt.Res.Energy {
		t.Error("slack should reduce energy")
	}
	if relaxed.Res.Delay > opt.Res.Delay*1.8 {
		t.Errorf("50%% slack blew delay up by %gx", relaxed.Res.Delay/opt.Res.Delay)
	}
}

func TestRepeatedWireZeroLength(t *testing.T) {
	d := dev32()
	w := t32().Wire(tech.WireGlobal)
	rw := NewRepeatedWire(d, w, 0, 0)
	if rw.Res.Delay != 0 || rw.Res.Energy != 0 {
		t.Error("zero-length wire should be free")
	}
	if rw.Res.Cin <= 0 {
		t.Error("zero-length wire still needs a Cin for the driver")
	}
}

func TestDecoderScaling(t *testing.T) {
	d := dev32()
	load := 50e-15
	d64 := NewDecoder(d, 64, load, 5e-15, 100)
	d1024 := NewDecoder(d, 1024, load, 20e-15, 400)
	if d1024.Res.Delay <= d64.Res.Delay {
		t.Error("bigger decoder should be slower")
	}
	if d1024.Res.Area <= d64.Res.Area {
		t.Error("bigger decoder should be larger")
	}
	if d1024.Res.Leakage <= d64.Res.Leakage {
		t.Error("bigger decoder should leak more")
	}
	// Energy: only one line fires, so energy grows slowly with size.
	if d1024.Res.Energy > 20*d64.Res.Energy {
		t.Error("decoder energy should not explode with size")
	}
}

func TestDecoderMinimumSize(t *testing.T) {
	d := dev32()
	dec := NewDecoder(d, 1, 10e-15, 0, 0)
	if dec.NumOut != 2 {
		t.Errorf("NumOut = %d, want clamp to 2", dec.NumOut)
	}
	if dec.Res.Delay <= 0 {
		t.Error("decoder delay must be positive")
	}
}

func TestSenseAmp(t *testing.T) {
	tt := t32()
	d := tt.Device(tech.HP)
	one := SenseAmp(tt, d, 1, 0)
	many := SenseAmp(tt, d, 256, 0)
	if many.Energy != 256*one.Energy {
		t.Error("sense energy should scale with amp count")
	}
	if many.Delay != one.Delay {
		t.Error("sense delay should not depend on amp count")
	}
	if many.Area <= one.Area || many.Leakage <= one.Leakage {
		t.Error("area/leakage should scale with amp count")
	}
}

func TestTristateDriver(t *testing.T) {
	d := dev32()
	r1 := TristateDriver(d, 10e-15)
	r2 := TristateDriver(d, 500e-15)
	if r2.Delay <= r1.Delay || r2.Energy <= r1.Energy {
		t.Error("tristate driver should scale with load")
	}
}

func TestResultAdd(t *testing.T) {
	a := Result{Delay: 1, Energy: 2, Leakage: 3, Area: 4, Cin: 5}
	b := Result{Delay: 10, Energy: 20, Leakage: 30, Area: 40, Cin: 50}
	a.Add(b)
	if a.Delay != 11 || a.Energy != 22 || a.Leakage != 33 || a.Area != 44 {
		t.Errorf("Add wrong: %+v", a)
	}
	if a.Cin != 5 {
		t.Errorf("Add should keep first Cin, got %g", a.Cin)
	}
	var z Result
	z.Add(b)
	if z.Cin != 50 {
		t.Error("Add into zero should adopt Cin")
	}
}

func TestResultString(t *testing.T) {
	s := Result{Delay: 1e-12, Energy: 1e-12, Leakage: 1e-6, Area: 1e-12}.String()
	if s == "" {
		t.Error("empty String()")
	}
}

func TestChainEnergyPositiveProperty(t *testing.T) {
	d := dev32()
	cin := 3 * (d.CgIdealPerWidth + d.CFringePerWidth) * 6 * d.Lphy
	f := func(mult uint8) bool {
		load := cin * (1 + float64(mult))
		ch := OptimalChain(d, cin, load, 1)
		return ch.Res.Energy > 0 && ch.Res.Delay > 0 && ch.Res.Leakage > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGateAreaMonotoneInWidthProperty(t *testing.T) {
	d := dev32()
	f := func(a, b uint8) bool {
		w1 := float64(1+a%100) * d.Lphy
		w2 := w1 + float64(1+b%100)*d.Lphy
		pitch := 20 * d.Lphy
		return GateArea(d, []float64{w2}, pitch) >= GateArea(d, []float64{w1}, pitch)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecoderEnergyGrowthBounded(t *testing.T) {
	// Only one output fires; energy grows with the predecode fanout
	// (roughly linear in outputs), never super-linearly.
	d := dev32()
	prevE := 0.0
	for _, n := range []int{64, 128, 256, 512, 1024} {
		dec := NewDecoder(d, n, 30e-15, 5e-15, 100)
		if prevE > 0 && dec.Res.Energy > prevE*2.2 {
			t.Errorf("decoder energy jumped %gx at %d outputs (super-linear)", dec.Res.Energy/prevE, n)
		}
		prevE = dec.Res.Energy
	}
}

func TestChainCinRespected(t *testing.T) {
	// The chain's reported input capacitance equals what was asked.
	d := dev32()
	cin := 3 * (d.CgIdealPerWidth + d.CFringePerWidth) * 10 * d.Lphy
	ch := OptimalChain(d, cin, cin*100, 1)
	if math.Abs(ch.Res.Cin-cin)/cin > 1e-9 {
		t.Errorf("chain Cin %g, want %g", ch.Res.Cin, cin)
	}
	if len(ch.Stages) != ch.NumStage {
		t.Error("stage bookkeeping inconsistent")
	}
}

func TestHorowitzNonNegativeProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		tf := 1e-13 * float64(1+a%5000)
		trise := 1e-13 * float64(b%5000)
		return Horowitz(trise, tf, 0.25) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
