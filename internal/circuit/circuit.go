// Package circuit provides the analytical circuit primitives CACTI-D
// is built from: the Horowitz delay approximation, inverters and
// logical-effort buffer chains, repeated global wires (with the
// max-repeater-delay relaxation knob), decoders, tristate drivers and
// an analytical gate-area model with pitch-matching/folding.
//
// Every primitive reports a Result: worst-case delay through the
// stage, dynamic energy per activation, standby leakage power, layout
// area, and the input capacitance it presents to its driver.
package circuit

import (
	"fmt"
	"math"

	"cactid/internal/tech"
)

// Result aggregates the four quantities the model tracks for every
// circuit block, plus the block's input load.
type Result struct {
	Delay   float64 // worst-case propagation delay (s)
	Energy  float64 // dynamic energy per activation (J)
	Leakage float64 // standby leakage power (W)
	Area    float64 // layout area (m^2)
	Cin     float64 // input capacitance presented to the driver (F)
}

// Add accumulates another stage in series: delays and energies and
// leakage and area add; Cin keeps the receiver's value (first stage).
func (r *Result) Add(s Result) {
	r.Delay += s.Delay
	r.Energy += s.Energy
	r.Leakage += s.Leakage
	r.Area += s.Area
	if r.Cin == 0 {
		r.Cin = s.Cin
	}
}

// Horowitz computes the delay of a gate with output time constant tf
// (R*C), input ramp time trise, and switching threshold vs (Vth/Vdd),
// using Horowitz's approximation. For a step input pass trise = 0.
func Horowitz(trise, tf, vs float64) float64 {
	if trise <= 0 {
		return tf * math.Sqrt(math.Log(vs)*math.Log(vs))
	}
	a := math.Log(vs)
	return tf * math.Sqrt(a*a+2*trise/tf*(1-vs)*0.5/1)
}

// Inverter is a static CMOS inverter with NMOS width Wn and PMOS
// width Wp built from the given device family.
type Inverter struct {
	Dev    *tech.DeviceParams
	Wn, Wp float64 // widths (m)
}

// NewInverter returns an inverter with the conventional Wp = 2*Wn
// beta ratio.
func NewInverter(dev *tech.DeviceParams, wn float64) Inverter {
	return Inverter{Dev: dev, Wn: wn, Wp: 2 * wn}
}

// InputCap returns the gate capacitance seen at the inverter input.
func (inv Inverter) InputCap() float64 {
	cg := inv.Dev.CgIdealPerWidth + inv.Dev.CFringePerWidth
	return cg * (inv.Wn + inv.Wp)
}

// SelfCap returns the parasitic drain capacitance at the output.
func (inv Inverter) SelfCap() float64 {
	return inv.Dev.CJuncPerWidth * (inv.Wn + inv.Wp)
}

// DriveRes returns the worst-case (pull-up) switching resistance.
func (inv Inverter) DriveRes() float64 {
	rn := inv.Dev.RnOnPerWidth / inv.Wn
	rp := inv.Dev.RpOnPerWidth / inv.Wp
	return math.Max(rn, rp)
}

// Delay returns the Horowitz delay driving loadCap with the given
// input ramp time.
func (inv Inverter) Delay(loadCap, trise float64) float64 {
	tf := inv.DriveRes() * (inv.SelfCap() + loadCap)
	return Horowitz(trise, tf, inv.Dev.Vth/inv.Dev.Vdd)
}

// SwitchEnergy returns the dynamic energy of one output transition
// into loadCap (half CV^2: one edge).
func (inv Inverter) SwitchEnergy(loadCap float64) float64 {
	c := inv.SelfCap() + inv.InputCap() + loadCap
	return 0.5 * c * inv.Dev.Vdd * inv.Dev.Vdd
}

// Leakage returns the average standby leakage power (one of the two
// devices leaks depending on state; we average, and include gate
// leakage of both).
func (inv Inverter) Leakage() float64 {
	d := inv.Dev
	sub := 0.5 * (d.IoffN*inv.Wn + d.IoffP*inv.Wp)
	gate := d.IgOn * (inv.Wn + inv.Wp) / 2
	return d.Vdd * (sub + gate)
}

// Area returns the layout area of the inverter under no pitch
// constraint (see GateArea for pitch-matched layouts).
func (inv Inverter) Area() float64 {
	return GateArea(inv.Dev, []float64{inv.Wn, inv.Wp}, 0)
}

// GateArea is the analytical gate-area model. widths lists the
// transistor widths of the gate (m). If pitch > 0, the layout height
// is constrained to pitch (pitch matching, e.g. a wordline driver that
// must fit the cell height): wide transistors are folded into
// multiple legs. The returned area is height x width of the resulting
// stack.
//
// Layout rules per leg: a leg occupies one gate pitch horizontally
// (Lphy + 2 contacted spacings, approximated as 4F-equivalent using
// the device's own gate length scale) and the folded width
// vertically.
func GateArea(dev *tech.DeviceParams, widths []float64, pitch float64) float64 {
	legPitch := dev.Lphy + 5*dev.Lphy // gate + contacts/spacing
	maxH := pitch
	if maxH <= 0 {
		// Unconstrained: allow a square-ish layout with legs up to
		// 20x the gate length tall.
		maxH = 40 * dev.Lphy
	}
	totalW := 0.0
	legs := 0
	for _, w := range widths {
		if w <= 0 {
			continue
		}
		n := int(math.Ceil(w / maxH))
		legs += n
		totalW += w
	}
	if legs == 0 {
		return 0
	}
	height := math.Min(maxH, totalW/float64(legs)*1.2+2*legPitch)
	if pitch > 0 {
		height = pitch
	}
	return float64(legs) * legPitch * height * 1.3 // 30% wiring overhead
}

// ramChain describes a logical-effort-sized buffer chain.
type Chain struct {
	Dev      *tech.DeviceParams
	NumStage int
	Stages   []Inverter
	Res      Result
}

// OptimalChain sizes a buffer chain from an input capacitance budget
// cin to drive loadCap (plus any fixed wire capacitance), using
// logical effort with a target stage effort of ~4. branch is the
// fanout multiplier for internal branching (1 for a plain chain).
// The chain always has at least one stage.
func OptimalChain(dev *tech.DeviceParams, cin, loadCap, branch float64) Chain {
	if branch < 1 {
		branch = 1
	}
	cgPerW := dev.CgIdealPerWidth + dev.CFringePerWidth
	wnIn := cin / (3 * cgPerW) // Wp=2Wn => Cin = 3*Wn*cg
	if wnIn <= 0 {
		wnIn = 4 * dev.Lphy
		cin = 3 * cgPerW * wnIn
	}
	h := loadCap * branch / cin
	if h < 1 {
		h = 1
	}
	n := int(math.Max(1, math.Round(math.Log(h)/math.Log(4))))
	f := math.Pow(h, 1/float64(n)) // per-stage effort

	ch := Chain{Dev: dev, NumStage: n, Stages: make([]Inverter, 0, n)}
	w := wnIn
	trise := 0.0
	for i := 0; i < n; i++ {
		inv := NewInverter(dev, w)
		var load float64
		if i == n-1 {
			load = loadCap
		} else {
			load = inv.InputCap() * f / branch * branch // next stage cap
		}
		d := inv.Delay(load, trise)
		trise = d / (1 - dev.Vth/dev.Vdd) // ramp for next stage
		ch.Stages = append(ch.Stages, inv)
		ch.Res.Delay += d
		ch.Res.Energy += inv.SwitchEnergy(load) - 0.5*load*dev.Vdd*dev.Vdd // count load once below
		ch.Res.Leakage += inv.Leakage()
		ch.Res.Area += inv.Area()
		w *= f
	}
	// Count the final load's charging energy once.
	ch.Res.Energy += 0.5 * loadCap * dev.Vdd * dev.Vdd
	ch.Res.Cin = cin
	return ch
}

// RepeatedWire models a repeated global interconnect of the given
// length. delaySlack >= 0 relaxes the design away from the
// delay-optimal repeater solution: a slack of s permits (1+s)x the
// optimal delay, shrinking and spreading the repeaters to save
// energy. This implements the paper's "max repeater delay constraint".
type RepeatedWire struct {
	Dev        *tech.DeviceParams
	Wire       *tech.WireParams
	Length     float64
	NumRep     int
	RepWidth   float64
	SegmentLen float64
	Res        Result
}

// NewRepeatedWire builds the repeated-wire solution. For short wires
// (below one optimal segment) no repeaters are inserted and the wire
// is driven directly.
func NewRepeatedWire(dev *tech.DeviceParams, w *tech.WireParams, length, delaySlack float64) RepeatedWire {
	rw := RepeatedWire{Dev: dev, Wire: w, Length: length}
	if length <= 0 {
		rw.Res.Cin = NewInverter(dev, 4*dev.Lphy).InputCap()
		return rw
	}
	cg := dev.CgIdealPerWidth + dev.CFringePerWidth
	r0 := dev.RnOnPerWidth // per unit NMOS width
	// Total capacitance per unit NMOS width: both gate and junction
	// scale with Wn+Wp = 3*Wn.
	c0 := 3 * (cg + dev.CJuncPerWidth)
	// Classic optimal repeater insertion:
	//   Lseg* = sqrt(2*r0*c0 / (Rw*Cw)), Wopt = sqrt(r0*Cw/(Rw*c0))
	lopt := math.Sqrt(2 * r0 * c0 / (w.RPerLen * w.CPerLen))
	wopt := math.Sqrt(r0 * w.CPerLen / (w.RPerLen * c0))
	// Relax: use fewer, smaller repeaters than the delay-optimal
	// solution, by the slack factor.
	stretch := 1 + delaySlack
	nOpt := math.Max(1, math.Round(length/lopt))
	n := int(math.Max(1, math.Round(nOpt/stretch)))
	wrep := wopt / stretch
	lseg := length / float64(n)

	inv := Inverter{Dev: dev, Wn: wrep, Wp: 2 * wrep}
	cwire := w.CPerLen * lseg
	rwire := w.RPerLen * lseg
	// Per-segment Elmore: Rdrv*(Cself+Cwire+Cnext) + Rwire*(Cwire/2+Cnext)
	cnext := inv.InputCap()
	tf := inv.DriveRes()*(inv.SelfCap()+cwire+cnext) + rwire*(cwire/2+cnext)
	segDelay := Horowitz(0, tf, dev.Vth/dev.Vdd)

	rw.NumRep = n
	rw.RepWidth = wrep
	rw.SegmentLen = lseg
	rw.Res.Delay = float64(n) * segDelay
	vdd := dev.Vdd
	rw.Res.Energy = float64(n) * 0.5 * (cwire + cnext + inv.SelfCap()) * vdd * vdd
	rw.Res.Leakage = float64(n) * inv.Leakage()
	rw.Res.Area = float64(n) * inv.Area()
	rw.Res.Cin = cnext
	return rw
}

// RepeatedWireDelayLB returns a provable per-meter lower bound on the
// delay of any NewRepeatedWire solution built from the same device,
// wire and slack. The per-segment time constant of a repeated wire of
// length L split into n segments is tf(L/n) = A + B*lseg + C*lseg^2
// with A = Rdrv*(Cself+Cnext), B = Rdrv*Cw + Rw*Cnext, C = Rw*Cw/2,
// so the total delay k*(A*n + B*L + C*L^2/n) is, by AM-GM over the
// repeater count n >= 1, at least k*L*(B + 2*sqrt(A*C)) — linear in L
// with a coefficient that depends only on the fixed repeater inverter
// (width wopt/stretch, independent of L). The bound holds for every
// integer n, hence for the count NewRepeatedWire actually picks.
func RepeatedWireDelayLB(dev *tech.DeviceParams, w *tech.WireParams, delaySlack float64) float64 {
	_, _, rate := RepeatedWireDelayLBParts(dev, w, delaySlack)
	return rate
}

// RepeatedWireDelayLBParts returns constants such that the delay of
// any NewRepeatedWire solution of length L built from the same
// device, wire and slack satisfies
//
//	delay >= max(fixed + lin*L, rate*L)
//
// The affine branch keeps the n>=1 repeater self-delay term that the
// per-meter rate discards — on wires shorter than one optimal segment
// the fixed driver delay dominates and the rate alone is far too low.
// Both branches follow from the per-segment time constant tf(L/n) =
// A + B*lseg + C*lseg^2: the total k*(A*n + B*L + C*L^2/n) is at
// least k*(A + B*L) for every n >= 1 (drop the nonnegative quadratic
// term), and at least k*L*(B + 2*sqrt(A*C)) by AM-GM over n. Both
// hold for the integer count NewRepeatedWire actually picks.
func RepeatedWireDelayLBParts(dev *tech.DeviceParams, w *tech.WireParams, delaySlack float64) (fixed, lin, rate float64) {
	cg := dev.CgIdealPerWidth + dev.CFringePerWidth
	r0 := dev.RnOnPerWidth
	c0 := 3 * (cg + dev.CJuncPerWidth)
	wopt := math.Sqrt(r0 * w.CPerLen / (w.RPerLen * c0))
	stretch := 1 + delaySlack
	wrep := wopt / stretch
	inv := Inverter{Dev: dev, Wn: wrep, Wp: 2 * wrep}
	cnext := inv.InputCap()
	a := inv.DriveRes() * (inv.SelfCap() + cnext)
	b := inv.DriveRes()*w.CPerLen + w.RPerLen*cnext
	c := w.RPerLen * w.CPerLen / 2
	ln := math.Log(dev.Vth / dev.Vdd)
	k := math.Sqrt(ln * ln) // Horowitz step-input factor
	return k * a, k * b, k * (b + 2*math.Sqrt(a*c))
}

// TristateDriver models the bus drivers used on shared H-tree data
// buses: an enabled inverter with roughly 2x the parasitics of a
// plain inverter of the same drive.
func TristateDriver(dev *tech.DeviceParams, loadCap float64) Result {
	ch := OptimalChain(dev, 3*(dev.CgIdealPerWidth+dev.CFringePerWidth)*8*dev.Lphy, loadCap, 1)
	r := ch.Res
	r.Energy *= 1.3
	r.Leakage *= 2
	r.Area *= 1.8
	r.Delay *= 1.15
	return r
}

// Decoder models an n-to-2^n row/column decoder: a predecode stage
// (banks of NAND gates over 2-3 address bits) followed by per-output
// AND + driver chains sized to drive loadPerLine, with wireCap of
// distribution wiring across the decoder span.
type Decoder struct {
	NumOut int
	Res    Result
	// DriverChain is the sized final wordline-driver chain (exposed
	// so mats can pitch-match it against the cell height).
	DriverChain Chain
}

// NewDecoder builds a decoder with numOut outputs (rounded up to a
// power of two internally), each output driving loadPerLine farads.
// wireCap/wireRes describe the predecode distribution wiring.
func NewDecoder(dev *tech.DeviceParams, numOut int, loadPerLine, wireCap, wireRes float64) Decoder {
	if numOut < 2 {
		numOut = 2
	}
	bits := int(math.Ceil(math.Log2(float64(numOut))))
	cgPerW := dev.CgIdealPerWidth + dev.CFringePerWidth
	minCin := 3 * cgPerW * 6 * dev.Lphy

	// Predecode: bits/2 groups of NAND2 producing 4 lines each; each
	// predecode line loads numOut/4 final gates plus the wire.
	nGroups := (bits + 1) / 2
	finalGateCin := 2 * minCin // 2-input AND at each row
	predecodeLoad := wireCap + float64(numOut)/4*finalGateCin
	pre := OptimalChain(dev, minCin, predecodeLoad, 1)
	// Wire RC adds an Elmore term.
	preWireDelay := 0.38 * wireRes * wireCap

	// Final stage: AND + driver chain to the line load.
	drv := OptimalChain(dev, finalGateCin, loadPerLine, 1)

	d := Decoder{NumOut: numOut, DriverChain: drv}
	// NAND/NOR stages carry logical effort above the inverter chains
	// they are approximated by (g ~ 4/3-5/3 plus parasitics).
	const gateEffortFactor = 1.4
	d.Res.Delay = gateEffortFactor*(pre.Res.Delay+drv.Res.Delay) + preWireDelay
	// Energy: all predecode groups switch; exactly one output line fires.
	d.Res.Energy = float64(nGroups)*pre.Res.Energy + drv.Res.Energy
	// Leakage and area: every output has a final gate+driver.
	d.Res.Leakage = float64(nGroups)*pre.Res.Leakage + float64(numOut)*drv.Res.Leakage
	d.Res.Area = float64(nGroups)*pre.Res.Area + float64(numOut)*drv.Res.Area
	d.Res.Cin = pre.Res.Cin
	return d
}

// SenseAmp wraps the per-node latch sense-amplifier figures into a
// Result for nAmps amplifiers activated together.
func SenseAmp(t *tech.Technology, dev *tech.DeviceParams, nAmps int, pitch float64) Result {
	per := GateArea(dev, []float64{8 * dev.Lphy, 8 * dev.Lphy, 6 * dev.Lphy, 6 * dev.Lphy}, pitch)
	return Result{
		Delay:   t.SenseAmpDelay,
		Energy:  float64(nAmps) * t.SenseAmpEnergy,
		Leakage: float64(nAmps) * dev.Vdd * (dev.IoffN * 6 * dev.Lphy),
		Area:    float64(nAmps) * per,
		Cin:     0,
	}
}

func (r Result) String() string {
	return fmt.Sprintf("delay=%.3gps energy=%.3gpJ leak=%.3guW area=%.3gum2",
		r.Delay*1e12, r.Energy*1e12, r.Leakage*1e6, r.Area*1e12)
}
