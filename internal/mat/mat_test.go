package mat

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"cactid/internal/tech"
)

func mk(t *testing.T, ram tech.RAMType, rows, cols, mux int) *Mat {
	t.Helper()
	m, err := New(Config{Tech: tech.New(tech.Node32), RAM: ram, Rows: rows, Cols: cols, DegBLMux: mux})
	if err != nil {
		t.Fatalf("New(%v %dx%d): %v", ram, rows, cols, err)
	}
	return m
}

func TestSRAMBasic(t *testing.T) {
	m := mk(t, tech.SRAM, 256, 256, 4)
	if m.AccessTime() <= 0 || m.RandomCycleTime() <= 0 {
		t.Fatal("non-positive timing")
	}
	if m.TRestore != 0 {
		t.Error("SRAM has no restore phase")
	}
	if m.RefreshPower != 0 {
		t.Error("SRAM needs no refresh")
	}
	if m.Leakage <= 0 {
		t.Error("SRAM mat must leak")
	}
	eff := m.AreaEfficiency()
	if eff < 0.2 || eff > 0.95 {
		t.Errorf("area efficiency %.2f out of band", eff)
	}
	if m.DataBitsOut != 256/4*4 {
		t.Errorf("DataBitsOut=%d", m.DataBitsOut)
	}
}

func TestDRAMBasic(t *testing.T) {
	for _, ram := range []tech.RAMType{tech.LPDRAM, tech.COMMDRAM} {
		m := mk(t, ram, 512, 512, 8)
		if m.TRestore <= 0 {
			t.Errorf("%v: destructive readout requires restore", ram)
		}
		if m.RefreshPower <= 0 {
			t.Errorf("%v: refresh power must be positive", ram)
		}
		if m.RandomCycleTime() <= m.AccessTime()-m.TDecoder-m.TColumnMux {
			t.Errorf("%v: DRAM cycle %g should exceed its access path %g due to restore",
				ram, m.RandomCycleTime(), m.AccessTime())
		}
		if m.VSignal < m.Tech.Cell(ram).SenseVmin {
			t.Errorf("%v: accepted config with too-small signal", ram)
		}
	}
}

func TestDRAMSignalMarginRejection(t *testing.T) {
	// Extremely long bitlines must be rejected.
	_, err := New(Config{Tech: tech.New(tech.Node32), RAM: tech.COMMDRAM, Rows: 65536, Cols: 64, DegBLMux: 1})
	if !errors.Is(err, ErrSignalMargin) {
		t.Fatalf("err = %v, want ErrSignalMargin", err)
	}
}

func TestBadConfigs(t *testing.T) {
	tt := tech.New(tech.Node32)
	cases := []Config{
		{Tech: nil, RAM: tech.SRAM, Rows: 64, Cols: 64},
		{Tech: tt, RAM: tech.SRAM, Rows: 100, Cols: 64},
		{Tech: tt, RAM: tech.SRAM, Rows: 64, Cols: 100},
		{Tech: tt, RAM: tech.SRAM, Rows: 64, Cols: 64, DegBLMux: 3},
		{Tech: tt, RAM: tech.SRAM, Rows: 0, Cols: 64},
	}
	for i, c := range cases {
		if _, err := New(c); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestCOMMDRAMSlowerThanLPDRAM(t *testing.T) {
	// The paper: COMM-DRAM access is ~3x slower than LP-DRAM at equal
	// organization (LSTP periphery + tungsten bitlines).
	lp := mk(t, tech.LPDRAM, 512, 512, 8)
	cm := mk(t, tech.COMMDRAM, 512, 512, 8)
	if cm.AccessTime() <= lp.AccessTime()*1.5 {
		t.Errorf("COMM-DRAM access %.3gns not well above LP-DRAM %.3gns",
			cm.AccessTime()*1e9, lp.AccessTime()*1e9)
	}
	if cm.RandomCycleTime() <= lp.RandomCycleTime() {
		t.Error("COMM-DRAM cycle should exceed LP-DRAM cycle")
	}
}

func TestSRAMFasterThanLPDRAM(t *testing.T) {
	s := mk(t, tech.SRAM, 256, 256, 4)
	lp := mk(t, tech.LPDRAM, 256, 256, 4)
	if s.RandomCycleTime() >= lp.RandomCycleTime() {
		t.Error("SRAM random cycle should beat LP-DRAM (no restore)")
	}
}

func TestDensityOrdering(t *testing.T) {
	// Same bits: COMM-DRAM smallest, SRAM largest.
	s := mk(t, tech.SRAM, 256, 256, 4)
	lp := mk(t, tech.LPDRAM, 256, 256, 4)
	cm := mk(t, tech.COMMDRAM, 256, 256, 4)
	if !(cm.Area < lp.Area && lp.Area < s.Area) {
		t.Errorf("area ordering violated: SRAM %g, LP %g, COMM %g", s.Area, lp.Area, cm.Area)
	}
}

func TestLeakageOrdering(t *testing.T) {
	// SRAM mats leak far more than COMM-DRAM mats (HP-long-channel vs
	// LSTP periphery plus 6T cell leakage).
	s := mk(t, tech.SRAM, 256, 256, 4)
	cm := mk(t, tech.COMMDRAM, 256, 256, 4)
	if s.Leakage <= 5*cm.Leakage {
		t.Errorf("SRAM leakage %g not well above COMM-DRAM %g", s.Leakage, cm.Leakage)
	}
}

func TestRefreshOrdering(t *testing.T) {
	// LP-DRAM refreshes ~500x more often than COMM-DRAM; per-bit
	// refresh power must be much higher.
	lp := mk(t, tech.LPDRAM, 512, 512, 8)
	cm := mk(t, tech.COMMDRAM, 512, 512, 8)
	if lp.RefreshPower <= 10*cm.RefreshPower {
		t.Errorf("LP-DRAM refresh %g not well above COMM-DRAM %g", lp.RefreshPower, cm.RefreshPower)
	}
}

func TestTimingMonotoneInRows(t *testing.T) {
	// More rows -> longer bitlines -> slower bitline phase and
	// larger area.
	prevBL, prevArea := 0.0, 0.0
	for _, rows := range []int{128, 256, 512, 1024} {
		m := mk(t, tech.COMMDRAM, rows, 256, 4)
		if m.TBitline <= prevBL {
			t.Errorf("rows=%d: TBitline %g not > %g", rows, m.TBitline, prevBL)
		}
		if m.Area <= prevArea {
			t.Errorf("rows=%d: area %g not > %g", rows, m.Area, prevArea)
		}
		prevBL, prevArea = m.TBitline, m.Area
	}
}

func TestEnergyMonotoneInCols(t *testing.T) {
	prev := 0.0
	for _, cols := range []int{128, 256, 512} {
		m := mk(t, tech.LPDRAM, 256, cols, 4)
		if m.EActivate <= prev {
			t.Errorf("cols=%d: EActivate %g not > %g", cols, m.EActivate, prev)
		}
		prev = m.EActivate
	}
}

func TestWriteCostsMoreThanRead(t *testing.T) {
	for _, ram := range []tech.RAMType{tech.SRAM, tech.LPDRAM, tech.COMMDRAM} {
		m := mk(t, ram, 256, 256, 4)
		if m.EWrite <= m.ERead {
			t.Errorf("%v: EWrite %g <= ERead %g", ram, m.EWrite, m.ERead)
		}
	}
}

func TestMuxReducesDataBits(t *testing.T) {
	a := mk(t, tech.SRAM, 256, 256, 1)
	b := mk(t, tech.SRAM, 256, 256, 8)
	if a.DataBitsOut != 8*b.DataBitsOut {
		t.Errorf("mux 8 should cut data bits 8x: %d vs %d", a.DataBitsOut, b.DataBitsOut)
	}
}

func TestPropertyValidConfigsProduceFiniteModel(t *testing.T) {
	tt := tech.New(tech.Node32)
	f := func(r, c, mx uint8) bool {
		rows := 64 << (r % 5) // 64..1024
		cols := 64 << (c % 4) // 64..512
		mux := 1 << (mx % 3)  // 1..4
		m, err := New(Config{Tech: tt, RAM: tech.SRAM, Rows: rows, Cols: cols, DegBLMux: mux})
		if err != nil {
			return false
		}
		vals := []float64{m.AccessTime(), m.RandomCycleTime(), m.Area, m.EActivate, m.Leakage}
		for _, v := range vals {
			if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return m.AreaEfficiency() > 0 && m.AreaEfficiency() < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNodeScalingShrinksMat(t *testing.T) {
	big, err := New(Config{Tech: tech.New(tech.Node90), RAM: tech.SRAM, Rows: 256, Cols: 256, DegBLMux: 4})
	if err != nil {
		t.Fatal(err)
	}
	small := mk(t, tech.SRAM, 256, 256, 4)
	if small.Area >= big.Area {
		t.Errorf("32nm mat %g not smaller than 90nm %g", small.Area, big.Area)
	}
}
