// Package mat models the basic physical building block of a CACTI-D
// memory array: the mat, a 2x2 group of identical subarrays sharing a
// central predecoder. A subarray is a grid of SRAM 6T or DRAM 1T1C
// cells (folded array organization for DRAM) with a row-decoder strip,
// a sense-amplifier strip, precharge devices and column multiplexers.
//
// The mat model produces the per-access timing components (decode,
// wordline, bitline, sense, restore/writeback, precharge), the
// activation/read/write energies, leakage and refresh power, and the
// mat footprint with pitch-matched peripheral circuitry — following
// the paper's approach of keeping SRAM and DRAM on a common framework
// and modeling only their essential differences (Section 2.3).
package mat

import (
	"errors"
	"fmt"

	"cactid/internal/circuit"
	"cactid/internal/tech"
)

// Config specifies one mat. Rows and Cols refer to a single subarray;
// the mat holds 4 (2x2) subarrays.
type Config struct {
	Tech *tech.Technology
	RAM  tech.RAMType

	Rows int // wordlines per subarray (power of two)
	Cols int // bitline pairs per subarray (power of two)

	// DegBLMux is the column (bitline) multiplexing degree: the
	// number of bitline pairs sharing one sense amplifier for SRAM,
	// or the number of sensed columns gated to one data line for
	// DRAM (DRAM senses every column — the page — and muxes after
	// the amplifiers).
	DegBLMux int

	// Ports is the number of independent read/write ports (SRAM
	// only; >1 grows the cell by one wordline and one bitline pair
	// per extra port). Zero means 1.
	Ports int
}

// subarraysPerMat is fixed by the mat floorplan (2x2 around the
// central predecode/driver spine).
const subarraysPerMat = 4

// contactCap is the fixed bitline contact capacitance contributed by
// each cell attached to a bitline, beyond junction and wire
// capacitance. Roughly constant across nodes (contact size does not
// scale as fast as gate length).
const contactCap = 0.08e-15 // F

// Mat is the evaluated physical model.
type Mat struct {
	Config

	// Geometry.
	Width, Height float64 // m
	Area          float64 // m^2 (Width*Height)
	CellArea      float64 // m^2 of pure cell matrix (for area efficiency)

	// Timing components (s), in access order.
	TDecoder   float64 // predecode + row decode up to wordline driver input
	TWordline  float64 // wordline driver + RC rise
	TBitline   float64 // bitline signal development (read)
	TSense     float64 // sense amplifier resolution
	TColumnMux float64 // column select and mux to mat data lines
	TRestore   float64 // DRAM writeback/restore after destructive read (0 for SRAM)
	TPrecharge float64 // bitline precharge/equalize

	// Bitline electricals (exposed for the DRAM chip-level model).
	CBitline float64 // per-bitline capacitance (F)
	VSignal  float64 // developed read signal (V)

	// Energy per mat access (J). EActivate covers row decode +
	// wordline + bitline swing + sensing of the full row (for DRAM
	// this is the page-activation energy share of this mat). ERead /
	// EWrite cover the column path per access. EPrecharge restores
	// the bitlines.
	EActivate    float64
	ERead        float64
	EWrite       float64
	EWritePerBit float64 // bitline energy to write a single bit
	EPrecharge   float64

	// Standby power (W).
	Leakage      float64
	RefreshPower float64

	// DataBitsOut is the number of data bits the mat delivers per
	// access after column muxing.
	DataBitsOut int
}

// Common validation errors.
var (
	ErrSignalMargin = errors.New("mat: DRAM bitline too long, read signal below sense amplifier minimum")
	ErrBadConfig    = errors.New("mat: invalid configuration")
)

func isPow2(x int) bool { return x > 0 && x&(x-1) == 0 }

// dramAccessRes is the effective resistance of the 1T1C access
// transistor during charge transfer and writeback. The wordline boost
// to VPP improves the gate overdrive; the resistance scales inversely
// with (VPP - Vth - Vdd/2), the overdrive available when restoring a
// full "1" into the cell.
func dramAccessRes(acc *tech.DeviceParams, cell *tech.CellParams) float64 {
	overdrive := cell.Vpp - acc.Vth - cell.Vdd/2
	if overdrive < 0.2 {
		overdrive = 0.2
	}
	return 0.75 * (cell.Vdd / overdrive) * acc.RnOnPerWidth / cell.AccessWidth
}

// Shared holds the mux-independent part of the mat model for one
// (technology, RAM type, rows, cols, ports) choice: the wordline,
// row-decoder and bitline electricals, the restore/precharge timing
// and the decoder-strip geometry. CACTI-D's enumeration sweeps the
// column-mux degree as its innermost loop, and everything in Shared is
// invariant across that loop — hoisting it makes the per-mux Build
// cheap. A Shared is immutable after NewShared and safe for
// concurrent Build calls.
type Shared struct {
	cfg    Config // DegBLMux unset; Ports normalized
	cell   *tech.CellParams
	acc    *tech.DeviceParams
	per    *tech.DeviceParams
	kind   tech.CellKind
	isDRAM bool // kind == Kind1T1C (destructive read, page sensing)

	cellW, cellH     float64
	saWidth          float64
	saHeight         float64
	tDecoder         float64
	tWordline        float64
	tBitline         float64
	tRestore         float64
	tPrecharge       float64
	cBitline         float64
	vSignal          float64
	decRes           circuit.Result // row decoder
	wlRes            circuit.Result // wordline driver chain
	eWL              float64
	eBLAct           float64
	eWritePerBit     float64
	ePrecharge       float64
	cellLeak         float64
	nCells           float64
	colSelWireCap    float64 // column-select distribution wiring
	colSelWireRes    float64
	decWidth         float64
	cellArea         float64
	width            float64
	eActPrefix       float64 // dec + wordline + eWL + eBLAct energy sum
	leakStaticPrefix float64 // dec + wordline leakage sum
}

// New evaluates the mat model for cfg. It returns ErrSignalMargin if
// a DRAM configuration cannot develop enough differential signal, or
// ErrBadConfig for malformed inputs. It is NewShared followed by
// Build; enumeration loops that sweep DegBLMux should hold the Shared
// and call Build per mux degree instead.
func New(cfg Config) (*Mat, error) {
	s, err := NewShared(cfg)
	if err != nil {
		return nil, err
	}
	return s.Build(cfg.DegBLMux)
}

// NewShared evaluates the mux-independent stage of the mat model.
// cfg.DegBLMux is ignored (Build supplies it).
func NewShared(cfg Config) (*Shared, error) {
	if cfg.Tech == nil {
		return nil, fmt.Errorf("%w: nil Technology", ErrBadConfig)
	}
	if !isPow2(cfg.Rows) || !isPow2(cfg.Cols) {
		return nil, fmt.Errorf("%w: rows=%d cols=%d must be powers of two", ErrBadConfig, cfg.Rows, cfg.Cols)
	}
	if cfg.Ports < 1 {
		cfg.Ports = 1
	}
	cfg.DegBLMux = 0

	t := cfg.Tech
	cell := t.Cell(cfg.RAM)
	kind := cell.Kind
	if cfg.Ports > 1 && kind != tech.KindStatic {
		return nil, fmt.Errorf("%w: multiported cells are SRAM-only", ErrBadConfig)
	}
	if (kind == tech.KindGainCell || kind == tech.KindNVM) && cell.ReadCurrent <= 0 {
		return nil, fmt.Errorf("%w: %v cell needs a positive read current", ErrBadConfig, kind)
	}
	acc := t.Device(cell.AccessDevice)
	per := t.Device(cell.PeripheralDevice)
	isDRAM := kind == tech.Kind1T1C

	m := &Shared{cfg: cfg, cell: cell, acc: acc, per: per, kind: kind, isDRAM: isDRAM}

	f := t.F
	cellW := cell.CellWidth(f)
	cellH := cell.CellHeight(f)
	// Each extra port adds a wordline track to the cell height and a
	// bitline-pair track to the cell width (classic multiport
	// growth: the cell area grows roughly quadratically with ports).
	if extra := float64(cfg.Ports - 1); extra > 0 {
		cellW += 2 * f * extra
		cellH += 2 * f * extra
	}
	m.cellW, m.cellH = cellW, cellH
	saWidth := float64(cfg.Cols) * cellW
	saHeight := float64(cfg.Rows) * cellH
	m.saWidth, m.saHeight = saWidth, saHeight

	// ---- Wordline ----
	// Local wire along the row, in the cell's bitline-compatible
	// metal (copper for SRAM/LP-DRAM rows too; rows are typically
	// strapped metal over poly).
	wlWire := t.WireOf(tech.WireLocal, tech.Copper)
	wlLen := saWidth
	// Gate load: the static 6T cell has two access transistors per
	// cell on the wordline; every other kind gates one device per
	// wordline (DRAM's access transistor, the gain cell's write or
	// read device, the NVM select transistor).
	gatesPerCell := 2.0
	if kind != tech.KindStatic {
		gatesPerCell = 1.0
	}
	cGate := (acc.CgIdealPerWidth + acc.CFringePerWidth) * cell.AccessWidth
	cWL := wlWire.CPerLen*wlLen + float64(cfg.Cols)*gatesPerCell*cGate
	rWL := wlWire.RPerLen * wlLen

	// Wordline driver chain, pitch-matched to the cell height.
	minCin := 3 * (per.CgIdealPerWidth + per.CFringePerWidth) * 6 * per.Lphy
	wlChain := circuit.OptimalChain(per, minCin, cWL, 1)
	// Distributed RC rise of the line itself.
	tWLrc := 0.38 * rWL * cWL
	m.tWordline = wlChain.Res.Delay + tWLrc
	m.wlRes = wlChain.Res

	// Wordline swing voltage: boosted whenever the cell defines a
	// pumped level (DRAM always; the gain cell's write wordline).
	vWL := per.Vdd
	if cell.Vpp > 0 {
		vWL = cell.Vpp
	}
	m.eWL = cWL * vWL * vWL // full swing up and down per activation

	// ---- Row decoder ----
	predecWireLen := saHeight / 2
	gWire := t.Wire(tech.WireSemiGlobal)
	dec := circuit.NewDecoder(per, cfg.Rows, wlChain.Res.Cin,
		gWire.CPerLen*predecWireLen, gWire.RPerLen*predecWireLen)
	m.tDecoder = dec.Res.Delay
	m.decRes = dec.Res
	m.colSelWireCap = gWire.CPerLen * saWidth / 4
	m.colSelWireRes = gWire.RPerLen * saWidth / 4

	// ---- Bitline ----
	blWire := t.WireOf(tech.WireLocal, cell.BitlineMaterial)
	blLen := saHeight
	// Cells attached per bitline: every other row for the folded
	// 1T1C array; every row for everything else.
	attach := float64(cfg.Rows)
	if isDRAM {
		attach = float64(cfg.Rows) / 2
	}
	cPerCell := acc.CJuncPerWidth*cell.AccessWidth + contactCap
	cBL := blWire.CPerLen*blLen + attach*cPerCell
	rBL := blWire.RPerLen * blLen
	m.cBitline = cBL

	switch kind {
	case tech.Kind1T1C:
		// Charge redistribution: cell cap shares with the bitline.
		cs := cell.Cs
		m.vSignal = (cell.Vdd / 2) * cs / (cs + cBL)
		if m.vSignal < cell.SenseVmin {
			return nil, fmt.Errorf("%w: rows=%d gives %.1fmV < %.1fmV",
				ErrSignalMargin, cfg.Rows, m.vSignal*1e3, cell.SenseVmin*1e3)
		}
		// Transfer through the boosted access device onto the
		// series-parallel capacitance, plus distributed bitline RC.
		rAcc := dramAccessRes(acc, cell)
		cShare := cs * cBL / (cs + cBL)
		m.tBitline = 2.3*rAcc*cShare + 0.38*rBL*cBL
	case tech.KindStatic:
		// SRAM: the cell pulls one bitline down through the
		// access/driver stack until the differential reaches the
		// sense minimum.
		iCell := acc.IonN * cell.AccessWidth / 2 // two-device stack
		m.vSignal = cell.SenseVmin
		m.tBitline = cBL*cell.SenseVmin/iCell + 0.38*rBL*cBL
	default:
		// Current-mode cells (gain cell read device, NVM storage
		// element): a fixed cell current discharges the bitline to
		// the sense threshold; no signal-margin cliff — longer
		// bitlines just develop more slowly.
		m.vSignal = cell.SenseVmin
		m.tBitline = cBL*cell.SenseVmin/cell.ReadCurrent + 0.38*rBL*cBL
	}

	// ---- Restore / writeback and precharge ----
	// DRAM sense amplifiers are pitch-matched to the narrow cell,
	// so their drive devices are small; SRAM precharge devices can
	// be wide.
	if isDRAM {
		saDrive := circuit.NewInverter(per, 8*per.Lphy)
		rSA := saDrive.DriveRes()
		// Full-swing restore of the bitline through the sense amp
		// and writeback into the cell through the access device.
		rAcc := dramAccessRes(acc, cell)
		// Writeback must fully restore the weakest cell (several
		// time constants of the access-device/cell RC).
		m.tRestore = 2.3*(rSA+rBL/2)*cBL + 5.2*rAcc*cell.Cs
		// Wordline must fall before the bitline pair equalizes back
		// to Vdd/2, with margin.
		m.tPrecharge = m.tWordline + 3.0*(rSA+rBL/2)*cBL
	} else {
		pre := circuit.NewInverter(per, 30*per.Lphy)
		// Recover the small read swing back to the rail: the
		// perturbation is SenseVmin, so one time constant with
		// margin suffices.
		m.tPrecharge = 1.2 * (pre.DriveRes() + rBL/2) * cBL
	}

	// ---- Energy (mux-independent terms) ----
	vdd := cell.Vdd
	if isDRAM {
		// Activation swings every bitline in the subarray: charge
		// redistribution plus sensing plus the full-rail restore
		// amounts to roughly a full Vdd swing per pair — and the
		// destructive readout means every cell of the row must be
		// written back (half CsVdd^2 each).
		m.eBLAct = float64(cfg.Cols) * (cBL*vdd*vdd + 0.5*cell.Cs*vdd*vdd)
	} else {
		// Read discharge: only the selected columns' bitlines swing
		// by the sense margin... but all columns are precharged and
		// the accessed row discharges all of them slightly; CACTI
		// charges the full column count at the read swing.
		m.eBLAct = float64(cfg.Cols) * cBL * cell.SenseVmin * vdd
	}
	m.eActPrefix = dec.Res.Energy + wlChain.Res.Energy + m.eWL + m.eBLAct
	// Writing one bit drives its bitline pair full swing; NVM cells
	// additionally pay the storage-element switching energy.
	m.eWritePerBit = cBL * vdd * vdd * 0.5
	if kind == tech.KindNVM {
		m.eWritePerBit += cell.EWriteCell
	}
	if isDRAM {
		m.ePrecharge = float64(subarraysPerMat) * float64(cfg.Cols) * cBL * (vdd / 2) * (vdd / 2)
	} else {
		m.ePrecharge = float64(subarraysPerMat) * float64(cfg.Cols) * cBL * cell.SenseVmin * vdd * 0.5
	}

	// ---- Leakage (mux-independent terms) ----
	if kind == tech.KindStatic {
		// 6T cell: access + pull-down/pull-up subthreshold paths,
		// plus two access transistors per extra port. Other kinds
		// have no rail-to-rail cell path: the 1T1C and gain cells
		// leak into the storage node (paid as refresh), and NVM
		// elements hold state without bias.
		m.cellLeak = vdd * acc.IoffN * cell.AccessWidth * (4.5 + 2*float64(cfg.Ports-1))
	}
	m.nCells = float64(subarraysPerMat) * float64(cfg.Rows) * float64(cfg.Cols)
	m.leakStaticPrefix = dec.Res.Leakage + wlChain.Res.Leakage*float64(cfg.Rows)

	// ---- Geometry (mux-independent part) ----
	// Central vertical strip holds the predecoder plus one wordline
	// driver per wordline (4*Rows of them), each folded to the cell
	// height (pitch matching).
	drvWidths := make([]float64, 0, 2*len(wlChain.Stages))
	for _, st := range wlChain.Stages {
		drvWidths = append(drvWidths, st.Wn, st.Wp)
	}
	wlDrvArea := circuit.GateArea(per, drvWidths, cellH)
	decStripArea := 2*dec.Res.Area + float64(subarraysPerMat*cfg.Rows)*wlDrvArea
	m.decWidth = decStripArea / (2 * saHeight)
	m.cellArea = float64(subarraysPerMat) * saWidth * saHeight
	m.width = 2*saWidth + m.decWidth
	return m, nil
}

// MuxParts holds the column-mux-dependent circuit blocks of the mat
// model: the sense-amplifier strip and the column-select decoder.
// Both depend only on (technology, RAM type, ports, cols, mux) — not
// on the subarray row count — so one MuxParts serves every Shared
// that agrees on those five inputs. CACTI-D's enumeration sweeps a
// rows x cols grid with mux innermost; memoizing MuxParts by
// (cols, mux) collapses the per-(rows,cols,mux) decoder and
// sense-amp modeling (the hot half of Build) to one evaluation per
// (cols, mux) pair.
type MuxParts struct {
	SA     circuit.Result // sense-amplifier strip (nSA amps)
	ColSel circuit.Result // column-select decoder
}

// MuxParts evaluates the mux-dependent circuit blocks for one column
// mux degree. It is a pure function of the Shared's (tech, RAM,
// ports, cols) and mux: two Shared values that agree on those inputs
// produce bit-identical MuxParts for the same mux.
func (s *Shared) MuxParts(mux int) MuxParts {
	if mux < 1 {
		mux = 1
	}
	nSA := s.cfg.Cols
	if !s.isDRAM {
		nSA = s.cfg.Cols / mux
	}
	return MuxParts{
		SA:     circuit.SenseAmp(s.cfg.Tech, s.per, nSA, s.cellW*float64(mux)),
		ColSel: circuit.NewDecoder(s.per, mux, 20e-15, s.colSelWireCap, s.colSelWireRes).Res,
	}
}

// Build completes the mat model for one column-mux degree, reusing
// every mux-independent quantity of the Shared stage. It returns
// ErrBadConfig when cols is not divisible by mux.
func (s *Shared) Build(mux int) (*Mat, error) {
	m := new(Mat)
	if err := s.BuildInto(mux, nil, m); err != nil {
		return nil, err
	}
	return m, nil
}

// BuildInto is Build writing into caller-provided storage — batch
// enumeration evaluates a whole shard into one flat slab instead of
// allocating a Mat per point. parts supplies memoized mux-dependent
// circuit blocks (see MuxParts); nil computes them in place.
func (s *Shared) BuildInto(mux int, parts *MuxParts, m *Mat) error {
	if mux < 1 {
		mux = 1
	}
	if s.cfg.Cols%mux != 0 {
		return fmt.Errorf("%w: cols %d not divisible by mux degree %d", ErrBadConfig, s.cfg.Cols, mux)
	}
	cfg := s.cfg
	cfg.DegBLMux = mux
	cell, per := s.cell, s.per

	*m = Mat{Config: cfg}
	m.Width = s.width
	m.CellArea = s.cellArea
	m.CBitline = s.cBitline
	m.VSignal = s.vSignal
	m.TDecoder = s.tDecoder
	m.TWordline = s.tWordline
	m.TBitline = s.tBitline
	m.TRestore = s.tRestore
	m.TPrecharge = s.tPrecharge
	m.EWritePerBit = s.eWritePerBit
	m.EPrecharge = s.ePrecharge

	// ---- Sense amplifiers and column-select decoder ----
	if parts == nil {
		p := s.MuxParts(mux)
		parts = &p
	}
	sa := parts.SA
	m.TSense = sa.Delay

	// ---- Column mux / data-out path ----
	m.DataBitsOut = cfg.Cols / cfg.DegBLMux * subarraysPerMat
	colSel := parts.ColSel
	if cfg.DegBLMux > 1 {
		m.TColumnMux = colSel.Delay / 2 // overlaps with sensing partially
	} else {
		m.TColumnMux = 0
	}

	// ---- Energy ----
	// All four subarrays of the mat activate together.
	m.EActivate = float64(subarraysPerMat) * (s.eActPrefix + sa.Energy)
	m.ERead = float64(subarraysPerMat) * (colSel.Energy +
		float64(m.DataBitsOut/subarraysPerMat)*20e-15*per.Vdd*per.Vdd)
	m.EWrite = m.ERead + float64(m.DataBitsOut)*m.EWritePerBit

	// ---- Leakage ----
	m.Leakage = s.nCells*s.cellLeak +
		float64(subarraysPerMat)*(s.leakStaticPrefix+sa.Leakage+colSel.Leakage)

	// ---- Refresh ----
	switch s.kind {
	case tech.Kind1T1C:
		// Every row of every subarray must be activated and
		// precharged once per retention period; the destructive read
		// restores the row as a side effect.
		ePerRowRefresh := (m.EActivate + m.EPrecharge) / float64(subarraysPerMat)
		m.RefreshPower = float64(subarraysPerMat) * float64(cfg.Rows) * ePerRowRefresh / cell.RetentionT
	case tech.KindGainCell:
		// The gain cell's read is non-destructive and does not
		// restore, so a refresh must activate the row AND explicitly
		// write every cell back through the write port.
		ePerRowRefresh := (m.EActivate+m.EPrecharge)/float64(subarraysPerMat) +
			float64(cfg.Cols)*s.eWritePerBit
		m.RefreshPower = float64(subarraysPerMat) * float64(cfg.Rows) * ePerRowRefresh / cell.RetentionT
	}

	// ---- Geometry ----
	// Sense strips (amps + precharge + write drivers + column mux)
	// run under each subarray pair: amps pitch-matched to the column
	// pitch, plus 60% for precharge/equalize, write drivers and the
	// column mux.
	saStripH := 1.6 * sa.Area / s.saWidth
	m.Height = 2*s.saHeight + 2*saStripH
	m.Area = m.Width * m.Height
	return nil
}

// AccessTime returns the read access time through the mat: decode,
// wordline, bitline development, sensing and column mux.
func (m *Mat) AccessTime() float64 {
	return m.TDecoder + m.TWordline + m.TBitline + m.TSense + m.TColumnMux
}

// RandomCycleTime returns the minimum interval between two accesses to
// the same subarray: for DRAM this includes the destructive-readout
// writeback/restore and precharge (Section 2.3.2); for SRAM only
// bitline recovery.
func (m *Mat) RandomCycleTime() float64 {
	if m.RAM.IsDRAM() {
		return m.TWordline + m.TBitline + m.TSense + m.TRestore + m.TPrecharge
	}
	return m.TWordline + m.TBitline + m.TSense + m.TPrecharge
}

// AreaEfficiency returns the fraction of the mat footprint occupied by
// cells.
func (m *Mat) AreaEfficiency() float64 { return m.CellArea / m.Area }

// RefreshRowEnergy returns the energy one mat spends refreshing one
// page (the same row of all four subarrays): activation plus
// precharge, and — for the non-restoring gain cell — the explicit
// writeback of every cell in the page. Zero for kinds that hold state
// without refresh.
func (m *Mat) RefreshRowEnergy() float64 {
	switch m.Tech.Cell(m.RAM).Kind {
	case tech.Kind1T1C:
		return m.EActivate + m.EPrecharge
	case tech.KindGainCell:
		return m.EActivate + m.EPrecharge +
			float64(subarraysPerMat)*float64(m.Cols)*m.EWritePerBit
	}
	return 0
}
