// Package mat models the basic physical building block of a CACTI-D
// memory array: the mat, a 2x2 group of identical subarrays sharing a
// central predecoder. A subarray is a grid of SRAM 6T or DRAM 1T1C
// cells (folded array organization for DRAM) with a row-decoder strip,
// a sense-amplifier strip, precharge devices and column multiplexers.
//
// The mat model produces the per-access timing components (decode,
// wordline, bitline, sense, restore/writeback, precharge), the
// activation/read/write energies, leakage and refresh power, and the
// mat footprint with pitch-matched peripheral circuitry — following
// the paper's approach of keeping SRAM and DRAM on a common framework
// and modeling only their essential differences (Section 2.3).
package mat

import (
	"errors"
	"fmt"

	"cactid/internal/circuit"
	"cactid/internal/tech"
)

// Config specifies one mat. Rows and Cols refer to a single subarray;
// the mat holds 4 (2x2) subarrays.
type Config struct {
	Tech *tech.Technology
	RAM  tech.RAMType

	Rows int // wordlines per subarray (power of two)
	Cols int // bitline pairs per subarray (power of two)

	// DegBLMux is the column (bitline) multiplexing degree: the
	// number of bitline pairs sharing one sense amplifier for SRAM,
	// or the number of sensed columns gated to one data line for
	// DRAM (DRAM senses every column — the page — and muxes after
	// the amplifiers).
	DegBLMux int

	// Ports is the number of independent read/write ports (SRAM
	// only; >1 grows the cell by one wordline and one bitline pair
	// per extra port). Zero means 1.
	Ports int
}

// subarraysPerMat is fixed by the mat floorplan (2x2 around the
// central predecode/driver spine).
const subarraysPerMat = 4

// contactCap is the fixed bitline contact capacitance contributed by
// each cell attached to a bitline, beyond junction and wire
// capacitance. Roughly constant across nodes (contact size does not
// scale as fast as gate length).
const contactCap = 0.08e-15 // F

// Mat is the evaluated physical model.
type Mat struct {
	Config

	// Geometry.
	Width, Height float64 // m
	Area          float64 // m^2 (Width*Height)
	CellArea      float64 // m^2 of pure cell matrix (for area efficiency)

	// Timing components (s), in access order.
	TDecoder   float64 // predecode + row decode up to wordline driver input
	TWordline  float64 // wordline driver + RC rise
	TBitline   float64 // bitline signal development (read)
	TSense     float64 // sense amplifier resolution
	TColumnMux float64 // column select and mux to mat data lines
	TRestore   float64 // DRAM writeback/restore after destructive read (0 for SRAM)
	TPrecharge float64 // bitline precharge/equalize

	// Bitline electricals (exposed for the DRAM chip-level model).
	CBitline float64 // per-bitline capacitance (F)
	VSignal  float64 // developed read signal (V)

	// Energy per mat access (J). EActivate covers row decode +
	// wordline + bitline swing + sensing of the full row (for DRAM
	// this is the page-activation energy share of this mat). ERead /
	// EWrite cover the column path per access. EPrecharge restores
	// the bitlines.
	EActivate    float64
	ERead        float64
	EWrite       float64
	EWritePerBit float64 // bitline energy to write a single bit
	EPrecharge   float64

	// Standby power (W).
	Leakage      float64
	RefreshPower float64

	// DataBitsOut is the number of data bits the mat delivers per
	// access after column muxing.
	DataBitsOut int
}

// Common validation errors.
var (
	ErrSignalMargin = errors.New("mat: DRAM bitline too long, read signal below sense amplifier minimum")
	ErrBadConfig    = errors.New("mat: invalid configuration")
)

func isPow2(x int) bool { return x > 0 && x&(x-1) == 0 }

// dramAccessRes is the effective resistance of the 1T1C access
// transistor during charge transfer and writeback. The wordline boost
// to VPP improves the gate overdrive; the resistance scales inversely
// with (VPP - Vth - Vdd/2), the overdrive available when restoring a
// full "1" into the cell.
func dramAccessRes(acc *tech.DeviceParams, cell *tech.CellParams) float64 {
	overdrive := cell.Vpp - acc.Vth - cell.Vdd/2
	if overdrive < 0.2 {
		overdrive = 0.2
	}
	return 0.75 * (cell.Vdd / overdrive) * acc.RnOnPerWidth / cell.AccessWidth
}

// New evaluates the mat model for cfg. It returns ErrSignalMargin if
// a DRAM configuration cannot develop enough differential signal, or
// ErrBadConfig for malformed inputs.
func New(cfg Config) (*Mat, error) {
	if cfg.Tech == nil {
		return nil, fmt.Errorf("%w: nil Technology", ErrBadConfig)
	}
	if !isPow2(cfg.Rows) || !isPow2(cfg.Cols) {
		return nil, fmt.Errorf("%w: rows=%d cols=%d must be powers of two", ErrBadConfig, cfg.Rows, cfg.Cols)
	}
	if cfg.DegBLMux < 1 {
		cfg.DegBLMux = 1
	}
	if cfg.Cols%cfg.DegBLMux != 0 {
		return nil, fmt.Errorf("%w: cols %d not divisible by mux degree %d", ErrBadConfig, cfg.Cols, cfg.DegBLMux)
	}
	if cfg.Ports < 1 {
		cfg.Ports = 1
	}
	if cfg.Ports > 1 && cfg.RAM.IsDRAM() {
		return nil, fmt.Errorf("%w: multiported cells are SRAM-only", ErrBadConfig)
	}

	t := cfg.Tech
	cell := t.Cell(cfg.RAM)
	acc := t.Device(cell.AccessDevice)
	per := t.Device(cell.PeripheralDevice)
	isDRAM := cfg.RAM.IsDRAM()

	m := &Mat{Config: cfg}

	f := t.F
	cellW := cell.CellWidth(f)
	cellH := cell.CellHeight(f)
	// Each extra port adds a wordline track to the cell height and a
	// bitline-pair track to the cell width (classic multiport
	// growth: the cell area grows roughly quadratically with ports).
	if extra := float64(cfg.Ports - 1); extra > 0 {
		cellW += 2 * f * extra
		cellH += 2 * f * extra
	}
	saWidth := float64(cfg.Cols) * cellW
	saHeight := float64(cfg.Rows) * cellH

	// ---- Wordline ----
	// Local wire along the row, in the cell's bitline-compatible
	// metal (copper for SRAM/LP-DRAM rows too; rows are typically
	// strapped metal over poly).
	wlWire := t.WireOf(tech.WireLocal, tech.Copper)
	wlLen := saWidth
	// Gate load: SRAM has two access transistors per cell on the
	// wordline; DRAM one.
	gatesPerCell := 2.0
	if isDRAM {
		gatesPerCell = 1.0
	}
	cGate := (acc.CgIdealPerWidth + acc.CFringePerWidth) * cell.AccessWidth
	cWL := wlWire.CPerLen*wlLen + float64(cfg.Cols)*gatesPerCell*cGate
	rWL := wlWire.RPerLen * wlLen

	// Wordline driver chain, pitch-matched to the cell height.
	minCin := 3 * (per.CgIdealPerWidth + per.CFringePerWidth) * 6 * per.Lphy
	wlChain := circuit.OptimalChain(per, minCin, cWL, 1)
	// Distributed RC rise of the line itself.
	tWLrc := 0.38 * rWL * cWL
	m.TWordline = wlChain.Res.Delay + tWLrc

	// Wordline swing voltage: boosted for DRAM.
	vWL := per.Vdd
	if isDRAM {
		vWL = cell.Vpp
	}
	eWL := cWL * vWL * vWL // full swing up and down per activation

	// ---- Row decoder ----
	predecWireLen := saHeight / 2
	gWire := t.Wire(tech.WireSemiGlobal)
	dec := circuit.NewDecoder(per, cfg.Rows, wlChain.Res.Cin,
		gWire.CPerLen*predecWireLen, gWire.RPerLen*predecWireLen)
	m.TDecoder = dec.Res.Delay

	// ---- Bitline ----
	blWire := t.WireOf(tech.WireLocal, cell.BitlineMaterial)
	blLen := saHeight
	// Cells attached per bitline: every row for SRAM; every other
	// row for the folded DRAM array.
	attach := float64(cfg.Rows)
	if isDRAM {
		attach = float64(cfg.Rows) / 2
	}
	cPerCell := acc.CJuncPerWidth*cell.AccessWidth + contactCap
	cBL := blWire.CPerLen*blLen + attach*cPerCell
	rBL := blWire.RPerLen * blLen
	m.CBitline = cBL

	if isDRAM {
		// Charge redistribution: cell cap shares with the bitline.
		cs := cell.Cs
		m.VSignal = (cell.Vdd / 2) * cs / (cs + cBL)
		if m.VSignal < cell.SenseVmin {
			return nil, fmt.Errorf("%w: rows=%d gives %.1fmV < %.1fmV",
				ErrSignalMargin, cfg.Rows, m.VSignal*1e3, cell.SenseVmin*1e3)
		}
		// Transfer through the boosted access device onto the
		// series-parallel capacitance, plus distributed bitline RC.
		rAcc := dramAccessRes(acc, cell)
		cShare := cs * cBL / (cs + cBL)
		m.TBitline = 2.3*rAcc*cShare + 0.38*rBL*cBL
	} else {
		// SRAM: the cell pulls one bitline down through the
		// access/driver stack until the differential reaches the
		// sense minimum.
		iCell := acc.IonN * cell.AccessWidth / 2 // two-device stack
		m.VSignal = cell.SenseVmin
		m.TBitline = cBL*cell.SenseVmin/iCell + 0.38*rBL*cBL
	}

	// ---- Sense amplifiers ----
	nSA := cfg.Cols
	if !isDRAM {
		nSA = cfg.Cols / cfg.DegBLMux
	}
	sa := circuit.SenseAmp(t, per, nSA, cellW*float64(cfg.DegBLMux))
	m.TSense = sa.Delay

	// ---- Column mux / data-out path ----
	m.DataBitsOut = cfg.Cols / cfg.DegBLMux * subarraysPerMat
	colSel := circuit.NewDecoder(per, cfg.DegBLMux, 20e-15,
		gWire.CPerLen*saWidth/4, gWire.RPerLen*saWidth/4)
	if cfg.DegBLMux > 1 {
		m.TColumnMux = colSel.Res.Delay / 2 // overlaps with sensing partially
	} else {
		m.TColumnMux = 0
	}

	// ---- Restore / writeback and precharge ----
	// DRAM sense amplifiers are pitch-matched to the narrow cell,
	// so their drive devices are small; SRAM precharge devices can
	// be wide.
	if isDRAM {
		saDrive := circuit.NewInverter(per, 8*per.Lphy)
		rSA := saDrive.DriveRes()
		// Full-swing restore of the bitline through the sense amp
		// and writeback into the cell through the access device.
		rAcc := dramAccessRes(acc, cell)
		// Writeback must fully restore the weakest cell (several
		// time constants of the access-device/cell RC).
		m.TRestore = 2.3*(rSA+rBL/2)*cBL + 5.2*rAcc*cell.Cs
		// Wordline must fall before the bitline pair equalizes back
		// to Vdd/2, with margin.
		m.TPrecharge = m.TWordline + 3.0*(rSA+rBL/2)*cBL
	} else {
		pre := circuit.NewInverter(per, 30*per.Lphy)
		// Recover the small read swing back to the rail: the
		// perturbation is SenseVmin, so one time constant with
		// margin suffices.
		m.TPrecharge = 1.2 * (pre.DriveRes() + rBL/2) * cBL
	}

	// ---- Energy ----
	vdd := cell.Vdd
	var eBLAct float64
	if isDRAM {
		// Activation swings every bitline in the subarray: charge
		// redistribution plus sensing plus the full-rail restore
		// amounts to roughly a full Vdd swing per pair — and the
		// destructive readout means every cell of the row must be
		// written back (half CsVdd^2 each).
		eBLAct = float64(cfg.Cols) * (cBL*vdd*vdd + 0.5*cell.Cs*vdd*vdd)
	} else {
		// Read discharge: only the selected columns' bitlines swing
		// by the sense margin... but all columns are precharged and
		// the accessed row discharges all of them slightly; CACTI
		// charges the full column count at the read swing.
		eBLAct = float64(cfg.Cols) * cBL * cell.SenseVmin * vdd
	}
	// All four subarrays of the mat activate together.
	m.EActivate = float64(subarraysPerMat) * (dec.Res.Energy + wlChain.Res.Energy + eWL + eBLAct + sa.Energy)
	m.ERead = float64(subarraysPerMat) * (colSel.Res.Energy +
		float64(m.DataBitsOut/subarraysPerMat)*20e-15*per.Vdd*per.Vdd)
	// Writing one bit drives its bitline pair full swing.
	m.EWritePerBit = cBL * vdd * vdd * 0.5
	m.EWrite = m.ERead + float64(m.DataBitsOut)*m.EWritePerBit
	if isDRAM {
		m.EPrecharge = float64(subarraysPerMat) * float64(cfg.Cols) * cBL * (vdd / 2) * (vdd / 2)
	} else {
		m.EPrecharge = float64(subarraysPerMat) * float64(cfg.Cols) * cBL * cell.SenseVmin * vdd * 0.5
	}

	// ---- Leakage ----
	var cellLeak float64
	if !isDRAM {
		// 6T cell: access + pull-down/pull-up subthreshold paths,
		// plus two access transistors per extra port.
		cellLeak = vdd * acc.IoffN * cell.AccessWidth * (4.5 + 2*float64(cfg.Ports-1))
	}
	nCells := float64(subarraysPerMat) * float64(cfg.Rows) * float64(cfg.Cols)
	m.Leakage = nCells*cellLeak +
		float64(subarraysPerMat)*(dec.Res.Leakage+wlChain.Res.Leakage*float64(cfg.Rows)+sa.Leakage+colSel.Res.Leakage)

	// ---- Refresh ----
	if isDRAM {
		// Every row of every subarray must be activated and
		// precharged once per retention period.
		ePerRowRefresh := (m.EActivate + m.EPrecharge) / float64(subarraysPerMat)
		m.RefreshPower = float64(subarraysPerMat) * float64(cfg.Rows) * ePerRowRefresh / cell.RetentionT
	}

	// ---- Geometry ----
	// Central vertical strip holds the predecoder plus one wordline
	// driver per wordline (4*Rows of them), each folded to the cell
	// height (pitch matching). Sense strips (amps + precharge +
	// write drivers + column mux) run under each subarray pair.
	var drvWidths []float64
	for _, st := range wlChain.Stages {
		drvWidths = append(drvWidths, st.Wn, st.Wp)
	}
	wlDrvArea := circuit.GateArea(per, drvWidths, cellH)
	decStripArea := 2*dec.Res.Area + float64(subarraysPerMat*cfg.Rows)*wlDrvArea
	decWidth := decStripArea / (2 * saHeight)
	// Sense strip: amps pitch-matched to the column pitch, plus 60%
	// for precharge/equalize, write drivers and the column mux.
	saStripH := 1.6 * sa.Area / saWidth
	m.CellArea = float64(subarraysPerMat) * saWidth * saHeight
	m.Width = 2*saWidth + decWidth
	m.Height = 2*saHeight + 2*saStripH
	m.Area = m.Width * m.Height
	return m, nil
}

// AccessTime returns the read access time through the mat: decode,
// wordline, bitline development, sensing and column mux.
func (m *Mat) AccessTime() float64 {
	return m.TDecoder + m.TWordline + m.TBitline + m.TSense + m.TColumnMux
}

// RandomCycleTime returns the minimum interval between two accesses to
// the same subarray: for DRAM this includes the destructive-readout
// writeback/restore and precharge (Section 2.3.2); for SRAM only
// bitline recovery.
func (m *Mat) RandomCycleTime() float64 {
	if m.RAM.IsDRAM() {
		return m.TWordline + m.TBitline + m.TSense + m.TRestore + m.TPrecharge
	}
	return m.TWordline + m.TBitline + m.TSense + m.TPrecharge
}

// AreaEfficiency returns the fraction of the mat footprint occupied by
// cells.
func (m *Mat) AreaEfficiency() float64 { return m.CellArea / m.Area }
