// Lower bounds on the mat model for branch-and-bound enumeration.
//
// The enumeration in internal/array discards (rows, cols, mux) grid
// points whose best possible bank falls outside the staged optimizer
// constraints, before any circuit modeling. This file supplies the
// mat-level ingredients at two fidelities:
//
//   - Closed-form bounds (CellDims, GeomLB, AccessLB, EnergyLB, and
//     the tighter NewShardLB): computable from the technology tables
//     alone, used to discard a whole (rows, cols) shard before
//     NewShared runs. GeomLB/AccessLB keep only the provably monotone
//     terms of the model — pure cell geometry, the distributed
//     wordline RC, the exact bitline development time and the
//     constant sense-amp resolution — and bound everything else
//     (decoder, driver chains, sense strips) by zero. NewShardLB
//     spends one wordline-chain sizing and a handful of gate-area
//     evaluations to recover most of what GeomLB/AccessLB give away:
//     the exact wordline-driver delay, the decoder's distribution-wire
//     Elmore term, the wordline-driver share of the decoder strip
//     width, and the smallest possible sense-amp strip height.
//
//   - Shared-level exact terms (MatAccessOf, MatAreaOf, WidthLB,
//     MatAccessLB): once a shard survives and its Shared exists,
//     these reproduce Build's access time and footprint for one mux
//     degree exactly (given its MuxParts) or bound them tightly
//     (without), letting individual mux points be discarded before
//     BuildInto.
//
// Admissibility — bound <= fully-modeled value — is enforced by
// property tests in internal/array and internal/core; the derivation
// is documented in DESIGN.md §1.2e.
package mat

import (
	"math"

	"cactid/internal/circuit"
	"cactid/internal/tech"
)

// CellDims returns the per-cell width and height for a RAM type with
// the multiport cell growth applied — the geometric seed of both the
// mat model (NewShared) and the enumeration lower bounds. ports < 1
// means 1.
func CellDims(t *tech.Technology, ram tech.RAMType, ports int) (w, h float64) {
	cell := t.Cell(ram)
	f := t.F
	w = cell.CellWidth(f)
	h = cell.CellHeight(f)
	if ports < 1 {
		ports = 1
	}
	if extra := float64(ports - 1); extra > 0 {
		w += 2 * f * extra
		h += 2 * f * extra
	}
	return w, h
}

// GeomLB returns lower bounds on one mat's width and height from pure
// cell geometry: the 2x2 subarray matrix with the decoder strip and
// sense strips excluded (both are nonnegative additions in Build).
func GeomLB(t *tech.Technology, ram tech.RAMType, ports, rows, cols int) (w, h float64) {
	cw, ch := CellDims(t, ram, ports)
	return 2 * float64(cols) * cw, 2 * float64(rows) * ch
}

// AccessLB returns a lower bound on the mat access time computable
// without NewShared: the exact distributed wordline RC term, the exact
// closed-form bitline development time, and the constant sense-amp
// delay. The decoder, wordline-driver chain and column-mux delays are
// all nonnegative and are bounded by zero. The wordline and bitline
// expressions mirror NewShared term for term; admissibility is pinned
// by TestBoundAdmissibility.
func AccessLB(t *tech.Technology, ram tech.RAMType, ports, rows, cols int) float64 {
	cell := t.Cell(ram)
	acc := t.Device(cell.AccessDevice)
	kind := cell.Kind
	cw, ch := CellDims(t, ram, ports)
	saW := float64(cols) * cw
	saH := float64(rows) * ch

	// Wordline distributed RC (NewShared's tWLrc term; the driver
	// chain delay in front of it is bounded by zero).
	wlWire := t.WireOf(tech.WireLocal, tech.Copper)
	gatesPerCell := 2.0
	if kind != tech.KindStatic {
		gatesPerCell = 1.0
	}
	cGate := (acc.CgIdealPerWidth + acc.CFringePerWidth) * cell.AccessWidth
	cWL := wlWire.CPerLen*saW + float64(cols)*gatesPerCell*cGate
	rWL := wlWire.RPerLen * saW
	tWL := 0.38 * rWL * cWL

	// Bitline development: exact closed form (rows decide everything).
	blWire := t.WireOf(tech.WireLocal, cell.BitlineMaterial)
	attach := float64(rows)
	if kind == tech.Kind1T1C {
		attach = float64(rows) / 2
	}
	cPerCell := acc.CJuncPerWidth*cell.AccessWidth + contactCap
	cBL := blWire.CPerLen*saH + attach*cPerCell
	rBL := blWire.RPerLen * saH
	tBL := bitlineTime(cell, acc, cBL, rBL)
	return tWL + tBL + t.SenseAmpDelay
}

// bitlineTime reproduces NewShared's per-kind bitline development time
// from the closed-form capacitance — the same expressions, so the
// bound stays exact for this term. Cells NewShared would reject (a
// current-mode kind without a read current) bound to +Inf, pruning
// the shard NewShared would error on anyway.
func bitlineTime(cell *tech.CellParams, acc *tech.DeviceParams, cBL, rBL float64) float64 {
	switch cell.Kind {
	case tech.Kind1T1C:
		cs := cell.Cs
		rAcc := dramAccessRes(acc, cell)
		cShare := cs * cBL / (cs + cBL)
		return 2.3*rAcc*cShare + 0.38*rBL*cBL
	case tech.KindStatic:
		iCell := acc.IonN * cell.AccessWidth / 2
		return cBL*cell.SenseVmin/iCell + 0.38*rBL*cBL
	default:
		if cell.ReadCurrent <= 0 {
			return math.Inf(1)
		}
		return cBL*cell.SenseVmin/cell.ReadCurrent + 0.38*rBL*cBL
	}
}

// ShardLB carries the tightened closed-form lower bounds of one
// (rows, cols) shard: mat footprint and mat access time valid for
// every mux degree the shard can take. It costs one wordline-chain
// sizing plus a dozen gate-area evaluations — far below NewShared —
// and is markedly tighter than GeomLB/AccessLB, so the enumeration
// uses it as a second bounding tier when the cheap tier fails to
// discard a shard.
type ShardLB struct {
	MatW   float64 // mat width lower bound (m)
	MatH   float64 // mat height lower bound (m)
	Access float64 // mat access-time lower bound (s)
}

// NewShardLB computes the tightened shard-level lower bounds. Exact
// terms (identical expressions to NewShared/Build): the wordline
// driver chain and distributed RC, the bitline development time, the
// sense-amp resolution, and the wordline-driver share of the decoder
// strip. Bounded terms: the decoder delay keeps only its
// distribution-wire Elmore component, the decoder strip width drops
// the predecoder/row-gate areas, and the sense strip takes the
// smallest area over every power-of-two mux degree up to cols (a
// superset of the feasible degrees, so the min is still a bound).
func NewShardLB(t *tech.Technology, ram tech.RAMType, ports, rows, cols int) ShardLB {
	cell := t.Cell(ram)
	acc := t.Device(cell.AccessDevice)
	per := t.Device(cell.PeripheralDevice)
	kind := cell.Kind
	isDRAM := kind == tech.Kind1T1C
	cw, ch := CellDims(t, ram, ports)
	saW := float64(cols) * cw
	saH := float64(rows) * ch

	// Wordline: driver chain plus distributed RC, both exact.
	wlWire := t.WireOf(tech.WireLocal, tech.Copper)
	gatesPerCell := 2.0
	if kind != tech.KindStatic {
		gatesPerCell = 1.0
	}
	cGate := (acc.CgIdealPerWidth + acc.CFringePerWidth) * cell.AccessWidth
	cWL := wlWire.CPerLen*saW + float64(cols)*gatesPerCell*cGate
	rWL := wlWire.RPerLen * saW
	minCin := 3 * (per.CgIdealPerWidth + per.CFringePerWidth) * 6 * per.Lphy
	wlChain := circuit.OptimalChain(per, minCin, cWL, 1)
	tWL := wlChain.Res.Delay + 0.38*rWL*cWL

	// Row decoder: the predecode distribution wire's Elmore term is
	// exact; the (nonnegative) gate-chain delays are bounded by zero.
	gWire := t.Wire(tech.WireSemiGlobal)
	preWireLen := saH / 2
	tDec := 0.38 * (gWire.RPerLen * preWireLen) * (gWire.CPerLen * preWireLen)

	// Bitline development: exact closed form (rows decide everything).
	blWire := t.WireOf(tech.WireLocal, cell.BitlineMaterial)
	attach := float64(rows)
	if isDRAM {
		attach = float64(rows) / 2
	}
	cPerCell := acc.CJuncPerWidth*cell.AccessWidth + contactCap
	cBL := blWire.CPerLen*saH + attach*cPerCell
	rBL := blWire.RPerLen * saH
	tBL := bitlineTime(cell, acc, cBL, rBL)

	// Width: two subarrays plus the wordline-driver rows of the
	// decoder strip (2*dec.Res.Area in NewShared is nonnegative and
	// bounded by zero; the driver term is exact).
	var widthBuf [16]float64
	dw := widthBuf[:0]
	for _, st := range wlChain.Stages {
		dw = append(dw, st.Wn, st.Wp)
	}
	wlDrvArea := circuit.GateArea(per, dw, ch)
	matW := 2*saW + float64(subarraysPerMat*rows)*wlDrvArea/(2*saH)

	// Height: two subarrays plus twice the smallest sense-amp strip
	// over every power-of-two mux degree.
	minStrip := math.Inf(1)
	for mux := 1; mux <= cols; mux <<= 1 {
		nSA := cols
		if !isDRAM {
			nSA = cols / mux
		}
		strip := 1.6 * circuit.SenseAmp(t, per, nSA, cw*float64(mux)).Area / saW
		if strip < minStrip {
			minStrip = strip
		}
	}
	matH := 2*saH + 2*minStrip

	return ShardLB{MatW: matW, MatH: matH, Access: tDec + tWL + tBL + t.SenseAmpDelay}
}

// SignalMarginOK reports whether a 1T1C subarray with the given row
// count develops enough differential signal — the exact test NewShared
// applies (ErrSignalMargin), evaluated from the closed-form bitline
// capacitance so enumeration can discard doomed shards without paying
// for the circuit model. The expressions mirror NewShared float op for
// float op, so the outcome is bit-identical to building and checking.
// Configurations NewShared rejects for other reasons first (cells
// without charge sensing, multiported DRAM) report true and are left
// for NewShared to classify.
func SignalMarginOK(t *tech.Technology, ram tech.RAMType, ports, rows int) bool {
	cell := t.Cell(ram)
	if cell.Kind != tech.Kind1T1C || ports > 1 {
		return true
	}
	acc := t.Device(cell.AccessDevice)
	_, ch := CellDims(t, ram, ports)
	saH := float64(rows) * ch
	blWire := t.WireOf(tech.WireLocal, cell.BitlineMaterial)
	attach := float64(rows) / 2
	cPerCell := acc.CJuncPerWidth*cell.AccessWidth + contactCap
	cBL := blWire.CPerLen*saH + attach*cPerCell
	cs := cell.Cs
	vSignal := (cell.Vdd / 2) * cs / (cs + cBL)
	return vSignal >= cell.SenseVmin
}

// EnergyLB returns a lower bound on one bank access's read energy
// (activate + read + precharge) from the wordline and bitline lengths
// alone: at least one mat activates, swinging its wordline and all its
// bitlines, and restores them afterwards. H-tree, decoder, sense and
// column-path energies are nonnegative and bounded by zero.
func EnergyLB(t *tech.Technology, ram tech.RAMType, ports, rows, cols int) float64 {
	cell := t.Cell(ram)
	acc := t.Device(cell.AccessDevice)
	per := t.Device(cell.PeripheralDevice)
	kind := cell.Kind
	isDRAM := kind == tech.Kind1T1C
	cw, ch := CellDims(t, ram, ports)
	saW := float64(cols) * cw
	saH := float64(rows) * ch

	wlWire := t.WireOf(tech.WireLocal, tech.Copper)
	gatesPerCell := 2.0
	if kind != tech.KindStatic {
		gatesPerCell = 1.0
	}
	cGate := (acc.CgIdealPerWidth + acc.CFringePerWidth) * cell.AccessWidth
	cWL := wlWire.CPerLen*saW + float64(cols)*gatesPerCell*cGate
	vWL := per.Vdd
	if cell.Vpp > 0 {
		vWL = cell.Vpp
	}
	eWL := cWL * vWL * vWL

	blWire := t.WireOf(tech.WireLocal, cell.BitlineMaterial)
	attach := float64(rows)
	if isDRAM {
		attach = float64(rows) / 2
	}
	cPerCell := acc.CJuncPerWidth*cell.AccessWidth + contactCap
	cBL := blWire.CPerLen*saH + attach*cPerCell

	vdd := cell.Vdd
	var eBLAct, ePre float64
	if isDRAM {
		eBLAct = float64(cols) * (cBL*vdd*vdd + 0.5*cell.Cs*vdd*vdd)
		ePre = float64(subarraysPerMat) * float64(cols) * cBL * (vdd / 2) * (vdd / 2)
	} else {
		eBLAct = float64(cols) * cBL * cell.SenseVmin * vdd
		ePre = float64(subarraysPerMat) * float64(cols) * cBL * cell.SenseVmin * vdd * 0.5
	}
	// One activated mat: all four subarrays swing; precharge restores.
	return float64(subarraysPerMat)*(eWL+eBLAct) + ePre
}

// WidthLB returns the exact mat width Build will report (it is
// mux-independent: 2 subarrays plus the decoder strip).
func (s *Shared) WidthLB() float64 { return s.width }

// HeightLB returns a mux-independent lower bound on the mat height:
// the subarray matrix with the sense strips (which depend on the mux
// degree) bounded by zero.
func (s *Shared) HeightLB() float64 { return 2 * s.saHeight }

// MatAccessLB returns a mux-independent lower bound on the mat access
// time with the decoder, wordline and bitline stages exact and the
// column mux bounded by zero (TSense is the constant sense-amp delay).
func (s *Shared) MatAccessLB() float64 {
	return s.tDecoder + s.tWordline + s.tBitline + s.cfg.Tech.SenseAmpDelay
}

// MatAccessOf returns the exact mat access time Build would report for
// one mux degree, given its MuxParts, without building the model.
func (s *Shared) MatAccessOf(parts *MuxParts, mux int) float64 {
	tCol := 0.0
	if mux > 1 {
		tCol = parts.ColSel.Delay / 2
	}
	return s.tDecoder + s.tWordline + s.tBitline + parts.SA.Delay + tCol
}

// MatAreaOf returns the exact mat footprint Build would report for one
// mux degree, given its MuxParts.
func (s *Shared) MatAreaOf(parts *MuxParts) float64 {
	saStripH := 1.6 * parts.SA.Area / s.saWidth
	return s.width * (2*s.saHeight + 2*saStripH)
}

// MatDimsOf returns the exact mat width and height Build would report
// for one mux degree, given its MuxParts — the same floats, from the
// same operations, as BuildInto's geometry section. The bank-level
// exact point evaluation folds these into the H-tree floorplan.
func (s *Shared) MatDimsOf(parts *MuxParts) (w, h float64) {
	saStripH := 1.6 * parts.SA.Area / s.saWidth
	return s.width, 2*s.saHeight + 2*saStripH
}
