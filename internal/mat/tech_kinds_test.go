package mat

import (
	"math"
	"testing"
	"testing/quick"

	"cactid/internal/tech"
)

func techFor(t *testing.T, name string, n tech.Node) *tech.Technology {
	t.Helper()
	tt, err := tech.TechnologyOf(name, n)
	if err != nil {
		t.Fatal(err)
	}
	return tt
}

func ramOf(t *testing.T, name string) tech.RAMType {
	t.Helper()
	p, err := tech.Resolve(name)
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.DataRAM(tech.SRAM)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// Every provider's cell must produce a finite, positive mat model, and
// the write energy must never fall below the read energy — for NVM
// kinds the gap is the storage-element switching energy, which is the
// headline asymmetry of the technology.
func TestKindsBuildAndWriteDominatesRead(t *testing.T) {
	for _, name := range []string{"itrs-sram", "itrs-lpdram", "itrs-commdram", "stt-ram", "pcm", "gain-cell"} {
		tt := techFor(t, name, tech.Node32)
		ram := ramOf(t, name)
		m, err := New(Config{Tech: tt, RAM: ram, Rows: 256, Cols: 256, DegBLMux: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fin := func(v float64) bool { return v > 0 && !math.IsNaN(v) && !math.IsInf(v, 0) }
		if !fin(m.AccessTime()) || !fin(m.EActivate) || !fin(m.ERead) || !fin(m.Area) {
			t.Errorf("%s: non-finite mat metrics: acc=%g eact=%g erd=%g area=%g",
				name, m.AccessTime(), m.EActivate, m.ERead, m.Area)
		}
		if m.EWrite < m.ERead {
			t.Errorf("%s: write energy %g below read energy %g", name, m.EWrite, m.ERead)
		}
	}
}

// The NVM write-per-bit energy must include the cell switching energy
// on top of the bitline swing: quick-checked across subarray shapes so
// the property is not an artifact of one geometry.
func TestNVMWriteEnergyExceedsBitlineSwing(t *testing.T) {
	for _, name := range []string{"stt-ram", "pcm"} {
		tt := techFor(t, name, tech.Node32)
		ram := ramOf(t, name)
		cell := tt.Cell(ram)
		if cell.EWriteCell <= 0 || cell.WritePulse <= 0 || cell.Endurance <= 0 {
			t.Fatalf("%s: NVM cell missing write parameters: %+v", name, cell)
		}
		f := func(r, c uint8) bool {
			rows := 64 << (r % 4)
			cols := 64 << (c % 4)
			m, err := New(Config{Tech: tt, RAM: ram, Rows: rows, Cols: cols, DegBLMux: 1})
			if err != nil {
				return true
			}
			// eWritePerBit = cBL*vdd^2/2 + EWriteCell >= EWriteCell.
			return m.EWritePerBit >= cell.EWriteCell
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 32}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Gain-cell refresh is retention-driven: shrinking the retention time
// must raise the refresh power, monotonically, across random subarray
// shapes and retention scalings (testing/quick). The comparison builds
// the same geometry under two retention values that differ by a
// random factor > 1.
func TestGainCellRefreshMonotoneInRetention(t *testing.T) {
	base := techFor(t, "gain-cell", tech.Node32)
	ram := ramOf(t, "gain-cell")
	if k := base.Cell(ram).Kind; k != tech.KindGainCell {
		t.Fatalf("gain-cell provider cell kind = %v", k)
	}
	refreshAt := func(rows, cols int, retention float64) (float64, bool) {
		tt := *base // shallow copy; Cells is an array, so this clones it
		tt.Cells[ram].RetentionT = retention
		m, err := New(Config{Tech: &tt, RAM: ram, Rows: rows, Cols: cols, DegBLMux: 1})
		if err != nil {
			return 0, false
		}
		return m.RefreshPower, true
	}
	f := func(r, c uint8, shrink uint8) bool {
		rows := 64 << (r % 4)
		cols := 64 << (c % 4)
		ret := base.Cell(ram).RetentionT
		factor := 1.0 + float64(shrink%100+1)/10 // (1, 11]
		hi, ok1 := refreshAt(rows, cols, ret)
		lo, ok2 := refreshAt(rows, cols, ret/factor)
		if !ok1 || !ok2 {
			return true
		}
		return lo > hi && hi > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}

// The gain-cell refresh must pay the writeback term the 1T1C kind gets
// for free from its destructive read: per refreshed row it exceeds a
// pure activate+precharge cycle by the full-row write energy.
func TestGainCellRefreshIncludesWriteback(t *testing.T) {
	tt := techFor(t, "gain-cell", tech.Node32)
	ram := ramOf(t, "gain-cell")
	m, err := New(Config{Tech: tt, RAM: ram, Rows: 256, Cols: 256, DegBLMux: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.RefreshRowEnergy(); got <= m.EActivate+m.EPrecharge {
		t.Errorf("RefreshRowEnergy %g does not exceed activate+precharge %g",
			got, m.EActivate+m.EPrecharge)
	}
}

// Closed-form bound admissibility for the new kinds, mirrored from
// NewShared: AccessLB and EnergyLB must never exceed the built mat's
// access time and activation-energy surface, for any feasible shape.
func TestBoundsAdmissibleForAllKinds(t *testing.T) {
	for _, name := range []string{"itrs-sram", "itrs-lpdram", "itrs-commdram", "stt-ram", "pcm", "gain-cell"} {
		tt := techFor(t, name, tech.Node32)
		ram := ramOf(t, name)
		for _, rows := range []int{64, 256, 1024} {
			for _, cols := range []int{64, 256, 1024} {
				m, err := New(Config{Tech: tt, RAM: ram, Rows: rows, Cols: cols, DegBLMux: 1})
				if err != nil {
					continue
				}
				if lb := AccessLB(tt, ram, 1, rows, cols); lb > m.AccessTime() {
					t.Errorf("%s %dx%d: AccessLB %g > built %g", name, rows, cols, lb, m.AccessTime())
				}
				slb := NewShardLB(tt, ram, 1, rows, cols)
				if slb.Access > m.AccessTime() {
					t.Errorf("%s %dx%d: ShardLB.Access %g > built %g", name, rows, cols, slb.Access, m.AccessTime())
				}
				if slb.MatW > m.Width || slb.MatH > m.Height {
					t.Errorf("%s %dx%d: ShardLB dims (%g, %g) exceed built (%g, %g)",
						name, rows, cols, slb.MatW, slb.MatH, m.Width, m.Height)
				}
				if lb := EnergyLB(tt, ram, 1, rows, cols); lb > m.EActivate+m.EPrecharge {
					t.Errorf("%s %dx%d: EnergyLB %g > activate+precharge %g",
						name, rows, cols, lb, m.EActivate+m.EPrecharge)
				}
			}
		}
	}
}
