package store

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"cactid/internal/chaos"
	"cactid/internal/core"
	"cactid/internal/tech"
)

func openT(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mustPut(t *testing.T, s *Store, key string, val []byte) {
	t.Helper()
	if err := s.Put(context.Background(), key, val); err != nil {
		t.Fatalf("Put(%q): %v", key, err)
	}
}

func mustGet(t *testing.T, s *Store, key string) []byte {
	t.Helper()
	val, ok, err := s.Get(context.Background(), key)
	if err != nil || !ok {
		t.Fatalf("Get(%q) = ok=%v err=%v, want hit", key, ok, err)
	}
	return val
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openT(t, Config{Dir: t.TempDir()})
	mustPut(t, s, "alpha", []byte("one"))
	mustPut(t, s, "beta", []byte("two"))
	if got := mustGet(t, s, "alpha"); string(got) != "one" {
		t.Fatalf("alpha = %q", got)
	}
	if _, ok, err := s.Get(context.Background(), "gamma"); ok || err != nil {
		t.Fatalf("missing key: ok=%v err=%v", ok, err)
	}
	// Last write wins.
	mustPut(t, s, "alpha", []byte("uno"))
	if got := mustGet(t, s, "alpha"); string(got) != "uno" {
		t.Fatalf("alpha after overwrite = %q", got)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

func TestReopenRecoversAll(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Config{Dir: dir})
	want := map[string]string{}
	for i := 0; i < 50; i++ {
		k, v := fmt.Sprintf("key-%03d", i), fmt.Sprintf("val-%d", i*i)
		mustPut(t, s, k, []byte(v))
		want[k] = v
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := s.Put(context.Background(), "x", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}

	r := openT(t, Config{Dir: dir})
	for k, v := range want {
		if got := mustGet(t, r, k); string(got) != v {
			t.Fatalf("%s = %q, want %q", k, got, v)
		}
	}
	st := r.Stats()
	if st.Keys != 50 {
		t.Fatalf("Keys = %d, want 50", st.Keys)
	}
	// A clean Close leaves an index snapshot covering everything, so
	// reopen should not have replayed records from the log.
	if st.RecoveredRecords != 0 {
		t.Fatalf("RecoveredRecords = %d, want 0 (index snapshot should cover all)", st.RecoveredRecords)
	}
}

func TestReopenWithoutIndexReplaysLog(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Config{Dir: dir})
	mustPut(t, s, "a", []byte("1"))
	mustPut(t, s, "b", []byte("2"))
	s.Close()
	if err := os.Remove(filepath.Join(dir, indexName)); err != nil {
		t.Fatalf("remove index: %v", err)
	}
	r := openT(t, Config{Dir: dir})
	if got := mustGet(t, r, "b"); string(got) != "2" {
		t.Fatalf("b = %q", got)
	}
	if st := r.Stats(); st.RecoveredRecords != 2 {
		t.Fatalf("RecoveredRecords = %d, want 2", st.RecoveredRecords)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Config{Dir: dir, SegmentBytes: 256})
	val := bytes.Repeat([]byte("x"), 100)
	for i := 0; i < 20; i++ {
		mustPut(t, s, fmt.Sprintf("k%02d", i), val)
	}
	st := s.Stats()
	if st.Segments < 3 {
		t.Fatalf("Segments = %d, want several after rotation", st.Segments)
	}
	for i := 0; i < 20; i++ {
		mustGet(t, s, fmt.Sprintf("k%02d", i)) // old segments stay readable
	}
	s.Close()

	r := openT(t, Config{Dir: dir, SegmentBytes: 256})
	for i := 0; i < 20; i++ {
		if got := mustGet(t, r, fmt.Sprintf("k%02d", i)); !bytes.Equal(got, val) {
			t.Fatalf("k%02d corrupted after reopen", i)
		}
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Config{Dir: dir})
	mustPut(t, s, "good", []byte("payload"))
	s.Close()
	os.Remove(filepath.Join(dir, indexName)) // force a log rescan

	// Simulate a crash mid-append: a partial record at the tail.
	seg := filepath.Join(dir, "seg-00000001.log")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := encodeRecord("torn-key", []byte("torn-value"))[:17]
	f.Write(torn)
	f.Close()

	r := openT(t, Config{Dir: dir})
	if got := mustGet(t, r, "good"); string(got) != "payload" {
		t.Fatalf("good = %q", got)
	}
	st := r.Stats()
	if st.TruncatedBytes != int64(len(torn)) {
		t.Fatalf("TruncatedBytes = %d, want %d", st.TruncatedBytes, len(torn))
	}
	// The torn bytes are physically gone: appends continue cleanly.
	mustPut(t, r, "after", []byte("crash"))
	r.Close()
	r2 := openT(t, Config{Dir: dir})
	if got := mustGet(t, r2, "after"); string(got) != "crash" {
		t.Fatalf("after = %q", got)
	}
}

func TestBadChecksumRecordSkipped(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Config{Dir: dir})
	mustPut(t, s, "first", []byte("aaaa"))
	mustPut(t, s, "second", []byte("bbbb"))
	mustPut(t, s, "third", []byte("cccc"))
	s.Close()
	os.Remove(filepath.Join(dir, indexName))

	// Flip a payload byte of the middle record; its frame stays
	// plausible so recovery must skip it and still find "third".
	seg := filepath.Join(dir, "seg-00000001.log")
	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(buf, []byte("bbbb"))
	if i < 0 {
		t.Fatal("test setup: payload not found")
	}
	buf[i] ^= 0xff
	if err := os.WriteFile(seg, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	r := openT(t, Config{Dir: dir})
	if _, ok, _ := r.Get(context.Background(), "second"); ok {
		t.Fatal("corrupt record was served")
	}
	if got := mustGet(t, r, "first"); string(got) != "aaaa" {
		t.Fatalf("first = %q", got)
	}
	if got := mustGet(t, r, "third"); string(got) != "cccc" {
		t.Fatalf("third = %q", got)
	}
	if st := r.Stats(); st.SkippedRecords != 1 {
		t.Fatalf("SkippedRecords = %d, want 1", st.SkippedRecords)
	}
}

func TestCorruptIndexFallsBackToRescan(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Config{Dir: dir})
	mustPut(t, s, "k", []byte("v"))
	s.Close()
	idx := filepath.Join(dir, indexName)
	buf, err := os.ReadFile(idx)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xff // break the trailing CRC
	if err := os.WriteFile(idx, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	r := openT(t, Config{Dir: dir})
	if got := mustGet(t, r, "k"); string(got) != "v" {
		t.Fatalf("k = %q", got)
	}
	if st := r.Stats(); st.RecoveredRecords != 1 {
		t.Fatalf("RecoveredRecords = %d, want 1 (rescan)", st.RecoveredRecords)
	}
}

func TestIndexSurvivingLostTail(t *testing.T) {
	// A crash can persist the index snapshot while the unsynced
	// segment tail it points into is lost. Entries beyond the real
	// file end must be dropped, not served.
	dir := t.TempDir()
	s := openT(t, Config{Dir: dir, FlushEvery: 1})
	mustPut(t, s, "kept", []byte("still-here"))
	mustPut(t, s, "lost", []byte("vanishes"))
	s.Close()

	seg := filepath.Join(dir, "seg-00000001.log")
	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	lostRec := encodeRecord("lost", []byte("vanishes"))
	if err := os.Truncate(seg, int64(len(buf)-len(lostRec))); err != nil {
		t.Fatal(err)
	}

	r := openT(t, Config{Dir: dir})
	if _, ok, _ := r.Get(context.Background(), "lost"); ok {
		t.Fatal("entry pointing past the real file end was served")
	}
	if got := mustGet(t, r, "kept"); string(got) != "still-here" {
		t.Fatalf("kept = %q", got)
	}
}

func TestGetVerifiesChecksumOnRead(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Config{Dir: dir})
	mustPut(t, s, "target", []byte("pristine"))
	// Corrupt the record on disk under the open store's feet.
	seg := filepath.Join(dir, "seg-00000001.log")
	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(buf, []byte("pristine"))
	buf[i] ^= 0x01
	if err := os.WriteFile(seg, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(context.Background(), "target"); ok {
		t.Fatal("Get served a record that fails its checksum")
	}
	if st := s.Stats(); st.CorruptReads != 1 {
		t.Fatalf("CorruptReads = %d, want 1", st.CorruptReads)
	}
}

func TestKeysPrefix(t *testing.T) {
	s := openT(t, Config{Dir: t.TempDir()})
	mustPut(t, s, "s:1:aaa", nil)
	mustPut(t, s, "s:1:bbb", nil)
	mustPut(t, s, "j:job1", nil)
	got := s.Keys("s:1:")
	if want := []string{"s:1:aaa", "s:1:bbb"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
	if n := len(s.Keys("")); n != 3 {
		t.Fatalf("all keys = %d, want 3", n)
	}
}

func TestPutBounds(t *testing.T) {
	s := openT(t, Config{Dir: t.TempDir()})
	if err := s.Put(context.Background(), "", []byte("x")); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := s.Put(context.Background(), string(bytes.Repeat([]byte("k"), maxKeyLen+1)), nil); err == nil {
		t.Fatal("oversized key accepted")
	}
}

func TestChaosFaults(t *testing.T) {
	inj := chaos.New(42,
		chaos.Rule{Point: chaos.StoreGet, Fault: chaos.Cancel, Rate: 1},
		chaos.Rule{Point: chaos.StorePut, Fault: chaos.Cancel, Rate: 1},
		chaos.Rule{Point: chaos.StoreRecover, Fault: chaos.Cancel, Rate: 1},
	)
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Chaos: inj})
	if err != nil {
		t.Fatalf("Open with recover fault must still succeed: %v", err)
	}
	defer s.Close()
	if err := s.Put(context.Background(), "k", []byte("v")); err == nil {
		t.Fatal("injected put fault not surfaced")
	}
	if _, ok, err := s.Get(context.Background(), "k"); ok || err == nil {
		t.Fatalf("injected get fault: ok=%v err=%v", ok, err)
	}
	st := s.Stats()
	if st.RecoverFaults != 1 || st.PutFaults != 1 || st.GetFaults != 1 {
		t.Fatalf("fault counters = %+v", st)
	}
	if st.Keys != 0 {
		t.Fatal("dropped write still visible")
	}
}

func TestChaosForcedMiss(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Config{Dir: dir})
	mustPut(t, s, "k", []byte("v"))
	s.Close()
	inj := chaos.New(7, chaos.Rule{Point: chaos.StoreGet, Fault: chaos.Miss, Rate: 1})
	r := openT(t, Config{Dir: dir, Chaos: inj})
	if _, ok, err := r.Get(context.Background(), "k"); ok || err != nil {
		t.Fatalf("forced miss: ok=%v err=%v", ok, err)
	}
}

func solvedSolution() *core.Solution {
	spec := core.Spec{
		Node: tech.Node65, RAM: tech.SRAM, CapacityBytes: 64 << 10,
		BlockBytes: 64, Associativity: 4, Banks: 1,
		IsCache: true, Mode: core.Normal,
	}
	c, err := spec.Canonical()
	if err != nil {
		panic(err)
	}
	sol, err := core.Optimize(c)
	if err != nil {
		panic(err)
	}
	return sol
}

func TestSolutionsRoundTrip(t *testing.T) {
	s := openT(t, Config{Dir: t.TempDir()})
	tier := NewSolutions(s)
	ctx := context.Background()

	sol := solvedSolution()
	fp, err := sol.Spec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	tier.Save(ctx, fp, sol, nil)
	hit, ok := tier.Lookup(ctx, fp)
	if !ok || hit.Err != nil || hit.Solution == nil {
		t.Fatalf("Lookup = %+v ok=%v", hit, ok)
	}
	got := hit.Solution
	if got.AccessTime != sol.AccessTime || got.EReadPerAccess != sol.EReadPerAccess ||
		got.LeakagePower != sol.LeakagePower || got.AreaEff != sol.AreaEff {
		t.Fatalf("scalar drift: got %+v", got)
	}
	if got.Data.Org != sol.Data.Org || got.Data.PipelineStages != sol.Data.PipelineStages {
		t.Fatalf("data org drift: %v vs %v", got.Data.Org, sol.Data.Org)
	}
	if (got.Tag == nil) != (sol.Tag == nil) || (got.Tag != nil && got.Tag.Org != sol.Tag.Org) {
		t.Fatal("tag org drift")
	}
	if !reflect.DeepEqual(got.Spec, sol.Spec) {
		t.Fatalf("spec drift:\n got %+v\nwant %+v", got.Spec, sol.Spec)
	}
}

func TestSolutionsNoSolutionRoundTrip(t *testing.T) {
	s := openT(t, Config{Dir: t.TempDir()})
	tier := NewSolutions(s)
	ctx := context.Background()

	tier.Save(ctx, "fp-nosol", nil, core.ErrNoSolution)
	hit, ok := tier.Lookup(ctx, "fp-nosol")
	if !ok || hit.Solution != nil {
		t.Fatalf("Lookup = %+v ok=%v", hit, ok)
	}
	if !errors.Is(hit.Err, core.ErrNoSolution) {
		t.Fatalf("err = %v, want ErrNoSolution", hit.Err)
	}
	if hit.Err.Error() != core.ErrNoSolution.Error() {
		t.Fatalf("error text drift: %q", hit.Err.Error())
	}

	wrapped := fmt.Errorf("point 3: %w", core.ErrNoSolution)
	tier.Save(ctx, "fp-wrapped", nil, wrapped)
	hit, ok = tier.Lookup(ctx, "fp-wrapped")
	if !ok || !errors.Is(hit.Err, core.ErrNoSolution) || hit.Err.Error() != wrapped.Error() {
		t.Fatalf("wrapped round trip: %+v ok=%v", hit, ok)
	}
}

func TestSolutionsRejectsImpureOutcomes(t *testing.T) {
	s := openT(t, Config{Dir: t.TempDir()})
	tier := NewSolutions(s)
	ctx := context.Background()
	tier.Save(ctx, "fp-cancel", nil, context.Canceled)
	tier.Save(ctx, "fp-deadline", nil, context.DeadlineExceeded)
	tier.Save(ctx, "fp-nil-sol", nil, nil)
	if s.Len() != 0 {
		t.Fatalf("impure outcomes persisted: %v", s.Keys(""))
	}
	if _, ok := tier.Lookup(ctx, "fp-cancel"); ok {
		t.Fatal("impure outcome served")
	}
}

func TestSolutionsModelVersionMismatch(t *testing.T) {
	s := openT(t, Config{Dir: t.TempDir()})
	tier := NewSolutions(s)
	ctx := context.Background()
	// A record written under a different model version must miss.
	stale := fmt.Sprintf(`{"model_version":%d,"no_solution":true}`, core.ModelVersion+1)
	mustPut(t, s, solutionKey("fp-stale"), []byte(stale))
	if _, ok := tier.Lookup(ctx, "fp-stale"); ok {
		t.Fatal("stale model version served")
	}

	// The pre-provider format (version 1, before the technology axis
	// and the write metrics existed): even a well-formed old record
	// under the current key must be rejected by the payload check, and
	// a record under its own version-1 key namespace must be plain
	// unreachable — Lookup keys by the current ModelVersion.
	v1Payload := fmt.Sprintf(`{"model_version":%d,"no_solution":true}`, core.ModelVersion-1)
	mustPut(t, s, solutionKey("fp-v1-payload"), []byte(v1Payload))
	if _, ok := tier.Lookup(ctx, "fp-v1-payload"); ok {
		t.Fatal("version-1 payload served under a current key")
	}
	v1Key := fmt.Sprintf("s:%d:fp-v1-keyed", core.ModelVersion-1)
	mustPut(t, s, v1Key, []byte(v1Payload))
	if _, ok := tier.Lookup(ctx, "fp-v1-keyed"); ok {
		t.Fatal("version-1-keyed record reachable through the current namespace")
	}
}

func TestFlushIndexFrontierConsistency(t *testing.T) {
	// After Flush, reopening must not replay anything: the snapshot
	// frontier covers every record.
	dir := t.TempDir()
	s := openT(t, Config{Dir: dir, FlushEvery: 1000})
	for i := 0; i < 10; i++ {
		mustPut(t, s, fmt.Sprintf("k%d", i), []byte("v"))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Reopen without Close (handles stay open; simulates a crash
	// after a flush).
	r := openT(t, Config{Dir: dir})
	if st := r.Stats(); st.RecoveredRecords != 0 {
		t.Fatalf("RecoveredRecords = %d, want 0", st.RecoveredRecords)
	}
	if r.Len() != 10 {
		t.Fatalf("Len = %d, want 10", r.Len())
	}
}

func TestParseRecordRejectsFrameLies(t *testing.T) {
	rec := encodeRecord("key", []byte("value"))
	if _, _, ok := parseRecord(rec); !ok {
		t.Fatal("valid record rejected")
	}
	short := rec[:len(rec)-1]
	if _, _, ok := parseRecord(short); ok {
		t.Fatal("truncated record accepted")
	}
	bad := append([]byte(nil), rec...)
	binary.LittleEndian.PutUint32(bad[0:], uint32(len(rec))) // keyLen lies
	if _, _, ok := parseRecord(bad); ok {
		t.Fatal("lying frame accepted")
	}
}
