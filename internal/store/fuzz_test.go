package store

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
)

// FuzzStoreRecover feeds arbitrary segment and index bytes to Open
// and asserts the two recovery invariants: never panic, and never
// serve a record that fails validation. The checked-in corpus
// (testdata/fuzz/FuzzStoreRecover) pins the interesting shapes: a
// torn tail, a flipped payload checksum, a duplicate key, a valid
// snapshot, and a snapshot whose CRC lies.
func FuzzStoreRecover(f *testing.F) {
	valid := append([]byte(segMagic), encodeRecord("key-a", []byte("val-a"))...)
	valid = append(valid, encodeRecord("key-b", []byte("val-b"))...)
	f.Add([]byte{}, []byte{})
	f.Add(valid, []byte{})
	f.Add(valid[:len(valid)-3], []byte{}) // torn tail
	f.Add([]byte(segMagic), []byte(indexMagic))
	flipped := append([]byte(nil), valid...)
	flipped[len(segMagic)+recHeaderLen+2] ^= 0x40 // corrupt first key byte
	f.Add(flipped, []byte{})

	f.Fuzz(func(t *testing.T, segBytes, idxBytes []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "seg-00000001.log"), segBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if len(idxBytes) > 0 {
			if err := os.WriteFile(filepath.Join(dir, indexName), idxBytes, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		s, err := Open(Config{Dir: dir})
		if err != nil {
			// Open may fail only on environmental errors, never on
			// corrupt bytes; in a fresh tempdir there are none.
			t.Fatalf("Open failed on corrupt-but-readable input: %v", err)
		}
		defer s.Close()

		ctx := context.Background()
		for _, key := range s.Keys("") {
			val, ok, err := s.Get(ctx, key)
			if err != nil {
				t.Fatalf("Get(%q): %v", key, err)
			}
			if !ok {
				continue // recovery indexed it but the read-side check rejected it: a miss, by contract
			}
			// Served records must re-verify: re-encoding the returned
			// pair must reproduce the exact on-disk frame.
			rec := encodeRecord(key, val)
			if _, _, valid := parseRecord(rec); !valid {
				t.Fatalf("served record for %q fails validation", key)
			}
		}

		// The recovered store must accept writes and survive a reopen
		// with the new record intact.
		if err := s.Put(ctx, "post-recovery", []byte("write")); err != nil {
			t.Fatalf("Put after recovery: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		r, err := Open(Config{Dir: dir})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer r.Close()
		got, ok, err := r.Get(ctx, "post-recovery")
		if err != nil || !ok || !bytes.Equal(got, []byte("write")) {
			t.Fatalf("post-recovery record lost: %q ok=%v err=%v", got, ok, err)
		}
	})
}
