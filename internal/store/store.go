// Package store is a disk-backed, crash-safe result store: tier 1 of
// the exploration engine's result cache, keyed by
// (core.ModelVersion, spec fingerprint) so warm restarts and fleets
// share completed solves instead of redoing them.
//
// Layout: append-only log segments (seg-NNNNNNNN.log) of checksummed
// records plus a checksummed index snapshot ("index") written with an
// atomic tmp-file rename. Every record carries a CRC32 over its key
// and payload, verified again on every read — the store never serves
// a corrupt record; it reports a miss instead.
//
// Recovery (Open) is corruption-tolerant by contract: a torn tail is
// truncated, a record with a bad checksum but a plausible frame is
// skipped, an invalid index is discarded and rebuilt by rescanning
// the log. Recovery never fails on corrupt bytes — only on
// environmental errors (unreadable directory, permissions).
package store

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"cactid/internal/chaos"
)

const (
	segMagic   = "CDSEG001" // first 8 bytes of every segment file
	indexMagic = "CDIDX001" // first 8 bytes of the index snapshot
	indexName  = "index"

	recHeaderLen = 12      // keyLen u32 | valLen u32 | crc32(key||val) u32
	maxKeyLen    = 1 << 12 // frames beyond these bounds are treated as garbage
	maxValLen    = 1 << 26
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// Config sizes and instruments a Store.
type Config struct {
	// Dir is the store directory, created if absent. Required.
	Dir string
	// SegmentBytes rotates the active log segment once it grows past
	// this size; 0 means 4 MiB.
	SegmentBytes int64
	// FlushEvery writes an index snapshot after this many puts (the
	// snapshot is also written on rotation and Close); 0 means 128.
	// Recovery works without a snapshot — it only bounds rescan work.
	FlushEvery int
	// SyncEvery fsyncs the active segment after this many puts; 0
	// means sync only on rotation, Flush and Close. Crash safety does
	// not depend on it: an unsynced tail is recovered as torn.
	SyncEvery int
	// Chaos arms the store.get / store.put / store.recover injection
	// points; nil disables injection.
	Chaos *chaos.Injector
}

// recordLoc locates one record inside a segment.
type recordLoc struct {
	seg int   // segment number
	off int64 // byte offset of the record header
	n   int   // total record length (header + key + value)
}

// Store is the disk-backed key/value result store. All methods are
// safe for concurrent use.
type Store struct {
	dir        string
	segBytes   int64
	flushEvery int
	syncEvery  int
	chaos      *chaos.Injector // nil = no fault injection

	// flushMu serializes index-snapshot writers so a newer snapshot
	// is never overwritten by a slower older one.
	flushMu sync.Mutex

	mu        sync.RWMutex
	index     map[string]recordLoc // guarded by mu
	segs      map[int]*os.File     // guarded by mu; read handles, one per live segment
	active    *os.File             // guarded by mu; append handle of the newest segment
	activeSeg int                  // guarded by mu
	activeOff int64                // guarded by mu; next append offset
	dirtyPuts int                  // guarded by mu; puts since the last index flush
	syncPuts  int                  // guarded by mu; puts since the last fsync
	closed    bool                 // guarded by mu

	gets          atomic.Int64
	hits          atomic.Int64
	puts          atomic.Int64
	corruptReads  atomic.Int64 // reads that failed CRC or frame checks and were served as misses
	recovered     atomic.Int64 // records replayed from segment logs during Open
	skipped       atomic.Int64 // records discarded during recovery (bad checksum, lost tail)
	truncated     atomic.Int64 // bytes cut off torn segment tails during Open
	indexFlushes  atomic.Int64
	getFaults     atomic.Int64 // chaos-injected read faults absorbed as misses
	putFaults     atomic.Int64 // chaos-injected write faults (record dropped)
	recoverFaults atomic.Int64 // chaos-injected recovery faults (absorbed)
	diskBytes     atomic.Int64 // total bytes across live segment files
}

// recoverState is the store content rebuilt by Open before the Store
// is published; it becomes the guarded fields in one assignment.
type recoverState struct {
	index     map[string]recordLoc
	segs      map[int]*os.File
	active    *os.File
	activeSeg int
	activeOff int64
}

// Open opens (or creates) the store in cfg.Dir and recovers its
// contents: load the index snapshot if it is intact, then replay any
// log records the snapshot does not cover, truncating torn tails and
// skipping corrupt records. Open fails only on environmental errors,
// never on corrupt store bytes.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, errors.New("store: Config.Dir is required")
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = 4 << 20
	}
	if cfg.FlushEvery <= 0 {
		cfg.FlushEvery = 128
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:        cfg.Dir,
		segBytes:   cfg.SegmentBytes,
		flushEvery: cfg.FlushEvery,
		syncEvery:  cfg.SyncEvery,
		chaos:      cfg.Chaos,
	}
	if err := s.chaos.Inject(context.Background(), chaos.StoreRecover); err != nil {
		// Recovery faults are absorbed by contract: Open must always
		// yield a usable store, so an injected fault is only counted.
		s.recoverFaults.Add(1)
	}
	st, err := s.recoverDir()
	if err != nil {
		for _, f := range st.segs {
			f.Close()
		}
		return nil, err
	}
	s.mu.Lock()
	s.index = st.index
	s.segs = st.segs
	s.active = st.active
	s.activeSeg = st.activeSeg
	s.activeOff = st.activeOff
	s.mu.Unlock()
	// Re-snapshot after recovery so the next Open skips the rescan
	// even if this process dies without a clean Close. Best effort.
	s.flushIndex()
	return s, nil
}

// segPath returns the file path of segment n.
func (s *Store) segPath(n int) string {
	return filepath.Join(s.dir, fmt.Sprintf("seg-%08d.log", n))
}

// segNumber parses a segment file name, -1 if it is not one.
func segNumber(name string) int {
	var n int
	if _, err := fmt.Sscanf(name, "seg-%08d.log", &n); err != nil || n <= 0 {
		return -1
	}
	return n
}

// createSegment creates segment file n with its header and returns
// the read/write handle plus the append offset.
func createSegment(path string) (*os.File, int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	return f, int64(len(segMagic)), nil
}

// recoverDir rebuilds the store state from disk. It runs before the
// Store is published, touching only the returned recoverState and the
// store's atomic counters.
func (s *Store) recoverDir() (recoverState, error) {
	st := recoverState{
		index: make(map[string]recordLoc),
		segs:  make(map[int]*os.File),
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return st, fmt.Errorf("store: %w", err)
	}
	var segNums []int
	for _, e := range entries {
		if n := segNumber(e.Name()); n > 0 {
			segNums = append(segNums, n)
		}
	}
	sort.Ints(segNums)

	if len(segNums) == 0 {
		// Fresh store: any index snapshot is stale by definition.
		f, off, err := createSegment(s.segPath(1))
		if err != nil {
			return st, err
		}
		st.active, st.activeSeg, st.activeOff = f, 1, off
		st.segs[1] = f
		s.diskBytes.Add(off)
		return st, nil
	}

	idx, frontierSeg, frontierOff, idxOK := loadIndex(filepath.Join(s.dir, indexName))

	sizes := make(map[int]int64, len(segNums))
	for _, n := range segNums {
		size, err := s.recoverSegment(&st, n, frontierSeg, frontierOff, idxOK)
		if err != nil {
			return st, err
		}
		sizes[n] = size
	}
	if idxOK {
		// Adopt snapshot entries whose frames still exist on disk; a
		// crash can persist the snapshot yet lose an unsynced segment
		// tail it refers to.
		for _, key := range sortedKeys(idx) {
			loc := idx[key]
			if size, ok := sizes[loc.seg]; !ok || loc.off+int64(loc.n) > size {
				s.skipped.Add(1)
				continue
			}
			if _, replayed := st.index[key]; !replayed {
				st.index[key] = loc
			}
		}
	}
	// The newest segment becomes the append target: reopen it
	// read/write positioned at its (post-truncation) end.
	last := segNums[len(segNums)-1]
	if old := st.segs[last]; old != nil {
		old.Close()
	}
	f, err := os.OpenFile(s.segPath(last), os.O_RDWR, 0o644)
	if err != nil {
		return st, fmt.Errorf("store: %w", err)
	}
	if _, err := f.Seek(sizes[last], 0); err != nil {
		f.Close()
		return st, fmt.Errorf("store: %w", err)
	}
	st.active, st.activeSeg, st.activeOff = f, last, sizes[last]
	st.segs[last] = f
	return st, nil
}

// sortedKeys returns the map's keys in sorted order, for
// deterministic recovery and snapshot layout.
func sortedKeys(m map[string]recordLoc) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// recoverSegment opens segment n for reading, replays the records the
// index snapshot does not cover, truncates a torn tail, and returns
// the segment's post-truncation size.
func (s *Store) recoverSegment(st *recoverState, n, frontierSeg int, frontierOff int64, idxOK bool) (int64, error) {
	path := s.segPath(n)
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	goodEnd := int64(0)
	if len(buf) >= len(segMagic) && string(buf[:len(segMagic)]) == segMagic {
		start := int64(len(segMagic))
		if idxOK {
			switch {
			case n < frontierSeg:
				start = int64(len(buf)) // fully covered by the snapshot
			case n == frontierSeg && frontierOff <= int64(len(buf)):
				start = frontierOff
			}
		}
		goodEnd = s.scanRecords(st, buf, n, start)
	}
	// An unrecognizable header leaves goodEnd at 0: the whole file is
	// torn and gets rewritten as an empty segment below.
	if goodEnd < int64(len(buf)) {
		s.truncated.Add(int64(len(buf)) - goodEnd)
		if err := os.Truncate(path, goodEnd); err != nil {
			return 0, fmt.Errorf("store: truncate torn tail: %w", err)
		}
	}
	if goodEnd < int64(len(segMagic)) {
		if err := os.WriteFile(path, []byte(segMagic), 0o644); err != nil {
			return 0, fmt.Errorf("store: %w", err)
		}
		goodEnd = int64(len(segMagic))
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	st.segs[n] = f
	s.diskBytes.Add(goodEnd)
	return goodEnd, nil
}

// scanRecords replays records from buf[start:] into the index being
// rebuilt and returns the offset of the first byte that does not
// belong to a fully intact or cleanly skippable record — the
// truncation point. A record with a plausible frame but a failing
// checksum is skipped: frame lengths sit outside the checksummed
// region, so a corrupted frame can cause a bounded garbage walk, and
// every candidate is re-validated until the first implausible frame.
func (s *Store) scanRecords(st *recoverState, buf []byte, seg int, start int64) int64 {
	off := start
	for {
		rem := int64(len(buf)) - off
		if rem <= 0 {
			return int64(len(buf)) // clean end (or frontier past the data)
		}
		if rem < recHeaderLen {
			return off // torn header
		}
		keyLen := int64(binary.LittleEndian.Uint32(buf[off:]))
		valLen := int64(binary.LittleEndian.Uint32(buf[off+4:]))
		want := binary.LittleEndian.Uint32(buf[off+8:])
		if keyLen == 0 || keyLen > maxKeyLen || valLen > maxValLen {
			return off // implausible frame: torn or garbage from here on
		}
		total := recHeaderLen + keyLen + valLen
		if rem < total {
			return off // torn body
		}
		body := buf[off+recHeaderLen : off+total]
		if crc32.ChecksumIEEE(body) != want {
			// Bad checksum inside a plausible frame: skip this record
			// and keep scanning — later records are independent.
			s.skipped.Add(1)
			off += total
			continue
		}
		key := string(body[:keyLen])
		st.index[key] = recordLoc{seg: seg, off: off, n: int(total)}
		s.recovered.Add(1)
		off += total
	}
}

// encodeRecord frames one key/value pair.
func encodeRecord(key string, val []byte) []byte {
	rec := make([]byte, recHeaderLen+len(key)+len(val))
	binary.LittleEndian.PutUint32(rec[0:], uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[4:], uint32(len(val)))
	copy(rec[recHeaderLen:], key)
	copy(rec[recHeaderLen+len(key):], val)
	binary.LittleEndian.PutUint32(rec[8:], crc32.ChecksumIEEE(rec[recHeaderLen:]))
	return rec
}

// parseRecord validates a framed record and returns its key/value.
func parseRecord(rec []byte) (key string, val []byte, ok bool) {
	if len(rec) < recHeaderLen {
		return "", nil, false
	}
	keyLen := int(binary.LittleEndian.Uint32(rec[0:]))
	valLen := int(binary.LittleEndian.Uint32(rec[4:]))
	want := binary.LittleEndian.Uint32(rec[8:])
	if keyLen <= 0 || keyLen > maxKeyLen || valLen < 0 || valLen > maxValLen ||
		len(rec) != recHeaderLen+keyLen+valLen {
		return "", nil, false
	}
	body := rec[recHeaderLen:]
	if crc32.ChecksumIEEE(body) != want {
		return "", nil, false
	}
	return string(body[:keyLen]), body[keyLen:], true
}

// Get returns the payload stored under key. A missing key, a chaos-
// forced miss, and a corrupt record all report ok=false — the store
// never returns bytes that fail their checksum. The error is non-nil
// only for injected faults and I/O errors; callers should treat it as
// a miss too.
func (s *Store) Get(ctx context.Context, key string) (val []byte, ok bool, err error) {
	s.gets.Add(1)
	if err := s.chaos.Inject(ctx, chaos.StoreGet); err != nil {
		s.getFaults.Add(1)
		return nil, false, err
	}
	if s.chaos.ForceMiss(chaos.StoreGet) {
		s.getFaults.Add(1)
		return nil, false, nil
	}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, false, ErrClosed
	}
	loc, found := s.index[key]
	var f *os.File
	if found {
		f = s.segs[loc.seg]
	}
	s.mu.RUnlock()
	if !found || f == nil {
		return nil, false, nil
	}
	rec := make([]byte, loc.n)
	if _, err := f.ReadAt(rec, loc.off); err != nil {
		s.corruptReads.Add(1)
		return nil, false, fmt.Errorf("store: read %q: %w", key, err)
	}
	k, v, valid := parseRecord(rec)
	if !valid || k != key {
		s.corruptReads.Add(1)
		return nil, false, nil
	}
	s.hits.Add(1)
	return v, true, nil
}

// Put appends one key/value record and updates the index; a repeated
// key is superseded (last write wins). An injected store.put fault
// drops the write and surfaces as the returned error — the caller
// keeps its in-memory result and loses only durability.
func (s *Store) Put(ctx context.Context, key string, val []byte) error {
	if len(key) == 0 || len(key) > maxKeyLen {
		return fmt.Errorf("store: key length %d outside (0, %d]", len(key), maxKeyLen)
	}
	if len(val) > maxValLen {
		return fmt.Errorf("store: value length %d exceeds %d", len(val), maxValLen)
	}
	if err := s.chaos.Inject(ctx, chaos.StorePut); err != nil {
		s.putFaults.Add(1)
		return err
	}
	rec := encodeRecord(key, val)
	needFlush := false
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.activeOff >= s.segBytes {
		// Rotate: seal the active segment and start the next one.
		f, off, err := createSegment(s.segPath(s.activeSeg + 1))
		if err != nil {
			s.mu.Unlock()
			return err
		}
		s.active.Sync()
		s.activeSeg++
		s.active, s.activeOff = f, off
		s.segs[s.activeSeg] = f
		s.diskBytes.Add(off)
		needFlush = true
	}
	off := s.activeOff
	if _, err := s.active.Write(rec); err != nil {
		// A partial append leaves a torn tail; rewind the file so the
		// next append does not build on it. Recovery would also have
		// truncated it.
		s.active.Truncate(off)
		s.active.Seek(off, 0)
		s.mu.Unlock()
		return fmt.Errorf("store: append: %w", err)
	}
	s.activeOff += int64(len(rec))
	s.index[key] = recordLoc{seg: s.activeSeg, off: off, n: len(rec)}
	s.diskBytes.Add(int64(len(rec)))
	s.dirtyPuts++
	s.syncPuts++
	if s.syncEvery > 0 && s.syncPuts >= s.syncEvery {
		s.syncPuts = 0
		s.active.Sync()
	}
	if s.dirtyPuts >= s.flushEvery {
		s.dirtyPuts = 0
		needFlush = true
	}
	s.mu.Unlock()
	s.puts.Add(1)
	if needFlush {
		s.flushIndex()
	}
	return nil
}

// indexSnapshot is a consistent view of the index for serialization.
type indexSnapshot struct {
	keys        []string
	locs        map[string]recordLoc
	frontierSeg int
	frontierOff int64
}

// flushIndex writes an index snapshot: tmp file, fsync, atomic
// rename. The snapshot records the (segment, offset) frontier; Open
// replays only log records past it. Failures are swallowed — the
// snapshot is a rescan optimization, not a durability requirement.
func (s *Store) flushIndex() {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return
	}
	snap := indexSnapshot{
		keys:        sortedKeys(s.index),
		locs:        make(map[string]recordLoc, len(s.index)),
		frontierSeg: s.activeSeg,
		frontierOff: s.activeOff,
	}
	for k, loc := range s.index {
		snap.locs[k] = loc
	}
	s.mu.RUnlock()

	buf := []byte(indexMagic)
	var tmp [20]byte
	binary.LittleEndian.PutUint32(tmp[0:], uint32(snap.frontierSeg))
	binary.LittleEndian.PutUint64(tmp[4:], uint64(snap.frontierOff))
	binary.LittleEndian.PutUint32(tmp[12:], uint32(len(snap.keys)))
	buf = append(buf, tmp[:16]...)
	for _, k := range snap.keys {
		loc := snap.locs[k]
		binary.LittleEndian.PutUint32(tmp[0:], uint32(len(k)))
		buf = append(buf, tmp[:4]...)
		buf = append(buf, k...)
		binary.LittleEndian.PutUint32(tmp[0:], uint32(loc.seg))
		binary.LittleEndian.PutUint64(tmp[4:], uint64(loc.off))
		binary.LittleEndian.PutUint32(tmp[12:], uint32(loc.n))
		buf = append(buf, tmp[:16]...)
	}
	binary.LittleEndian.PutUint32(tmp[0:], crc32.ChecksumIEEE(buf))
	buf = append(buf, tmp[:4]...)

	tmpPath := filepath.Join(s.dir, indexName+".tmp")
	f, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return
	}
	_, werr := f.Write(buf)
	serr := f.Sync()
	cerr := f.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmpPath)
		return
	}
	if os.Rename(tmpPath, filepath.Join(s.dir, indexName)) == nil {
		s.indexFlushes.Add(1)
	}
}

// loadIndex reads and validates an index snapshot. ok=false on any
// structural or checksum problem — the caller falls back to a full
// log rescan.
func loadIndex(path string) (idx map[string]recordLoc, frontierSeg int, frontierOff int64, ok bool) {
	buf, err := os.ReadFile(path)
	if err != nil || len(buf) < len(indexMagic)+16+4 || string(buf[:len(indexMagic)]) != indexMagic {
		return nil, 0, 0, false
	}
	body, crcBytes := buf[:len(buf)-4], buf[len(buf)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(crcBytes) {
		return nil, 0, 0, false
	}
	off := len(indexMagic)
	frontierSeg = int(binary.LittleEndian.Uint32(body[off:]))
	frontierOff = int64(binary.LittleEndian.Uint64(body[off+4:]))
	count := int(binary.LittleEndian.Uint32(body[off+12:]))
	off += 16
	if frontierSeg <= 0 || frontierOff < 0 || count < 0 {
		return nil, 0, 0, false
	}
	idx = make(map[string]recordLoc, count)
	for i := 0; i < count; i++ {
		if off+4 > len(body) {
			return nil, 0, 0, false
		}
		keyLen := int(binary.LittleEndian.Uint32(body[off:]))
		off += 4
		if keyLen <= 0 || keyLen > maxKeyLen || off+keyLen+16 > len(body) {
			return nil, 0, 0, false
		}
		key := string(body[off : off+keyLen])
		off += keyLen
		loc := recordLoc{
			seg: int(binary.LittleEndian.Uint32(body[off:])),
			off: int64(binary.LittleEndian.Uint64(body[off+4:])),
			n:   int(binary.LittleEndian.Uint32(body[off+12:])),
		}
		off += 16
		if loc.seg <= 0 || loc.off < int64(len(segMagic)) || loc.n < recHeaderLen {
			return nil, 0, 0, false
		}
		idx[key] = loc
	}
	if off != len(body) {
		return nil, 0, 0, false
	}
	return idx, frontierSeg, frontierOff, true
}

// Keys returns every stored key with the given prefix, sorted.
func (s *Store) Keys(prefix string) []string {
	s.mu.RLock()
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	s.mu.RUnlock()
	sort.Strings(keys)
	return keys
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Flush fsyncs the active segment and writes an index snapshot.
func (s *Store) Flush() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	err := s.active.Sync()
	s.mu.Unlock()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.flushIndex()
	return nil
}

// Close flushes and closes the store. Further operations return
// ErrClosed. Close is idempotent.
func (s *Store) Close() error {
	s.mu.RLock()
	alreadyClosed := s.closed
	s.mu.RUnlock()
	if alreadyClosed {
		return nil
	}
	s.flushIndex() // before closed flips: flushIndex on a closed store is a no-op
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.active.Sync()
	var firstErr error
	for _, n := range func() []int {
		nums := make([]int, 0, len(s.segs))
		for n := range s.segs {
			nums = append(nums, n)
		}
		sort.Ints(nums)
		return nums
	}() {
		if err := s.segs[n].Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Stats is a snapshot of the store's size and churn counters.
type Stats struct {
	Keys        int   `json:"keys"`
	Segments    int   `json:"segments"`
	BytesOnDisk int64 `json:"bytes_on_disk"`

	Gets int64 `json:"gets"`
	Hits int64 `json:"hits"`
	Puts int64 `json:"puts"`

	CorruptReads     int64 `json:"corrupt_reads"`
	RecoveredRecords int64 `json:"recovered_records"`
	SkippedRecords   int64 `json:"skipped_records"`
	TruncatedBytes   int64 `json:"truncated_bytes"`
	IndexFlushes     int64 `json:"index_flushes"`

	GetFaults     int64 `json:"get_faults"`
	PutFaults     int64 `json:"put_faults"`
	RecoverFaults int64 `json:"recover_faults"`
}

// Stats returns the current counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	keys, segs := len(s.index), len(s.segs)
	s.mu.RUnlock()
	return Stats{
		Keys:             keys,
		Segments:         segs,
		BytesOnDisk:      s.diskBytes.Load(),
		Gets:             s.gets.Load(),
		Hits:             s.hits.Load(),
		Puts:             s.puts.Load(),
		CorruptReads:     s.corruptReads.Load(),
		RecoveredRecords: s.recovered.Load(),
		SkippedRecords:   s.skipped.Load(),
		TruncatedBytes:   s.truncated.Load(),
		IndexFlushes:     s.indexFlushes.Load(),
		GetFaults:        s.getFaults.Load(),
		PutFaults:        s.putFaults.Load(),
		RecoverFaults:    s.recoverFaults.Load(),
	}
}
