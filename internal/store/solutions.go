package store

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"cactid/internal/array"
	"cactid/internal/core"
)

// Tiered is the durable tier-1 contract the exploration engine
// composes under its in-memory result cache (tier 0): a persistent
// map from spec fingerprint to solve outcome. Implementations must be
// safe for concurrent use and must never return a corrupt outcome —
// any doubt is reported as a miss.
type Tiered interface {
	// Lookup returns the persisted outcome for a fingerprint. ok is
	// false on a miss, a read fault, or a record written under a
	// different ModelVersion.
	Lookup(ctx context.Context, fingerprint string) (Hit, bool)
	// Save persists a pure outcome. Outcomes that Persistable rejects
	// and write faults are dropped silently: the store is a cache of
	// recomputable results, so losing a write costs durability only.
	Save(ctx context.Context, fingerprint string, sol *core.Solution, solveErr error)
}

// Hit is one outcome served from the durable tier: either a solution
// or a deterministic solver error (ErrNoSolution), never both.
type Hit struct {
	Solution *core.Solution
	Err      error
}

// Persistable reports whether a solve outcome may be written to the
// durable tier: a success, or the deterministic "spec admits no
// feasible design" verdict. Cancellations, deadline hits, recovered
// panics and injected faults are circumstances of one run, not
// properties of the spec, and must never be replayed to later
// callers.
func Persistable(solveErr error) bool {
	return solveErr == nil || errors.Is(solveErr, core.ErrNoSolution)
}

// solutionRecord is the JSON payload persisted per fingerprint. It
// carries the canonical spec, the solution's scalar metrics, and the
// data/tag organizations — exactly the surface every exporter
// (SolutionJSON, ResultJSON, WriteCSV, Frontier) consumes — rather
// than the full evaluated design tree, which drags in technology
// tables that ModelVersion already pins. encoding/json formats
// float64 with the shortest representation that round-trips exactly,
// so rehydrated metrics are bit-identical.
type solutionRecord struct {
	ModelVersion int `json:"model_version"`

	NoSolution bool   `json:"no_solution,omitempty"`
	ErrText    string `json:"error,omitempty"`

	Spec *core.Spec `json:"spec,omitempty"`

	AccessTime      float64 `json:"access_time_s,omitempty"`
	RandomCycle     float64 `json:"random_cycle_s,omitempty"`
	InterleaveCycle float64 `json:"interleave_cycle_s,omitempty"`
	Area            float64 `json:"area_m2,omitempty"`
	BankArea        float64 `json:"bank_area_m2,omitempty"`
	AreaEff         float64 `json:"area_efficiency,omitempty"`
	EReadPerAccess  float64 `json:"read_energy_j,omitempty"`
	EWritePerAccess float64 `json:"write_energy_j,omitempty"`
	LeakagePower    float64 `json:"leakage_w,omitempty"`
	RefreshPower    float64 `json:"refresh_w,omitempty"`
	WriteTime       float64 `json:"write_time_s,omitempty"`
	WriteEndurance  float64 `json:"write_endurance_cycles,omitempty"`

	DataOrg            *array.Org `json:"data_org,omitempty"`
	DataPipelineStages int        `json:"data_pipeline_stages,omitempty"`
	TagOrg             *array.Org `json:"tag_org,omitempty"`
}

// Solutions adapts a Store into the Tiered interface, handling the
// (ModelVersion, fingerprint) keying and the solution codec.
type Solutions struct {
	s *Store
}

// NewSolutions wraps a Store as the engine's durable tier.
func NewSolutions(s *Store) *Solutions { return &Solutions{s: s} }

// Store returns the underlying store (for stats and lifecycle).
func (t *Solutions) Store() *Store { return t.s }

// solutionKey namespaces fingerprints by model version, so a bumped
// ModelVersion orphans every stale record instead of serving it.
func solutionKey(fingerprint string) string {
	return fmt.Sprintf("s:%d:%s", core.ModelVersion, fingerprint)
}

// Lookup implements Tiered.
func (t *Solutions) Lookup(ctx context.Context, fingerprint string) (Hit, bool) {
	val, ok, err := t.s.Get(ctx, solutionKey(fingerprint))
	if err != nil || !ok {
		return Hit{}, false
	}
	var rec solutionRecord
	if json.Unmarshal(val, &rec) != nil || rec.ModelVersion != core.ModelVersion {
		// Structurally invalid payloads count as corruption the CRC
		// could not catch (a bug, not bit rot) — still served as a
		// miss, never as a wrong answer.
		t.s.corruptReads.Add(1)
		return Hit{}, false
	}
	if rec.NoSolution {
		return Hit{Err: rehydrateNoSolution(rec.ErrText)}, true
	}
	if rec.Spec == nil || rec.DataOrg == nil {
		t.s.corruptReads.Add(1)
		return Hit{}, false
	}
	sol := &core.Solution{
		Spec:            *rec.Spec,
		Data:            &array.Bank{Org: *rec.DataOrg, PipelineStages: rec.DataPipelineStages},
		AccessTime:      rec.AccessTime,
		RandomCycle:     rec.RandomCycle,
		InterleaveCycle: rec.InterleaveCycle,
		Area:            rec.Area,
		BankArea:        rec.BankArea,
		AreaEff:         rec.AreaEff,
		EReadPerAccess:  rec.EReadPerAccess,
		EWritePerAccess: rec.EWritePerAccess,
		LeakagePower:    rec.LeakagePower,
		RefreshPower:    rec.RefreshPower,
		WriteTime:       rec.WriteTime,
		WriteEndurance:  rec.WriteEndurance,
	}
	if rec.TagOrg != nil {
		sol.Tag = &array.Bank{Org: *rec.TagOrg}
	}
	return Hit{Solution: sol}, true
}

// Save implements Tiered.
func (t *Solutions) Save(ctx context.Context, fingerprint string, sol *core.Solution, solveErr error) {
	if !Persistable(solveErr) {
		return
	}
	rec := solutionRecord{ModelVersion: core.ModelVersion}
	switch {
	case solveErr != nil:
		rec.NoSolution = true
		rec.ErrText = solveErr.Error()
	case sol == nil || sol.Data == nil:
		return
	default:
		spec := sol.Spec
		rec.Spec = &spec
		rec.AccessTime = sol.AccessTime
		rec.RandomCycle = sol.RandomCycle
		rec.InterleaveCycle = sol.InterleaveCycle
		rec.Area = sol.Area
		rec.BankArea = sol.BankArea
		rec.AreaEff = sol.AreaEff
		rec.EReadPerAccess = sol.EReadPerAccess
		rec.EWritePerAccess = sol.EWritePerAccess
		rec.LeakagePower = sol.LeakagePower
		rec.RefreshPower = sol.RefreshPower
		rec.WriteTime = sol.WriteTime
		rec.WriteEndurance = sol.WriteEndurance
		org := sol.Data.Org
		rec.DataOrg = &org
		rec.DataPipelineStages = sol.Data.PipelineStages
		if sol.Tag != nil {
			torg := sol.Tag.Org
			rec.TagOrg = &torg
		}
	}
	val, err := json.Marshal(rec)
	if err != nil {
		return
	}
	// Write faults (chaos or I/O) are dropped by contract: the result
	// is already correct in memory, only durability is lost.
	_ = t.s.Put(ctx, solutionKey(fingerprint), val)
}

// noSolutionError rehydrates a persisted ErrNoSolution verdict with
// its original text while still satisfying
// errors.Is(err, core.ErrNoSolution), so HTTP 422 mapping and error
// strings are byte-identical across a restart.
type noSolutionError struct{ msg string }

func (e *noSolutionError) Error() string { return e.msg }

func (e *noSolutionError) Is(target error) bool { return target == core.ErrNoSolution }

func rehydrateNoSolution(msg string) error {
	if msg == "" || msg == core.ErrNoSolution.Error() {
		return core.ErrNoSolution
	}
	return &noSolutionError{msg: msg}
}
