package study

import (
	"math"
	"testing"
)

// The pins below freeze published study numbers to 7 significant
// digits, the same idiom as the validate.Micron pins: they are
// determinism tripwires, not accuracy checks. A deliberate model or
// study change must update these constants in the same commit; an
// accidental drift — a reordered float reduction, a perturbed
// enumeration, a chaos hook that is not a true no-op when disabled —
// fails here first.
const pinRelTol = 1e-5 // 7 significant digits

func pinCheck(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > pinRelTol*math.Abs(want) {
		t.Errorf("%s = %.6e, pinned %.6e", name, got, want)
	}
}

// TestTable3Pins freezes one representative column per technology
// class of the paper's Table 3 (leakage W, per-bank area mm², dynamic
// read nJ), plus the integer cycle counts for every row.
func TestTable3Pins(t *testing.T) {
	s := getStudy(t)
	rows := s.Table3()
	byName := map[string]Table3Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}

	pins := []struct {
		name                 string
		leakW, areaMM2, erNJ float64
	}{
		{"L1", 1.249168e-02, 8.617855e-02, 1.559602e-01},
		{"L3 SRAM", 3.559166e+00, 5.012489e+00, 3.762047e-01},
		{"L3 LP-DRAM ED", 1.141352e+00, 2.901778e+00, 4.446009e-01},
		{"L3 COMM-DRAM C", 1.456947e-04, 2.393951e+00, 1.912067e+00},
		{"Main memory chip", 9.270238e-02, 9.257619e+01, 1.226190e+01},
	}
	for _, p := range pins {
		r, ok := byName[p.name]
		if !ok {
			t.Fatalf("Table 3 lost row %q", p.name)
		}
		pinCheck(t, p.name+" leakage", r.LeakageW, p.leakW)
		pinCheck(t, p.name+" area", r.AreaMM2, p.areaMM2)
		pinCheck(t, p.name+" read energy", r.DynReadNJ, p.erNJ)
	}

	cycles := map[string][2]int64{ // {access, random-cycle} CPU cycles
		"L1":               {2, 1},
		"L2":               {2, 1},
		"L3 SRAM":          {3, 1},
		"L3 LP-DRAM ED":    {6, 1},
		"L3 LP-DRAM C":     {8, 4},
		"L3 COMM-DRAM ED":  {9, 3},
		"L3 COMM-DRAM C":   {24, 17},
		"Main memory chip": {35, 101},
	}
	for name, want := range cycles {
		r := byName[name]
		if r.AccessCycles != want[0] || r.RandCycleCycles != want[1] {
			t.Errorf("%s cycles = {%d, %d}, pinned {%d, %d}",
				name, r.AccessCycles, r.RandCycleCycles, want[0], want[1])
		}
	}
}

// TestRunPins freezes the end-to-end simulation outputs (IPC, EDP,
// memory-hierarchy power) for ft.B on two L3 configurations at the
// study's reference seed. This covers the whole pipeline: solver →
// study wiring → trace synthesis → system simulation → power roll-up.
func TestRunPins(t *testing.T) {
	s := getStudy(t)
	pins := []struct {
		config         string
		ipc, edp, memW float64
	}{
		{"sram", 1.863782e+00, 1.042732e-05, 1.057303e+01},
		{"lp_dram_ed", 2.565701e+00, 5.180449e-06, 8.654315e+00},
	}
	for _, p := range pins {
		r, err := s.Run("ft.B", p.config, 42)
		if err != nil {
			t.Fatalf("Run(ft.B, %s): %v", p.config, err)
		}
		pinCheck(t, p.config+" IPC", r.Sim.IPC, p.ipc)
		pinCheck(t, p.config+" EDP", r.EDP, p.edp)
		pinCheck(t, p.config+" memory power", r.Power.MemoryHierarchy(), p.memW)
	}
}
