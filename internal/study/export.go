package study

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"sort"
	"strconv"
)

// ExportCSV writes the study's tables and figures as CSV files into
// dir (created if missing): table3.csv, fig4.csv, fig5.csv and
// headlines.csv — the raw data behind the paper's plots, ready for any
// plotting tool.
func ExportCSV(dir string, rows []Table3Row, f *Figures, runs map[string]map[string]*RunResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := writeCSV(filepath.Join(dir, "table3.csv"), table3Records(rows)); err != nil {
		return err
	}
	if err := writeCSV(filepath.Join(dir, "fig4.csv"), fig4Records(f)); err != nil {
		return err
	}
	if err := writeCSV(filepath.Join(dir, "fig5.csv"), fig5Records(f, runs)); err != nil {
		return err
	}
	return writeCSV(filepath.Join(dir, "headlines.csv"), headlineRecords(f))
}

func writeCSV(path string, records [][]string) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(file)
	if err := w.WriteAll(records); err != nil {
		file.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}

func ff(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

func table3Records(rows []Table3Row) [][]string {
	out := [][]string{{
		"level", "capacity", "banks", "subbanks", "assoc", "clock_div",
		"access_cycles", "cycle_cycles", "area_mm2", "area_eff",
		"leakage_w", "refresh_w", "read_nj",
	}}
	for _, r := range rows {
		out = append(out, []string{
			r.Name, r.Capacity,
			strconv.Itoa(r.Banks), strconv.Itoa(r.Subbanks), strconv.Itoa(r.Assoc),
			strconv.Itoa(r.ClockDiv),
			strconv.FormatInt(r.AccessCycles, 10), strconv.FormatInt(r.RandCycleCycles, 10),
			ff(r.AreaMM2), ff(r.AreaEff), ff(r.LeakageW), ff(r.RefreshW), ff(r.DynReadNJ),
		})
	}
	return out
}

func fig4Records(f *Figures) [][]string {
	out := [][]string{{
		"benchmark", "config", "ipc", "avg_read_latency_cycles",
		"frac_instruction", "frac_l2", "frac_l3", "frac_memory", "frac_barrier", "frac_lock",
	}}
	for _, p := range f.Fig4 {
		out = append(out, []string{
			p.Benchmark, p.Config, ff(p.IPC), ff(p.AvgReadLatency),
			ff(p.Instruction), ff(p.L2), ff(p.L3), ff(p.Memory), ff(p.Barrier), ff(p.Lock),
		})
	}
	return out
}

func fig5Records(f *Figures, runs map[string]map[string]*RunResult) [][]string {
	out := [][]string{{
		"benchmark", "config",
		"l1_w", "l2_w", "xbar_w", "l3_w", "l3_refresh_w",
		"mem_dyn_w", "mem_standby_w", "mem_refresh_w", "bus_w",
		"hierarchy_w", "system_w", "edp_norm", "cycles_rel",
	}}
	benchmarks := make([]string, 0, len(runs))
	for bm := range runs {
		benchmarks = append(benchmarks, bm)
	}
	sort.Strings(benchmarks)
	for _, bm := range benchmarks {
		base := runs[bm]["nol3"]
		for _, cn := range ConfigNames {
			r := runs[bm][cn]
			p := r.Power
			out = append(out, []string{
				bm, cn,
				ff(p.L1Leak + p.L1Dyn), ff(p.L2Leak + p.L2Dyn), ff(p.XbarLeak + p.XbarDyn),
				ff(p.L3Leak + p.L3Dyn), ff(p.L3Refresh),
				ff(p.MemDyn), ff(p.MemStandby), ff(p.MemRefresh), ff(p.Bus),
				ff(p.MemoryHierarchy()), ff(p.System()),
				ff(r.EDP / base.EDP),
				ff(float64(r.Sim.Cycles) / float64(base.Sim.Cycles)),
			})
		}
	}
	return out
}

func headlineRecords(f *Figures) [][]string {
	out := [][]string{{"config", "exec_time_reduction", "mem_power_increase", "edp_improvement"}}
	for _, cn := range ConfigNames[1:] {
		out = append(out, []string{
			cn,
			ff(f.ExecTimeReduction[cn]),
			ff(f.MemPowerIncrease[cn]),
			ff(f.EDPImprovement[cn]),
		})
	}
	return out
}
