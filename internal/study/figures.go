package study

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"cactid/internal/core"
)

// Table3Row is one column of the paper's Table 3 (a cache level or
// the main memory chip).
type Table3Row struct {
	Name            string
	Capacity        string
	Banks           int
	Subbanks        int
	Assoc           int
	ClockDiv        int // cache clock = CPU clock / ClockDiv
	AccessCycles    int64
	RandCycleCycles int64
	AreaMM2         float64 // per bank for L3, total otherwise
	AreaEff         float64
	LeakageW        float64
	RefreshW        float64
	DynReadNJ       float64
}

func solRow(name, capacity string, sol *core.Solution, perBankArea bool) Table3Row {
	acc := int64(math.Ceil(sol.AccessTime * ClockHz))
	// DRAM caches operate with multisubbank interleaving
	// (Section 3.4); the effective random cycle presented to the
	// system is the interleave cycle.
	rc := int64(math.Ceil(sol.InterleaveCycle * ClockHz))
	area := sol.Area * 1e6
	if perBankArea {
		area = sol.BankArea * 1e6
	}
	div := int(math.Ceil(float64(acc) / 6))
	return Table3Row{
		Name: name, Capacity: capacity,
		Banks: sol.Spec.Banks, Subbanks: sol.Data.Org.Subbanks,
		Assoc: sol.Spec.Associativity, ClockDiv: div,
		AccessCycles: acc, RandCycleCycles: rc,
		AreaMM2: area, AreaEff: sol.AreaEff,
		LeakageW: sol.LeakagePower, RefreshW: sol.RefreshPower,
		DynReadNJ: sol.EReadPerAccess * 1e9,
	}
}

// Table3 produces the study's Table 3.
func (s *Study) Table3() []Table3Row {
	rows := []Table3Row{
		solRow("L1", "32KB", s.L1, false),
		solRow("L2", "1MB", s.L2, false),
		solRow("L3 SRAM", "24MB", s.L3["sram"], true),
		solRow("L3 LP-DRAM ED", "48MB", s.L3["lp_dram_ed"], true),
		solRow("L3 LP-DRAM C", "72MB", s.L3["lp_dram_c"], true),
		solRow("L3 COMM-DRAM ED", "96MB", s.L3["cm_dram_ed"], true),
		solRow("L3 COMM-DRAM C", "192MB", s.L3["cm_dram_c"], true),
	}
	// Main memory chip column.
	c := s.MemChip
	acc := int64(math.Ceil(c.ReadLatency() * ClockHz))
	rows = append(rows, Table3Row{
		Name: "Main memory chip", Capacity: "8Gb",
		Banks: c.Cfg.Banks, Subbanks: c.Bank.Org.Subbanks, Assoc: 0,
		ClockDiv:        int(math.Ceil(float64(acc) / 6)),
		AccessCycles:    acc,
		RandCycleCycles: int64(math.Ceil(c.Timing.TRC * ClockHz)),
		AreaMM2:         c.Area * 1e6,
		AreaEff:         c.AreaEff,
		LeakageW:        c.StandbyPower,
		RefreshW:        c.RefreshPower,
		// Dynamic read energy per cache line: 8 chips each doing
		// ACT+RD (Table 3's 14.2nJ figure counts the whole rank).
		DynReadNJ: float64(memChipsPerAccess) * (c.EActivate + c.ERead) * 1e9,
	})
	return rows
}

// FormatTable3 renders Table 3 as text.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 3: Projections of key properties of the caches and main memory chip at 32nm")
	fmt.Fprintf(&b, "%-18s %8s %6s %9s %6s %6s %7s %7s %9s %7s %9s %9s %8s\n",
		"Level", "Cap", "Banks", "Subbanks", "Assoc", "Clk", "Acc(cy)", "Cyc(cy)", "Area(mm2)", "Eff(%)", "Leak(W)", "Refr(W)", "Erd(nJ)")
	for _, r := range rows {
		clk := "1"
		if r.ClockDiv > 1 {
			clk = fmt.Sprintf("1/%d", r.ClockDiv)
		}
		assoc := fmt.Sprintf("%d", r.Assoc)
		if r.Assoc == 0 {
			assoc = "N/A"
		}
		fmt.Fprintf(&b, "%-18s %8s %6d %9d %6s %6s %7d %7d %9.2f %7.0f %9.3g %9.3g %8.2f\n",
			r.Name, r.Capacity, r.Banks, r.Subbanks, assoc, clk,
			r.AccessCycles, r.RandCycleCycles, r.AreaMM2, r.AreaEff*100,
			r.LeakageW, r.RefreshW, r.DynReadNJ)
	}
	return b.String()
}

// Figure4Point is one bar of Figure 4.
type Figure4Point struct {
	Benchmark, Config string
	IPC               float64
	AvgReadLatency    float64
	// Normalized execution-cycle breakdown (sums to 1).
	Instruction, L2, L3, Memory, Barrier, Lock float64
}

// Figure5Point is one bar of Figure 5. Raw power components are
// exposed via the stats.Power in RunResult; this struct carries the
// derived figures.
type Figure5Point struct {
	Benchmark, Config string
	MemHierW          float64
	SystemW           float64
	EDPNorm           float64 // vs nol3
	CyclesRel         float64 // execution time vs nol3
}

// Figures computes all figure data from a RunAll result set.
type Figures struct {
	Fig4 []Figure4Point
	Fig5 []Figure5Point

	// Headline averages over benchmarks, per config (vs nol3):
	ExecTimeReduction map[string]float64 // positive = faster
	MemPowerIncrease  map[string]float64 // positive = more power
	EDPImprovement    map[string]float64 // positive = better
}

// MakeFigures reduces raw runs to the paper's figures.
func MakeFigures(runs map[string]map[string]*RunResult) *Figures {
	f := &Figures{
		ExecTimeReduction: map[string]float64{},
		MemPowerIncrease:  map[string]float64{},
		EDPImprovement:    map[string]float64{},
	}
	benchmarks := make([]string, 0, len(runs))
	for b := range runs {
		benchmarks = append(benchmarks, b)
	}
	sort.Strings(benchmarks)

	type agg struct{ exec, pow, edp float64 }
	sums := map[string]*agg{}
	for _, cn := range ConfigNames {
		sums[cn] = &agg{}
	}

	for _, bm := range benchmarks {
		base := runs[bm]["nol3"]
		for _, cn := range ConfigNames {
			r := runs[bm][cn]
			bd := r.Sim.Breakdown
			tot := float64(bd.Total())
			if tot == 0 {
				tot = 1
			}
			f.Fig4 = append(f.Fig4, Figure4Point{
				Benchmark: bm, Config: cn,
				IPC: r.Sim.IPC, AvgReadLatency: r.Sim.AvgReadLatency,
				Instruction: float64(bd.Busy) / tot,
				L2:          float64(bd.L2) / tot,
				L3:          float64(bd.L3) / tot,
				Memory:      float64(bd.Mem) / tot,
				Barrier:     float64(bd.Barrier) / tot,
				Lock:        float64(bd.Lock) / tot,
			})
			f.Fig5 = append(f.Fig5, Figure5Point{
				Benchmark: bm, Config: cn,
				MemHierW:  r.Power.MemoryHierarchy(),
				SystemW:   r.Power.System(),
				EDPNorm:   r.EDP / base.EDP,
				CyclesRel: float64(r.Sim.Cycles) / float64(base.Sim.Cycles),
			})
			a := sums[cn]
			a.exec += float64(r.Sim.Cycles) / float64(base.Sim.Cycles)
			a.pow += r.Power.MemoryHierarchy() / base.Power.MemoryHierarchy()
			a.edp += r.EDP / base.EDP
		}
	}
	n := float64(len(benchmarks))
	for _, cn := range ConfigNames {
		a := sums[cn]
		f.ExecTimeReduction[cn] = 1 - a.exec/n
		f.MemPowerIncrease[cn] = a.pow/n - 1
		f.EDPImprovement[cn] = 1 - a.edp/n
	}
	return f
}

// FormatFig4 renders Figure 4's data as text.
func (f *Figures) FormatFig4() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 4(a): IPC and average read latency; (b): execution cycle breakdown")
	fmt.Fprintf(&b, "%-6s %-11s %6s %8s | %6s %5s %5s %5s %7s %5s\n",
		"bench", "config", "IPC", "readlat", "instr", "L2", "L3", "mem", "barrier", "lock")
	for _, p := range f.Fig4 {
		fmt.Fprintf(&b, "%-6s %-11s %6.2f %8.1f | %6.2f %5.2f %5.2f %5.2f %7.2f %5.2f\n",
			p.Benchmark, p.Config, p.IPC, p.AvgReadLatency,
			p.Instruction, p.L2, p.L3, p.Memory, p.Barrier, p.Lock)
	}
	return b.String()
}

// FormatFig5 renders Figure 5's data as text, including the headline
// averages the paper quotes.
func (f *Figures) FormatFig5(runs map[string]map[string]*RunResult) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 5(a): memory hierarchy power breakdown (W); (b): system power and normalized EDP")
	fmt.Fprintf(&b, "%-6s %-11s %6s %6s %6s %6s %6s %6s %7s %6s %6s | %7s %7s %7s\n",
		"bench", "config", "L1", "L2", "xbar", "L3", "L3rfr", "memdyn", "standby", "mrefr", "bus", "hier(W)", "sys(W)", "EDPn")
	benchmarks := make([]string, 0, len(runs))
	for bm := range runs {
		benchmarks = append(benchmarks, bm)
	}
	sort.Strings(benchmarks)
	for _, bm := range benchmarks {
		base := runs[bm]["nol3"]
		for _, cn := range ConfigNames {
			r := runs[bm][cn]
			p := r.Power
			fmt.Fprintf(&b, "%-6s %-11s %6.2f %6.2f %6.2f %6.2f %6.3f %6.2f %7.2f %6.3f %6.2f | %7.2f %7.2f %7.3f\n",
				bm, cn,
				p.L1Leak+p.L1Dyn, p.L2Leak+p.L2Dyn, p.XbarLeak+p.XbarDyn,
				p.L3Leak+p.L3Dyn, p.L3Refresh, p.MemDyn, p.MemStandby, p.MemRefresh, p.Bus,
				p.MemoryHierarchy(), p.System(), r.EDP/base.EDP)
		}
	}
	fmt.Fprintln(&b, "\nHeadline averages vs nol3 (paper: exec -39%/-43% for COMM-DRAM; mem power +58% SRAM,")
	fmt.Fprintln(&b, "+37%/+35% LP-DRAM, +1.2%/+2.3% COMM-DRAM; EDP -33%/-40% for COMM-DRAM):")
	for _, cn := range ConfigNames[1:] {
		fmt.Fprintf(&b, "  %-11s exec time %+6.1f%%  mem-hier power %+6.1f%%  EDP %+6.1f%%\n",
			cn, -100*f.ExecTimeReduction[cn], 100*f.MemPowerIncrease[cn], -100*f.EDPImprovement[cn])
	}
	return b.String()
}

// AverageFigures runs the sweep for each seed over the given
// benchmarks (nil means all eight) and averages the figure data
// pointwise — smoothing run-to-run workload variation for reporting.
func (s *Study) AverageFigures(seeds []uint64, benchmarks []string) (*Figures, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("study: need at least one seed")
	}
	if benchmarks == nil {
		for _, p := range allBenchmarks() {
			benchmarks = append(benchmarks, p)
		}
	}
	var figs []*Figures
	for _, seed := range seeds {
		runs := map[string]map[string]*RunResult{}
		for _, bm := range benchmarks {
			runs[bm] = map[string]*RunResult{}
			for _, cn := range ConfigNames {
				r, err := s.Run(bm, cn, seed)
				if err != nil {
					return nil, err
				}
				runs[bm][cn] = r
			}
		}
		figs = append(figs, MakeFigures(runs))
	}
	return averageFigures(figs), nil
}

func allBenchmarks() []string {
	return []string{"bt.C", "cg.C", "ft.B", "is.C", "lu.C", "mg.B", "sp.C", "ua.C"}
}

// averageFigures folds per-seed figures into pointwise means. All
// inputs must have identical point ordering (same benchmarks/configs).
func averageFigures(figs []*Figures) *Figures {
	n := float64(len(figs))
	out := &Figures{
		Fig4:              append([]Figure4Point(nil), figs[0].Fig4...),
		Fig5:              append([]Figure5Point(nil), figs[0].Fig5...),
		ExecTimeReduction: map[string]float64{},
		MemPowerIncrease:  map[string]float64{},
		EDPImprovement:    map[string]float64{},
	}
	for i := range out.Fig4 {
		var p4 Figure4Point
		var p5 Figure5Point
		p4.Benchmark, p4.Config = out.Fig4[i].Benchmark, out.Fig4[i].Config
		p5.Benchmark, p5.Config = out.Fig5[i].Benchmark, out.Fig5[i].Config
		for _, f := range figs {
			a, b := f.Fig4[i], f.Fig5[i]
			p4.IPC += a.IPC / n
			p4.AvgReadLatency += a.AvgReadLatency / n
			p4.Instruction += a.Instruction / n
			p4.L2 += a.L2 / n
			p4.L3 += a.L3 / n
			p4.Memory += a.Memory / n
			p4.Barrier += a.Barrier / n
			p4.Lock += a.Lock / n
			p5.MemHierW += b.MemHierW / n
			p5.SystemW += b.SystemW / n
			p5.EDPNorm += b.EDPNorm / n
			p5.CyclesRel += b.CyclesRel / n
		}
		out.Fig4[i], out.Fig5[i] = p4, p5
	}
	for _, cn := range ConfigNames {
		for _, f := range figs {
			out.ExecTimeReduction[cn] += f.ExecTimeReduction[cn] / n
			out.MemPowerIncrease[cn] += f.MemPowerIncrease[cn] / n
			out.EDPImprovement[cn] += f.EDPImprovement[cn] / n
		}
	}
	return out
}
