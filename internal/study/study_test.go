package study

import (
	"encoding/csv"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"cactid/internal/sim/workload"
	"cactid/internal/tech"
)

// sharedStudy caches the CACTI-D projections across tests (the
// enumeration is the slow part).
var (
	sharedOnce  sync.Once
	sharedStudy *Study
	sharedErr   error
)

func getStudy(t *testing.T) *Study {
	t.Helper()
	sharedOnce.Do(func() {
		sharedStudy, sharedErr = New(8, 3_000_000)
	})
	if sharedErr != nil {
		t.Fatal(sharedErr)
	}
	return sharedStudy
}

func TestTable3Shape(t *testing.T) {
	s := getStudy(t)
	rows := s.Table3()
	if len(rows) != 8 {
		t.Fatalf("Table 3 has %d rows, want 8 (L1, L2, five L3s, main memory)", len(rows))
	}

	byName := map[string]Table3Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}

	// Paper Table 3 anchor points (2GHz cycles).
	l1 := byName["L1"]
	if l1.AccessCycles < 1 || l1.AccessCycles > 3 {
		t.Errorf("L1 access %d cycles, paper: 2", l1.AccessCycles)
	}
	sram := byName["L3 SRAM"]
	lpED := byName["L3 LP-DRAM ED"]
	lpC := byName["L3 LP-DRAM C"]
	cmED := byName["L3 COMM-DRAM ED"]
	cmC := byName["L3 COMM-DRAM C"]
	mm := byName["Main memory chip"]

	// SRAM L3 leakage ~3.6W; LP-DRAMs below it; COMM-DRAMs orders
	// lower (Table 3's central standby-power story).
	if sram.LeakageW < 2.0 || sram.LeakageW > 5.5 {
		t.Errorf("SRAM L3 leakage %.2fW, paper 3.6W", sram.LeakageW)
	}
	if !(lpED.LeakageW < sram.LeakageW && lpC.LeakageW < sram.LeakageW) {
		t.Error("LP-DRAM L3 leakage must undercut SRAM")
	}
	if !(cmED.LeakageW < lpED.LeakageW/10 && cmC.LeakageW < lpC.LeakageW/10) {
		t.Error("COMM-DRAM L3 leakage must be orders below LP-DRAM")
	}
	// Refresh: only DRAMs, LP out-refreshes COMM.
	if sram.RefreshW != 0 || lpED.RefreshW <= 0 || cmED.RefreshW <= 0 {
		t.Error("refresh power signs wrong")
	}
	if lpED.RefreshW <= cmED.RefreshW {
		t.Error("LP-DRAM must out-refresh COMM-DRAM")
	}
	// Access-time ordering: SRAM < LP < COMM; config C slower than ED.
	if !(sram.AccessCycles <= lpED.AccessCycles && lpED.AccessCycles < cmED.AccessCycles) {
		t.Errorf("access ordering violated: %d/%d/%d", sram.AccessCycles, lpED.AccessCycles, cmED.AccessCycles)
	}
	if cmC.AccessCycles <= cmED.AccessCycles {
		t.Error("config C (capacity) should be slower than config ED")
	}
	// Interleave cycles: paper 1/1/3/5/10.
	if sram.RandCycleCycles != 1 || lpED.RandCycleCycles != 1 {
		t.Errorf("SRAM/LP-ED effective cycle %d/%d, paper 1/1", sram.RandCycleCycles, lpC.RandCycleCycles)
	}
	if cmC.RandCycleCycles <= cmED.RandCycleCycles {
		t.Error("COMM C must cycle slower than COMM ED")
	}
	// Bank areas fit the 6.2mm2 budget.
	for _, r := range []Table3Row{sram, lpED, lpC, cmED, cmC} {
		if r.AreaMM2 > 6.3 {
			t.Errorf("%s bank area %.2fmm2 exceeds the 6.2mm2 budget", r.Name, r.AreaMM2)
		}
	}
	// Main memory: tRC ~98 cycles, area efficiency around 46-60%.
	if mm.RandCycleCycles < 80 || mm.RandCycleCycles > 120 {
		t.Errorf("main memory tRC %d cycles, paper 98", mm.RandCycleCycles)
	}
	if mm.AreaEff < 0.40 || mm.AreaEff > 0.65 {
		t.Errorf("main memory area efficiency %.2f", mm.AreaEff)
	}
	// Dynamic read energy of a line from the rank ~14nJ.
	if mm.DynReadNJ < 7 || mm.DynReadNJ > 25 {
		t.Errorf("main memory line read %.1fnJ, paper 14.2nJ", mm.DynReadNJ)
	}
}

func TestTable3Format(t *testing.T) {
	s := getStudy(t)
	txt := FormatTable3(s.Table3())
	for _, want := range []string{"L1", "L3 SRAM", "COMM-DRAM", "Main memory", "192MB", "8Gb"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Table 3 output missing %q", want)
		}
	}
}

func TestThermalDelta(t *testing.T) {
	s := getStudy(t)
	d, err := s.ThermalDelta()
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || d > 1.5 {
		t.Errorf("thermal delta %.2fK, paper: positive and < 1.5K", d)
	}
}

func TestRunSingleBenchmark(t *testing.T) {
	s := getStudy(t)
	no, err := s.Run("ft.B", "nol3", 42)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := s.Run("ft.B", "lp_dram_ed", 42)
	if err != nil {
		t.Fatal(err)
	}
	if lp.Sim.IPC <= no.Sim.IPC {
		t.Errorf("ft.B with LP-DRAM L3 (%.2f IPC) must beat nol3 (%.2f)", lp.Sim.IPC, no.Sim.IPC)
	}
	if lp.Power.L3Leak <= 0 || no.Power.L3Leak != 0 {
		t.Error("L3 leakage accounting wrong")
	}
	if no.Power.System() <= no.Power.MemoryHierarchy() {
		t.Error("system power must include the cores")
	}
	if lp.EDP >= no.EDP {
		t.Error("ft.B energy-delay must improve with the LP-DRAM L3")
	}
}

func TestRunUnknownInputs(t *testing.T) {
	s := getStudy(t)
	if _, err := s.Run("nope", "nol3", 1); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestFiguresShape(t *testing.T) {
	// A reduced sweep: two benchmarks across all configs, checking
	// the figure machinery and the qualitative orderings the paper
	// reports. (The full 8x6 sweep runs in cmd/llcstudy and the
	// benchmark harness.)
	s := getStudy(t)
	runs := map[string]map[string]*RunResult{}
	for _, bm := range []string{"ft.B", "cg.C"} {
		runs[bm] = map[string]*RunResult{}
		for _, cn := range ConfigNames {
			r, err := s.Run(bm, cn, 42)
			if err != nil {
				t.Fatal(err)
			}
			runs[bm][cn] = r
		}
	}
	f := MakeFigures(runs)
	if len(f.Fig4) != 12 || len(f.Fig5) != 12 {
		t.Fatalf("figure points: %d/%d, want 12/12", len(f.Fig4), len(f.Fig5))
	}
	for _, p := range f.Fig4 {
		sum := p.Instruction + p.L2 + p.L3 + p.Memory + p.Barrier + p.Lock
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s/%s breakdown sums to %g", p.Benchmark, p.Config, sum)
		}
	}
	// SRAM must raise memory-hierarchy power the most (leakage).
	if !(f.MemPowerIncrease["sram"] > f.MemPowerIncrease["lp_dram_ed"] &&
		f.MemPowerIncrease["lp_dram_ed"] > f.MemPowerIncrease["cm_dram_ed"]) {
		t.Errorf("power-increase ordering violated: sram %+.2f lp %+.2f cm %+.2f",
			f.MemPowerIncrease["sram"], f.MemPowerIncrease["lp_dram_ed"], f.MemPowerIncrease["cm_dram_ed"])
	}
	// Formatting must not crash and must carry key labels.
	txt4 := f.FormatFig4()
	txt5 := f.FormatFig5(runs)
	if !strings.Contains(txt4, "IPC") || !strings.Contains(txt5, "EDP") {
		t.Error("figure formatting missing labels")
	}
}

func TestPageMappingAnalysis(t *testing.T) {
	// Section 3.4: for a DRAM LLC, the page hit ratio between
	// successive requests to a bank is very low under BOTH cache-set
	// mappings of Figure 3 - the reason the study operates its DRAM
	// caches with an SRAM-like interface.
	s := getStudy(t)
	r, err := s.Run("sp.C", "cm_dram_c", 42)
	if err != nil {
		t.Fatal(err)
	}
	ev := r.Sim.Events
	if ev.L3PageProbes == 0 {
		t.Fatal("DRAM L3 run recorded no page probes")
	}
	setMapped := float64(ev.L3PageHitsSetMapped) / float64(ev.L3PageProbes)
	striped := float64(ev.L3PageHitsStriped) / float64(ev.L3PageProbes)
	if setMapped > 0.10 || striped > 0.10 {
		t.Errorf("page hit ratios %.3f/%.3f; paper expects 'very low' (<10%%)", setMapped, striped)
	}
	// SRAM L3 must not record page probes.
	rs, err := s.Run("sp.C", "sram", 42)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Sim.Events.L3PageProbes != 0 {
		t.Error("SRAM L3 has no DRAM pages to probe")
	}
}

func TestPowerDownExperiment(t *testing.T) {
	// The paper's conclusion: standby power dominates main-memory
	// power, so power-down modes should recover a meaningful share
	// on low-intensity workloads, at a small performance cost.
	s := getStudy(t)
	without, with, err := s.PowerDownExperiment("ua.C", "cm_dram_c", 42)
	if err != nil {
		t.Fatal(err)
	}
	if with.Power.MemStandby >= without.Power.MemStandby {
		t.Errorf("power-down did not cut standby: %.3fW vs %.3fW",
			with.Power.MemStandby, without.Power.MemStandby)
	}
	saving := 1 - with.Power.MemStandby/without.Power.MemStandby
	if saving < 0.10 {
		t.Errorf("standby saving only %.1f%% on a low-intensity workload", saving*100)
	}
	// The wakeup latency must not blow up execution time.
	slowdown := float64(with.Sim.Cycles) / float64(without.Sim.Cycles)
	if slowdown > 1.10 {
		t.Errorf("power-down slowed execution by %.1f%%", (slowdown-1)*100)
	}
}

func TestExportCSV(t *testing.T) {
	s := getStudy(t)
	runs := map[string]map[string]*RunResult{}
	runs["ft.B"] = map[string]*RunResult{}
	for _, cn := range ConfigNames {
		r, err := s.Run("ft.B", cn, 42)
		if err != nil {
			t.Fatal(err)
		}
		runs["ft.B"][cn] = r
	}
	f := MakeFigures(runs)
	dir := t.TempDir()
	if err := ExportCSV(dir, s.Table3(), f, runs); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table3.csv", "fig4.csv", "fig5.csv", "headlines.csv"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lines := strings.Count(string(b), "\n")
		if lines < 2 {
			t.Errorf("%s has only %d lines", name, lines)
		}
	}
	// fig4.csv: header + 6 configs.
	b, _ := os.ReadFile(filepath.Join(dir, "fig4.csv"))
	if got := strings.Count(string(b), "\n"); got != 7 {
		t.Errorf("fig4.csv lines = %d, want 7", got)
	}
	// Round-trip: parse a float back.
	rd := csv.NewReader(strings.NewReader(string(b)))
	recs, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := strconv.ParseFloat(recs[1][2], 64); err != nil {
		t.Errorf("ipc field not numeric: %v", err)
	}
}

func TestThermalLeakageEquilibrium(t *testing.T) {
	s := getStudy(t)
	tempK, leakW, err := s.ThermalLeakageEquilibrium("sram")
	if err != nil {
		t.Fatal(err)
	}
	if tempK < 300 || tempK > 400 {
		t.Fatalf("equilibrium temperature %.1fK implausible", tempK)
	}
	// The tables quote leakage at the 358K worst-case corner; a
	// well-cooled stack runs cooler, so equilibrium leakage must be
	// consistent with the temperature scale factor.
	ref := s.L3["sram"].LeakagePower
	want := ref * tech.LeakageTempScale(tempK)
	if math.Abs(leakW-want)/want > 1e-3 {
		t.Errorf("equilibrium leakage %.3fW inconsistent with scale (want %.3f)", leakW, want)
	}
	// COMM-DRAM barely heats the stack: its equilibrium temperature
	// must be at or below SRAM's.
	tempCM, _, err := s.ThermalLeakageEquilibrium("cm_dram_c")
	if err != nil {
		t.Fatal(err)
	}
	if tempCM > tempK {
		t.Errorf("COMM-DRAM stack hotter than SRAM stack: %.2f vs %.2f", tempCM, tempK)
	}
	if _, _, err := s.ThermalLeakageEquilibrium("nope"); err == nil {
		t.Error("unknown config should error")
	}
}

func TestAverageFigures(t *testing.T) {
	s := getStudy(t)
	f, err := s.AverageFigures([]uint64{1, 2}, []string{"ft.B"})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Fig4) != len(ConfigNames) {
		t.Fatalf("Fig4 points = %d, want %d", len(f.Fig4), len(ConfigNames))
	}
	// Averaged breakdowns still sum to ~1.
	for _, p := range f.Fig4 {
		sum := p.Instruction + p.L2 + p.L3 + p.Memory + p.Barrier + p.Lock
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s/%s averaged breakdown sums to %g", p.Benchmark, p.Config, sum)
		}
	}
	// Averages lie between the per-seed extremes.
	f1, err := s.AverageFigures([]uint64{1}, []string{"ft.B"})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := s.AverageFigures([]uint64{2}, []string{"ft.B"})
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Fig4 {
		lo := math.Min(f1.Fig4[i].IPC, f2.Fig4[i].IPC)
		hi := math.Max(f1.Fig4[i].IPC, f2.Fig4[i].IPC)
		if f.Fig4[i].IPC < lo-1e-9 || f.Fig4[i].IPC > hi+1e-9 {
			t.Errorf("averaged IPC %g outside [%g,%g]", f.Fig4[i].IPC, lo, hi)
		}
	}
	if _, err := s.AverageFigures(nil, nil); err == nil {
		t.Error("no seeds should error")
	}
}

func TestCharts(t *testing.T) {
	s := getStudy(t)
	f, err := s.AverageFigures([]uint64{7}, []string{"ft.B"})
	if err != nil {
		t.Fatal(err)
	}
	c4 := f.ChartFig4()
	if !strings.Contains(c4, "Figure 4(a)") || !strings.Contains(c4, "#") {
		t.Errorf("fig4 chart malformed:\n%s", c4)
	}
	c5 := f.ChartFig5()
	if !strings.Contains(c5, "energy-delay") || !strings.Contains(c5, "nol3") {
		t.Errorf("fig5 chart malformed:\n%s", c5)
	}
	// The nol3 EDP bar must be full width relative to itself... at
	// minimum every config appears once per benchmark.
	for _, cn := range ConfigNames {
		if !strings.Contains(c4, cn) {
			t.Errorf("fig4 chart missing config %s", cn)
		}
	}
}

func TestEnergiesPerConfig(t *testing.T) {
	s := getStudy(t)
	for _, cn := range ConfigNames {
		e := s.Energies(cn)
		if e.EL1 <= 0 || e.EL2 <= 0 || e.EXbar <= 0 {
			t.Errorf("%s: cache energies must be positive", cn)
		}
		if e.L1Leak <= 0 || e.L2Leak <= 0 {
			t.Errorf("%s: cache leakage must be positive", cn)
		}
		if e.EMemActivate <= 0 || e.MemStandbyPerChip <= 0 {
			t.Errorf("%s: memory figures must be positive", cn)
		}
		if cn == "nol3" {
			if e.L3Leak != 0 || e.EL3Read != 0 {
				t.Error("nol3 must carry no L3 energies")
			}
		} else {
			if e.L3Leak <= 0 || e.EL3Read <= 0 || e.EL3Tag <= 0 {
				t.Errorf("%s: L3 energies must be positive", cn)
			}
		}
	}
	// The three technologies order as Table 3 says.
	if !(s.Energies("sram").L3Leak > s.Energies("lp_dram_ed").L3Leak &&
		s.Energies("lp_dram_ed").L3Leak > s.Energies("cm_dram_ed").L3Leak) {
		t.Error("L3 leakage ordering violated in energies")
	}
}

func TestSimConfigWiring(t *testing.T) {
	s := getStudy(t)
	p := s.SimConfig("cm_dram_c", mustProfile(t, "ft.B"), 1)
	if p.L3 == nil || p.L3.PageBits != 16384 {
		t.Fatalf("cm_dram_c page bits = %+v, want 16384", p.L3)
	}
	if p.L3.TagCycles <= 0 {
		t.Error("sequential DRAM cache must pay a tag lookup")
	}
	sr := s.SimConfig("sram", mustProfile(t, "ft.B"), 1)
	if sr.L3.TagCycles != 0 {
		t.Error("normal-mode SRAM L3 overlaps tag and data (TagCycles 0)")
	}
	no := s.SimConfig("nol3", mustProfile(t, "ft.B"), 1)
	if no.L3 != nil {
		t.Error("nol3 must have no L3")
	}
	// Scaled capacities.
	if sr.L1Bytes != (32<<10)/s.Scale || sr.L2Bytes != (1<<20)/s.Scale {
		t.Error("L1/L2 scaling wrong")
	}
}

func mustProfile(t *testing.T, name string) workload.Profile {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
