package study

import (
	"fmt"
	"sort"
	"strings"
)

// ChartFig4 renders Figure 4(a)'s IPC bars as ASCII, grouped by
// benchmark with one bar per configuration — a terminal stand-in for
// the paper's plot.
func (f *Figures) ChartFig4() string {
	return f.chart("Figure 4(a): IPC", func(p Figure4Point) float64 { return p.IPC }, "%.2f")
}

// ChartFig5 renders Figure 5(b)'s normalized energy-delay bars.
func (f *Figures) ChartFig5() string {
	pts := map[[2]string]float64{}
	for _, p := range f.Fig5 {
		pts[[2]string{p.Benchmark, p.Config}] = p.EDPNorm
	}
	return f.chart("Figure 5(b): system energy-delay (normalized to nol3)",
		func(p Figure4Point) float64 { return pts[[2]string{p.Benchmark, p.Config}] }, "%.3f")
}

// chart is the shared bar renderer: it scales bars to the maximum
// value across all points.
func (f *Figures) chart(title string, value func(Figure4Point) float64, format string) string {
	const width = 44
	maxV := 0.0
	for _, p := range f.Fig4 {
		if v := value(p); v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	var b strings.Builder
	fmt.Fprintln(&b, title)
	benchmarks := map[string]bool{}
	for _, p := range f.Fig4 {
		benchmarks[p.Benchmark] = true
	}
	names := make([]string, 0, len(benchmarks))
	for bm := range benchmarks {
		names = append(names, bm)
	}
	sort.Strings(names)
	for _, bm := range names {
		fmt.Fprintf(&b, "%s\n", bm)
		for _, p := range f.Fig4 {
			if p.Benchmark != bm {
				continue
			}
			v := value(p)
			n := int(v / maxV * width)
			if n < 0 {
				n = 0
			}
			if n > width {
				n = width
			}
			fmt.Fprintf(&b, "  %-11s %s %s\n", p.Config, strings.Repeat("#", n), fmt.Sprintf(format, v))
		}
	}
	return b.String()
}
