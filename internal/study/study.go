// Package study implements the paper's stacked last-level cache study
// (Sections 3 and 4): it uses CACTI-D to project every level of the
// 32 nm memory hierarchy (Table 3), builds the six system
// configurations (no L3; 24 MB SRAM; 48/72 MB LP-DRAM; 96/192 MB
// COMM-DRAM L3), runs the synthetic NPB workloads through the
// architectural simulator, and produces the data behind Figures 4(a),
// 4(b), 5(a) and 5(b) plus the stacking thermal check.
package study

import (
	"fmt"
	"math"

	"cactid/internal/core"
	"cactid/internal/crossbar"
	"cactid/internal/dram"
	"cactid/internal/sim"
	"cactid/internal/sim/memctl"
	"cactid/internal/sim/stats"
	"cactid/internal/sim/workload"
	"cactid/internal/tech"
	"cactid/internal/thermal"
)

// ClockHz is the study's core clock (2 GHz, set by the 32 KB L1
// access time as in Section 4.1).
const ClockHz = 2e9

// Names of the six system configurations, in the paper's order.
var ConfigNames = []string{"nol3", "sram", "lp_dram_ed", "lp_dram_c", "cm_dram_ed", "cm_dram_c"}

// Study holds all CACTI-D projections and derived simulator inputs.
type Study struct {
	Tech *tech.Technology

	L1, L2  *core.Solution
	L3      map[string]*core.Solution // keyed by config name (not nol3)
	MemChip *dram.Chip
	Xbar    *crossbar.Crossbar

	// Scale divides capacities and working sets for tractable
	// simulation (1 = full scale).
	Scale int64

	// InstrBudget is the total instruction budget per run.
	InstrBudget int64

	// UsePowerDown enables DRAM power-down modes in the simulated
	// memory controller and power model — the knob the paper's
	// conclusion suggests for the large standby-power share it
	// observes.
	UsePowerDown bool
}

// cyc converts seconds to CPU cycles, rounding up.
func cyc(t float64) int64 { return int64(math.Ceil(t * ClockHz)) }

// New builds all CACTI-D projections for the study. scale >= 1
// shrinks the simulated capacities/working sets by that factor
// (the CACTI-D projections themselves are always full-scale).
func New(scale int64, instrBudget int64) (*Study, error) {
	if scale < 1 {
		scale = 1
	}
	if instrBudget <= 0 {
		instrBudget = 48_000_000
	}
	s := &Study{
		Tech:        tech.New(tech.Node32),
		L3:          map[string]*core.Solution{},
		Scale:       scale,
		InstrBudget: instrBudget,
	}

	var err error
	// L1: 32KB 8-way SRAM, normal access.
	s.L1, err = core.Optimize(core.Spec{
		Node: tech.Node32, RAM: tech.SRAM, CapacityBytes: 32 << 10, BlockBytes: 64,
		Associativity: 8, Banks: 1, IsCache: true, Mode: core.Normal, MaxPipelineStages: 6,
	})
	if err != nil {
		return nil, fmt.Errorf("study: L1: %w", err)
	}
	// L2: 1MB 8-way SRAM.
	s.L2, err = core.Optimize(core.Spec{
		Node: tech.Node32, RAM: tech.SRAM, CapacityBytes: 1 << 20, BlockBytes: 64,
		Associativity: 8, Banks: 1, IsCache: true, Mode: core.Normal, MaxPipelineStages: 6,
	})
	if err != nil {
		return nil, fmt.Errorf("study: L2: %w", err)
	}

	// L3 options (Table 3). Config ED favors energy and interleave
	// cycle with a loose area constraint; config C packs capacity
	// with a tight one.
	edWeights := &core.Weights{DynamicEnergy: 1, LeakagePower: 1, RandomCycle: 1, InterleaveCycle: 2}
	cWeights := &core.Weights{DynamicEnergy: 1, LeakagePower: 1, RandomCycle: 0.2, InterleaveCycle: 0.2}
	mk := func(name string, ram tech.RAMType, capacity int64, assoc, pageBits int,
		maxArea float64, w *core.Weights, mode core.AccessMode) error {
		sol, err := core.Optimize(core.Spec{
			Node: tech.Node32, RAM: ram, CapacityBytes: capacity, BlockBytes: 64,
			Associativity: assoc, Banks: 8, IsCache: true, Mode: mode,
			PageBits: pageBits, MaxPipelineStages: 6,
			MaxAreaConstraint: maxArea, MaxAcctimeConstraint: 0.3, Weights: w,
			SleepTransistors: ram == tech.SRAM,
		})
		if err != nil {
			return fmt.Errorf("study: L3 %s: %w", name, err)
		}
		s.L3[name] = sol
		return nil
	}
	if err := mk("sram", tech.SRAM, 24<<20, 12, 0, 0.4, edWeights, core.Normal); err != nil {
		return nil, err
	}
	if err := mk("lp_dram_ed", tech.LPDRAM, 48<<20, 12, 8192, 0.6, edWeights, core.Sequential); err != nil {
		return nil, err
	}
	if err := mk("lp_dram_c", tech.LPDRAM, 72<<20, 18, 16384, 0.05, cWeights, core.Sequential); err != nil {
		return nil, err
	}
	if err := mk("cm_dram_ed", tech.COMMDRAM, 96<<20, 12, 8192, 0.6, edWeights, core.Sequential); err != nil {
		return nil, err
	}
	if err := mk("cm_dram_c", tech.COMMDRAM, 192<<20, 24, 16384, 0.05, cWeights, core.Sequential); err != nil {
		return nil, err
	}

	// Main memory: 8Gb DDR4-3200 x8 devices at 32nm.
	s.MemChip, err = dram.NewChip(dram.ChipConfig{
		Tech: s.Tech, CapacityBits: 8 << 30, Banks: 8, DataPins: 8,
		BurstLength: 8, PageBits: 8192, DataRateMTps: 3200,
	})
	if err != nil {
		return nil, fmt.Errorf("study: main memory: %w", err)
	}

	// L2-L3 crossbar: 8x8, line-wide datapath, spanning the core die
	// (Niagara2 crossbar dimensions scaled to 32nm, Section 4.1).
	s.Xbar, err = crossbar.New(crossbar.Config{
		Tech: s.Tech, Device: tech.HP, Inputs: 8, Outputs: 8, Width: besteffortXbarWidth,
		SpanX: 4e-3, SpanY: 1.5e-3,
	})
	if err != nil {
		return nil, fmt.Errorf("study: crossbar: %w", err)
	}
	return s, nil
}

// besteffortXbarWidth: 64B line + address/command sideband.
const besteffortXbarWidth = 64*8 + 48

// memChipsPerAccess: x8 devices forming a 64-bit rank.
const memChipsPerAccess = 8

// totalMemChips: 2 channels x 1 rank x 8 chips.
const totalMemChips = 16

// CorePowerW is the core-die power, the 90nm Niagara scaled to 32nm
// with 8 FPUs (Section 4.3).
const CorePowerW = 22.3

// BusEnergyPerBit implements the paper's 2mW/Gb/s bus assumption.
const BusEnergyPerBit = 2e-12

// SimConfig builds the simulator configuration for one system config
// and benchmark.
func (s *Study) SimConfig(configName string, prof workload.Profile, seed uint64) sim.Config {
	prof.HotBytes /= s.Scale
	prof.WSBytes /= s.Scale

	var l3p *sim.L3Params
	if configName != "nol3" {
		sol := s.L3[configName]
		xbarCycles := cyc(s.Xbar.Delay)
		if xbarCycles < 1 {
			xbarCycles = 1
		}
		// Sequential-access caches (the DRAM L3s) pay the tag lookup
		// before the data access; normal-mode caches (the SRAM L3)
		// overlap them, so the whole access is one stage.
		tagC := int64(0)
		dataC := maxI64(1, cyc(sol.AccessTime))
		if sol.Spec.Mode == core.Sequential && sol.Tag != nil {
			tagC = maxI64(1, cyc(sol.Tag.AccessTime))
			dataC = maxI64(1, cyc(sol.Data.AccessTime))
		}
		l3p = &sim.L3Params{
			CapacityBytes:  sol.Spec.CapacityBytes / s.Scale,
			Ways:           sol.Spec.Associativity,
			Banks:          8,
			TagCycles:      tagC,
			DataCycles:     dataC,
			BankBusyCycles: maxI64(1, cyc(sol.InterleaveCycle)),
			CrossbarCycles: xbarCycles,
			PageBits:       int64(sol.Spec.PageBits),
		}
	}
	t := s.MemChip.Timing
	return sim.Config{
		Cores: 8, ThreadsPerCore: 4, LineBytes: 64,
		L1Bytes: (32 << 10) / s.Scale, L1Ways: 8,
		L2Bytes: (1 << 20) / s.Scale, L2Ways: 8,
		L1HitCycles: maxI64(1, cyc(s.L1.AccessTime)),
		L2HitCycles: maxI64(1, cyc(s.L2.AccessTime)),
		L3:          l3p,
		Mem: memctl.Config{
			Channels: 2, BanksPerChannel: 8,
			PageBytes: 8192, // 8Kb page x 8 chips / 8 bits
			LineBytes: 64,
			Policy:    memctl.OpenPage,
			Timing: memctl.Timing{
				TRCD: cyc(t.TRCD), CAS: cyc(t.CAS), TRP: cyc(t.TRP),
				TRAS: cyc(t.TRAS), TRC: cyc(t.TRC),
				TRRD: maxI64(4, cyc(t.TRRD)/2), Burst: maxI64(1, cyc(t.TBurst)),
			},
			PowerDown:      s.UsePowerDown,
			PowerDownAfter: 200, // 100ns idle threshold
			WakeupCycles:   12,  // tXP-style exit latency
		},
		Workload: prof, InstrBudget: s.InstrBudget, WarmupFrac: 0.3, Seed: seed,
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Energies builds the power-model inputs for one configuration.
func (s *Study) Energies(configName string) stats.Energies {
	e := stats.Energies{
		ClockHz: ClockHz,
		EL1:     s.L1.EReadPerAccess,
		EL2:     s.L2.EReadPerAccess,
		EXbar:   s.Xbar.EnergyPerTx,
		// 16 L1 caches (8I + 8D) and 8 L2 caches.
		L1Leak:   16 * s.L1.LeakagePower,
		L2Leak:   8 * s.L2.LeakagePower,
		XbarLeak: s.Xbar.Leakage,

		MemChips: memChipsPerAccess, MemTotalChips: totalMemChips,
		EMemActivate:      s.MemChip.EActivate,
		EMemRead:          s.MemChip.ERead,
		EMemWrite:         s.MemChip.EWrite,
		MemStandbyPerChip: s.MemChip.StandbyPower,
		MemRefreshPerChip: s.MemChip.RefreshPower,
		BusEnergyPerBit:   BusEnergyPerBit,
		CorePower:         CorePowerW,
	}
	if s.UsePowerDown {
		e.MemChannels = 2
		e.PowerDownSaving = 0.85
	}
	if configName != "nol3" {
		sol := s.L3[configName]
		e.L3Leak = sol.LeakagePower
		e.L3Refresh = sol.RefreshPower
		if sol.Tag != nil {
			e.EL3Tag = sol.Tag.EReadTotal()
		}
		e.EL3Read = sol.Data.EReadTotal()
		e.EL3Write = sol.Data.EActivate + sol.Data.EWrite + sol.Data.EPrecharge
	}
	return e
}

// RunResult bundles a simulation outcome with its power breakdown.
type RunResult struct {
	Benchmark string
	Config    string
	Sim       *sim.Result
	Power     stats.Power
	EDP       float64
}

// Run executes one benchmark on one configuration.
func (s *Study) Run(benchmark, configName string, seed uint64) (*RunResult, error) {
	prof, err := workload.ByName(benchmark)
	if err != nil {
		return nil, err
	}
	cfg := s.SimConfig(configName, prof, seed)
	r := sim.Run(cfg)
	p := stats.Compute(r, s.Energies(configName))
	return &RunResult{
		Benchmark: benchmark,
		Config:    configName,
		Sim:       r,
		Power:     p,
		EDP:       stats.EDP(&p, r.Cycles, ClockHz),
	}, nil
}

// RunAll executes every benchmark on every configuration.
func (s *Study) RunAll(seed uint64) (map[string]map[string]*RunResult, error) {
	out := map[string]map[string]*RunResult{}
	for _, p := range workload.NPB() {
		out[p.Name] = map[string]*RunResult{}
		for _, cn := range ConfigNames {
			r, err := s.Run(p.Name, cn, seed)
			if err != nil {
				return nil, err
			}
			out[p.Name][cn] = r
		}
	}
	return out, nil
}

// PowerDownExperiment quantifies the paper's concluding suggestion:
// with DRAM power-down modes, how much of the main-memory standby
// power can be recovered on a given benchmark/configuration? It
// returns the runs without and with power-down.
func (s *Study) PowerDownExperiment(benchmark, configName string, seed uint64) (without, with *RunResult, err error) {
	saved := s.UsePowerDown
	defer func() { s.UsePowerDown = saved }()
	s.UsePowerDown = false
	without, err = s.Run(benchmark, configName, seed)
	if err != nil {
		return nil, nil, err
	}
	s.UsePowerDown = true
	with, err = s.Run(benchmark, configName, seed)
	if err != nil {
		return nil, nil, err
	}
	return without, with, nil
}

// ThermalDelta reproduces the Section 4.3 HotSpot check: the maximum
// steady-state temperature difference between stacking the hottest
// (SRAM) and coolest (COMM-DRAM) L3 die.
func (s *Study) ThermalDelta() (float64, error) {
	perBank := func(sol *core.Solution) float64 {
		// Leakage + refresh per bank plus a dynamic allowance.
		return (sol.LeakagePower+sol.RefreshPower)/8 + 0.01
	}
	hot, err := thermal.Solve(thermal.StackedLLC(CorePowerW, perBank(s.L3["sram"])))
	if err != nil {
		return 0, err
	}
	cold, err := thermal.Solve(thermal.StackedLLC(CorePowerW, perBank(s.L3["cm_dram_c"])))
	if err != nil {
		return 0, err
	}
	return hot.MaxOverall() - cold.MaxOverall(), nil
}

// ThermalLeakageEquilibrium solves the coupled thermal-leakage fixed
// point for a stacked L3 configuration: leakage depends exponentially
// on die temperature (tech.LeakageTempScale, tables referenced at the
// 85C worst-case corner) while die temperature depends on dissipated
// power. It returns the equilibrium L3-die temperature and the L3
// leakage power at that temperature.
func (s *Study) ThermalLeakageEquilibrium(configName string) (tempK, leakW float64, err error) {
	sol, ok := s.L3[configName]
	if !ok {
		return 0, 0, fmt.Errorf("study: unknown L3 config %q", configName)
	}
	leakRef := sol.LeakagePower // at the 358K table corner
	leakW = leakRef
	tempK = 358.0
	for i := 0; i < 50; i++ {
		perBank := (leakW+sol.RefreshPower)/8 + 0.01
		res, err := thermal.Solve(thermal.StackedLLC(CorePowerW, perBank))
		if err != nil {
			return 0, 0, err
		}
		newTemp := res.Max(1) // the L3 die
		newLeak := leakRef * tech.LeakageTempScale(newTemp)
		if math.Abs(newTemp-tempK) < 1e-3 && math.Abs(newLeak-leakW)/math.Max(leakW, 1e-12) < 1e-6 {
			return newTemp, newLeak, nil
		}
		tempK, leakW = newTemp, newLeak
	}
	return tempK, leakW, nil
}
