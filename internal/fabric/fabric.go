// Package fabric scales the exploration engine horizontally: a
// coordinator shards a sweep's expanded specs across N worker nodes
// and makes the cluster behave like one fast engine.
//
// Sharding is by consistent hash of core.Spec.Fingerprint() — the
// same key the result cache and the durable store use — so every spec
// has exactly one owning worker: repeat sweeps land on warm caches,
// and no two workers ever solve the same point. Chunks dispatch over
// the worker's existing HTTP API (POST /v1/solve-batch?wire=fabric);
// idle workers steal queued chunks from stragglers' queues (queued
// work only — in-flight chunks are never duplicated); a failed or
// timed-out dispatch reroutes its chunk to another healthy worker
// with a bounded attempt budget, falling back to the coordinator's
// local engine when the budget is exhausted. Partial results stream
// back chunk by chunk and merge incrementally (explore.FrontierMerger
// relies on the property-tested order-independence of the Pareto
// frontier), and the merged output is byte-identical to a single-node
// explore.Engine.SweepGrid of the same grid — results depend only on
// the model, never on routing, stealing, or failure history.
//
// The chaos points fabric.dispatch and fabric.steal (internal/chaos)
// gate the dispatch RPC and the steal decision, so the reroute and
// steal machinery is provable under deterministic fault schedules.
package fabric

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cactid/internal/chaos"
	"cactid/internal/core"
	"cactid/internal/explore"
)

// Config assembles a Coordinator. Zero values take the defaults
// documented per field.
type Config struct {
	// Workers is the initial worker set; more can join later via
	// Register.
	Workers []Worker
	// ChunkSize is the number of specs per dispatch RPC (default 16).
	// Smaller chunks steal and reroute at finer grain; larger ones
	// amortize transport overhead.
	ChunkSize int
	// MaxAttempts bounds how many dispatch attempts a chunk gets
	// across reroutes before the local fallback solves it (default
	// 2 + number of workers).
	MaxAttempts int
	// FailAfter is the consecutive-dispatch-failure threshold that
	// marks a worker unhealthy mid-sweep (default 2). Heartbeats can
	// bring it back.
	FailAfter int
	// Heartbeat is the background probe period; 0 disables the loop
	// (workers then change health only on dispatch failures and
	// Register).
	Heartbeat time.Duration
	// HeartbeatTimeout bounds one probe (default 2s).
	HeartbeatTimeout time.Duration
	// VNodes is the number of ring positions per worker (default 64);
	// more positions spread load more evenly at the cost of a larger
	// ring.
	VNodes int
	// Local is the coordinator's own solve path (typically the local
	// engine's Sweep), the fallback of last resort when a chunk
	// exhausts MaxAttempts or no worker is healthy. Nil means such
	// points surface dispatch errors instead.
	Local func(context.Context, []core.Spec) []explore.Result
	// Chaos arms fabric.dispatch and fabric.steal; nil disables
	// injection.
	Chaos *chaos.Injector
}

// workerState pairs a Worker with its health and per-worker counters.
type workerState struct {
	w           Worker
	healthy     atomic.Bool
	consecFails atomic.Int64

	points   atomic.Int64 // points this worker delivered
	chunks   atomic.Int64 // chunks this worker completed
	steals   atomic.Int64 // chunks this worker stole from another queue
	failures atomic.Int64 // dispatch attempts that failed on this worker
}

// Coordinator shards sweeps across its workers. All methods are safe
// for concurrent use; concurrent Sweeps share the worker set and the
// workers' own admission control.
type Coordinator struct {
	cfg Config

	mu      sync.Mutex
	workers []*workerState // guarded by mu (the slice; states use atomics)

	sweeps           atomic.Int64
	chunksDispatched atomic.Int64 // dispatch RPC attempts
	chunksRerouted   atomic.Int64 // chunks requeued after a failed dispatch
	chunksStolen     atomic.Int64
	stealsAborted    atomic.Int64 // steal attempts a chaos fault abandoned
	dispatchFailures atomic.Int64
	localPoints      atomic.Int64 // points solved by the local fallback
	duplicateResults atomic.Int64 // results delivered for an already-filled point (invariant: 0)
	heartbeatFails   atomic.Int64

	stopOnce sync.Once
	stopCh   chan struct{}
	hbWG     sync.WaitGroup
}

// New builds a Coordinator and, when cfg.Heartbeat is set, starts its
// background heartbeat loop (stop it with Close).
func New(cfg Config) *Coordinator {
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 16
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 2 + len(cfg.Workers)
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 2
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 2 * time.Second
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = 64
	}
	c := &Coordinator{cfg: cfg, stopCh: make(chan struct{})}
	for _, w := range cfg.Workers {
		c.Register(w)
	}
	if cfg.Heartbeat > 0 {
		c.hbWG.Add(1)
		go c.heartbeatLoop()
	}
	return c
}

// Register adds a worker (deduplicated by name) and marks it healthy.
// Reports whether the worker was new.
func (c *Coordinator) Register(w Worker) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ws := range c.workers {
		if ws.w.Name() == w.Name() {
			ws.healthy.Store(true)
			ws.consecFails.Store(0)
			return false
		}
	}
	ws := &workerState{w: w}
	ws.healthy.Store(true)
	c.workers = append(c.workers, ws)
	return true
}

// Close stops the heartbeat loop. In-flight Sweeps are unaffected.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stopCh) })
	c.hbWG.Wait()
}

func (c *Coordinator) snapshot() []*workerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*workerState, len(c.workers))
	copy(out, c.workers)
	return out
}

func (c *Coordinator) heartbeatLoop() {
	defer c.hbWG.Done()
	t := time.NewTicker(c.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-t.C:
			c.HeartbeatNow()
		}
	}
}

// HeartbeatNow probes every worker once, updating health: a live
// probe heals a worker dispatch failures had marked down, a dead one
// takes it out of the next sweep's ring.
func (c *Coordinator) HeartbeatNow() {
	for _, ws := range c.snapshot() {
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.HeartbeatTimeout)
		ok := ws.w.Healthy(ctx)
		cancel()
		if ok {
			ws.consecFails.Store(0)
		} else {
			c.heartbeatFails.Add(1)
		}
		ws.healthy.Store(ok)
	}
}

// --- consistent-hash ring ---------------------------------------------

// fnv64a and splitmix64 give the ring a cheap, well-mixed, dependency-
// free hash; the same pair the chaos injector uses for its decision
// schedule.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ring maps fingerprint hashes to worker slots: VNodes points per
// worker on a uint64 circle, each fingerprint owned by the first
// point at or clockwise of its hash. Losing a worker reassigns only
// that worker's arcs (to their clockwise successors); every other
// spec keeps its owner — which is what keeps the surviving workers'
// caches warm across membership changes.
type ring struct {
	hashes []uint64
	slots  []int
}

// buildRing places vnodes points per worker name. Names must be
// distinct; order does not matter (the ring is a pure function of the
// name set).
func buildRing(names []string, vnodes int) ring {
	type pt struct {
		h    uint64
		slot int
	}
	pts := make([]pt, 0, len(names)*vnodes)
	for slot, name := range names {
		base := fnv64a(name)
		for v := 0; v < vnodes; v++ {
			pts = append(pts, pt{splitmix64(base ^ uint64(v)<<17), slot})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].h != pts[j].h {
			return pts[i].h < pts[j].h
		}
		return pts[i].slot < pts[j].slot // deterministic on (vanishingly rare) hash ties
	})
	r := ring{hashes: make([]uint64, len(pts)), slots: make([]int, len(pts))}
	for i, p := range pts {
		r.hashes[i], r.slots[i] = p.h, p.slot
	}
	return r
}

// owner returns the slot owning fingerprint fp.
func (r ring) owner(fp string) int {
	h := splitmix64(fnv64a(fp))
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0 // wrap: the circle's first point owns the top arc
	}
	return r.slots[i]
}

// --- sweep run --------------------------------------------------------

// chunk is one dispatchable unit: a subset of the sweep's points.
// idxs are sweep-global indices, specs the matching subset, attempts
// the dispatch budget consumed so far.
type chunk struct {
	idxs     []int
	specs    []core.Spec
	attempts int
}

// sweepRun is the shared state of one Sweep call's dispatch loop.
type sweepRun struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queues   [][]*chunk // per-runner pending chunks; in-flight chunks live nowhere
	pending  int        // points not yet delivered
	canceled bool
}

func (run *sweepRun) broadcastLocked() { run.cond.Broadcast() }

// Sweep shards the specs across the healthy workers and returns one
// Result per spec, in input order — the same contract as
// explore.Engine.Sweep, and byte-identical output for the same specs.
// onResult, when non-nil, observes every Result as it is delivered
// (completion order, serialized calls): the streaming-merge hook.
func (c *Coordinator) Sweep(ctx context.Context, specs []core.Spec, onResult func(explore.Result)) []explore.Result {
	c.sweeps.Add(1)
	results := make([]explore.Result, len(specs))
	filled := make([]bool, len(specs))
	var deliverMu sync.Mutex
	deliver := func(r explore.Result) {
		deliverMu.Lock()
		defer deliverMu.Unlock()
		if r.Index < 0 || r.Index >= len(results) || filled[r.Index] {
			c.duplicateResults.Add(1)
			return
		}
		filled[r.Index] = true
		results[r.Index] = r
		if onResult != nil {
			onResult(r)
		}
	}

	ws := c.healthyWorkers()
	if len(ws) == 0 {
		c.localSweep(ctx, specs, nil, deliver)
		return results
	}

	// Shard: fingerprint every point, chunk each owner's points in
	// index order. Specs that fail to fingerprint error out exactly
	// like the single-node sweep.
	names := make([]string, len(ws))
	for i, w := range ws {
		names[i] = w.w.Name()
	}
	rg := buildRing(names, c.cfg.VNodes)
	perOwner := make([][]int, len(ws))
	pending := 0
	for i, spec := range specs {
		fp, err := spec.Fingerprint()
		if err != nil {
			deliver(explore.Result{Index: i, Spec: spec, Err: err})
			continue
		}
		o := rg.owner(fp)
		perOwner[o] = append(perOwner[o], i)
		pending++
	}
	if pending == 0 {
		return results
	}

	run := &sweepRun{queues: make([][]*chunk, len(ws)), pending: pending}
	run.cond = sync.NewCond(&run.mu)
	for o, idxs := range perOwner {
		for len(idxs) > 0 {
			n := min(c.cfg.ChunkSize, len(idxs))
			ch := &chunk{idxs: idxs[:n:n]}
			ch.specs = make([]core.Spec, n)
			for k, idx := range ch.idxs {
				ch.specs[k] = specs[idx]
			}
			run.queues[o] = append(run.queues[o], ch)
			idxs = idxs[n:]
		}
	}

	// Wake every parked runner when the context dies so they can exit.
	stopWatch := context.AfterFunc(ctx, func() {
		run.mu.Lock()
		run.canceled = true
		run.broadcastLocked()
		run.mu.Unlock()
	})
	defer stopWatch()

	var wg sync.WaitGroup
	for wi := range ws {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			c.runner(ctx, run, ws, wi, deliver)
		}(wi)
	}
	wg.Wait()

	// Whatever the runners could not finish (cancellation) fails with
	// the context's error, like the single-node sweep's tail.
	for i := range specs {
		if !filled[i] {
			err := ctx.Err()
			if err == nil {
				err = fmt.Errorf("fabric: point %d not delivered", i)
			}
			deliver(explore.Result{Index: i, Spec: specs[i], Err: err})
		}
	}
	return results
}

// SweepGrid expands the grid and sweeps it across the cluster.
func (c *Coordinator) SweepGrid(ctx context.Context, g explore.Grid, onResult func(explore.Result)) ([]explore.Result, int) {
	specs, skipped := g.Expand()
	return c.Sweep(ctx, specs, onResult), skipped
}

// Owner returns the healthy worker owning fingerprint fp on the
// current ring, or nil when none is healthy. Routing single-point
// requests through it lands them on the same cache/store owner the
// sweep sharding uses, so interactive and sweep traffic stay warm
// together.
func (c *Coordinator) Owner(fp string) Worker {
	ws := c.healthyWorkers()
	if len(ws) == 0 {
		return nil
	}
	names := make([]string, len(ws))
	for i, w := range ws {
		names[i] = w.w.Name()
	}
	return ws[buildRing(names, c.cfg.VNodes).owner(fp)].w
}

func (c *Coordinator) healthyWorkers() []*workerState {
	all := c.snapshot()
	out := make([]*workerState, 0, len(all))
	for _, ws := range all {
		if ws.healthy.Load() {
			out = append(out, ws)
		}
	}
	return out
}

// runner is one worker's dispatch loop: drain the own queue, then
// steal from stragglers, until every point of the run is delivered.
func (c *Coordinator) runner(ctx context.Context, run *sweepRun, ws []*workerState, wi int, deliver func(explore.Result)) {
	st := ws[wi]
	for {
		ch, last := c.nextChunk(ctx, run, ws, wi)
		if ch == nil {
			if last != nil {
				// This runner is the last one standing and chunks are
				// still queued: no worker can take them, so the local
				// fallback finishes the sweep.
				for _, lc := range last {
					c.fallbackChunk(ctx, run, lc, nil, deliver)
				}
			}
			return
		}
		c.chunksDispatched.Add(1)
		if err := c.cfg.Chaos.Inject(ctx, chaos.FabricDispatch); err != nil {
			// Injected transport fault: reroute exactly as if the RPC
			// had failed on the wire. The worker never saw the chunk,
			// so rerouting cannot double-solve.
			c.failChunk(ctx, run, ws, wi, ch, err, deliver)
			continue
		}
		wres, err := st.w.SolveBatch(ctx, ch.specs)
		if err == nil && len(wres) != len(ch.specs) {
			err = fmt.Errorf("fabric: worker %s returned %d results for %d specs",
				st.w.Name(), len(wres), len(ch.specs))
		}
		if err != nil {
			c.failChunk(ctx, run, ws, wi, ch, err, deliver)
			continue
		}
		st.consecFails.Store(0)
		c.deliverChunk(ctx, run, ws, wi, ch, wres, deliver)
	}
}

// nextChunk blocks until the runner has work: its own queue first,
// then a steal from the longest other queue. Returns (nil, nil) when
// the run is complete or canceled; returns (nil, leftovers) when this
// runner went unhealthy or is the last to exit with queued chunks
// nobody can serve — the caller must fall back locally on leftovers.
func (c *Coordinator) nextChunk(ctx context.Context, run *sweepRun, ws []*workerState, wi int) (*chunk, []*chunk) {
	st := ws[wi]
	run.mu.Lock()
	defer run.mu.Unlock()
	for {
		if run.canceled || run.pending == 0 {
			return nil, nil
		}
		if !st.healthy.Load() {
			// Hand the own queue to the healthy runners (or to the
			// local fallback when none remain) and bow out.
			return nil, c.abandonQueueLocked(run, ws, wi)
		}
		if q := run.queues[wi]; len(q) > 0 {
			ch := q[0]
			run.queues[wi] = q[1:]
			return ch, nil
		}
		victim := c.longestOtherQueue(run, ws, wi)
		if victim < 0 {
			// Nothing to steal; wait for a delivery, a requeue, or
			// cancellation to change the world.
			run.cond.Wait()
			continue
		}
		// Steal from the victim's tail: the owner drains its queue
		// from the front, so contention is minimal. The chaos gate
		// (and any injected latency) runs unlocked.
		run.mu.Unlock()
		err := c.cfg.Chaos.Inject(ctx, chaos.FabricSteal)
		run.mu.Lock()
		if err != nil {
			c.stealsAborted.Add(1)
			if run.canceled || run.pending == 0 {
				return nil, nil
			}
			run.cond.Wait() // try again after the next state change
			continue
		}
		victim = c.longestOtherQueue(run, ws, wi) // world may have changed while unlocked
		if victim < 0 {
			continue
		}
		q := run.queues[victim]
		ch := q[len(q)-1]
		run.queues[victim] = q[:len(q)-1]
		st.steals.Add(1)
		c.chunksStolen.Add(1)
		return ch, nil
	}
}

// longestOtherQueue picks the steal victim: the healthy-or-not runner
// with the most queued chunks. (Unhealthy runners' queues are prime
// steal targets — their owner is not draining them.)
func (c *Coordinator) longestOtherQueue(run *sweepRun, ws []*workerState, wi int) int {
	best, bestLen := -1, 0
	for j := range run.queues {
		if j != wi && len(run.queues[j]) > bestLen {
			best, bestLen = j, len(run.queues[j])
		}
	}
	return best
}

// abandonQueueLocked moves an unhealthy runner's queued chunks to the
// healthy runner with the shortest queue. When no healthy runner
// remains this runner is the last line of defense: it takes the
// leftovers (its own queue plus every other abandoned queue) for the
// local fallback. Caller holds run.mu.
func (c *Coordinator) abandonQueueLocked(run *sweepRun, ws []*workerState, wi int) []*chunk {
	target := -1
	for j := range ws {
		if j != wi && ws[j].healthy.Load() {
			if target < 0 || len(run.queues[j]) < len(run.queues[target]) {
				target = j
			}
		}
	}
	if target >= 0 {
		run.queues[target] = append(run.queues[target], run.queues[wi]...)
		run.queues[wi] = nil
		run.broadcastLocked()
		return nil
	}
	var leftovers []*chunk
	for j := range run.queues {
		leftovers = append(leftovers, run.queues[j]...)
		run.queues[j] = nil
	}
	return leftovers
}

// failChunk handles a failed dispatch: bump the worker's failure
// accounting (FailAfter consecutive failures mark it unhealthy), then
// either reroute the chunk to another worker's queue or — once its
// attempt budget is spent — solve it through the local fallback.
func (c *Coordinator) failChunk(ctx context.Context, run *sweepRun, ws []*workerState, wi int, ch *chunk, err error, deliver func(explore.Result)) {
	st := ws[wi]
	st.failures.Add(1)
	c.dispatchFailures.Add(1)
	if st.consecFails.Add(1) >= int64(c.cfg.FailAfter) {
		st.healthy.Store(false)
	}
	if ctx.Err() != nil {
		// The run itself is dying; leave the points unfilled for the
		// cancellation tail.
		run.mu.Lock()
		run.canceled = true
		run.broadcastLocked()
		run.mu.Unlock()
		return
	}
	ch.attempts++
	if ch.attempts >= c.cfg.MaxAttempts {
		c.fallbackChunk(ctx, run, ch, err, deliver)
		return
	}
	c.chunksRerouted.Add(1)
	run.mu.Lock()
	target := wi
	bestLen := -1
	for j := range ws {
		if j != wi && ws[j].healthy.Load() && (bestLen < 0 || len(run.queues[j]) < bestLen) {
			target, bestLen = j, len(run.queues[j])
		}
	}
	// No healthy peer: requeue on self; the attempt budget converts a
	// persistent failure into the local fallback after MaxAttempts.
	run.queues[target] = append(run.queues[target], ch)
	run.broadcastLocked()
	run.mu.Unlock()
}

// deliverChunk records a completed chunk: good results deliver (and
// shrink pending); results the worker's context cut off are requeued
// as a fresh chunk — the worker engine forgets canceled entries, so
// the retry re-solves them cold and the output stays byte-identical.
func (c *Coordinator) deliverChunk(ctx context.Context, run *sweepRun, ws []*workerState, wi int, ch *chunk, wres []WireResult, deliver func(explore.Result)) {
	st := ws[wi]
	var retry *chunk
	delivered := 0
	for k, wr := range wres {
		if wr.canceled() {
			if retry == nil {
				retry = &chunk{attempts: ch.attempts}
			}
			retry.idxs = append(retry.idxs, ch.idxs[k])
			retry.specs = append(retry.specs, ch.specs[k])
			continue
		}
		r := FromWire(wr)
		r.Index = ch.idxs[k]
		deliver(r)
		delivered++
	}
	st.points.Add(int64(delivered))
	st.chunks.Add(1)
	run.mu.Lock()
	run.pending -= delivered
	if retry != nil {
		retry.attempts++
		if retry.attempts >= c.cfg.MaxAttempts {
			run.mu.Unlock()
			c.fallbackChunk(ctx, run, retry, nil, deliver)
			run.mu.Lock()
		} else {
			c.chunksRerouted.Add(1)
			run.queues[wi] = append(run.queues[wi], retry)
		}
	}
	run.broadcastLocked()
	run.mu.Unlock()
}

// fallbackChunk solves a chunk on the coordinator itself (or fails
// its points when no local solver is configured) and delivers.
func (c *Coordinator) fallbackChunk(ctx context.Context, run *sweepRun, ch *chunk, cause error, deliver func(explore.Result)) {
	c.localChunk(ctx, ch, cause, deliver)
	run.mu.Lock()
	run.pending -= len(ch.idxs)
	run.broadcastLocked()
	run.mu.Unlock()
}

func (c *Coordinator) localChunk(ctx context.Context, ch *chunk, cause error, deliver func(explore.Result)) {
	if c.cfg.Local == nil {
		if cause == nil {
			cause = fmt.Errorf("fabric: dispatch attempts exhausted")
		}
		for k, idx := range ch.idxs {
			deliver(explore.Result{Index: idx, Spec: ch.specs[k],
				Err: fmt.Errorf("fabric: no worker could solve point: %w", cause)})
		}
		return
	}
	c.localPoints.Add(int64(len(ch.idxs)))
	for k, r := range c.cfg.Local(ctx, ch.specs) {
		r.Index = ch.idxs[k]
		deliver(r)
	}
}

// localSweep serves a whole sweep through the fallback (the
// no-healthy-workers path), preserving the Sweep result contract.
func (c *Coordinator) localSweep(ctx context.Context, specs []core.Spec, cause error, deliver func(explore.Result)) {
	idxs := make([]int, len(specs))
	for i := range idxs {
		idxs[i] = i
	}
	c.localChunk(ctx, &chunk{idxs: idxs, specs: specs}, cause, deliver)
}

// --- observability ----------------------------------------------------

// WorkerStatus is one worker's view in Status.
type WorkerStatus struct {
	Name             string `json:"name"`
	Healthy          bool   `json:"healthy"`
	Points           int64  `json:"points"`
	Chunks           int64  `json:"chunks"`
	ChunksStolen     int64  `json:"chunks_stolen"`
	DispatchFailures int64  `json:"dispatch_failures"`
}

// Status is the coordinator's /v1/fabric snapshot.
type Status struct {
	Workers          []WorkerStatus `json:"workers"`
	HealthyWorkers   int            `json:"healthy_workers"`
	Sweeps           int64          `json:"sweeps"`
	ChunksDispatched int64          `json:"chunks_dispatched"`
	ChunksStolen     int64          `json:"chunks_stolen"`
	ChunksRerouted   int64          `json:"chunks_rerouted"`
	StealsAborted    int64          `json:"steals_aborted"`
	DispatchFailures int64          `json:"dispatch_failures"`
	HeartbeatFails   int64          `json:"heartbeat_failures"`
	LocalPoints      int64          `json:"local_fallback_points"`
	DuplicateResults int64          `json:"duplicate_results"`
}

// Status snapshots the coordinator counters and per-worker health.
func (c *Coordinator) Status() Status {
	all := c.snapshot()
	s := Status{
		Workers:          make([]WorkerStatus, 0, len(all)),
		Sweeps:           c.sweeps.Load(),
		ChunksDispatched: c.chunksDispatched.Load(),
		ChunksStolen:     c.chunksStolen.Load(),
		ChunksRerouted:   c.chunksRerouted.Load(),
		StealsAborted:    c.stealsAborted.Load(),
		DispatchFailures: c.dispatchFailures.Load(),
		HeartbeatFails:   c.heartbeatFails.Load(),
		LocalPoints:      c.localPoints.Load(),
		DuplicateResults: c.duplicateResults.Load(),
	}
	for _, ws := range all {
		h := ws.healthy.Load()
		if h {
			s.HealthyWorkers++
		}
		s.Workers = append(s.Workers, WorkerStatus{
			Name:             ws.w.Name(),
			Healthy:          h,
			Points:           ws.points.Load(),
			Chunks:           ws.chunks.Load(),
			ChunksStolen:     ws.steals.Load(),
			DispatchFailures: ws.failures.Load(),
		})
	}
	return s
}

// ClusterStats merges every reachable worker's engine counters into
// one cluster-wide explore.Stats (counter conservation per
// Stats.Merge). The coordinator's own engine is not included; callers
// merge it themselves if they want the full picture.
func (c *Coordinator) ClusterStats(ctx context.Context) explore.Stats {
	var agg explore.Stats
	for _, ws := range c.snapshot() {
		sctx, cancel := context.WithTimeout(ctx, c.cfg.HeartbeatTimeout)
		st, err := ws.w.Stats(sctx)
		cancel()
		if err == nil {
			agg = agg.Merge(st)
		}
	}
	return agg
}
