package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"cactid/internal/core"
	"cactid/internal/explore"
)

// Worker is one solve executor the coordinator can dispatch chunks
// to: a remote cactid-serve node over HTTP in production, or an
// in-process engine in tests and benchmarks. Implementations must be
// safe for concurrent use.
type Worker interface {
	// Name identifies the worker; it is the consistent-hash ring key,
	// so it must be stable across coordinator restarts for the
	// spec→owner mapping (and therefore worker cache warmth) to
	// survive.
	Name() string
	// SolveBatch solves the specs and returns one result per spec, in
	// input order. A returned error means transport-level failure —
	// nothing was delivered and the chunk is safe to reroute; per-spec
	// failures travel inside the results.
	SolveBatch(ctx context.Context, specs []core.Spec) ([]WireResult, error)
	// Healthy is the heartbeat probe.
	Healthy(ctx context.Context) bool
	// Stats returns the worker engine's counters, for cluster-wide
	// aggregation via explore.Stats.Merge.
	Stats(ctx context.Context) (explore.Stats, error)
}

// HTTPWorker drives a remote cactid-serve node through its existing
// API: POST /v1/solve-batch?wire=fabric for chunks, GET /healthz for
// heartbeats, GET /v1/stats for counters.
type HTTPWorker struct {
	// BaseURL is the node's root, e.g. "http://10.0.0.7:8080".
	BaseURL string
	// Client defaults to a client with a 2-minute timeout; dispatch
	// contexts usually bound requests tighter.
	Client *http.Client
}

// NewHTTPWorker normalizes the base URL (scheme added, trailing slash
// trimmed) into a ready worker.
func NewHTTPWorker(baseURL string) *HTTPWorker {
	u := strings.TrimRight(strings.TrimSpace(baseURL), "/")
	if u != "" && !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return &HTTPWorker{BaseURL: u}
}

func (w *HTTPWorker) Name() string { return w.BaseURL }

func (w *HTTPWorker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return httpWorkerClient
}

// httpWorkerClient is shared across HTTPWorkers so connections are
// pooled per remote node.
var httpWorkerClient = &http.Client{Timeout: 2 * time.Minute}

func (w *HTTPWorker) SolveBatch(ctx context.Context, specs []core.Spec) ([]WireResult, error) {
	body, err := json.Marshal(BatchRequest{Specs: specs})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		w.BaseURL+"/v1/solve-batch?wire=fabric", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("worker %s: %s: %s", w.BaseURL, resp.Status, bytes.TrimSpace(msg))
	}
	var out BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("worker %s: decode: %w", w.BaseURL, err)
	}
	return out.Results, nil
}

func (w *HTTPWorker) Healthy(ctx context.Context) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.BaseURL+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := w.client().Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 64))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func (w *HTTPWorker) Stats(ctx context.Context) (explore.Stats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.BaseURL+"/v1/stats", nil)
	if err != nil {
		return explore.Stats{}, err
	}
	resp, err := w.client().Do(req)
	if err != nil {
		return explore.Stats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return explore.Stats{}, fmt.Errorf("worker %s: %s", w.BaseURL, resp.Status)
	}
	var st explore.Stats
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// EngineWorker adapts an in-process explore.Engine to the Worker
// interface: the zero-transport worker used by tests, benchmarks, and
// single-binary cluster emulation.
type EngineWorker struct {
	WorkerName string
	Engine     *explore.Engine
	// Fail, when set, simulates transport failure: SolveBatch returns
	// its error without touching the engine (tests flip a worker dead
	// mid-sweep this way).
	Fail func() error
}

func (w *EngineWorker) Name() string { return w.WorkerName }

func (w *EngineWorker) SolveBatch(ctx context.Context, specs []core.Spec) ([]WireResult, error) {
	if w.Fail != nil {
		if err := w.Fail(); err != nil {
			return nil, err
		}
	}
	results := w.Engine.Sweep(ctx, specs)
	out := make([]WireResult, len(results))
	for i, r := range results {
		out[i] = ToWire(r)
	}
	return out, nil
}

func (w *EngineWorker) Healthy(_ context.Context) bool {
	if w.Fail != nil && w.Fail() != nil {
		return false
	}
	return true
}

func (w *EngineWorker) Stats(_ context.Context) (explore.Stats, error) {
	return w.Engine.Stats(), nil
}
