package fabric

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"cactid/internal/array"
	"cactid/internal/chaos"
	"cactid/internal/core"
	"cactid/internal/explore"
	"cactid/internal/tech"
)

// testGrid mirrors the explore package's 64-point SRAM grid: small,
// fast-to-solve caches with distinct fingerprints.
func testGrid() explore.Grid {
	return explore.Grid{
		Base: core.Spec{Node: tech.Node32, RAM: tech.SRAM, IsCache: true,
			MaxPipelineStages: 6},
		Capacities: []int64{32 << 10, 64 << 10, 128 << 10, 256 << 10},
		Assocs:     []int{1, 2, 4, 8},
		Blocks:     []int{32, 64},
		Modes:      []core.AccessMode{core.Normal, core.Sequential},
	}
}

// fakeSolver is a deterministic, instant stand-in for the circuit
// model, with a Data bank so exporters can render its solutions.
func fakeSolver(delay time.Duration) (*atomic.Int64, func(context.Context, core.Spec) (*core.Solution, error)) {
	var n atomic.Int64
	return &n, func(_ context.Context, spec core.Spec) (*core.Solution, error) {
		n.Add(1)
		if delay > 0 {
			time.Sleep(delay)
		}
		c := float64(spec.CapacityBytes)
		return &core.Solution{Spec: spec,
			AccessTime: c, EReadPerAccess: 1 / c, LeakagePower: c, Area: c,
			Data: &array.Bank{Org: array.Org{Rows: 1, Cols: 1, Mux: 1,
				MatsPerSubbank: 1, Subbanks: 1, Mats: 1}, PipelineStages: 1}}, nil
	}
}

// fakeSpecs returns n specs with distinct fingerprints.
func fakeSpecs(n int) []core.Spec {
	specs := make([]core.Spec, n)
	for i := range specs {
		specs[i] = core.Spec{RAM: tech.SRAM, Node: tech.Node32,
			CapacityBytes: int64(i+1) << 10, BlockBytes: 64}
	}
	return specs
}

func engineWorker(name string, delay time.Duration) (*EngineWorker, *atomic.Int64) {
	n, solver := fakeSolver(delay)
	return &EngineWorker{WorkerName: name,
		Engine: explore.New(explore.Options{Workers: 2, Solver: solver})}, n
}

// TestRingMinimalReassignment: removing one worker from the ring must
// move only that worker's keys; every other spec keeps its owner, so
// surviving workers' caches stay warm through membership changes.
func TestRingMinimalReassignment(t *testing.T) {
	names := []string{"node-a", "node-b", "node-c", "node-d"}
	full := buildRing(names, 64)
	reduced := buildRing(names[:3], 64) // node-d removed; slots 0..2 unchanged

	keys := make([]string, 500)
	for i := range keys {
		keys[i] = fmt.Sprintf("fingerprint-%d", i)
	}
	balance := make(map[int]int)
	for _, k := range keys {
		before := full.owner(k)
		balance[before]++
		if before == 3 {
			continue // node-d's keys must move somewhere
		}
		if after := reduced.owner(k); after != before {
			t.Fatalf("key %q moved from slot %d to %d though its owner survived",
				k, before, after)
		}
	}
	for slot := range names {
		if balance[slot] == 0 {
			t.Fatalf("slot %d owns no keys out of %d: ring badly unbalanced (%v)",
				slot, len(keys), balance)
		}
	}
}

// TestFabricSweepByteIdenticalToSingleNode is the core guarantee: a
// sweep sharded across three workers, streamed and merged, serializes
// byte-for-byte like a single-node Engine sweep of the same specs —
// for the full result set and for the Pareto frontier. Runs the real
// circuit model end to end.
func TestFabricSweepByteIdenticalToSingleNode(t *testing.T) {
	specs, _ := testGrid().Expand()

	single := explore.New(explore.Options{Workers: 4}).Sweep(context.Background(), specs)

	workers := make([]Worker, 3)
	for i := range workers {
		workers[i] = &EngineWorker{WorkerName: fmt.Sprintf("node-%d", i),
			Engine: explore.New(explore.Options{Workers: 2})}
	}
	co := New(Config{Workers: workers, ChunkSize: 4})
	defer co.Close()

	merger := explore.NewFrontierMerger()
	distributed := co.Sweep(context.Background(), specs, merger.Add)

	assertSameBytes(t, single, distributed, "full result set")
	assertSameBytes(t, explore.Frontier(single), merger.Frontier(), "streamed frontier")

	st := co.Status()
	if st.DuplicateResults != 0 {
		t.Fatalf("%d duplicate deliveries", st.DuplicateResults)
	}
	if st.HealthyWorkers != 3 {
		t.Fatalf("healthy workers = %d, want 3", st.HealthyWorkers)
	}
}

func assertSameBytes(t *testing.T, want, got []explore.Result, what string) {
	t.Helper()
	var wj, gj, wc, gc bytes.Buffer
	if err := explore.WriteJSON(&wj, want); err != nil {
		t.Fatal(err)
	}
	if err := explore.WriteJSON(&gj, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wj.Bytes(), gj.Bytes()) {
		t.Fatalf("%s: JSON differs from single-node output", what)
	}
	if err := explore.WriteCSV(&wc, want); err != nil {
		t.Fatal(err)
	}
	if err := explore.WriteCSV(&gc, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wc.Bytes(), gc.Bytes()) {
		t.Fatalf("%s: CSV differs from single-node output", what)
	}
}

// TestFabricWorkStealing: with one straggler worker, the fast worker
// must steal from its queue, and every point still solves exactly
// once cluster-wide.
func TestFabricWorkStealing(t *testing.T) {
	slow, nSlow := engineWorker("slow-node", 3*time.Millisecond)
	fast, nFast := engineWorker("fast-node", 0)
	co := New(Config{Workers: []Worker{slow, fast}, ChunkSize: 1})
	defer co.Close()

	specs := fakeSpecs(48)
	results := co.Sweep(context.Background(), specs, nil)
	for i, r := range results {
		if r.Err != nil || r.Solution == nil {
			t.Fatalf("point %d failed: %v", i, r.Err)
		}
	}
	if total := nSlow.Load() + nFast.Load(); total != int64(len(specs)) {
		t.Fatalf("cluster solved %d points for %d specs (exactly-once violated)",
			total, len(specs))
	}
	st := co.Status()
	if st.ChunksStolen == 0 {
		t.Fatal("fast worker never stole from the straggler")
	}
	if st.DuplicateResults != 0 {
		t.Fatalf("%d duplicate deliveries", st.DuplicateResults)
	}
}

// TestFabricWorkerFailureReroutes kills one worker's transport after
// its first chunk; the sweep must still deliver every point exactly
// once, rerouting the dead worker's queue to the survivors.
func TestFabricWorkerFailureReroutes(t *testing.T) {
	w0, n0 := engineWorker("node-0", 0)
	w1, n1 := engineWorker("node-1", 0)
	w2, n2 := engineWorker("node-2", 0)
	var batches atomic.Int64
	w1.Fail = func() error {
		if batches.Add(1) > 1 {
			return errors.New("connection refused")
		}
		return nil
	}
	co := New(Config{Workers: []Worker{w0, w1, w2}, ChunkSize: 4, FailAfter: 2})
	defer co.Close()

	specs := fakeSpecs(96)
	results := co.Sweep(context.Background(), specs, nil)
	for i, r := range results {
		if r.Err != nil || r.Solution == nil {
			t.Fatalf("point %d failed: %v", i, r.Err)
		}
	}
	if total := n0.Load() + n1.Load() + n2.Load(); total != int64(len(specs)) {
		t.Fatalf("cluster solved %d points for %d specs (exactly-once violated)",
			total, len(specs))
	}
	st := co.Status()
	if st.DispatchFailures == 0 || st.ChunksRerouted == 0 {
		t.Fatalf("dead worker produced no reroutes: %+v", st)
	}
	if st.DuplicateResults != 0 {
		t.Fatalf("%d duplicate deliveries", st.DuplicateResults)
	}
	if st.HealthyWorkers != 2 {
		t.Fatalf("healthy workers = %d, want 2 after the kill", st.HealthyWorkers)
	}

	// A heartbeat against the revived transport heals the worker.
	w1.Fail = nil
	co.HeartbeatNow()
	if got := co.Status().HealthyWorkers; got != 3 {
		t.Fatalf("healthy workers after recovery = %d, want 3", got)
	}
}

// TestFabricAllWorkersDeadFallsBackLocal: when every worker is
// unreachable the coordinator's own engine finishes the sweep.
func TestFabricAllWorkersDeadFallsBackLocal(t *testing.T) {
	dead := func(name string) *EngineWorker {
		w, _ := engineWorker(name, 0)
		w.Fail = func() error { return errors.New("no route to host") }
		return w
	}
	nLocal, localSolver := fakeSolver(0)
	local := explore.New(explore.Options{Workers: 2, Solver: localSolver})
	co := New(Config{Workers: []Worker{dead("node-0"), dead("node-1")},
		ChunkSize: 8, Local: local.Sweep})
	defer co.Close()

	specs := fakeSpecs(32)
	results := co.Sweep(context.Background(), specs, nil)
	for i, r := range results {
		if r.Err != nil || r.Solution == nil {
			t.Fatalf("point %d failed: %v", i, r.Err)
		}
	}
	if nLocal.Load() != int64(len(specs)) {
		t.Fatalf("local fallback solved %d points, want %d", nLocal.Load(), len(specs))
	}
	st := co.Status()
	if st.LocalPoints != int64(len(specs)) {
		t.Fatalf("LocalPoints = %d, want %d", st.LocalPoints, len(specs))
	}
}

// TestFabricNoWorkersUsesLocal covers the degenerate topology: a
// coordinator with an empty worker set is just a local engine.
func TestFabricNoWorkersUsesLocal(t *testing.T) {
	nLocal, localSolver := fakeSolver(0)
	local := explore.New(explore.Options{Workers: 2, Solver: localSolver})
	co := New(Config{Local: local.Sweep})
	defer co.Close()
	results := co.Sweep(context.Background(), fakeSpecs(8), nil)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("point %d failed: %v", i, r.Err)
		}
	}
	if nLocal.Load() != 8 {
		t.Fatalf("local engine solved %d points, want 8", nLocal.Load())
	}
}

// TestFabricSweepCancellation: a canceled context ends the sweep with
// context errors on the undelivered tail, like the single-node sweep.
func TestFabricSweepCancellation(t *testing.T) {
	w, _ := engineWorker("node-0", 2*time.Millisecond)
	co := New(Config{Workers: []Worker{w}, ChunkSize: 4})
	defer co.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := co.Sweep(ctx, fakeSpecs(32), nil)
	canceled := 0
	for _, r := range results {
		if errors.Is(r.Err, context.Canceled) {
			canceled++
		}
	}
	if canceled < len(results)-8 {
		t.Fatalf("only %d/%d points carry the cancellation", canceled, len(results))
	}
}

// TestFabricChaosKillMidSweep is the cluster fault drill: three
// workers, one dying mid-sweep, plus seeded chaos faults on the
// dispatch and steal points. The merged output must stay
// byte-identical to a single-node sweep, with every point solved
// exactly once cluster-wide (per the engines' Solves counters) — the
// failure history must be invisible in the results.
func TestFabricChaosKillMidSweep(t *testing.T) {
	specs, _ := testGrid().Expand()
	single := explore.New(explore.Options{Workers: 4}).Sweep(context.Background(), specs)

	workers := make([]*EngineWorker, 3)
	for i := range workers {
		workers[i] = &EngineWorker{WorkerName: fmt.Sprintf("node-%d", i),
			Engine: explore.New(explore.Options{Workers: 2})}
	}
	// node-1's transport dies after its second successful batch.
	var batches atomic.Int64
	workers[1].Fail = func() error {
		if batches.Add(1) > 2 {
			return errors.New("connection reset by peer")
		}
		return nil
	}
	inj := chaos.New(42,
		chaos.Rule{Point: chaos.FabricDispatch, Fault: chaos.Cancel, Rate: 0.2},
		chaos.Rule{Point: chaos.FabricSteal, Fault: chaos.Cancel, Rate: 0.5},
	)
	local := explore.New(explore.Options{Workers: 2})
	co := New(Config{
		Workers:   []Worker{workers[0], workers[1], workers[2]},
		ChunkSize: 2, FailAfter: 2, Chaos: inj, Local: local.Sweep,
	})
	defer co.Close()

	merger := explore.NewFrontierMerger()
	distributed := co.Sweep(context.Background(), specs, merger.Add)

	assertSameBytes(t, single, distributed, "post-failure result set")
	assertSameBytes(t, explore.Frontier(single), merger.Frontier(), "post-failure frontier")

	var clusterSolves int64
	for _, w := range workers {
		clusterSolves += w.Engine.Stats().Solves
	}
	clusterSolves += local.Stats().Solves
	if clusterSolves != int64(len(specs)) {
		t.Fatalf("cluster solved %d points for %d specs (exactly-once violated)",
			clusterSolves, len(specs))
	}
	st := co.Status()
	if st.DuplicateResults != 0 {
		t.Fatalf("%d duplicate deliveries", st.DuplicateResults)
	}
	if st.DispatchFailures == 0 {
		t.Fatal("chaos schedule fired no dispatch faults; seed drifted?")
	}
	snap := inj.Snapshot()
	if snap[chaos.FabricDispatch].Cancels == 0 {
		t.Fatalf("fabric.dispatch never fired: %+v", snap)
	}
}

// TestFabricClusterStats aggregates worker engine counters through
// the Worker interface with conservation: merged Solves equals the
// points the cluster solved.
func TestFabricClusterStats(t *testing.T) {
	w0, _ := engineWorker("node-0", 0)
	w1, _ := engineWorker("node-1", 0)
	co := New(Config{Workers: []Worker{w0, w1}, ChunkSize: 4})
	defer co.Close()
	specs := fakeSpecs(40)
	co.Sweep(context.Background(), specs, nil)
	agg := co.ClusterStats(context.Background())
	if agg.Solves != int64(len(specs)) {
		t.Fatalf("merged cluster Solves = %d, want %d", agg.Solves, len(specs))
	}
	if agg.CacheEntries != len(specs) {
		t.Fatalf("merged CacheEntries = %d, want %d", agg.CacheEntries, len(specs))
	}
}

// TestWireRoundTripPreservesErrors: sentinel errors keep their
// errors.Is identity and exact message across the wire.
func TestWireRoundTripPreservesErrors(t *testing.T) {
	cases := []struct {
		err      error
		sentinel error
	}{
		{fmt.Errorf("point: %w", core.ErrNoSolution), core.ErrNoSolution},
		{fmt.Errorf("sweep: %w", context.Canceled), context.Canceled},
		{fmt.Errorf("sweep: %w", context.DeadlineExceeded), context.DeadlineExceeded},
		{fmt.Errorf("worker: %w", explore.ErrSolverPanic), explore.ErrSolverPanic},
	}
	for _, tc := range cases {
		in := explore.Result{Index: 3, Err: tc.err}
		out := FromWire(ToWire(in))
		if out.Err == nil || out.Err.Error() != tc.err.Error() {
			t.Fatalf("message lost: %v -> %v", tc.err, out.Err)
		}
		if !errors.Is(out.Err, tc.sentinel) {
			t.Fatalf("errors.Is(%v, %v) lost across the wire", out.Err, tc.sentinel)
		}
	}
}
