package fabric

import (
	"context"
	"errors"

	"cactid/internal/array"
	"cactid/internal/core"
	"cactid/internal/explore"
)

// The wire format carries the API-visible projection of a sweep
// result between a worker and the coordinator: the full core.Spec
// (flat, all exported — JSON round-trips it exactly, including the
// float constraints, since encoding/json emits shortest-round-trip
// float64s), the solution's scalar metrics, and the data/tag
// organizations as structs rather than pre-rendered strings. That is
// everything explore.ResultJSON / explore.WriteCSV read, so a result
// reconstructed from its wire form renders byte-identically to the
// original — the property the fabric's "distributed == single-node"
// guarantee rests on. Mat-level detail (timing components, electrical
// parameters) stays on the worker that solved the point.

// Error kinds let the coordinator keep errors.Is semantics across the
// wire without shipping Go error chains.
const (
	errKindNoSolution = "no_solution"
	errKindCanceled   = "canceled"
	errKindDeadline   = "deadline"
	errKindPanic      = "panic"
	errKindOther      = "other"
)

// wireError reconstructs a worker-side error on the coordinator: the
// exact message (so rendered output is byte-identical) plus an Is
// bridge for the sentinel the kind names.
type wireError struct {
	msg  string
	kind string
}

func (e *wireError) Error() string { return e.msg }

func (e *wireError) Is(target error) bool {
	switch e.kind {
	case errKindNoSolution:
		return target == core.ErrNoSolution
	case errKindCanceled:
		return target == context.Canceled
	case errKindDeadline:
		return target == context.DeadlineExceeded
	case errKindPanic:
		return target == explore.ErrSolverPanic
	}
	return false
}

func errKind(err error) string {
	switch {
	case errors.Is(err, core.ErrNoSolution):
		return errKindNoSolution
	case errors.Is(err, context.Canceled):
		return errKindCanceled
	case errors.Is(err, context.DeadlineExceeded):
		return errKindDeadline
	case errors.Is(err, explore.ErrSolverPanic):
		return errKindPanic
	}
	return errKindOther
}

// WireSolution is the transportable projection of core.Solution.
type WireSolution struct {
	Spec core.Spec `json:"spec"`

	AccessTime      float64 `json:"access_time_s"`
	RandomCycle     float64 `json:"random_cycle_s"`
	InterleaveCycle float64 `json:"interleave_cycle_s"`
	Area            float64 `json:"area_m2"`
	BankArea        float64 `json:"bank_area_m2"`
	AreaEff         float64 `json:"area_efficiency"`
	ERead           float64 `json:"read_energy_j"`
	EWrite          float64 `json:"write_energy_j"`
	Leakage         float64 `json:"leakage_w"`
	Refresh         float64 `json:"refresh_w"`

	// Asymmetric-write metrics; zero (and absent from the wire) for
	// technologies without a programming pulse or wear-out limit.
	WriteTime      float64 `json:"write_time_s,omitempty"`
	WriteEndurance float64 `json:"write_endurance_cycles,omitempty"`

	DataOrg    array.Org  `json:"data_org"`
	DataStages int        `json:"data_pipeline_stages"`
	TagOrg     *array.Org `json:"tag_org,omitempty"`
	TagStages  int        `json:"tag_pipeline_stages,omitempty"`
}

// WireResult is one evaluated point in transit.
type WireResult struct {
	Index       int           `json:"index"`
	Spec        core.Spec     `json:"spec"`
	Fingerprint string        `json:"fingerprint,omitempty"`
	Cached      bool          `json:"cached,omitempty"`
	Solution    *WireSolution `json:"solution,omitempty"`
	Error       string        `json:"error,omitempty"`
	ErrorKind   string        `json:"error_kind,omitempty"`
}

// BatchRequest is the wire=fabric body of POST /v1/solve-batch:
// native core.Spec values, no lossy name round-trip through the
// human-facing SpecRequest form.
type BatchRequest struct {
	Specs []core.Spec `json:"specs"`
}

// BatchResponse is the wire=fabric reply.
type BatchResponse struct {
	Results []WireResult `json:"results"`
}

// ToWire projects a sweep result into its transportable form.
func ToWire(r explore.Result) WireResult {
	w := WireResult{
		Index:       r.Index,
		Spec:        r.Spec,
		Fingerprint: r.Fingerprint,
		Cached:      r.Cached,
	}
	if r.Err != nil {
		w.Error = r.Err.Error()
		w.ErrorKind = errKind(r.Err)
		return w
	}
	if s := r.Solution; s != nil {
		ws := &WireSolution{
			Spec:       s.Spec,
			AccessTime: s.AccessTime, RandomCycle: s.RandomCycle,
			InterleaveCycle: s.InterleaveCycle,
			Area:            s.Area, BankArea: s.BankArea, AreaEff: s.AreaEff,
			ERead: s.EReadPerAccess, EWrite: s.EWritePerAccess,
			Leakage: s.LeakagePower, Refresh: s.RefreshPower,
			WriteTime: s.WriteTime, WriteEndurance: s.WriteEndurance,
		}
		if s.Data != nil {
			ws.DataOrg, ws.DataStages = s.Data.Org, s.Data.PipelineStages
		}
		if s.Tag != nil {
			org := s.Tag.Org
			ws.TagOrg, ws.TagStages = &org, s.Tag.PipelineStages
		}
		w.Solution = ws
	}
	return w
}

// FromWire reconstructs a result the explore exporters render
// byte-identically to the worker-side original. The rebuilt
// core.Solution carries the API-visible fields only; Data/Tag are
// organization-and-stages stubs.
func FromWire(w WireResult) explore.Result {
	r := explore.Result{
		Index:       w.Index,
		Spec:        w.Spec,
		Fingerprint: w.Fingerprint,
		Cached:      w.Cached,
	}
	if w.Error != "" {
		r.Err = &wireError{msg: w.Error, kind: w.ErrorKind}
		return r
	}
	if ws := w.Solution; ws != nil {
		sol := &core.Solution{
			Spec:       ws.Spec,
			AccessTime: ws.AccessTime, RandomCycle: ws.RandomCycle,
			InterleaveCycle: ws.InterleaveCycle,
			Area:            ws.Area, BankArea: ws.BankArea, AreaEff: ws.AreaEff,
			EReadPerAccess: ws.ERead, EWritePerAccess: ws.EWrite,
			LeakagePower: ws.Leakage, RefreshPower: ws.Refresh,
			WriteTime: ws.WriteTime, WriteEndurance: ws.WriteEndurance,
			Data: &array.Bank{Org: ws.DataOrg, PipelineStages: ws.DataStages},
		}
		if ws.TagOrg != nil {
			sol.Tag = &array.Bank{Org: *ws.TagOrg, PipelineStages: ws.TagStages}
		}
		r.Solution = sol
	}
	return r
}

// canceled reports whether the wire result was cut off by the
// worker's context rather than decided on the merits: such a point
// says nothing about its spec and must be re-dispatched, never
// recorded.
func (w WireResult) canceled() bool {
	return w.ErrorKind == errKindCanceled || w.ErrorKind == errKindDeadline
}
