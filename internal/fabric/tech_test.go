package fabric

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"cactid/internal/core"
	"cactid/internal/explore"
	"cactid/internal/tech"
)

// crossTechGrid sweeps one geometry across three technology
// providers — the cross-technology scenario the provider layer
// exists for.
func crossTechGrid() explore.Grid {
	return explore.Grid{
		Base: core.Spec{Node: tech.Node32, RAM: tech.SRAM, IsCache: true,
			MaxPipelineStages: 6},
		Techs:      []string{"itrs-sram", "stt-ram", "gain-cell"},
		Capacities: []int64{64 << 10, 128 << 10},
		Assocs:     []int{4},
		Blocks:     []int{64},
	}
}

// TestFabricCrossTechParetoByteIdentical: a cross-technology sweep
// sharded over a two-worker in-process fabric must serialize — full
// result set and Pareto frontier — byte-for-byte like a single-node
// sweep of the same grid. Runs the real circuit model on all three
// providers.
func TestFabricCrossTechParetoByteIdentical(t *testing.T) {
	specs, skipped := crossTechGrid().Expand()
	if len(specs) != 6 || skipped != 0 {
		t.Fatalf("grid expanded to %d specs, %d skipped", len(specs), skipped)
	}

	single := explore.New(explore.Options{Workers: 4}).Sweep(context.Background(), specs)

	workers := make([]Worker, 2)
	for i := range workers {
		workers[i] = &EngineWorker{WorkerName: fmt.Sprintf("node-%d", i),
			Engine: explore.New(explore.Options{Workers: 2})}
	}
	co := New(Config{Workers: workers, ChunkSize: 1})
	defer co.Close()

	merger := explore.NewFrontierMerger()
	distributed := co.Sweep(context.Background(), specs, merger.Add)

	assertSameBytes(t, single, distributed, "cross-tech result set")
	assertSameBytes(t, explore.Frontier(single), merger.Frontier(), "cross-tech frontier")

	// The frontier spans technologies: with asymmetric NVM writes and
	// gain-cell refresh in play, no single provider dominates all axes.
	seen := map[string]bool{}
	for _, r := range merger.Frontier() {
		seen[r.Spec.Technology] = true
	}
	if len(seen) < 2 {
		t.Errorf("frontier collapsed to one technology: %v", seen)
	}
}

// TestWireRoundTripPreservesTechnology: the technology axis and the
// asymmetric-write metrics must survive the fabric wire (the actual
// JSON encode/decode a worker response goes through), and the
// reconstructed result must keep the spec's store identity — the
// fingerprint workers and coordinators key caches by.
func TestWireRoundTripPreservesTechnology(t *testing.T) {
	e := explore.New(explore.Options{})
	spec := core.Spec{Node: tech.Node32, RAM: tech.SRAM, Technology: "stt-ram",
		CapacityBytes: 64 << 10, BlockBytes: 64, Associativity: 4,
		IsCache: true, MaxPipelineStages: 6}
	sol, _, err := e.Solve(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := spec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	in := explore.Result{Index: 7, Spec: sol.Spec, Fingerprint: fp, Solution: sol}

	blob, err := json.Marshal(ToWire(in))
	if err != nil {
		t.Fatal(err)
	}
	var w WireResult
	if err := json.Unmarshal(blob, &w); err != nil {
		t.Fatal(err)
	}
	out := FromWire(w)

	if out.Spec.Technology != "stt-ram" || out.Solution.Spec.Technology != "stt-ram" {
		t.Fatalf("technology lost across the wire: %q / %q",
			out.Spec.Technology, out.Solution.Spec.Technology)
	}
	if out.Solution.WriteTime != sol.WriteTime || out.Solution.WriteEndurance != sol.WriteEndurance {
		t.Fatalf("write metrics drifted: (%g, %g) vs (%g, %g)",
			out.Solution.WriteTime, out.Solution.WriteEndurance, sol.WriteTime, sol.WriteEndurance)
	}
	fp2, err := out.Spec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp2 != fp {
		t.Fatalf("store identity changed across the wire: %s vs %s", fp2, fp)
	}

	// The same spec without the technology axis is a different store
	// key: a mixed fleet must never serve an STT-RAM answer from an
	// ITRS record or vice versa.
	plain := spec
	plain.Technology = ""
	if fpPlain, _ := plain.Fingerprint(); fpPlain == fp {
		t.Fatal("ITRS and stt-ram specs share a fingerprint")
	}
}
