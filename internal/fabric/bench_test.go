package fabric

import (
	"context"
	"fmt"
	"testing"
	"time"

	"cactid/internal/explore"
)

// BenchmarkSweepFabric measures distributed sweep throughput
// (points/s) at 1, 2, and 4 workers over a 512-point grid, recorded
// in BENCH_sweep.json and gated by cmd/benchcompare -file.
//
// Each in-process worker emulates a remote node: a single-threaded
// engine whose solver takes a fixed benchLatency per point. This is
// the regime the fabric exists for — the coordinator waits on remote
// compute, not local CPU — and it is also the only honest way to
// measure scaling on this repo's single-CPU CI host, where N CPU-bound
// local workers cannot run faster than one. The coordinator's own
// sharding, stealing, and merge overhead runs for real and is what
// separates the measured speedup from the ideal N×.
const (
	benchPoints  = 512
	benchLatency = 200 * time.Microsecond
)

func BenchmarkSweepFabric(b *testing.B) {
	specs := fakeSpecs(benchPoints)
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Fresh engines per iteration: a warm result cache
				// would skip the emulated solve latency entirely.
				b.StopTimer()
				workers := make([]Worker, n)
				for j := range workers {
					_, solver := fakeSolver(benchLatency)
					workers[j] = &EngineWorker{
						WorkerName: fmt.Sprintf("node-%d", j),
						Engine:     explore.New(explore.Options{Workers: 1, Solver: solver}),
					}
				}
				co := New(Config{Workers: workers})
				b.StartTimer()

				results := co.Sweep(context.Background(), specs, nil)

				b.StopTimer()
				if len(results) != benchPoints {
					b.Fatalf("got %d results for %d specs", len(results), benchPoints)
				}
				for _, r := range results {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
				co.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(benchPoints)*float64(b.N)/b.Elapsed().Seconds(), "points/s")
		})
	}
}
