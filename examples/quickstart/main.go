// Quickstart: model a single cache with CACTI-D and print its key
// properties. This is the smallest useful program against the public
// solver API.
package main

import (
	"fmt"
	"log"

	"cactid/internal/core"
	"cactid/internal/tech"
)

func main() {
	// A 2MB 8-way set-associative SRAM cache with 64B lines at the
	// 32nm node, tags and data accessed in parallel.
	sol, err := core.Optimize(core.Spec{
		Node:          tech.Node32,
		RAM:           tech.SRAM,
		CapacityBytes: 2 << 20,
		BlockBytes:    64,
		Associativity: 8,
		IsCache:       true,
		Mode:          core.Normal,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("2MB 8-way SRAM cache @ 32nm:")
	fmt.Printf("  access time:       %.3f ns\n", sol.AccessTime*1e9)
	fmt.Printf("  random cycle:      %.3f ns\n", sol.RandomCycle*1e9)
	fmt.Printf("  area:              %.2f mm^2 (%.0f%% efficient)\n", sol.Area*1e6, sol.AreaEff*100)
	fmt.Printf("  read energy:       %.3f nJ per 64B line\n", sol.EReadPerAccess*1e9)
	fmt.Printf("  leakage power:     %.3f W\n", sol.LeakagePower)
	fmt.Printf("  data organization: %v\n", sol.Data.Org)
}
